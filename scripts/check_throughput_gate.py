#!/usr/bin/env python3
"""Speculation-throughput gate for CI (stdlib only, no third-party deps).

Judges a fresh BM_SpeculativeMoves run (BENCH_throughput.json rows) on one
hardware-independent shape: the EWF served-move rate at (threads=8, k=8)
versus the sequential (threads=1, k=1) rate, measured within the same run
on the same machine. The speculative pipeline's contract is that it never
costs throughput: on a multicore host batching overlaps scoring, and on a
starved host (CI runners are 1-2 cores) the pipeline auto-degrades to the
sequential path, so in both worlds the ratio must sit at or above ~1. The
regression this gate pins out was a 0.35x inversion — per-candidate worker
acquisition, catch-up replay amplification and per-batch pool sync made
threads=8 three times *slower* than threads=1 (see EXPERIMENTS.md "Move
throughput"). A floor below 1.0 leaves room for shared-runner noise, none
for the inversion coming back.

Usage: check_throughput_gate.py <fresh.json> <committed BENCH_throughput.json>
       check_throughput_gate.py --self-test

Both files are the JSON array bench_runtime emits via SALSA_BENCH_JSON
(rows of {benchmark, moves_per_sec, threads, k, git}). The committed wall
is read only to cross-check that it also upholds the contract — a wall
regenerated with the inversion present must not be committable quietly.

--self-test runs the unit tests for the ratio math and the missing-row /
NaN / non-positive error paths (wired into ctest as
throughput_gate_selftest and into the throughput-smoke CI job), exiting
non-zero on any failure.
"""

import json
import math
import sys

# Noise floor for t8k8 : t1k1 within one run. Shared runners wobble the two
# measurements independently by a few percent; the inversion this gate
# exists for was 0.35x.
RATIO_FLOOR = 0.8


class GateError(SystemExit):
    """Malformed record: the gate refuses to judge, loudly (exit 1)."""

    def __init__(self, message):
        super().__init__(f"throughput gate: {message}")


def spec_rate(rows, threads, k):
    """moves/s of the EWF BM_SpeculativeMoves row at (threads, k).

    Matches on the benchmark's base name so the DCT companion
    (BM_SpeculativeMovesDct) cannot shadow the EWF row. Rejects rates that
    are missing, NaN, infinite or <= 0: a NaN would sail through every
    float comparison as 'not less', silently passing the gate.
    """
    for r in rows:
        name = str(r.get("benchmark", "")).split("/")[0]
        if name != "BM_SpeculativeMoves":
            continue
        if r.get("threads") != threads or r.get("k") != k:
            continue
        try:
            rate = float(r["moves_per_sec"])
        except KeyError:
            raise GateError(
                f"BM_SpeculativeMoves t{threads}/k{k} row has no "
                f"moves_per_sec field")
        except (TypeError, ValueError):
            raise GateError(
                f"BM_SpeculativeMoves t{threads}/k{k} row has a "
                f"non-numeric moves_per_sec: {r['moves_per_sec']!r}")
        if math.isnan(rate) or math.isinf(rate) or rate <= 0:
            raise GateError(
                f"BM_SpeculativeMoves t{threads}/k{k} row has an invalid "
                f"moves_per_sec ({rate}); refusing to judge a ratio on it")
        return rate
    raise GateError(
        f"no BM_SpeculativeMoves row with threads={threads}, k={k} "
        f"in the throughput record")


def ratio(rows):
    seq = spec_rate(rows, 1, 1)
    spec = spec_rate(rows, 8, 8)
    return spec / seq, seq, spec


def judge(fresh, wall):
    """Returns (ok, lines): the gate verdict plus its printable report."""
    fresh_ratio, fseq, fspec = ratio(fresh)
    wall_ratio, wseq, wspec = ratio(wall)

    lines = [
        f"fresh: t1/k1 {fseq:.0f} moves/s, t8/k8 {fspec:.0f} moves/s "
        f"-> ratio {fresh_ratio:.2f}",
        f"wall:  t1/k1 {wseq:.0f} moves/s, t8/k8 {wspec:.0f} moves/s "
        f"-> ratio {wall_ratio:.2f}",
    ]
    ok = True
    if wall_ratio < RATIO_FLOOR:
        lines.append(
            f"FAIL: the committed wall itself has t8/k8 at "
            f"{wall_ratio:.2f}x sequential — it was regenerated with the "
            "speculation inversion present; fix the pipeline before "
            "committing a record")
        ok = False
    if fresh_ratio < RATIO_FLOOR:
        lines.append(
            f"FAIL: speculative throughput ratio {fresh_ratio:.2f} below "
            f"the {RATIO_FLOOR:.2f} floor; the pipeline costs throughput "
            "again (per-candidate overhead is back — see EXPERIMENTS.md "
            "\"Move throughput\")")
        ok = False
    if ok:
        lines.append(
            f"ok: t8/k8 holds {fresh_ratio:.2f}x sequential "
            f"(floor {RATIO_FLOOR:.2f})")
    return ok, lines


def self_test():
    """Unit tests for the ratio math and every error path."""
    import unittest

    def row(threads, k, rate, name="BM_SpeculativeMoves"):
        return {"benchmark": f"{name}/{threads}/{k}/real_time",
                "moves_per_sec": rate, "threads": threads, "k": k}

    WALL = [row(1, 1, 1_000_000.0), row(8, 8, 1_050_000.0)]

    class GateTests(unittest.TestCase):
        def test_spec_rate_picks_matching_row(self):
            self.assertEqual(spec_rate(WALL, 8, 8), 1_050_000.0)

        def test_dct_rows_do_not_shadow_ewf(self):
            rows = [row(1, 1, 5.0, name="BM_SpeculativeMovesDct"),
                    row(1, 1, 900_000.0)]
            self.assertEqual(spec_rate(rows, 1, 1), 900_000.0)

        def test_ratio_math(self):
            r, seq, spec = ratio(WALL)
            self.assertAlmostEqual(r, 1.05)
            self.assertEqual((seq, spec), (1_000_000.0, 1_050_000.0))

        def test_gate_passes_at_parity(self):
            fresh = [row(1, 1, 800_000.0), row(8, 8, 790_000.0)]
            ok, lines = judge(fresh, WALL)
            self.assertTrue(ok)
            self.assertIn("ok:", lines[-1])

        def test_gate_fails_on_inversion(self):
            # The measured regression: t8/k8 at ~0.35x sequential.
            fresh = [row(1, 1, 1_149_000.0), row(8, 8, 398_000.0)]
            ok, lines = judge(fresh, WALL)
            self.assertFalse(ok)
            self.assertIn("FAIL", "".join(lines))

        def test_gate_boundary_is_not_a_failure(self):
            fresh = [row(1, 1, 1_000_000.0),
                     row(8, 8, RATIO_FLOOR * 1_000_000.0)]
            ok, _ = judge(fresh, WALL)
            self.assertTrue(ok)

        def test_inverted_wall_is_rejected_too(self):
            bad_wall = [row(1, 1, 1_149_000.0), row(8, 8, 398_000.0)]
            fresh = [row(1, 1, 1_000_000.0), row(8, 8, 1_000_000.0)]
            ok, lines = judge(fresh, bad_wall)
            self.assertFalse(ok)
            self.assertIn("committed wall", "".join(lines))

        def test_missing_row_errors(self):
            with self.assertRaises(SystemExit) as ctx:
                spec_rate([row(1, 1, 1.0)], 8, 8)
            self.assertIn("no BM_SpeculativeMoves row", str(ctx.exception))

        def test_nan_refused_not_silently_passed(self):
            # float('nan') < floor is False — without the explicit check a
            # NaN row would pass the gate unnoticed.
            fresh = [row(1, 1, 1_000_000.0), row(8, 8, float("nan"))]
            with self.assertRaises(SystemExit) as ctx:
                judge(fresh, WALL)
            self.assertIn("invalid moves_per_sec", str(ctx.exception))

        def test_infinite_and_nonpositive_refused(self):
            for bad in (float("inf"), 0.0, -3.0):
                with self.assertRaises(SystemExit):
                    spec_rate([row(1, 1, bad)], 1, 1)

        def test_missing_rate_field_errors(self):
            broken = [{"benchmark": "BM_SpeculativeMoves/1/1",
                       "threads": 1, "k": 1}]
            with self.assertRaises(SystemExit) as ctx:
                spec_rate(broken, 1, 1)
            self.assertIn("no moves_per_sec", str(ctx.exception))

        def test_non_numeric_rate_errors(self):
            with self.assertRaises(SystemExit) as ctx:
                spec_rate([row(1, 1, "fast")], 1, 1)
            self.assertIn("non-numeric", str(ctx.exception))

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(GateTests)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        raise SystemExit(self_test())
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        wall = json.load(f)

    ok, lines = judge(fresh, wall)
    for line in lines:
        print(line)
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
