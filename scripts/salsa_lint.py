#!/usr/bin/env python3
"""SalsaLint — custom AST/token lint wall for determinism & concurrency
discipline (stdlib only; libclang used opportunistically when present).

The runtime SalsaCheck wall (digests, InvariantAuditor, fuzzers, TSan)
verifies that trajectories are byte-identical per (seed, threads, k); this
pass enforces the *source-level rules* that make those runtime checks pass,
before any fuzzer runs:

  no-unordered-iteration
      Result-affecting modules (src/core, src/sched, src/analysis) must not
      iterate hash-layout-ordered containers (std::unordered_*, FlatMap):
      range-for, .begin() iterator loops, and FlatMap's .drain()/.for_each()
      all visit entries in layout order, which depends on insertion history
      and rehash timing. Order-independent uses (commutative refcount
      arithmetic) are sanctioned per-site with an allow() suppression
      carrying the order-independence argument.

  no-nondeterministic-sources
      Deterministic modules must not read wall clocks
      (chrono *_clock::now, clock()), entropy (rand, srand,
      std::random_device), or address-dependent values (std::hash over
      pointers, reinterpret_cast to [u]intptr_t). Search randomness comes
      from the seeded SplitMix64 streams in util/rng.h — a function of
      (seed, index), never of the environment.

  thread-local-scratch-discipline
      A [static] thread_local scratch buffer keeps its contents across
      calls *and* across users of the pool thread. Its first use in scope
      must therefore be a reset (.clear()/.assign()/.clear_all()/.zero(),
      whole-object assignment, or BitPlane::resize which zeroes by
      contract); buffers with a non-reset first use (tag-guarded or
      drained-to-zero invariants) document that invariant in an allow()
      suppression on the declaration.

  transaction-seam-writes
      Occupancy state (the fu_busy/reg_busy/reg_busy_t bitplanes and the
      fu_user/reg_sto identity grids) is mutated only through the
      claim/release/staged-apply entry points in core/binding.{h,cpp} and
      core/search_engine.{h,cpp}. Anywhere else, poking the planes or grids
      — or calling claim/release ad hoc, outside a transaction — bypasses
      the undo journal and the auditor's seam, so it is flagged whether or
      not it happens to keep the representations in lockstep.

  simd-intrinsics-confined
      Raw SIMD intrinsics (_mm*/_mm256*/_mm512* calls, __m128/__m256/__m512
      vector types, the x86/NEON vector headers) live only in the kernel
      headers src/util/bitplane.h and src/util/bits.h, behind portable
      word-level wrappers with scalar fallbacks (SALSA_BITPLANE_SCALAR and
      the no-__AVX2__ legs). Intrinsics sprinkled anywhere else fork the
      packed/scalar differential: the scalar-fallback CI leg can no longer
      swap the implementation out from under the caller, and a second
      #ifdef jungle grows outside the audited kernels.

Suppressions:
      // salsa-lint: allow(<check-id>) <one-line rationale>
  on the offending line, or alone on the line above it. The rationale is
  mandatory; an allow() without one (or naming an unknown check) is itself
  a violation (bad-suppression), so the clean gate stays exact.

Fixtures (tests/lint_fixtures/) are known-bad files proving each check
fires — the same mutation-test culture as --break-flat-erase. A fixture
declares what it expects with `// salsa-lint: expect(<check-id>)`;
`--fixtures DIR` asserts every expected check fires on its fixture and
nothing unexpected does. A check that silently dies turns CI red.

Usage:
  salsa_lint.py [paths...]            lint (default: src/ under --root)
  salsa_lint.py --fixtures DIR        run fixture fire-assertions
  salsa_lint.py --list-checks         print the check catalogue

Options:
  --root DIR              repo root (default: the script's parent's parent)
  --engine auto|lexer|libclang
                          auto (default) uses libclang for type-resolved
                          range-for facts when clang.cindex imports and a
                          compilation database exists, else the pure-token
                          lexer engine (the reference engine asserted by
                          ctest; stdlib only)
  --compile-commands PATH compilation database for the libclang engine
                          (default: <root>/build/compile_commands.json)

Exit codes: 0 clean, 1 violations or fixture-assertion failures, 2 usage.
"""

import argparse
import json
import os
import re
import sys

CHECKS = {
    "no-unordered-iteration":
        "no range-for/iterator/drain iteration over hash-ordered containers "
        "(std::unordered_*, FlatMap) in result-affecting modules",
    "no-nondeterministic-sources":
        "no wall clocks, rand()/random_device, or pointer-value hashing in "
        "deterministic modules",
    "thread-local-scratch-discipline":
        "every [static] thread_local scratch buffer is reset "
        "(clear/assign/zero) before its first read in scope",
    "transaction-seam-writes":
        "occupancy planes/grids are mutated only via the claim/release/"
        "staged-apply entry points in core/binding.* / core/search_engine.*",
    "simd-intrinsics-confined":
        "raw SIMD intrinsics (_mm*, __m128/__m256/__m512, vector headers) "
        "appear only in src/util/bitplane.h / src/util/bits.h kernels",
    "bad-suppression":
        "salsa-lint: allow() must name a known check and carry a rationale",
}

# Modules whose iteration order / randomness feeds search results.
STRICT_DIRS = ("src/core", "src/sched", "src/analysis")
# The sanctioned home of occupancy mutation (transaction-seam-writes).
SEAM_EXEMPT_FILES = (
    "src/core/binding.h", "src/core/binding.cpp",
    "src/core/search_engine.h", "src/core/search_engine.cpp",
)
# The sanctioned home of raw SIMD intrinsics (simd-intrinsics-confined).
SIMD_EXEMPT_FILES = (
    "src/util/bitplane.h", "src/util/bits.h",
)

UNORDERED_TYPE_RE = re.compile(
    r"\b(?:std\s*::\s*)?(unordered_(?:multi)?(?:map|set)|FlatMap)\s*<")
ALLOW_RE = re.compile(
    r"//\s*salsa-lint:\s*allow\(([A-Za-z0-9-]+)\)[ \t]*(.*?)\s*$")
EXPECT_RE = re.compile(r"//\s*salsa-lint:\s*expect\(([A-Za-z0-9-]+)\)")


class Violation:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def blank_comments_and_strings(text):
    """Returns text with comments and string/char literals replaced by
    spaces (newlines preserved), so token scans never match inside them."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                if i >= 1 and text[i - 1] == "R" and (
                        i < 2 or not (text[i - 2].isalnum()
                                      or text[i - 2] == "_")):
                    m = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = RAW
                        out.append(" " * (1 + len(m.group(1)) + 1))
                        i += 1 + len(m.group(1)) + 1
                        continue
                state = STR
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in (STR, CHAR):
            quote = '"' if state == STR else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == RAW:
            if text.startswith(raw_delim, i):
                state = NORMAL
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def balance_forward(text, pos, open_ch, close_ch):
    """Index just past the close_ch matching the open_ch at `pos`."""
    depth = 0
    i = pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def declared_unordered_vars(code):
    """Maps variable/member/parameter names declared with an unordered type
    (std::unordered_* or FlatMap) to the matched type name. Token-level:
    finds each type mention, balances its template argument list, then
    reads the declarator name that follows (skipping cv/ref/ptr tokens)."""
    vars_ = {}
    for m in UNORDERED_TYPE_RE.finditer(code):
        type_name = m.group(1)
        after_args = balance_forward(code, m.end() - 1, "<", ">")
        rest = code[after_args:after_args + 200]
        dm = re.match(r"\s*(?:const\b\s*)?[&*]*\s*([A-Za-z_]\w*)", rest)
        if not dm:
            continue
        name = dm.group(1)
        # `FlatMap<K> foo()` is a function/ctor, not a variable — but a
        # following '(' can also be a constructor argument list of a
        # variable; treat names followed by ';', '=', '{', ',', ')' or '('
        # all as declarators. Keywords never match IDENT at this position.
        vars_[name] = type_name
    return vars_


def range_for_exprs(code):
    """Yields (line, iterated_expr_text) for every range-for in `code`."""
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = m.end() - 1
        close = balance_forward(code, open_paren, "(", ")")
        inner = code[open_paren + 1:close - 1]
        # The range-for colon: depth 0 within the parens, not part of '::'
        # and not inside nested parens/brackets/braces (lambda captures,
        # template args handled by <> not tracked — ':' inside <> cannot
        # occur).
        depth = 0
        for i, c in enumerate(inner):
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
            elif c == ":" and depth == 0:
                if i > 0 and inner[i - 1] == ":":
                    continue
                if i + 1 < len(inner) and inner[i + 1] == ":":
                    continue
                yield (line_of(code, open_paren + 1 + i),
                       inner[i + 1:].strip())
                break


class FileLint:
    """Lints one file: raw text for suppressions, blanked text for tokens."""

    def __init__(self, path, rel, text, strict, seam_exempt, clang_facts=None,
                 simd_exempt=False):
        self.path = path
        self.rel = rel
        self.raw_lines = text.splitlines()
        self.code = blank_comments_and_strings(text)
        self.code_lines = self.code.splitlines()
        self.strict = strict
        self.seam_exempt = seam_exempt
        self.simd_exempt = simd_exempt
        self.clang_facts = clang_facts or []
        self.violations = []
        self.allows = {}     # line -> list of (check, reason)
        self.expects = []    # check ids declared via expect()

    def scan_directives(self):
        for idx, line in enumerate(self.raw_lines):
            lineno = idx + 1
            for em in EXPECT_RE.finditer(line):
                self.expects.append(em.group(1))
            am = ALLOW_RE.search(line)
            if not am:
                continue
            check, reason = am.group(1), am.group(2).strip()
            if check not in CHECKS or check == "bad-suppression":
                self.violations.append(Violation(
                    self.rel, lineno, "bad-suppression",
                    f"allow() names unknown check '{check}' "
                    f"(see --list-checks)"))
                continue
            if not reason:
                self.violations.append(Violation(
                    self.rel, lineno, "bad-suppression",
                    f"allow({check}) carries no rationale — say why the "
                    f"site is order-independent/safe"))
                continue
            target = lineno
            if line.strip().startswith("//"):
                # Standalone comment: covers the next code line.
                j = idx + 1
                while j < len(self.raw_lines) and (
                        not self.raw_lines[j].strip()
                        or self.raw_lines[j].strip().startswith("//")):
                    j += 1
                target = j + 1
            self.allows.setdefault(target, []).append((check, reason))

    def report(self, lineno, check, message):
        for c, _reason in self.allows.get(lineno, []):
            if c == check:
                return
        self.violations.append(Violation(self.rel, lineno, check, message))

    # -- check: no-unordered-iteration ------------------------------------
    def check_unordered_iteration(self):
        if not self.strict:
            return
        tracked = declared_unordered_vars(self.code)
        for lineno, expr in range_for_exprs(self.code):
            why = None
            tm = UNORDERED_TYPE_RE.search(expr)
            if tm:
                why = f"a {tm.group(1)} expression"
            else:
                for name in IDENT_RE.findall(expr):
                    if name in tracked:
                        why = f"'{name}' ({tracked[name]})"
                        break
            if why:
                self.report(
                    lineno, "no-unordered-iteration",
                    f"range-for over {why}: hash-layout iteration order is "
                    f"not deterministic — iterate a sorted/indexed view or "
                    f"suppress with an order-independence rationale")
        for m in re.finditer(
                r"\b([A-Za-z_]\w*)\s*\.\s*(begin|cbegin|rbegin)\s*\(",
                self.code):
            name = m.group(1)
            if name in tracked:
                self.report(
                    line_of(self.code, m.start()), "no-unordered-iteration",
                    f"iterator loop over '{name}' ({tracked[name]}): "
                    f"hash-layout order is not deterministic")
        # drain/for_each are FlatMap's layout-order visitors; receiver-based
        # so the two sanctioned drain sites in search_engine.cpp (members
        # declared in the header) are still seen.
        for m in re.finditer(
                r"(?:\.|->)\s*(drain|for_each)\s*\(", self.code):
            self.report(
                line_of(self.code, m.start()), "no-unordered-iteration",
                f"FlatMap::{m.group(1)}() visits entries in slot-layout "
                f"order — only order-independent (commutative) folds may "
                f"use it, stated in an allow() rationale")
        for fact_line, fact_msg in self.clang_facts:
            self.report(fact_line, "no-unordered-iteration", fact_msg)

    # -- check: no-nondeterministic-sources -------------------------------
    NONDET_PATTERNS = (
        (re.compile(r"(?<![\w.>])s?rand\s*\("),
         "rand()/srand(): draw from the seeded SplitMix64 streams "
         "(util/rng.h) instead"),
        (re.compile(r"\brandom_device\b"),
         "std::random_device is environment entropy — results would differ "
         "run to run"),
        (re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::"
            r"\s*now\s*\("),
         "wall-clock reads make results time-dependent; benchmarks time in "
         "bench/, never in deterministic modules"),
        (re.compile(r"(?<![\w.>])clock\s*\(\s*\)"),
         "clock() is a wall/CPU-clock read"),
        (re.compile(r"\bhash\s*<[^<>;]*\*\s*>"),
         "hashing a pointer value bakes ASLR into results"),
        (re.compile(r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t"),
         "pointer-to-integer conversion is address-dependent (ASLR)"),
    )

    def check_nondeterministic_sources(self):
        if not self.strict:
            return
        for pat, why in self.NONDET_PATTERNS:
            for m in pat.finditer(self.code):
                self.report(
                    line_of(self.code, m.start()),
                    "no-nondeterministic-sources",
                    f"nondeterministic source: {why}")

    # -- check: thread-local-scratch-discipline ---------------------------
    RESET_METHODS = ("clear", "assign", "clear_all", "zero")

    def check_thread_local_scratch(self):
        for m in re.finditer(r"\b(?:static\s+)?thread_local\s+", self.code):
            decl_start = m.end()
            semi = self.code.find(";", decl_start)
            if semi < 0:
                continue
            decl = self.code[decl_start:semi]
            # Declarator name: the last identifier before any initializer.
            head = re.split(r"[={(]", decl, 1)[0]
            idents = IDENT_RE.findall(head)
            if not idents:
                continue
            name = idents[-1]
            decl_line = line_of(self.code, m.start())
            tail = self.code[semi + 1:]
            um = re.search(r"\b" + re.escape(name) + r"\b", tail)
            if not um:
                continue
            use_pos = semi + 1 + um.start()
            use_line = line_of(self.code, use_pos)
            after = tail[um.end():um.end() + 80]
            before = tail[:um.start()].rstrip()
            is_reset = False
            rm = re.match(r"\s*\.\s*([A-Za-z_]\w*)\s*\(", after)
            if rm and rm.group(1) in self.RESET_METHODS:
                is_reset = True
            # BitPlane::resize shapes AND zeroes by contract.
            elif (rm and rm.group(1) == "resize"
                  and re.search(r"\bBitPlane\b", decl)):
                is_reset = True
            elif re.match(r"\s*(=[^=]|\+\+|--)", after):
                is_reset = True  # whole-object overwrite / counter bump
            elif before.endswith("++") or before.endswith("--"):
                is_reset = True
            if not is_reset:
                self.report(
                    decl_line, "thread-local-scratch-discipline",
                    f"thread_local scratch '{name}' is read before being "
                    f"reset (first use at line {use_line}): stale contents "
                    f"from a previous call/thread leak in — clear/assign "
                    f"it first, or document the tag-guard/drained-to-zero "
                    f"invariant in an allow() suppression")

    # -- check: transaction-seam-writes -----------------------------------
    PLANE_MUTATORS = ("set", "clear", "set_range", "clear_range", "zero",
                      "resize", "word")

    def check_transaction_seam(self):
        if not self.strict or self.seam_exempt:
            return
        for m in re.finditer(
                r"(?:\.|->)\s*(fu_busy|reg_busy|reg_busy_t)\s*\.\s*"
                r"([A-Za-z_]\w*)", self.code):
            if m.group(2) in self.PLANE_MUTATORS:
                self.report(
                    line_of(self.code, m.start()), "transaction-seam-writes",
                    f"direct occupancy-plane mutation "
                    f"{m.group(1)}.{m.group(2)}(): planes and grids must "
                    f"move in lockstep through the claim/release entry "
                    f"points in core/binding.h")
        for m in re.finditer(
                r"(?:\.|->)\s*(fu_slot|reg_slot)\s*\(", self.code):
            self.report(
                line_of(self.code, m.start()), "transaction-seam-writes",
                f"{m.group(1)}() hands out a raw slot reference — only the "
                f"engine's journaled claim paths may use it")
        for m in re.finditer(
                r"(?:\.|->)\s*(fu_user|reg_sto)\s*\[", self.code):
            # Balance the (up to two) subscript groups, then look for an
            # assignment (writes); plain reads of the identity grids are
            # fine (verify.cpp, reports).
            pos = m.end() - 1
            end = balance_forward(self.code, pos, "[", "]")
            ws = re.match(r"\s*", self.code[end:])
            if self.code[end + ws.end():].startswith("["):
                end = balance_forward(self.code, end + ws.end(), "[", "]")
            rest = self.code[end:end + 4]
            if re.match(r"\s*=[^=]", rest):
                self.report(
                    line_of(self.code, m.start()), "transaction-seam-writes",
                    f"direct write to the {m.group(1)} identity grid "
                    f"bypasses the busy-plane lockstep and the undo journal")
        for m in re.finditer(
                r"(?:\.|->)\s*((?:claim|release)_(?:fu|reg)(?:_range)?)"
                r"\s*\(", self.code):
            self.report(
                line_of(self.code, m.start()), "transaction-seam-writes",
                f"ad-hoc {m.group(1)}() call outside "
                f"core/binding.*/core/search_engine.*: occupancy mutation "
                f"outside the transaction seam is invisible to rollback "
                f"and the auditor")

    # -- check: simd-intrinsics-confined ----------------------------------
    # Intrinsic calls (_mm_or_si128, _mm256_loadu_si256, ...), vector types
    # (__m128i, __m256d, ...) and the x86/NEON vector headers. The check is
    # not gated on STRICT_DIRS: confinement is repo-wide — a stray
    # intrinsic in a report generator still forks the packed/scalar
    # differential the scalar-fallback CI leg depends on.
    SIMD_PATTERNS = (
        (re.compile(r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\("),
         "raw SIMD intrinsic call"),
        (re.compile(r"\b__m(?:64|128|256|512)[di]?\b"),
         "raw SIMD vector type"),
        (re.compile(
            r"#\s*include\s*<(?:[a-z0-9]*mmintrin|immintrin|x86intrin|"
            r"arm_neon|arm_sve)\.h>"),
         "vector-intrinsics header include"),
    )

    def check_simd_intrinsics(self):
        if self.simd_exempt:
            return
        for pat, what in self.SIMD_PATTERNS:
            for m in pat.finditer(self.code):
                self.report(
                    line_of(self.code, m.start()), "simd-intrinsics-confined",
                    f"{what} outside src/util/bitplane.h / src/util/bits.h: "
                    f"wrap it in a word kernel there (with the scalar "
                    f"fallback) so the SALSA_BITPLANE_SCALAR leg stays "
                    f"exchangeable")

    def run(self):
        self.scan_directives()
        self.check_unordered_iteration()
        self.check_nondeterministic_sources()
        self.check_thread_local_scratch()
        self.check_transaction_seam()
        self.check_simd_intrinsics()
        # Deduplicate (libclang facts can mirror lexer findings).
        seen = set()
        uniq = []
        for v in self.violations:
            key = (v.path, v.line, v.check)
            if key not in seen:
                seen.add(key)
                uniq.append(v)
        self.violations = sorted(uniq, key=lambda v: (v.path, v.line))
        return self.violations


# -- libclang engine (optional refinement) --------------------------------

def load_libclang_facts(compile_commands, wanted_paths):
    """Type-resolved iteration facts from the AST: {abs path -> [(line,
    message)]} for range-fors / begin()/drain()/for_each() whose receiver
    type names an unordered container. Returns None when libclang or the
    compilation database is unavailable (caller falls back to pure lexer).
    """
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    if not os.path.exists(compile_commands):
        return None
    try:
        with open(compile_commands) as f:
            db = json.load(f)
    except (OSError, ValueError) as e:
        print(f"salsa_lint: cannot read {compile_commands}: {e}",
              file=sys.stderr)
        return None

    def is_unordered_type(type_spelling):
        return ("unordered_" in type_spelling
                or "FlatMap" in type_spelling)

    facts = {}
    index = cindex.Index.create()
    wanted = {os.path.realpath(p) for p in wanted_paths}
    for entry in db:
        src = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if src not in wanted:
            continue
        args = [a for a in entry.get("command", "").split()[1:]
                if not a.endswith(".o") and a not in ("-c", "-o", entry["file"])]
        try:
            tu = index.parse(src, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        out = facts.setdefault(src, [])
        for cur in tu.cursor.walk_preorder():
            try:
                if (cur.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT
                        and cur.location.file
                        and os.path.realpath(cur.location.file.name) == src):
                    children = list(cur.get_children())
                    if len(children) >= 2 and is_unordered_type(
                            children[-2].type.spelling):
                        out.append((
                            cur.location.line,
                            f"range-for over "
                            f"'{children[-2].type.spelling}' (AST-resolved): "
                            f"hash-layout iteration order is not "
                            f"deterministic"))
            except ValueError:
                continue  # unknown cursor kind in this libclang version
    return facts


# -- driver ----------------------------------------------------------------

def collect_files(root, paths):
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", "build-scalar",
                                        "CMakeFiles", ".git")]
            for fn in sorted(filenames):
                if fn.endswith((".h", ".cpp", ".cc", ".hpp")):
                    files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def rel_to_root(root, path):
    try:
        return os.path.relpath(path, root).replace(os.sep, "/")
    except ValueError:
        return path


def lint_paths(root, paths, engine, compile_commands, force_strict=False):
    files = collect_files(root, paths)
    clang_facts = None
    if engine in ("auto", "libclang"):
        clang_facts = load_libclang_facts(compile_commands, files)
        if clang_facts is None and engine == "libclang":
            print("salsa_lint: --engine libclang requested but clang.cindex "
                  f"or {compile_commands} is unavailable", file=sys.stderr)
            return None
    violations = []
    for path in files:
        rel = rel_to_root(root, path)
        strict = force_strict or any(
            rel.startswith(d + "/") or rel == d for d in STRICT_DIRS)
        seam_exempt = rel in SEAM_EXEMPT_FILES
        simd_exempt = rel in SIMD_EXEMPT_FILES
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"salsa_lint: cannot read {path}: {e}", file=sys.stderr)
            return None
        facts = (clang_facts or {}).get(os.path.realpath(path), [])
        fl = FileLint(path, rel, text, strict, seam_exempt, facts,
                      simd_exempt=simd_exempt)
        violations.extend(fl.run())
    return violations


def run_fixtures(root, fixtures_dir, engine, compile_commands):
    """Fire-assertions: every fixture's expect()ed checks must fire on it,
    and no unexpected check may. Returns process exit code."""
    files = collect_files(root, [fixtures_dir])
    if not files:
        print(f"salsa_lint: no fixtures under {fixtures_dir}",
              file=sys.stderr)
        return 2
    failed = False
    for path in files:
        rel = rel_to_root(root, path)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        fl = FileLint(path, rel, text, strict=True, seam_exempt=False)
        fired = fl.run()
        fired_ids = {v.check for v in fired}
        expected = set(fl.expects)
        missing = expected - fired_ids
        unexpected = fired_ids - expected
        status = "ok" if not missing and not unexpected else "FAIL"
        label = ("clean (suppressions honoured)" if not expected
                 else ", ".join(sorted(expected)))
        print(f"fixture {rel}: expect [{label}] "
              f"fired {len(fired)} violation(s) — {status}")
        if missing:
            failed = True
            for c in sorted(missing):
                print(f"  MISSING: expected check '{c}' did not fire — "
                      f"the lint lost this check", file=sys.stderr)
        if unexpected:
            failed = True
            for v in fired:
                if v.check in unexpected:
                    print(f"  UNEXPECTED: {v}", file=sys.stderr)
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(
        prog="salsa_lint.py", add_help=True,
        description="SalsaLint: determinism & concurrency-discipline lint")
    ap.add_argument("paths", nargs="*", help="files/dirs to lint "
                    "(default: src/ under --root)")
    ap.add_argument("--root", default=None)
    ap.add_argument("--engine", choices=("auto", "lexer", "libclang"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument("--fixtures", metavar="DIR",
                    help="run fixture fire-assertions over DIR and exit")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")

    if args.list_checks:
        for check, desc in CHECKS.items():
            print(f"{check}\n    {desc}")
        return 0

    if args.fixtures:
        return run_fixtures(root, args.fixtures, args.engine,
                            compile_commands)

    paths = args.paths or ["src"]
    engine = "lexer" if args.engine == "lexer" else args.engine
    if engine == "lexer":
        violations = lint_paths(root, paths, "lexer", compile_commands)
    else:
        violations = lint_paths(root, paths, engine, compile_commands)
    if violations is None:
        return 2
    for v in violations:
        print(v)
    if violations:
        print(f"salsa_lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"salsa_lint: clean ({len(collect_files(root, paths))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
