#!/usr/bin/env python3
"""Scaling-regression gate for CI (stdlib only, no third-party deps).

Compares a fresh BM_ScalingMoves run against the committed scaling wall
(BENCH_scaling.json) and fails on a super-linear move-loop regression.

Shared CI runners make *absolute* timings meaningless (the release-bench
job says as much), so the gate judges a hardware-independent shape instead:
the ratio of per-move cost on a mid-size generated design to per-move cost
on the EWF-scale design, measured within the same run on the same machine.
A flat move loop keeps that ratio constant as code evolves; an O(n) scan
creeping back into a proposer blows it up by orders of magnitude (the bug
this PR removed was 25-50x). The gate fails when the fresh ratio exceeds
2x the committed wall's ratio for the same pair of rows.

Usage: check_scaling_gate.py <fresh.json> <committed BENCH_scaling.json>
Both files are the JSON array bench_runtime emits via SALSA_SCALING_JSON
(rows of {benchmark, family, ops, ns_per_move, ...}).
"""

import json
import sys


def per_move(rows, family, min_ops):
    """ns/move of the first row matching family with ops >= min_ops."""
    for r in rows:
        if r["family"] == family and r["ops"] >= min_ops:
            return float(r["ns_per_move"]), r["ops"]
    raise SystemExit(
        f"no '{family}' row with >= {min_ops} ops in the scaling record"
    )


def ratio(rows):
    small, small_ops = per_move(rows, "ewf", 0)
    big, big_ops = per_move(rows, "cascade", 5000)
    return big / small, small, small_ops, big, big_ops


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        wall = json.load(f)

    fresh_ratio, fs, fso, fb, fbo = ratio(fresh)
    wall_ratio, ws, wso, wb, wbo = ratio(wall)

    print(
        f"fresh: ewf({fso} ops) {fs:.0f} ns/move, "
        f"cascade({fbo} ops) {fb:.0f} ns/move -> ratio {fresh_ratio:.2f}"
    )
    print(
        f"wall:  ewf({wso} ops) {ws:.0f} ns/move, "
        f"cascade({wbo} ops) {wb:.0f} ns/move -> ratio {wall_ratio:.2f}"
    )

    limit = 2.0 * wall_ratio
    if fresh_ratio > limit:
        print(
            f"FAIL: per-move scaling ratio {fresh_ratio:.2f} exceeds 2x the "
            f"committed wall ({wall_ratio:.2f}); a super-linear cost crept "
            "back into the move loop"
        )
        raise SystemExit(1)
    print(f"ok: ratio {fresh_ratio:.2f} within 2x of the wall ({limit:.2f})")


if __name__ == "__main__":
    main()
