#!/usr/bin/env python3
"""Event-simulation scaling gate for CI (stdlib only, no third-party deps).

Compares a fresh `salsa_audit --sim-wall` run against the committed sim
wall (BENCH_sim.json) and fails when the event engine's per-firing cost
stops scaling.

Shared CI runners make *absolute* timings meaningless (same argument as
check_scaling_gate.py), so the gate judges a hardware-independent shape:
the ratio of event-engine ns-per-firing on a large generated cascade to
ns-per-firing on the EWF-scale design, measured within the same run on the
same machine. The event engine's cost is proportional to firings; a
per-step rescan over all FU actions or register loads creeping back into
it makes the big design's per-firing cost blow up while EWF's barely
moves. The gate fails when the fresh ratio exceeds 2x the committed
wall's ratio for the same pair of rows.

Usage: check_sim_gate.py <fresh.json> <committed BENCH_sim.json>
       check_sim_gate.py --self-test
Both files are the JSON array `salsa_audit --sim-wall` prints (rows of
{benchmark, family, ops, firings, ns_per_firing, ...}).

--self-test runs the unit tests for the per-firing ratio math and the
missing-row / NaN / non-positive error paths (wired into ctest as
sim_gate_selftest and into the sim-smoke CI job), exiting non-zero on any
failure.
"""

import json
import math
import sys

RATIO_LIMIT = 2.0


class GateError(SystemExit):
    """Malformed record: the gate refuses to judge, loudly (exit 1)."""

    def __init__(self, message):
        super().__init__(f"sim gate: {message}")


def per_firing(rows, family, min_ops):
    """ns/firing of the first row matching family with ops >= min_ops.

    Rejects rows whose ns_per_firing is missing, NaN, infinite or <= 0: a
    NaN would otherwise poison the ratio and sail through every float
    comparison as 'not greater', silently passing the gate.
    """
    for r in rows:
        if r.get("family") == family and r.get("ops", -1) >= min_ops:
            try:
                ns = float(r["ns_per_firing"])
            except KeyError:
                raise GateError(
                    f"'{family}' row (ops={r.get('ops')}) has no "
                    f"ns_per_firing field")
            except (TypeError, ValueError):
                raise GateError(
                    f"'{family}' row (ops={r.get('ops')}) has a "
                    f"non-numeric ns_per_firing: {r['ns_per_firing']!r}")
            if math.isnan(ns) or math.isinf(ns) or ns <= 0:
                raise GateError(
                    f"'{family}' row (ops={r.get('ops')}) has an invalid "
                    f"ns_per_firing ({ns}); refusing to judge a ratio on it")
            return ns, r["ops"]
    raise GateError(
        f"no '{family}' row with >= {min_ops} ops in the sim record")


def ratio(rows):
    small, small_ops = per_firing(rows, "ewf", 0)
    big, big_ops = per_firing(rows, "cascade", 5000)
    return big / small, small, small_ops, big, big_ops


def judge(fresh, wall):
    """Returns (ok, lines): the gate verdict plus its printable report."""
    fresh_ratio, fs, fso, fb, fbo = ratio(fresh)
    wall_ratio, ws, wso, wb, wbo = ratio(wall)

    lines = [
        f"fresh: ewf({fso} ops) {fs:.0f} ns/firing, "
        f"cascade({fbo} ops) {fb:.0f} ns/firing -> ratio {fresh_ratio:.2f}",
        f"wall:  ewf({wso} ops) {ws:.0f} ns/firing, "
        f"cascade({wbo} ops) {wb:.0f} ns/firing -> ratio {wall_ratio:.2f}",
    ]
    limit = RATIO_LIMIT * wall_ratio
    if fresh_ratio > limit:
        lines.append(
            f"FAIL: per-firing ratio {fresh_ratio:.2f} exceeds "
            f"{RATIO_LIMIT:.0f}x the committed wall ({wall_ratio:.2f}); a "
            "per-step rescan crept back into the event engine")
        return False, lines
    lines.append(
        f"ok: ratio {fresh_ratio:.2f} within {RATIO_LIMIT:.0f}x of the "
        f"wall ({limit:.2f})")
    return True, lines


def self_test():
    """Unit tests for the ratio math and every error path."""
    import unittest

    def row(family, ops, ns):
        return {"benchmark": "SimWall", "family": family,
                "ops": ops, "ns_per_firing": ns}

    WALL = [row("ewf", 34, 150.0), row("cascade", 10000, 750.0)]

    class GateTests(unittest.TestCase):
        def test_per_firing_picks_first_matching_row(self):
            rows = [row("cascade", 1000, 1.0), row("cascade", 10000, 9.0),
                    row("cascade", 50000, 99.0)]
            self.assertEqual(per_firing(rows, "cascade", 5000), (9.0, 10000))

        def test_per_firing_min_ops_zero_matches_any(self):
            self.assertEqual(per_firing(WALL, "ewf", 0), (150.0, 34))

        def test_ratio_math(self):
            r, small, small_ops, big, big_ops = ratio(WALL)
            self.assertAlmostEqual(r, 5.0)
            self.assertEqual((small, small_ops), (150.0, 34))
            self.assertEqual((big, big_ops), (750.0, 10000))

        def test_gate_passes_within_2x(self):
            fresh = [row("ewf", 34, 140.0), row("cascade", 10000, 1300.0)]
            ok, lines = judge(fresh, WALL)  # ratio 9.29 < 10.0
            self.assertTrue(ok)
            self.assertIn("ok:", lines[-1])

        def test_gate_fails_beyond_2x(self):
            fresh = [row("ewf", 34, 140.0), row("cascade", 10000, 1500.0)]
            ok, lines = judge(fresh, WALL)  # ratio 10.71 > 10.0
            self.assertFalse(ok)
            self.assertIn("FAIL", lines[-1])

        def test_gate_boundary_is_not_a_failure(self):
            fresh = [row("ewf", 34, 150.0), row("cascade", 10000, 1500.0)]
            ok, _ = judge(fresh, WALL)  # exactly 2x: allowed
            self.assertTrue(ok)

        def test_missing_family_row_errors(self):
            with self.assertRaises(SystemExit) as ctx:
                per_firing([row("ewf", 34, 150.0)], "cascade", 5000)
            self.assertIn("no 'cascade' row", str(ctx.exception))

        def test_too_small_ops_errors(self):
            with self.assertRaises(SystemExit):
                per_firing([row("cascade", 1000, 5.0)], "cascade", 5000)

        def test_nan_refused_not_silently_passed(self):
            # float('nan') > limit is False for every limit — without the
            # explicit check a NaN row would pass the gate unnoticed.
            fresh = [row("ewf", 34, float("nan")),
                     row("cascade", 10000, 750.0)]
            with self.assertRaises(SystemExit) as ctx:
                judge(fresh, WALL)
            self.assertIn("invalid ns_per_firing", str(ctx.exception))

        def test_infinite_and_nonpositive_refused(self):
            for bad in (float("inf"), 0.0, -3.0):
                with self.assertRaises(SystemExit):
                    per_firing([row("ewf", 34, bad)], "ewf", 0)

        def test_missing_ns_field_errors(self):
            broken = [{"family": "ewf", "ops": 34}]
            with self.assertRaises(SystemExit) as ctx:
                per_firing(broken, "ewf", 0)
            self.assertIn("no ns_per_firing", str(ctx.exception))

        def test_non_numeric_ns_errors(self):
            with self.assertRaises(SystemExit) as ctx:
                per_firing([row("ewf", 34, "fast")], "ewf", 0)
            self.assertIn("non-numeric", str(ctx.exception))

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(GateTests)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        raise SystemExit(self_test())
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        wall = json.load(f)

    ok, lines = judge(fresh, wall)
    for line in lines:
        print(line)
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
