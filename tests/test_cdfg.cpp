#include <gtest/gtest.h>

#include "cdfg/cdfg.h"
#include "cdfg/dot.h"
#include "cdfg/eval.h"

namespace salsa {
namespace {

Cdfg tiny() {
  Cdfg g("tiny");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  const ValueId c = g.add_const(5);
  const ValueId s = g.add_op(OpKind::kAdd, a, b, "s");
  const ValueId p = g.add_op(OpKind::kMul, s, c, "p");
  g.add_output(p, "o");
  g.validate();
  return g;
}

TEST(Cdfg, BuilderWiresProducersAndConsumers) {
  Cdfg g = tiny();
  EXPECT_EQ(g.count(OpKind::kAdd), 1);
  EXPECT_EQ(g.count(OpKind::kMul), 1);
  EXPECT_EQ(g.input_nodes().size(), 2u);
  EXPECT_EQ(g.output_nodes().size(), 1u);
  // The add consumes both inputs.
  const ValueId a = g.node(g.input_nodes()[0]).out;
  ASSERT_EQ(g.value(a).consumers.size(), 1u);
  EXPECT_EQ(g.node(g.value(a).consumers[0]).kind, OpKind::kAdd);
}

TEST(Cdfg, TopoOrderRespectsDependences) {
  Cdfg g = tiny();
  const auto order = g.topo_order();
  std::vector<int> pos(static_cast<size_t>(g.num_nodes()));
  for (size_t i = 0; i < order.size(); ++i)
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    for (ValueId in : g.node(n).ins)
      EXPECT_LT(pos[static_cast<size_t>(g.producer(in))],
                pos[static_cast<size_t>(n)]);
}

TEST(Cdfg, ConstValuesAreDetected) {
  Cdfg g = tiny();
  int consts = 0;
  for (ValueId v = 0; v < g.num_values(); ++v) consts += g.is_const_value(v);
  EXPECT_EQ(consts, 1);
}

TEST(Cdfg, StateRequiresNext) {
  Cdfg g("s");
  const ValueId st = g.add_state("st");
  const ValueId one = g.add_const(1);
  (void)g.add_op(OpKind::kAdd, st, one, "n");
  EXPECT_THROW(g.validate(), Error);  // state_next not set
}

TEST(Cdfg, StateNextOnNonStateThrows) {
  Cdfg g("s");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_const(2);
  const ValueId n = g.add_op(OpKind::kAdd, a, b);
  EXPECT_THROW(g.set_state_next(a, n), Error);
}

TEST(Cdfg, StateNextTwiceThrows) {
  Cdfg g("s");
  const ValueId st = g.add_state("st");
  const ValueId one = g.add_const(1);
  const ValueId n = g.add_op(OpKind::kAdd, st, one, "n");
  g.set_state_next(st, n);
  EXPECT_THROW(g.set_state_next(st, n), Error);
}

TEST(Cdfg, StateFedByConstantThrows) {
  Cdfg g("s");
  const ValueId st = g.add_state("st");
  const ValueId one = g.add_const(1);
  (void)g.add_op(OpKind::kAdd, st, one, "n");
  EXPECT_THROW(g.set_state_next(st, one), Error);
}

TEST(Cdfg, OpKindPredicates) {
  EXPECT_TRUE(is_binary(OpKind::kAdd));
  EXPECT_TRUE(is_binary(OpKind::kSub));
  EXPECT_TRUE(is_binary(OpKind::kMul));
  EXPECT_FALSE(is_binary(OpKind::kNop));
  EXPECT_TRUE(is_operation(OpKind::kNop));
  EXPECT_FALSE(is_operation(OpKind::kInput));
  EXPECT_TRUE(is_commutative(OpKind::kAdd));
  EXPECT_TRUE(is_commutative(OpKind::kMul));
  EXPECT_FALSE(is_commutative(OpKind::kSub));
}

TEST(Eval, CombinationalArithmetic) {
  Cdfg g = tiny();
  Evaluator ev(g);
  const int64_t in[] = {3, 4};
  const auto out = ev.step(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (3 + 4) * 5);
}

TEST(Eval, SubtractionOrderMatters) {
  Cdfg g("sub");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  g.add_output(g.add_op(OpKind::kSub, a, b, "d"), "o");
  g.validate();
  Evaluator ev(g);
  const int64_t in[] = {10, 3};
  EXPECT_EQ(ev.step(in)[0], 7);
}

TEST(Eval, StateCarriesAcrossIterations) {
  // Accumulator: st' = st + in; out = st (pre-update value via direct read).
  Cdfg g("acc");
  const ValueId in = g.add_input("in");
  const ValueId st = g.add_state("st");
  const ValueId nxt = g.add_op(OpKind::kAdd, st, in, "sum");
  g.set_state_next(st, nxt);
  g.add_output(nxt, "o");
  g.validate();
  const int64_t init[] = {100};
  Evaluator ev(g, init);
  const int64_t one[] = {1};
  EXPECT_EQ(ev.step(one)[0], 101);
  EXPECT_EQ(ev.step(one)[0], 102);
  EXPECT_EQ(ev.step(one)[0], 103);
  EXPECT_EQ(ev.states()[0], 103);
}

TEST(Eval, NopForwards) {
  Cdfg g("nop");
  const ValueId a = g.add_input("a");
  g.add_output(g.add_nop(a, "n"), "o");
  g.validate();
  Evaluator ev(g);
  const int64_t in[] = {-17};
  EXPECT_EQ(ev.step(in)[0], -17);
}

TEST(Eval, WrappingOverflowIsDefined) {
  EXPECT_EQ(apply_op(OpKind::kAdd, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(apply_op(OpKind::kMul, INT64_MAX, 2), -2);
}

TEST(Dot, ContainsAllNodesAndEdges) {
  Cdfg g = tiny();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"s\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, ScheduledVariantRanksBySteps) {
  Cdfg g = tiny();
  std::vector<int> starts(static_cast<size_t>(g.num_nodes()), 0);
  const std::string dot = to_dot(g, starts, 3);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("step 2"), std::string::npos);
}

}  // namespace
}  // namespace salsa
