// Randomized equivalence test for the incremental-cost SearchEngine: on
// several benchmarks, thousands of move transactions are proposed and then
// either committed or rolled back at random. After every single step the
// engine's incrementally maintained cost breakdown must equal a fresh
// evaluate_cost of its binding, field for field, and a rollback must
// restore the binding (and occupancy) byte-identically.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "bench_suite/random_cdfg.h"
#include "core/cost.h"
#include "core/improver.h"
#include "core/initial.h"
#include "core/search_engine.h"
#include "core/verify.h"
#include "io/report.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs, CostWeights weights = {}) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs, weights);
  }
};

void expect_same_breakdown(const CostBreakdown& inc, const CostBreakdown& full,
                           long step) {
  ASSERT_EQ(inc.fus_used, full.fus_used) << "at step " << step;
  ASSERT_EQ(inc.regs_used, full.regs_used) << "at step " << step;
  ASSERT_EQ(inc.connections, full.connections) << "at step " << step;
  ASSERT_EQ(inc.muxes, full.muxes) << "at step " << step;
  ASSERT_EQ(inc.total, full.total) << "at step " << step;
}

void expect_same_occupancy(const Occupancy& a, const Occupancy& b, long step) {
  ASSERT_EQ(a.fu_user, b.fu_user) << "at step " << step;
  ASSERT_EQ(a.reg_sto, b.reg_sto) << "at step " << step;
}

// Applies `target` feasible transactions, committing or rolling back at
// random, checking the engine against the full evaluator at every step.
void run_equivalence(const AllocProblem& prob, uint64_t seed, long target) {
  Binding start = initial_allocation(prob, InitialOptions{.seed = seed});
  SearchEngine eng(start);
  const MoveConfig moves = MoveConfig::salsa_default();
  Rng rng(seed * 7919 + 1);

  long steps = 0;
  long committed = 0, rolled_back = 0;
  long proposals = 0;
  const long proposal_cap = target * 50;  // in case feasibility is scarce
  while (steps < target && proposals < proposal_cap) {
    ++proposals;
    const Binding before = eng.binding();
    const double total_before = eng.total();
    const auto delta = eng.propose(moves.pick(rng), rng);
    if (!delta) {
      // A failed proposal must leave no trace.
      ASSERT_EQ(eng.binding(), before);
      ASSERT_EQ(eng.total(), total_before);
      continue;
    }
    ++steps;
    if (rng.chance(0.5)) {
      eng.commit();
      ++committed;
      ASSERT_NEAR(eng.total(), total_before + *delta, 1e-9);
    } else {
      eng.rollback();
      ++rolled_back;
      ASSERT_EQ(eng.binding(), before) << "rollback not byte-identical";
      ASSERT_EQ(eng.total(), total_before);
    }
    expect_same_breakdown(eng.cost(), evaluate_cost(eng.binding()), steps);
    if (steps % 256 == 0) {
      expect_same_occupancy(eng.occupancy(), eng.binding().occupancy(), steps);
      ASSERT_TRUE(verify(eng.binding()).empty()) << "illegal at step " << steps;
    }
  }
  ASSERT_GE(steps, target) << "too few feasible moves";
  EXPECT_GT(committed, 0);
  EXPECT_GT(rolled_back, 0);
  expect_same_occupancy(eng.occupancy(), eng.binding().occupancy(), steps);
  ASSERT_TRUE(verify(eng.binding()).empty());
}

TEST(IncrementalCost, MatchesFullEvalOnEwf) {
  Ctx ctx(make_ewf(), 17, 2);
  run_equivalence(*ctx.prob, 11, 5000);
}

TEST(IncrementalCost, MatchesFullEvalOnDct) {
  Ctx ctx(make_dct(), 9, 2);
  run_equivalence(*ctx.prob, 23, 5000);
}

TEST(IncrementalCost, MatchesFullEvalOnRandomCdfg) {
  RandomCdfgParams p;
  p.num_ops = 24;
  p.seed = 5;
  Ctx ctx(make_random_cdfg(p), 12, 2);
  run_equivalence(*ctx.prob, 37, 5000);
}

TEST(IncrementalCost, MatchesFullEvalWithChargedConstants) {
  CostWeights w;
  w.constants_cost = true;
  Ctx ctx(make_ewf(), 19, 2, w);
  run_equivalence(*ctx.prob, 41, 5000);
}

TEST(IncrementalCost, ResetToRebuildsCleanly) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding a = initial_allocation(*ctx.prob, InitialOptions{.seed = 1});
  Binding b = initial_allocation(*ctx.prob, InitialOptions{.seed = 2});
  SearchEngine eng(a);
  expect_same_breakdown(eng.cost(), evaluate_cost(a), 0);
  eng.reset_to(b);
  ASSERT_EQ(eng.binding(), b);
  expect_same_breakdown(eng.cost(), evaluate_cost(b), 1);
  EXPECT_TRUE(eng.matches_full_eval());
}

TEST(IncrementalCost, TraceStreamsJsonlRecords) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  std::ostringstream trace;
  ImproveParams p;
  p.max_trials = 2;
  p.moves_per_trial = 200;
  p.trace = &trace;
  improve(start, p);
  const std::string out = trace.str();
  ASSERT_FALSE(out.empty());
  // Every line is one JSON object with the expected fields.
  std::istringstream lines(out);
  std::string line;
  long records = 0;
  while (std::getline(lines, line)) {
    ++records;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
    EXPECT_NE(line.find("\"move\":"), std::string::npos);
    EXPECT_NE(line.find("\"delta\":"), std::string::npos);
    EXPECT_NE(line.find("\"accepted\":"), std::string::npos);
    EXPECT_NE(line.find("\"uphill_left\":"), std::string::npos);
  }
  EXPECT_GT(records, 0);
}

TEST(IncrementalCost, PerKindStatsAndReport) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  ImproveParams p;
  p.max_trials = 3;
  p.moves_per_trial = 500;
  const ImproveResult res = improve(start, p);
  long attempted = 0, accepted = 0;
  for (const MoveKindStats& mk : res.stats.by_kind) {
    attempted += mk.attempted;
    accepted += mk.accepted;
    EXPECT_LE(mk.accepted, mk.attempted);
  }
  EXPECT_EQ(attempted, res.stats.attempted);
  EXPECT_EQ(accepted, res.stats.accepted);
  const std::string report = search_stats_report(res.stats);
  EXPECT_NE(report.find("F2:fu-move"), std::string::npos);
  EXPECT_NE(report.find("accept%"), std::string::npos);
  EXPECT_NE(report.find("kicks"), std::string::npos);
}

}  // namespace
}  // namespace salsa
