#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "bench_suite/random_cdfg.h"
#include "core/allocator.h"
#include "core/moves.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int extra_len, bool pipelined, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    hw.pipelined_mul = pipelined;
    const int len = min_schedule_length(*g, hw) + extra_len;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

// ---------------------------------------------------------------------------
// Parameterized equivalence over every benchmark and several configurations.
struct EquivCase {
  const char* name;
  Cdfg (*make)();
  int extra_len;
  bool pipelined;
  int extra_regs;
};

class DatapathMatchesReference : public ::testing::TestWithParam<EquivCase> {};

TEST_P(DatapathMatchesReference, OnInitialAllocation) {
  const EquivCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 6, 99), "");
}

TEST_P(DatapathMatchesReference, AfterRandomMoveScramble) {
  const EquivCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(c.extra_len * 31 + c.extra_regs + 1);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 600; ++i) apply_random_move(b, all.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 6, 7), "");
}

TEST_P(DatapathMatchesReference, AfterFullAllocation) {
  const EquivCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  AllocatorOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 300;
  const AllocationResult res = allocate(*ctx.prob, opts);
  Netlist nl(res.binding);
  EXPECT_EQ(random_equivalence_check(nl, 6, 123), "");
}

INSTANTIATE_TEST_SUITE_P(
    Benches, DatapathMatchesReference,
    ::testing::Values(EquivCase{"ewf_min", make_ewf, 0, false, 1},
                      EquivCase{"ewf_loose", make_ewf, 2, false, 2},
                      EquivCase{"ewf_pipe", make_ewf, 0, true, 2},
                      EquivCase{"dct_min", make_dct, 0, false, 1},
                      EquivCase{"dct_loose", make_dct, 3, false, 2},
                      EquivCase{"dct_pipe", make_dct, 3, true, 1},
                      EquivCase{"ar_min", make_ar_filter, 0, false, 2},
                      EquivCase{"ar_loose", make_ar_filter, 3, false, 2},
                      EquivCase{"fir_min", make_fir8, 0, false, 2},
                      EquivCase{"fir_loose", make_fir8, 2, false, 2},
                      EquivCase{"diffeq_min", make_diffeq, 0, false, 1},
                      EquivCase{"diffeq_loose", make_diffeq, 2, false, 2}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Property test: random CDFGs, random schedules, random move scrambles —
// the datapath must always match the evaluator.
class RandomCdfgEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomCdfgEquivalence, HoldsThroughScramble) {
  RandomCdfgParams params;
  params.seed = static_cast<uint64_t>(GetParam());
  params.num_ops = 12 + GetParam() % 9;
  params.num_states = GetParam() % 3;
  params.num_inputs = 1 + GetParam() % 3;
  Cdfg g = make_random_cdfg(params);
  HwSpec hw;
  hw.pipelined_mul = GetParam() % 2 == 0;
  const int len = min_schedule_length(g, hw) + GetParam() % 4;
  Schedule sched = schedule_min_fu(g, hw, len).schedule;
  AllocProblem prob(sched, FuPool::standard(peak_fu_demand(sched)),
                    Lifetimes(sched).min_registers() + 2);
  Binding b = initial_allocation(prob, InitialOptions{.seed = params.seed});
  Rng rng(params.seed * 7 + 1);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 300; ++i) apply_random_move(b, all.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 5, params.seed), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCdfgEquivalence,
                         ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
TEST(Simulator, AccumulatorStateSequence) {
  Cdfg g("acc");
  const ValueId in = g.add_input("in");
  const ValueId st = g.add_state("st");
  const ValueId sum = g.add_op(OpKind::kAdd, st, in, "sum");
  g.set_state_next(st, sum);
  g.add_output(sum, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 3);
  s.set_start(g.producer(sum), 0);
  s.set_start(g.output_nodes()[0], 1);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs{{5}, {6}, {7}, {8}};
  const int64_t init[] = {100};
  const SimResult r = simulate(nl, inputs, init, 3);
  EXPECT_EQ(r.outputs[0][0], 105);
  EXPECT_EQ(r.outputs[1][0], 111);
  EXPECT_EQ(r.outputs[2][0], 118);
}

TEST(Simulator, CompareReportsMismatchLocation) {
  // A correct binding must produce an empty report; sanity of the plumbing.
  Ctx ctx(make_diffeq(), 1, false, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs(4,
                                           std::vector<int64_t>{1, 2, 3, 4});
  EXPECT_EQ(compare_with_reference(nl, inputs, {}, 3), "");
}

TEST(Simulator, PipelinedMultiplierBackToBack) {
  // Two multiplications on one pipelined unit in consecutive steps.
  Cdfg g("pipe");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  const ValueId c2 = g.add_const(3);
  const ValueId m1 = g.add_op(OpKind::kMul, a, c2, "m1");
  const ValueId m2 = g.add_op(OpKind::kMul, b, c2, "m2");
  const ValueId s = g.add_op(OpKind::kAdd, m1, m2, "s");
  g.add_output(s, "o");
  g.validate();
  HwSpec hw;
  hw.pipelined_mul = true;
  Schedule sch(g, hw, 5);
  sch.set_start(g.producer(m1), 0);
  sch.set_start(g.producer(m2), 1);
  sch.set_start(g.producer(s), 3);
  sch.set_start(g.output_nodes()[0], 4);
  sch.validate();
  FuPool pool = FuPool::standard(FuBudget{1, 1});
  AllocProblem prob(sch, pool, Lifetimes(sch).min_registers());
  Binding bind = initial_allocation(prob);
  // Both muls must share the single multiplier.
  EXPECT_EQ(bind.op(g.producer(m1)).fu, bind.op(g.producer(m2)).fu);
  Netlist nl(bind);
  EXPECT_EQ(random_equivalence_check(nl, 4, 5), "");
}

}  // namespace
}  // namespace salsa
