#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "bench_suite/random_cdfg.h"
#include "core/allocator.h"
#include "core/moves.h"
#include "core/verify.h"
#include "datapath/controller.h"
#include "datapath/event_sim.h"
#include "datapath/simulator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int extra_len, bool pipelined, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    hw.pipelined_mul = pipelined;
    const int len = min_schedule_length(*g, hw) + extra_len;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

// ---------------------------------------------------------------------------
// Parameterized equivalence over every benchmark and several configurations.
struct EquivCase {
  const char* name;
  Cdfg (*make)();
  int extra_len;
  bool pipelined;
  int extra_regs;
};

class DatapathMatchesReference : public ::testing::TestWithParam<EquivCase> {};

TEST_P(DatapathMatchesReference, OnInitialAllocation) {
  const EquivCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 6, 99), "");
}

TEST_P(DatapathMatchesReference, AfterRandomMoveScramble) {
  const EquivCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(c.extra_len * 31 + c.extra_regs + 1);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 600; ++i) apply_random_move(b, all.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 6, 7), "");
}

TEST_P(DatapathMatchesReference, AfterFullAllocation) {
  const EquivCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  AllocatorOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 300;
  const AllocationResult res = allocate(*ctx.prob, opts);
  Netlist nl(res.binding);
  EXPECT_EQ(random_equivalence_check(nl, 6, 123), "");
}

INSTANTIATE_TEST_SUITE_P(
    Benches, DatapathMatchesReference,
    ::testing::Values(EquivCase{"ewf_min", make_ewf, 0, false, 1},
                      EquivCase{"ewf_loose", make_ewf, 2, false, 2},
                      EquivCase{"ewf_pipe", make_ewf, 0, true, 2},
                      EquivCase{"dct_min", make_dct, 0, false, 1},
                      EquivCase{"dct_loose", make_dct, 3, false, 2},
                      EquivCase{"dct_pipe", make_dct, 3, true, 1},
                      EquivCase{"ar_min", make_ar_filter, 0, false, 2},
                      EquivCase{"ar_loose", make_ar_filter, 3, false, 2},
                      EquivCase{"fir_min", make_fir8, 0, false, 2},
                      EquivCase{"fir_loose", make_fir8, 2, false, 2},
                      EquivCase{"diffeq_min", make_diffeq, 0, false, 1},
                      EquivCase{"diffeq_loose", make_diffeq, 2, false, 2}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Property test: random CDFGs, random schedules, random move scrambles —
// the datapath must always match the evaluator.
class RandomCdfgEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomCdfgEquivalence, HoldsThroughScramble) {
  RandomCdfgParams params;
  params.seed = static_cast<uint64_t>(GetParam());
  params.num_ops = 12 + GetParam() % 9;
  params.num_states = GetParam() % 3;
  params.num_inputs = 1 + GetParam() % 3;
  Cdfg g = make_random_cdfg(params);
  HwSpec hw;
  hw.pipelined_mul = GetParam() % 2 == 0;
  const int len = min_schedule_length(g, hw) + GetParam() % 4;
  Schedule sched = schedule_min_fu(g, hw, len).schedule;
  AllocProblem prob(sched, FuPool::standard(peak_fu_demand(sched)),
                    Lifetimes(sched).min_registers() + 2);
  Binding b = initial_allocation(prob, InitialOptions{.seed = params.seed});
  Rng rng(params.seed * 7 + 1);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 300; ++i) apply_random_move(b, all.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 5, params.seed), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCdfgEquivalence,
                         ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
TEST(Simulator, AccumulatorStateSequence) {
  Cdfg g("acc");
  const ValueId in = g.add_input("in");
  const ValueId st = g.add_state("st");
  const ValueId sum = g.add_op(OpKind::kAdd, st, in, "sum");
  g.set_state_next(st, sum);
  g.add_output(sum, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 3);
  s.set_start(g.producer(sum), 0);
  s.set_start(g.output_nodes()[0], 1);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs{{5}, {6}, {7}, {8}};
  const int64_t init[] = {100};
  const SimResult r = simulate(nl, inputs, init, 3);
  EXPECT_EQ(r.outputs[0][0], 105);
  EXPECT_EQ(r.outputs[1][0], 111);
  EXPECT_EQ(r.outputs[2][0], 118);
}

TEST(Simulator, CompareReportsMismatchLocation) {
  // A correct binding must produce an empty report; sanity of the plumbing.
  Ctx ctx(make_diffeq(), 1, false, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs(4,
                                           std::vector<int64_t>{1, 2, 3, 4});
  EXPECT_EQ(compare_with_reference(nl, inputs, {}, 3), "");
}

TEST(Simulator, FeedthroughChainOfNops) {
  // A chain of pass-through (nop) operations: each hop is a zero-latency
  // combinational feedthrough from a register through an FU back into a
  // register within one cycle. The output must be the identity of the
  // input stream, and both engines must agree on every hop.
  Cdfg g("feedthrough");
  const ValueId a = g.add_input("a");
  const ValueId n1 = g.add_nop(a, "n1");
  const ValueId n2 = g.add_nop(n1, "n2");
  const ValueId n3 = g.add_nop(n2, "n3");
  g.add_output(n3, "o");
  g.validate();
  HwSpec hw;
  Schedule sched = schedule_min_fu(g, hw, min_schedule_length(g, hw)).schedule;
  AllocProblem prob(sched, FuPool::standard(peak_fu_demand(sched)),
                    Lifetimes(sched).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs{{10}, {-4}, {77}, {0}};
  const SimResult r = simulate(nl, inputs, {}, 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r.outputs[static_cast<size_t>(i)][0],
                                        inputs[static_cast<size_t>(i)][0]);
  EXPECT_EQ(random_equivalence_check(nl, 5, 11), "");
  EXPECT_EQ(random_engine_diff(nl, 5, 11), "");
}

TEST(Simulator, SameCycleMultiDriverUpdates) {
  // One multiplier result fans out to two ALUs in the same step, and both
  // ALU results land in the same cycle — two registers load simultaneously
  // from two different drivers. The landing-cycle load (register captures a
  // freshly landed FU result on the very edge it arrives) is also on this
  // path.
  Cdfg g("fanout");
  const ValueId a = g.add_input("a");
  const ValueId bb = g.add_input("b");
  const ValueId c3 = g.add_const(3);
  const ValueId m = g.add_op(OpKind::kMul, a, c3, "m");
  const ValueId x = g.add_op(OpKind::kAdd, m, bb, "x");
  const ValueId y = g.add_op(OpKind::kSub, m, bb, "y");
  g.add_output(x, "ox");
  g.add_output(y, "oy");
  g.validate();
  HwSpec hw;
  Schedule sch(g, hw, 4);
  sch.set_start(g.producer(m), 0);  // lands at the end of step 1
  sch.set_start(g.producer(x), 2);
  sch.set_start(g.producer(y), 2);
  sch.set_start(g.output_nodes()[0], 3);
  sch.set_start(g.output_nodes()[1], 3);
  sch.validate();
  AllocProblem prob(sch, FuPool::standard(FuBudget{2, 1}),
                    Lifetimes(sch).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  // The scenario is real: some step carries two simultaneous register loads.
  std::map<int, int> loads_per_step;
  for (const RegLoad& ld : nl.reg_loads()) ++loads_per_step[ld.step];
  int peak = 0;
  for (const auto& [step, n] : loads_per_step) peak = std::max(peak, n);
  EXPECT_GE(peak, 2);
  std::vector<std::vector<int64_t>> inputs{{5, 2}, {-7, 10}, {0, 0}};
  const SimResult r = simulate(nl, inputs, {}, 2);
  EXPECT_EQ(r.outputs[0][0], 17);   // 3*5 + 2
  EXPECT_EQ(r.outputs[0][1], 13);   // 3*5 - 2
  EXPECT_EQ(r.outputs[1][0], -11);  // 3*-7 + 10
  EXPECT_EQ(r.outputs[1][1], -31);
  EXPECT_EQ(random_equivalence_check(nl, 4, 21), "");
  EXPECT_EQ(random_engine_diff(nl, 4, 21), "");
}

TEST(Simulator, ControllerStallStepsCoast) {
  // A schedule much longer than the work leaves all-idle control words:
  // no FU starts, no register loads. The controller reports them, the
  // machine must coast through them (state held), and the event engine —
  // which schedules nothing at idle steps — must coast identically.
  Cdfg g("stall");
  const ValueId in = g.add_input("in");
  const ValueId st = g.add_state("st");
  const ValueId sum = g.add_op(OpKind::kAdd, st, in, "sum");
  g.set_state_next(st, sum);
  g.add_output(sum, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 7);
  s.set_start(g.producer(sum), 0);
  s.set_start(g.output_nodes()[0], 1);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  EXPECT_GE(analyze_controller(nl).idle_steps, 4);
  std::vector<std::vector<int64_t>> inputs{{5}, {6}, {7}, {8}};
  const int64_t init[] = {100};
  const SimResult r = simulate(nl, inputs, init, 3);
  EXPECT_EQ(r.outputs[0][0], 105);
  EXPECT_EQ(r.outputs[1][0], 111);
  EXPECT_EQ(r.outputs[2][0], 118);
  EXPECT_EQ(random_engine_diff(nl, 4, 33), "");
}

TEST(Simulator, FinalIterationFlushIgnoresMissingPrefetch) {
  // The input port prefetches the next iteration's values; on the final
  // iteration there is nothing left to prefetch. Supplying exactly
  // `iterations` input vectors (no prefetch row) must produce the same
  // outputs as supplying the extra row — the flush path skips the load
  // instead of reading past the end.
  Cdfg g("flush");
  const ValueId in = g.add_input("in");
  const ValueId st = g.add_state("st");
  const ValueId sum = g.add_op(OpKind::kAdd, st, in, "sum");
  g.set_state_next(st, sum);
  g.add_output(sum, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 3);
  s.set_start(g.producer(sum), 0);
  s.set_start(g.output_nodes()[0], 1);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  const std::vector<std::vector<int64_t>> exact{{5}, {6}, {7}};
  std::vector<std::vector<int64_t>> padded = exact;
  padded.push_back({999});
  const int64_t init[] = {100};
  const SimResult a1 = simulate(nl, exact, init, 3);
  const SimResult a2 = simulate(nl, padded, init, 3);
  EXPECT_EQ(a1.outputs, a2.outputs);
  const SimResult e1 = simulate_events(nl, exact, init, 3);
  const SimResult e2 = simulate_events(nl, padded, init, 3);
  EXPECT_EQ(e1.outputs, a1.outputs);
  EXPECT_EQ(e2.outputs, a1.outputs);
}

TEST(Simulator, PipelinedMultiplierBackToBack) {
  // Two multiplications on one pipelined unit in consecutive steps.
  Cdfg g("pipe");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  const ValueId c2 = g.add_const(3);
  const ValueId m1 = g.add_op(OpKind::kMul, a, c2, "m1");
  const ValueId m2 = g.add_op(OpKind::kMul, b, c2, "m2");
  const ValueId s = g.add_op(OpKind::kAdd, m1, m2, "s");
  g.add_output(s, "o");
  g.validate();
  HwSpec hw;
  hw.pipelined_mul = true;
  Schedule sch(g, hw, 5);
  sch.set_start(g.producer(m1), 0);
  sch.set_start(g.producer(m2), 1);
  sch.set_start(g.producer(s), 3);
  sch.set_start(g.output_nodes()[0], 4);
  sch.validate();
  FuPool pool = FuPool::standard(FuBudget{1, 1});
  AllocProblem prob(sch, pool, Lifetimes(sch).min_registers());
  Binding bind = initial_allocation(prob);
  // Both muls must share the single multiplier.
  EXPECT_EQ(bind.op(g.producer(m1)).fu, bind.op(g.producer(m2)).fu);
  Netlist nl(bind);
  EXPECT_EQ(random_equivalence_check(nl, 4, 5), "");
}

}  // namespace
}  // namespace salsa
