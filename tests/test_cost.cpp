#include <gtest/gtest.h>

#include <memory>

#include "core/cost.h"
#include "core/initial.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

// One ALU, one computed value read late: in -> a1 = in + c, out at step 3.
// Value a1 is ready at step 1 and read at step 3 (segments at steps 1,2,3).
class TinyFixture {
 public:
  TinyFixture() {
    g_ = std::make_unique<Cdfg>("tiny");
    in = g_->add_input("in");
    c = g_->add_const(7);
    a1 = g_->add_op(OpKind::kAdd, in, c, "a1");
    out_node = g_->add_output(a1, "o");
    a1_node = g_->producer(a1);
    g_->validate();
    sched_ = std::make_unique<Schedule>(*g_, HwSpec{}, 4);
    sched_->set_start(a1_node, 0);
    sched_->set_start(out_node, 3);
    prob_ = std::make_unique<AllocProblem>(*sched_,
                                           FuPool::standard(FuBudget{1, 0}), 3);
  }

  AllocProblem& prob() { return *prob_; }

  // Contiguous binding: input in r_in, a1 in r_a for its whole life.
  Binding contiguous(RegId r_in, RegId r_a) {
    Binding b(*prob_);
    b.op(a1_node).fu = 0;
    const Lifetimes& lt = prob_->lifetimes();
    for (auto [v, r] : {std::pair{in, r_in}, std::pair{a1, r_a}}) {
      StorageBinding& sb = b.sto(lt.storage_of(v));
      for (size_t seg = 0; seg < sb.cells.size(); ++seg)
        sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    }
    return b;
  }

  ValueId in, c, a1;
  NodeId a1_node, out_node;

 private:
  std::unique_ptr<Cdfg> g_;
  std::unique_ptr<Schedule> sched_;
  std::unique_ptr<AllocProblem> prob_;
};

TEST(Cost, ContiguousBindingHasNoMuxes) {
  TinyFixture f;
  Binding b = f.contiguous(1, 0);
  check_legal(b);
  const CostBreakdown cost = evaluate_cost(b);
  EXPECT_EQ(cost.muxes, 0);
  // in-port->r1, r1->alu.in0, alu.out->r0, r0->outport. Constant is free.
  EXPECT_EQ(cost.connections, 4);
  EXPECT_EQ(cost.regs_used, 2);
  EXPECT_EQ(cost.fus_used, 1);
}

TEST(Cost, ConstantOperandsAreFree) {
  TinyFixture f;
  Binding b = f.contiguous(1, 0);
  // The constant reaches alu.in1 in the netlist but contributes nothing.
  bool const_seen = false;
  for (const ConnUse& u : connection_uses(b))
    if (u.src.kind == Endpoint::Kind::kConstPort) const_seen = true;
  EXPECT_TRUE(const_seen);
  EXPECT_EQ(evaluate_cost(b).muxes, 0);
}

TEST(Cost, SegmentTransferAddsConnection) {
  TinyFixture f;
  Binding b = f.contiguous(1, 0);
  // Move a1's segments 1..2 to register 2: one direct reg->reg transfer.
  const int sid = f.prob().lifetimes().storage_of(f.a1);
  StorageBinding& sb = b.sto(sid);
  ASSERT_EQ(sb.cells.size(), 3u);  // live steps 1..3
  sb.cells[1][0] = Cell{2, 0, kInvalidId};
  sb.cells[2][0] = Cell{2, 0, kInvalidId};
  check_legal(b);
  const CostBreakdown cost = evaluate_cost(b);
  // inport->r1, r1->alu.in0, alu.out->r0, r0->r2, r2->outport.
  EXPECT_EQ(cost.connections, 5);
  EXPECT_EQ(cost.muxes, 0);
  EXPECT_EQ(cost.regs_used, 3);
}

TEST(Cost, PassThroughSharesPinAndCreatesMux) {
  TinyFixture f;
  Binding b = f.contiguous(1, 0);
  // Route the transfer through the ALU (idle at step 1): its in0 now sees
  // both r1 (operand read, step 0) and r0 (pass, step 1) — one 2-1 mux.
  const int sid = f.prob().lifetimes().storage_of(f.a1);
  StorageBinding& sb = b.sto(sid);
  sb.cells[1][0] = Cell{2, 0, /*via=*/0};
  sb.cells[2][0] = Cell{2, 0, kInvalidId};
  check_legal(b);
  const CostBreakdown cost = evaluate_cost(b);
  EXPECT_EQ(cost.muxes, 1);
  // inport->r1, r1->alu.in0, r0->alu.in0, alu.out->r0, alu.out->r2,
  // r2->outport.
  EXPECT_EQ(cost.connections, 6);
}

TEST(Cost, ValueCopyFansOutProducer) {
  TinyFixture f;
  Binding b = f.contiguous(1, 0);
  // A second copy of a1's first segment in r2: the producer latches into
  // two registers (fan-out: two connections, no mux).
  const int sid = f.prob().lifetimes().storage_of(f.a1);
  StorageBinding& sb = b.sto(sid);
  sb.cells[0].push_back(Cell{2, -1, kInvalidId});
  check_legal(b);
  const CostBreakdown cost = evaluate_cost(b);
  EXPECT_EQ(cost.muxes, 0);
  EXPECT_EQ(cost.connections, 5);
  EXPECT_EQ(cost.regs_used, 3);
}

TEST(Cost, WeightsScaleTotal) {
  TinyFixture f;
  Binding b = f.contiguous(1, 0);
  const CostBreakdown cost = evaluate_cost(b);
  const CostWeights& w = f.prob().weights();
  EXPECT_DOUBLE_EQ(cost.total, w.fu * cost.fus_used + w.reg * cost.regs_used +
                                   w.mux * cost.muxes +
                                   w.conn * cost.connections);
}

TEST(Cost, KeysDistinguishKindsAndIds) {
  EXPECT_NE(key_of(Endpoint{Endpoint::Kind::kFuOut, 1}),
            key_of(Endpoint{Endpoint::Kind::kRegOut, 1}));
  EXPECT_NE(key_of(Pin{Pin::Kind::kFuIn0, 2}),
            key_of(Pin{Pin::Kind::kFuIn1, 2}));
  EXPECT_NE(key_of(Pin{Pin::Kind::kRegIn, 0}),
            key_of(Pin{Pin::Kind::kRegIn, 1}));
}

}  // namespace
}  // namespace salsa
