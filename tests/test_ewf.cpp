// Golden properties of the reconstructed elliptic wave filter benchmark.
// These pin the canonical census and the scheduling envelope this
// repository's Table 2 reproduction is built on (see DESIGN.md for the
// reconstruction note).
#include <gtest/gtest.h>

#include "bench_suite/ewf.h"
#include "cdfg/eval.h"
#include "core/lifetime.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/rng.h"

namespace salsa {
namespace {

TEST(Ewf, CanonicalOperationCensus) {
  Cdfg g = make_ewf();
  EXPECT_EQ(g.count(OpKind::kAdd), 26);
  EXPECT_EQ(g.count(OpKind::kMul), 8);
  EXPECT_EQ(g.count(OpKind::kSub), 0);
  EXPECT_EQ(static_cast<int>(g.operations().size()), 34);
  EXPECT_EQ(g.state_nodes().size(), 7u);
  EXPECT_EQ(g.input_nodes().size(), 1u);
  EXPECT_EQ(g.output_nodes().size(), 1u);
}

TEST(Ewf, AllMultipliersHaveConstantCoefficients) {
  Cdfg g = make_ewf();
  for (NodeId n : g.operations()) {
    if (g.node(n).kind != OpKind::kMul) continue;
    EXPECT_TRUE(g.is_const_value(g.node(n).ins[1]))
        << "EWF multiplies data by filter coefficients only";
  }
}

TEST(Ewf, CriticalPathIs17StepsBothPipelinings) {
  Cdfg g = make_ewf();
  HwSpec np, p;
  p.pipelined_mul = true;
  EXPECT_EQ(min_schedule_length(g, np), 17);
  EXPECT_EQ(min_schedule_length(g, p), 17);
}

TEST(Ewf, FuEnvelopeAtTableLengths) {
  // The measured envelope of this reconstruction (Table 2 of
  // EXPERIMENTS.md). Pinned so a change to the graph or the schedulers is
  // visible immediately.
  Cdfg g = make_ewf();
  HwSpec np, p;
  p.pipelined_mul = true;
  {
    auto r = schedule_min_fu(g, np, 17);
    EXPECT_EQ(r.fus.alu, 3);
    EXPECT_EQ(r.fus.mul, 2);
  }
  {
    auto r = schedule_min_fu(g, p, 17);
    EXPECT_EQ(r.fus.alu, 3);
    EXPECT_EQ(r.fus.mul, 1);
  }
  {
    auto r = schedule_min_fu(g, np, 19);
    EXPECT_LE(r.fus.alu, 2);
    EXPECT_LE(r.fus.mul, 2);
  }
  {
    auto r = schedule_min_fu(g, np, 21);
    EXPECT_LE(r.fus.alu, 2);
    EXPECT_LE(r.fus.mul, 1);
  }
}

TEST(Ewf, RegisterDemandEnvelope) {
  Cdfg g = make_ewf();
  HwSpec hw;
  for (int L : {17, 19, 21}) {
    Schedule s = schedule_min_fu(g, hw, L).schedule;
    Lifetimes lt(s);
    EXPECT_GE(lt.min_registers(), 10) << "L=" << L;
    EXPECT_LE(lt.min_registers(), 14) << "L=" << L;
    EXPECT_EQ(lt.num_storages(), 35) << "L=" << L;
  }
}

TEST(Ewf, BehavesAsALinearFilter) {
  // Linearity: the response to a+b equals response(a) + response(b) when
  // states superpose (all ops are adds and constant multiplies).
  Cdfg g = make_ewf();
  Evaluator e1(g), e2(g), e12(g);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const int64_t a = static_cast<int64_t>(rng.next() % 200) - 100;
    const int64_t b = static_cast<int64_t>(rng.next() % 200) - 100;
    const int64_t in1[] = {a};
    const int64_t in2[] = {b};
    const int64_t in12[] = {a + b};
    const auto y1 = e1.step(in1);
    const auto y2 = e2.step(in2);
    const auto y12 = e12.step(in12);
    EXPECT_EQ(y12[0], y1[0] + y2[0]) << "iteration " << i;
  }
}

TEST(Ewf, ImpulseResponseIsNonTrivialAndStableUnderZeroInput) {
  Cdfg g = make_ewf();
  Evaluator ev(g);
  const int64_t impulse[] = {1};
  const int64_t zero[] = {0};
  const auto first = ev.step(impulse);
  EXPECT_NE(first[0] | static_cast<int64_t>(ev.states()[0]), 0)
      << "impulse must excite the filter";
  bool any_nonzero_later = false;
  for (int i = 0; i < 6; ++i) {
    const auto y = ev.step(zero);
    any_nonzero_later |= y[0] != 0;
  }
  EXPECT_TRUE(any_nonzero_later) << "states must propagate the impulse";
}

TEST(Ewf, EveryStateIsReadBeforeRewrite) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = schedule_min_fu(g, hw, 17).schedule;
  for (NodeId sn : g.state_nodes()) {
    const Node& st = g.node(sn);
    EXPECT_LT(s.value_last_read(st.out), s.value_ready(st.state_next));
  }
}

}  // namespace
}  // namespace salsa
