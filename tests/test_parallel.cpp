// Parallel search runtime (util/thread_pool.h): the determinism contract —
// results are byte-identical for every thread count — plus the thread-pool
// mechanics (index coverage, ordered results, exception propagation, nested
// submission) and the SplitMix64 seed-stream derivation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "bench_suite/ewf.h"
#include "bench_suite/random_cdfg.h"
#include "core/allocator.h"
#include "core/sched_explore.h"
#include "core/verify.h"
#include "sched/fu_search.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace salsa {
namespace {

// ---------------------------------------------------------------- pool ----

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    const int n = 500;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(Parallelism{threads}, n,
                 [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
  }
}

TEST(ThreadPool, MapKeepsIndexOrder) {
  for (int threads : {1, 3, 8}) {
    const auto out =
        parallel_map(Parallelism{threads}, 100, [](int i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (int i = 0; i < 100; ++i)
      EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  for (int threads : {1, 4}) {
    std::atomic<int> ran{0};
    try {
      parallel_for(Parallelism{threads}, 64, [&](int i) {
        ran++;
        if (i == 7 || i == 50) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7");
    }
    // A failing sibling never cancels other indices.
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPool, NestedSubmissionCompletes) {
  // An index that itself fans out: forward progress must not depend on free
  // workers (the inner caller drains its own batch).
  for (int threads : {1, 2, 8}) {
    std::atomic<long> sum{0};
    parallel_for(Parallelism{threads}, 8, [&](int i) {
      parallel_for(Parallelism{threads}, 8,
                   [&](int j) { sum += i * 8 + j; });
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, ZeroAndOneIndexWork) {
  parallel_for(Parallelism{4}, 0, [](int) { FAIL(); });
  int hits = 0;
  parallel_for(Parallelism{4}, 1, [&](int) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadPool, ParallelismResolvesToAtLeastOne) {
  EXPECT_GE(Parallelism{}.resolve(), 1);
  EXPECT_EQ(Parallelism{3}.resolve(), 3);
  EXPECT_TRUE(Parallelism::sequential_only().sequential());
  EXPECT_GE(default_thread_count(), 1);
}

// ---------------------------------------------------------- seed streams ----

TEST(SeedStreams, NearbyBasesAndStreamsDoNotCollide) {
  // The additive scheme this replaced (seed + r*7919) collides whenever two
  // user seeds differ by a multiple of the stride; the SplitMix64 streams
  // must keep a dense grid of nearby bases and small stream indices
  // pairwise distinct.
  std::set<uint64_t> seen;
  int count = 0;
  for (uint64_t base = 0; base < 64; ++base) {
    for (uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(derive_seed(base, stream));
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), count);
}

TEST(SeedStreams, DerivationIsAPureFunction) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

// ------------------------------------------------------------ allocate ----

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

AllocatorOptions restart_opts(int threads) {
  AllocatorOptions opts;
  opts.improve.max_trials = 4;
  opts.improve.moves_per_trial = 700;
  opts.improve.seed = 5;
  opts.initial.seed = 5;
  opts.restarts = 6;
  opts.parallelism.threads = threads;
  return opts;
}

void expect_identical(const AllocationResult& a, const AllocationResult& b) {
  EXPECT_EQ(a.binding, b.binding);
  EXPECT_EQ(a.cost.total, b.cost.total);  // exact, not approximate
  EXPECT_EQ(a.cost.muxes, b.cost.muxes);
  EXPECT_EQ(a.cost.connections, b.cost.connections);
  EXPECT_EQ(a.merging.muxes_after, b.merging.muxes_after);
  EXPECT_TRUE(a.stats == b.stats);
}

TEST(ParallelAllocate, EwfByteIdenticalAcrossThreadCounts) {
  Ctx ctx(make_ewf(), 17, 1);
  const AllocationResult ref = allocate(*ctx.prob, restart_opts(1));
  EXPECT_TRUE(verify(ref.binding).empty());
  for (int threads : {2, 8}) {
    const AllocationResult res = allocate(*ctx.prob, restart_opts(threads));
    expect_identical(ref, res);
  }
}

TEST(ParallelAllocate, RandomCdfgByteIdenticalAcrossThreadCounts) {
  RandomCdfgParams p;
  p.num_ops = 16;
  p.seed = 9;
  Ctx ctx(make_random_cdfg(p), 8, 1);
  const AllocationResult ref = allocate(*ctx.prob, restart_opts(1));
  for (int threads : {2, 8}) {
    const AllocationResult res = allocate(*ctx.prob, restart_opts(threads));
    expect_identical(ref, res);
  }
}

TEST(ParallelAllocate, StatsAccumulateAllRestarts) {
  Ctx ctx(make_ewf(), 17, 1);
  const AllocationResult res = allocate(*ctx.prob, restart_opts(8));
  EXPECT_GE(res.stats.trials, restart_opts(8).restarts);
}

TEST(ParallelAllocate, SingleRestartMatchesRestartZeroOfMany) {
  // The restart-0 seed stream must not depend on how many restarts run:
  // more restarts can only improve the result, never change its baseline.
  Ctx ctx(make_ewf(), 17, 1);
  AllocatorOptions one = restart_opts(4);
  one.restarts = 1;
  const double c1 = allocate(*ctx.prob, one).cost.total;
  const double c6 = allocate(*ctx.prob, restart_opts(4)).cost.total;
  EXPECT_LE(c6, c1);
}

TEST(ParallelAllocate, RestartPatienceOffByDefault) {
  // No SALSA_RESTART_PATIENCE in the test environment → early stopping is
  // disabled unless opted into per call.
  EXPECT_EQ(default_restart_patience(), 0);
}

TEST(ParallelAllocate, RestartPatienceMatchesTruncatedRun) {
  // With patience p the run must behave exactly like a patience-off run
  // over the retained restart prefix: same winner, same digests, same
  // stats. restart_digests doubles as the observable stop index.
  Ctx ctx(make_ewf(), 17, 1);
  AllocatorOptions early = restart_opts(1);
  early.restarts = 8;
  early.restart_patience = 1;
  std::vector<uint64_t> digests;
  early.restart_digests = &digests;
  const AllocationResult res = allocate(*ctx.prob, early);
  ASSERT_GE(digests.size(), 2u);  // at least patience + 1 restarts run
  ASSERT_LE(digests.size(), 8u);

  AllocatorOptions exact = early;
  exact.restart_patience = -1;  // force off, even if the env sets a default
  exact.restarts = static_cast<int>(digests.size());
  std::vector<uint64_t> exact_digests;
  exact.restart_digests = &exact_digests;
  expect_identical(allocate(*ctx.prob, exact), res);
  EXPECT_EQ(exact_digests, digests);
}

TEST(ParallelAllocate, RestartPatienceByteIdenticalAcrossThreadCounts) {
  // The wave width varies with the thread count; the retained prefix (and
  // so the result) must not.
  Ctx ctx(make_ewf(), 17, 1);
  auto run = [&](int threads) {
    AllocatorOptions o = restart_opts(threads);
    o.restarts = 8;
    o.restart_patience = 2;
    return allocate(*ctx.prob, o);
  };
  const AllocationResult ref = run(1);
  for (int threads : {2, 8}) expect_identical(ref, run(threads));
}

// ---------------------------------------------------- explore_schedules ----

ScheduleExploreParams explore_opts(int threads) {
  ScheduleExploreParams p;
  p.variants = 4;
  p.alloc.improve.max_trials = 3;
  p.alloc.improve.moves_per_trial = 500;
  p.seed = 2;
  p.parallelism.threads = threads;
  return p;
}

TEST(ParallelExplore, ByteIdenticalAcrossThreadCounts) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 17).fus;
  const ScheduleExploreResult ref =
      explore_schedules(g, hw, 17, budget, explore_opts(1));
  ASSERT_TRUE(ref.allocation.has_value());
  for (int threads : {2, 8}) {
    const ScheduleExploreResult res =
        explore_schedules(g, hw, 17, budget, explore_opts(threads));
    ASSERT_TRUE(res.allocation.has_value());
    ASSERT_EQ(res.variant_costs.size(), ref.variant_costs.size());
    for (size_t i = 0; i < ref.variant_costs.size(); ++i) {
      EXPECT_EQ(res.variant_costs[i], ref.variant_costs[i]);
      EXPECT_TRUE(res.variant_stats[i] == ref.variant_stats[i]);
    }
    EXPECT_EQ(res.allocation->cost.total, ref.allocation->cost.total);
    EXPECT_EQ(res.allocation->cost.muxes, ref.allocation->cost.muxes);
    // The winning schedules must agree op for op (Binding::operator==
    // cannot compare across distinct AllocProblem instances).
    for (NodeId n : g.operations())
      EXPECT_EQ(res.schedule->start(n), ref.schedule->start(n));
  }
}

TEST(ParallelExplore, NestedParallelismStaysDeterministic) {
  // Variants in parallel, each allocating restarts in parallel — the
  // composed fan-out must still match the fully sequential run.
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 17).fus;
  ScheduleExploreParams seq = explore_opts(1);
  seq.alloc.restarts = 2;
  seq.alloc.parallelism.threads = 1;
  ScheduleExploreParams par = explore_opts(4);
  par.alloc.restarts = 2;
  par.alloc.parallelism.threads = 4;
  const ScheduleExploreResult a = explore_schedules(g, hw, 17, budget, seq);
  const ScheduleExploreResult b = explore_schedules(g, hw, 17, budget, par);
  ASSERT_TRUE(a.allocation && b.allocation);
  EXPECT_EQ(a.allocation->cost.total, b.allocation->cost.total);
  EXPECT_EQ(a.variant_costs, b.variant_costs);
}

// ---------------------------------------------------------- fu search ----

TEST(ParallelFuSearch, EnvelopeIndependentOfThreadCount) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuSearchResult ref = schedule_min_fu(g, hw, 19, 1.0, 4.0,
                                             Parallelism{1});
  for (int threads : {2, 8}) {
    const FuSearchResult res = schedule_min_fu(g, hw, 19, 1.0, 4.0,
                                               Parallelism{threads});
    EXPECT_EQ(res.fus.alu, ref.fus.alu);
    EXPECT_EQ(res.fus.mul, ref.fus.mul);
    for (NodeId n : g.operations())
      EXPECT_EQ(res.schedule.start(n), ref.schedule.start(n));
  }
}

}  // namespace
}  // namespace salsa
