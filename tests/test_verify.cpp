#include <gtest/gtest.h>

#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

// Shared problem: EWF at 17 steps with two spare registers so corruption
// experiments have room.
class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<Cdfg>(make_ewf());
    sched_ = std::make_unique<Schedule>(
        schedule_min_fu(*g_, HwSpec{}, 17).schedule);
    prob_ = std::make_unique<AllocProblem>(
        *sched_, FuPool::standard(peak_fu_demand(*sched_)),
        Lifetimes(*sched_).min_registers() + 2);
    binding_ = std::make_unique<Binding>(initial_allocation(*prob_));
  }

  // First storage with at least `min_len` segments.
  int long_storage(int min_len) const {
    const Lifetimes& lt = prob_->lifetimes();
    for (int sid = 0; sid < lt.num_storages(); ++sid)
      if (lt.storage(sid).len >= min_len) return sid;
    ADD_FAILURE() << "no storage of length " << min_len;
    return 0;
  }

  std::unique_ptr<Cdfg> g_;
  std::unique_ptr<Schedule> sched_;
  std::unique_ptr<AllocProblem> prob_;
  std::unique_ptr<Binding> binding_;
};

TEST_F(VerifyTest, InitialAllocationIsClean) {
  EXPECT_TRUE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsUnboundOp) {
  binding_->op(g_->operations()[0]).fu = kInvalidId;
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsWrongFuClass) {
  // Bind an add to a multiplier.
  for (NodeId n : g_->operations()) {
    if (g_->node(n).kind == OpKind::kAdd) {
      binding_->op(n).fu = prob_->fus().of_class(FuClass::kMul)[0];
      break;
    }
  }
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsFuDoubleBooking) {
  // Two adds at the same step forced onto one ALU.
  NodeId first = kInvalidId;
  for (NodeId n : g_->operations()) {
    if (fu_class_of(g_->node(n).kind) != FuClass::kAlu) continue;
    if (first == kInvalidId) {
      first = n;
      continue;
    }
    for (NodeId m : g_->operations()) {
      if (m != first && fu_class_of(g_->node(m).kind) == FuClass::kAlu &&
          sched_->start(m) == sched_->start(first)) {
        binding_->op(m).fu = binding_->op(first).fu;
        EXPECT_FALSE(verify(*binding_).empty());
        return;
      }
    }
  }
  GTEST_SKIP() << "no conflicting pair in this schedule";
}

TEST_F(VerifyTest, DetectsSwapOnNonCommutative) {
  // EWF has no subtractions, so build the case directly on a nop-free op:
  // force the flag on an op and temporarily claim it non-commutative is not
  // possible here; instead check adds are allowed to swap.
  for (NodeId n : g_->operations())
    if (is_commutative(g_->node(n).kind)) {
      binding_->op(n).swap = true;
      break;
    }
  EXPECT_TRUE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsRegisterConflict) {
  const Lifetimes& lt = prob_->lifetimes();
  // Find two storages live at the same step and collide them.
  for (int a = 0; a < lt.num_storages(); ++a) {
    for (int b = a + 1; b < lt.num_storages(); ++b) {
      for (int seg = 0; seg < lt.storage(a).len; ++seg) {
        const int step = lt.storage(a).step_at(seg, sched_->length());
        const int bseg = lt.seg_at_step(b, step);
        if (bseg < 0) continue;
        binding_->sto(b).cells[static_cast<size_t>(bseg)][0].reg =
            binding_->sto(a).cells[static_cast<size_t>(seg)][0].reg;
        EXPECT_FALSE(verify(*binding_).empty());
        return;
      }
    }
  }
  FAIL() << "no overlapping storages found";
}

TEST_F(VerifyTest, DetectsMissingCell) {
  const int sid = long_storage(2);
  binding_->sto(sid).cells[1].clear();
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsBadParentIndex) {
  const int sid = long_storage(2);
  binding_->sto(sid).cells[1][0].parent = 7;  // out of range
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsSeg0Parent) {
  const int sid = long_storage(1);
  binding_->sto(sid).cells[0][0].parent = 0;
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsViaOnHold) {
  // Find a hold pair (cell sharing its parent's register) and give it a via.
  const Lifetimes& lt = prob_->lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    StorageBinding& sb = binding_->sto(sid);
    for (size_t seg = 1; seg < sb.cells.size(); ++seg) {
      Cell& cell = sb.cells[seg][0];
      if (cell.reg != sb.cells[seg - 1][static_cast<size_t>(cell.parent)].reg)
        continue;
      cell.via = prob_->fus().pass_capable()[0];
      EXPECT_FALSE(verify(*binding_).empty());
      return;
    }
  }
  GTEST_SKIP() << "no hold cells in this allocation";
}

TEST_F(VerifyTest, DetectsPassThroughOnBusyFu) {
  const Lifetimes& lt = prob_->lifetimes();
  // Create a real transfer, then route it through a busy FU.
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).len < 2) continue;
    StorageBinding& sb = binding_->sto(sid);
    // Find a register free at the second segment's step to transfer into.
    const int step = lt.storage(sid).step_at(1, sched_->length());
    const int tstep = lt.storage(sid).step_at(0, sched_->length());
    const Occupancy occ = binding_->occupancy();
    RegId target = kInvalidId;
    for (RegId r = 0; r < prob_->num_regs(); ++r)
      if (occ.reg_free(r, step)) target = r;
    if (target == kInvalidId) continue;
    // Busy pass-capable FU at tstep.
    FuId busy = kInvalidId;
    for (FuId f : prob_->fus().pass_capable())
      if (!occ.fu_free(f, tstep)) busy = f;
    if (busy == kInvalidId) continue;
    sb.cells[1][0] = Cell{target, 0, busy};
    EXPECT_FALSE(verify(*binding_).empty());
    return;
  }
  GTEST_SKIP() << "no suitable transfer site";
}

TEST_F(VerifyTest, DetectsNonPassCapableVia) {
  const Lifetimes& lt = prob_->lifetimes();
  const auto muls = prob_->fus().of_class(FuClass::kMul);
  ASSERT_FALSE(muls.empty());
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).len < 2) continue;
    StorageBinding& sb = binding_->sto(sid);
    const int step = lt.storage(sid).step_at(1, sched_->length());
    const Occupancy occ = binding_->occupancy();
    for (RegId r = 0; r < prob_->num_regs(); ++r) {
      if (!occ.reg_free(r, step)) continue;
      sb.cells[1][0] = Cell{r, 0, muls[0]};
      EXPECT_FALSE(verify(*binding_).empty());
      return;
    }
  }
  GTEST_SKIP() << "no suitable transfer site";
}

TEST_F(VerifyTest, DetectsBadReadTarget) {
  const Lifetimes& lt = prob_->lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).reads.empty()) continue;
    binding_->sto(sid).read_cell[0] = 5;  // only one cell exists
    EXPECT_FALSE(verify(*binding_).empty());
    return;
  }
  FAIL() << "no reads found";
}

TEST_F(VerifyTest, CheckLegalThrowsWithDetails) {
  binding_->op(g_->operations()[0]).fu = kInvalidId;
  try {
    check_legal(*binding_);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("illegal binding"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace salsa
