#include <gtest/gtest.h>

#include <algorithm>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

// True if any complaint mentions `needle` — the per-rule tests assert the
// *intended* rule fired, not just that verify() found something.
bool mentions(const std::vector<std::string>& bad, const std::string& needle) {
  return std::any_of(bad.begin(), bad.end(), [&](const std::string& m) {
    return m.find(needle) != std::string::npos;
  });
}

// Shared problem: EWF at 17 steps with two spare registers so corruption
// experiments have room.
class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<Cdfg>(make_ewf());
    sched_ = std::make_unique<Schedule>(
        schedule_min_fu(*g_, HwSpec{}, 17).schedule);
    prob_ = std::make_unique<AllocProblem>(
        *sched_, FuPool::standard(peak_fu_demand(*sched_)),
        Lifetimes(*sched_).min_registers() + 2);
    binding_ = std::make_unique<Binding>(initial_allocation(*prob_));
  }

  // First storage with at least `min_len` segments.
  int long_storage(int min_len) const {
    const Lifetimes& lt = prob_->lifetimes();
    for (int sid = 0; sid < lt.num_storages(); ++sid)
      if (lt.storage(sid).len >= min_len) return sid;
    ADD_FAILURE() << "no storage of length " << min_len;
    return 0;
  }

  std::unique_ptr<Cdfg> g_;
  std::unique_ptr<Schedule> sched_;
  std::unique_ptr<AllocProblem> prob_;
  std::unique_ptr<Binding> binding_;
};

TEST_F(VerifyTest, InitialAllocationIsClean) {
  EXPECT_TRUE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsUnboundOp) {
  binding_->op(g_->operations()[0]).fu = kInvalidId;
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsWrongFuClass) {
  // Bind an add to a multiplier.
  for (NodeId n : g_->operations()) {
    if (g_->node(n).kind == OpKind::kAdd) {
      binding_->op(n).fu = prob_->fus().of_class(FuClass::kMul)[0];
      break;
    }
  }
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsFuDoubleBooking) {
  // Two adds at the same step forced onto one ALU.
  NodeId first = kInvalidId;
  for (NodeId n : g_->operations()) {
    if (fu_class_of(g_->node(n).kind) != FuClass::kAlu) continue;
    if (first == kInvalidId) {
      first = n;
      continue;
    }
    for (NodeId m : g_->operations()) {
      if (m != first && fu_class_of(g_->node(m).kind) == FuClass::kAlu &&
          sched_->start(m) == sched_->start(first)) {
        binding_->op(m).fu = binding_->op(first).fu;
        EXPECT_FALSE(verify(*binding_).empty());
        return;
      }
    }
  }
  GTEST_SKIP() << "no conflicting pair in this schedule";
}

TEST_F(VerifyTest, DetectsSwapOnNonCommutative) {
  // EWF has no subtractions, so build the case directly on a nop-free op:
  // force the flag on an op and temporarily claim it non-commutative is not
  // possible here; instead check adds are allowed to swap.
  for (NodeId n : g_->operations())
    if (is_commutative(g_->node(n).kind)) {
      binding_->op(n).swap = true;
      break;
    }
  EXPECT_TRUE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsRegisterConflict) {
  const Lifetimes& lt = prob_->lifetimes();
  // Find two storages live at the same step and collide them.
  for (int a = 0; a < lt.num_storages(); ++a) {
    for (int b = a + 1; b < lt.num_storages(); ++b) {
      for (int seg = 0; seg < lt.storage(a).len; ++seg) {
        const int step = lt.storage(a).step_at(seg, sched_->length());
        const int bseg = lt.seg_at_step(b, step);
        if (bseg < 0) continue;
        binding_->sto(b).cells[static_cast<size_t>(bseg)][0].reg =
            binding_->sto(a).cells[static_cast<size_t>(seg)][0].reg;
        EXPECT_FALSE(verify(*binding_).empty());
        return;
      }
    }
  }
  FAIL() << "no overlapping storages found";
}

TEST_F(VerifyTest, DetectsMissingCell) {
  const int sid = long_storage(2);
  binding_->sto(sid).cells[1].clear();
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsBadParentIndex) {
  const int sid = long_storage(2);
  binding_->sto(sid).cells[1][0].parent = 7;  // out of range
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsSeg0Parent) {
  const int sid = long_storage(1);
  binding_->sto(sid).cells[0][0].parent = 0;
  EXPECT_FALSE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsViaOnHold) {
  // Find a hold pair (cell sharing its parent's register) and give it a via.
  const Lifetimes& lt = prob_->lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    StorageBinding& sb = binding_->sto(sid);
    for (size_t seg = 1; seg < sb.cells.size(); ++seg) {
      Cell& cell = sb.cells[seg][0];
      if (cell.reg != sb.cells[seg - 1][static_cast<size_t>(cell.parent)].reg)
        continue;
      cell.via = prob_->fus().pass_capable()[0];
      EXPECT_FALSE(verify(*binding_).empty());
      return;
    }
  }
  GTEST_SKIP() << "no hold cells in this allocation";
}

TEST_F(VerifyTest, DetectsPassThroughOnBusyFu) {
  const Lifetimes& lt = prob_->lifetimes();
  // Create a real transfer, then route it through a busy FU.
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).len < 2) continue;
    StorageBinding& sb = binding_->sto(sid);
    // Find a register free at the second segment's step to transfer into.
    const int step = lt.storage(sid).step_at(1, sched_->length());
    const int tstep = lt.storage(sid).step_at(0, sched_->length());
    const Occupancy occ = binding_->occupancy();
    RegId target = kInvalidId;
    for (RegId r = 0; r < prob_->num_regs(); ++r)
      if (occ.reg_free(r, step)) target = r;
    if (target == kInvalidId) continue;
    // Busy pass-capable FU at tstep.
    FuId busy = kInvalidId;
    for (FuId f : prob_->fus().pass_capable())
      if (!occ.fu_free(f, tstep)) busy = f;
    if (busy == kInvalidId) continue;
    sb.cells[1][0] = Cell{target, 0, busy};
    EXPECT_FALSE(verify(*binding_).empty());
    return;
  }
  GTEST_SKIP() << "no suitable transfer site";
}

TEST_F(VerifyTest, DetectsNonPassCapableVia) {
  const Lifetimes& lt = prob_->lifetimes();
  const auto muls = prob_->fus().of_class(FuClass::kMul);
  ASSERT_FALSE(muls.empty());
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).len < 2) continue;
    StorageBinding& sb = binding_->sto(sid);
    const int step = lt.storage(sid).step_at(1, sched_->length());
    const Occupancy occ = binding_->occupancy();
    for (RegId r = 0; r < prob_->num_regs(); ++r) {
      if (!occ.reg_free(r, step)) continue;
      sb.cells[1][0] = Cell{r, 0, muls[0]};
      EXPECT_FALSE(verify(*binding_).empty());
      return;
    }
  }
  GTEST_SKIP() << "no suitable transfer site";
}

TEST_F(VerifyTest, DetectsBadReadTarget) {
  const Lifetimes& lt = prob_->lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).reads.empty()) continue;
    binding_->sto(sid).read_cell[0] = 5;  // only one cell exists
    EXPECT_FALSE(verify(*binding_).empty());
    return;
  }
  FAIL() << "no reads found";
}

TEST_F(VerifyTest, DetectsMalformedCellTable) {
  binding_->sto(0).cells.emplace_back();  // one segment row too many
  EXPECT_TRUE(mentions(verify(*binding_), "malformed cell table"));
}

TEST_F(VerifyTest, DetectsInvalidCellRegister) {
  binding_->sto(0).cells[0][0].reg = prob_->num_regs();  // out of range
  EXPECT_TRUE(mentions(verify(*binding_), "invalid register"));
}

TEST_F(VerifyTest, DetectsDuplicateCopyCells) {
  auto& cells = binding_->sto(0).cells[0];
  cells.push_back(cells[0]);  // a copy in the same register is meaningless
  EXPECT_TRUE(mentions(verify(*binding_), "duplicate cells"));
}

TEST_F(VerifyTest, DetectsSeg0PassThrough) {
  binding_->sto(0).cells[0][0].via = prob_->fus().pass_capable()[0];
  EXPECT_TRUE(mentions(verify(*binding_), "seg-0 cell with a pass-through"));
}

TEST_F(VerifyTest, DetectsInvalidViaFu) {
  const Lifetimes& lt = prob_->lifetimes();
  const Occupancy occ = binding_->occupancy();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).len < 2) continue;
    StorageBinding& sb = binding_->sto(sid);
    const int step = lt.storage(sid).step_at(1, sched_->length());
    const RegId prev_reg = sb.cells[0][0].reg;
    for (RegId r = 0; r < prob_->num_regs(); ++r) {
      if (r == prev_reg || !occ.reg_free(r, step)) continue;
      sb.cells[1][0] = Cell{r, 0, prob_->fus().size()};  // via out of range
      EXPECT_TRUE(mentions(verify(*binding_), "invalid FU"));
      return;
    }
  }
  GTEST_SKIP() << "no suitable transfer site";
}

TEST_F(VerifyTest, DetectsMalformedReadTable) {
  const Lifetimes& lt = prob_->lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).reads.empty()) continue;
    binding_->sto(sid).read_cell.push_back(0);  // one read entry too many
    EXPECT_TRUE(mentions(verify(*binding_), "malformed read table"));
    return;
  }
  FAIL() << "no reads found";
}

// Two verifier rules are defensive and unreachable by mutating a binding
// alone: "occupies steps past the schedule end" can only fire on a schedule
// that Schedule's own validation would have rejected, and "pin driven by two
// sources" requires two connection uses that the structural passes above
// would already have flagged. They stay in verify() as belt-and-braces for
// hand-built bindings from io/text_format.

// --- cyclic (mod-L) lifetimes ----------------------------------------------

TEST_F(VerifyTest, LoopStatesYieldWrappingStorages) {
  int wrapping = 0;
  for (const Storage& s : prob_->lifetimes().storages()) wrapping += s.wraps;
  EXPECT_GT(wrapping, 0) << "EWF loop states should wrap the iteration edge";
  EXPECT_TRUE(verify(*binding_).empty());
}

TEST_F(VerifyTest, DetectsModLRegisterConflictAcrossWrapBoundary) {
  // Collide a register *in the wrapped part* of a cyclic live range (steps
  // below birth, i.e. past the iteration edge) with a storage born early.
  const Lifetimes& lt = prob_->lifetimes();
  const int L = sched_->length();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    if (!s.wraps) continue;
    for (int seg = 0; seg < s.len; ++seg) {
      const int step = s.step_at(seg, L);
      if (step >= s.birth) continue;  // not yet past the boundary
      for (int other = 0; other < lt.num_storages(); ++other) {
        if (other == sid) continue;
        const int oseg = lt.seg_at_step(other, step);
        if (oseg < 0) continue;
        binding_->sto(other).cells[static_cast<size_t>(oseg)][0].reg =
            binding_->sto(sid).cells[static_cast<size_t>(seg)][0].reg;
        EXPECT_TRUE(mentions(verify(*binding_),
                             "holds two storages at step " +
                                 std::to_string(step)));
        return;
      }
    }
  }
  GTEST_SKIP() << "no wrapped overlap in this allocation";
}

TEST(VerifyRules, AcceptsTransferAcrossTheWrapBoundary) {
  // A register chain may legally hop registers exactly at the iteration
  // edge: the pass-through runs at step L-1 and the new register is
  // occupied from step 0 of the next iteration. The min-FU schedule keeps
  // every ALU busy at step L-1, so grant one spare unit to host the hop.
  Cdfg g = make_ewf();
  const Schedule sched = schedule_min_fu(g, HwSpec{}, 17).schedule;
  FuBudget budget = peak_fu_demand(sched);
  budget.alu += 1;
  AllocProblem prob(sched, FuPool::standard(budget),
                    Lifetimes(sched).min_registers() + 2);
  Binding b = initial_allocation(prob);
  const Lifetimes& lt = prob.lifetimes();
  const int L = sched.length();
  const Occupancy occ = b.occupancy();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    if (!s.wraps) continue;
    for (int seg = 1; seg < s.len; ++seg) {
      if (s.step_at(seg, L) != 0) continue;  // seg-1 sits at step L-1
      StorageBinding& sb = b.sto(sid);
      const RegId prev_reg = sb.cells[static_cast<size_t>(seg) - 1][0].reg;
      for (RegId r = 0; r < prob.num_regs(); ++r) {
        if (r == prev_reg || !occ.reg_free(r, 0)) continue;
        for (FuId f : prob.fus().pass_capable()) {
          if (!occ.fu_free(f, L - 1)) continue;
          sb.cells[static_cast<size_t>(seg)][0] = Cell{r, 0, f};
          EXPECT_TRUE(verify(b).empty());
          return;
        }
      }
    }
  }
  FAIL() << "no wrap-boundary transfer site despite the spare ALU";
}

TEST_F(VerifyTest, DetectsDuplicateCopyCellAtWrappedSegment) {
  const Lifetimes& lt = prob_->lifetimes();
  const int L = sched_->length();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    if (!s.wraps) continue;
    for (int seg = 0; seg < s.len; ++seg) {
      if (s.step_at(seg, L) >= s.birth) continue;
      auto& cells = binding_->sto(sid).cells[static_cast<size_t>(seg)];
      cells.push_back(cells[0]);
      EXPECT_TRUE(mentions(verify(*binding_), "duplicate cells"));
      return;
    }
  }
  GTEST_SKIP() << "no wrapping storage";
}

// --- rules needing a different problem than the fixture's ------------------

TEST(VerifyRules, FlagsSwapOnNonCommutativeOp) {
  // EWF has no subtractions, so the fixture can't reach this rule; DCT can.
  Cdfg g = make_dct();
  const Schedule sched = schedule_min_fu(g, HwSpec{}, 9).schedule;
  AllocProblem prob(sched, FuPool::standard(peak_fu_demand(sched)),
                    Lifetimes(sched).min_registers() + 1);
  Binding b = initial_allocation(prob);
  for (NodeId n : g.operations()) {
    if (is_commutative(g.node(n).kind)) continue;
    b.op(n).swap = true;
    EXPECT_TRUE(mentions(verify(b), "swapped operands"));
    return;
  }
  FAIL() << "DCT should contain non-commutative ops";
}

TEST(VerifyRules, FlagsPassThroughOnMultiCycleFuClass) {
  // Pass-capable multipliers: a via there is structurally well-formed but
  // illegal because the class's delay is 2, not the 1-step forward a
  // pass-through provides.
  Cdfg g = make_ewf();
  const Schedule sched = schedule_min_fu(g, HwSpec{}, 17).schedule;
  AllocProblem prob(
      sched,
      FuPool::standard(peak_fu_demand(sched), true, /*mul_can_pass=*/true),
      Lifetimes(sched).min_registers() + 2);
  Binding b = initial_allocation(prob);
  const Lifetimes& lt = prob.lifetimes();
  const auto muls = prob.fus().of_class(FuClass::kMul);
  ASSERT_FALSE(muls.empty());
  const Occupancy occ = b.occupancy();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    if (lt.storage(sid).len < 2) continue;
    StorageBinding& sb = b.sto(sid);
    const int step = lt.storage(sid).step_at(1, sched.length());
    const int tstep = lt.storage(sid).step_at(0, sched.length());
    const RegId prev_reg = sb.cells[0][0].reg;
    for (RegId r = 0; r < prob.num_regs(); ++r) {
      if (r == prev_reg || !occ.reg_free(r, step)) continue;
      for (FuId m : muls) {
        if (!occ.fu_free(m, tstep)) continue;
        sb.cells[1][0] = Cell{r, 0, m};
        EXPECT_TRUE(mentions(verify(b), "multi-cycle"));
        return;
      }
    }
  }
  GTEST_SKIP() << "no suitable transfer site";
}

TEST(VerifyRules, FlagsPassThroughCollidingWithResultLanding) {
  // With pipelined multipliers an op occupies its FU only at its start step
  // but still lands a result one step later; a pass-through there is free
  // by occupancy yet collides on the FU output port.
  Cdfg g = make_ewf();
  HwSpec hw;
  hw.pipelined_mul = true;
  const Schedule sched = schedule_min_fu(g, hw, 17).schedule;
  AllocProblem prob(sched,
                    FuPool::standard(peak_fu_demand(sched), true, true),
                    Lifetimes(sched).min_registers() + 2);
  Binding b = initial_allocation(prob);
  const Lifetimes& lt = prob.lifetimes();
  const int L = sched.length();
  const Occupancy occ = b.occupancy();
  for (NodeId n : g.operations()) {
    if (g.node(n).kind != OpKind::kMul) continue;
    const FuId m = b.op(n).fu;
    const int fin = (sched.start(n) + hw.delay(OpKind::kMul) - 1) % L;
    if (!occ.fu_free(m, fin)) continue;
    for (int sid = 0; sid < lt.num_storages(); ++sid) {
      const Storage& s = lt.storage(sid);
      for (int seg = 1; seg < s.len; ++seg) {
        if (s.step_at(seg - 1, L) != fin) continue;
        StorageBinding& sb = b.sto(sid);
        const int step = s.step_at(seg, L);
        const RegId prev_reg =
            sb.cells[static_cast<size_t>(seg) - 1][0].reg;
        for (RegId r = 0; r < prob.num_regs(); ++r) {
          if (r == prev_reg || !occ.reg_free(r, step)) continue;
          sb.cells[static_cast<size_t>(seg)][0] = Cell{r, 0, m};
          EXPECT_TRUE(
              mentions(verify(b), "collides with a result landing"));
          return;
        }
      }
    }
  }
  GTEST_SKIP() << "no suitable collision site";
}

TEST_F(VerifyTest, CheckLegalThrowsWithDetails) {
  binding_->op(g_->operations()[0]).fu = kInvalidId;
  try {
    check_legal(*binding_);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("illegal binding"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace salsa
