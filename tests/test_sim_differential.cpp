// The engine-pair differential harness: the event-driven simulator
// (datapath/event_sim.h) must match the full-evaluation reference
// (datapath/simulator.h) signal-for-signal and cycle-for-cycle — identical
// output streams, identical per-step register traces, byte-identical VCD
// dumps — on the 1992 benchmarks, random CDFGs, and generated corpus
// designs. The mutation test proves the harness has teeth: a single dropped
// change-event wake-up must surface as a divergence.
#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "bench_suite/random_cdfg.h"
#include "core/allocator.h"
#include "core/moves.h"
#include "core/verify.h"
#include "datapath/event_sim.h"
#include "datapath/vcd.h"
#include "frontend/generate.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int extra_len, bool pipelined, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    hw.pipelined_mul = pipelined;
    const int len = min_schedule_length(*g, hw) + extra_len;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

std::vector<std::vector<int64_t>> seeded_inputs(const Cdfg& g, int iterations,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> inputs(
      static_cast<size_t>(iterations) + 1,
      std::vector<int64_t>(g.input_nodes().size(), 0));
  for (auto& vec : inputs)
    for (auto& v : vec) v = static_cast<int64_t>(rng.next() % 2001) - 1000;
  return inputs;
}

// ---------------------------------------------------------------------------
// Benchmarks: per-cycle equivalence plus byte-identical VCD under several
// schedule/register configurations and through move scrambles.
struct EngineCase {
  const char* name;
  Cdfg (*make)();
  int extra_len;
  bool pipelined;
  int extra_regs;
};

class EnginesAgree : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EnginesAgree, OnInitialAllocation) {
  const EngineCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  EXPECT_EQ(random_engine_diff(nl, 6, 99), "");
}

TEST_P(EnginesAgree, AfterRandomMoveScramble) {
  const EngineCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(c.extra_len * 37 + c.extra_regs + 5);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 600; ++i) apply_random_move(b, all.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  Netlist nl(b);
  EXPECT_EQ(random_engine_diff(nl, 6, 7), "");
}

TEST_P(EnginesAgree, VcdDumpsAreByteIdentical) {
  const EngineCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.pipelined, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const auto inputs = seeded_inputs(*ctx.g, 5, 42);
  const std::vector<int64_t> states(ctx.g->state_nodes().size(), 3);
  const std::string full =
      dump_vcd(nl, inputs, states, 5, c.name, SimEngine::kFullEval);
  const std::string event =
      dump_vcd(nl, inputs, states, 5, c.name, SimEngine::kEventDriven);
  EXPECT_EQ(full, event);
}

INSTANTIATE_TEST_SUITE_P(
    Benches, EnginesAgree,
    ::testing::Values(EngineCase{"ewf_min", make_ewf, 0, false, 1},
                      EngineCase{"ewf_loose", make_ewf, 2, false, 2},
                      EngineCase{"ewf_pipe", make_ewf, 0, true, 2},
                      EngineCase{"dct_min", make_dct, 0, false, 1},
                      EngineCase{"dct_loose", make_dct, 3, false, 2},
                      EngineCase{"dct_pipe", make_dct, 3, true, 1}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Property test: >= 20 random CDFGs through schedule variation and move
// scrambles; the engines must agree on outputs and full register traces.
class RandomCdfgEnginesAgree : public ::testing::TestWithParam<int> {};

TEST_P(RandomCdfgEnginesAgree, HoldsThroughScramble) {
  RandomCdfgParams params;
  params.seed = static_cast<uint64_t>(GetParam());
  params.num_ops = 12 + GetParam() % 9;
  params.num_states = GetParam() % 3;
  params.num_inputs = 1 + GetParam() % 3;
  Cdfg g = make_random_cdfg(params);
  HwSpec hw;
  hw.pipelined_mul = GetParam() % 2 == 0;
  const int len = min_schedule_length(g, hw) + GetParam() % 4;
  Schedule sched = schedule_min_fu(g, hw, len).schedule;
  AllocProblem prob(sched, FuPool::standard(peak_fu_demand(sched)),
                    Lifetimes(sched).min_registers() + 2);
  Binding b = initial_allocation(prob, InitialOptions{.seed = params.seed});
  Rng rng(params.seed * 11 + 3);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 300; ++i) apply_random_move(b, all.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  Netlist nl(b);
  EXPECT_EQ(random_engine_diff(nl, 5, params.seed), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCdfgEnginesAgree,
                         ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Generated corpus designs (the sizes the event engine exists for), one per
// family, sized so the full-eval reference still finishes quickly.
class GeneratedEnginesAgree : public ::testing::TestWithParam<GenFamily> {};

TEST_P(GeneratedEnginesAgree, OnInitialAllocation) {
  GenParams p;
  p.family = GetParam();
  p.target_ops = 300;
  p.seed = 5;
  const GeneratedDesign d = generate_design(p);
  Binding b = initial_allocation(*d.problem);
  Netlist nl(b);
  EXPECT_EQ(random_engine_diff(nl, 3, 17), "");
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratedEnginesAgree,
                         ::testing::Values(GenFamily::kFilterCascade,
                                           GenFamily::kGemmPipeline,
                                           GenFamily::kLayeredDag,
                                           GenFamily::kMemoryTraffic),
                         [](const auto& info) {
                           return std::string(gen_family_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Activity accounting. A slot fires at most once per occurrence (the dedup
// contract — firings can never exceed slots x iterations), and on a design
// with a single-tenant stable cell the compare-and-set actually skips
// occurrences. Note what this does NOT claim: on real bindings the
// registers and FU outputs are time-multiplexed, so their cells change
// every period even under constant inputs and nearly all slots legitimately
// refire (EWF fires exactly slots x iterations). The engine's asymptotic
// win is eliminating the full-eval per-step rescan over every FU action and
// register load, which the sim-smoke wall-clock gate measures.
TEST(EventEngine, FiringsBoundedAndStableCellsSkip) {
  // Tiny stateless chain: m = a*3; s = m+a; output s. Under a constant
  // input stream some cells settle, so strict skipping is observable.
  Cdfg g("tiny");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(3);
  const ValueId m = g.add_op(OpKind::kMul, a, c, "m");
  const ValueId s = g.add_op(OpKind::kAdd, m, a, "s");
  g.add_output(s, "o");
  g.validate();
  HwSpec hw;
  Schedule sched = schedule_min_fu(g, hw, min_schedule_length(g, hw)).schedule;
  AllocProblem prob(sched, FuPool::standard(peak_fu_demand(sched)),
                    Lifetimes(sched).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);

  const int iterations = 50;
  std::vector<std::vector<int64_t>> inputs(
      static_cast<size_t>(iterations) + 1,
      std::vector<int64_t>(g.input_nodes().size(), 7));
  const std::vector<int64_t> states;
  EventSimStats stats;
  const SimResult ev =
      simulate_events(nl, inputs, states, iterations, nullptr, &stats);
  const SimResult full = simulate(nl, inputs, states, iterations);
  ASSERT_EQ(ev.outputs, full.outputs);
  ASSERT_GT(stats.slots, 0);
  const long ceiling = stats.slots * static_cast<long>(iterations);
  EXPECT_LE(stats.firings, ceiling);  // dedup: one firing per occurrence
  EXPECT_LT(stats.firings, ceiling);  // and stable cells really skip
}

// ---------------------------------------------------------------------------
// Mutation: a lost scheduled event — the Nth change-event wake-up is
// dropped and its occurrence marked handled, so redundant wakes cannot heal
// it — must produce a divergence the differential harness reports at every
// probed position, and each armed hook must actually fire (a leftover armed
// hook proves nothing was tested).
TEST(EventEngine, DroppedWakeIsCaught) {
  Ctx ctx(make_ewf(), 0, false, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  ASSERT_EQ(random_engine_diff(nl, 6, 99), "");

  // Probe positions spread across the whole run (~345 wakes for this
  // configuration; clamping just keeps the arm in range if that drifts).
  for (long n = 1; n <= 331; n += 30) {
    event_sim_hooks::drop_wake_after = event_sim_hooks::wake_count + n;
    const std::string diff = random_engine_diff(nl, 6, 99);
    const bool fired = event_sim_hooks::drop_wake_after == 0;
    event_sim_hooks::drop_wake_after = 0;
    ASSERT_TRUE(fired) << "mutation hook never fired at position " << n;
    EXPECT_NE(diff, "") << "dropped wake " << n << " went undetected";
  }
}

}  // namespace
}  // namespace salsa
