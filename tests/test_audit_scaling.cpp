// The audit wall on the generated scaling corpus (frontend/generate.h):
// large-design sampling of the O(design) invariant battery
// (AuditorOptions::sample_threshold_ops), the exact every-transaction mode
// behind SALSA_CHECK=full, the mutation proof that a *sampled* auditor
// still catches seeded index corruption, and the steady-state no-rehash pin
// on the engine's pre-reserved hash tables.
#include <gtest/gtest.h>

#include "analysis/auditor.h"
#include "analysis/fuzz.h"
#include "core/allocator.h"
#include "core/initial.h"
#include "core/moves.h"
#include "core/search_engine.h"
#include "frontend/generate.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace salsa {
namespace {

GeneratedDesign cascade(int target_ops) {
  GenParams p;
  p.family = GenFamily::kFilterCascade;
  p.target_ops = target_ops;
  p.seed = 1;
  return generate_design(p);
}

// Above the size threshold the auditor samples: the wall still stands (the
// fuzz run passes every audited battery) but only every ops/64-th
// transaction pays it — without this, a 10k-op audited search is O(design)
// per move and the scaling corpus is unusable under SALSA_CHECK=1.
TEST(AuditScaling, SamplingEngagesAboveThreshold) {
  const GeneratedDesign d = cascade(2500);
  ASSERT_GT(d.num_ops, 2048) << "design must exceed the default threshold";
  FuzzParams p;
  p.seed = 3;
  p.transactions = 1500;
  p.name = "audit-scaling";
  const FuzzResult res = run_move_fuzz(*d.problem, p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_GT(res.audit.audited, 0);
  EXPECT_LT(res.audit.audited, res.audit.txns)
      << "auditor audited every transaction of a " << d.num_ops
      << "-op design — large-design sampling did not engage";
  // ops/64 sampling: audited count lands near txns/(ops/64); x4 slack
  // tolerates the +1-phase rounding, none for an off-by-a-factor rate.
  const long expect = res.audit.txns / (static_cast<long>(d.num_ops) / 64);
  EXPECT_LE(res.audit.audited, 4 * (expect + 1));
}

// Designs at or below the threshold keep the historical exact behavior:
// every transaction is audited, nothing about small-design runs changed.
TEST(AuditScaling, SmallDesignsStillAuditEveryTransaction) {
  const GeneratedDesign d = cascade(400);
  ASSERT_LE(d.num_ops, 2048);
  FuzzParams p;
  p.seed = 3;
  p.transactions = 300;
  p.name = "audit-small";
  const FuzzResult res = run_move_fuzz(*d.problem, p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.audit.audited, res.audit.txns);
}

// sample_threshold_ops = 0 (what CheckMode::kAuditFull / SALSA_CHECK=full
// selects) defeats sampling on any size: the exact mode survives for
// pinning down which transaction first corrupts state.
TEST(AuditScaling, FullModeAuditsEveryTransactionOnLargeDesigns) {
  const GeneratedDesign d = cascade(2500);
  FuzzParams p;
  p.seed = 3;
  p.transactions = 40;  // every transaction is O(design): keep the run short
  p.audit.sample_threshold_ops = 0;
  p.name = "audit-full";
  const FuzzResult res = run_move_fuzz(*d.problem, p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.audit.audited, res.audit.txns);
}

// SALSA_CHECK mapping: "full" is its own mode now, and the audit modes stay
// distinct from kOff/kFinal (the allocator installs an auditor for both).
TEST(AuditScaling, CheckModeFullIsDistinctFromAudit) {
  EXPECT_NE(CheckMode::kAudit, CheckMode::kAuditFull);
}

// The mutation proof that sampling keeps the wall honest: corrupt the flat
// connection index between audited transactions (a FlatMap erase that skips
// its backward-shift compaction, orphaning displaced keys) and the sampled
// run must still fail — orphaned refcounts are *persistent* drift, so
// either FlatMap's own missing-key CHECK trips on a later decrement or the
// next audited commit's rebuild cross-check reports the divergence. A
// sampled auditor that let this run pass would mean sampling opened a
// window corruption can hide in.
TEST(AuditScaling, SampledAuditorStillCatchesSeededIndexCorruption) {
  const GeneratedDesign d = cascade(2500);
  // The 10th compacting erase: the engine's pre-reserved tables run at a
  // low load factor on this design, so probe chains are short and only a
  // few dozen erases per run displace anything (~16 under this seed) — the
  // mutation must land on one that does.
  flat_map_hooks::break_backward_shift_after =
      flat_map_hooks::erase_count + 10;
  FuzzParams p;
  p.seed = 5;
  p.transactions = 4000;
  p.commit_prob = 0.7;  // commit-biased: churn the index through erases
  p.name = "audit-mutation";
  const FuzzResult res = run_move_fuzz(*d.problem, p);
  EXPECT_EQ(flat_map_hooks::break_backward_shift_after, 0)
      << "the armed index mutation never fired; the run proved nothing";
  flat_map_hooks::break_backward_shift_after = 0;  // in case it never fired
  EXPECT_FALSE(res.ok)
      << "seeded index corruption survived a sampled audited fuzz run";
  EXPECT_LT(res.audit.audited, res.audit.txns + 1)
      << "sanity: the run must have been the sampled flavor";
}

// Steady-state no-rehash pin (the reserve-sizing satellite): the engine
// pre-reserves the probed index tables from problem dimensions, and the
// demand-grown transaction-delta accumulators converge to the largest
// transaction footprint within the warmup moves (they are not pre-reserved
// on purpose — drain() cost is proportional to capacity, see
// SearchEngine::init_from_statics). After warmup, a long move loop on a
// mid-size generated design must never grow a table again: a rehash here
// is a mis-sized reserve (or an unconverged accumulator) silently
// reintroducing allocation stalls into the hot path.
TEST(AuditScaling, NoRehashInSteadyStateMoveLoop) {
  const GeneratedDesign d = cascade(2500);
  const Binding start =
      initial_allocation(*d.problem, InitialOptions{.seed = 5});
  SearchEngine eng(start);
  Rng rng(11);
  const MoveConfig moves = MoveConfig::salsa_default();
  long done = 0;
  auto drive = [&](long feasible_budget) {
    const long until = done + feasible_budget;
    for (long i = 0; i < 20 * feasible_budget && done < until; ++i) {
      if (!eng.propose(moves.pick(rng), rng)) continue;
      ++done;
      if (done % 2 == 0) {
        eng.commit();
      } else {
        eng.rollback();
      }
    }
  };
  drive(3000);  // warmup: scratch accumulators reach their working size
  const size_t steady = eng.index_rehashes();
  drive(9000);
  EXPECT_GT(done, 10000) << "move loop starved; the pin saw too few moves";
  EXPECT_EQ(eng.index_rehashes(), steady)
      << "an engine table rehashed in the steady-state move loop";
}

}  // namespace
}  // namespace salsa
