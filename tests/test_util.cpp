#include <gtest/gtest.h>

#include <set>

#include "util/diagnostics.h"
#include "util/rng.h"
#include "util/table.h"

namespace salsa {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform(13);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 13);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(5);
  const double w[] = {0.0, 1.0, 0.0, 2.0};
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[3], counts[1]);  // weight 2 vs 1
}

TEST(Rng, WeightedAllZeroThrows) {
  Rng rng(5);
  const double w[] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(w), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Diagnostics, CheckFailureThrowsWithLocation) {
  try {
    SALSA_CHECK_MSG(false, "context message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context message"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Diagnostics, FailThrows) { EXPECT_THROW(fail("boom"), Error); }

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name   |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22"), std::string::npos);
}

TEST(TextTable, SeparatorAndShortRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"x"});  // short row padded
  t.separator();
  const std::string s = t.render();
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace salsa
