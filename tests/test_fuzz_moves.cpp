// SalsaCheck end-to-end tests: the move fuzzer drives thousands of random
// legal/illegal transaction sequences through the SearchEngine under the
// full invariant auditor (verify + index-rebuild + cost + undo-digest
// checks) on each standard target; a mutation test proves the digest check
// catches a deliberately broken undo; and the determinism audit replays
// allocate() across thread counts and diffs per-restart digest streams.
//
// Transaction counts are tuned per build: CI runs the fuzzer at >= 10000
// transactions per target (SALSA_FUZZ_TXNS); plain local ctest runs a
// lighter pass so the suite stays fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/determinism.h"
#include "analysis/digest.h"
#include "analysis/fuzz.h"
#include "core/allocator.h"
#include "core/initial.h"
#include "core/search_engine.h"
#include "core/verify.h"
#include "util/rng.h"

namespace salsa {
namespace {

long fuzz_transactions() {
  if (const char* env = std::getenv("SALSA_FUZZ_TXNS"))
    return std::atol(env);
  return 2000;
}

// --- the fuzzer under the full auditor -------------------------------------

class FuzzMoves : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzMoves, AuditedTransactionsStayClean) {
  FuzzTarget target(GetParam());
  FuzzParams p;
  p.seed = 20260807;
  p.transactions = fuzz_transactions();
  const FuzzResult res = run_move_fuzz(target.prob(), p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.transactions, p.transactions);
  EXPECT_EQ(res.commits + res.rollbacks, res.transactions);
  // Uniform kind selection makes infeasible proposals ("illegal" move
  // attempts) inevitable; the auditor checked they left no trace.
  EXPECT_GT(res.infeasible, 0);
  EXPECT_EQ(res.audit.audited, res.audit.txns);  // every=1: all audited
  EXPECT_GE(res.audit.txns, res.transactions);
}

TEST_P(FuzzMoves, ThrottledAuditStillRuns) {
  FuzzTarget target(GetParam());
  FuzzParams p;
  p.seed = 7;
  p.transactions = 500;
  p.audit.every = 16;
  const FuzzResult res = run_move_fuzz(target.prob(), p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_GT(res.audit.audited, 0);
  EXPECT_LT(res.audit.audited, res.audit.txns);
}

INSTANTIATE_TEST_SUITE_P(StandardTargets, FuzzMoves,
                         ::testing::ValuesIn(FuzzTarget::names()),
                         [](const auto& info) { return info.param; });

// --- mutation test: a broken undo must be caught ---------------------------

TEST(SalsaCheckMutation, BrokenUndoCaughtByDigestCheck) {
  FuzzTarget target("ewf");
  const auto artifacts =
      std::filesystem::temp_directory_path() / "salsa-fuzz-artifacts";
  std::filesystem::create_directories(artifacts);

  FuzzParams p;
  p.seed = 3;
  p.transactions = 2000;
  p.artifact_dir = artifacts.string();
  p.name = "broken-undo";
  p.inject_broken_undo_at = 25;
  const FuzzResult res = run_move_fuzz(target.prob(), p);
  ASSERT_FALSE(res.ok) << "a broken undo slipped past the auditor";
  EXPECT_NE(res.failure.find("rollback did not restore"), std::string::npos)
      << res.failure;
  // The failure artifact (seed + binding JSON) was written for CI upload.
  ASSERT_FALSE(res.artifact_path.empty());
  std::ifstream in(res.artifact_path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"seed\": 3"), std::string::npos);
  EXPECT_NE(content.str().find("\"binding\""), std::string::npos);
  EXPECT_NE(content.str().find("rollback did not restore"), std::string::npos);
  std::filesystem::remove(res.artifact_path);
}

TEST(SalsaCheckMutation, BrokenUndoCaughtAtEngineLevel) {
  FuzzTarget target("dct");
  Binding start = initial_allocation(target.prob(), InitialOptions{.seed = 9});
  InvariantAuditor auditor;
  SearchEngine eng(start);
  eng.set_observer(&auditor);
  Rng rng(42);
  const MoveConfig moves = MoveConfig::salsa_default();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    if (!eng.propose(moves.pick(rng), rng)) continue;
    eng.inject_broken_undo_for_test();
    EXPECT_THROW(eng.rollback(), Error);
    return;
  }
  FAIL() << "no feasible move found";
}

// --- speculation fuzz -------------------------------------------------------

class SpeculationFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(SpeculationFuzz, BatchedTrajectoriesMatchSequential) {
  // Seeded k-way proposal batches against the sequential reference, with the
  // auditor spot-checking worker engines mid-speculation. Any footprint
  // miss, replay mismatch or stats drift fails here.
  FuzzTarget target(GetParam());
  SpecFuzzParams p;
  p.seed = 20260807;
  p.steps = 1500;
  p.k = 8;
  p.threads = 2;
  p.audit.every = 32;
  const SpecFuzzResult res = run_speculation_fuzz(target.prob(), p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.divergence, -1);
  EXPECT_GT(res.commits, 0);
  EXPECT_GT(res.spec.batches, 0);
  EXPECT_GT(res.spec.served, 0);
  EXPECT_EQ(res.spec.speculated, res.spec.batches * p.k);
}

INSTANTIATE_TEST_SUITE_P(StandardTargets, SpeculationFuzz,
                         ::testing::ValuesIn(FuzzTarget::names()),
                         [](const auto& info) { return info.param; });

TEST(SalsaCheckMutation, SkippedFootprintCheckIsCaught) {
  // Mutation test for the speculation wall: let the Nth footprint-conflict
  // hit slip through uninvalidated and require the stale candidate to be
  // caught — by the replay cross-check (SALSA_CHECK) or by the trajectory
  // digest comparison. A single skip can be a false-positive conflict
  // (the masks are conservative), so scan N until one misfires.
  FuzzTarget target("ewf");
  const auto artifacts =
      std::filesystem::temp_directory_path() / "salsa-spec-artifacts";
  std::filesystem::create_directories(artifacts);
  bool caught = false;
  for (long nth = 1; nth <= 40 && !caught; ++nth) {
    SpecFuzzParams p;
    p.seed = 11;
    p.steps = 1000;
    p.k = 8;
    p.threads = 2;
    p.audit.every = 64;  // throttled: the structural checks must catch it
    p.artifact_dir = artifacts.string();
    p.name = "skip-footprint";
    p.skip_footprint_check_at = nth;
    const SpecFuzzResult res = run_speculation_fuzz(target.prob(), p);
    if (res.ok) continue;
    caught = true;
    // The failure artifact was written for CI upload.
    ASSERT_FALSE(res.artifact_path.empty());
    std::ifstream in(res.artifact_path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("\"k\": 8"), std::string::npos);
    EXPECT_NE(content.str().find("\"binding\""), std::string::npos);
    std::filesystem::remove(res.artifact_path);
  }
  EXPECT_TRUE(caught)
      << "40 skipped footprint checks all slipped past the audit wall";
}

// --- digest canonicality ---------------------------------------------------

TEST(BindingDigest, EqualBindingsDigestEqual) {
  FuzzTarget target("ewf");
  const Binding a = initial_allocation(target.prob(), InitialOptions{.seed = 4});
  const Binding b = a;
  EXPECT_EQ(digest_binding(a), digest_binding(b));
}

TEST(BindingDigest, EveryFieldKindPerturbsTheDigest) {
  FuzzTarget target("ewf");
  const Binding base =
      initial_allocation(target.prob(), InitialOptions{.seed = 4});
  const uint64_t d0 = digest_binding(base);
  const AllocProblem& prob = target.prob();

  {  // op fu
    Binding b = base;
    b.op(prob.cdfg().operations()[0]).fu += 1;
    EXPECT_NE(digest_binding(b), d0);
  }
  {  // op swap
    Binding b = base;
    b.op(prob.cdfg().operations()[0]).swap ^= true;
    EXPECT_NE(digest_binding(b), d0);
  }
  {  // cell register
    Binding b = base;
    b.sto(0).cells[0][0].reg += 1;
    EXPECT_NE(digest_binding(b), d0);
  }
  {  // cell via
    Binding b = base;
    b.sto(0).cells[0][0].via = 0;
    EXPECT_NE(digest_binding(b), d0);
  }
  {  // cell parent
    Binding b = base;
    b.sto(0).cells[0][0].parent += 1;
    EXPECT_NE(digest_binding(b), d0);
  }
  {  // extra copy cell
    Binding b = base;
    b.sto(0).cells[0].push_back(b.sto(0).cells[0][0]);
    EXPECT_NE(digest_binding(b), d0);
  }
  {  // read retarget
    for (int sid = 0; sid < prob.lifetimes().num_storages(); ++sid) {
      if (prob.lifetimes().storage(sid).reads.empty()) continue;
      Binding b = base;
      b.sto(sid).read_cell[0] += 1;
      EXPECT_NE(digest_binding(b), d0);
      break;
    }
  }
}

TEST(BindingDigest, JsonDumpCarriesDigestAndCost) {
  FuzzTarget target("random");
  const Binding b = initial_allocation(target.prob(), InitialOptions{.seed = 2});
  const std::string json = binding_json(b);
  std::ostringstream want;
  want << std::hex << digest_binding(b);
  EXPECT_NE(json.find(want.str()), std::string::npos);
  EXPECT_NE(json.find("\"ops\""), std::string::npos);
  EXPECT_NE(json.find("\"storages\""), std::string::npos);
  EXPECT_NE(json.find("\"cost\""), std::string::npos);
}

// --- engine self-checks exposed for the auditor ----------------------------

TEST(IndexRebuild, CleanEngineMatchesRebuild) {
  FuzzTarget target("ewf");
  const Binding b = initial_allocation(target.prob(), InitialOptions{.seed = 6});
  SearchEngine eng(b);
  std::string why;
  EXPECT_TRUE(eng.index_matches_rebuild(&why)) << why;
}

// --- checked-mode wiring through allocate() --------------------------------

TEST(CheckedMode, AuditedAllocateProducesLegalResult) {
  FuzzTarget target("ewf");
  AllocatorOptions opts;
  opts.restarts = 2;
  opts.checked = CheckMode::kAudit;
  opts.audit_every = 64;  // spot-check: a full audit of a whole search is slow
  opts.improve.max_trials = 4;
  opts.improve.moves_per_trial = 300;
  const AllocationResult res = allocate(target.prob(), opts);
  EXPECT_TRUE(verify(res.binding).empty());
}

TEST(CheckedMode, CheckedOffSkipsNothingObservable) {
  FuzzTarget target("random");
  AllocatorOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 200;
  opts.checked = CheckMode::kOff;
  const AllocationResult off = allocate(target.prob(), opts);
  opts.checked = CheckMode::kFinal;
  const AllocationResult fin = allocate(target.prob(), opts);
  // The knob controls checking only — results are identical either way.
  EXPECT_EQ(off.binding, fin.binding);
  EXPECT_EQ(off.cost.total, fin.cost.total);
}

TEST(CheckedMode, RestartDigestStreamEmittedInRestartOrder) {
  FuzzTarget target("ewf");
  std::vector<uint64_t> stream_a, stream_b;
  AllocatorOptions opts;
  opts.restarts = 4;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 200;
  opts.restart_digests = &stream_a;
  allocate(target.prob(), opts);
  ASSERT_EQ(stream_a.size(), 4u);
  opts.restart_digests = &stream_b;
  opts.parallelism = Parallelism{4};
  allocate(target.prob(), opts);
  EXPECT_EQ(stream_a, stream_b);
}

// --- determinism audit -----------------------------------------------------

TEST(DeterminismAudit, ByteIdenticalAcrossThreadCounts) {
  FuzzTarget target("ewf");
  AllocatorOptions opts;
  opts.restarts = 5;
  opts.improve.max_trials = 4;
  opts.improve.moves_per_trial = 300;
  const DeterminismReport rep = audit_determinism(target.prob(), opts);
  EXPECT_TRUE(rep.ok) << rep.detail;
  ASSERT_EQ(rep.restart_streams.size(), 3u);
  for (const auto& stream : rep.restart_streams)
    EXPECT_EQ(stream.size(), 5u);
  // The streams are genuinely per-restart: restarts differ from each other.
  EXPECT_NE(rep.restart_streams[0][0], rep.restart_streams[0][1]);
}

TEST(DeterminismAudit, ReportsDivergenceInDigestStreams) {
  // Feed the comparison a synthetic divergence by diffing two different
  // problems' streams is not possible through the public API — instead
  // check digest_allocation is sensitive to each result component.
  FuzzTarget target("random");
  AllocatorOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 200;
  AllocationResult res = allocate(target.prob(), opts);
  const uint64_t d0 = digest_allocation(res);
  res.stats.attempted += 1;
  EXPECT_NE(digest_allocation(res), d0);
}

}  // namespace
}  // namespace salsa
