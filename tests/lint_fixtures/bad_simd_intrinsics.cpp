// Known-bad fixture for simd-intrinsics-confined: raw AVX2 intrinsics in
// an ordinary translation unit instead of behind the word kernels of
// src/util/bitplane.h / src/util/bits.h. This file is linted, never
// compiled — it demonstrates the shape the check must catch: a hand-rolled
// vector loop whose scalar twin lives nowhere, so the
// SALSA_BITPLANE_SCALAR differential leg cannot swap it out.
// salsa-lint: expect(simd-intrinsics-confined)
#include <immintrin.h>

#include <cstdint>

namespace salsa {

void or_rows_unconfined(uint64_t* acc, const uint64_t* row, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) acc[i] |= row[i];
}

}  // namespace salsa
