// Known-bad fixture: reading entropy, wall clocks and address-dependent
// values in a deterministic module. CI asserts salsa_lint.py FIRES on
// every pattern here. Never compiled — lint fodder only.
//
// salsa-lint: expect(no-nondeterministic-sources)
#include <chrono>
#include <cstdlib>
#include <functional>
#include <random>

namespace salsa_fixture {

// Wall-clock seed: the trajectory becomes a function of when the run
// started instead of (seed, threads, k).
inline unsigned long long clock_seed() {
  return static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// libc rand(): hidden global stream, shared across threads, never a
// function of the per-restart SplitMix64 streams.
inline int libc_draw(int n) { return rand() % n; }

// OS entropy: differs every run by design.
inline unsigned os_entropy() {
  std::random_device dev;
  return dev();
}

// Hashing a pointer value bakes ASLR into whatever consumes the hash.
inline size_t pointer_hash(const int* p) {
  return std::hash<const int*>{}(p);
}

// Address-dependent integer: two runs of the same binary disagree.
inline unsigned long long address_of(const int& x) {
  return reinterpret_cast<uintptr_t>(&x);
}

}  // namespace salsa_fixture
