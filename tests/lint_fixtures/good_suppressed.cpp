// Known-good fixture: every would-be violation below carries a well-formed
// allow() suppression with a rationale, so the lint must stay SILENT on
// this file (no expect() directives). This pins the suppression machinery:
// if allow() parsing breaks, this fixture starts firing and the fixture
// gate turns red — the exact complement of the bad_* fixtures.
#include <unordered_map>
#include <vector>

namespace salsa_fixture {

inline int sum_sanctioned(const std::unordered_map<int, int>& m) {
  int s = 0;
  // salsa-lint: allow(no-unordered-iteration) integer addition commutes; any visit order yields the same sum
  for (const auto& [k, v] : m) s += v;
  return s;
}

inline int tagged_scratch(const std::vector<int>& xs) {
  // salsa-lint: allow(thread-local-scratch-discipline) drained below: the function returns only entries appended this call and truncates before returning
  static thread_local std::vector<int> scratch;
  const size_t base = scratch.size();
  for (int x : xs) scratch.push_back(x);
  const int added = static_cast<int>(scratch.size() - base);
  scratch.resize(base);
  return added;
}

}  // namespace salsa_fixture
