// Known-bad fixture: malformed suppressions. An allow() with no rationale
// (or naming a check that does not exist) would silently punch a hole in
// the clean-pass gate, so both are violations in their own right. CI
// asserts salsa_lint.py FIRES on each.
//
// salsa-lint: expect(bad-suppression)
#include <unordered_map>

namespace salsa_fixture {

// Reason-less allow: the suppression is rejected (bad-suppression)...
// salsa-lint: allow(no-unordered-iteration)
inline int sum_reasonless(const std::unordered_map<int, int>& m) {
  int s = 0;
  // ...and, being invalid, it does NOT silence the iteration finding
  // either; this fixture therefore expects both checks to fire.
  // salsa-lint: expect(no-unordered-iteration)
  for (const auto& [k, v] : m) s += v;
  return s;
}

// Unknown check name: typos must not create accidental blanket holes.
// salsa-lint: allow(no-unordered-iteratoin) commutes
inline int noop() { return 0; }

}  // namespace salsa_fixture
