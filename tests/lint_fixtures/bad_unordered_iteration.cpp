// Known-bad fixture: iterating hash-layout-ordered containers in a
// result-affecting module. CI asserts salsa_lint.py FIRES on every pattern
// here (same mutation-test culture as --break-flat-erase): a lint that
// stops seeing this file has lost the check. Never compiled — lint fodder
// only.
//
// salsa-lint: expect(no-unordered-iteration)
#include <unordered_map>
#include <unordered_set>

namespace salsa_fixture {

template <typename K, typename V>
struct FlatMap {  // stand-in mirroring util/flat_map.h's visitors
  template <typename Fn>
  void drain(Fn&&) {}
  template <typename Fn>
  void for_each(Fn&&) const {}
};

// Range-for over an unordered map: the visit order is the hash table's
// slot layout — a function of insertion history and rehash timing, not of
// the keys — so any result folded in this order is nondeterministic.
inline int sum_values(const std::unordered_map<int, int>& weights) {
  int total = 0;
  for (const auto& [key, value] : weights) total += value * key;
  return total;
}

// Iterator loop over an unordered set: same defect, spelled with begin().
inline int first_element(const std::unordered_set<int>& pool) {
  auto it = pool.begin();
  return it != pool.end() ? *it : -1;
}

// FlatMap::drain outside the two sanctioned (commutative-fold) sites and
// with no order-independence rationale.
inline int drain_everything(FlatMap<unsigned long long, int>& delta) {
  int last = 0;
  delta.drain([&](unsigned long long, int net) { last = net; });
  return last;  // "last entry wins" — pure layout-order dependence
}

}  // namespace salsa_fixture
