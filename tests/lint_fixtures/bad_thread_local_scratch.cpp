// Known-bad fixture: a static thread_local scratch buffer read before
// being reset. CI asserts salsa_lint.py FIRES here. Never compiled — lint
// fodder only.
//
// salsa-lint: expect(thread-local-scratch-discipline)
#include <vector>

namespace salsa_fixture {

// The buffer keeps its contents across calls AND across whoever ran on
// this pool thread last — the first use below appends without clearing,
// so candidates from a previous proposal (possibly a different engine's)
// leak into this one. The discipline: first use in scope must be
// .clear()/.assign()/.clear_all()/.zero() (or BitPlane::resize, which
// zeroes by contract), or the declaration documents its tag-guard /
// drained-to-zero invariant in an allow() suppression.
inline int collect_even(const std::vector<int>& xs) {
  static thread_local std::vector<int> scratch;
  for (int x : xs)
    if (x % 2 == 0) scratch.push_back(x);  // stale entries still inside
  return static_cast<int>(scratch.size());
}

}  // namespace salsa_fixture
