// Known-bad fixture: ad-hoc occupancy mutation outside the claim/release/
// staged-apply entry points of core/binding.* / core/search_engine.*.
// CI asserts salsa_lint.py FIRES on every pattern here. Never compiled —
// lint fodder only (the structs below just mirror the real member names).
//
// salsa-lint: expect(transaction-seam-writes)
#include <vector>

namespace salsa_fixture {

struct BitPlane {
  void set(int, int) {}
  void clear(int, int) {}
  void set_range(int, int, int) {}
};

struct Occupancy {
  std::vector<std::vector<int>> fu_user;
  std::vector<std::vector<int>> reg_sto;
  BitPlane fu_busy;
  BitPlane reg_busy;
  BitPlane reg_busy_t;
  int& fu_slot(int f, int t) { return fu_user[f][t]; }
  void claim_fu(int, int, int) {}
  void release_reg(int, int) {}
};

// Poking a busy plane directly: the scalar identity grid no longer agrees
// with the packed plane, and the engine's word undo journal never saw the
// write — rollback cannot restore it.
inline void poke_plane(Occupancy& occ) { occ.fu_busy.set(3, 7); }

// Writing the identity grid directly: same skew, other representation.
inline void poke_grid(Occupancy& occ, int node) {
  occ.reg_sto[2][5] = node;
}

// Raw slot reference outside the engine's journaled claim paths.
inline void poke_slot(Occupancy& occ) { occ.fu_slot(1, 4) = -1; }

// Even the sanctioned entry points are seam violations when called ad hoc
// from outside binding.*/search_engine.* — no transaction, no journal, no
// auditor hook sees the mutation.
inline void adhoc_claim(Occupancy& occ) { occ.claim_fu(0, 0, 42); }

}  // namespace salsa_fixture
