// FlatMap (util/flat_map.h): randomized equivalence against
// std::unordered_map over the refcount contract, growth/boundary behavior,
// collision and backward-shift stress, the content-equality and drain
// contracts the engine relies on, and the mutation hook proving a broken
// backward-shift deletion is detectable.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/diagnostics.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace salsa {
namespace {

// Mirrors `map` into `ref` semantics: counts live only while nonzero.
template <typename Key>
void apply_ref(std::unordered_map<Key, int>& ref, Key key, int delta) {
  const int now = (ref[key] += delta);
  if (now == 0) ref.erase(key);
}

template <typename Key>
void expect_matches(const FlatMap<Key>& map,
                    const std::unordered_map<Key, int>& ref) {
  ASSERT_EQ(map.size(), ref.size());
  size_t seen = 0;
  map.for_each([&](Key key, int count) {
    ++seen;
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "key " << key << " not in the reference";
    EXPECT_EQ(count, it->second);
  });
  EXPECT_EQ(seen, ref.size());
}

template <typename Key>
void randomized_equivalence(uint64_t seed) {
  // A small key universe keeps counts churning through zero (entry death
  // and rebirth), which is the whole point of the refcount layout.
  Rng rng(seed);
  FlatMap<Key> map;
  std::unordered_map<Key, int> ref;
  std::vector<Key> universe(257);
  for (Key& k : universe) k = static_cast<Key>(rng.next());
  for (int step = 0; step < 200000; ++step) {
    const Key key = universe[static_cast<size_t>(
        rng.uniform(static_cast<int>(universe.size())))];
    const auto it = ref.find(key);
    const int cur = it == ref.end() ? 0 : it->second;
    // Bias toward +1 so the table fills, but drive counts down through
    // erase often; never take a positive count negative via decrement.
    int delta;
    if (cur > 0 && rng.chance(0.55)) {
      delta = -1;
      EXPECT_EQ(map.decrement(key), cur - 1);
    } else {
      delta = 1 + rng.uniform(3);
      EXPECT_EQ(map.add(key, delta), cur + delta);
    }
    apply_ref(ref, key, delta);
    if (step % 4096 == 0) expect_matches(map, ref);
    // Spot-check lookups, hits and misses alike.
    const Key probe = universe[static_cast<size_t>(
        rng.uniform(static_cast<int>(universe.size())))];
    const int* got = map.find(probe);
    const auto rit = ref.find(probe);
    if (rit == ref.end()) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, rit->second);
    }
  }
  expect_matches(map, ref);
}

TEST(FlatMap, RandomizedEquivalenceU64) { randomized_equivalence<uint64_t>(1); }
TEST(FlatMap, RandomizedEquivalenceU32) { randomized_equivalence<uint32_t>(2); }

TEST(FlatMap, RefcountLifecycle) {
  FlatMap<uint64_t> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_EQ(map.increment(7), 1);
  EXPECT_EQ(map.increment(7), 2);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 2);
  EXPECT_EQ(map.decrement(7), 1);
  EXPECT_EQ(map.decrement(7), 0);
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_TRUE(map.empty());
  // Negative transients (the footprint netting shape) are legal via add().
  EXPECT_EQ(map.add(9, -1), -1);
  EXPECT_EQ(map.add(9, +1), 0);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, DecrementMissingKeyFailsHard) {
  FlatMap<uint64_t> map;
  EXPECT_THROW(map.decrement(1), Error);  // empty table
  map.increment(2);
  EXPECT_THROW(map.decrement(1), Error);  // absent key
}

TEST(FlatMap, GrowthKeepsEveryEntry) {
  // March straight through several load-factor doublings (16 → 2048 slots)
  // and verify nothing is lost or duplicated on any rehash boundary.
  FlatMap<uint64_t> map;
  Rng rng(3);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 1500; ++i) {
    const uint64_t key = rng.next();
    inserted.push_back(key);
    map.add(key, 1 + rng.uniform(9));
    if (i == 13 || i == 14 || i == 27 || i == 28 || i % 100 == 99) {
      // Around the 7/8 thresholds of the first capacities, then periodic.
      ASSERT_EQ(map.size(), static_cast<size_t>(i) + 1);
    }
  }
  ASSERT_EQ(map.size(), 1500u);
  for (uint64_t key : inserted) ASSERT_NE(map.find(key), nullptr);
  size_t seen = 0;
  map.for_each([&](uint64_t, int) { ++seen; });
  EXPECT_EQ(seen, 1500u);
}

TEST(FlatMap, ReservePreservesContent) {
  FlatMap<uint32_t> map;
  for (uint32_t k = 0; k < 40; ++k) map.add(k, static_cast<int>(k) + 1);
  map.reserve(100000);
  for (uint32_t k = 0; k < 40; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), static_cast<int>(k) + 1);
  }
  EXPECT_EQ(map.size(), 40u);
}

/// Brute-forces `n` distinct keys that all hash to the same ideal slot of a
/// 16-slot table — every insertion after the first probes linearly, and
/// every deletion exercises the backward-shift walk over displaced keys.
std::vector<uint64_t> colliding_keys(size_t n) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; keys.size() < n; ++k) {
    if ((static_cast<size_t>((k * 0x9e3779b97f4a7c15ull) >> 32) & 15u) == 3u)
      keys.push_back(k);
  }
  return keys;
}

TEST(FlatMap, CollisionClusterSurvivesInterleavedErases) {
  const std::vector<uint64_t> keys = colliding_keys(12);
  FlatMap<uint64_t> map;
  for (uint64_t k : keys) map.increment(k);
  // Erase every other key: each erase compacts the probe chain across the
  // survivors, which must all stay findable.
  for (size_t i = 0; i < keys.size(); i += 2) map.decrement(keys[i]);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(map.find(keys[i]), nullptr);
    } else {
      ASSERT_NE(map.find(keys[i]), nullptr) << "orphaned key " << keys[i];
    }
  }
  // Refill and drain the whole cluster front-to-back.
  for (size_t i = 0; i < keys.size(); i += 2) map.increment(keys[i]);
  for (uint64_t k : keys) map.decrement(k);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, EqualityIsContentBasedNotLayoutBased) {
  const std::vector<uint64_t> keys = colliding_keys(8);
  // b takes a different insertion/deletion history, so its slot layout
  // differs from a's; content equality must hold regardless.
  FlatMap<uint64_t> a, b;
  for (uint64_t k : keys) a.increment(k);
  for (size_t i = keys.size(); i-- > 0;) b.increment(keys[i]);
  b.increment(999);
  b.decrement(999);
  EXPECT_TRUE(a == b);
  b.decrement(keys[3]);
  EXPECT_FALSE(a == b);
  b.increment(keys[3]);
  EXPECT_TRUE(a == b);
}

TEST(FlatMap, DrainVisitsEverythingOnceAndEmpties) {
  FlatMap<uint32_t> map;
  std::unordered_map<uint32_t, int> ref;
  for (uint32_t k = 100; k < 200; ++k) {
    map.add(k, static_cast<int>(k % 5) - 2);  // some nets are zero
    apply_ref(ref, k, static_cast<int>(k % 5) - 2);
  }
  std::unordered_map<uint32_t, int> drained;
  map.drain([&](uint32_t key, int count) {
    EXPECT_TRUE(drained.emplace(key, count).second) << "visited twice";
  });
  EXPECT_EQ(drained, ref);
  EXPECT_TRUE(map.empty());
  map.drain([](uint32_t, int) { FAIL() << "drain on empty table visited"; });
}

// The mutation test behind salsa_audit --break-flat-erase: a deletion that
// skips the backward-shift compaction strands displaced keys behind the
// hole, and the corruption MUST be observable — a present key becomes
// unfindable, which the engine-level rebuild cross-check
// (SearchEngine::index_matches_rebuild) and FlatMap's own decrement CHECK
// turn into a hard failure.
TEST(FlatMap, BrokenBackwardShiftIsDetectable) {
  const std::vector<uint64_t> keys = colliding_keys(10);
  FlatMap<uint64_t> map;
  map.mark_mutation_target();
  for (uint64_t k : keys) map.increment(k);

  // Arm the one-shot hook for the very next compacting erase (the counter
  // is process-wide and cumulative, so arm relative to its current value).
  flat_map_hooks::break_backward_shift_after =
      flat_map_hooks::erase_count + 1;
  map.decrement(keys[0]);
  ASSERT_EQ(flat_map_hooks::break_backward_shift_after, 0) << "hook unfired";

  // Every survivor was displaced behind keys[0]'s slot; the skipped
  // compaction must orphan at least one of them.
  bool orphaned = false;
  for (size_t i = 1; i < keys.size(); ++i)
    orphaned = orphaned || map.find(keys[i]) == nullptr;
  EXPECT_TRUE(orphaned) << "broken deletion went undetected";

  // Content equality against a correctly-built table with the same
  // intended contents flags the drift too (this is exactly what the
  // index_matches_rebuild audit compares).
  FlatMap<uint64_t> rebuilt;
  for (size_t i = 1; i < keys.size(); ++i) rebuilt.increment(keys[i]);
  EXPECT_FALSE(map == rebuilt);
}

}  // namespace
}  // namespace salsa
