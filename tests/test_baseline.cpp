#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "util/rng.h"

#include "baseline/bipartite.h"
#include "baseline/left_edge.h"
#include "baseline/traditional.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

// ---- Hungarian algorithm ---------------------------------------------------

TEST(Hungarian, SolvesKnownMatrix) {
  // Optimal assignment: (0->1, 1->0, 2->2) with cost 1+2+2 = 5.
  const std::vector<std::vector<double>> cost{
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto m = min_cost_assignment(cost);
  ASSERT_EQ(m.size(), 3u);
  double total = 0;
  std::vector<bool> used(3, false);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(used[static_cast<size_t>(m[static_cast<size_t>(i)])]);
    used[static_cast<size_t>(m[static_cast<size_t>(i)])] = true;
    total += cost[static_cast<size_t>(i)][static_cast<size_t>(m[static_cast<size_t>(i)])];
  }
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Hungarian, RectangularLeavesColumnsFree) {
  const std::vector<std::vector<double>> cost{{10, 1, 10, 10},
                                              {1, 10, 10, 10}};
  const auto m = min_cost_assignment(cost);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 0);
}

TEST(Hungarian, ForbiddenEdgesMakeItFail) {
  const std::vector<std::vector<double>> cost{
      {kUnassignable, 1}, {kUnassignable, 1}};
  EXPECT_TRUE(min_cost_assignment(cost).empty());
}

TEST(Hungarian, EmptyInput) {
  EXPECT_TRUE(min_cost_assignment({}).empty());
}

TEST(Hungarian, RandomMatricesMatchBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.range(2, 5);
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : cost)
      for (auto& c : row) c = rng.range(0, 20);
    const auto m = min_cost_assignment(cost);
    ASSERT_EQ(static_cast<int>(m.size()), n);
    double got = 0;
    for (int i = 0; i < n; ++i)
      got += cost[static_cast<size_t>(i)][static_cast<size_t>(m[static_cast<size_t>(i)])];
    // Brute force over permutations.
    std::vector<int> perm(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
    double best = 1e18;
    do {
      double t = 0;
      for (int i = 0; i < n; ++i)
        t += cost[static_cast<size_t>(i)][static_cast<size_t>(perm[static_cast<size_t>(i)])];
      best = std::min(best, t);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_DOUBLE_EQ(got, best) << "trial " << trial;
  }
}

// ---- left edge -------------------------------------------------------------

TEST(LeftEdge, ProducesLegalTraditionalBinding) {
  Ctx ctx(make_ewf(), 17, 2);
  Binding b = left_edge_allocation(*ctx.prob);
  EXPECT_TRUE(verify(b).empty());
  EXPECT_TRUE(b.is_traditional());
}

TEST(LeftEdge, AcyclicUsesMinimumRegisters) {
  // DCT is acyclic: left edge is exact for interval lifetimes.
  Ctx ctx(make_dct(), 10, 3);
  Binding b = left_edge_allocation(*ctx.prob);
  EXPECT_TRUE(verify(b).empty());
  EXPECT_EQ(b.regs_used(), ctx.prob->lifetimes().min_registers());
}

TEST(LeftEdge, AssignmentsAvoidOverlaps) {
  Ctx ctx(make_ewf(), 19, 1);
  const auto assign = left_edge_assign(*ctx.prob);
  const Lifetimes& lt = ctx.prob->lifetimes();
  const int L = ctx.sched->length();
  for (int a = 0; a < lt.num_storages(); ++a)
    for (int b = a + 1; b < lt.num_storages(); ++b) {
      if (assign[static_cast<size_t>(a)] != assign[static_cast<size_t>(b)])
        continue;
      for (int seg = 0; seg < lt.storage(a).len; ++seg)
        EXPECT_EQ(lt.seg_at_step(b, lt.storage(a).step_at(seg, L)), -1)
            << "storages " << a << " and " << b << " overlap in a register";
    }
}

// ---- bipartite matching ----------------------------------------------------

TEST(Bipartite, ProducesLegalTraditionalBinding) {
  Ctx ctx(make_dct(), 12, 2);
  Binding b = bipartite_allocation(*ctx.prob);
  EXPECT_TRUE(verify(b).empty());
  EXPECT_TRUE(b.is_traditional());
}

TEST(Bipartite, NoWorseThanLeftEdgeOnInterconnect) {
  Ctx ctx(make_dct(), 10, 3);
  const int le = evaluate_cost(left_edge_allocation(*ctx.prob)).muxes;
  const int bp = evaluate_cost(bipartite_allocation(*ctx.prob)).muxes;
  EXPECT_LE(bp, le + 2) << "interconnect-aware matching should be comparable";
}

// ---- traditional allocator -------------------------------------------------

TEST(Traditional, InitialIsContiguous) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = traditional_initial(*ctx.prob, 1);
  EXPECT_TRUE(verify(b).empty());
  EXPECT_TRUE(b.is_traditional());
}

TEST(Traditional, AllocatorKeepsModelRestriction) {
  Ctx ctx(make_ewf(), 17, 1);
  TraditionalOptions opts;
  opts.improve.max_trials = 4;
  opts.improve.moves_per_trial = 800;
  const AllocationResult res = allocate_traditional(*ctx.prob, opts);
  EXPECT_TRUE(verify(res.binding).empty());
  EXPECT_TRUE(res.binding.is_traditional());
  EXPECT_EQ(res.cost.muxes, evaluate_cost(res.binding).muxes);
}

TEST(Traditional, BacktrackingHandlesTightBudgets) {
  // At the minimum register count a contiguous placement may need the exact
  // search; it must either succeed or throw a clear error — never crash.
  Ctx ctx(make_ewf(), 17, 0);
  try {
    Binding b = traditional_initial(*ctx.prob, 1, /*retries=*/2);
    EXPECT_TRUE(b.is_traditional());
    EXPECT_TRUE(verify(b).empty());
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("contiguous"), std::string::npos);
  }
}

TEST(Traditional, DiffeqSmallCase) {
  Ctx ctx(make_diffeq(), 10, 1);
  TraditionalOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 400;
  const AllocationResult res = allocate_traditional(*ctx.prob, opts);
  EXPECT_TRUE(res.binding.is_traditional());
}

}  // namespace
}  // namespace salsa
