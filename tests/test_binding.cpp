#include <gtest/gtest.h>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "core/initial.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct ProblemFixture {
  Cdfg g;
  HwSpec hw;
  Schedule sched;
  FuPool pool;
  AllocProblem prob;

  ProblemFixture(Cdfg graph, int length, bool pipelined = false,
                 int extra_regs = 0, HwSpec base = {})
      : g(std::move(graph)),
        hw([&] {
          base.pipelined_mul = pipelined;
          return base;
        }()),
        sched(schedule_min_fu(g, hw, length).schedule),
        pool(FuPool::standard(peak_fu_demand(sched))),
        prob(sched, pool, Lifetimes(sched).min_registers() + extra_regs) {}
};

TEST(Binding, InitialAllocationIsLegalOnAllBenchmarks) {
  {
    ProblemFixture f(make_ewf(), 17);
    check_legal(initial_allocation(f.prob));
  }
  {
    ProblemFixture f(make_dct(), 10);
    check_legal(initial_allocation(f.prob));
  }
  {
    ProblemFixture f(make_ar_filter(), 16);
    check_legal(initial_allocation(f.prob));
  }
  {
    ProblemFixture f(make_fir8(), 11);
    check_legal(initial_allocation(f.prob));
  }
  {
    ProblemFixture f(make_diffeq(), 9);
    check_legal(initial_allocation(f.prob));
  }
}

TEST(Binding, InitialIsDeterministicPerSeed) {
  ProblemFixture f(make_ewf(), 17);
  Binding a = initial_allocation(f.prob, InitialOptions{.seed = 5});
  Binding b = initial_allocation(f.prob, InitialOptions{.seed = 5});
  for (NodeId n : f.g.operations()) EXPECT_EQ(a.op(n).fu, b.op(n).fu);
  for (int sid = 0; sid < f.prob.lifetimes().num_storages(); ++sid)
    for (size_t seg = 0; seg < a.sto(sid).cells.size(); ++seg)
      EXPECT_EQ(a.sto(sid).cells[seg][0].reg, b.sto(sid).cells[seg][0].reg);
}

TEST(Binding, OccupancyAccountsForEveryCellAndOp) {
  ProblemFixture f(make_ewf(), 17);
  Binding b = initial_allocation(f.prob);
  const Occupancy occ = b.occupancy();
  // Every op occupies its FU at its start step.
  for (NodeId n : f.g.operations())
    EXPECT_EQ(occ.fu_user[static_cast<size_t>(b.op(n).fu)]
                         [static_cast<size_t>(f.sched.start(n))],
              n);
  // Register occupancy total equals the sum of storage lifetimes.
  long cells = 0;
  for (const auto& per_reg : occ.reg_sto)
    for (int user : per_reg) cells += user >= 0;
  long lens = 0;
  for (int sid = 0; sid < f.prob.lifetimes().num_storages(); ++sid)
    lens += f.prob.lifetimes().storage(sid).len;
  EXPECT_EQ(cells, lens);
}

TEST(Binding, RegsUsedWithinBudget) {
  ProblemFixture f(make_dct(), 12, false, 2);
  Binding b = initial_allocation(f.prob);
  EXPECT_LE(b.regs_used(), f.prob.num_regs());
  EXPECT_GE(b.regs_used(), f.prob.lifetimes().min_registers());
}

TEST(Binding, InitialIsTraditionalWhenContiguous) {
  ProblemFixture f(make_diffeq(), 9, false, 2);
  Binding b = initial_allocation(f.prob, InitialOptions{.allow_splits = false});
  EXPECT_TRUE(b.is_traditional());
}

TEST(Binding, NormalizeClearsViaOnHolds) {
  ProblemFixture f(make_ewf(), 17, false, 2);
  Binding b = initial_allocation(f.prob);
  // Manufacture a hold with a stale via and check normalize clears it.
  for (int sid = 0; sid < f.prob.lifetimes().num_storages(); ++sid) {
    StorageBinding& sb = b.sto(sid);
    if (sb.cells.size() < 2) continue;
    sb.cells[1][0].via = 0;  // parent reg == own reg → stale
    b.normalize();
    EXPECT_EQ(sb.cells[1][0].via, kInvalidId);
    break;
  }
}

TEST(Binding, ProblemRejectsTooFewRegisters) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = schedule_min_fu(g, hw, 17).schedule;
  FuPool pool = FuPool::standard(peak_fu_demand(s));
  const int min_regs = Lifetimes(s).min_registers();
  EXPECT_THROW(AllocProblem(s, pool, min_regs - 1), Error);
}

TEST(Binding, ProblemRejectsTooFewFus) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = schedule_min_fu(g, hw, 17).schedule;
  const FuBudget peak = peak_fu_demand(s);
  FuPool pool = FuPool::standard(FuBudget{peak.alu - 1, peak.mul});
  EXPECT_THROW(AllocProblem(s, pool, Lifetimes(s).min_registers() + 5), Error);
}

TEST(FuPoolTest, StandardPoolShapes) {
  FuPool p = FuPool::standard(FuBudget{2, 3});
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.of_class(FuClass::kAlu).size(), 2u);
  EXPECT_EQ(p.of_class(FuClass::kMul).size(), 3u);
  EXPECT_EQ(p.pass_capable().size(), 2u);  // ALUs pass, muls do not
  FuPool p2 = FuPool::standard(FuBudget{1, 1}, true, true);
  EXPECT_EQ(p2.pass_capable().size(), 2u);
}

}  // namespace
}  // namespace salsa
