// Integration test of the paper's headline claims on reduced search budgets
// (the full-budget numbers live in EXPERIMENTS.md / bench_table2_ewf):
//   C1 — the extended model never needs more interconnect than the
//        traditional model under the same engine;
//   C2 — the advantage appears at tight register budgets;
//   C4 — annealing underperforms the trial scheme at equal move budget.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/traditional.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/allocator.h"
#include "core/annealer.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, bool pipelined, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    hw.pipelined_mul = pipelined;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

struct Pair {
  int trad_merged;
  int salsa_merged;
};

Pair compare(const AllocProblem& prob, uint64_t seed) {
  ImproveParams params;
  params.max_trials = 8;
  params.moves_per_trial = 3000;
  params.seed = seed;

  TraditionalOptions topt;
  topt.improve = params;
  AllocationResult trad = allocate_traditional(prob, topt);

  AllocatorOptions sopt;
  sopt.improve = params;
  sopt.improve.seed = seed + 1;
  AllocationResult ext = allocate(prob, sopt);
  ImproveParams refine = params;
  refine.seed = seed + 2;
  ImproveResult r = improve(trad.binding, refine);
  const int ext_merged = std::min(merge_muxes(r.best).muxes_after,
                                  ext.merging.muxes_after);
  return Pair{trad.merging.muxes_after, ext_merged};
}

TEST(Reproduction, C1_ExtendedNeverWorse_Ewf17) {
  Ctx ctx(make_ewf(), 17, false, 1);
  const Pair p = compare(*ctx.prob, 5);
  EXPECT_LE(p.salsa_merged, p.trad_merged);
}

TEST(Reproduction, C1_ExtendedNeverWorse_Dct9) {
  Ctx ctx(make_dct(), 9, false, 1);
  const Pair p = compare(*ctx.prob, 6);
  EXPECT_LE(p.salsa_merged, p.trad_merged);
}

TEST(Reproduction, C2_TightBudgetAdvantage_EwfPipelined) {
  // The paper's dramatic row: 17 steps, pipelined multipliers, minimum
  // registers. The extended model should win outright here.
  Ctx ctx(make_ewf(), 17, true, 0);
  const Pair p = compare(*ctx.prob, 7);
  EXPECT_LT(p.salsa_merged, p.trad_merged);
}

TEST(Reproduction, C4_AnnealingUnderperforms) {
  Ctx ctx(make_ewf(), 17, false, 1);
  Binding start = initial_allocation(*ctx.prob);
  ImproveParams trial;
  trial.max_trials = 8;
  trial.moves_per_trial = 3000;
  trial.seed = 2;
  const double iter_cost = improve(start, trial).cost.total;
  AnnealParams ap;
  ap.num_temps = 8;
  ap.moves_per_temp = 3000;
  ap.initial_temp = 30.0;
  ap.seed = 2;
  const double anneal_cost = anneal(start, ap).cost.total;
  EXPECT_LT(iter_cost, anneal_cost);
}

TEST(Reproduction, ExtendedFeaturesAppearInWinners) {
  // At the tight budget some winning extended allocation actually uses the
  // model: segments in multiple registers, copies, or pass-throughs. (Not
  // every seed's winner does — a traditional-form local optimum can tie —
  // so scan a few seeds for one that exploits the freedom.)
  Ctx ctx(make_ewf(), 17, true, 0);
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    AllocatorOptions sopt;
    sopt.improve.max_trials = 8;
    sopt.improve.moves_per_trial = 3000;
    sopt.improve.seed = seed;
    const AllocationResult ext = allocate(*ctx.prob, sopt);
    ASSERT_TRUE(verify(ext.binding).empty());
    found = !ext.binding.is_traditional();
  }
  EXPECT_TRUE(found)
      << "no tight-budget winner exploited the extended model in 10 seeds";
}

}  // namespace
}  // namespace salsa
