// Golden properties of the DCT benchmark (paper Table 3 workload, Figure 5
// CDFG): the exact census the paper quotes — 25 additions, 7 subtractions,
// 16 multiplications — and its scheduling envelope.
#include <gtest/gtest.h>

#include "bench_suite/dct.h"
#include "cdfg/eval.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/rng.h"

namespace salsa {
namespace {

TEST(Dct, PaperOperationCensus) {
  Cdfg g = make_dct();
  EXPECT_EQ(g.count(OpKind::kAdd), 25);
  EXPECT_EQ(g.count(OpKind::kSub), 7);
  EXPECT_EQ(g.count(OpKind::kMul), 16);
  EXPECT_EQ(static_cast<int>(g.operations().size()), 48);
  EXPECT_EQ(g.input_nodes().size(), 8u);
  EXPECT_EQ(g.output_nodes().size(), 8u);
  EXPECT_TRUE(g.state_nodes().empty()) << "the transform is acyclic";
}

TEST(Dct, CriticalPath) {
  Cdfg g = make_dct();
  HwSpec hw;
  EXPECT_EQ(min_schedule_length(g, hw), 7);
}

TEST(Dct, FuEnvelopeShrinksWithLatency) {
  Cdfg g = make_dct();
  HwSpec hw;
  int prev_cost = 1 << 20;
  for (int L : {8, 10, 12, 14}) {
    auto r = schedule_min_fu(g, hw, L);
    const int cost = r.fus.alu + 4 * r.fus.mul;
    EXPECT_LE(cost, prev_cost) << "L=" << L;
    prev_cost = cost;
  }
}

TEST(Dct, IsALinearTransform) {
  Cdfg g = make_dct();
  Rng rng(3);
  Evaluator e1(g), e2(g), e12(g);
  std::vector<int64_t> a(8), b(8), ab(8);
  for (int i = 0; i < 8; ++i) {
    a[static_cast<size_t>(i)] = static_cast<int64_t>(rng.next() % 100) - 50;
    b[static_cast<size_t>(i)] = static_cast<int64_t>(rng.next() % 100) - 50;
    ab[static_cast<size_t>(i)] =
        a[static_cast<size_t>(i)] + b[static_cast<size_t>(i)];
  }
  const auto ya = e1.step(a);
  const auto yb = e2.step(b);
  const auto yab = e12.step(ab);
  for (int k = 0; k < 8; ++k)
    EXPECT_EQ(yab[static_cast<size_t>(k)],
              ya[static_cast<size_t>(k)] + yb[static_cast<size_t>(k)]);
}

TEST(Dct, DcInputExcitesOnlyEvenLowBand) {
  // A constant input vector: the "DC" coefficient X0 is 8*c4*x, and the odd
  // coefficients vanish (their butterflies subtract equal samples).
  Cdfg g = make_dct();
  std::vector<int64_t> dc(8, 3);
  Evaluator ev(g);
  const auto y = ev.step(dc);
  EXPECT_NE(y[0], 0);
  EXPECT_EQ(y[1], 0);
  EXPECT_EQ(y[3], 0);
  EXPECT_EQ(y[5], 0);
  EXPECT_EQ(y[7], 0);
  EXPECT_EQ(y[4], 0);  // X4 ~ (t1 - t0) = 0 for constant input
}

TEST(Dct, AntisymmetricInputExcitesOnlyOddBand) {
  // x[i] = -x[7-i]: all si = 0, so every even output is zero.
  Cdfg g = make_dct();
  std::vector<int64_t> x{5, -2, 7, 1, -1, -7, 2, -5};
  Evaluator ev(g);
  const auto y = ev.step(x);
  EXPECT_EQ(y[0], 0);
  EXPECT_EQ(y[2], 0);
  EXPECT_EQ(y[4], 0);
  EXPECT_EQ(y[6], 0);
  EXPECT_NE(y[1], 0);
}

}  // namespace
}  // namespace salsa
