#include <gtest/gtest.h>

#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "core/sched_explore.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

ScheduleExploreParams quick(uint64_t seed) {
  ScheduleExploreParams p;
  p.variants = 3;
  p.alloc.improve.max_trials = 4;
  p.alloc.improve.moves_per_trial = 800;
  p.seed = seed;
  return p;
}

TEST(SchedExplore, ProducesLegalWinner) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 17).fus;
  const ScheduleExploreResult res =
      explore_schedules(g, hw, 17, budget, quick(1));
  ASSERT_TRUE(res.allocation.has_value());
  EXPECT_TRUE(verify(res.allocation->binding).empty());
  res.schedule->validate();
  EXPECT_EQ(res.schedule->length(), 17);
}

TEST(SchedExplore, TriesBaselinePlusVariants) {
  Cdfg g = make_fir8();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 12).fus;
  const ScheduleExploreResult res =
      explore_schedules(g, hw, 12, budget, quick(2));
  EXPECT_GE(res.variant_costs.size(), 2u);
  EXPECT_LE(res.variant_costs.size(),
            static_cast<size_t>(quick(2).variants) + 1);
}

TEST(SchedExplore, WinnerIsMinimumOfVariants) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 19).fus;
  const ScheduleExploreResult res =
      explore_schedules(g, hw, 19, budget, quick(3));
  ASSERT_TRUE(res.allocation.has_value());
  double min_cost = res.variant_costs[0];
  for (double c : res.variant_costs) min_cost = std::min(min_cost, c);
  EXPECT_DOUBLE_EQ(res.allocation->cost.total, min_cost);
}

TEST(SchedExplore, JitteredSchedulesStayWithinBudget) {
  // Jitter can make a tight deadline infeasible for the heuristic; give it
  // one step of slack and require the bounded variants to hold the budget.
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 18).fus;
  Rng rng(7);
  int produced = 0;
  for (int i = 0; i < 6; ++i) {
    const auto s = list_schedule(g, hw, 19, budget, &rng);
    if (!s) continue;
    ++produced;
    s->validate();
    const FuBudget peak = peak_fu_demand(*s);
    EXPECT_LE(peak.alu, budget.alu);
    EXPECT_LE(peak.mul, budget.mul);
  }
  EXPECT_GT(produced, 0);
}

TEST(SchedExplore, JitterActuallyVariesSchedules) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const FuBudget budget = schedule_min_fu(g, hw, 19).fus;
  Rng rng(11);
  const auto base = list_schedule(g, hw, 19, budget);
  ASSERT_TRUE(base.has_value());
  bool any_different = false;
  for (int i = 0; i < 6 && !any_different; ++i) {
    const auto v = list_schedule(g, hw, 19, budget, &rng);
    ASSERT_TRUE(v.has_value());
    for (NodeId n : g.operations())
      if (v->start(n) != base->start(n)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace salsa
