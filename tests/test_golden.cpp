// Deterministic end-to-end pins: the RNG is fully portable (xoshiro256**),
// so fixed seeds give bit-identical searches on every platform. These tests
// freeze a few complete flow results; a change here means an intentional
// algorithm change (update the constants) or an accidental regression.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/digest.h"
#include "baseline/traditional.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/allocator.h"
#include "datapath/vcd.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, bool pipelined, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    hw.pipelined_mul = pipelined;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

AllocatorOptions golden_opts(uint64_t seed) {
  AllocatorOptions opts;
  opts.improve.max_trials = 6;
  opts.improve.moves_per_trial = 2000;
  opts.improve.seed = seed;
  opts.initial.seed = seed;
  return opts;
}

TEST(Golden, InitialAllocationCostsArePinned) {
  Ctx ewf(make_ewf(), 17, false, 1);
  Binding b = initial_allocation(*ewf.prob, InitialOptions{.seed = 1});
  const CostBreakdown cost = evaluate_cost(b);
  // Frozen on 2026-07-07; see file header before "fixing" these.
  EXPECT_EQ(cost.muxes, 36);
  EXPECT_EQ(cost.connections, 58);
  EXPECT_EQ(cost.regs_used, 13);
}

TEST(Golden, EwfAllocationIsDeterministic) {
  Ctx ewf(make_ewf(), 17, false, 1);
  const AllocationResult a = allocate(*ewf.prob, golden_opts(3));
  const AllocationResult b = allocate(*ewf.prob, golden_opts(3));
  EXPECT_EQ(a.cost.muxes, b.cost.muxes);
  EXPECT_EQ(a.cost.connections, b.cost.connections);
  EXPECT_DOUBLE_EQ(a.cost.total, b.cost.total);
  EXPECT_EQ(a.merging.muxes_after, b.merging.muxes_after);
}

TEST(Golden, EwfAllocationQualityBand) {
  // Not an exact pin (the band survives parameter tuning): a modest-budget
  // run on ewf@17/min+1 must land in the quality band the full harness
  // reaches, well below the constructive start's 36 muxes.
  Ctx ewf(make_ewf(), 17, false, 1);
  const AllocationResult res = allocate(*ewf.prob, golden_opts(1));
  EXPECT_LE(res.cost.muxes, 24);
  EXPECT_GE(res.cost.muxes, 14);
}

TEST(Golden, TraditionalDeterministicToo) {
  Ctx dct(make_dct(), 9, false, 1);
  TraditionalOptions opts;
  opts.improve.max_trials = 6;
  opts.improve.moves_per_trial = 2000;
  opts.improve.seed = 5;
  const AllocationResult a = allocate_traditional(*dct.prob, opts);
  const AllocationResult b = allocate_traditional(*dct.prob, opts);
  EXPECT_EQ(a.cost.muxes, b.cost.muxes);
  EXPECT_DOUBLE_EQ(a.cost.total, b.cost.total);
}

TEST(Golden, ScheduleEnvelopesArePinned) {
  Cdfg g = make_ewf();
  HwSpec np, p;
  p.pipelined_mul = true;
  struct Row {
    int len;
    bool pipe;
    int alu, mul, minregs;
  };
  // Frozen envelope of the reconstruction (also quoted in EXPERIMENTS.md).
  const Row rows[] = {
      {17, false, 3, 2, 13}, {17, true, 3, 1, 13}, {19, false, 2, 2, 13},
      {19, true, 2, 1, 13},  {21, false, 2, 1, 12},
  };
  for (const Row& r : rows) {
    const auto sr = schedule_min_fu(g, r.pipe ? p : np, r.len);
    EXPECT_EQ(sr.fus.alu, r.alu) << r.len << (r.pipe ? "P" : "");
    EXPECT_EQ(sr.fus.mul, r.mul) << r.len << (r.pipe ? "P" : "");
    EXPECT_EQ(Lifetimes(sr.schedule).min_registers(), r.minregs)
        << r.len << (r.pipe ? "P" : "");
  }
}

// ---------------------------------------------------------------------------
// Golden VCD waveforms under the event-driven engine. The full dump —
// header, signal declarations, every value change of every register, FU
// output and port over five iterations — is pinned as an FNV-1a digest for
// EWF and DCT. Any engine change that perturbs a single waveform bit lands
// here; the differential suite (test_sim_differential) separately pins
// event == full-eval, so these constants freeze BOTH engines at once.
TEST(Golden, EventEngineVcdDigestsArePinned) {
  struct Row {
    const char* name;
    Cdfg (*make)();
    int extra_len;
    uint64_t digest;
  };
  // Frozen on 2026-08-09; see file header before "fixing" these.
  const Row rows[] = {
      {"ewf", make_ewf, 2, 0x4bf52d857dd716d5ull},
      {"dct", make_dct, 2, 0x5afdf582eb5523c2ull},
  };
  for (const Row& row : rows) {
    const int len =
        min_schedule_length(row.make(), HwSpec{}) + row.extra_len;
    Ctx ctx(row.make(), len, false, 1);
    Binding b = initial_allocation(*ctx.prob, InitialOptions{.seed = 1});
    Netlist nl(b);
    Rng rng(2024);
    std::vector<std::vector<int64_t>> inputs(
        6, std::vector<int64_t>(ctx.g->input_nodes().size(), 0));
    for (auto& vec : inputs)
      for (auto& v : vec) v = static_cast<int64_t>(rng.next() % 2001) - 1000;
    const std::vector<int64_t> states(ctx.g->state_nodes().size(), 2);
    const std::string vcd =
        dump_vcd(nl, inputs, states, 5, row.name, SimEngine::kEventDriven);
    Fnv1a h;
    for (char c : vcd) h.byte(static_cast<uint8_t>(c));
    EXPECT_EQ(h.value(), row.digest) << row.name << " actual 0x" << std::hex
                                     << h.value();
  }
}

}  // namespace
}  // namespace salsa
