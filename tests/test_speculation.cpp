// Speculative proposal pipeline (core/speculate.h): the determinism
// contract — speculative and sequential engines produce identical move
// trajectories (per-commit delta + binding-digest streams), final bindings
// and search statistics for every thread count and speculation width — plus
// the footprint-soundness property that two overlapping register-level
// moves can never both commit from one snapshot, and the ImproveStats
// guarantee that discarded speculations never leak into by_kind.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/digest.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "bench_suite/random_cdfg.h"
#include "core/annealer.h"
#include "core/footprint.h"
#include "core/ils.h"
#include "core/improver.h"
#include "core/initial.h"
#include "core/search_engine.h"
#include "core/speculate.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

// Records the search trajectory through the SearchObserver seam: one
// (delta, binding digest) pair per committed move on the observed engine.
// Speculative scorings happen on worker engines and must not appear here.
struct TrajectoryRecorder final : public SearchObserver {
  std::vector<std::pair<double, uint64_t>> commits;
  void on_commit(const SearchEngine& eng, double delta) override {
    commits.emplace_back(delta, digest_binding(eng.binding()));
  }
};

ImproveParams speculative_params(uint64_t seed, int k, int threads) {
  ImproveParams p;
  p.max_trials = 3;
  p.moves_per_trial = 600;
  p.seed = seed;
  p.speculation.k = k;
  p.speculation.parallelism.threads = threads;
  // These tests assert on SpecStats, which require the configured width to
  // actually run — opt out of the one-core auto-degrade.
  p.speculation.pin_width = true;
  return p;
}

struct TrajRun {
  std::vector<std::pair<double, uint64_t>> commits;
  ImproveResult result;
};

TrajRun run_improve(const Binding& start, ImproveParams p) {
  TrajectoryRecorder rec;
  p.observer = &rec;
  ImproveResult res = improve(start, p);
  return TrajRun{std::move(rec.commits), std::move(res)};
}

void expect_same_stats_modulo_spec(ImproveStats a, ImproveStats b) {
  // SpecStats depend on the speculation width by design (zero when off);
  // everything else must be byte-identical.
  a.spec = SpecStats{};
  b.spec = SpecStats{};
  EXPECT_TRUE(a == b);
}

void expect_identical_trajectories(const AllocProblem& prob, uint64_t seed,
                                   int moves_per_trial = 600) {
  const Binding start = initial_allocation(prob);
  ImproveParams ref_p = speculative_params(seed, 1, 1);
  ref_p.moves_per_trial = moves_per_trial;
  const TrajRun ref = run_improve(start, ref_p);
  ASSERT_FALSE(ref.commits.empty());
  for (int threads : {1, 2, 8}) {
    for (int k : {1, 4, 16}) {
      ImproveParams p = speculative_params(seed, k, threads);
      p.moves_per_trial = moves_per_trial;
      const TrajRun run = run_improve(start, p);
      // Digest streams: every commit applied the same move to the same
      // binding, in the same order.
      ASSERT_EQ(run.commits.size(), ref.commits.size())
          << "threads=" << threads << " k=" << k;
      for (size_t i = 0; i < ref.commits.size(); ++i) {
        EXPECT_EQ(run.commits[i].first, ref.commits[i].first)
            << "delta diverged at commit " << i << " (threads=" << threads
            << ", k=" << k << ")";
        EXPECT_EQ(run.commits[i].second, ref.commits[i].second)
            << "digest diverged at commit " << i << " (threads=" << threads
            << ", k=" << k << ")";
      }
      EXPECT_EQ(run.result.best, ref.result.best);
      EXPECT_EQ(run.result.cost.total, ref.result.cost.total);
      expect_same_stats_modulo_spec(run.result.stats, ref.result.stats);
    }
  }
}

// ------------------------------------------------- trajectory identity ----

TEST(Speculation, EwfTrajectoryIdenticalAcrossThreadsAndWidths) {
  Ctx ctx(make_ewf(), 17, 1);
  expect_identical_trajectories(*ctx.prob, 3);
}

TEST(Speculation, DctTrajectoryIdenticalAcrossThreadsAndWidths) {
  Ctx ctx(make_dct(), 9, 1);
  expect_identical_trajectories(*ctx.prob, 4);
}

TEST(Speculation, RandomCdfgTrajectoriesIdentical20Seeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomCdfgParams rp;
    rp.num_ops = 16;
    rp.seed = seed;
    // Some graphs need a longer schedule than others; take the first
    // feasible length so every seed contributes a problem.
    std::unique_ptr<Ctx> ctx;
    for (int len : {8, 10, 12, 16}) {
      try {
        ctx = std::make_unique<Ctx>(make_random_cdfg(rp), len, 1);
        break;
      } catch (const Error&) {
      }
    }
    ASSERT_NE(ctx, nullptr) << "seed " << seed << " unschedulable";
    expect_identical_trajectories(*ctx->prob, seed, /*moves_per_trial=*/250);
  }
}

TEST(Speculation, SpecStatsDeterministicAcrossThreadCounts) {
  // The hit/discard counters are a function of (seed, k) alone.
  Ctx ctx(make_ewf(), 17, 1);
  const Binding start = initial_allocation(*ctx.prob);
  const TrajRun ref = run_improve(start, speculative_params(5, 4, 1));
  EXPECT_GT(ref.result.stats.spec.batches, 0);
  EXPECT_EQ(ref.result.stats.spec.speculated,
            ref.result.stats.spec.batches * 4);
  for (int threads : {2, 8}) {
    const TrajRun run = run_improve(start, speculative_params(5, 4, threads));
    EXPECT_TRUE(run.result.stats.spec == ref.result.stats.spec);
  }
}

// -------------------------------------------------- annealer and ILS ----

TEST(Speculation, AnnealerTrajectoryIdentical) {
  Ctx ctx(make_ewf(), 17, 1);
  const Binding start = initial_allocation(*ctx.prob);
  AnnealParams ap;
  ap.num_temps = 4;
  ap.moves_per_temp = 500;
  ap.seed = 2;
  TrajectoryRecorder ref_rec;
  ap.observer = &ref_rec;
  ap.speculation = SpeculationConfig{1, Parallelism{1}};
  const ImproveResult ref = anneal(start, ap);
  for (int k : {4, 16}) {
    TrajectoryRecorder rec;
    AnnealParams sp = ap;
    sp.observer = &rec;
    sp.speculation = SpeculationConfig{k, Parallelism{2}};
    sp.speculation.pin_width = true;  // exercise the pipeline on any host
    const ImproveResult res = anneal(start, sp);
    EXPECT_EQ(rec.commits, ref_rec.commits) << "k=" << k;
    EXPECT_EQ(res.best, ref.best);
    expect_same_stats_modulo_spec(res.stats, ref.stats);
  }
}

TEST(Speculation, IlsTrajectoryIdentical) {
  Ctx ctx(make_ewf(), 17, 1);
  const Binding start = initial_allocation(*ctx.prob);
  IlsParams ip;
  ip.iterations = 3;
  ip.descent_moves = 500;
  ip.seed = 2;
  TrajectoryRecorder ref_rec;
  ip.observer = &ref_rec;
  ip.speculation = SpeculationConfig{1, Parallelism{1}};
  const ImproveResult ref = iterated_local_search(start, ip);
  for (int k : {4, 16}) {
    TrajectoryRecorder rec;
    IlsParams sp = ip;
    sp.observer = &rec;
    sp.speculation = SpeculationConfig{k, Parallelism{2}};
    sp.speculation.pin_width = true;  // exercise the pipeline on any host
    const ImproveResult res = iterated_local_search(start, sp);
    EXPECT_EQ(rec.commits, ref_rec.commits) << "k=" << k;
    EXPECT_EQ(res.best, ref.best);
    expect_same_stats_modulo_spec(res.stats, ref.stats);
  }
}

// ------------------------------------------------- footprint soundness ----

TEST(Speculation, OverlappingRegisterMovesAlwaysConflict) {
  // Any committed register-level move writes the storage cell trees
  // (kStoCells), and every register-level proposer reads them — so two
  // R-moves scored from one snapshot always conflict, whatever cells they
  // touch. This is the coarse invariant behind "a crafted pair of
  // overlapping R-moves can never both commit from one snapshot".
  Ctx ctx(make_ewf(), 17, 2);
  const Binding start = initial_allocation(*ctx.prob);
  SearchEngine eng(start);
  const MoveKind rkinds[] = {MoveKind::kSegExchange, MoveKind::kSegMove,
                             MoveKind::kValExchange, MoveKind::kValMove,
                             MoveKind::kValSplit,    MoveKind::kValMerge,
                             MoveKind::kReadRetarget};
  // Capture one committed-move footprint per feasible R-kind.
  std::vector<MoveFootprint> committed;
  for (MoveKind kind : rkinds) {
    for (uint64_t s = 0; s < 64 && committed.size() < 16; ++s) {
      Rng r(derive_seed(7, s));
      MoveFootprint fp;
      if (eng.propose(kind, r, &fp)) {
        eng.rollback();
        EXPECT_NE(fp.write_mask & MoveFootprint::kStoCells, 0u)
            << move_name(kind);
        committed.push_back(std::move(fp));
        break;
      }
    }
  }
  ASSERT_GE(committed.size(), 3u);
  for (MoveKind spec_kind : rkinds) {
    MoveFootprint spec;
    spec.read_mask = MoveFootprint::read_mask_of(spec_kind);
    spec.finalize();
    for (const MoveFootprint& c : committed)
      EXPECT_TRUE(footprints_conflict(spec, c))
          << "speculated " << move_name(spec_kind) << " survived a commit";
  }
}

TEST(Speculation, FirstCommitDiscardsWholeRegisterBatch) {
  // Pipeline-level version of the same property: with only register moves
  // enabled, the first accepted candidate of a batch must invalidate every
  // remaining speculation in it, and the remainder re-scores live.
  Ctx ctx(make_ewf(), 17, 2);
  const Binding start = initial_allocation(*ctx.prob);
  SearchEngine eng(start);
  MoveConfig rconf{};
  rconf.weight[static_cast<size_t>(MoveKind::kSegExchange)] = 1.0;
  rconf.weight[static_cast<size_t>(MoveKind::kSegMove)] = 1.0;
  const int k = 4;
  SpeculationConfig sc{k, Parallelism{2}};
  sc.pin_width = true;  // exercise the pipeline on any host
  ProposalPipeline pipe(eng, rconf, sc, /*seed=*/11);
  int served_in_batch = 0;
  bool committed = false;
  for (int i = 0; i < 8 * k && !committed; ++i) {
    if (i % k == 0) served_in_batch = 0;
    const long discarded_before = pipe.spec_stats().discarded;
    const auto c = pipe.next();
    ++served_in_batch;
    if (!c.feasible) continue;
    pipe.decide(true);
    committed = true;
    // Every remaining speculation of this batch reads kStoCells, the
    // committed move wrote it: all must be discarded at once.
    EXPECT_EQ(pipe.spec_stats().discarded - discarded_before,
              k - served_in_batch);
    // ... and the rest of the batch re-scores live on the main engine.
    const long rescored_before = pipe.spec_stats().rescored;
    for (int rest = served_in_batch; rest < k; ++rest) {
      const auto rc = pipe.next();
      if (rc.feasible) pipe.decide(false);
    }
    EXPECT_EQ(pipe.spec_stats().rescored - rescored_before,
              k - served_in_batch);
  }
  EXPECT_TRUE(committed) << "no feasible register move in 8 batches";
}

// ------------------------------------------------- by_kind exclusion ----

TEST(Speculation, ByKindCountsExcludeDiscardedSpeculations) {
  // Discarded speculations were scored but never served — they are not part
  // of the trajectory and must not appear in ImproveStats::by_kind. With a
  // healthy discard count, by_kind must still be byte-identical to the
  // sequential run, and its totals must reconcile with the scalar counters.
  Ctx ctx(make_ewf(), 17, 1);
  const Binding start = initial_allocation(*ctx.prob);
  const TrajRun seq = run_improve(start, speculative_params(3, 1, 1));
  const TrajRun spec = run_improve(start, speculative_params(3, 16, 2));
  EXPECT_GT(spec.result.stats.spec.discarded, 0)
      << "test needs discards to be meaningful";
  for (int kind = 0; kind < kNumMoveKinds; ++kind) {
    EXPECT_TRUE(spec.result.stats.by_kind[static_cast<size_t>(kind)] ==
                seq.result.stats.by_kind[static_cast<size_t>(kind)])
        << "by_kind[" << kind << "] leaked discarded speculations";
  }
  long attempted = 0, accepted = 0;
  for (const MoveKindStats& ks : spec.result.stats.by_kind) {
    attempted += ks.attempted;
    accepted += ks.accepted;
  }
  EXPECT_EQ(attempted, spec.result.stats.attempted);
  EXPECT_EQ(accepted, spec.result.stats.accepted);
}

// ------------------------------------------------------------- knobs ----

TEST(Speculation, ConfigResolution) {
  EXPECT_EQ((SpeculationConfig{5, Parallelism{}}).resolve_k(), 5);
  EXPECT_GE((SpeculationConfig{}).resolve_k(), 1);
  EXPECT_GE(default_speculation_k(), 1);
}

TEST(Speculation, PipelineStatsAccounting) {
  Ctx ctx(make_ewf(), 17, 1);
  const Binding start = initial_allocation(*ctx.prob);
  const TrajRun run = run_improve(start, speculative_params(9, 8, 2));
  const SpecStats& s = run.result.stats.spec;
  EXPECT_GT(s.batches, 0);
  EXPECT_EQ(s.speculated, s.batches * 8);
  EXPECT_GT(s.served, 0);
  EXPECT_EQ(s.rescored, s.discarded);  // every discard is re-scored (or
                                       // dropped unserved at run end)
  EXPECT_LE(s.served + s.rescored, s.speculated);
}

}  // namespace
}  // namespace salsa
