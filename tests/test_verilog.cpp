#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "datapath/verilog.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

std::string emit(Cdfg graph, int len) {
  static std::vector<std::unique_ptr<Cdfg>> graphs;
  static std::vector<std::unique_ptr<Schedule>> scheds;
  static std::vector<std::unique_ptr<AllocProblem>> probs;
  graphs.push_back(std::make_unique<Cdfg>(std::move(graph)));
  Cdfg& g = *graphs.back();
  scheds.push_back(std::make_unique<Schedule>(
      schedule_min_fu(g, HwSpec{}, len).schedule));
  Schedule& s = *scheds.back();
  probs.push_back(std::make_unique<AllocProblem>(
      s, FuPool::standard(peak_fu_demand(s)),
      Lifetimes(s).min_registers() + 1));
  Binding b = initial_allocation(*probs.back());
  Netlist nl(b);
  return to_verilog(nl, g.name(), 16);
}

TEST(Verilog, ModuleSkeleton) {
  const std::string v = emit(make_ewf(), 17);
  EXPECT_NE(v.find("module ewf"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("in_inp"), std::string::npos);
  EXPECT_NE(v.find("out_outp"), std::string::npos);
}

TEST(Verilog, ControllerCountsModuloLength) {
  const std::string v = emit(make_ewf(), 17);
  EXPECT_NE(v.find("(step == 16)"), std::string::npos);
}

TEST(Verilog, DeclaresAllFusAndRegisters) {
  const std::string v = emit(make_ewf(), 17);
  EXPECT_NE(v.find("fu0_out"), std::string::npos);
  EXPECT_NE(v.find("reg [W-1:0] r0;"), std::string::npos);
  // Multiplier pipeline stage present.
  EXPECT_NE(v.find("_stage"), std::string::npos);
}

TEST(Verilog, AluSelectsIncludePassThroughDefault)
{
  const std::string v = emit(make_diffeq(), 10);
  EXPECT_NE(v.find("idle: pass-through"), std::string::npos);
}

TEST(Verilog, CaseBlocksAreBalanced) {
  const std::string v = emit(make_ewf(), 19);
  size_t cases = 0, endcases = 0, pos = 0;
  while ((pos = v.find("case (step)", pos)) != std::string::npos) {
    ++cases;
    pos += 4;
  }
  pos = 0;
  while ((pos = v.find("endcase", pos)) != std::string::npos) {
    ++endcases;
    pos += 4;
  }
  EXPECT_GT(cases, 0u);
  EXPECT_EQ(cases, endcases);
}

TEST(Verilog, PassThroughAllocationsEmit) {
  // A binding with a pass-through emits: the via ALU selects 'pass' at the
  // transfer step via its default/idle arm, and the routed in0 appears in
  // the mux case.
  Cdfg g("pt");
  const ValueId a = g.add_input("a");
  const ValueId b2 = g.add_input("b");
  const ValueId c = g.add_input("c");
  const ValueId d = g.add_input("d");
  const ValueId pp = g.add_op(OpKind::kAdd, a, b2, "p");
  const ValueId t = g.add_op(OpKind::kAdd, pp, c, "t");
  const ValueId q = g.add_op(OpKind::kAdd, d, c, "q");
  const ValueId s2 = g.add_op(OpKind::kAdd, d, a, "s");
  g.add_output(t, "ot");
  g.add_output(q, "oq");
  g.add_output(s2, "os");
  g.validate();
  Schedule sch(g, HwSpec{}, 5);
  sch.set_start(g.producer(pp), 0);
  sch.set_start(g.producer(t), 1);
  sch.set_start(g.producer(q), 1);
  sch.set_start(g.producer(s2), 3);
  sch.set_start(g.output_nodes()[0], 2);
  sch.set_start(g.output_nodes()[1], 2);
  sch.set_start(g.output_nodes()[2], 4);
  sch.validate();
  AllocProblem prob(sch, FuPool::standard(FuBudget{2, 0}), 9);
  Binding bind(prob);
  bind.op(g.producer(pp)).fu = 1;
  bind.op(g.producer(t)).fu = 0;
  bind.op(g.producer(q)).fu = 1;
  bind.op(g.producer(s2)).fu = 0;
  const Lifetimes& lt = prob.lifetimes();
  auto contiguous = [&](ValueId v, RegId r) {
    StorageBinding& sb = bind.sto(lt.storage_of(v));
    for (size_t seg = 0; seg < sb.cells.size(); ++seg)
      sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
  };
  contiguous(a, 0);
  contiguous(b2, 1);
  contiguous(c, 2);
  contiguous(pp, 3);
  contiguous(t, 5);
  contiguous(q, 6);
  contiguous(s2, 7);
  StorageBinding& w = bind.sto(lt.storage_of(d));
  for (int seg = 0; seg < 3; ++seg)
    w.cells[static_cast<size_t>(seg)].assign(
        1, Cell{4, seg == 0 ? -1 : 0, kInvalidId});
  w.cells[3].assign(1, Cell{3, 0, /*via=*/1});
  Netlist nl(bind);
  const std::string v = to_verilog(nl, "pt");
  // The pass route appears as an in0 case arm at the transfer step (2).
  EXPECT_NE(v.find("16'd2: fu1_in0 = r4;"), std::string::npos);
  // And r3 loads from the FU output at that step.
  EXPECT_NE(v.find("16'd2: r3 <= fu1_out;"), std::string::npos);
}

TEST(Verilog, SanitizesIdentifiers) {
  Cdfg g("weird name!");
  const ValueId a = g.add_input("in-1");
  const ValueId c = g.add_const(2);
  g.add_output(g.add_op(OpKind::kAdd, a, c, "x"), "out 0");
  g.validate();
  Schedule s = schedule_min_fu(g, HwSpec{}, 3).schedule;
  AllocProblem prob(s, FuPool::standard(peak_fu_demand(s)),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  const std::string v = to_verilog(nl, g.name());
  EXPECT_NE(v.find("module weird_name_"), std::string::npos);
  EXPECT_NE(v.find("in_in_1"), std::string::npos);
  EXPECT_EQ(v.find("in-1"), std::string::npos);
}

}  // namespace
}  // namespace salsa
