#include <gtest/gtest.h>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "cdfg/eval.h"
#include "core/initial.h"
#include "io/report.h"
#include "io/text_format.h"
#include "util/rng.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

const char* kBiquad = R"(
# comment line
cdfg biquad
input x
state s1
const 3 a1
mul p1 s1 a1
add w x p1     # trailing comment
nop s1n w
next s1 s1n
output yout w
)";

TEST(TextFormat, ParsesBasicDesign) {
  ParsedDesign d = parse_design_string(kBiquad);
  const Cdfg& g = *d.cdfg;
  EXPECT_EQ(g.name(), "biquad");
  EXPECT_EQ(g.count(OpKind::kMul), 1);
  EXPECT_EQ(g.count(OpKind::kAdd), 1);
  EXPECT_EQ(g.count(OpKind::kNop), 1);
  EXPECT_EQ(g.state_nodes().size(), 1u);
  EXPECT_FALSE(d.schedule.has_value());
}

TEST(TextFormat, ParsesScheduleSection) {
  std::string text = std::string(kBiquad) +
                     "schedule 6\nat p1 0\nat w 2\nat s1n 3\nat yout 3\n";
  ParsedDesign d = parse_design_string(text);
  ASSERT_TRUE(d.schedule.has_value());
  EXPECT_EQ(d.schedule->length(), 6);
  const Cdfg& g = *d.cdfg;
  for (NodeId n : g.operations()) {
    if (g.node(n).name == "w") {
      EXPECT_EQ(d.schedule->start(n), 2);
    }
  }
}

TEST(TextFormat, PipelinedFlag) {
  std::string text = std::string(kBiquad) +
                     "schedule 6 pipelined\nat p1 0\nat w 2\nat s1n 3\nat "
                     "yout 3\n";
  ParsedDesign d = parse_design_string(text);
  EXPECT_TRUE(d.hw.pipelined_mul);
}

struct BadCase {
  const char* name;
  const char* text;
};

class TextFormatRejects : public ::testing::TestWithParam<BadCase> {};

TEST_P(TextFormatRejects, WithLineNumberedError) {
  try {
    parse_design_string(GetParam().text);
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TextFormatRejects,
    ::testing::Values(
        BadCase{"unknown_directive", "cdfg x\nfrobnicate y\n"},
        BadCase{"unknown_value", "cdfg x\ninput a\nadd s a b\n"},
        BadCase{"redefined_value", "cdfg x\ninput a\ninput a\n"},
        BadCase{"bad_arity", "cdfg x\ninput a\nadd s a\n"},
        BadCase{"bad_const", "cdfg x\nconst zz\n"},
        BadCase{"at_before_schedule", "cdfg x\ninput a\nat a 3\n"},
        BadCase{"bad_schedule_flag",
                "cdfg x\ninput a\nnop n a\noutput o n\nschedule 3 fast\n"},
        BadCase{"unknown_at_node",
                "cdfg x\ninput a\nnop n a\noutput o n\nschedule 3\nat q 1\n"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TextFormat, RoundTripsBenchmarks) {
  for (Cdfg original : {make_ewf(), make_dct(), make_fir8()}) {
    const std::string text = write_design(original);
    ParsedDesign d = parse_design_string(text);
    const Cdfg& g = *d.cdfg;
    EXPECT_EQ(g.name(), original.name());
    EXPECT_EQ(g.num_nodes(), original.num_nodes());
    for (OpKind k : {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kNop})
      EXPECT_EQ(g.count(k), original.count(k));
    // Behavioural equivalence on shared stimuli.
    Evaluator e1(original), e2(g);
    Rng rng(1);
    for (int it = 0; it < 4; ++it) {
      std::vector<int64_t> in(original.input_nodes().size());
      for (auto& v : in) v = static_cast<int64_t>(rng.next() % 100);
      // Input order may differ; match by name.
      std::vector<int64_t> in2(in.size());
      for (size_t i = 0; i < g.input_nodes().size(); ++i) {
        const std::string& name = g.node(g.input_nodes()[i]).name;
        for (size_t j = 0; j < original.input_nodes().size(); ++j)
          if (original.node(original.input_nodes()[j]).name == name)
            in2[i] = in[j];
      }
      EXPECT_EQ(e1.step(in), e2.step(in2));
    }
  }
}

TEST(TextFormat, RoundTripsSchedule) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = schedule_min_fu(g, hw, 18).schedule;
  const std::string text = write_design(g, &s);
  ParsedDesign d = parse_design_string(text);
  ASSERT_TRUE(d.schedule.has_value());
  EXPECT_EQ(d.schedule->length(), 18);
  d.schedule->validate();
  // Node-by-node start equality (names are preserved).
  const Cdfg& g2 = *d.cdfg;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!is_operation(g.node(n).kind)) continue;
    for (NodeId m = 0; m < g2.num_nodes(); ++m) {
      if (g2.node(m).name == g.node(n).name) {
        EXPECT_EQ(d.schedule->start(m), s.start(n)) << g.node(n).name;
      }
    }
  }
}

TEST(Report, ContainsFuTableAndChains) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = schedule_min_fu(g, hw, 17).schedule;
  AllocProblem prob(s, FuPool::standard(peak_fu_demand(s)),
                    Lifetimes(s).min_registers() + 1);
  Binding b = initial_allocation(prob);
  const std::string rep = allocation_report(b);
  EXPECT_NE(rep.find("allocation report: ewf"), std::string::npos);
  EXPECT_NE(rep.find("equivalent 2-1 muxes"), std::string::npos);
  EXPECT_NE(rep.find("storage chains:"), std::string::npos);
  EXPECT_NE(rep.find("sv2"), std::string::npos);
}

TEST(Report, ChainShowsTransfersAndCopies) {
  Cdfg g("chain");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(1);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  g.add_output(v, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 4);
  s.set_start(g.producer(v), 0);
  s.set_start(g.output_nodes()[0], 3);
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}), 3);
  Binding b = initial_allocation(prob);
  StorageBinding& sb = b.sto(prob.lifetimes().storage_of(v));
  sb.cells[1][0].reg = 2;  // transfer
  b.normalize();
  sb.cells[2][0].reg = 2;
  sb.cells[2].push_back(Cell{1, 0, kInvalidId});  // copy (parent in reg 2)
  b.normalize();
  const std::string chain = storage_chain(b, prob.lifetimes().storage_of(v));
  EXPECT_NE(chain.find("->"), std::string::npos);
  EXPECT_NE(chain.find("+"), std::string::npos);
}

}  // namespace
}  // namespace salsa
