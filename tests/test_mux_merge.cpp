#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/allocator.h"
#include "core/mux_merge.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

std::unique_ptr<AllocProblem> make_problem(
    std::unique_ptr<Cdfg>& g, std::unique_ptr<Schedule>& sched, Cdfg graph,
    int len, int extra) {
  g = std::make_unique<Cdfg>(std::move(graph));
  sched = std::make_unique<Schedule>(
      schedule_min_fu(*g, HwSpec{}, len).schedule);
  return std::make_unique<AllocProblem>(
      *sched, FuPool::standard(peak_fu_demand(*sched)),
      Lifetimes(*sched).min_registers() + extra);
}

TEST(MuxMerge, NeverIncreasesCount) {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  auto prob = make_problem(g, sched, make_ewf(), 17, 1);
  Binding b = initial_allocation(*prob);
  const MuxMergeResult r = merge_muxes(b);
  EXPECT_LE(r.muxes_after, r.muxes_before);
  EXPECT_EQ(r.muxes_before, evaluate_cost(b).muxes);
}

TEST(MuxMerge, GroupWidthsSumToAfterCount) {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  auto prob = make_problem(g, sched, make_dct(), 10, 2);
  Binding b = initial_allocation(*prob);
  const MuxMergeResult r = merge_muxes(b);
  int sum = 0;
  for (const MergedMux& m : r.muxes) {
    sum += m.width();
    EXPECT_GE(m.sources.size(), 2u);
    EXPECT_GE(m.sinks.size(), 1u);
  }
  EXPECT_EQ(sum, r.muxes_after);
}

TEST(MuxMerge, EverySinkAppearsAtMostOnce) {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  auto prob = make_problem(g, sched, make_ewf(), 19, 1);
  Binding b = initial_allocation(*prob);
  const MuxMergeResult r = merge_muxes(b);
  std::vector<uint64_t> sinks;
  for (const MergedMux& m : r.muxes)
    for (const Pin& p : m.sinks) sinks.push_back(key_of(p));
  std::sort(sinks.begin(), sinks.end());
  EXPECT_EQ(std::adjacent_find(sinks.begin(), sinks.end()), sinks.end());
}

TEST(MuxMerge, MergesDisjointActivityByConstruction) {
  // Hand-build a datapath where two 2-source muxes are active at different
  // steps and must merge: two values read by ops at different steps, each
  // from two alternating registers.
  Cdfg g("merge");
  const ValueId in1 = g.add_input("i1");
  const ValueId in2 = g.add_input("i2");
  const ValueId c = g.add_const(1);
  const ValueId v1 = g.add_op(OpKind::kAdd, in1, c, "v1");
  const ValueId v2 = g.add_op(OpKind::kAdd, in2, c, "v2");
  const ValueId w1 = g.add_op(OpKind::kAdd, v1, v2, "w1");
  const ValueId w2 = g.add_op(OpKind::kAdd, v2, v1, "w2");
  g.add_output(w1, "o1");
  g.add_output(w2, "o2");
  g.validate();
  Schedule s(g, HwSpec{}, 6);
  s.set_start(g.producer(v1), 0);
  s.set_start(g.producer(v2), 0);
  s.set_start(g.producer(w1), 2);
  s.set_start(g.producer(w2), 4);
  s.set_start(g.output_nodes()[0], 3);
  s.set_start(g.output_nodes()[1], 5);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{2, 0}),
                    Lifetimes(s).min_registers() + 1);
  Binding b = initial_allocation(prob);
  const MuxMergeResult r = merge_muxes(b);
  EXPECT_LE(r.muxes_after, r.muxes_before);
}

TEST(MuxMerge, AfterImprovementStillConsistent) {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  auto prob = make_problem(g, sched, make_ewf(), 17, 1);
  AllocatorOptions opts;
  opts.improve.max_trials = 4;
  opts.improve.moves_per_trial = 400;
  const AllocationResult res = allocate(*prob, opts);
  int sum = 0;
  for (const MergedMux& m : res.merging.muxes) sum += m.width();
  EXPECT_EQ(sum, res.merging.muxes_after);
  EXPECT_LE(res.merging.muxes_after, res.merging.muxes_before);
}

}  // namespace
}  // namespace salsa
