// The RTL export artifacts: VCD waveforms and the self-checking Verilog
// testbench. Structure-level checks (we do not run an external Verilog
// simulator here; the TB encodes the same contract the internal simulator
// proves cycle-accurately).
#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "cdfg/eval.h"
#include "core/initial.h"
#include "datapath/testbench.h"
#include "datapath/vcd.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

std::vector<std::vector<int64_t>> stimuli(const Cdfg& g, int iterations,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> in(
      static_cast<size_t>(iterations) + 1,
      std::vector<int64_t>(g.input_nodes().size(), 0));
  for (auto& vec : in)
    for (auto& v : vec) v = static_cast<int64_t>(rng.next() % 100);
  return in;
}

TEST(Vcd, HeaderAndVariablesWellFormed) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const auto in = stimuli(*ctx.g, 3, 1);
  const std::string vcd = dump_vcd(nl, in, {}, 3, "diffeq");
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module diffeq $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  for (RegId r = 0; r < ctx.prob->num_regs(); ++r)
    EXPECT_NE(vcd.find(" r" + std::to_string(r) + " $end"),
              std::string::npos);
  // One timestamp marker per simulated step.
  size_t marks = 0, pos = 0;
  while ((pos = vcd.find("\n#", pos)) != std::string::npos) {
    ++marks;
    pos += 2;
  }
  EXPECT_EQ(marks, static_cast<size_t>(3 * ctx.sched->length() + 1));
}

TEST(Vcd, OnlyChangesAreDumpedAfterTimeZero) {
  // A design whose register holds for many steps: the hold steps must not
  // re-dump the value.
  Cdfg g("hold");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(3);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  g.add_output(v, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 10);
  s.set_start(g.producer(v), 0);
  s.set_start(g.output_nodes()[0], 9);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}), 2);
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  const auto in = stimuli(g, 2, 2);
  const std::string vcd = dump_vcd(nl, in, {}, 2, "hold");
  // Count value lines for register id of r1 ('"' is id index 1... use the
  // step-counter variable as baseline: it changes every step).
  size_t value_lines = 0, pos = 0;
  while ((pos = vcd.find("\nb", pos)) != std::string::npos) {
    ++value_lines;
    ++pos;
  }
  // Far fewer than regs*steps lines: holds are compressed.
  EXPECT_LT(value_lines, static_cast<size_t>(2 * 10 * prob.num_regs()));
}

TEST(Testbench, InstantiatesDutAndChecksOutputs) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const auto in = stimuli(*ctx.g, 4, 3);
  const std::string tb = to_testbench(nl, in, {}, 4, "diffeq");
  EXPECT_NE(tb.find("module diffeq_tb;"), std::string::npos);
  EXPECT_NE(tb.find("diffeq #(.W(W)) dut(.clk(clk), .rst(rst)"),
            std::string::npos);
  EXPECT_NE(tb.find("TB PASS"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // Every output is checked.
  for (NodeId n : ctx.g->output_nodes())
    EXPECT_NE(tb.find("out_" + ctx.g->node(n).name), std::string::npos);
}

TEST(Testbench, ExpectedValuesComeFromEvaluator) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const auto in = stimuli(*ctx.g, 3, 4);
  Evaluator ref(*ctx.g);
  const auto want = ref.step(in[0]);
  const std::string tb = to_testbench(nl, in, {}, 3, "diffeq");
  // The iteration-0 expected value of the first output appears literally.
  EXPECT_NE(tb.find("expect_mem[0][0] = 64'd" +
                    std::to_string(static_cast<uint64_t>(want[0]))),
            std::string::npos);
}

TEST(Testbench, PreloadsStateRegisters) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const auto in = stimuli(*ctx.g, 3, 5);
  std::vector<int64_t> states(ctx.g->state_nodes().size(), 9);
  const std::string tb = to_testbench(nl, in, states, 3, "ewf");
  EXPECT_NE(tb.find("dut.r"), std::string::npos);
  EXPECT_NE(tb.find(" = 64'd9;"), std::string::npos);
}

TEST(Testbench, RequiresBoundaryInputVector) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const auto in = stimuli(*ctx.g, 2, 6);  // 3 vectors
  EXPECT_THROW(to_testbench(nl, in, {}, 3, "diffeq"), Error);
}

}  // namespace
}  // namespace salsa
