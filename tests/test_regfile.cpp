#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "core/moves.h"
#include "core/verify.h"
#include "regfile/regfile.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

TEST(RegFile, ActivityMatchesConnections) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  const RegActivity act = register_activity(b);
  // Every used register both loads and is read at least once (diffeq has no
  // dead values).
  int active = 0;
  for (RegId r = 0; r < ctx.prob->num_regs(); ++r) {
    bool any_read = false, any_write = false;
    for (int t = 0; t < ctx.sched->length(); ++t) {
      any_read |= act.reads[static_cast<size_t>(r)][static_cast<size_t>(t)];
      any_write |= act.writes[static_cast<size_t>(r)][static_cast<size_t>(t)];
    }
    if (any_read || any_write) {
      ++active;
      EXPECT_TRUE(any_write) << "read-only register R" << r;
    }
  }
  EXPECT_EQ(active, b.regs_used());
}

struct SpecCase {
  const char* name;
  RegFileSpec spec;
};

class RegFileBinding : public ::testing::TestWithParam<SpecCase> {};

TEST_P(RegFileBinding, AssignmentVerifiesOnEwf) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const RegFileSpec& spec = GetParam().spec;
  const RegFileAssignment asg = bind_register_files(b, spec);
  const auto bad = verify_register_files(b, spec, asg);
  EXPECT_TRUE(bad.empty()) << (bad.empty() ? "" : bad[0]);
  EXPECT_GE(asg.num_files, register_file_lower_bound(b, spec));
}

TEST_P(RegFileBinding, AssignmentVerifiesAfterScramble) {
  Ctx ctx(make_dct(), 10, 2);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(5);
  const MoveConfig moves = MoveConfig::salsa_default();
  for (int i = 0; i < 300; ++i) apply_random_move(b, moves.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  const RegFileSpec& spec = GetParam().spec;
  const RegFileAssignment asg = bind_register_files(b, spec);
  EXPECT_TRUE(verify_register_files(b, spec, asg).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Specs, RegFileBinding,
    ::testing::Values(SpecCase{"default", RegFileSpec{}},
                      SpecCase{"single_reg", RegFileSpec{1, 1, 1}},
                      SpecCase{"wide", RegFileSpec{8, 4, 2}},
                      SpecCase{"one_read_port", RegFileSpec{4, 1, 1}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(RegFile, SingleRegisterFilesEqualUsedRegisters) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const RegFileSpec spec{1, 2, 1};
  const RegFileAssignment asg = bind_register_files(b, spec);
  EXPECT_EQ(asg.num_files, b.regs_used());
}

TEST(RegFile, UnusedRegistersGetNoFile) {
  Ctx ctx(make_diffeq(), 10, 3);
  Binding b = initial_allocation(*ctx.prob);
  const RegFileAssignment asg = bind_register_files(b, RegFileSpec{});
  int unassigned = 0;
  for (int f : asg.file_of) unassigned += f < 0;
  EXPECT_EQ(unassigned, ctx.prob->num_regs() - b.regs_used());
}

TEST(RegFile, VerifierCatchesOverfullFile) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const RegFileSpec spec{2, 2, 1};
  RegFileAssignment asg = bind_register_files(b, spec);
  // Cram every used register into file 0.
  for (auto& f : asg.file_of)
    if (f >= 0) f = 0;
  EXPECT_FALSE(verify_register_files(b, spec, asg).empty());
}

TEST(RegFile, LowerBoundRespectsPorts) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  // With one read port per file, the peak concurrent read count forces at
  // least that many files.
  const RegFileSpec spec{16, 1, 16};
  const int lb = register_file_lower_bound(b, spec);
  EXPECT_GE(lb, 2) << "EWF reads several registers per step";
  const RegFileAssignment asg = bind_register_files(b, spec);
  EXPECT_GE(asg.num_files, lb);
  EXPECT_TRUE(verify_register_files(b, spec, asg).empty());
}

}  // namespace
}  // namespace salsa
