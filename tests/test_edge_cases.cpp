// Edge cases across the whole pipeline: degenerate graphs and schedules
// that exercise boundaries the benchmarks never hit.
#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/random_cdfg.h"
#include "cdfg/eval.h"
#include "core/allocator.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

std::unique_ptr<AllocProblem> problem_for(std::unique_ptr<Cdfg>& keep_g,
                                          std::unique_ptr<Schedule>& keep_s,
                                          Cdfg g, HwSpec hw, int extra_len,
                                          int extra_regs) {
  keep_g = std::make_unique<Cdfg>(std::move(g));
  const int len = min_schedule_length(*keep_g, hw) + extra_len;
  keep_s = std::make_unique<Schedule>(
      schedule_min_fu(*keep_g, hw, len).schedule);
  return std::make_unique<AllocProblem>(
      *keep_s, FuPool::standard(peak_fu_demand(*keep_s)),
      Lifetimes(*keep_s).min_registers() + extra_regs);
}

TEST(EdgeCases, SingleOperationDesign) {
  Cdfg g("one");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  g.add_output(g.add_op(OpKind::kAdd, a, b, "s"), "o");
  g.validate();
  HwSpec hw;
  EXPECT_EQ(min_schedule_length(g, hw), 2);  // compute at 0, sample at 1
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 0, 0);
  Binding bind = initial_allocation(*prob);
  check_legal(bind);
  Netlist nl(bind);
  EXPECT_EQ(random_equivalence_check(nl, 3, 1), "");
}

TEST(EdgeCases, PureStateRotationLengthOne) {
  // st := st + 1 each step, schedulable in a single control step.
  Cdfg g("tick");
  const ValueId st = g.add_state("st");
  const ValueId one = g.add_const(1);
  const ValueId nxt = g.add_op(OpKind::kAdd, st, one, "inc");
  g.set_state_next(st, nxt);
  g.validate();
  HwSpec hw;
  EXPECT_EQ(min_schedule_length(g, hw), 1);
  Schedule s(g, hw, 1);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  check_legal(b);
  // The storage occupies its register every step (len == L == 1).
  EXPECT_EQ(prob.lifetimes().storage(0).len, 1);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs(6);  // no input nodes
  const int64_t init[] = {5};
  const SimResult r = simulate(nl, inputs, init, 5);
  (void)r;  // no outputs to check; the state must still advance
  // Behavioural check via the evaluator path instead:
  Evaluator ev(g, init);
  for (int i = 0; i < 5; ++i) ev.step({});
  EXPECT_EQ(ev.states()[0], 10);
}

TEST(EdgeCases, AllConstOperands) {
  // An op whose both operands are constants: free interconnect, still
  // computes and lands in a register.
  Cdfg g("consts");
  const ValueId c1 = g.add_const(6);
  const ValueId c2 = g.add_const(7);
  g.add_output(g.add_op(OpKind::kMul, c1, c2, "p"), "o");
  g.validate();
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 0, 0);
  Binding b = initial_allocation(*prob);
  const CostBreakdown cost = evaluate_cost(b);
  EXPECT_EQ(cost.muxes, 0);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs(3);
  const SimResult r = simulate(nl, inputs, {}, 2);
  EXPECT_EQ(r.outputs[1][0], 42);
}

TEST(EdgeCases, DeadValueStillLandsSomewhere) {
  // A computed value nobody reads: one landing cell, no reads, legal, and
  // the rest of the design is unaffected.
  Cdfg g("dead");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(2);
  (void)g.add_op(OpKind::kAdd, a, c, "unused");
  g.add_output(g.add_op(OpKind::kMul, a, c, "used"), "o");
  g.validate();
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 1, 1);
  Binding b = initial_allocation(*prob);
  check_legal(b);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 3, 2), "");
}

TEST(EdgeCases, ValueReadTwiceBySameOp) {
  // x*x: one value feeding both operand slots of one multiplier.
  Cdfg g("square");
  const ValueId x = g.add_input("x");
  g.add_output(g.add_op(OpKind::kMul, x, x, "sq"), "o");
  g.validate();
  EXPECT_EQ(g.value(x).consumers.size(), 2u);
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 0, 0);
  Binding b = initial_allocation(*prob);
  check_legal(b);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 3, 3), "");
}

TEST(EdgeCases, LongHoldAcrossManyIdleSteps) {
  // A value produced at step 0 and consumed at step 19: 19 hold segments.
  Cdfg g("hold");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(3);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  g.add_output(v, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 20);
  s.set_start(g.producer(v), 0);
  s.set_start(g.output_nodes()[0], 19);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}), 2);
  Binding b = initial_allocation(prob);
  check_legal(b);
  EXPECT_EQ(prob.lifetimes().storage(prob.lifetimes().storage_of(v)).len, 19);
  // Keep the input and the value in distinct registers: pure holds, no mux.
  {
    StorageBinding& sa = b.sto(prob.lifetimes().storage_of(a));
    StorageBinding& sv = b.sto(prob.lifetimes().storage_of(v));
    sa.cells[0][0].reg = 0;
    for (auto& seg : sv.cells) seg[0].reg = 1;
    check_legal(b);
  }
  EXPECT_EQ(evaluate_cost(b).muxes, 0);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 2, 4), "");
}

TEST(EdgeCases, EveryOpOnOneFuSerialSchedule) {
  // A chain scheduled fully serially on a single ALU and multiplier.
  Cdfg g("serial");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(2);
  ValueId v = a;
  for (int i = 0; i < 5; ++i)
    v = g.add_op(i % 2 ? OpKind::kMul : OpKind::kAdd, v, c,
                 "n" + std::to_string(i));
  g.add_output(v, "o");
  g.validate();
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 2, 1);
  EXPECT_EQ(prob->fus().of_class(FuClass::kAlu).size(), 1u);
  EXPECT_EQ(prob->fus().of_class(FuClass::kMul).size(), 1u);
  Binding b = initial_allocation(*prob);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 3, 5), "");
}

TEST(EdgeCases, ManyOutputsShareOneValue) {
  Cdfg g("fanout");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(2);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  for (int i = 0; i < 4; ++i) g.add_output(v, "o" + std::to_string(i));
  g.validate();
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 1, 1);
  Binding b = initial_allocation(*prob);
  check_legal(b);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 3, 6), "");
}

TEST(EdgeCases, AllocatorHandlesLargeRandomGraphs) {
  RandomCdfgParams p;
  p.num_ops = 60;
  p.num_inputs = 4;
  p.num_states = 3;
  p.seed = 99;
  Cdfg g = make_random_cdfg(p);
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 3, 2);
  AllocatorOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 500;
  const AllocationResult res = allocate(*prob, opts);
  EXPECT_TRUE(verify(res.binding).empty());
  Netlist nl(res.binding);
  EXPECT_EQ(random_equivalence_check(nl, 3, 7), "");
}

TEST(EdgeCases, BindingCopyIsIndependent) {
  Cdfg g("copy");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(1);
  g.add_output(g.add_op(OpKind::kAdd, a, c, "v"), "o");
  g.validate();
  HwSpec hw;
  std::unique_ptr<Cdfg> kg;
  std::unique_ptr<Schedule> ks;
  auto prob = problem_for(kg, ks, std::move(g), hw, 1, 1);
  Binding b1 = initial_allocation(*prob);
  Binding b2 = b1;
  b2.op(kg->operations()[0]).swap = !b1.op(kg->operations()[0]).swap;
  EXPECT_NE(b1.op(kg->operations()[0]).swap, b2.op(kg->operations()[0]).swap);
}

}  // namespace
}  // namespace salsa
