#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "core/improver.h"
#include "core/initial.h"
#include "layout/linear_placement.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

TEST(Layout, AffinityIsSymmetricAndPortFree) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const auto w = module_affinity(b);
  const int n = static_cast<int>(w.size());
  EXPECT_EQ(n, ctx.prob->fus().size() + ctx.prob->num_regs());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(w[static_cast<size_t>(i)][static_cast<size_t>(i)], 0);
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(w[static_cast<size_t>(i)][static_cast<size_t>(j)],
                w[static_cast<size_t>(j)][static_cast<size_t>(i)]);
  }
}

TEST(Layout, PlacementIsAPermutation) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  const LinearPlacement p = place_linear(b, 3);
  std::vector<bool> used(p.slot_of.size(), false);
  for (int s : p.slot_of) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, static_cast<int>(p.slot_of.size()));
    EXPECT_FALSE(used[static_cast<size_t>(s)]);
    used[static_cast<size_t>(s)] = true;
  }
}

TEST(Layout, ReportedWirelengthMatchesEvaluator) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  const LinearPlacement p = place_linear(b, 5);
  EXPECT_DOUBLE_EQ(p.wirelength, placement_wirelength(b, p));
}

TEST(Layout, DescentBeatsRandomOrder) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const LinearPlacement placed = place_linear(b, 7);
  // Identity placement as a baseline.
  LinearPlacement identity = placed;
  for (size_t i = 0; i < identity.slot_of.size(); ++i)
    identity.slot_of[i] = static_cast<int>(i);
  EXPECT_LE(placed.wirelength, placement_wirelength(b, identity));
}

TEST(Layout, DeterministicPerSeed) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  const LinearPlacement a = place_linear(b, 13);
  const LinearPlacement c = place_linear(b, 13);
  EXPECT_EQ(a.slot_of, c.slot_of);
  EXPECT_DOUBLE_EQ(a.wirelength, c.wirelength);
}

TEST(Layout, FewerConnectionsShorterWiring) {
  // The SALSA allocation of the quickstart loop has fewer connections than
  // an arbitrary initial allocation; its optimised wirelength should not be
  // longer. (A smoke test of the layout/allocation interaction, not a
  // theorem.)
  Ctx ctx(make_ewf(), 17, 1);
  Binding rough = initial_allocation(*ctx.prob);
  ImproveParams params;
  params.max_trials = 6;
  params.moves_per_trial = 2000;
  const ImproveResult improved = improve(rough, params);
  const double w_rough = place_linear(rough, 5).wirelength;
  const double w_improved = place_linear(improved.best, 5).wirelength;
  EXPECT_LE(w_improved, w_rough * 1.1);
}

}  // namespace
}  // namespace salsa
