#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "core/moves.h"
#include "core/verify.h"
#include "interconnect/bus_model.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int extra_len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    const int len = min_schedule_length(*g, hw) + extra_len;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

struct BusCase {
  const char* name;
  Cdfg (*make)();
  int extra_len;
  int extra_regs;
};

class BusAllocationValid : public ::testing::TestWithParam<BusCase> {};

TEST_P(BusAllocationValid, CarriesEveryConnection) {
  const BusCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  const BusAllocation alloc = bus_allocate(b);
  const auto bad = verify_bus_allocation(b, alloc);
  EXPECT_TRUE(bad.empty()) << (bad.empty() ? "" : bad[0]);
  EXPECT_GT(alloc.num_buses(), 0);
}

TEST_P(BusAllocationValid, StaysValidAfterMoveScramble) {
  const BusCase& c = GetParam();
  Ctx ctx(c.make(), c.extra_len, c.extra_regs);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(99);
  const MoveConfig moves = MoveConfig::salsa_default();
  for (int i = 0; i < 300; ++i) apply_random_move(b, moves.pick(rng), rng);
  ASSERT_TRUE(verify(b).empty());
  const BusAllocation alloc = bus_allocate(b);
  EXPECT_TRUE(verify_bus_allocation(b, alloc).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Benches, BusAllocationValid,
    ::testing::Values(BusCase{"ewf", make_ewf, 0, 1},
                      BusCase{"ewf_loose", make_ewf, 2, 2},
                      BusCase{"dct", make_dct, 2, 2},
                      BusCase{"ar", make_ar_filter, 1, 2},
                      BusCase{"diffeq", make_diffeq, 1, 1}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(BusModel, BusCountBoundedByPeakTraffic) {
  Ctx ctx(make_ewf(), 0, 1);
  Binding b = initial_allocation(*ctx.prob);
  const BusAllocation alloc = bus_allocate(b);
  // Lower bound: max #distinct sources transmitting in any step.
  std::vector<std::set<uint64_t>> per_step(
      static_cast<size_t>(ctx.sched->length()));
  for (const ConnUse& u : connection_uses(b)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    per_step[static_cast<size_t>(u.step)].insert(key_of(u.src));
  }
  size_t peak = 0;
  for (const auto& s : per_step) peak = std::max(peak, s.size());
  EXPECT_GE(alloc.num_buses(), static_cast<int>(peak));
  // And the greedy allocator should stay within a small factor of it.
  EXPECT_LE(alloc.num_buses(), static_cast<int>(peak) * 3 + 2);
}

TEST(BusModel, SingleTransferUsesOneBus) {
  // One producer feeding one consumer: exactly one bus, no sink muxes.
  Cdfg g("one");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(2);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  g.add_output(v, "o");
  g.validate();
  Schedule s = schedule_min_fu(g, HwSpec{}, 3).schedule;
  AllocProblem prob(s, FuPool::standard(peak_fu_demand(s)),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  const BusAllocation alloc = bus_allocate(b);
  EXPECT_TRUE(verify_bus_allocation(b, alloc).empty());
  EXPECT_EQ(alloc.sink_muxes(), 0);
}

TEST(BusModel, BroadcastSharesOneBusPerStep) {
  // A value read by two consumers in the same step: one transmission.
  Cdfg g("bcast");
  const ValueId a = g.add_input("a");
  const ValueId b1 = g.add_input("b");
  const ValueId v = g.add_op(OpKind::kAdd, a, b1, "v");
  const ValueId w1 = g.add_op(OpKind::kAdd, v, a, "w1");
  const ValueId w2 = g.add_op(OpKind::kAdd, v, b1, "w2");
  g.add_output(w1, "o1");
  g.add_output(w2, "o2");
  g.validate();
  Schedule s(g, HwSpec{}, 4);
  s.set_start(g.producer(v), 0);
  s.set_start(g.producer(w1), 1);
  s.set_start(g.producer(w2), 1);
  s.set_start(g.output_nodes()[0], 2);
  s.set_start(g.output_nodes()[1], 2);
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{2, 0}),
                    Lifetimes(s).min_registers());
  Binding bind = initial_allocation(prob);
  const BusAllocation alloc = bus_allocate(bind);
  EXPECT_TRUE(verify_bus_allocation(bind, alloc).empty());
  // v's register broadcasts to both ALUs at step 1 over a single bus slot.
  for (const Bus& bus : alloc.buses)
    for (size_t i = 0; i < bus.schedule.size(); ++i)
      for (size_t j = i + 1; j < bus.schedule.size(); ++j)
        EXPECT_FALSE(bus.schedule[i].second == bus.schedule[j].second &&
                     bus.schedule[i].first != bus.schedule[j].first);
}

TEST(BusModel, VerifierCatchesMissingTap) {
  Ctx ctx(make_diffeq(), 1, 1);
  Binding b = initial_allocation(*ctx.prob);
  BusAllocation alloc = bus_allocate(b);
  ASSERT_FALSE(alloc.taps.empty());
  alloc.taps.pop_back();
  EXPECT_FALSE(verify_bus_allocation(b, alloc).empty());
}

TEST(BusModel, VerifierCatchesDoubleDrive) {
  Ctx ctx(make_diffeq(), 1, 1);
  Binding b = initial_allocation(*ctx.prob);
  BusAllocation alloc = bus_allocate(b);
  // Find a bus with a scheduled slot and clone the slot with another driver.
  for (Bus& bus : alloc.buses) {
    if (bus.schedule.empty()) continue;
    bus.drivers.push_back(Endpoint{Endpoint::Kind::kRegOut, 63});
    bus.schedule.emplace_back(static_cast<int>(bus.drivers.size()) - 1,
                              bus.schedule[0].second);
    EXPECT_FALSE(verify_bus_allocation(b, alloc).empty());
    return;
  }
  FAIL() << "no scheduled bus found";
}

}  // namespace
}  // namespace salsa
