#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/ils.h"
#include "core/initial.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

IlsParams quick(uint64_t seed) {
  IlsParams p;
  p.iterations = 6;
  p.descent_moves = 1500;
  p.kick_moves = 5;
  p.seed = seed;
  return p;
}

TEST(Ils, ImprovesFromInitial) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  const double before = evaluate_cost(start).total;
  const ImproveResult res = iterated_local_search(start, quick(1));
  EXPECT_LT(res.cost.total, before);
  EXPECT_TRUE(verify(res.best).empty());
}

TEST(Ils, DeterministicPerSeed) {
  Ctx ctx(make_dct(), 9, 1);
  Binding start = initial_allocation(*ctx.prob);
  const ImproveResult a = iterated_local_search(start, quick(7));
  const ImproveResult b = iterated_local_search(start, quick(7));
  EXPECT_DOUBLE_EQ(a.cost.total, b.cost.total);
}

TEST(Ils, KicksReportedSeparately) {
  Ctx ctx(make_ewf(), 19, 1);
  Binding start = initial_allocation(*ctx.prob);
  const ImproveResult res = iterated_local_search(start, quick(2));
  // Kicks are cost-blind perturbations, not uphill acceptances of the
  // descent policy: they land in their own counter, and the pure-descent
  // loop itself never accepts uphill.
  EXPECT_GT(res.stats.kicks, 0);
  EXPECT_LE(res.stats.kicks,
            static_cast<long>(quick(2).iterations) * quick(2).kick_moves);
  EXPECT_EQ(res.stats.uphill, 0);
  EXPECT_EQ(res.stats.trials, quick(2).iterations);
}

TEST(Ils, NeverWorseThanStart) {
  Ctx ctx(make_ewf(), 17, 0);
  Binding start = initial_allocation(*ctx.prob);
  for (uint64_t seed : {3u, 4u, 5u}) {
    const ImproveResult res = iterated_local_search(start, quick(seed));
    EXPECT_LE(res.cost.total, evaluate_cost(start).total);
  }
}

TEST(Ils, CompetitiveWithTrialScheme) {
  // Same move budget: ILS should land within a couple of muxes of the
  // trial-based improver (often better — that is why it exists).
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  ImproveParams trial;
  trial.max_trials = 10;
  trial.moves_per_trial = 3000;
  trial.seed = 9;
  const ImproveResult a = improve(start, trial);
  IlsParams ils;
  ils.iterations = 10;
  ils.descent_moves = 3000;
  ils.seed = 9;
  const ImproveResult b = iterated_local_search(start, ils);
  EXPECT_LE(b.cost.muxes, a.cost.muxes + 3);
}

}  // namespace
}  // namespace salsa
