// Reproduces the paper's Figure 3 (pass-through implementation of an
// inter-register transfer) and Figure 4 (value split) on hand-built
// datapaths with exact cost accounting, and checks both datapaths still
// compute correctly on the cycle-accurate simulator.
#include <gtest/gtest.h>

#include <memory>

#include "core/cost.h"
#include "core/moves.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/schedule.h"

namespace salsa {
namespace {

// ---------------------------------------------------------------------------
// Figure 3: value w is transferred from R2 to R1 while FU1 is idle and both
// R2->FU1.in0 and FU1.out->R1.in connections already exist. A direct
// transfer needs a new connection and a new mux at R1's input; the
// pass-through needs neither.
class Fig3 : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<Cdfg>("fig3");
    a_ = g_->add_input("a");
    b_ = g_->add_input("b");
    c_ = g_->add_input("c");
    d_ = g_->add_input("d");
    p_ = g_->add_op(OpKind::kAdd, a_, b_, "p");
    t_ = g_->add_op(OpKind::kAdd, p_, c_, "t");
    q_ = g_->add_op(OpKind::kAdd, d_, c_, "q");
    s_ = g_->add_op(OpKind::kAdd, d_, a_, "s");
    g_->add_output(t_, "ot");
    g_->add_output(q_, "oq");
    g_->add_output(s_, "os");
    g_->validate();
    sched_ = std::make_unique<Schedule>(*g_, HwSpec{}, 5);
    sched_->set_start(g_->producer(p_), 0);  // FU1
    sched_->set_start(g_->producer(t_), 1);  // FU0
    sched_->set_start(g_->producer(q_), 1);  // FU1
    sched_->set_start(g_->producer(s_), 3);  // FU0
    sched_->set_start(g_->output_nodes()[0], 2);
    sched_->set_start(g_->output_nodes()[1], 2);
    sched_->set_start(g_->output_nodes()[2], 4);
    sched_->validate();
    prob_ = std::make_unique<AllocProblem>(
        *sched_, FuPool::standard(FuBudget{2, 0}), 9);
  }

  // regs: 0=a 1=b 2=c 3=R1 4=R2(d) 5=t 6=q 7=s; FU0=0, FU1=1.
  Binding build(bool use_pass) {
    Binding bind(*prob_);
    const Lifetimes& lt = prob_->lifetimes();
    bind.op(g_->producer(p_)).fu = 1;
    bind.op(g_->producer(t_)).fu = 0;
    bind.op(g_->producer(q_)).fu = 1;
    bind.op(g_->producer(s_)).fu = 0;
    auto contiguous = [&](ValueId v, RegId r) {
      StorageBinding& sb = bind.sto(lt.storage_of(v));
      for (size_t seg = 0; seg < sb.cells.size(); ++seg)
        sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    };
    contiguous(a_, 0);
    contiguous(b_, 1);
    contiguous(c_, 2);
    contiguous(p_, 3);  // R1: p lives only at step 1
    contiguous(t_, 5);
    contiguous(q_, 6);
    contiguous(s_, 7);
    // w = input d: segments at steps 0..3; steps 0-2 in R2(4), step 3 in
    // R1(3), transferred during step 2 while FU1 is idle.
    StorageBinding& w = bind.sto(lt.storage_of(d_));
    EXPECT_EQ(w.cells.size(), 4u);
    for (int seg = 0; seg < 3; ++seg)
      w.cells[static_cast<size_t>(seg)].assign(
          1, Cell{4, seg == 0 ? -1 : 0, kInvalidId});
    w.cells[3].assign(1, Cell{3, 0, use_pass ? 1 : kInvalidId});
    check_legal(bind);
    return bind;
  }

  std::unique_ptr<Cdfg> g_;
  std::unique_ptr<Schedule> sched_;
  std::unique_ptr<AllocProblem> prob_;
  ValueId a_, b_, c_, d_, p_, t_, q_, s_;
};

TEST_F(Fig3, PassThroughSavesOneMuxAndOneConnection) {
  const CostBreakdown direct = evaluate_cost(build(false));
  const CostBreakdown pass = evaluate_cost(build(true));
  EXPECT_EQ(direct.muxes - pass.muxes, 1)
      << "R1.in needs a mux only for the direct transfer";
  EXPECT_EQ(direct.connections - pass.connections, 1)
      << "the pass-through reuses R2->FU1 and FU1->R1";
  EXPECT_LT(pass.total, direct.total);
}

TEST_F(Fig3, BothVariantsSimulateCorrectly) {
  for (bool use_pass : {false, true}) {
    Netlist nl(build(use_pass));
    EXPECT_EQ(random_equivalence_check(nl, 4, 11), "")
        << (use_pass ? "pass" : "direct");
  }
}

TEST_F(Fig3, MoveF4DiscoversTheSaving) {
  Binding bind = build(false);
  const double before = evaluate_cost(bind).total;
  Rng rng(1);
  // The only transfer is w's; F4 has exactly one (cell, FU) choice that is
  // idle and pass-capable, so a few attempts must find the improvement.
  bool improved = false;
  for (int i = 0; i < 20 && !improved; ++i) {
    Binding cand = bind;
    if (!apply_random_move(cand, MoveKind::kBindPass, rng)) continue;
    if (evaluate_cost(cand).total < before) improved = true;
  }
  EXPECT_TRUE(improved);
}

TEST_F(Fig3, MoveF5RestoresDirectTransfer) {
  Binding bind = build(true);
  Rng rng(2);
  ASSERT_TRUE(apply_random_move(bind, MoveKind::kUnbindPass, rng));
  check_legal(bind);
  EXPECT_EQ(evaluate_cost(bind).total, evaluate_cost(build(false)).total);
}

// ---------------------------------------------------------------------------
// Figure 4: value v is read by operations on two FUs. Keeping a copy of v in
// a register that already feeds the second FU removes the R1->FU2
// connection (and its mux) at no new cost, because the producer already
// drives the copy's register for another value.
class Fig4 : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<Cdfg>("fig4");
    a_ = g_->add_input("a");
    b_ = g_->add_input("b");
    c_ = g_->add_input("c");
    d_ = g_->add_input("d");
    u_ = g_->add_op(OpKind::kAdd, a_, b_, "u");
    v_ = g_->add_op(OpKind::kAdd, a_, c_, "v");
    x_ = g_->add_op(OpKind::kAdd, u_, c_, "x");
    y_ = g_->add_op(OpKind::kAdd, v_, b_, "y");
    z_ = g_->add_op(OpKind::kAdd, v_, d_, "z");
    g_->add_output(x_, "ox");
    g_->add_output(y_, "oy");
    g_->add_output(z_, "oz");
    g_->validate();
    sched_ = std::make_unique<Schedule>(*g_, HwSpec{}, 5);
    sched_->set_start(g_->producer(u_), 0);  // FUa
    sched_->set_start(g_->producer(v_), 1);  // FUa
    sched_->set_start(g_->producer(x_), 1);  // FUb
    sched_->set_start(g_->producer(y_), 2);  // FUa
    sched_->set_start(g_->producer(z_), 3);  // FUb
    sched_->set_start(g_->output_nodes()[0], 2);
    sched_->set_start(g_->output_nodes()[1], 3);
    sched_->set_start(g_->output_nodes()[2], 4);
    sched_->validate();
    prob_ = std::make_unique<AllocProblem>(
        *sched_, FuPool::standard(FuBudget{2, 0}), 10);
  }

  // regs: 0=a 1=b 2=c 3=d 4=R1(v) 5=R2(u, then v-copy) 6=x 7=y 8=z.
  Binding build(bool with_copy) {
    Binding bind(*prob_);
    const Lifetimes& lt = prob_->lifetimes();
    bind.op(g_->producer(u_)).fu = 0;
    bind.op(g_->producer(v_)).fu = 0;
    bind.op(g_->producer(x_)).fu = 1;
    bind.op(g_->producer(y_)).fu = 0;
    bind.op(g_->producer(z_)).fu = 1;
    auto contiguous = [&](ValueId v, RegId r) {
      StorageBinding& sb = bind.sto(lt.storage_of(v));
      for (size_t seg = 0; seg < sb.cells.size(); ++seg)
        sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    };
    contiguous(a_, 0);
    contiguous(b_, 1);
    contiguous(c_, 2);
    contiguous(d_, 3);
    contiguous(u_, 5);  // R2: u lives only at step 1
    contiguous(v_, 4);  // R1: v lives at steps 2..3
    contiguous(x_, 6);
    contiguous(y_, 7);
    contiguous(z_, 8);
    if (with_copy) {
      StorageBinding& v = bind.sto(lt.storage_of(v_));
      ASSERT_EQ_OR_THROW(v.cells.size(), 2u);
      v.cells[0].push_back(Cell{5, -1, kInvalidId});    // copy in R2
      v.cells[1].push_back(Cell{5, 1, kInvalidId});     // held in R2
      // z reads the copy (its read is the one at the last segment).
      const Storage& sto = lt.storage(lt.storage_of(v_));
      for (size_t ri = 0; ri < sto.reads.size(); ++ri)
        if (sto.reads[ri].consumer == g_->producer(z_)) v.read_cell[ri] = 1;
    }
    check_legal(bind);
    return bind;
  }

  static void ASSERT_EQ_OR_THROW(size_t a, size_t b) { SALSA_CHECK(a == b); }

  std::unique_ptr<Cdfg> g_;
  std::unique_ptr<Schedule> sched_;
  std::unique_ptr<AllocProblem> prob_;
  ValueId a_, b_, c_, d_, u_, v_, x_, y_, z_;
};

TEST_F(Fig4, CopyRemovesConnectionAndMux) {
  const CostBreakdown plain = evaluate_cost(build(false));
  const CostBreakdown copy = evaluate_cost(build(true));
  EXPECT_EQ(plain.connections - copy.connections, 1)
      << "R1->FUb.in0 disappears; the copy rides existing connections";
  EXPECT_EQ(plain.muxes - copy.muxes, 1) << "FUb.in0 loses its mux";
  EXPECT_LT(copy.total, plain.total);
}

TEST_F(Fig4, BothVariantsSimulateCorrectly) {
  for (bool with_copy : {false, true}) {
    Netlist nl(build(with_copy));
    EXPECT_EQ(random_equivalence_check(nl, 4, 22), "")
        << (with_copy ? "copy" : "plain");
  }
}

TEST_F(Fig4, SplitAndRetargetMovesDiscoverTheSaving) {
  Binding bind = build(false);
  const double target = evaluate_cost(build(true)).total;
  Rng rng(3);
  // R5 (split) can create the copy and re-point reads; R7 retargets. Give
  // the pair a fair number of attempts.
  double best = evaluate_cost(bind).total;
  for (int i = 0; i < 3000 && best > target; ++i) {
    Binding cand = bind;
    const MoveKind k = rng.chance(0.5) ? MoveKind::kValSplit
                                       : MoveKind::kReadRetarget;
    if (!apply_random_move(cand, k, rng)) continue;
    const double c = evaluate_cost(cand).total;
    if (c <= best + 1.0) {  // allow the +1-connection intermediate step
      bind = std::move(cand);
      best = std::min(best, c);
    }
  }
  EXPECT_LE(best, target);
}

}  // namespace
}  // namespace salsa
