// Segment-windowed transactions (DESIGN.md "Segment-windowed
// transactions"): the proof obligation is *identical cost integers*, not
// merely close ones — a windowed normalize/claim-staging walk must produce
// the exact deltas, cost breakdowns and bindings of the whole-storage walk
// it replaces. These tests drive the window-vs-whole differential
// (run_segment_diff) on every standard target plus a generated cascade,
// prove the seeded window-shrink mutation is caught, and pin byte-identical
// pipeline trajectories across (threads x k) with windows on vs off.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/digest.h"
#include "analysis/fuzz.h"
#include "core/initial.h"
#include "core/moves.h"
#include "core/search_engine.h"
#include "core/speculate.h"
#include "frontend/generate.h"

namespace salsa {
namespace {

// --- window-vs-whole differential on the standard targets -------------------

class SegmentDiff : public ::testing::TestWithParam<std::string> {};

TEST_P(SegmentDiff, WindowedCostsMatchWholeStorageExactly) {
  FuzzTarget target(GetParam());
  FuzzParams p;
  p.seed = 20260809;
  p.transactions = 1200;
  p.name = "segment-" + GetParam();
  const SegmentDiffResult res = run_segment_diff(target.prob(), p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.divergence, -1);
  EXPECT_EQ(res.transactions, p.transactions);
  EXPECT_GT(res.commits, 0);
  // The comparison is not vacuous: a healthy run must actually take the
  // windowed path (touch a sub-range, not fall back to whole-storage).
  EXPECT_GT(res.windowed, 0);
}

INSTANTIATE_TEST_SUITE_P(StandardTargets, SegmentDiff,
                         ::testing::ValuesIn(FuzzTarget::names()),
                         [](const auto& info) { return info.param; });

// The scaling corpus is where windowing pays: long storages whose segments
// a move touches one at a time. The differential must hold there too.
TEST(SegmentDiffGenerated, FilterCascadeMatchesWholeStorage) {
  GenParams gp;
  gp.family = GenFamily::kFilterCascade;
  gp.target_ops = 1000;
  gp.seed = 1;
  const GeneratedDesign d = generate_design(gp);
  FuzzParams p;
  p.seed = 5;
  p.transactions = 400;
  p.uniform_kinds = false;  // weighted draws: the tuned search's move mix
  p.name = "segment-cascade";
  const SegmentDiffResult res = run_segment_diff(*d.problem, p);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_EQ(res.divergence, -1);
  EXPECT_GT(res.commits, 0);
  EXPECT_GT(res.windowed, 0);
}

// A differential that cannot find feasible transactions proves nothing —
// starvation must fail loudly, never read as a clean pass.
TEST(SegmentDiffStarvation, StarvedRunIsAFailure) {
  FuzzTarget target("ewf");
  FuzzParams p;
  p.seed = 1;
  p.transactions = 100;
  p.proposal_cap_factor = 0;  // zero proposal budget: guaranteed starvation
  const SegmentDiffResult res = run_segment_diff(target.prob(), p);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failure.find("starved"), std::string::npos) << res.failure;
}

// --- mutation test: a shrunken claim window must be caught ------------------

TEST(SegmentMutation, SeededWindowShrinkIsCaught) {
  // Arm the one-shot hook: the Nth windowed re-add drops the last segment
  // from its claim window (add side only), leaving occupancy/refcount/key
  // drift behind. The differential forces hook-fired transactions to
  // commit, so the drift cannot hide behind a rollback's journal restore.
  FuzzTarget target("ewf");
  seg_window_hooks::break_claim_window_after =
      seg_window_hooks::windowed_txns + 25;
  FuzzParams p;
  p.seed = 17;
  p.transactions = 2000;
  p.name = "segment-mutant";
  const SegmentDiffResult res = run_segment_diff(target.prob(), p);
  const bool fired = seg_window_hooks::break_claim_window_after == 0;
  seg_window_hooks::break_claim_window_after = 0;  // disarm on any path
  ASSERT_TRUE(fired) << "the window-shrink hook never fired";
  ASSERT_FALSE(res.ok)
      << "a shrunken claim window slipped past the differential";
  EXPECT_GE(res.divergence, 0);
}

// --- pipeline trajectories: windows on vs off, across (threads x k) ---------

TEST(SegmentTrajectory, WindowedPipelinesAreByteIdenticalToWholeStorage) {
  // Two pipelines from the same start binding and seed — one engine
  // windowed (the default), one forced to whole-storage walks — must serve
  // identical candidate streams (feasibility, kind, bit-identical delta)
  // and walk digest-identical bindings, for every (threads, k) pairing.
  FuzzTarget target("ewf");
  const Binding start =
      initial_allocation(target.prob(), InitialOptions{.seed = 11});
  const MoveConfig moves = MoveConfig::salsa_default();
  const std::vector<std::pair<int, int>> grid{{1, 1}, {1, 4}, {2, 8}};
  for (const auto& [threads, k] : grid) {
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " k=" + std::to_string(k));
    SearchEngine win(start);
    SearchEngine whole(start);
    whole.set_segment_windows(false);
    SpeculationConfig sc{k, Parallelism{threads}};
    sc.pin_width = true;  // exercise the speculative path on any host
    ProposalPipeline pw(win, moves, sc, 99);
    ProposalPipeline pf(whole, moves, sc, 99);
    long commits = 0;
    for (long step = 0; step < 600; ++step) {
      const ProposalPipeline::Candidate cw = pw.next();
      const ProposalPipeline::Candidate cf = pf.next();
      ASSERT_EQ(cw.feasible, cf.feasible) << "step " << step;
      ASSERT_EQ(cw.kind, cf.kind) << "step " << step;
      if (!cw.feasible) continue;
      ASSERT_EQ(cw.delta, cf.delta) << "step " << step;  // bit-identical
      // Acceptance is a function of the candidate alone, so both runs make
      // the same decision: keep downhill, plus a deterministic uphill slice.
      const bool accept = cw.delta <= 0 || step % 5 == 0;
      pw.decide(accept);
      pf.decide(accept);
      if (!accept) continue;
      ++commits;
      ASSERT_EQ(digest_binding(win.binding()), digest_binding(whole.binding()))
          << "bindings diverged after commit at step " << step;
    }
    EXPECT_GT(commits, 0);
    EXPECT_EQ(win.cost().total, whole.cost().total);
    EXPECT_EQ(win.cost().connections, whole.cost().connections);
    EXPECT_EQ(win.cost().muxes, whole.cost().muxes);
    std::string why;
    EXPECT_TRUE(win.index_matches_rebuild(&why)) << why;
  }
}

}  // namespace
}  // namespace salsa
