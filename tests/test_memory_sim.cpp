// Event-driven memory subsystem tests: ready/valid channel handshake unit
// tests, single-port RAM latency/arbitration/backpressure behavior, the
// magic-memory differential (diff_memory_sim), and the end-to-end path from
// a kMemoryTraffic datapath — simulated by the event engine — into LSU
// programs against the RAM.
#include <gtest/gtest.h>

#include "core/allocator.h"
#include "datapath/event_sim.h"
#include "datapath/memory.h"
#include "datapath/ready_valid.h"
#include "frontend/generate.h"

namespace salsa {
namespace {

// ---------------------------------------------------------------------------
TEST(RvChannel, HandshakeAndFullThroughput) {
  RvChannel<int64_t> ch;
  EXPECT_FALSE(ch.valid());
  EXPECT_TRUE(ch.ready());

  ch.push(11);
  EXPECT_FALSE(ch.valid());  // registered: visible after the edge
  EXPECT_FALSE(ch.ready());  // one staged push per cycle
  EXPECT_TRUE(ch.clock());
  ASSERT_TRUE(ch.valid());
  EXPECT_EQ(ch.peek(), 11);

  // Same-cycle pop + push (consumer evaluates first): full throughput,
  // no bubble.
  ch.pop();
  EXPECT_TRUE(ch.ready());
  ch.push(22);
  EXPECT_TRUE(ch.clock());
  ASSERT_TRUE(ch.valid());
  EXPECT_EQ(ch.peek(), 22);

  ch.pop();
  EXPECT_TRUE(ch.clock());
  EXPECT_FALSE(ch.valid());
  EXPECT_FALSE(ch.clock());  // idle edge: no change
}

// ---------------------------------------------------------------------------
TEST(MemorySim, SingleLsuStoreLoadRoundTrip) {
  std::vector<std::vector<MemOp>> programs(1);
  programs[0] = {MemOp{true, 4, 55}, MemOp{true, 9, -3}, MemOp{false, 4, 0},
                 MemOp{false, 9, 0}, MemOp{false, 100, 0}};
  const MemSimResult r = simulate_memory(programs, 2);
  ASSERT_EQ(r.loads[0].size(), 3u);
  EXPECT_EQ(r.loads[0][0], 55);
  EXPECT_EQ(r.loads[0][1], -3);
  EXPECT_EQ(r.loads[0][2], 0);  // unwritten addresses read as zero
  ASSERT_EQ(r.port_order.size(), 5u);
  for (size_t i = 0; i < 5; ++i)
    EXPECT_EQ(r.port_order[i], (std::pair<int, int>{0, static_cast<int>(i)}));
}

TEST(MemorySim, LatencyBoundsCycleCount) {
  std::vector<std::vector<MemOp>> programs(1);
  for (int i = 0; i < 8; ++i) programs[0].push_back(MemOp{true, i, i});
  const MemSimResult fast = simulate_memory(programs, 1);
  const MemSimResult slow = simulate_memory(programs, 6);
  // Each blocking transaction costs at least `latency` cycles at the port.
  EXPECT_GE(fast.stats.cycles, 8);
  EXPECT_GE(slow.stats.cycles, 8 * 6);
  EXPECT_GT(slow.stats.cycles, fast.stats.cycles);
}

TEST(MemorySim, EventCountsScaleWithTrafficNotLatency) {
  // Event-driven claim: a RAM waiting out a long latency costs one timer
  // event, not latency-many re-evaluations.
  std::vector<std::vector<MemOp>> programs(1);
  for (int i = 0; i < 10; ++i) programs[0].push_back(MemOp{true, i, i});
  const MemSimResult fast = simulate_memory(programs, 1);
  const MemSimResult slow = simulate_memory(programs, 50);
  EXPECT_GT(slow.stats.cycles, 10 * 49);
  // Events grew far slower than the 50x latency (allow small fixed costs).
  EXPECT_LT(slow.stats.events, fast.stats.events * 3);
}

TEST(MemorySim, ArbitrationIsFixedPriorityAndDeterministic) {
  std::vector<std::vector<MemOp>> programs(3);
  for (int u = 0; u < 3; ++u)
    for (int i = 0; i < 4; ++i)
      programs[static_cast<size_t>(u)].push_back(
          MemOp{true, u * 100 + i, u * 1000 + i});
  const MemSimResult r = simulate_memory(programs, 3);
  ASSERT_EQ(r.port_order.size(), 12u);
  // Fixed lowest-index-first priority: with latency 3, LSU 1's request is
  // already waiting each time the port frees while LSU 0 is still refilling,
  // so 0 and 1 alternate; LSU 2 is starved until both drain. Pinned exactly
  // — any change to arbitration or handshake timing must show up here.
  const std::vector<std::pair<int, int>> want = {
      {0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2},
      {0, 3}, {1, 3}, {2, 0}, {2, 1}, {2, 2}, {2, 3}};
  EXPECT_EQ(r.port_order, want);
  // And byte-identical on a rerun: the kernel has no nondeterminism.
  const MemSimResult again = simulate_memory(programs, 3);
  EXPECT_EQ(again.port_order, r.port_order);
}

// ---------------------------------------------------------------------------
// Differential vs the zero-latency magic memory across latencies, LSU
// counts, and access patterns (conflicting addresses across LSUs included).
TEST(MemorySim, MagicMemoryDifferential) {
  Rng rng(2026);
  for (int num_lsus = 1; num_lsus <= 4; ++num_lsus)
    for (int latency : {1, 2, 5}) {
      std::vector<std::vector<MemOp>> programs(
          static_cast<size_t>(num_lsus));
      for (auto& prog : programs)
        for (int i = 0; i < 30; ++i) {
          MemOp op;
          op.write = rng.uniform(2) == 0;
          op.addr = rng.uniform(16);  // heavy conflicts across LSUs
          op.data = static_cast<int64_t>(rng.next() % 2001) - 1000;
          prog.push_back(op);
        }
      EXPECT_EQ(diff_memory_sim(programs, latency), "")
          << "lsus=" << num_lsus << " latency=" << latency;
    }
}

// ---------------------------------------------------------------------------
// End to end: a memory-traffic design simulated by the event engine
// produces the (addr, data) streams that drive the LSUs.
TEST(MemorySim, DatapathDrivesMemorySubsystem) {
  GenParams p;
  p.family = GenFamily::kMemoryTraffic;
  p.target_ops = 120;
  p.seed = 9;
  const GeneratedDesign d = generate_design(p);
  Binding b = initial_allocation(*d.problem);
  Netlist nl(b);

  const int iterations = 8;
  Rng rng(7);
  std::vector<std::vector<int64_t>> inputs(
      static_cast<size_t>(iterations) + 1,
      std::vector<int64_t>(d.graph->input_nodes().size(), 0));
  for (auto& vec : inputs)
    for (auto& v : vec) v = static_cast<int64_t>(rng.next() % 201) - 100;
  std::vector<int64_t> states(d.graph->state_nodes().size(), 0);

  // The controller's sampled outputs become LSU programs; both engines must
  // of course produce the same programs.
  const SimResult ev =
      simulate_events(nl, inputs, states, iterations);
  const SimResult full = simulate(nl, inputs, states, iterations);
  ASSERT_EQ(ev.outputs, full.outputs);

  const auto programs = mem_ops_from_outputs(ev, 64);
  ASSERT_GE(programs.size(), 2u);
  for (const auto& prog : programs)
    ASSERT_EQ(prog.size(), static_cast<size_t>(iterations));
  EXPECT_EQ(diff_memory_sim(programs, 3), "");
}

}  // namespace
}  // namespace salsa
