#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/allocator.h"
#include "core/annealer.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

ImproveParams quick_params(uint64_t seed) {
  ImproveParams p;
  p.max_trials = 6;
  p.moves_per_trial = 600;
  p.uphill_per_trial = 20;
  p.seed = seed;
  return p;
}

TEST(Improver, ReducesCostFromInitial) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  const double before = evaluate_cost(start).total;
  ImproveParams p = quick_params(1);
  p.max_trials = 12;
  p.moves_per_trial = 3000;
  const ImproveResult res = improve(start, p);
  EXPECT_LT(res.cost.total, before);
  EXPECT_TRUE(verify(res.best).empty());
}

TEST(Improver, DeterministicForFixedSeed) {
  Ctx ctx(make_dct(), 10, 1);
  Binding start = initial_allocation(*ctx.prob);
  const ImproveResult a = improve(start, quick_params(42));
  const ImproveResult b = improve(start, quick_params(42));
  EXPECT_DOUBLE_EQ(a.cost.total, b.cost.total);
  EXPECT_EQ(a.cost.muxes, b.cost.muxes);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
}

TEST(Improver, StatsAreConsistent) {
  Ctx ctx(make_ewf(), 19, 1);
  Binding start = initial_allocation(*ctx.prob);
  const ImproveResult res = improve(start, quick_params(3));
  EXPECT_GT(res.stats.attempted, 0);
  EXPECT_LE(res.stats.accepted, res.stats.attempted);
  EXPECT_LE(res.stats.uphill, res.stats.accepted);
  EXPECT_GE(res.stats.trials, 1);
  EXPECT_LE(res.stats.trials, quick_params(3).max_trials);
}

TEST(Improver, UphillBudgetZeroIsGreedyDescent) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  ImproveParams p = quick_params(5);
  p.uphill_per_trial = 0;
  const ImproveResult res = improve(p.max_trials ? start : start, p);
  EXPECT_EQ(res.stats.uphill, 0);
  EXPECT_LE(res.cost.total, evaluate_cost(start).total);
}

TEST(Improver, BestNeverWorseThanStart) {
  Ctx ctx(make_dct(), 12, 0);
  Binding start = initial_allocation(*ctx.prob);
  for (uint64_t seed : {7u, 8u, 9u}) {
    const ImproveResult res = improve(start, quick_params(seed));
    EXPECT_LE(res.cost.total, evaluate_cost(start).total);
  }
}

TEST(Annealer, ProducesLegalResult) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding start = initial_allocation(*ctx.prob);
  AnnealParams p;
  p.num_temps = 8;
  p.moves_per_temp = 400;
  p.seed = 2;
  const ImproveResult res = anneal(start, p);
  EXPECT_TRUE(verify(res.best).empty());
  EXPECT_LE(res.cost.total, evaluate_cost(start).total);
}

TEST(Allocator, EndToEndWithRestarts) {
  Ctx ctx(make_ewf(), 17, 1);
  AllocatorOptions opts;
  opts.improve = quick_params(1);
  opts.restarts = 2;
  const AllocationResult res = allocate(*ctx.prob, opts);
  EXPECT_TRUE(verify(res.binding).empty());
  EXPECT_EQ(res.merging.muxes_before, res.cost.muxes);
  EXPECT_LE(res.merging.muxes_after, res.merging.muxes_before);
  EXPECT_EQ(res.stats.trials,
            res.stats.trials);  // accumulated over both restarts
  EXPECT_GE(res.stats.trials, 2);
}

TEST(Allocator, RestartsNeverHurt) {
  Ctx ctx(make_dct(), 10, 1);
  AllocatorOptions one;
  one.improve = quick_params(1);
  one.restarts = 1;
  AllocatorOptions three = one;
  three.restarts = 3;
  const double c1 = allocate(*ctx.prob, one).cost.total;
  const double c3 = allocate(*ctx.prob, three).cost.total;
  EXPECT_LE(c3, c1);
}

}  // namespace
}  // namespace salsa
