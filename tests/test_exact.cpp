// The exact branch-and-bound allocator as an optimality oracle: on tiny
// problems the heuristic searches must reach (and never beat, within the
// same binding subspace) the proven optimum.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/exact.h"
#include "baseline/traditional.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/random_cdfg.h"
#include "core/allocator.h"
#include "core/verify.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int extra_len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    const int len = min_schedule_length(*g, hw) + extra_len;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

Cdfg tiny_graph() {
  Cdfg g("tiny");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  const ValueId c = g.add_const(3);
  const ValueId v1 = g.add_op(OpKind::kAdd, a, b, "v1");
  const ValueId v2 = g.add_op(OpKind::kMul, v1, c, "v2");
  const ValueId v3 = g.add_op(OpKind::kAdd, v2, a, "v3");
  g.add_output(v3, "o");
  g.validate();
  return g;
}

TEST(Exact, FindsLegalOptimum) {
  Ctx ctx(tiny_graph(), 1, 1);
  const auto res = exact_traditional(*ctx.prob);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(verify(res->best).empty());
  EXPECT_TRUE(res->best.is_traditional());
  EXPECT_GT(res->nodes_visited, 0);
}

TEST(Exact, NodeLimitAborts) {
  Ctx ctx(make_diffeq(), 2, 2);
  ExactOptions opts;
  opts.node_limit = 10;
  EXPECT_FALSE(exact_traditional(*ctx.prob, opts).has_value());
}

TEST(Exact, HeuristicNeverBeatsOptimumOnTraditionalSpace) {
  // The traditional allocator searches the same subspace (plus operand
  // swaps, so compare against swap-enumerating exact search).
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    RandomCdfgParams p;
    p.seed = seed;
    p.num_ops = 6;
    p.num_states = 1;
    p.num_inputs = 2;
    p.num_consts = 1;
    Ctx ctx(make_random_cdfg(p), 2, 1);
    ExactOptions opts;
    opts.enumerate_swaps = true;
    const auto exact = exact_traditional(*ctx.prob, opts);
    if (!exact) continue;  // enumeration too large for this seed
    TraditionalOptions topt;
    topt.improve.max_trials = 10;
    topt.improve.moves_per_trial = 2000;
    const AllocationResult heur = allocate_traditional(*ctx.prob, topt);
    EXPECT_GE(heur.cost.total, exact->cost.total - 1e-9) << "seed " << seed;
  }
}

TEST(Exact, HeuristicUsuallyReachesOptimum) {
  int reached = 0, total = 0;
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    RandomCdfgParams p;
    p.seed = seed;
    p.num_ops = 5;
    p.num_states = 0;
    p.num_inputs = 2;
    p.num_consts = 1;
    Ctx ctx(make_random_cdfg(p), 2, 1);
    ExactOptions opts;
    opts.enumerate_swaps = true;
    const auto exact = exact_traditional(*ctx.prob, opts);
    if (!exact) continue;
    ++total;
    TraditionalOptions topt;
    topt.improve.max_trials = 12;
    topt.improve.moves_per_trial = 3000;
    topt.restarts = 2;
    const AllocationResult heur = allocate_traditional(*ctx.prob, topt);
    if (heur.cost.total <= exact->cost.total + 1e-9) ++reached;
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(reached * 2, total) << "heuristic reached optimum on " << reached
                                << "/" << total << " tiny cases";
}

TEST(Exact, ExtendedModelOptimumNoWorse) {
  // The extended binding model subsumes the traditional one, so a decent
  // extended search should match or beat the exact traditional optimum.
  Ctx ctx(tiny_graph(), 2, 1);
  ExactOptions opts;
  opts.enumerate_swaps = true;
  const auto exact = exact_traditional(*ctx.prob, opts);
  ASSERT_TRUE(exact.has_value());
  AllocatorOptions sopt;
  sopt.improve.max_trials = 10;
  sopt.improve.moves_per_trial = 2000;
  sopt.restarts = 2;
  const AllocationResult ext = allocate(*ctx.prob, sopt);
  EXPECT_LE(ext.cost.total, exact->cost.total + 1e-9);
}

TEST(Exact, SwapEnumerationHelpsOrEquals) {
  Ctx ctx(tiny_graph(), 1, 1);
  const auto without = exact_traditional(*ctx.prob);
  ExactOptions with_swaps;
  with_swaps.enumerate_swaps = true;
  const auto with = exact_traditional(*ctx.prob, with_swaps);
  ASSERT_TRUE(without && with);
  EXPECT_LE(with->cost.total, without->cost.total);
}

}  // namespace
}  // namespace salsa
