#include <gtest/gtest.h>

#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "core/lifetime.h"
#include "sched/force_directed.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

// A hand-scheduled accumulator: st' = st + in, out = st'.
struct AccFixture {
  Cdfg g{"acc"};
  ValueId in, st, sum;
  NodeId sum_node, out_node;

  AccFixture() {
    in = g.add_input("in");
    st = g.add_state("st");
    sum = g.add_op(OpKind::kAdd, st, in, "sum");
    g.set_state_next(st, sum);
    out_node = g.add_output(sum, "o");
    sum_node = g.producer(sum);
    g.validate();
  }
};

TEST(Lifetime, MergesStateWithNextContent) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 4);
  s.set_start(f.sum_node, 1);  // reads st at 1, sum ready at 2
  s.set_start(f.out_node, 2);
  Lifetimes lt(s);
  // One merged storage (st+sum) and one input storage.
  EXPECT_EQ(lt.num_storages(), 2);
  EXPECT_EQ(lt.storage_of(f.st), lt.storage_of(f.sum));
  const Storage& sto = lt.storage(lt.storage_of(f.st));
  // Born when sum is ready (step 2), read at step 2 (output) and wraps to
  // step 1 of the next iteration (the state read).
  EXPECT_EQ(sto.birth, 2);
  EXPECT_TRUE(sto.wraps);
  // Live steps: 2, 3, 0, 1 — the full period.
  EXPECT_EQ(sto.len, 4);
  EXPECT_EQ(sto.producer, f.sum_node);
}

TEST(Lifetime, ReadSegmentsMapToSteps) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 4);
  s.set_start(f.sum_node, 1);
  s.set_start(f.out_node, 3);
  Lifetimes lt(s);
  const Storage& sto = lt.storage(lt.storage_of(f.st));
  for (const StorageRead& r : sto.reads)
    EXPECT_EQ(sto.step_at(r.seg, 4), r.step);
}

TEST(Lifetime, InputLifetimeSpansToLastRead) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 5);
  s.set_start(f.sum_node, 3);
  s.set_start(f.out_node, 4);
  Lifetimes lt(s);
  const Storage& sto = lt.storage(lt.storage_of(f.in));
  EXPECT_EQ(sto.birth, 0);
  EXPECT_FALSE(sto.wraps);
  EXPECT_EQ(sto.len, 4);  // steps 0..3
  EXPECT_EQ(sto.producer, kInvalidId);
}

TEST(Lifetime, DemandCountsOverlaps) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 4);
  s.set_start(f.sum_node, 1);
  s.set_start(f.out_node, 2);
  Lifetimes lt(s);
  // State storage live everywhere (len 4); input live at steps 0..1.
  EXPECT_EQ(lt.demand()[0], 2);
  EXPECT_EQ(lt.demand()[1], 2);
  EXPECT_EQ(lt.demand()[2], 1);
  EXPECT_EQ(lt.demand()[3], 1);
  EXPECT_EQ(lt.min_registers(), 2);
}

TEST(Lifetime, SegAtStepOutsideArcIsMinusOne) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 4);
  s.set_start(f.sum_node, 1);
  s.set_start(f.out_node, 2);
  Lifetimes lt(s);
  const int input_sto = lt.storage_of(f.in);
  EXPECT_GE(lt.seg_at_step(input_sto, 0), 0);
  EXPECT_EQ(lt.seg_at_step(input_sto, 3), -1);
}

TEST(Lifetime, EwfStorageCensus) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = force_directed_schedule(g, hw, 17);
  Lifetimes lt(s);
  // 34 op results + 1 input, with 7 values merged into their states.
  EXPECT_EQ(lt.num_storages(), 35);
  int wrapping = 0;
  for (int sid = 0; sid < lt.num_storages(); ++sid)
    wrapping += lt.storage(sid).wraps;
  EXPECT_GT(wrapping, 0) << "EWF states must cross the iteration boundary";
  EXPECT_GE(lt.min_registers(), 10);
  EXPECT_LE(lt.min_registers(), 15);
}

TEST(Lifetime, EveryReadInsideArc) {
  Cdfg g = make_ewf();
  HwSpec hw;
  for (int L : {17, 19, 21}) {
    Schedule s = schedule_min_fu(g, hw, L).schedule;
    Lifetimes lt(s);
    for (int sid = 0; sid < lt.num_storages(); ++sid) {
      const Storage& sto = lt.storage(sid);
      for (const StorageRead& r : sto.reads) {
        EXPECT_GE(r.seg, 0);
        EXPECT_LT(r.seg, sto.len);
      }
    }
  }
}

TEST(Lifetime, FirNopChainsShareStorageWithStates) {
  Cdfg g = make_fir8();
  HwSpec hw;
  Schedule s = force_directed_schedule(g, hw, 12);
  Lifetimes lt(s);
  // Each shift Nop's result merges with its target state: 7 taps + input +
  // 8 products + 7 accumulator sums + shift results merged away.
  for (NodeId sn : g.state_nodes()) {
    const Node& st = g.node(sn);
    EXPECT_EQ(lt.storage_of(st.out), lt.storage_of(st.state_next));
  }
}

TEST(Lifetime, DemandMatchesStorageSum) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = force_directed_schedule(g, hw, 19);
  Lifetimes lt(s);
  long total_live = 0;
  for (int sid = 0; sid < lt.num_storages(); ++sid)
    total_live += lt.storage(sid).len;
  long demand_sum = 0;
  for (int d : lt.demand()) demand_sum += d;
  EXPECT_EQ(total_live, demand_sum);
}

// --- Packed live-mask cross-checks (cyclic edge cases) ---------------------
// The packed rows of live_masks() must agree bit-for-bit with the scalar
// arc arithmetic (seg_at_step / step_at) on every storage of every schedule,
// including the awkward arcs: single-segment lifetimes, full-period wrapping
// state storages, and wrap-around arcs straddling the iteration boundary.
// The suite runs under both the packed build and SALSA_BITPLANE_SCALAR=ON.

TEST(Lifetime, MinimalSingleSegmentLifetime) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 4);
  s.set_start(f.sum_node, 0);  // reads `in` at its birth step
  s.set_start(f.out_node, 1);
  Lifetimes lt(s);
  const int sid = lt.storage_of(f.in);
  const Storage& sto = lt.storage(sid);
  // Born and last read in step 0: the shortest legal arc, one segment.
  EXPECT_EQ(sto.birth, 0);
  EXPECT_EQ(sto.len, 1);
  EXPECT_FALSE(sto.wraps);
  EXPECT_EQ(lt.live_masks().popcount_row(sid), 1);
  EXPECT_TRUE(lt.live_masks().test(sid, 0));
  EXPECT_EQ(lt.seg_at_step(sid, 0), 0);
  EXPECT_EQ(lt.seg_at_step(sid, 1), -1);
  ASSERT_EQ(lt.steps_of(sid).size(), 1u);
  EXPECT_EQ(lt.steps_of(sid)[0], 0);
}

TEST(Lifetime, FullPeriodWrappingMaskIsAllOnes) {
  AccFixture f;
  Schedule s(f.g, HwSpec{}, 4);
  s.set_start(f.sum_node, 1);
  s.set_start(f.out_node, 2);
  Lifetimes lt(s);
  // The merged state storage is born at 2 and wraps to the state read at 1
  // of the next iteration: live at every step, len == L.
  const int sid = lt.storage_of(f.st);
  const Storage& sto = lt.storage(sid);
  ASSERT_TRUE(sto.wraps);
  ASSERT_EQ(sto.len, 4);
  EXPECT_EQ(lt.live_masks().popcount_row(sid), 4);
  for (int t = 0; t < 4; ++t) EXPECT_TRUE(lt.live_masks().test(sid, t)) << t;
}

TEST(Lifetime, WrappingMasksStraddleTheBoundary) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const int L = 17;
  Schedule s = force_directed_schedule(g, hw, L);
  Lifetimes lt(s);
  int straddling = 0;
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& sto = lt.storage(sid);
    if (!sto.wraps || sto.birth == 0) continue;
    ++straddling;
    // A wrapping arc born mid-cycle contributes its tail span [birth, L)
    // and head span [0, birth + len - L): both sides of the boundary set...
    EXPECT_TRUE(lt.live_masks().test(sid, L - 1)) << "sid " << sid;
    EXPECT_TRUE(lt.live_masks().test(sid, 0)) << "sid " << sid;
    // ...and, unless it covers the full period, the step right after the
    // head span is dead.
    if (sto.len < L) {
      const int dead = sto.birth + sto.len - L;
      EXPECT_FALSE(lt.live_masks().test(sid, dead)) << "sid " << sid;
      EXPECT_EQ(lt.seg_at_step(sid, dead), -1) << "sid " << sid;
    }
  }
  EXPECT_GT(straddling, 0) << "EWF must have boundary-straddling storages";
}

TEST(Lifetime, LiveMasksMatchSegAtStepEverywhere) {
  Cdfg g = make_ewf();
  HwSpec hw;
  for (int L : {17, 19, 21}) {
    Schedule s = schedule_min_fu(g, hw, L).schedule;
    Lifetimes lt(s);
    ASSERT_EQ(lt.live_masks().rows(), lt.num_storages());
    ASSERT_EQ(lt.live_masks().bits(), L);
    for (int sid = 0; sid < lt.num_storages(); ++sid) {
      for (int t = 0; t < L; ++t)
        ASSERT_EQ(lt.live_masks().test(sid, t), lt.seg_at_step(sid, t) != -1)
            << "L " << L << " sid " << sid << " step " << t;
      // steps_of is the precomputed step_at table, one entry per segment.
      const Storage& sto = lt.storage(sid);
      ASSERT_EQ(lt.steps_of(sid).size(), static_cast<size_t>(sto.len));
      for (int seg = 0; seg < sto.len; ++seg)
        ASSERT_EQ(lt.steps_of(sid)[static_cast<size_t>(seg)],
                  sto.step_at(seg, L));
    }
  }
}

TEST(Lifetime, OverlapsMatchesScalarDoubleLoop) {
  Cdfg g = make_ewf();
  HwSpec hw;
  const int L = 19;
  Schedule s = force_directed_schedule(g, hw, L);
  Lifetimes lt(s);
  for (int a = 0; a < lt.num_storages(); ++a) {
    for (int b = a; b < lt.num_storages(); ++b) {
      bool scalar = false;
      for (int t = 0; t < L && !scalar; ++t)
        scalar = lt.seg_at_step(a, t) != -1 && lt.seg_at_step(b, t) != -1;
      ASSERT_EQ(lt.overlaps(a, b), scalar) << "sids " << a << ", " << b;
      ASSERT_EQ(lt.overlaps(b, a), scalar);
    }
  }
}

}  // namespace
}  // namespace salsa
