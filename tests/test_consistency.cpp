// Cross-module consistency properties, checked over every benchmark and
// several binding states: the connection enumeration, the netlist routing
// tables, the mux-merge activity model, the controller statistics and the
// cost metrics must all tell the same story about one binding.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "core/initial.h"
#include "core/moves.h"
#include "core/mux_merge.h"
#include "core/verify.h"
#include "datapath/controller.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Case {
  const char* name;
  Cdfg (*make)();
  int extra_len;
  int extra_regs;
  int scramble;  // random moves applied before checking
};

class Consistency : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const Case& c = GetParam();
    g_ = std::make_unique<Cdfg>(c.make());
    HwSpec hw;
    const int len = min_schedule_length(*g_, hw) + c.extra_len;
    sched_ = std::make_unique<Schedule>(
        schedule_min_fu(*g_, hw, len).schedule);
    prob_ = std::make_unique<AllocProblem>(
        *sched_, FuPool::standard(peak_fu_demand(*sched_)),
        Lifetimes(*sched_).min_registers() + c.extra_regs);
    binding_ = std::make_unique<Binding>(initial_allocation(*prob_));
    Rng rng(static_cast<uint64_t>(c.scramble) * 7 + 1);
    const MoveConfig moves = MoveConfig::salsa_default();
    for (int i = 0; i < c.scramble; ++i)
      apply_random_move(*binding_, moves.pick(rng), rng);
    ASSERT_TRUE(verify(*binding_).empty());
  }

  std::unique_ptr<Cdfg> g_;
  std::unique_ptr<Schedule> sched_;
  std::unique_ptr<AllocProblem> prob_;
  std::unique_ptr<Binding> binding_;
};

TEST_P(Consistency, UsesStayInsideTheSchedule) {
  for (const ConnUse& u : connection_uses(*binding_)) {
    EXPECT_GE(u.step, 0);
    EXPECT_LT(u.step, sched_->length());
  }
}

TEST_P(Consistency, MuxCountEqualsPinSourceExcess) {
  // Recompute the mux metric independently of evaluate_cost.
  std::map<uint64_t, std::set<uint64_t>> pin_sources;
  for (const ConnUse& u : connection_uses(*binding_)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    pin_sources[key_of(u.sink)].insert(key_of(u.src));
  }
  int muxes = 0, conns = 0;
  for (const auto& [pin, srcs] : pin_sources) {
    (void)pin;
    muxes += static_cast<int>(srcs.size()) - 1;
    conns += static_cast<int>(srcs.size());
  }
  const CostBreakdown cost = evaluate_cost(*binding_);
  EXPECT_EQ(cost.muxes, muxes);
  EXPECT_EQ(cost.connections, conns);
}

TEST_P(Consistency, NetlistRoutesEveryUse) {
  Netlist nl(*binding_);
  for (const ConnUse& u : connection_uses(*binding_)) {
    const auto src = nl.source_of(u.sink, u.step);
    ASSERT_TRUE(src.has_value());
    EXPECT_EQ(key_of(*src), key_of(u.src));
  }
  EXPECT_EQ(nl.num_connections(), evaluate_cost(*binding_).connections);
}

TEST_P(Consistency, MergedMuxesNeverNeedTwoSourcesAtOnce) {
  const MuxMergeResult merged = merge_muxes(*binding_);
  // Per merged mux: at every step, all its sinks' demanded sources agree.
  std::map<std::pair<uint64_t, int>, uint64_t> demand;
  for (const ConnUse& u : connection_uses(*binding_)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    demand[{key_of(u.sink), u.step}] = key_of(u.src);
  }
  for (const MergedMux& m : merged.muxes) {
    for (int t = 0; t < sched_->length(); ++t) {
      std::set<uint64_t> wanted;
      for (const Pin& sink : m.sinks) {
        const auto it = demand.find({key_of(sink), t});
        if (it != demand.end()) wanted.insert(it->second);
      }
      EXPECT_LE(wanted.size(), 1u) << "merged mux conflict at step " << t;
    }
  }
}

TEST_P(Consistency, MergedMuxSourcesCoverSinkDemands) {
  const MuxMergeResult merged = merge_muxes(*binding_);
  std::map<uint64_t, std::set<uint64_t>> pin_sources;
  for (const ConnUse& u : connection_uses(*binding_)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    pin_sources[key_of(u.sink)].insert(key_of(u.src));
  }
  for (const MergedMux& m : merged.muxes) {
    std::set<uint64_t> offered;
    for (const Endpoint& e : m.sources) offered.insert(key_of(e));
    for (const Pin& sink : m.sinks)
      for (uint64_t src : pin_sources[key_of(sink)])
        EXPECT_TRUE(offered.count(src));
  }
}

TEST_P(Consistency, ControllerEnablesMatchRegisterWrites) {
  Netlist nl(*binding_);
  const ControllerStats cs = analyze_controller(nl);
  std::set<int> loading;
  for (const RegLoad& ld : nl.reg_loads()) loading.insert(ld.reg);
  EXPECT_EQ(cs.reg_enable_bits, static_cast<int>(loading.size()));
  EXPECT_GE(cs.distinct_words, 1);
  EXPECT_LE(cs.distinct_words, sched_->length());
}

TEST_P(Consistency, RegsUsedMatchesOccupancy) {
  const Occupancy occ = binding_->occupancy();
  int used = 0;
  for (const auto& per_reg : occ.reg_sto) {
    bool any = false;
    for (int sid : per_reg) any |= sid >= 0;
    used += any;
  }
  EXPECT_EQ(used, binding_->regs_used());
}

INSTANTIATE_TEST_SUITE_P(
    Benches, Consistency,
    ::testing::Values(Case{"ewf_plain", make_ewf, 0, 1, 0},
                      Case{"ewf_scrambled", make_ewf, 0, 2, 400},
                      Case{"ewf_loose", make_ewf, 4, 2, 200},
                      Case{"dct_plain", make_dct, 2, 1, 0},
                      Case{"dct_scrambled", make_dct, 2, 2, 400},
                      Case{"ar_scrambled", make_ar_filter, 1, 2, 300},
                      Case{"fir_scrambled", make_fir8, 1, 2, 300},
                      Case{"diffeq_plain", make_diffeq, 1, 1, 0}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace salsa
