#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "core/moves.h"
#include "io/html_report.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

TEST(HtmlReport, ContainsAllSections) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const std::string html = html_report(b, "EWF allocation");
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<h1>EWF allocation</h1>"), std::string::npos);
  EXPECT_NE(html.find("Functional units"), std::string::npos);
  EXPECT_NE(html.find("Registers"), std::string::npos);
  EXPECT_NE(html.find("Multiplexers"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(HtmlReport, ShowsEveryFuAndRegister) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  const std::string html = html_report(b, "x");
  for (FuId f = 0; f < ctx.prob->fus().size(); ++f)
    EXPECT_NE(html.find("<th>" + ctx.prob->fus().fu(f).name + "</th>"),
              std::string::npos);
  for (RegId r = 0; r < ctx.prob->num_regs(); ++r)
    EXPECT_NE(html.find("<th>R" + std::to_string(r) + "</th>"),
              std::string::npos);
}

TEST(HtmlReport, MarksPassThroughs) {
  Ctx ctx(make_ewf(), 17, 2);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(3);
  // Create transfers and bind at least one pass-through.
  for (int i = 0; i < 100; ++i) apply_random_move(b, MoveKind::kSegMove, rng);
  bool bound = false;
  for (int i = 0; i < 100 && !bound; ++i)
    bound = apply_random_move(b, MoveKind::kBindPass, rng);
  if (!bound) GTEST_SKIP() << "no pass-through materialised";
  const std::string html = html_report(b, "x");
  EXPECT_NE(html.find("class=\"pass\""), std::string::npos);
}

TEST(HtmlReport, EscapesMarkup) {
  Cdfg g("x<y>&z");
  const ValueId a = g.add_input("a<b");
  const ValueId c = g.add_const(1);
  g.add_output(g.add_op(OpKind::kAdd, a, c, "v<1>"), "o");
  g.validate();
  Schedule s = schedule_min_fu(g, HwSpec{}, 3).schedule;
  AllocProblem prob(s, FuPool::standard(peak_fu_demand(s)),
                    Lifetimes(s).min_registers());
  Binding b = initial_allocation(prob);
  const std::string html = html_report(b, g.name());
  EXPECT_NE(html.find("x&lt;y&gt;&amp;z"), std::string::npos);
  EXPECT_EQ(html.find("v<1>"), std::string::npos);
}

TEST(HtmlReport, StepColumnsMatchScheduleLength) {
  Ctx ctx(make_ewf(), 19, 1);
  Binding b = initial_allocation(*ctx.prob);
  const std::string html = html_report(b, "x");
  EXPECT_NE(html.find("<th>18</th>"), std::string::npos);
  EXPECT_EQ(html.find("<th>19</th>"), std::string::npos);
}

}  // namespace
}  // namespace salsa
