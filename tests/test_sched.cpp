#include <gtest/gtest.h>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "sched/asap_alap.h"
#include "sched/force_directed.h"
#include "sched/fu_search.h"
#include "sched/list_scheduler.h"

namespace salsa {
namespace {

Cdfg chain() {
  // in -> add -> mul -> add -> out : cp = 1 + 2 + 1 = 4 plus output read.
  Cdfg g("chain");
  const ValueId in = g.add_input("in");
  const ValueId c = g.add_const(2);
  const ValueId a1 = g.add_op(OpKind::kAdd, in, c, "a1");
  const ValueId m = g.add_op(OpKind::kMul, a1, c, "m");
  const ValueId a2 = g.add_op(OpKind::kAdd, m, c, "a2");
  g.add_output(a2, "o");
  g.validate();
  return g;
}

TEST(AsapAlap, ChainLatencies) {
  Cdfg g = chain();
  HwSpec hw;
  const auto asap = asap_starts(g, hw);
  // a1 at 0, m at 1 (a1 ready 1), a2 at 3 (m ready 3), out at 4.
  EXPECT_EQ(asap[static_cast<size_t>(g.producer(g.node(g.output_nodes()[0]).ins[0]))], 3);
  EXPECT_EQ(min_schedule_length(g, hw), 5);  // a2 ready at 4, read at 4
}

TEST(AsapAlap, AlapTightensToLength) {
  Cdfg g = chain();
  HwSpec hw;
  const int cp = min_schedule_length(g, hw);
  const auto alap = alap_starts(g, hw, cp);
  ASSERT_TRUE(alap.has_value());
  const auto asap = asap_starts(g, hw);
  for (NodeId n : g.operations())
    EXPECT_EQ((*alap)[static_cast<size_t>(n)], asap[static_cast<size_t>(n)])
        << "critical-path schedule should have zero mobility";
  EXPECT_FALSE(alap_starts(g, hw, cp - 1).has_value());
}

TEST(AsapAlap, SlackGrowsWithLength) {
  Cdfg g = chain();
  HwSpec hw;
  const int cp = min_schedule_length(g, hw);
  const auto s = node_slack(g, hw, cp + 3);
  ASSERT_TRUE(s.has_value());
  for (NodeId n : g.operations()) EXPECT_EQ((*s)[static_cast<size_t>(n)], 3);
}

TEST(AsapAlap, PipelinedMulSameLatency) {
  Cdfg g = chain();
  HwSpec np, p;
  p.pipelined_mul = true;
  // Pipelining changes occupancy, not latency: same critical path.
  EXPECT_EQ(min_schedule_length(g, np), min_schedule_length(g, p));
}

TEST(AsapAlap, AntiDependenceExtendsLength) {
  // State read by a long chain, rewritten by a short op: the rewrite must
  // wait for the last read.
  Cdfg g("anti");
  const ValueId in = g.add_input("in");
  const ValueId st = g.add_state("st");
  const ValueId c = g.add_const(1);
  ValueId v = in;
  for (int i = 0; i < 4; ++i) v = g.add_op(OpKind::kAdd, v, c);
  const ValueId late_read = g.add_op(OpKind::kAdd, v, st, "late");
  g.add_output(late_read, "o");
  const ValueId next = g.add_op(OpKind::kAdd, in, c, "next");
  g.set_state_next(st, next);
  g.validate();
  HwSpec hw;
  const auto asap = asap_starts(g, hw);
  // 'late' reads st at step 4; 'next' (delay 1) must not be ready before
  // step 5, so it starts at >= 4 even though its data is ready at 0.
  const NodeId next_node = g.producer(next);
  EXPECT_GE(asap[static_cast<size_t>(next_node)], 4);
}

TEST(ListSchedule, RespectsFuBudget) {
  Cdfg g = make_dct();
  HwSpec hw;
  const auto s = list_schedule(g, hw, 12, FuBudget{3, 4});
  ASSERT_TRUE(s.has_value());
  const FuBudget peak = peak_fu_demand(*s);
  EXPECT_LE(peak.alu, 3);
  EXPECT_LE(peak.mul, 4);
  s->validate();
}

TEST(ListSchedule, InfeasibleBudgetFails) {
  Cdfg g = make_dct();
  HwSpec hw;
  EXPECT_FALSE(list_schedule(g, hw, 8, FuBudget{1, 1}).has_value());
}

TEST(ListSchedule, PipelinedMulPacksTighter) {
  Cdfg g = make_dct();
  HwSpec np, p;
  p.pipelined_mul = true;
  // 16 mults on 2 pipelined units fit lengths where 2 non-pipelined can't.
  EXPECT_TRUE(list_schedule(g, p, 12, FuBudget{3, 2}).has_value());
  EXPECT_FALSE(list_schedule(g, np, 12, FuBudget{3, 2}).has_value());
}

TEST(ForceDirected, ProducesValidMinimalSchedules) {
  for (bool pipe : {false, true}) {
    HwSpec hw;
    hw.pipelined_mul = pipe;
    Cdfg g = make_ewf();
    Schedule s = force_directed_schedule(g, hw, 17);
    s.validate();
    const FuBudget peak = peak_fu_demand(s);
    EXPECT_LE(peak.alu, 4);
    EXPECT_LE(peak.mul, pipe ? 2 : 3);
  }
}

TEST(ForceDirected, ThrowsBelowCriticalPath) {
  Cdfg g = make_ewf();
  HwSpec hw;
  EXPECT_THROW(force_directed_schedule(g, hw, 16), Error);
}

TEST(FuSearch, MatchesKnownEwfEnvelope) {
  Cdfg g = make_ewf();
  HwSpec hw;
  auto r17 = schedule_min_fu(g, hw, 17);
  EXPECT_EQ(r17.fus.alu, 3);
  EXPECT_EQ(r17.fus.mul, 2);
  auto r21 = schedule_min_fu(g, hw, 21);
  EXPECT_LE(r21.fus.alu, 2);
  EXPECT_LE(r21.fus.mul, 2);
}

TEST(FuSearch, LongerScheduleNeverNeedsMore) {
  Cdfg g = make_dct();
  HwSpec hw;
  auto a = schedule_min_fu(g, hw, 8);
  auto b = schedule_min_fu(g, hw, 14);
  EXPECT_LE(b.fus.alu + 4 * b.fus.mul, a.fus.alu + 4 * a.fus.mul);
}

struct BenchCase {
  const char* name;
  Cdfg (*make)();
  bool pipelined;
  int extra_steps;
};

class ScheduleAllBenchmarks : public ::testing::TestWithParam<BenchCase> {};

TEST_P(ScheduleAllBenchmarks, MinFuScheduleValidates) {
  const BenchCase& bc = GetParam();
  Cdfg g = bc.make();
  HwSpec hw;
  hw.pipelined_mul = bc.pipelined;
  const int L = min_schedule_length(g, hw) + bc.extra_steps;
  auto r = schedule_min_fu(g, hw, L);
  r.schedule.validate();
  const FuBudget peak = peak_fu_demand(r.schedule);
  EXPECT_EQ(peak.alu, r.fus.alu);
  EXPECT_EQ(peak.mul, r.fus.mul);
  EXPECT_GE(r.fus.alu, g.count(OpKind::kAdd) + g.count(OpKind::kSub) > 0 ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    Benches, ScheduleAllBenchmarks,
    ::testing::Values(BenchCase{"ewf0", make_ewf, false, 0},
                      BenchCase{"ewf2", make_ewf, false, 2},
                      BenchCase{"ewf4", make_ewf, false, 4},
                      BenchCase{"ewfp0", make_ewf, true, 0},
                      BenchCase{"ewfp2", make_ewf, true, 2},
                      BenchCase{"dct0", make_dct, false, 0},
                      BenchCase{"dct3", make_dct, false, 3},
                      BenchCase{"dctp3", make_dct, true, 3},
                      BenchCase{"ar0", make_ar_filter, false, 0},
                      BenchCase{"ar3", make_ar_filter, false, 3},
                      BenchCase{"fir0", make_fir8, false, 0},
                      BenchCase{"fir2", make_fir8, false, 2},
                      BenchCase{"diffeq0", make_diffeq, false, 0},
                      BenchCase{"diffeq2", make_diffeq, false, 2}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace salsa
