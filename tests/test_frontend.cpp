#include <gtest/gtest.h>

#include "cdfg/eval.h"
#include "core/initial.h"
#include "datapath/simulator.h"
#include "frontend/expr.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

TEST(Expr, CompilesStraightLineArithmetic) {
  Cdfg g = compile_expr_string(R"(
design poly
input x
y = 3*x*x + 5*x + 7
out y
)");
  EXPECT_EQ(g.name(), "poly");
  Evaluator ev(g);
  const int64_t in[] = {4};
  EXPECT_EQ(ev.step(in)[0], 3 * 4 * 4 + 5 * 4 + 7);
}

TEST(Expr, PrecedenceAndParentheses) {
  Cdfg g = compile_expr_string(R"(
design prec
input a
input b
y1 = a + b * 3
y2 = (a + b) * 3
y3 = a - b - 1
out y1
out y2
out y3
)");
  Evaluator ev(g);
  const int64_t in[] = {10, 2};
  const auto out = ev.step(in);
  EXPECT_EQ(out[0], 10 + 2 * 3);
  EXPECT_EQ(out[1], (10 + 2) * 3);
  EXPECT_EQ(out[2], 10 - 2 - 1);  // left-associative
}

TEST(Expr, UnaryMinusFoldsLiteralsAndLowersVariables) {
  Cdfg g = compile_expr_string(R"(
design neg
input x
y1 = -3 * x
y2 = -x + 5
out y1
out y2
)");
  Evaluator ev(g);
  const int64_t in[] = {7};
  const auto out = ev.step(in);
  EXPECT_EQ(out[0], -21);
  EXPECT_EQ(out[1], -7 + 5);
}

TEST(Expr, ConstantsAreShared) {
  Cdfg g = compile_expr_string(R"(
design shared
input x
y = 3*x + 3
out y
)");
  EXPECT_EQ(g.count(OpKind::kConst), 1) << "literal 3 must be deduplicated";
}

TEST(Expr, StatesAndUpdates) {
  Cdfg g = compile_expr_string(R"(
design acc
input x
state s
sum = s + x
s := sum
out sum
)");
  const int64_t init[] = {100};
  Evaluator ev(g, init);
  const int64_t one[] = {1};
  EXPECT_EQ(ev.step(one)[0], 101);
  EXPECT_EQ(ev.step(one)[0], 102);
}

TEST(Expr, StateMoveBecomesNop) {
  Cdfg g = compile_expr_string(R"(
design shift
input x
state z1
state z2
y = z1 + z2
z1 := x
z2 := z1
out y
)");
  EXPECT_EQ(g.count(OpKind::kNop), 2);  // both updates are plain moves
  const int64_t init[] = {10, 20};
  Evaluator ev(g, init);
  const int64_t in[] = {1};
  EXPECT_EQ(ev.step(in)[0], 30);   // old z1 + old z2
  EXPECT_EQ(ev.step(in)[0], 11);   // z1=1(x), z2=10(old z1)
}

TEST(Expr, SharedNextValueGetsPrivateCopy) {
  Cdfg g = compile_expr_string(R"(
design twostates
input x
state a
state b
w = x + 1
a := w
b := w
y = a + b
out y
)");
  // The two states must not merge into one storage.
  g.validate();
  EXPECT_EQ(g.state_nodes().size(), 2u);
  const Node& sa = g.node(g.state_nodes()[0]);
  const Node& sb = g.node(g.state_nodes()[1]);
  EXPECT_NE(sa.state_next, sb.state_next);
}

struct ExprError {
  const char* name;
  const char* text;
};

class ExprRejects : public ::testing::TestWithParam<ExprError> {};

TEST_P(ExprRejects, WithLineNumber) {
  try {
    compile_expr_string(GetParam().text);
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("expr error"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExprRejects,
    ::testing::Values(
        ExprError{"unknown_name", "design d\ny = q + 1\nout y\n"},
        ExprError{"reassignment", "design d\ninput x\ny = x\ny = x\nout y\n"},
        ExprError{"update_non_state", "design d\ninput x\nx := x\n"},
        ExprError{"double_update",
                  "design d\ninput x\nstate s\na = s + x\ns := a\ns := a\n"},
        ExprError{"missing_update",
                  "design d\ninput x\nstate s\ny = s + x\nout y\n"},
        ExprError{"bad_char", "design d\ninput x\ny = x @ 2\nout y\n"},
        ExprError{"unbalanced_paren", "design d\ninput x\ny = (x + 1\nout y\n"},
        ExprError{"trailing_tokens", "design d\ninput x\ny = x + 1 2\nout y\n"},
        ExprError{"unknown_output", "design d\ninput x\ny = x + 1\nout z\n"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Expr, CompiledDesignsAllocateAndSimulate) {
  Cdfg g = compile_expr_string(R"(
design lattice
input x
state r1
state r2
t1 = x + 3*r1
t2 = t1 + 5*r2
y = 7*t2 - x
r1 := t1
r2 := t2
out y
)");
  HwSpec hw;
  const int len = min_schedule_length(g, hw) + 1;
  Schedule s = schedule_min_fu(g, hw, len).schedule;
  AllocProblem prob(s, FuPool::standard(peak_fu_demand(s)),
                    Lifetimes(s).min_registers() + 1);
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 5, 3), "");
}

}  // namespace
}  // namespace salsa
