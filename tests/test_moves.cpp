#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/cost.h"
#include "core/initial.h"
#include "core/moves.h"
#include "core/verify.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, bool pipelined, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    HwSpec hw;
    hw.pipelined_mul = pipelined;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

// Property: every move kind preserves binding legality, from any reachable
// state, for any seed.
struct MoveCase {
  const char* name;
  MoveKind kind;
};

class MovePreservesLegality : public ::testing::TestWithParam<MoveCase> {};

TEST_P(MovePreservesLegality, OnEwfWithSpareRegisters) {
  Ctx ctx(make_ewf(), 17, false, 2);
  Rng rng(2024);
  Binding b = initial_allocation(*ctx.prob);
  const MoveConfig all = MoveConfig::salsa_default();
  int applied = 0;
  for (int i = 0; i < 400; ++i) {
    // Interleave: scramble with random moves, then apply the move under
    // test and verify after each application.
    const MoveKind scramble = all.pick(rng);
    apply_random_move(b, scramble, rng);
    if (apply_random_move(b, GetParam().kind, rng)) {
      ++applied;
      const auto bad = verify(b);
      ASSERT_TRUE(bad.empty()) << move_name(GetParam().kind) << ": " << bad[0];
    }
  }
  EXPECT_GT(applied, 0) << "move never found a feasible instance";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MovePreservesLegality,
    ::testing::Values(MoveCase{"F1", MoveKind::kFuExchange},
                      MoveCase{"F2", MoveKind::kFuMove},
                      MoveCase{"F3", MoveKind::kOperandReverse},
                      MoveCase{"F4", MoveKind::kBindPass},
                      MoveCase{"F5", MoveKind::kUnbindPass},
                      MoveCase{"R1", MoveKind::kSegExchange},
                      MoveCase{"R2", MoveKind::kSegMove},
                      MoveCase{"R3", MoveKind::kValExchange},
                      MoveCase{"R4", MoveKind::kValMove},
                      MoveCase{"R5", MoveKind::kValSplit},
                      MoveCase{"R6", MoveKind::kValMerge},
                      MoveCase{"R7", MoveKind::kReadRetarget}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Moves, LongRandomWalkStaysLegalOnDct) {
  Ctx ctx(make_dct(), 10, false, 3);
  Rng rng(7);
  Binding b = initial_allocation(*ctx.prob);
  const MoveConfig all = MoveConfig::salsa_default();
  for (int i = 0; i < 2000; ++i) {
    apply_random_move(b, all.pick(rng), rng);
    if (i % 200 == 0) {
      const auto bad = verify(b);
      ASSERT_TRUE(bad.empty()) << "after " << i << " moves: " << bad[0];
    }
  }
  EXPECT_TRUE(verify(b).empty());
}

TEST(Moves, TraditionalConfigPreservesTraditionalForm) {
  Ctx ctx(make_ewf(), 19, false, 2);
  Rng rng(11);
  Binding b = initial_allocation(*ctx.prob, InitialOptions{.allow_splits = false});
  ASSERT_TRUE(b.is_traditional());
  const MoveConfig trad = MoveConfig::traditional();
  for (int i = 0; i < 800; ++i) {
    apply_random_move(b, trad.pick(rng), rng);
  }
  EXPECT_TRUE(verify(b).empty());
  EXPECT_TRUE(b.is_traditional());
}

TEST(Moves, SplitThenMergeRoundTrips) {
  Ctx ctx(make_ewf(), 17, false, 3);
  Rng rng(3);
  Binding b = initial_allocation(*ctx.prob);
  const double cost0 = evaluate_cost(b).total;
  Binding c = b;
  int splits = 0;
  for (int i = 0; i < 50; ++i)
    splits += apply_random_move(c, MoveKind::kValSplit, rng);
  ASSERT_GT(splits, 0);
  // Merging must be able to remove every copy again.
  for (int i = 0; i < 5000; ++i)
    if (!apply_random_move(c, MoveKind::kValMerge, rng)) break;
  int copies = 0;
  for (int sid = 0; sid < ctx.prob->lifetimes().num_storages(); ++sid)
    for (const auto& seg : c.sto(sid).cells) copies += seg.size() > 1;
  EXPECT_EQ(copies, 0);
  EXPECT_TRUE(verify(c).empty());
  // The merged binding is a plain one-cell-per-segment allocation again, so
  // its register usage cannot exceed the starting point's by more than the
  // scratch registers the walk had available.
  EXPECT_LE(evaluate_cost(c).regs_used, ctx.prob->num_regs());
  (void)cost0;
}

TEST(Moves, OperandReverseTogglesBack) {
  Ctx ctx(make_ewf(), 17, false, 2);
  Rng rng(5);
  Binding b = initial_allocation(*ctx.prob);
  Binding c = b;
  // Two reversals of the same op cancel; with a fixed seed the same op is
  // picked when the state is identical.
  Rng r1(9), r2(9);
  ASSERT_TRUE(apply_random_move(c, MoveKind::kOperandReverse, r1));
  ASSERT_TRUE(apply_random_move(c, MoveKind::kOperandReverse, r2));
  for (NodeId n : ctx.g->operations())
    EXPECT_EQ(b.op(n).swap, c.op(n).swap);
}

TEST(Moves, PassThroughBindAndUnbindInverse) {
  Ctx ctx(make_ewf(), 17, false, 3);
  Rng rng(13);
  Binding b = initial_allocation(*ctx.prob);
  // Create transfers first (segment moves), then bind/unbind passes.
  for (int i = 0; i < 60; ++i) apply_random_move(b, MoveKind::kSegMove, rng);
  const double before = evaluate_cost(b).total;
  Binding c = b;
  int bound = 0;
  for (int i = 0; i < 30; ++i)
    bound += apply_random_move(c, MoveKind::kBindPass, rng);
  if (bound == 0) GTEST_SKIP() << "no transfers to pass through";
  for (int i = 0; i < 500; ++i)
    if (!apply_random_move(c, MoveKind::kUnbindPass, rng)) break;
  EXPECT_DOUBLE_EQ(evaluate_cost(c).total, before);
}

TEST(Moves, ValMoveCollapsesCopies) {
  Ctx ctx(make_ewf(), 17, false, 3);
  Rng rng(17);
  Binding b = initial_allocation(*ctx.prob);
  for (int i = 0; i < 40; ++i) apply_random_move(b, MoveKind::kValSplit, rng);
  for (int i = 0; i < 300; ++i) apply_random_move(b, MoveKind::kValMove, rng);
  EXPECT_TRUE(verify(b).empty());
}

TEST(Moves, ConfigPickRespectsDisabledKinds) {
  MoveConfig c = MoveConfig::no_pass_through();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const MoveKind k = c.pick(rng);
    EXPECT_NE(k, MoveKind::kBindPass);
    EXPECT_NE(k, MoveKind::kUnbindPass);
  }
  MoveConfig s = MoveConfig::no_split();
  for (int i = 0; i < 500; ++i) {
    const MoveKind k = s.pick(rng);
    EXPECT_NE(k, MoveKind::kValSplit);
    EXPECT_NE(k, MoveKind::kValMerge);
  }
}

TEST(Moves, NamesAreStable) {
  EXPECT_STREQ(move_name(MoveKind::kFuExchange), "F1:fu-exchange");
  EXPECT_STREQ(move_name(MoveKind::kValSplit), "R5:value-split");
  EXPECT_STREQ(move_name(MoveKind::kReadRetarget), "R7:read-retarget");
}

}  // namespace
}  // namespace salsa
