// The scaling-corpus generator (frontend/generate.h): cross-platform
// determinism pinned by digest, legality of every generated family under
// the static verifier, and a tier-1 smoke allocation on a ~1k-op cascade
// under a wall-clock guard.
#include "frontend/generate.h"

#include <gtest/gtest.h>

#include <chrono>

#include "core/improver.h"
#include "core/initial.h"
#include "core/lifetime.h"
#include "core/search_engine.h"
#include "core/verify.h"
#include "util/rng.h"

namespace salsa {
namespace {

GenParams params_for(GenFamily f, int target, uint64_t seed) {
  GenParams p;
  p.family = f;
  p.target_ops = target;
  p.seed = seed;
  return p;
}

// Two invocations with the same params must produce byte-identical designs;
// the pinned constants freeze the corpus across platforms and standard
// libraries (generation draws only integer Rng variates — a digest drift
// here means every committed scaling wall is measuring a different design).
TEST(Generate, DeterministicAndDigestPinned) {
  struct Pin {
    GenFamily family;
    int target;
    uint64_t seed;
    uint64_t digest;
  };
  const Pin pins[] = {
      {GenFamily::kFilterCascade, 1000, 1, 0x943d366f9a1ddd82ull},
      {GenFamily::kGemmPipeline, 1000, 1, 0xaf629e18ea6b045full},
      {GenFamily::kLayeredDag, 1000, 1, 0x2c6e914813213111ull},
      {GenFamily::kLayeredDag, 1000, 2, 0x4a72b58d7a9b7e66ull},
  };
  for (const Pin& pin : pins) {
    const GenParams p = params_for(pin.family, pin.target, pin.seed);
    const GeneratedDesign a = generate_design(p);
    const GeneratedDesign b = generate_design(p);
    EXPECT_EQ(design_digest(a), design_digest(b))
        << gen_family_name(pin.family) << " seed " << pin.seed;
    EXPECT_EQ(design_digest(a), pin.digest)
        << gen_family_name(pin.family) << " seed " << pin.seed
        << ": the generated corpus drifted — every committed scaling wall "
           "measures a different design now";
  }
}

// Every family meets its target op count (rounded up to the family's
// granularity) and the generated schedule validates.
TEST(Generate, MeetsTargetAndSchedulesValidate) {
  for (GenFamily f : {GenFamily::kFilterCascade, GenFamily::kGemmPipeline,
                      GenFamily::kLayeredDag}) {
    for (int target : {200, 1200}) {
      const GeneratedDesign d = generate_design(params_for(f, target, 7));
      EXPECT_GE(d.num_ops, target) << gen_family_name(f);
      EXPECT_LT(d.num_ops, target * 2 + 40) << gen_family_name(f);
      EXPECT_NO_THROW(d.schedule->validate()) << gen_family_name(f);
    }
  }
}

// Initial allocations on generated designs pass the static verifier — the
// legality leg of the acceptance criteria.
TEST(Generate, InitialAllocationsVerify) {
  for (GenFamily f : {GenFamily::kFilterCascade, GenFamily::kGemmPipeline,
                      GenFamily::kLayeredDag}) {
    const GeneratedDesign d = generate_design(params_for(f, 600, 3));
    const Binding b =
        initial_allocation(*d.problem, InitialOptions{.seed = 5});
    EXPECT_TRUE(verify(b).empty()) << gen_family_name(f);
  }
}

// Tier-1 smoke: a fixed move budget on a ~1k-op cascade must finish well
// under the guard and end in a verified, no-worse binding. The guard is
// deliberately loose (CI runners, sanitizers); the scaling wall proper
// lives in BENCH_scaling.json.
TEST(Generate, CascadeSmokeAllocationUnderWallClock) {
  const GeneratedDesign d =
      generate_design(params_for(GenFamily::kFilterCascade, 1000, 11));
  const auto t0 = std::chrono::steady_clock::now();
  Binding b = initial_allocation(*d.problem, InitialOptions{.seed = 5});
  SearchEngine eng(b);
  const double start_cost = eng.cost().total;
  Rng rng(17);
  const MoveConfig moves = MoveConfig::salsa_default();
  long committed = 0;
  for (long i = 0; i < 20000; ++i) {
    const std::optional<double> delta = eng.propose(moves.pick(rng), rng);
    if (!delta) continue;
    if (*delta <= 0) {
      eng.commit();
      ++committed;
    } else {
      eng.rollback();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GT(committed, 0);
  EXPECT_LE(eng.cost().total, start_cost);
  EXPECT_TRUE(verify(eng.binding()).empty());
  EXPECT_LT(secs, 120.0) << "1k-op smoke allocation blew the wall-clock guard";
}

}  // namespace
}  // namespace salsa
