#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "datapath/controller.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, int len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    sched = std::make_unique<Schedule>(
        schedule_min_fu(*g, HwSpec{}, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

TEST(Controller, StatsArePlausibleOnEwf) {
  Ctx ctx(make_ewf(), 17, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const ControllerStats cs = analyze_controller(nl);
  // Every used register needs an enable; EWF touches all of them.
  EXPECT_EQ(cs.reg_enable_bits, b.regs_used());
  EXPECT_GT(cs.mux_select_bits, 0);
  // EWF ALUs execute only additions, so they need no op-select bits.
  EXPECT_EQ(cs.fu_select_bits, 0);
  EXPECT_GT(cs.distinct_words, 1);
  EXPECT_LE(cs.distinct_words, ctx.sched->length());
}

TEST(Controller, SingleSourcePinsNeedNoSelectBits) {
  // One op, one register path: zero mux select bits.
  Cdfg g("mini");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(2);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  g.add_output(v, "o");
  g.validate();
  Schedule s = schedule_min_fu(g, HwSpec{}, 3).schedule;
  AllocProblem prob(s, FuPool::standard(peak_fu_demand(s)),
                    Lifetimes(s).min_registers() + 1);
  Binding b = initial_allocation(prob);
  // Keep the two storages in distinct registers so every pin has one source.
  b.sto(prob.lifetimes().storage_of(a)).cells[0][0].reg = 0;
  b.sto(prob.lifetimes().storage_of(v)).cells[0][0].reg = 1;
  Netlist nl(b);
  const ControllerStats cs = analyze_controller(nl);
  EXPECT_EQ(cs.mux_select_bits, 0);
}

TEST(Controller, AluOpSelectBitsOnMixedKinds) {
  // The DCT runs adds and subs on its ALUs: one select bit per mixed ALU.
  Ctx ctx(make_dct(), 9, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  EXPECT_GT(analyze_controller(nl).fu_select_bits, 0);
}

TEST(Controller, MoreMuxesMeansMoreSelectBits) {
  Ctx tight(make_ewf(), 17, 0);
  Ctx loose(make_ewf(), 21, 2);
  const ControllerStats a =
      analyze_controller(Netlist(initial_allocation(*tight.prob)));
  const ControllerStats b =
      analyze_controller(Netlist(initial_allocation(*loose.prob)));
  EXPECT_GT(a.total_bits(), 0);
  EXPECT_GT(b.total_bits(), 0);
}

TEST(Controller, TableListsEveryStep) {
  Ctx ctx(make_diffeq(), 10, 1);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  const std::string table = controller_table(nl);
  for (int t = 0; t < ctx.sched->length(); ++t)
    EXPECT_NE(table.find("step " + std::to_string(t) + ":"),
              std::string::npos);
  EXPECT_NE(table.find("load:"), std::string::npos);
}

TEST(Controller, DistinctWordsDetectRepetition) {
  // A design where several steps are pure holds has fewer distinct words
  // than steps.
  Cdfg g("hold");
  const ValueId a = g.add_input("a");
  const ValueId c = g.add_const(2);
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  g.add_output(v, "o");
  g.validate();
  Schedule s(g, HwSpec{}, 8);
  s.set_start(g.producer(v), 0);
  s.set_start(g.output_nodes()[0], 7);  // value idles in a register
  s.validate();
  AllocProblem prob(s, FuPool::standard(FuBudget{1, 0}), 2);
  Binding b = initial_allocation(prob);
  Netlist nl(b);
  const ControllerStats cs = analyze_controller(nl);
  EXPECT_LT(cs.distinct_words, 8);
}

}  // namespace
}  // namespace salsa
