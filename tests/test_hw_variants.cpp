// Non-default hardware assumptions: two-step adders, three-step multipliers,
// constant-charging cost model, and the unrolled EWF. The whole pipeline —
// scheduling, lifetimes, allocation, simulation — must stay consistent under
// every timing variant.
#include <gtest/gtest.h>

#include <memory>

#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "cdfg/eval.h"
#include "core/allocator.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa {
namespace {

struct Ctx {
  std::unique_ptr<Cdfg> g;
  std::unique_ptr<Schedule> sched;
  std::unique_ptr<AllocProblem> prob;

  Ctx(Cdfg graph, HwSpec hw, int extra_len, int extra_regs) {
    g = std::make_unique<Cdfg>(std::move(graph));
    const int len = min_schedule_length(*g, hw) + extra_len;
    sched = std::make_unique<Schedule>(schedule_min_fu(*g, hw, len).schedule);
    prob = std::make_unique<AllocProblem>(
        *sched, FuPool::standard(peak_fu_demand(*sched)),
        Lifetimes(*sched).min_registers() + extra_regs);
  }
};

TEST(HwVariants, SlowAdders) {
  HwSpec hw;
  hw.add_delay = 2;
  Cdfg g = make_diffeq();
  EXPECT_GT(min_schedule_length(g, hw), min_schedule_length(g, HwSpec{}));
  Ctx ctx(make_diffeq(), hw, 1, 1);
  Binding b = initial_allocation(*ctx.prob);
  check_legal(b);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 4, 3), "");
}

TEST(HwVariants, SlowAddersForbidPassThroughs) {
  // With two-step adders no FU class forwards combinationally in one step:
  // F4 must find no candidates and verify must reject a forced one.
  HwSpec hw;
  hw.add_delay = 2;
  Ctx ctx(make_ewf(), hw, 2, 2);
  Binding b = initial_allocation(*ctx.prob);
  Rng rng(1);
  // Manufacture transfers, then check the move never binds a pass-through.
  for (int i = 0; i < 50; ++i) apply_random_move(b, MoveKind::kSegMove, rng);
  for (int i = 0; i < 50; ++i)
    EXPECT_FALSE(apply_random_move(b, MoveKind::kBindPass, rng));
  // And a hand-forced pass-through is illegal.
  const Lifetimes& lt = ctx.prob->lifetimes();
  for (int sid = 0; sid < lt.num_storages() ; ++sid) {
    StorageBinding& sb = b.sto(sid);
    for (size_t seg = 1; seg < sb.cells.size(); ++seg) {
      Cell& c = sb.cells[seg][0];
      const Cell& parent = sb.cells[seg - 1][static_cast<size_t>(c.parent)];
      if (parent.reg == c.reg) continue;
      c.via = ctx.prob->fus().pass_capable()[0];
      EXPECT_FALSE(verify(b).empty());
      return;
    }
  }
  GTEST_SKIP() << "no transfer cell materialised";
}

TEST(HwVariants, ThreeCycleMultipliers) {
  HwSpec hw;
  hw.mul_delay = 3;
  Ctx ctx(make_diffeq(), hw, 2, 2);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 4, 5), "");
}

TEST(HwVariants, ThreeCyclePipelinedMultipliers) {
  HwSpec hw;
  hw.mul_delay = 3;
  hw.pipelined_mul = true;
  Ctx ctx(make_ewf(), hw, 3, 2);
  Binding b = initial_allocation(*ctx.prob);
  Netlist nl(b);
  EXPECT_EQ(random_equivalence_check(nl, 4, 7), "");
}

TEST(HwVariants, ChargedConstantsRaiseCost) {
  Cdfg g = make_ewf();
  HwSpec hw;
  Schedule s = schedule_min_fu(g, hw, 17).schedule;
  const int regs = Lifetimes(s).min_registers() + 1;
  CostWeights charged;
  charged.constants_cost = true;
  AllocProblem free_prob(s, FuPool::standard(peak_fu_demand(s)), regs);
  AllocProblem charged_prob(s, FuPool::standard(peak_fu_demand(s)), regs,
                            charged);
  Binding b1 = initial_allocation(free_prob);
  // Same binding, different accounting: the eight coefficient inputs add
  // connections (and possibly muxes) when charged.
  const CostBreakdown free_cost = evaluate_cost(b1);
  Binding charged_binding(charged_prob);
  // Rebuild the identical binding on the charged problem.
  for (NodeId n : g.operations()) charged_binding.op(n) = b1.op(n);
  for (int sid = 0; sid < free_prob.lifetimes().num_storages(); ++sid)
    charged_binding.sto(sid) = b1.sto(sid);
  const CostBreakdown charged_cost = evaluate_cost(charged_binding);
  EXPECT_GT(charged_cost.connections, free_cost.connections);
  EXPECT_GE(charged_cost.muxes, free_cost.muxes);
}

TEST(HwVariants, UnrolledEwfCensusAndBehaviour) {
  Cdfg g2 = make_ewf_unrolled(2);
  EXPECT_EQ(g2.count(OpKind::kAdd), 52);
  EXPECT_EQ(g2.count(OpKind::kMul), 16);
  EXPECT_EQ(g2.input_nodes().size(), 2u);
  EXPECT_EQ(g2.output_nodes().size(), 2u);
  EXPECT_EQ(g2.state_nodes().size(), 7u);
  // One unrolled iteration == two plain iterations.
  Cdfg g1 = make_ewf();
  Evaluator e1(g1), e2(g2);
  Rng rng(9);
  for (int it = 0; it < 3; ++it) {
    const int64_t xa = static_cast<int64_t>(rng.next() % 100);
    const int64_t xb = static_cast<int64_t>(rng.next() % 100);
    const int64_t ina[] = {xa};
    const int64_t inb[] = {xb};
    const auto ya = e1.step(ina);
    const auto yb = e1.step(inb);
    const int64_t in2[] = {xa, xb};
    const auto y2 = e2.step(in2);
    EXPECT_EQ(y2[0], ya[0]);
    EXPECT_EQ(y2[1], yb[0]);
  }
}

TEST(HwVariants, UnrolledEwfAllocatesAndSimulates) {
  HwSpec hw;
  Cdfg g = make_ewf_unrolled(2);
  const int cp = min_schedule_length(g, hw);
  Ctx ctx(make_ewf_unrolled(2), hw, 2, 1);
  EXPECT_GE(cp, 17);
  AllocatorOptions opts;
  opts.improve.max_trials = 3;
  opts.improve.moves_per_trial = 600;
  const AllocationResult res = allocate(*ctx.prob, opts);
  EXPECT_TRUE(verify(res.binding).empty());
  Netlist nl(res.binding);
  EXPECT_EQ(random_equivalence_check(nl, 4, 11), "");
}

}  // namespace
}  // namespace salsa
