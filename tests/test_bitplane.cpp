// Differential tests for the packed bitplane kernels (util/bitplane.h):
// every word-masked operation is compared against a per-bit boolean model
// over randomized shapes that cross word boundaries, the cyclic wrap
// decomposition is exercised at its edges (zero-length, full-period,
// boundary-straddling), and the bitplane_hooks fault injection is proven to
// produce exactly the one-bit-short corruption the auditor's
// packed-vs-scalar check exists to catch. The suite runs under both the
// packed build and -DSALSA_BITPLANE_SCALAR=ON (the scalar-fallback CI job),
// so both implementations are held to the same model.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/bitplane.h"
#include "util/bits.h"
#include "util/rng.h"

namespace salsa {
namespace {

// Per-bit boolean model of one plane row.
using ModelRow = std::vector<bool>;

ModelRow model_of(const BitPlane& p, int r) {
  ModelRow m(static_cast<size_t>(p.bits()));
  for (int b = 0; b < p.bits(); ++b) m[static_cast<size_t>(b)] = p.test(r, b);
  return m;
}

void expect_row_matches(const BitPlane& p, int r, const ModelRow& m) {
  for (int b = 0; b < p.bits(); ++b)
    ASSERT_EQ(p.test(r, b), m[static_cast<size_t>(b)])
        << "row " << r << " bit " << b;
}

// Padding bits past bits() must stay zero after every mutator, or the
// word-level queries would see garbage.
void expect_padding_clear(const BitPlane& p, int r) {
  if (p.bits() == p.stride() * 64) return;
  const uint64_t last = p.row(r)[p.stride() - 1];
  const int used = p.bits() - (p.stride() - 1) * 64;
  EXPECT_EQ(last >> used, 0ull) << "padding bits of row " << r << " are set";
}

TEST(Bits, PopcountAndCtzMatchNaive) {
  Rng rng(7);
  EXPECT_EQ(popcount64(0ull), 0);
  EXPECT_EQ(popcount64(~0ull), 64);
  EXPECT_EQ(ctz64(1ull), 0);
  EXPECT_EQ(ctz64(1ull << 63), 63);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t w = rng.next();
    int pop = 0;
    for (int b = 0; b < 64; ++b) pop += (w >> b) & 1ull;
    EXPECT_EQ(popcount64(w), pop);
    if (w != 0) {
      int tz = 0;
      while (((w >> tz) & 1ull) == 0) ++tz;
      EXPECT_EQ(ctz64(w), tz);
    }
  }
}

TEST(BitPlane, RangedOpsMatchPerBitModel) {
  Rng rng(11);
  // Shapes straddling one-word, exact-word and multi-word strides.
  for (const int bits : {1, 7, 63, 64, 65, 128, 130}) {
    BitPlane p;
    p.resize(3, bits);
    std::vector<ModelRow> m(3, ModelRow(static_cast<size_t>(bits)));
    for (int iter = 0; iter < 500; ++iter) {
      const int r = rng.uniform(3);
      const int start = rng.uniform(bits);
      const int len = rng.uniform(bits - start + 1);
      switch (rng.uniform(4)) {
        case 0:
          p.set_range(r, start, len);
          for (int b = start; b < start + len; ++b)
            m[static_cast<size_t>(r)][static_cast<size_t>(b)] = true;
          break;
        case 1:
          p.clear_range(r, start, len);
          for (int b = start; b < start + len; ++b)
            m[static_cast<size_t>(r)][static_cast<size_t>(b)] = false;
          break;
        case 2: {
          const int wlen = rng.uniform(bits + 1);
          p.set_range_wrap(r, start, wlen);
          for (int i = 0; i < wlen; ++i)
            m[static_cast<size_t>(r)][static_cast<size_t>((start + i) % bits)] =
                true;
          break;
        }
        case 3: {
          const int b = rng.uniform(bits);
          if (rng.chance(0.5)) {
            p.set(r, b);
            m[static_cast<size_t>(r)][static_cast<size_t>(b)] = true;
          } else {
            p.clear(r, b);
            m[static_cast<size_t>(r)][static_cast<size_t>(b)] = false;
          }
          break;
        }
      }
      // Queries agree with the model after every mutation.
      const int qr = rng.uniform(3);
      expect_row_matches(p, qr, m[static_cast<size_t>(qr)]);
      expect_padding_clear(p, qr);
      const int expect_pop = static_cast<int>(
          std::count(m[static_cast<size_t>(qr)].begin(),
                     m[static_cast<size_t>(qr)].end(), true));
      EXPECT_EQ(p.popcount_row(qr), expect_pop);
      const int qs = rng.uniform(bits);
      const int ql = rng.uniform(bits - qs + 1);
      bool any = false;
      for (int b = qs; b < qs + ql; ++b)
        any = any || m[static_cast<size_t>(qr)][static_cast<size_t>(b)];
      EXPECT_EQ(p.any_in_range(qr, qs, ql), any);
    }
  }
}

TEST(BitPlane, WrapDecompositionEdges) {
  BitPlane p;
  p.resize(4, 17);

  // Zero-length: no-op.
  p.set_range_wrap(0, 5, 0);
  EXPECT_EQ(p.popcount_row(0), 0);

  // Full period starting mid-cycle: every bit set.
  p.set_range_wrap(1, 9, 17);
  EXPECT_EQ(p.popcount_row(1), 17);

  // Wrap-around interval [15, 15+5) mod 17 = {15, 16, 0, 1, 2}.
  p.set_range_wrap(2, 15, 5);
  EXPECT_EQ(p.popcount_row(2), 5);
  for (int b : {15, 16, 0, 1, 2}) EXPECT_TRUE(p.test(2, b)) << b;
  for (int b : {3, 14}) EXPECT_FALSE(p.test(2, b)) << b;

  // Tail-only interval touching the last step exactly.
  p.set_range_wrap(3, 12, 5);  // {12..16}, no wrap
  EXPECT_EQ(p.popcount_row(3), 5);
  EXPECT_TRUE(p.test(3, 16));
  EXPECT_FALSE(p.test(3, 0));
}

TEST(BitPlane, AndAnyAndOrAssign) {
  Rng rng(23);
  BitPlane p, q;
  const int bits = 130;
  p.resize(2, bits);
  q.resize(2, bits);
  for (int i = 0; i < 40; ++i) {
    p.set(0, rng.uniform(bits));
    q.set(0, rng.uniform(bits));
  }
  bool expect_any = false;
  for (int b = 0; b < bits; ++b)
    expect_any = expect_any || (p.test(0, b) && q.test(0, b));
  EXPECT_EQ(p.and_any(0, q.row(0)), expect_any);
  EXPECT_FALSE(p.and_any(1, q.row(0)));  // empty row intersects nothing

  ModelRow want = model_of(p, 0);
  for (int b = 0; b < bits; ++b)
    if (q.test(0, b)) want[static_cast<size_t>(b)] = true;
  p.or_assign(0, q.row(0));
  expect_row_matches(p, 0, want);

  // words_and_any / words_and_andnot_any against the same model.
  BitPlane c;
  c.resize(1, bits);
  for (int i = 0; i < 20; ++i) c.set(0, rng.uniform(bits));
  bool expect_and = false, expect_andnot = false;
  for (int b = 0; b < bits; ++b) {
    const bool pb = p.test(0, b), qb = q.test(0, b), cb = c.test(0, b);
    expect_and = expect_and || (pb && qb);
    expect_andnot = expect_andnot || (pb && qb && !cb);
  }
  EXPECT_EQ(words_and_any(p.row(0), q.row(0), p.stride()), expect_and);
  EXPECT_EQ(words_and_andnot_any(p.row(0), q.row(0), c.row(0), p.stride()),
            expect_andnot);
}

TEST(BitPlane, EqualityComparesShapeAndContent) {
  BitPlane a, b;
  a.resize(2, 70);
  b.resize(2, 70);
  EXPECT_TRUE(a == b);
  a.set(1, 69);
  EXPECT_FALSE(a == b);
  b.set(1, 69);
  EXPECT_TRUE(a == b);
  BitPlane c;
  c.resize(2, 71);
  EXPECT_FALSE(a == c);
}

TEST(BitPlaneHooks, MutationLeavesLastBitStaleAndDisarms) {
  BitPlane p;
  p.resize(1, 64);
  p.mark_mutation_target();
  const long count_before = bitplane_hooks::word_update_count;
  bitplane_hooks::break_word_update_after = count_before + 2;

  // 1st ranged update: armed but not yet the Nth — intact.
  p.set_range(0, 0, 8);
  EXPECT_EQ(p.popcount_row(0), 8);

  // 2nd ranged update fires: per-bit loop stops one bit short, so the
  // window's last bit stays clear — exactly a fencepost-broken mask.
  p.set_range(0, 20, 5);
  EXPECT_TRUE(p.test(0, 20));
  EXPECT_TRUE(p.test(0, 23));
  EXPECT_FALSE(p.test(0, 24)) << "sabotaged set_range must miss the last bit";

  // One-shot: the hook disarmed itself; further updates are intact.
  EXPECT_EQ(bitplane_hooks::break_word_update_after, 0);
  p.set_range(0, 40, 4);
  EXPECT_TRUE(p.test(0, 43));
}

TEST(BitPlaneHooks, UnmarkedPlanesAreNeverSabotaged) {
  BitPlane p;
  p.resize(1, 64);  // not marked
  const long count_before = bitplane_hooks::word_update_count;
  bitplane_hooks::break_word_update_after = count_before + 1;
  p.set_range(0, 0, 8);
  p.clear_range(0, 0, 8);
  EXPECT_EQ(p.popcount_row(0), 0);
  // Ineligible updates neither fire nor advance the counter.
  EXPECT_EQ(bitplane_hooks::word_update_count, count_before);
  EXPECT_NE(bitplane_hooks::break_word_update_after, 0);
  bitplane_hooks::break_word_update_after = 0;  // disarm for later tests
}

TEST(BitWords, GrowSetTestAndIntersect) {
  BitWords a;
  EXPECT_FALSE(a.any());
  EXPECT_FALSE(a.test(500));
  a.set(3);
  a.set(200);  // grows to cover word 3
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(200));
  EXPECT_FALSE(a.test(199));
  EXPECT_TRUE(a.any());
  EXPECT_GE(a.words(), 4u);

  // clear_all keeps capacity but empties the set.
  const size_t cap = a.words();
  a.clear_all();
  EXPECT_FALSE(a.any());
  EXPECT_EQ(a.words(), cap);

  // Intersection over differing lengths (absent words are zero), matching
  // the sorted-vector intersect it replaced.
  Rng rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    BitWords x, y;
    std::vector<int> xs, ys;
    for (int i = rng.uniform(6); i-- > 0;) {
      const int bit = rng.uniform(400);
      x.set(bit);
      xs.push_back(bit);
    }
    for (int i = rng.uniform(6); i-- > 0;) {
      const int bit = rng.uniform(400);
      y.set(bit);
      ys.push_back(bit);
    }
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    std::vector<int> common;
    std::set_intersection(xs.begin(), xs.end(), ys.begin(), ys.end(),
                          std::back_inserter(common));
    EXPECT_EQ(bitwords_intersect(x, y), !common.empty());
    EXPECT_EQ(bitwords_intersect(y, x), !common.empty());
  }
}

// The batch-scoring kernels (words_or_accumulate + popcount_words) against
// their naive per-bit references, across word counts straddling the unroll
// widths (the AVX2 leg runs four words per vector op, popcount_words four
// accumulators per round) so every remainder-tail length is exercised.
TEST(WordKernels, OrAccumulateAndPopcountMatchNaive) {
  Rng rng(47);
  for (const int n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 13}) {
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<uint64_t> acc(static_cast<size_t>(n)),
          row(static_cast<size_t>(n));
      for (uint64_t& w : acc) w = rng.next();
      for (uint64_t& w : row) w = rng.next();
      std::vector<uint64_t> want = acc;
      int want_bits = 0;
      for (size_t i = 0; i < want.size(); ++i) {
        want[i] |= row[i];
        for (int bit = 0; bit < 64; ++bit)
          want_bits += static_cast<int>((want[i] >> bit) & 1ull);
      }
      words_or_accumulate(acc.data(), row.data(), n);
      EXPECT_EQ(acc, want) << "n=" << n;
      EXPECT_EQ(popcount_words(acc.data(), n), want_bits) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace salsa
