// Census and structural checks of the remaining benchmark suite, generator
// properties of the random-CDFG factory, and the par-invariance regression
// for the pool-aware table generators.
#include <gtest/gtest.h>

#include "bench_suite/ar_filter.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/fir.h"
#include "bench_suite/harness.h"
#include "bench_suite/random_cdfg.h"
#include "cdfg/eval.h"
#include "sched/asap_alap.h"

namespace salsa {
namespace {

TEST(Diffeq, Census) {
  Cdfg g = make_diffeq();
  EXPECT_EQ(g.count(OpKind::kMul), 6);
  EXPECT_EQ(g.count(OpKind::kAdd), 2);
  EXPECT_EQ(g.count(OpKind::kSub), 2);
  EXPECT_EQ(g.input_nodes().size(), 4u);
  EXPECT_EQ(g.output_nodes().size(), 3u);
}

TEST(Diffeq, EulerStepValues) {
  Cdfg g = make_diffeq();
  Evaluator ev(g);
  // x=1, y=2, u=3, dx=4.
  const int64_t in[] = {1, 2, 3, 4};
  const auto out = ev.step(in);  // x1, y1, u1
  EXPECT_EQ(out[0], 1 + 4);
  EXPECT_EQ(out[1], 2 + 3 * 4);
  EXPECT_EQ(out[2], 3 - 3 * 1 * 3 * 4 - 3 * 2 * 4);
}

TEST(ArFilter, Census) {
  Cdfg g = make_ar_filter();
  EXPECT_EQ(g.count(OpKind::kMul), 16);
  EXPECT_EQ(g.count(OpKind::kAdd), 12);
  EXPECT_EQ(g.state_nodes().size(), 4u);
  EXPECT_EQ(static_cast<int>(g.operations().size()), 28);
}

TEST(ArFilter, StateRecurrenceIsObservable) {
  Cdfg g = make_ar_filter();
  Evaluator ev(g);
  const int64_t in[] = {1};
  const auto y0 = ev.step(in);
  const auto y1 = ev.step(in);
  EXPECT_NE(y0[0], y1[0]) << "state feedback must alter the second output";
}

TEST(Fir8, Census) {
  Cdfg g = make_fir8();
  EXPECT_EQ(g.count(OpKind::kMul), 8);
  EXPECT_EQ(g.count(OpKind::kAdd), 7);
  EXPECT_EQ(g.count(OpKind::kNop), 7);
  EXPECT_EQ(g.state_nodes().size(), 7u);
}

TEST(Fir8, ComputesTappedDelaySum) {
  // Coefficients are 2 (current) then 3,5,7,9,11,13,15 down the delay line.
  Cdfg g = make_fir8();
  Evaluator ev(g);
  std::vector<int64_t> ys;
  for (int i = 0; i < 4; ++i) {
    const int64_t in[] = {i == 0 ? 1 : 0};  // impulse
    ys.push_back(ev.step(in)[0]);
  }
  EXPECT_EQ(ys[0], 2);  // c0 * 1
  EXPECT_EQ(ys[1], 3);  // first delay tap
  EXPECT_EQ(ys[2], 5);
  EXPECT_EQ(ys[3], 7);
}

TEST(Fir8, ShiftChainSchedulesDescending) {
  // The anti-dependences force shift_k to read z_{k-1} no later than the
  // step z_{k-1} is rewritten; a legal schedule exists and validates.
  Cdfg g = make_fir8();
  HwSpec hw;
  const int cp = min_schedule_length(g, hw);
  EXPECT_GE(cp, 8);
  EXPECT_LE(cp, 12);
}

class RandomCdfgProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomCdfgProperties, AlwaysWellFormedAndSchedulable) {
  RandomCdfgParams p;
  p.seed = static_cast<uint64_t>(GetParam());
  p.num_ops = 8 + GetParam() % 17;
  p.num_states = GetParam() % 4;
  p.num_inputs = 1 + GetParam() % 4;
  p.num_consts = GetParam() % 3;
  Cdfg g = make_random_cdfg(p);
  g.validate();
  EXPECT_EQ(g.state_nodes().size(), static_cast<size_t>(p.num_states));
  // Every non-constant value is consumed, becomes a state, or is an output.
  for (ValueId v = 0; v < g.num_values(); ++v) {
    if (g.is_const_value(v)) continue;
    bool used = !g.value(v).consumers.empty();
    for (NodeId sn : g.state_nodes())
      used |= g.node(sn).state_next == v || g.node(sn).out == v;
    used |= g.node(g.producer(v)).kind == OpKind::kInput;
    EXPECT_TRUE(used) << "value " << g.value(v).name << " is dead";
  }
  // Schedulable: the anti-dependence wiring never creates positive cycles.
  HwSpec hw;
  EXPECT_GT(min_schedule_length(g, hw), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCdfgProperties, ::testing::Range(1, 40));

// --- pool-aware table generators -------------------------------------------

TEST(TableRows, Table3RowOrderAndValuesThreadCountInvariant) {
  // The config-grid fan-out must not affect what the tables print: rows are
  // seeded by grid position and collected in index order, so the full row
  // set is byte-identical for every thread count.
  benchharness::TableBudget budget;
  budget.max_trials = 2;
  budget.moves_per_trial = 150;
  budget.restarts = 1;
  const auto seq = benchharness::table3_rows(budget, Parallelism{1});
  ASSERT_EQ(seq.size(), 8u);  // 4 schedules x {0, 2} spare registers
  for (int threads : {2, 8}) {
    const auto par = benchharness::table3_rows(budget, Parallelism{threads});
    EXPECT_EQ(par, seq) << "threads=" << threads;
  }
  // The grid enumerates schedules outermost, in ascending length.
  for (size_t i = 1; i < seq.size(); ++i)
    EXPECT_LE(seq[i - 1].steps, seq[i].steps);
}

TEST(TableRows, Table2RowOrderAndValuesThreadCountInvariant) {
  benchharness::TableBudget budget;
  budget.max_trials = 2;
  budget.moves_per_trial = 150;
  budget.restarts = 1;
  const auto seq = benchharness::table2_rows(budget, Parallelism{1});
  ASSERT_EQ(seq.size(), 15u);  // 5 schedules x {0, 1, 2} spare registers
  const auto par = benchharness::table2_rows(budget, Parallelism{4});
  EXPECT_EQ(par, seq);
  // Spot-check the grid shape the renderer's separators rely on.
  EXPECT_EQ(seq[0].steps, 17);
  EXPECT_FALSE(seq[0].pipelined);
  EXPECT_TRUE(seq[3].pipelined);
  EXPECT_EQ(seq[14].steps, 21);
}

}  // namespace
}  // namespace salsa
