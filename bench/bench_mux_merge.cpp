// Multiplexer-merging post-pass (Section 4): equivalent 2-1 mux counts
// before and after the greedy merge, across the benchmark suite, for both
// binding models.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/diffeq.h"
#include "bench_suite/ewf.h"
#include "bench_suite/fir.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Mux merging — 2-1 equivalents before/after the post-pass\n\n");
  struct Case {
    const char* name;
    Cdfg (*make)();
    int extra_len;
    int extra_regs;
  };
  const Case cases[] = {
      {"ewf@17", make_ewf, 0, 1},    {"ewf@19", make_ewf, 2, 1},
      {"dct@9", make_dct, 2, 2},     {"ar@16", make_ar_filter, 1, 2},
      {"fir8", make_fir8, 1, 2},     {"diffeq", make_diffeq, 1, 1},
  };
  TextTable t;
  t.header({"workload", "model", "before", "after", "mux groups"});
  for (const Case& c : cases) {
    HwSpec hw;
    const int len = min_schedule_length(c.make(), hw) + c.extra_len;
    ProblemBundle b = make_problem(c.make(), len, false, c.extra_regs);
    const Comparison cmp = run_comparison(*b.problem, 7);
    if (cmp.traditional_feasible)
      t.row({c.name, "traditional",
             std::to_string(cmp.traditional.merging.muxes_before),
             std::to_string(cmp.traditional.merging.muxes_after),
             std::to_string(cmp.traditional.merging.muxes.size())});
    t.row({c.name, "salsa", std::to_string(cmp.salsa.merging.muxes_before),
           std::to_string(cmp.salsa.merging.muxes_after),
           std::to_string(cmp.salsa.merging.muxes.size())});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
