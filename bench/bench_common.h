// Forwarder: the benchmark harness plumbing moved into the library proper
// (src/bench_suite/harness.h) so the pool-aware table generators and their
// par-invariance regression test can share it. Bench mains keep including
// "bench_common.h".
#pragma once

#include "bench_suite/harness.h"  // IWYU pragma: export
