// Shared plumbing for the benchmark harnesses: problem construction from a
// (benchmark, length, pipelining, spare registers) tuple and the standard
// traditional-vs-SALSA allocation pair used by the table generators.
//
// The SALSA run always additionally refines the traditional winner with the
// extended move set and keeps the better result — the extended binding model
// strictly subsumes the traditional one, so reporting anything worse would
// be a search artifact, not a model property.
#pragma once

#include <memory>
#include <string>

#include "baseline/traditional.h"
#include "core/allocator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

namespace salsa::benchharness {

struct ProblemBundle {
  std::unique_ptr<Cdfg> graph;
  std::unique_ptr<Schedule> schedule;
  std::unique_ptr<AllocProblem> problem;
  FuBudget fus;
  int min_regs = 0;
};

inline ProblemBundle make_problem(Cdfg graph, int length, bool pipelined,
                                  int extra_regs) {
  ProblemBundle b;
  b.graph = std::make_unique<Cdfg>(std::move(graph));
  HwSpec hw;
  hw.pipelined_mul = pipelined;
  const FuSearchResult sr = schedule_min_fu(*b.graph, hw, length);
  b.schedule = std::make_unique<Schedule>(sr.schedule);
  b.fus = sr.fus;
  b.min_regs = Lifetimes(*b.schedule).min_registers();
  b.problem = std::make_unique<AllocProblem>(
      *b.schedule, FuPool::standard(b.fus), b.min_regs + extra_regs);
  return b;
}

struct Comparison {
  AllocationResult traditional;
  AllocationResult salsa;
  bool traditional_feasible = true;
};

inline ImproveParams standard_improve(uint64_t seed) {
  ImproveParams p;
  p.max_trials = 12;
  p.moves_per_trial = 5000;
  p.uphill_per_trial = 8;
  p.seed = seed;
  return p;
}

inline Comparison run_comparison(const AllocProblem& prob, uint64_t seed) {
  Comparison out{AllocationResult{Binding(prob), {}, {}, {}},
                 AllocationResult{Binding(prob), {}, {}, {}}, true};
  TraditionalOptions topt;
  topt.improve = standard_improve(seed);
  topt.restarts = 2;
  try {
    out.traditional = allocate_traditional(prob, topt);
  } catch (const Error&) {
    // No contiguous placement exists within the register budget: the
    // traditional model cannot implement this row at all (the situation the
    // paper's tightest Table 2 rows exploit).
    out.traditional_feasible = false;
  }

  AllocatorOptions sopt;
  sopt.improve = standard_improve(seed + 1);
  sopt.restarts = 2;
  out.salsa = allocate(prob, sopt);
  if (out.traditional_feasible) {
    ImproveParams refine = standard_improve(seed + 2);
    ImproveResult r = improve(out.traditional.binding, refine);
    if (r.cost.total < out.salsa.cost.total) {
      out.salsa.binding = std::move(r.best);
      out.salsa.cost = r.cost;
      out.salsa.merging = merge_muxes(out.salsa.binding);
    }
  }
  return out;
}

}  // namespace salsa::benchharness
