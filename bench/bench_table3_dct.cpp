// Regenerates the paper's Table 3: discrete-cosine-transform allocations for
// four schedules (Section 5 reports four schedules under the same hardware
// assumptions as the EWF). Columns as in bench_table2_ewf.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/dct.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Table 3 — DCT allocations (equivalent 2-1 multiplexers)\n\n");
  TextTable t;
  t.header({"csteps", "ALUs", "MULs", "regs", "trad", "trad+merge", "salsa",
            "salsa+merge", "winner"});
  for (const int steps : {7, 9, 11, 13}) {
    for (int extra : {0, 2}) {
      ProblemBundle b = make_problem(make_dct(), steps, false, extra);
      const Comparison cmp =
          run_comparison(*b.problem, 3000 + static_cast<uint64_t>(
                                                steps * 10 + extra));
      std::string trad = "*", trad_m = "*", winner = "salsa";
      if (cmp.traditional_feasible) {
        trad = std::to_string(cmp.traditional.cost.muxes);
        trad_m = std::to_string(cmp.traditional.merging.muxes_after);
        const int s = cmp.salsa.merging.muxes_after;
        const int tr = cmp.traditional.merging.muxes_after;
        winner = s < tr ? "salsa" : s == tr ? "tie" : "trad";
      }
      t.row({std::to_string(steps), std::to_string(b.fus.alu),
             std::to_string(b.fus.mul), std::to_string(b.min_regs + extra),
             trad, trad_m, std::to_string(cmp.salsa.cost.muxes),
             std::to_string(cmp.salsa.merging.muxes_after), winner});
    }
    t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
