// Regenerates the paper's Table 3: discrete-cosine-transform allocations for
// four schedules (Section 5 reports four schedules under the same hardware
// assumptions as the EWF). Columns as in bench_table2_ewf. Rows are computed
// on the shared thread pool (bench_suite/harness.h:table3_rows); ordering
// and values are identical for any thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Table 3 — DCT allocations (equivalent 2-1 multiplexers)\n\n");
  const std::vector<TableRow> rows = table3_rows(TableBudget{});
  TextTable t;
  t.header({"csteps", "ALUs", "MULs", "regs", "trad", "trad+merge", "salsa",
            "salsa+merge", "winner"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const TableRow& row = rows[i];
    const std::string trad =
        row.traditional_feasible ? std::to_string(row.trad_muxes) : "*";
    const std::string trad_m =
        row.traditional_feasible ? std::to_string(row.trad_merged) : "*";
    t.row({std::to_string(row.steps), std::to_string(row.alus),
           std::to_string(row.muls), std::to_string(row.regs), trad, trad_m,
           std::to_string(row.salsa_muxes), std::to_string(row.salsa_merged),
           row.winner});
    if (i + 1 == rows.size() || rows[i + 1].steps != row.steps) t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
