// Future-work experiment #3 (Section 7): a first-order layout model.
// Modules (FUs + registers) are placed on a bit-slice row minimising
// connection-weighted wirelength; the table compares how the two binding
// models' allocations translate into wiring.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "layout/linear_placement.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf(
      "Linear-placement wirelength of allocated datapaths (1-D module row)\n\n");
  struct Case {
    const char* name;
    Cdfg (*make)();
    int len;
    int extra_regs;
  };
  const Case cases[] = {
      {"ewf@17", make_ewf, 17, 1},
      {"ewf@21", make_ewf, 21, 1},
      {"dct@9", make_dct, 9, 2},
      {"ar@16", make_ar_filter, 16, 2},
  };
  TextTable t;
  t.header({"workload", "model", "muxes", "connections", "wirelength"});
  for (const Case& c : cases) {
    ProblemBundle b = make_problem(c.make(), c.len, false, c.extra_regs);
    const Comparison cmp = run_comparison(*b.problem, 13);
    auto add_row = [&](const char* model, const AllocationResult& res) {
      const LinearPlacement p = place_linear(res.binding, 17);
      t.row({c.name, model, std::to_string(res.merging.muxes_after),
             std::to_string(res.cost.connections), fmt(p.wirelength, 0)});
    };
    if (cmp.traditional_feasible) add_row("traditional", cmp.traditional);
    add_row("salsa", cmp.salsa);
    t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
