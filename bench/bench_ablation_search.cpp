// Search-scheme ablation (Section 4): the authors first tried simulated
// annealing, found it "produced poor results and seldom converged", and
// replaced it with the trial-based iterative improvement scheme. This
// harness reruns that comparison with matched move budgets, plus a pure
// greedy descent (uphill budget zero) and a sweep of the per-trial uphill
// allowance.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/ewf.h"
#include "core/annealer.h"
#include "core/ils.h"
#include "core/initial.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Search ablation on EWF @ 17 steps, min+1 registers\n\n");
  ProblemBundle b = make_problem(make_ewf(), 17, false, 1);
  Binding start = initial_allocation(*b.problem);
  const CostBreakdown base = evaluate_cost(start);
  std::printf("initial allocation: %d muxes, %d connections, cost %.0f\n\n",
              base.muxes, base.connections, base.total);

  constexpr long kBudget = 60000;  // total proposed moves per scheme

  TextTable t;
  t.header({"scheme", "muxes", "conns", "cost", "accepted", "uphill"});

  for (int uphill : {0, 10, 40, 200}) {
    ImproveParams p;
    p.max_trials = 12;
    p.moves_per_trial = static_cast<int>(kBudget / p.max_trials);
    p.uphill_per_trial = uphill;
    p.seed = 3;
    const ImproveResult r = improve(start, p);
    t.row({"iter-improve, uphill=" + std::to_string(uphill),
           std::to_string(r.cost.muxes), std::to_string(r.cost.connections),
           fmt(r.cost.total, 0), std::to_string(r.stats.accepted),
           std::to_string(r.stats.uphill)});
  }
  t.separator();
  for (int kick : {4, 8}) {
    IlsParams p;
    p.iterations = 12;
    p.descent_moves = static_cast<int>(kBudget / (p.iterations + 1));
    p.kick_moves = kick;
    p.seed = 3;
    const ImproveResult r = iterated_local_search(start, p);
    t.row({"iterated local search, kick=" + std::to_string(kick),
           std::to_string(r.cost.muxes), std::to_string(r.cost.connections),
           fmt(r.cost.total, 0), std::to_string(r.stats.accepted),
           std::to_string(r.stats.uphill)});
  }
  t.separator();
  for (double t0 : {5.0, 30.0, 120.0}) {
    AnnealParams p;
    p.num_temps = 12;
    p.moves_per_temp = static_cast<int>(kBudget / p.num_temps);
    p.initial_temp = t0;
    p.cooling = 0.8;
    p.seed = 3;
    const ImproveResult r = anneal(start, p);
    t.row({"annealing, T0=" + fmt(t0, 0), std::to_string(r.cost.muxes),
           std::to_string(r.cost.connections), fmt(r.cost.total, 0),
           std::to_string(r.stats.accepted), std::to_string(r.stats.uphill)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
