// Search-scheme ablation (Section 4): the authors first tried simulated
// annealing, found it "produced poor results and seldom converged", and
// replaced it with the trial-based iterative improvement scheme. This
// harness reruns that comparison with matched move budgets, plus a pure
// greedy descent (uphill budget zero) and a sweep of the per-trial uphill
// allowance.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_suite/ewf.h"
#include "core/annealer.h"
#include "core/ils.h"
#include "core/initial.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Search ablation on EWF @ 17 steps, min+1 registers\n\n");
  ProblemBundle b = make_problem(make_ewf(), 17, false, 1);
  Binding start = initial_allocation(*b.problem);
  const CostBreakdown base = evaluate_cost(start);
  std::printf("initial allocation: %d muxes, %d connections, cost %.0f\n\n",
              base.muxes, base.connections, base.total);

  constexpr long kBudget = 60000;  // total proposed moves per scheme

  TextTable t;
  t.header({"scheme", "muxes", "conns", "cost", "accepted", "uphill"});

  // Every configuration of every scheme family is an independent search
  // from the same start; fan them out over the thread pool and render the
  // rows in sweep order afterwards (identical table at any thread count).
  const auto add_rows = [&](const std::vector<std::string>& labels,
                            const std::vector<ImproveResult>& results) {
    for (size_t i = 0; i < results.size(); ++i) {
      const ImproveResult& r = results[i];
      t.row({labels[i], std::to_string(r.cost.muxes),
             std::to_string(r.cost.connections), fmt(r.cost.total, 0),
             std::to_string(r.stats.accepted),
             std::to_string(r.stats.uphill)});
    }
  };

  const std::vector<int> uphills = {0, 10, 40, 200};
  std::vector<std::string> uphill_labels;
  for (int uphill : uphills)
    uphill_labels.push_back("iter-improve, uphill=" + std::to_string(uphill));
  add_rows(uphill_labels,
           parallel_map(Parallelism{}, static_cast<int>(uphills.size()),
                        [&](int i) {
                          ImproveParams p;
                          p.max_trials = 12;
                          p.moves_per_trial =
                              static_cast<int>(kBudget / p.max_trials);
                          p.uphill_per_trial = uphills[static_cast<size_t>(i)];
                          p.seed = 3;
                          return improve(start, p);
                        }));
  t.separator();

  const std::vector<int> kicks = {4, 8};
  std::vector<std::string> kick_labels;
  for (int kick : kicks)
    kick_labels.push_back("iterated local search, kick=" +
                          std::to_string(kick));
  add_rows(kick_labels,
           parallel_map(Parallelism{}, static_cast<int>(kicks.size()),
                        [&](int i) {
                          IlsParams p;
                          p.iterations = 12;
                          p.descent_moves =
                              static_cast<int>(kBudget / (p.iterations + 1));
                          p.kick_moves = kicks[static_cast<size_t>(i)];
                          p.seed = 3;
                          return iterated_local_search(start, p);
                        }));
  t.separator();

  const std::vector<double> temps = {5.0, 30.0, 120.0};
  std::vector<std::string> temp_labels;
  for (double t0 : temps) temp_labels.push_back("annealing, T0=" + fmt(t0, 0));
  add_rows(temp_labels,
           parallel_map(Parallelism{}, static_cast<int>(temps.size()),
                        [&](int i) {
                          AnnealParams p;
                          p.num_temps = 12;
                          p.moves_per_temp =
                              static_cast<int>(kBudget / p.num_temps);
                          p.initial_temp = temps[static_cast<size_t>(i)];
                          p.cooling = 0.8;
                          p.seed = 3;
                          return anneal(start, p);
                        }));
  std::printf("%s\n", t.render().c_str());
  return 0;
}
