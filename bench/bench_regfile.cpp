// Register-file pressure of the two binding models: segments concentrate or
// spread register traffic differently, so grouping the allocated registers
// into port-limited files (2R/1W, four registers per file by default) can
// need different file counts for the same workload.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "regfile/regfile.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf(
      "Register-file binding (max 4 regs/file, 2 read + 1 write port)\n\n");
  struct Case {
    const char* name;
    Cdfg (*make)();
    int len;
    int extra_regs;
  };
  const Case cases[] = {
      {"ewf@17", make_ewf, 17, 1},
      {"ewf@21", make_ewf, 21, 1},
      {"dct@9", make_dct, 9, 2},
      {"ar@16", make_ar_filter, 16, 2},
  };
  const RegFileSpec spec{};
  TextTable t;
  t.header({"workload", "model", "regs used", "files", "lower bound",
            "status"});
  for (const Case& c : cases) {
    ProblemBundle b = make_problem(c.make(), c.len, false, c.extra_regs);
    const Comparison cmp = run_comparison(*b.problem, 17);
    auto add_row = [&](const char* model, const AllocationResult& res) {
      const RegFileAssignment asg = bind_register_files(res.binding, spec);
      const auto bad = verify_register_files(res.binding, spec, asg);
      t.row({c.name, model, std::to_string(res.binding.regs_used()),
             std::to_string(asg.num_files),
             std::to_string(register_file_lower_bound(res.binding, spec)),
             bad.empty() ? "ok" : "INVALID"});
    };
    if (cmp.traditional_feasible) add_row("traditional", cmp.traditional);
    add_row("salsa", cmp.salsa);
    t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
