// Section 5 remark: "due to the random nature of the iterative improvement
// scheme, multiple trials are sometimes necessary to find the best result."
// This harness quantifies the run-to-run variance: the allocator is run with
// ten independent seeds per configuration and the min / median / max mux
// counts are reported, along with how many seeds reach the best value.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf(
      "Run-to-run variance of the allocator (10 seeds per configuration)\n\n");
  struct Case {
    const char* name;
    Cdfg (*make)();
    int len;
    bool pipelined;
    int extra_regs;
  };
  const Case cases[] = {
      {"ewf@17", make_ewf, 17, false, 1},
      {"ewf@17P minregs", make_ewf, 17, true, 0},
      {"dct@9", make_dct, 9, false, 1},
  };
  TextTable t;
  t.header({"workload", "min", "median", "max", "seeds at min"});
  for (const Case& c : cases) {
    ProblemBundle b = make_problem(c.make(), c.len, c.pipelined, c.extra_regs);
    // Independent seeds fan out over the thread pool; the per-seed results
    // come back in seed order, so the table is identical at any thread
    // count.
    std::vector<int> muxes = parallel_map(Parallelism{}, 10, [&](int i) {
      const uint64_t seed = static_cast<uint64_t>(i) + 1;
      AllocatorOptions opts;
      opts.improve = standard_improve(seed * 37);
      opts.improve.max_trials = 8;
      return allocate(*b.problem, opts).merging.muxes_after;
    });
    std::sort(muxes.begin(), muxes.end());
    const int best = muxes.front();
    const long at_min = std::count(muxes.begin(), muxes.end(), best);
    t.row({c.name, std::to_string(best), std::to_string(muxes[muxes.size() / 2]),
           std::to_string(muxes.back()), std::to_string(at_min) + "/10"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Multiple restarts are part of the standard harness configuration for\n"
      "exactly this reason (AllocatorOptions::restarts).\n");
  return 0;
}
