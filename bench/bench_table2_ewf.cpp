// Regenerates the paper's Table 2: elliptic-wave-filter allocations across
// schedule lengths (17, 19, 21 control steps), multiplier pipelining, and
// register budgets (the schedule minimum plus 0/1/2 spares, the paper's
// storage-vs-interconnect trade-off). For each row it reports the
// equivalent-2-1-mux counts of the SALSA allocator and of the traditional
// binding model (the stand-in for the "best reported by other researchers"
// column — those tools all use the traditional model; see EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/ewf.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Table 2 — EWF allocations (equivalent 2-1 multiplexers)\n");
  std::printf(
      "'trad' = traditional binding model under the same search engine;\n"
      "'salsa' = extended binding model; '*' marks rows where the\n"
      "traditional model has no feasible contiguous placement at all.\n\n");

  struct Row {
    int steps;
    bool pipelined;
  };
  const Row rows[] = {{17, false}, {17, true}, {19, false}, {19, true},
                      {21, false}};

  TextTable t;
  t.header({"csteps", "mults", "ALUs", "MULs", "regs", "trad", "trad+merge",
            "salsa", "salsa+merge", "winner"});
  for (const Row& row : rows) {
    for (int extra = 0; extra <= 2; ++extra) {
      ProblemBundle b =
          make_problem(make_ewf(), row.steps, row.pipelined, extra);
      const Comparison cmp =
          run_comparison(*b.problem, 1000 + static_cast<uint64_t>(
                                                row.steps * 10 + extra));
      std::string trad = "*", trad_m = "*";
      std::string winner = "salsa";
      if (cmp.traditional_feasible) {
        trad = std::to_string(cmp.traditional.cost.muxes);
        trad_m = std::to_string(cmp.traditional.merging.muxes_after);
        if (cmp.salsa.merging.muxes_after <
            cmp.traditional.merging.muxes_after) {
          winner = "salsa";
        } else if (cmp.salsa.merging.muxes_after ==
                   cmp.traditional.merging.muxes_after) {
          winner = "tie";
        } else {
          winner = "trad";
        }
      }
      t.row({std::to_string(row.steps), row.pipelined ? "pipe" : "non-pipe",
             std::to_string(b.fus.alu), std::to_string(b.fus.mul),
             std::to_string(b.min_regs + extra), trad, trad_m,
             std::to_string(cmp.salsa.cost.muxes),
             std::to_string(cmp.salsa.merging.muxes_after), winner});
    }
    t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
