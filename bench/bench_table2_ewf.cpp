// Regenerates the paper's Table 2: elliptic-wave-filter allocations across
// schedule lengths (17, 19, 21 control steps), multiplier pipelining, and
// register budgets (the schedule minimum plus 0/1/2 spares, the paper's
// storage-vs-interconnect trade-off). For each row it reports the
// equivalent-2-1-mux counts of the SALSA allocator and of the traditional
// binding model (the stand-in for the "best reported by other researchers"
// column — those tools all use the traditional model; see EXPERIMENTS.md).
//
// Rows are computed on the shared thread pool (bench_suite/harness.h:
// table2_rows); ordering and values are identical for any thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Table 2 — EWF allocations (equivalent 2-1 multiplexers)\n");
  std::printf(
      "'trad' = traditional binding model under the same search engine;\n"
      "'salsa' = extended binding model; '*' marks rows where the\n"
      "traditional model has no feasible contiguous placement at all.\n\n");

  const std::vector<TableRow> rows = table2_rows(TableBudget{});

  TextTable t;
  t.header({"csteps", "mults", "ALUs", "MULs", "regs", "trad", "trad+merge",
            "salsa", "salsa+merge", "winner"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const TableRow& row = rows[i];
    const std::string trad =
        row.traditional_feasible ? std::to_string(row.trad_muxes) : "*";
    const std::string trad_m =
        row.traditional_feasible ? std::to_string(row.trad_merged) : "*";
    t.row({std::to_string(row.steps), row.pipelined ? "pipe" : "non-pipe",
           std::to_string(row.alus), std::to_string(row.muls),
           std::to_string(row.regs), trad, trad_m,
           std::to_string(row.salsa_muxes), std::to_string(row.salsa_merged),
           row.winner});
    // One separator per (steps, pipelining) block, as the grid is ordered.
    if (i + 1 == rows.size() || rows[i + 1].steps != row.steps ||
        rows[i + 1].pipelined != row.pipelined)
      t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
