// Future-work experiment #1 (Section 7): bus-oriented interconnect [6] as
// an alternative to the point-to-point model. For each workload the binding
// is allocated point-to-point (traditional and SALSA), then its data
// movements are re-allocated onto shared buses; the table compares the two
// interconnect bills.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "interconnect/bus_model.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf(
      "Bus-oriented interconnect vs point-to-point (per allocated design)\n"
      "pt-muxes: equivalent 2-1 muxes after merging; buses/sink-muxes/\n"
      "extra-drivers: the bus re-allocation of the same data movements.\n\n");
  struct Case {
    const char* name;
    Cdfg (*make)();
    int len;
    int extra_regs;
  };
  const Case cases[] = {
      {"ewf@17", make_ewf, 17, 1},
      {"ewf@21", make_ewf, 21, 1},
      {"dct@9", make_dct, 9, 2},
      {"ar@16", make_ar_filter, 16, 2},
  };
  TextTable t;
  t.header({"workload", "model", "pt-muxes", "buses", "sink-muxes",
            "extra-drivers", "status"});
  for (const Case& c : cases) {
    ProblemBundle b = make_problem(c.make(), c.len, false, c.extra_regs);
    const Comparison cmp = run_comparison(*b.problem, 11);
    auto add_row = [&](const char* model, const AllocationResult& res) {
      const BusAllocation buses = bus_allocate(res.binding);
      const auto bad = verify_bus_allocation(res.binding, buses);
      t.row({c.name, model, std::to_string(res.merging.muxes_after),
             std::to_string(buses.num_buses()),
             std::to_string(buses.sink_muxes()),
             std::to_string(buses.extra_drivers()),
             bad.empty() ? "ok" : "INVALID"});
    };
    if (cmp.traditional_feasible) add_row("traditional", cmp.traditional);
    add_row("salsa", cmp.salsa);
    t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
