// Section 3 remark: moves that alter operator scheduling "did not lead to
// better allocations and so were omitted". This harness quantifies the
// modern equivalent — an outer loop over randomised schedule variants with
// identical FU budgets — against simply spending the same effort on more
// allocation restarts of the baseline schedule.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/sched_explore.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

int main() {
  std::printf("Schedule-variant exploration vs more allocation restarts\n\n");
  struct Case {
    const char* name;
    Cdfg (*make)();
    int len;
  };
  const Case cases[] = {
      {"ewf@17", make_ewf, 17},
      {"ewf@19", make_ewf, 19},
      {"dct@9", make_dct, 9},
  };
  TextTable t;
  t.header({"workload", "strategy", "muxes", "cost", "variants tried"});
  for (const Case& c : cases) {
    HwSpec hw;
    const FuBudget budget = schedule_min_fu(c.make(), hw, c.len).fus;

    // Strategy A: one schedule, 4 allocation restarts.
    {
      ProblemBundle b = make_problem(c.make(), c.len, false, 1);
      AllocatorOptions opts;
      opts.improve = standard_improve(21);
      opts.improve.max_trials = 8;
      opts.restarts = 4;
      const AllocationResult res = allocate(*b.problem, opts);
      t.row({c.name, "4 restarts, 1 schedule",
             std::to_string(res.cost.muxes), fmt(res.cost.total, 0), "1"});
    }
    // Strategy B: 3 schedule variants + baseline, 1 restart each.
    {
      ScheduleExploreParams p;
      p.variants = 3;
      p.alloc.improve = standard_improve(22);
      p.alloc.improve.max_trials = 8;
      p.extra_regs = 1;
      p.seed = 5;
      const ScheduleExploreResult res =
          explore_schedules(c.make(), hw, c.len, budget, p);
      t.row({c.name, "4 schedules, 1 restart",
             std::to_string(res.allocation->cost.muxes),
             fmt(res.allocation->cost.total, 0),
             std::to_string(res.variant_costs.size())});
    }
    t.separator();
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
