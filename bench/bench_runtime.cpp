// CPU-time microbenchmarks (google-benchmark): the paper quotes 8-10 CPU
// minutes per EWF allocation on a Sun Sparcstation 1 and 12+ minutes for the
// DCT; this harness measures the corresponding costs on modern hardware —
// per-move cost evaluation, occupancy recomputation, move application, the
// constructive initial allocation, full improvement trials, the schedulers,
// and a datapath simulation step.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "core/search_engine.h"
#include "datapath/simulator.h"
#include "frontend/generate.h"
#include "sched/force_directed.h"
#include "util/bitplane.h"
#include "util/flat_map.h"

using namespace salsa;
using namespace salsa::benchharness;

namespace {

ProblemBundle& ewf17() {
  static ProblemBundle b = make_problem(make_ewf(), 17, false, 1);
  return b;
}

ProblemBundle& dct9() {
  static ProblemBundle b = make_problem(make_dct(), 9, false, 2);
  return b;
}

void BM_CostEvaluation(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  for (auto _ : state) benchmark::DoNotOptimize(evaluate_cost(b).total);
}
BENCHMARK(BM_CostEvaluation);

void BM_Occupancy(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  for (auto _ : state) benchmark::DoNotOptimize(b.occupancy().fu_user.size());
}
BENCHMARK(BM_Occupancy);

void BM_MoveProposeApply(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  Rng rng(1);
  const MoveConfig moves = MoveConfig::salsa_default();
  for (auto _ : state) {
    Binding candidate = b;
    benchmark::DoNotOptimize(apply_random_move(candidate, moves.pick(rng), rng));
  }
}
BENCHMARK(BM_MoveProposeApply);

// One decided search step the way the pre-engine loops did it: copy the
// binding, apply a move, evaluate the full cost, drop the copy. The
// moves_per_sec counter is directly comparable with BM_EngineMoveStep.
void BM_LegacyMoveStep(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  Rng rng(1);
  const MoveConfig moves = MoveConfig::salsa_default();
  long proposed = 0;
  for (auto _ : state) {
    Binding candidate = b;
    if (apply_random_move(candidate, moves.pick(rng), rng)) {
      benchmark::DoNotOptimize(evaluate_cost(candidate).total);
    }
    ++proposed;
  }
  state.counters["moves_per_sec"] =
      benchmark::Counter(static_cast<double>(proposed),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LegacyMoveStep);

// One decided search step through the SearchEngine: propose with an
// incremental delta, then commit or roll back (alternating, so both undo
// paths are measured).
void BM_EngineMoveStep(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  SearchEngine eng(b);
  Rng rng(1);
  const MoveConfig moves = MoveConfig::salsa_default();
  long proposed = 0;
  bool keep = false;
  for (auto _ : state) {
    if (eng.propose(moves.pick(rng), rng)) {
      if (keep)
        eng.commit();
      else
        eng.rollback();
      keep = !keep;
      benchmark::DoNotOptimize(eng.total());
    }
    ++proposed;
  }
  state.counters["moves_per_sec"] =
      benchmark::Counter(static_cast<double>(proposed),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineMoveStep);

// Raw connection-index throughput: refcount churn (increment / lookup /
// decrement with backward-shift erase) over packed 64-bit pair keys — the
// op mix the engine's transaction drain drives against FlatMap. Half the
// key set is pre-seeded, so increments split between creating entries
// (erased again on the decrement) and bumping live ones, and lookups mix
// hits with misses. ops_per_sec counts individual table operations.
void BM_IndexOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<uint64_t> keys(static_cast<size_t>(n));
  for (uint64_t& key : keys) key = rng.next();
  FlatMap<uint64_t> index;
  index.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i += 2) index.increment(keys[static_cast<size_t>(i)]);
  long ops = 0;
  for (auto _ : state) {
    const uint64_t hot = keys[static_cast<size_t>(rng.uniform(n))];
    const uint64_t probe = keys[static_cast<size_t>(rng.uniform(n))];
    index.increment(hot);
    benchmark::DoNotOptimize(index.find(probe));
    index.decrement(hot);
    ops += 3;
  }
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndexOps)->Arg(1 << 10)->Arg(1 << 14);

// Raw packed-bitplane kernel throughput at move-hot-path shapes: the arg is
// the bit width of a row (a schedule length — EWF-sized 17 up to a stride-3
// 130), and each iteration runs one claim/probe/mask cycle: a cyclic
// set_range_wrap, a windowed any_in_range legality probe, a row-vs-mask
// and_any overlap test and the three-operand words_and_andnot_any the
// register proposers use, then the clear_range release. ops_per_sec counts
// individual kernel calls; compare against the SALSA_BITPLANE_SCALAR build
// to see the word-parallel speedup in isolation.
void BM_BitplaneOps(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int rows = 64;
  Rng rng(13);
  BitPlane occ, live, own;
  occ.resize(rows, bits);
  live.resize(rows, bits);
  own.resize(rows, bits);
  for (int r = 0; r < rows; ++r) {
    live.set_range_wrap(r, rng.uniform(bits), 1 + rng.uniform(bits));
    own.set_range_wrap(r, rng.uniform(bits), 1 + rng.uniform(bits / 2 + 1));
  }
  long ops = 0;
  bool sink = false;
  for (auto _ : state) {
    const int r = rng.uniform(rows);
    const int start = rng.uniform(bits);
    const int len = 1 + rng.uniform(bits);
    occ.set_range_wrap(r, start, len);
    const int wstart = rng.uniform(bits);
    const int wlen = 1 + rng.uniform(bits - wstart);
    sink ^= occ.any_in_range(r, wstart, wlen);
    sink ^= occ.and_any(r, live.row(r));
    sink ^= words_and_andnot_any(occ.row(r), live.row(r), own.row(r),
                                 occ.stride());
    if (start + len <= bits) {
      occ.clear_range(r, start, len);
    } else {
      occ.clear_range(r, start, bits - start);
      occ.clear_range(r, 0, start + len - bits);
    }
    ops += 5;
  }
  benchmark::DoNotOptimize(sink);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BitplaneOps)->Arg(17)->Arg(64)->Arg(130);

void BM_InitialAllocation(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        initial_allocation(*ewf17().problem, InitialOptions{.seed = ++seed})
            .regs_used());
  }
}
BENCHMARK(BM_InitialAllocation);

void BM_ImprovementTrial(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  uint64_t seed = 0;
  for (auto _ : state) {
    ImproveParams p;
    p.max_trials = 1;
    p.moves_per_trial = 1000;
    p.stop_after_stale = 1;
    p.seed = ++seed;
    benchmark::DoNotOptimize(improve(b, p).cost.total);
  }
  state.counters["moves_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 1000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ImprovementTrial)->Unit(benchmark::kMillisecond);

void BM_FullEwfAllocation(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    AllocatorOptions opts;
    opts.improve = standard_improve(++seed);
    benchmark::DoNotOptimize(allocate(*ewf17().problem, opts).cost.total);
  }
}
BENCHMARK(BM_FullEwfAllocation)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_FullDctAllocation(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    AllocatorOptions opts;
    opts.improve = standard_improve(++seed);
    benchmark::DoNotOptimize(allocate(*dct9().problem, opts).cost.total);
  }
}
BENCHMARK(BM_FullDctAllocation)->Unit(benchmark::kMillisecond)->Iterations(3);

// The headline parallel-runtime number: 16 independent restarts of the EWF
// allocation, fanned out over the thread pool. The result is byte-identical
// for every arg (the "cost" counter must not move); wall clock should fall
// near-linearly until the core count is exhausted. Run with
// --benchmark_format=json for a machine-readable threads-vs-wall-clock
// record ("threads" counter vs "real_time").
void BM_ParallelRestarts(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  double cost = 0;
  for (auto _ : state) {
    AllocatorOptions opts;
    opts.improve = standard_improve(1);
    opts.initial.seed = 1;
    opts.restarts = 16;
    opts.parallelism.threads = threads;
    cost = allocate(*ewf17().problem, opts).cost.total;
  }
  state.counters["threads"] = threads;
  state.counters["cost"] = cost;  // identical across args by construction
}
BENCHMARK(BM_ParallelRestarts)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Speculative proposal throughput: a full improve() run on the EWF with a
// (threads x k) grid over the ProposalPipeline. k == 1 / 1 thread is the
// sequential baseline; the "moves_per_sec" counters are directly comparable
// across args because the trajectory (and thus the served move stream) is
// byte-identical for every setting — only the scoring parallelism differs.
// The "spec_hit" counter reports served / speculated for the batched runs.
// (On a single-core host every arg degenerates to sequential wall clock;
// the grid is meant for multicore runs — see EXPERIMENTS.md.)
void speculative_moves(benchmark::State& state, ProblemBundle& bundle) {
  const int threads = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Binding b = initial_allocation(*bundle.problem);
  long attempted = 0;
  SpecStats spec;
  for (auto _ : state) {
    ImproveParams p;
    p.max_trials = 4;
    p.moves_per_trial = 3000;
    p.stop_after_stale = 4;
    p.seed = 1;
    p.speculation.k = k;
    p.speculation.parallelism.threads = threads;
    const ImproveResult r = improve(b, p);
    benchmark::DoNotOptimize(r.cost.total);
    attempted += r.stats.attempted;
    spec = r.stats.spec;
  }
  state.counters["threads"] = threads;
  state.counters["k"] = k;
  state.counters["moves_per_sec"] = benchmark::Counter(
      static_cast<double>(attempted), benchmark::Counter::kIsRate);
  state.counters["spec_hit"] =
      spec.speculated
          ? static_cast<double>(spec.served) /
                static_cast<double>(spec.speculated)
          : 0.0;
}

void BM_SpeculativeMoves(benchmark::State& state) {
  speculative_moves(state, ewf17());
}
BENCHMARK(BM_SpeculativeMoves)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The same measurement on the DCT, the paper's larger benchmark. The
// {1, 1} row is the second sequential-throughput acceptance number next to
// BM_SpeculativeMoves/1/1 (see EXPERIMENTS.md "Move throughput").
void BM_SpeculativeMovesDct(benchmark::State& state) {
  speculative_moves(state, dct9());
}
BENCHMARK(BM_SpeculativeMovesDct)
    ->Args({1, 1})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// ---- large-design scaling sweep -------------------------------------------
// Sequential engine-move throughput vs design size, the wall behind
// BENCH_scaling.json. Arg 0 selects the design source (0 = the EWF
// reference point every ratio is normalized against, 1 = generated filter
// cascade, 2 = generated layered DAG), arg 1 the target operator count.
// Fixed iteration count so every run decides the same number of proposals;
// sizes are registered in ascending order so the process-wide peak-RSS
// counter bounds the memory of each size's run.

const char* scaling_family_name(int fam) {
  switch (fam) {
    case 0:
      return "ewf";
    case 1:
      return "cascade";
    case 2:
      return "dag";
    default:
      return "?";
  }
}

const GeneratedDesign& scaling_design(int fam, int target) {
  static std::map<std::pair<int, int>, std::unique_ptr<GeneratedDesign>> cache;
  std::unique_ptr<GeneratedDesign>& slot = cache[{fam, target}];
  if (!slot) {
    GenParams p;
    p.family = fam == 1 ? GenFamily::kFilterCascade : GenFamily::kLayeredDag;
    p.target_ops = target;
    p.seed = 1;
    slot = std::make_unique<GeneratedDesign>(generate_design(p));
  }
  return *slot;
}

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
}

void BM_ScalingMoves(benchmark::State& state) {
  const int fam = static_cast<int>(state.range(0));
  const int target = static_cast<int>(state.range(1));
  const AllocProblem* prob;
  int ops, length, regs;
  if (fam == 0) {
    ProblemBundle& bundle = ewf17();
    prob = bundle.problem.get();
    ops = static_cast<int>(bundle.graph->operations().size());
    length = bundle.schedule->length();
    regs = prob->num_regs();
  } else {
    const GeneratedDesign& d = scaling_design(fam, target);
    prob = d.problem.get();
    ops = d.num_ops;
    length = d.schedule->length();
    regs = prob->num_regs();
  }
  Binding b = initial_allocation(*prob, InitialOptions{.seed = 5});
  SearchEngine eng(b);
  Rng rng(1);
  const MoveConfig moves = MoveConfig::salsa_default();
  long proposed = 0;
  bool keep = false;
  for (auto _ : state) {
    if (eng.propose(moves.pick(rng), rng)) {
      if (keep)
        eng.commit();
      else
        eng.rollback();
      keep = !keep;
      benchmark::DoNotOptimize(eng.total());
    }
    ++proposed;
  }
  state.counters["moves_per_sec"] = benchmark::Counter(
      static_cast<double>(proposed), benchmark::Counter::kIsRate);
  state.counters["design_ops"] = ops;
  state.counters["sched_len"] = length;
  state.counters["regs"] = regs;
  state.counters["family"] = fam;
  state.counters["peak_rss_mb"] = peak_rss_mb();
}
BENCHMARK(BM_ScalingMoves)
    ->Args({0, 0})  // EWF: the per-move reference point
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({1, 5000})
    ->Args({1, 10000})
    ->Args({2, 10000})
    ->Args({1, 50000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(50000);

void BM_ForceDirectedSchedule(benchmark::State& state) {
  Cdfg g = make_ewf();
  HwSpec hw;
  for (auto _ : state)
    benchmark::DoNotOptimize(force_directed_schedule(g, hw, 19).length());
}
BENCHMARK(BM_ForceDirectedSchedule);

void BM_SimulateIteration(benchmark::State& state) {
  Binding b = initial_allocation(*ewf17().problem);
  Netlist nl(b);
  std::vector<std::vector<int64_t>> inputs(3, std::vector<int64_t>{5});
  std::vector<int64_t> states(7, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(simulate(nl, inputs, states, 2).outputs.size());
}
BENCHMARK(BM_SimulateIteration);

// Display reporter that additionally captures every run carrying a
// moves_per_sec counter into throughput rows — or, for runs that also carry
// a design_ops counter, into scaling rows — for the machine-readable
// records written by main(). Counters reach the reporter already finalized
// (rates divided by elapsed time). Aggregate rows (mean/median/stddev/cv of
// repeated runs) are skipped: their counters are statistics of statistics
// (a stddev row reports the stddev of the threads counter as "threads: 0"),
// which polluted the committed baseline until PR 8. Because an explicit
// display reporter is installed, --benchmark_format is ignored — use
// --benchmark_out=<file> for a full google-benchmark JSON record.
class ThroughputCapture : public benchmark::ConsoleReporter {
 public:
  std::vector<benchharness::ThroughputRow> rows;
  std::vector<benchharness::ScalingRow> scaling_rows;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type == Run::RT_Aggregate) continue;
      const auto it = run.counters.find("moves_per_sec");
      if (it == run.counters.end()) continue;
      const auto ops = run.counters.find("design_ops");
      if (ops != run.counters.end()) {
        benchharness::ScalingRow row;
        row.benchmark = run.benchmark_name();
        row.ops = static_cast<int>(ops->second.value);
        row.moves_per_sec = it->second.value;
        if (const auto f = run.counters.find("family");
            f != run.counters.end())
          row.family = scaling_family_name(static_cast<int>(f->second.value));
        if (const auto l = run.counters.find("sched_len");
            l != run.counters.end())
          row.length = static_cast<int>(l->second.value);
        if (const auto r = run.counters.find("regs"); r != run.counters.end())
          row.regs = static_cast<int>(r->second.value);
        if (const auto m = run.counters.find("peak_rss_mb");
            m != run.counters.end())
          row.peak_rss_mb = m->second.value;
        scaling_rows.push_back(std::move(row));
        continue;
      }
      benchharness::ThroughputRow row;
      row.benchmark = run.benchmark_name();
      row.moves_per_sec = it->second.value;
      if (const auto t = run.counters.find("threads"); t != run.counters.end())
        row.threads = static_cast<int>(t->second.value);
      if (const auto kk = run.counters.find("k"); kk != run.counters.end())
        row.k = static_cast<int>(kk->second.value);
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

// BENCHMARK_MAIN plus the machine-readable records: every run with a
// moves_per_sec counter lands in BENCH_throughput.json (override the path
// with SALSA_BENCH_JSON), and every BM_ScalingMoves run in
// BENCH_scaling.json (SALSA_SCALING_JSON), both stamped with the tree's
// `git describe`. The scaling record is written only when the filter
// actually ran scaling benchmarks, so a throughput-only run cannot clobber
// the committed wall with an empty array.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ThroughputCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string git = benchharness::git_describe();
  const char* path = std::getenv("SALSA_BENCH_JSON");
  benchharness::write_throughput_json(
      path != nullptr ? path : "BENCH_throughput.json", reporter.rows, git);
  if (!reporter.scaling_rows.empty()) {
    const char* spath = std::getenv("SALSA_SCALING_JSON");
    benchharness::write_scaling_json(
        spath != nullptr ? spath : "BENCH_scaling.json",
        reporter.scaling_rows, git);
  }
  return 0;
}
