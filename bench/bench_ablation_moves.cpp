// Move-set ablation (Section 3's design choices): how much of the extended
// model's benefit comes from each ingredient? Runs the same improvement
// engine with (a) the traditional move set, (b) extended without
// pass-throughs, (c) extended without value splitting, and (d) the full
// SALSA move set — all from the same initial allocation and with the same
// move budget.
#include <cstdio>

#include "bench_common.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/initial.h"
#include "util/table.h"

using namespace salsa;
using namespace salsa::benchharness;

namespace {

void ablate(const char* name, const AllocProblem& prob, TextTable& t) {
  struct Config {
    const char* label;
    MoveConfig moves;
  };
  const Config configs[] = {
      {"traditional moves", MoveConfig::traditional()},
      {"no pass-throughs", MoveConfig::no_pass_through()},
      {"no value splits", MoveConfig::no_split()},
      {"full SALSA", MoveConfig::salsa_default()},
  };
  // A common warm start: the best contiguous allocation the traditional
  // engine can find, so every configuration begins from the same point.
  Binding start = [&] {
    try {
      TraditionalOptions topt;
      topt.improve = standard_improve(5);
      return allocate_traditional(prob, topt).binding;
    } catch (const Error&) {
      return initial_allocation(prob);
    }
  }();
  const CostBreakdown base = evaluate_cost(start);
  for (const Config& cfg : configs) {
    ImproveParams p = standard_improve(17);
    p.moves = cfg.moves;
    const ImproveResult r = improve(start, p);
    t.row({name, cfg.label, std::to_string(base.muxes),
           std::to_string(r.cost.muxes), std::to_string(r.cost.connections),
           fmt(r.cost.total, 0)});
  }
  t.separator();
}

}  // namespace

int main() {
  std::printf(
      "Move-set ablation — improvement from a common traditional-model "
      "start\n\n");
  TextTable t;
  t.header({"workload", "move set", "start muxes", "muxes", "conns", "cost"});
  {
    ProblemBundle b = make_problem(make_ewf(), 17, false, 0);
    ablate("ewf@17 (min regs)", *b.problem, t);
  }
  {
    ProblemBundle b = make_problem(make_ewf(), 17, false, 2);
    ablate("ewf@17 (+2 regs)", *b.problem, t);
  }
  {
    ProblemBundle b = make_problem(make_dct(), 9, false, 2);
    ablate("dct@9 (+2 regs)", *b.problem, t);
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
