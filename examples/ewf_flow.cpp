// The paper's flagship workload end to end: the fifth-order elliptic wave
// filter (Table 2). Schedules the EWF at a chosen latency, allocates it with
// both binding models, prints the interconnect comparison, verifies the
// datapath on the simulator, and writes the allocated design as structural
// Verilog plus a scheduled DOT graph.
//
// Usage: ewf_flow [csteps=17] [pipelined=0] [extra_regs=0]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "baseline/traditional.h"
#include "bench_suite/ewf.h"
#include "cdfg/dot.h"
#include "core/allocator.h"
#include "datapath/simulator.h"
#include "datapath/verilog.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/table.h"

using namespace salsa;

int main(int argc, char** argv) {
  const int csteps = argc > 1 ? std::atoi(argv[1]) : 17;
  const bool pipelined = argc > 2 && std::atoi(argv[2]) != 0;
  const int extra_regs = argc > 3 ? std::atoi(argv[3]) : 0;

  Cdfg g = make_ewf();
  std::printf("EWF: %d adds, %d const-multiplies, %zu states\n",
              g.count(OpKind::kAdd), g.count(OpKind::kMul),
              g.state_nodes().size());

  HwSpec hw;
  hw.pipelined_mul = pipelined;
  const int cp = min_schedule_length(g, hw);
  if (csteps < cp) {
    std::printf("requested %d steps but the critical path is %d\n", csteps, cp);
    return 1;
  }
  const FuSearchResult sr = schedule_min_fu(g, hw, csteps);
  const Lifetimes lt(sr.schedule);
  std::printf("schedule: %d steps, %d ALUs, %d %smultipliers, "
              "min registers %d (+%d spare)\n\n",
              csteps, sr.fus.alu, sr.fus.mul, pipelined ? "pipelined " : "",
              lt.min_registers(), extra_regs);

  AllocProblem prob(sr.schedule, FuPool::standard(sr.fus),
                    lt.min_registers() + extra_regs);

  TraditionalOptions topt;
  topt.improve.max_trials = 12;
  topt.improve.moves_per_trial = 5000;
  topt.restarts = 2;
  AllocationResult trad = allocate_traditional(prob, topt);

  AllocatorOptions sopt;
  sopt.improve.max_trials = 12;
  sopt.improve.moves_per_trial = 5000;
  sopt.restarts = 2;
  AllocationResult ext = allocate(prob, sopt);
  // The extended model subsumes the traditional one: also refine the
  // traditional winner with the extended move set and keep the best.
  {
    ImproveParams refine = sopt.improve;
    refine.seed = 777;
    ImproveResult r = improve(trad.binding, refine);
    if (r.cost.total < ext.cost.total) {
      ext.binding = std::move(r.best);
      ext.cost = r.cost;
      ext.merging = merge_muxes(ext.binding);
    }
  }

  TextTable table;
  table.header({"model", "muxes", "merged", "conns", "regs", "passes",
                "copies"});
  auto extras = [&](const Binding& b) {
    int passes = 0, copies = 0;
    for (int sid = 0; sid < lt.num_storages(); ++sid) {
      for (const auto& seg : b.sto(sid).cells) {
        copies += static_cast<int>(seg.size()) - 1;
        for (const Cell& c : seg) passes += c.via != kInvalidId;
      }
    }
    return std::pair{passes, copies};
  };
  const auto [tp, tc] = extras(trad.binding);
  const auto [sp, sc] = extras(ext.binding);
  table.row({"traditional", std::to_string(trad.cost.muxes),
             std::to_string(trad.merging.muxes_after),
             std::to_string(trad.cost.connections),
             std::to_string(trad.cost.regs_used), std::to_string(tp),
             std::to_string(tc)});
  table.row({"SALSA", std::to_string(ext.cost.muxes),
             std::to_string(ext.merging.muxes_after),
             std::to_string(ext.cost.connections),
             std::to_string(ext.cost.regs_used), std::to_string(sp),
             std::to_string(sc)});
  std::printf("%s\n", table.render().c_str());

  Netlist nl(ext.binding);
  const std::string mismatch = random_equivalence_check(nl, 10, 7);
  std::printf("simulation check (10 iterations): %s\n",
              mismatch.empty() ? "MATCH" : mismatch.c_str());

  {
    std::ofstream vf("ewf_datapath.v");
    vf << to_verilog(nl, "ewf_datapath");
    std::vector<int> starts(static_cast<size_t>(g.num_nodes()));
    for (NodeId n = 0; n < g.num_nodes(); ++n) starts[static_cast<size_t>(n)] =
        sr.schedule.start(n);
    std::ofstream df("ewf_schedule.dot");
    df << to_dot(g, starts, csteps);
  }
  std::printf("wrote ewf_datapath.v and ewf_schedule.dot\n");
  return mismatch.empty() ? 0 : 1;
}
