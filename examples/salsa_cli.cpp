// salsa_cli — drive the full flow on a hand-written design file.
//
//   salsa_cli <design.salsa|design.expr> [--steps N] [--pipelined]
//             [--extra-regs N] [--traditional] [--verilog out.v]
//             [--report] [--buses] [--html out.html] [--vcd out.vcd] [--testbench out_tb.v]
//
// `.expr` files use the expression front end (src/frontend/expr.h); any
// other file uses the text format of src/io/text_format.h. If it
// contains a `schedule` section that schedule is used verbatim; otherwise
// the design is scheduled at --steps (default: the critical path) with the
// minimum-FU search.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "baseline/traditional.h"
#include "core/allocator.h"
#include "datapath/controller.h"
#include "datapath/simulator.h"
#include "datapath/testbench.h"
#include "datapath/vcd.h"
#include "datapath/verilog.h"
#include "frontend/expr.h"
#include "interconnect/bus_model.h"
#include "io/html_report.h"
#include "io/report.h"
#include "io/text_format.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/rng.h"

using namespace salsa;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: salsa_cli <design.salsa> [--steps N] [--pipelined] "
                 "[--extra-regs N] [--traditional] [--verilog out.v] "
                 "[--report] [--buses] [--html out.html] [--vcd out.vcd] [--testbench out_tb.v]\n");
    return 2;
  }
  int steps = 0, extra_regs = 1;
  bool pipelined = false, traditional = false, want_report = false,
       want_buses = false;
  std::string verilog_path;
  std::string html_path;
  std::string vcd_path, tb_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) fail("missing argument after " + arg);
      out = std::atoi(argv[++i]);
    };
    if (arg == "--steps") {
      next_int(steps);
    } else if (arg == "--pipelined") {
      pipelined = true;
    } else if (arg == "--extra-regs") {
      next_int(extra_regs);
    } else if (arg == "--traditional") {
      traditional = true;
    } else if (arg == "--verilog") {
      if (i + 1 >= argc) fail("missing path after --verilog");
      verilog_path = argv[++i];
    } else if (arg == "--html") {
      if (i + 1 >= argc) fail("missing path after --html");
      html_path = argv[++i];
    } else if (arg == "--vcd") {
      if (i + 1 >= argc) fail("missing path after --vcd");
      vcd_path = argv[++i];
    } else if (arg == "--testbench") {
      if (i + 1 >= argc) fail("missing path after --testbench");
      tb_path = argv[++i];
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg == "--buses") {
      want_buses = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  try {
    std::ifstream in(argv[1]);
    if (!in) fail(std::string("cannot open ") + argv[1]);
    const std::string path = argv[1];
    ParsedDesign design;
    if (path.size() > 5 && path.substr(path.size() - 5) == ".expr") {
      design.cdfg = std::make_unique<Cdfg>(compile_expressions(in));
    } else {
      design = parse_design(in);
    }
    Cdfg& g = *design.cdfg;
    std::printf("parsed '%s': %d operations, %zu inputs, %zu states, %zu outputs\n",
                g.name().c_str(), static_cast<int>(g.operations().size()),
                g.input_nodes().size(), g.state_nodes().size(),
                g.output_nodes().size());

    HwSpec hw = design.hw;
    if (!design.schedule.has_value()) {
      hw.pipelined_mul = pipelined;
      const int cp = min_schedule_length(g, hw);
      if (steps == 0) steps = cp;
      if (steps < cp)
        fail("requested " + std::to_string(steps) +
             " steps; critical path is " + std::to_string(cp));
      design.schedule = schedule_min_fu(g, hw, steps).schedule;
      std::printf("scheduled into %d steps\n", steps);
    } else {
      std::printf("using the %d-step schedule from the design file\n",
                  design.schedule->length());
    }
    const Schedule& sched = *design.schedule;
    const FuBudget fus = peak_fu_demand(sched);
    const Lifetimes lt(sched);
    AllocProblem prob(sched, FuPool::standard(fus),
                      lt.min_registers() + extra_regs);
    std::printf("resources: %d ALUs, %d MULs, %d registers (min %d)\n",
                fus.alu, fus.mul, prob.num_regs(), lt.min_registers());

    AllocationResult res =
        traditional ? allocate_traditional(prob) : allocate(prob);
    std::printf(
        "\nallocation (%s model): %d connections, %d equivalent 2-1 muxes "
        "(%d after merging), %d registers used\n",
        traditional ? "traditional" : "extended", res.cost.connections,
        res.cost.muxes, res.merging.muxes_after, res.cost.regs_used);

    Netlist nl(res.binding);
    const ControllerStats cs = analyze_controller(nl);
    std::printf("controller: %d control bits (%d mux-select, %d reg-enable, "
                "%d fu-select), %d distinct words\n",
                cs.total_bits(), cs.mux_select_bits, cs.reg_enable_bits,
                cs.fu_select_bits, cs.distinct_words);

    const std::string check = random_equivalence_check(nl, 6, 1);
    std::printf("simulation check: %s\n", check.empty() ? "MATCH" : check.c_str());

    if (want_buses) {
      const BusAllocation buses = bus_allocate(res.binding);
      const auto bad = verify_bus_allocation(res.binding, buses);
      std::printf("bus-oriented interconnect: %d buses, %d sink-mux "
                  "equivalents, %d extra drivers (%s)\n",
                  buses.num_buses(), buses.sink_muxes(), buses.extra_drivers(),
                  bad.empty() ? "verified" : bad[0].c_str());
    }
    if (want_report) std::printf("\n%s", allocation_report(res.binding).c_str());
    if (!verilog_path.empty()) {
      std::ofstream vf(verilog_path);
      vf << to_verilog(nl, g.name());
      std::printf("wrote %s\n", verilog_path.c_str());
    }
    if (!html_path.empty()) {
      std::ofstream hf(html_path);
      hf << html_report(res.binding, g.name());
      std::printf("wrote %s\n", html_path.c_str());
    }
    if (!vcd_path.empty() || !tb_path.empty()) {
      // Shared deterministic stimulus for both artifacts.
      Rng rng(7);
      const int iterations = 8;
      std::vector<std::vector<int64_t>> stim(
          iterations + 1, std::vector<int64_t>(g.input_nodes().size(), 0));
      for (auto& vec : stim)
        for (auto& v : vec) v = static_cast<int64_t>(rng.next() % 100);
      std::vector<int64_t> states(g.state_nodes().size(), 0);
      if (!vcd_path.empty()) {
        std::ofstream wf(vcd_path);
        wf << dump_vcd(nl, stim, states, iterations, g.name());
        std::printf("wrote %s\n", vcd_path.c_str());
      }
      if (!tb_path.empty()) {
        std::ofstream tf(tb_path);
        tf << to_testbench(nl, stim, states, iterations, g.name());
        std::printf("wrote %s\n", tb_path.c_str());
      }
    }
    return check.empty() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
