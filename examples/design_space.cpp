// Design-space exploration: the whole toolchain on one table. For each
// latency budget the EWF is scheduled with minimum FUs, allocated with the
// extended binding model, and characterised along every axis the library
// models — functional units, registers, interconnect (point-to-point muxes
// and bus re-allocation), register files, controller width, and estimated
// wirelength. The latency/area/interconnect trade-off curve this prints is
// the classic high-level-synthesis design-space picture.
//
// Usage: design_space [benchmark=ewf|dct|ar|ewf2]
#include <cstdio>
#include <cstring>

#include "bench_suite/ar_filter.h"
#include "bench_suite/dct.h"
#include "bench_suite/ewf.h"
#include "core/allocator.h"
#include "datapath/controller.h"
#include "interconnect/bus_model.h"
#include "layout/linear_placement.h"
#include "regfile/regfile.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/table.h"

using namespace salsa;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "ewf";
  Cdfg g = which == "dct"    ? make_dct()
           : which == "ar"   ? make_ar_filter()
           : which == "ewf2" ? make_ewf_unrolled(2)
                             : make_ewf();
  HwSpec hw;
  const int cp = min_schedule_length(g, hw);
  std::printf("design space of '%s' (critical path %d steps)\n\n",
              g.name().c_str(), cp);

  TextTable t;
  t.header({"steps", "ALUs", "MULs", "regs", "muxes", "buses", "regfiles",
            "ctrl bits", "wirelen"});
  for (int L = cp; L <= cp + 8; L += 2) {
    const FuSearchResult sr = schedule_min_fu(g, hw, L);
    const Lifetimes lt(sr.schedule);
    AllocProblem prob(sr.schedule, FuPool::standard(sr.fus),
                      lt.min_registers() + 1);
    AllocatorOptions opts;
    opts.improve.max_trials = 8;
    opts.improve.moves_per_trial = 3000;
    const AllocationResult res = allocate(prob, opts);

    Netlist nl(res.binding);
    const ControllerStats cs = analyze_controller(nl);
    const BusAllocation buses = bus_allocate(res.binding);
    const RegFileAssignment rf =
        bind_register_files(res.binding, RegFileSpec{});
    const LinearPlacement place = place_linear(res.binding, 7);

    t.row({std::to_string(L), std::to_string(sr.fus.alu),
           std::to_string(sr.fus.mul), std::to_string(res.cost.regs_used),
           std::to_string(res.merging.muxes_after),
           std::to_string(buses.num_buses()), std::to_string(rf.num_files),
           std::to_string(cs.total_bits()), fmt(place.wirelength, 0)});
  }
  std::printf("%s\n", t.render().c_str());
  return 0;
}
