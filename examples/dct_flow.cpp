// The paper's second workload (Table 3, Figure 5): the 8-point DCT. Sweeps
// several schedule lengths, allocates each with both binding models, and
// exports the CDFG itself (the paper's Figure 5) as a DOT graph.
//
// Usage: dct_flow [extra_regs=0]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "baseline/traditional.h"
#include "bench_suite/dct.h"
#include "cdfg/dot.h"
#include "core/allocator.h"
#include "datapath/simulator.h"
#include "sched/fu_search.h"
#include "util/table.h"

using namespace salsa;

int main(int argc, char** argv) {
  const int extra_regs = argc > 1 ? std::atoi(argv[1]) : 0;
  Cdfg g = make_dct();
  std::printf("DCT: %d adds, %d subs, %d const-multiplies (Figure 5)\n\n",
              g.count(OpKind::kAdd), g.count(OpKind::kSub),
              g.count(OpKind::kMul));

  {
    std::ofstream df("dct_cdfg.dot");
    df << to_dot(g);
  }

  HwSpec hw;
  TextTable table;
  table.header({"steps", "ALUs", "MULs", "min regs", "trad muxes",
                "SALSA muxes", "SALSA merged"});
  bool all_ok = true;
  for (int L : {7, 9, 11, 13}) {
    const FuSearchResult sr = schedule_min_fu(g, hw, L);
    const Lifetimes lt(sr.schedule);
    AllocProblem prob(sr.schedule, FuPool::standard(sr.fus),
                      lt.min_registers() + extra_regs);
    TraditionalOptions topt;
    topt.improve.max_trials = 10;
    topt.improve.moves_per_trial = 4000;
    AllocationResult trad = allocate_traditional(prob, topt);
    AllocatorOptions sopt;
    sopt.improve.max_trials = 10;
    sopt.improve.moves_per_trial = 4000;
    AllocationResult ext = allocate(prob, sopt);
    ImproveParams refine = sopt.improve;
    refine.seed = 99;
    ImproveResult r = improve(trad.binding, refine);
    if (r.cost.total < ext.cost.total) {
      ext.binding = std::move(r.best);
      ext.cost = r.cost;
      ext.merging = merge_muxes(ext.binding);
    }
    Netlist nl(ext.binding);
    all_ok &= random_equivalence_check(nl, 4, 3).empty();
    table.row({std::to_string(L), std::to_string(sr.fus.alu),
               std::to_string(sr.fus.mul), std::to_string(lt.min_registers()),
               std::to_string(trad.merging.muxes_after),
               std::to_string(ext.cost.muxes),
               std::to_string(ext.merging.muxes_after)});
  }
  std::printf("%s\nwrote dct_cdfg.dot\nsimulation checks: %s\n",
              table.render().c_str(), all_ok ? "MATCH" : "MISMATCH");
  return all_ok ? 0 : 1;
}
