// Figure 3 demo: an inter-register transfer implemented first as a direct
// register-to-register connection, then as a pass-through over an idle
// adder. Prints both interconnect bills side by side — the pass-through
// variant needs one connection and one 2-1 multiplexer less because both of
// its hops (R2 -> FU1, FU1 -> R1) already exist for other traffic.
#include <cstdio>

#include "core/cost.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/schedule.h"
#include "util/table.h"

using namespace salsa;

namespace {

struct Demo {
  Cdfg g{"fig3"};
  ValueId a, b, c, d, p, t, q, s;

  Demo() {
    a = g.add_input("a");
    b = g.add_input("b");
    c = g.add_input("c");
    d = g.add_input("d");
    p = g.add_op(OpKind::kAdd, a, b, "p");
    t = g.add_op(OpKind::kAdd, p, c, "t");
    q = g.add_op(OpKind::kAdd, d, c, "q");
    s = g.add_op(OpKind::kAdd, d, a, "s");
    g.add_output(t, "ot");
    g.add_output(q, "oq");
    g.add_output(s, "os");
    g.validate();
  }
};

}  // namespace

int main() {
  Demo demo;
  Cdfg& g = demo.g;
  Schedule sched(g, HwSpec{}, 5);
  sched.set_start(g.producer(demo.p), 0);
  sched.set_start(g.producer(demo.t), 1);
  sched.set_start(g.producer(demo.q), 1);
  sched.set_start(g.producer(demo.s), 3);
  sched.set_start(g.output_nodes()[0], 2);
  sched.set_start(g.output_nodes()[1], 2);
  sched.set_start(g.output_nodes()[2], 4);
  sched.validate();
  AllocProblem prob(sched, FuPool::standard(FuBudget{2, 0}), 9);
  const Lifetimes& lt = prob.lifetimes();

  auto build = [&](bool use_pass) {
    Binding bind(prob);
    bind.op(g.producer(demo.p)).fu = 1;
    bind.op(g.producer(demo.t)).fu = 0;
    bind.op(g.producer(demo.q)).fu = 1;
    bind.op(g.producer(demo.s)).fu = 0;
    auto contiguous = [&](ValueId v, RegId r) {
      StorageBinding& sb = bind.sto(lt.storage_of(v));
      for (size_t seg = 0; seg < sb.cells.size(); ++seg)
        sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    };
    contiguous(demo.a, 0);
    contiguous(demo.b, 1);
    contiguous(demo.c, 2);
    contiguous(demo.p, 3);
    contiguous(demo.t, 5);
    contiguous(demo.q, 6);
    contiguous(demo.s, 7);
    StorageBinding& w = bind.sto(lt.storage_of(demo.d));
    for (int seg = 0; seg < 3; ++seg)
      w.cells[static_cast<size_t>(seg)].assign(
          1, Cell{4, seg == 0 ? -1 : 0, kInvalidId});
    // The step-3 segment lives in R1 (register 3): a transfer during step 2.
    w.cells[3].assign(1, Cell{3, 0, use_pass ? FuId{1} : kInvalidId});
    check_legal(bind);
    return bind;
  };

  std::printf(
      "Value 'd' moves from R2 to R1 during step 2 while ALU1 is idle.\n"
      "ALU1 already reads R2 (for op q) and already writes R1 (op p).\n\n");
  TextTable table;
  table.header({"transfer", "connections", "2-1 muxes", "cost"});
  for (bool use_pass : {false, true}) {
    Binding bind = build(use_pass);
    const CostBreakdown cost = evaluate_cost(bind);
    table.row({use_pass ? "pass-through (Fig 3b)" : "direct wire (Fig 3a)",
               std::to_string(cost.connections), std::to_string(cost.muxes),
               fmt(cost.total, 0)});
    Netlist nl(bind);
    const std::string err = random_equivalence_check(nl, 4, 5);
    if (!err.empty()) {
      std::printf("simulation mismatch: %s\n", err.c_str());
      return 1;
    }
  }
  std::printf("%s\nboth variants verified on the datapath simulator\n",
              table.render().c_str());
  return 0;
}
