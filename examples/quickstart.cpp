// Quickstart: the full SALSA flow on a small hand-written CDFG.
//
//   1. describe a behaviour as a CDFG (values, operators, loop state);
//   2. schedule it (time-constrained, minimum functional units);
//   3. allocate a datapath with the extended binding model;
//   4. inspect the result: cost breakdown, register/FU usage, muxes;
//   5. prove it correct on the cycle-accurate simulator.
//
// This mirrors the paper's Figures 1 and 2: the same behaviour bound under
// the traditional model (one register per value) and under the SALSA model
// (per-step segments, copies, pass-throughs).
#include <cstdio>

#include "baseline/traditional.h"
#include "core/allocator.h"
#include "datapath/simulator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"
#include "util/table.h"

using namespace salsa;

int main() {
  // A second-order IIR-ish loop: two states, three adds, two constant
  // multiplies — small enough to read, rich enough to show the model.
  Cdfg g("quickstart");
  const ValueId x = g.add_input("x");
  const ValueId s1 = g.add_state("s1");
  const ValueId s2 = g.add_state("s2");
  const ValueId k1 = g.add_const(3, "k1");
  const ValueId k2 = g.add_const(5, "k2");
  const ValueId t1 = g.add_op(OpKind::kAdd, x, s1, "t1");
  const ValueId m1 = g.add_op(OpKind::kMul, t1, k1, "m1");
  const ValueId t2 = g.add_op(OpKind::kAdd, m1, s2, "t2");
  const ValueId m2 = g.add_op(OpKind::kMul, t2, k2, "m2");
  const ValueId y = g.add_op(OpKind::kAdd, m2, t1, "y");
  g.set_state_next(s1, t2);
  g.set_state_next(s2, y);
  g.add_output(y, "y");
  g.validate();

  // Schedule: minimum length, then minimum FUs for it.
  HwSpec hw;  // adders 1 step, multipliers 2 (the paper's assumptions)
  const int length = min_schedule_length(g, hw);
  const FuSearchResult sr = schedule_min_fu(g, hw, length);
  std::printf("scheduled '%s' into %d control steps: %d ALU(s), %d MUL(s)\n",
              g.name().c_str(), length, sr.fus.alu, sr.fus.mul);

  // Allocation problem: the schedule, an FU pool, a register budget.
  const Lifetimes lt(sr.schedule);
  AllocProblem prob(sr.schedule, FuPool::standard(sr.fus),
                    lt.min_registers() + 1);
  std::printf("minimum registers for this schedule: %d\n\n",
              lt.min_registers());

  // Traditional binding model (Figure 1) vs the extended model (Figure 2).
  TraditionalOptions topt;
  topt.improve.max_trials = 8;
  topt.improve.moves_per_trial = 2000;
  const AllocationResult trad = allocate_traditional(prob, topt);

  AllocatorOptions sopt;
  sopt.improve.max_trials = 8;
  sopt.improve.moves_per_trial = 2000;
  const AllocationResult ext = allocate(prob, sopt);

  TextTable table;
  table.header({"model", "2-1 muxes", "after merge", "connections", "regs"});
  table.row({"traditional", std::to_string(trad.cost.muxes),
             std::to_string(trad.merging.muxes_after),
             std::to_string(trad.cost.connections),
             std::to_string(trad.cost.regs_used)});
  table.row({"SALSA (extended)", std::to_string(ext.cost.muxes),
             std::to_string(ext.merging.muxes_after),
             std::to_string(ext.cost.connections),
             std::to_string(ext.cost.regs_used)});
  std::printf("%s\n", table.render().c_str());

  // Dynamic proof: the allocated datapath computes what the CDFG computes.
  Netlist nl(ext.binding);
  const std::string mismatch = random_equivalence_check(nl, 8, 42);
  std::printf("datapath vs. behavioural reference over 8 iterations: %s\n",
              mismatch.empty() ? "MATCH" : mismatch.c_str());
  return mismatch.empty() ? 0 : 1;
}
