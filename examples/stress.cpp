// Soak test: random CDFGs through the complete pipeline — generate,
// schedule, allocate (extended model), statically verify, and prove the
// datapath equivalent to the behavioural reference. Any failure prints the
// reproducing seed and stops.
//
// Usage: stress [iterations=100] [base_seed=1]
#include <cstdio>
#include <cstdlib>

#include "bench_suite/random_cdfg.h"
#include "core/allocator.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/asap_alap.h"
#include "sched/fu_search.h"

using namespace salsa;

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 100;
  const uint64_t base = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  int passed = 0;
  for (int i = 0; i < iterations; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    try {
      RandomCdfgParams p;
      p.seed = seed;
      p.num_ops = 8 + static_cast<int>(seed % 40);
      p.num_inputs = 1 + static_cast<int>(seed % 4);
      p.num_states = static_cast<int>(seed % 4);
      p.num_consts = static_cast<int>(seed % 3);
      p.mul_frac = 0.2 + 0.02 * static_cast<double>(seed % 10);
      Cdfg g = make_random_cdfg(p);

      HwSpec hw;
      hw.pipelined_mul = seed % 2 == 0;
      const int len =
          min_schedule_length(g, hw) + static_cast<int>(seed % 5);
      const FuSearchResult sr = schedule_min_fu(g, hw, len);
      AllocProblem prob(sr.schedule, FuPool::standard(sr.fus),
                        Lifetimes(sr.schedule).min_registers() +
                            static_cast<int>(seed % 3));
      AllocatorOptions opts;
      opts.improve.max_trials = 3;
      opts.improve.moves_per_trial = 400;
      opts.improve.seed = seed;
      const AllocationResult res = allocate(prob, opts);
      check_legal(res.binding);
      Netlist nl(res.binding);
      const std::string err = random_equivalence_check(nl, 4, seed);
      if (!err.empty()) {
        std::printf("FAIL seed=%llu: %s\n",
                    static_cast<unsigned long long>(seed), err.c_str());
        return 1;
      }
      ++passed;
    } catch (const Error& e) {
      std::printf("FAIL seed=%llu: exception: %s\n",
                  static_cast<unsigned long long>(seed), e.what());
      return 1;
    }
    if ((i + 1) % 25 == 0)
      std::printf("  %d/%d designs verified\n", i + 1, iterations);
  }
  std::printf("stress: %d/%d random designs allocated and verified\n", passed,
              iterations);
  return 0;
}
