// Figure 4 demo: keeping a second copy of a value in a register that
// already feeds the consumer's functional unit removes a point-to-point
// connection and the multiplexer it would need — the paper's value-split
// transformation.
#include <cstdio>

#include "core/cost.h"
#include "core/verify.h"
#include "datapath/simulator.h"
#include "sched/schedule.h"
#include "util/table.h"

using namespace salsa;

int main() {
  Cdfg g("fig4");
  const ValueId a = g.add_input("a");
  const ValueId b = g.add_input("b");
  const ValueId c = g.add_input("c");
  const ValueId d = g.add_input("d");
  const ValueId u = g.add_op(OpKind::kAdd, a, b, "u");
  const ValueId v = g.add_op(OpKind::kAdd, a, c, "v");
  const ValueId x = g.add_op(OpKind::kAdd, u, c, "x");
  const ValueId y = g.add_op(OpKind::kAdd, v, b, "y");
  const ValueId z = g.add_op(OpKind::kAdd, v, d, "z");
  g.add_output(x, "ox");
  g.add_output(y, "oy");
  g.add_output(z, "oz");
  g.validate();

  Schedule sched(g, HwSpec{}, 5);
  sched.set_start(g.producer(u), 0);
  sched.set_start(g.producer(v), 1);
  sched.set_start(g.producer(x), 1);
  sched.set_start(g.producer(y), 2);
  sched.set_start(g.producer(z), 3);
  sched.set_start(g.output_nodes()[0], 2);
  sched.set_start(g.output_nodes()[1], 3);
  sched.set_start(g.output_nodes()[2], 4);
  sched.validate();
  AllocProblem prob(sched, FuPool::standard(FuBudget{2, 0}), 10);
  const Lifetimes& lt = prob.lifetimes();

  auto build = [&](bool with_copy) {
    Binding bind(prob);
    bind.op(g.producer(u)).fu = 0;
    bind.op(g.producer(v)).fu = 0;
    bind.op(g.producer(x)).fu = 1;
    bind.op(g.producer(y)).fu = 0;
    bind.op(g.producer(z)).fu = 1;
    auto contiguous = [&](ValueId val, RegId r) {
      StorageBinding& sb = bind.sto(lt.storage_of(val));
      for (size_t seg = 0; seg < sb.cells.size(); ++seg)
        sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    };
    contiguous(a, 0);
    contiguous(b, 1);
    contiguous(c, 2);
    contiguous(d, 3);
    contiguous(u, 5);  // R2
    contiguous(v, 4);  // R1
    contiguous(x, 6);
    contiguous(y, 7);
    contiguous(z, 8);
    if (with_copy) {
      StorageBinding& sv = bind.sto(lt.storage_of(v));
      sv.cells[0].push_back(Cell{5, -1, kInvalidId});  // copy born in R2
      sv.cells[1].push_back(Cell{5, 1, kInvalidId});   // held in R2
      const Storage& sto = lt.storage(lt.storage_of(v));
      for (size_t ri = 0; ri < sto.reads.size(); ++ri)
        if (sto.reads[ri].consumer == g.producer(z)) sv.read_cell[ri] = 1;
    }
    check_legal(bind);
    return bind;
  };

  std::printf(
      "Value 'v' (in R1) is read by ops on ALU0 and ALU1. R2 already feeds\n"
      "ALU1 (for op x) and is already written by ALU0 (for value u), so a\n"
      "copy of 'v' in R2 rides entirely on existing interconnect.\n\n");
  TextTable table;
  table.header({"binding", "connections", "2-1 muxes", "cost"});
  for (bool with_copy : {false, true}) {
    Binding bind = build(with_copy);
    const CostBreakdown cost = evaluate_cost(bind);
    table.row({with_copy ? "with copy (Fig 4b)" : "single copy (Fig 4a)",
               std::to_string(cost.connections), std::to_string(cost.muxes),
               fmt(cost.total, 0)});
    Netlist nl(bind);
    const std::string err = random_equivalence_check(nl, 4, 9);
    if (!err.empty()) {
      std::printf("simulation mismatch: %s\n", err.c_str());
      return 1;
    }
  }
  std::printf("%s\nboth variants verified on the datapath simulator\n",
              table.render().c_str());
  return 0;
}
