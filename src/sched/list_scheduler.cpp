#include "sched/list_scheduler.h"

#include <algorithm>

#include "sched/asap_alap.h"

namespace salsa {

FuClass fu_class_of(OpKind k) {
  return k == OpKind::kMul ? FuClass::kMul : FuClass::kAlu;
}

std::optional<Schedule> list_schedule(const Cdfg& g, const HwSpec& hw,
                                      int length, const FuBudget& budget,
                                      Rng* jitter) {
  const auto alap_opt = alap_starts(g, hw, length);
  if (!alap_opt) return std::nullopt;
  const auto& alap = *alap_opt;
  // Optional priority noise: breaks ties (and mildly reorders near-ties) so
  // repeated calls yield distinct but equally resource-bounded schedules.
  std::vector<int> noise(static_cast<size_t>(g.num_nodes()), 0);
  if (jitter != nullptr)
    for (auto& n : noise) n = jitter->uniform(3);

  Schedule sched(g, hw, length);
  std::vector<bool> done(static_cast<size_t>(g.num_nodes()), false);
  // Non-operations other than outputs sit at step 0 and are "done" upfront.
  int remaining = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (is_operation(n.kind) || n.kind == OpKind::kOutput) {
      ++remaining;
    } else {
      done[static_cast<size_t>(id)] = true;
    }
  }

  // Anti-dependence bookkeeping: producer of a state's next content may only
  // be scheduled once every consumer of the old content is scheduled.
  std::vector<std::vector<NodeId>> anti_preds(
      static_cast<size_t>(g.num_nodes()));
  for (NodeId sn : g.state_nodes()) {
    const Node& s = g.node(sn);
    const NodeId pn = g.producer(s.state_next);
    for (NodeId c : g.value(s.out).consumers)
      anti_preds[static_cast<size_t>(pn)].push_back(c);
  }

  std::vector<std::vector<int>> busy(2, std::vector<int>(
                                            static_cast<size_t>(length), 0));

  for (int step = 0; step < length && remaining > 0; ++step) {
    // Collect candidates whose dependences allow a start at `step`.
    std::vector<NodeId> cands;
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      if (done[static_cast<size_t>(id)]) continue;
      const Node& n = g.node(id);
      bool ok = true;
      for (ValueId in : n.ins) {
        if (g.is_const_value(in)) continue;
        const NodeId p = g.producer(in);
        if (!done[static_cast<size_t>(p)] || sched.ready(p) > step) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      const int d = hw.delay(n.kind);
      for (NodeId c : anti_preds[static_cast<size_t>(id)]) {
        if (!done[static_cast<size_t>(c)] ||
            step < sched.start(c) + 1 - d) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (is_operation(n.kind)) {
        const bool read_in_iter = !g.value(n.out).consumers.empty();
        if (step + d + (read_in_iter ? 1 : 0) > length) continue;  // too late
      }
      cands.push_back(id);
    }
    // Most urgent first; outputs cost nothing and are placed unconditionally.
    std::sort(cands.begin(), cands.end(), [&](NodeId a, NodeId b) {
      const int pa = alap[static_cast<size_t>(a)] + noise[static_cast<size_t>(a)];
      const int pb = alap[static_cast<size_t>(b)] + noise[static_cast<size_t>(b)];
      return pa != pb ? pa < pb : a < b;
    });
    for (NodeId id : cands) {
      const Node& n = g.node(id);
      if (n.kind == OpKind::kOutput) {
        sched.set_start(id, step);
        done[static_cast<size_t>(id)] = true;
        --remaining;
        continue;
      }
      const FuClass cls = fu_class_of(n.kind);
      const int occ = hw.occupancy(n.kind);
      bool fits = true;
      for (int t = step; t < step + occ; ++t) {
        if (t >= length ||
            busy[static_cast<size_t>(cls)][static_cast<size_t>(t)] >=
                budget.of(cls)) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      for (int t = step; t < step + occ; ++t)
        ++busy[static_cast<size_t>(cls)][static_cast<size_t>(t)];
      sched.set_start(id, step);
      done[static_cast<size_t>(id)] = true;
      --remaining;
    }
  }
  if (remaining > 0) return std::nullopt;
  sched.validate();
  return sched;
}

}  // namespace salsa
