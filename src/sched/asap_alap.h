// ASAP/ALAP analysis over the CDFG's dependence constraints, including the
// loop-carried state anti-dependences. Used for mobility windows (force-
// directed scheduling), list-scheduling priorities, and slack queries (the
// role the paper's slack nodes play during scheduling [16]).
#pragma once

#include <optional>
#include <vector>

#include "sched/schedule.h"

namespace salsa {

/// Earliest start step per node (resource-free). Throws on dependence cycles
/// with positive total latency (infeasible CDFG).
std::vector<int> asap_starts(const Cdfg& cdfg, const HwSpec& hw);

/// Latest start step per node for a schedule of `length` steps, or
/// std::nullopt if `length` is infeasible. Non-operation nodes other than
/// outputs are pinned to step 0.
std::optional<std::vector<int>> alap_starts(const Cdfg& cdfg, const HwSpec& hw,
                                            int length);

/// Minimum feasible schedule length (the critical path in control steps).
int min_schedule_length(const Cdfg& cdfg, const HwSpec& hw);

/// Slack (alap - asap) per node for the given length; nullopt if infeasible.
std::optional<std::vector<int>> node_slack(const Cdfg& cdfg, const HwSpec& hw,
                                           int length);

}  // namespace salsa
