#include "sched/asap_alap.h"

#include <algorithm>
#include <limits>

namespace salsa {

namespace {

// One difference constraint: start(to) >= start(from) + weight.
struct ConstraintEdge {
  NodeId from;
  NodeId to;
  int weight;
};

std::vector<ConstraintEdge> constraint_edges(const Cdfg& g, const HwSpec& hw) {
  std::vector<ConstraintEdge> edges;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    for (ValueId in : n.ins) {
      if (g.is_const_value(in)) continue;
      const NodeId p = g.producer(in);
      edges.push_back({p, id, hw.delay(g.node(p).kind)});
    }
  }
  // State anti-dependences: the producer of the next content may not make the
  // new value ready while the old content is still being read:
  //   start(prod_next) + delay(prod_next) >= start(consumer) + 1.
  for (NodeId sn : g.state_nodes()) {
    const Node& s = g.node(sn);
    const NodeId pn = g.producer(s.state_next);
    const int d = hw.delay(g.node(pn).kind);
    for (NodeId c : g.value(s.out).consumers)
      edges.push_back({c, pn, 1 - d});
  }
  return edges;
}

}  // namespace

std::vector<int> asap_starts(const Cdfg& g, const HwSpec& hw) {
  const auto edges = constraint_edges(g, hw);
  std::vector<int> start(static_cast<size_t>(g.num_nodes()), 0);
  // Bellman-Ford longest-path relaxation; the graph is tiny.
  for (int pass = 0; pass <= g.num_nodes(); ++pass) {
    bool changed = false;
    for (const auto& e : edges) {
      const int lb = start[static_cast<size_t>(e.from)] + e.weight;
      if (lb > start[static_cast<size_t>(e.to)]) {
        start[static_cast<size_t>(e.to)] = lb;
        changed = true;
      }
    }
    if (!changed) return start;
  }
  fail("CDFG '" + g.name() + "' has an infeasible dependence cycle");
}

std::optional<std::vector<int>> alap_starts(const Cdfg& g, const HwSpec& hw,
                                            int length) {
  const auto edges = constraint_edges(g, hw);
  constexpr int kInf = std::numeric_limits<int>::max() / 4;
  std::vector<int> ub(static_cast<size_t>(g.num_nodes()), kInf);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (is_operation(n.kind)) {
      const bool read_in_iter = !g.value(n.out).consumers.empty();
      // Result must be ready by length-1 if read, by length otherwise
      // (value feeding only a state may be latched at the final step edge).
      ub[static_cast<size_t>(id)] =
          length - hw.delay(n.kind) - (read_in_iter ? 1 : 0);
    } else if (n.kind == OpKind::kOutput) {
      ub[static_cast<size_t>(id)] = length - 1;
    } else {
      ub[static_cast<size_t>(id)] = 0;
    }
    if (ub[static_cast<size_t>(id)] < 0) return std::nullopt;
  }
  for (int pass = 0; pass <= g.num_nodes(); ++pass) {
    bool changed = false;
    for (const auto& e : edges) {
      // start(to) >= start(from) + w  =>  ub(from) <= ub(to) - w.
      const int cap = ub[static_cast<size_t>(e.to)] - e.weight;
      if (cap < ub[static_cast<size_t>(e.from)]) {
        ub[static_cast<size_t>(e.from)] = cap;
        changed = true;
      }
    }
    if (!changed) break;
    if (pass == g.num_nodes()) return std::nullopt;  // negative cycle
  }
  const auto asap = asap_starts(g, hw);
  for (NodeId id = 0; id < g.num_nodes(); ++id)
    if (ub[static_cast<size_t>(id)] < asap[static_cast<size_t>(id)])
      return std::nullopt;
  return ub;
}

int min_schedule_length(const Cdfg& g, const HwSpec& hw) {
  const auto asap = asap_starts(g, hw);
  int len = 1;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (is_operation(n.kind)) {
      const bool read_in_iter = !g.value(n.out).consumers.empty();
      len = std::max(len, asap[static_cast<size_t>(id)] + hw.delay(n.kind) +
                              (read_in_iter ? 1 : 0));
    } else if (n.kind == OpKind::kOutput) {
      len = std::max(len, asap[static_cast<size_t>(id)] + 1);
    }
  }
  // The bound above is necessary; verify sufficiency (anti-dependences can in
  // principle push it further).
  while (!alap_starts(g, hw, len).has_value()) ++len;
  return len;
}

std::optional<std::vector<int>> node_slack(const Cdfg& g, const HwSpec& hw,
                                           int length) {
  const auto alap = alap_starts(g, hw, length);
  if (!alap) return std::nullopt;
  const auto asap = asap_starts(g, hw);
  std::vector<int> slack(asap.size());
  for (size_t i = 0; i < asap.size(); ++i) slack[i] = (*alap)[i] - asap[i];
  return slack;
}

}  // namespace salsa
