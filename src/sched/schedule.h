// Schedules: the assignment of CDFG nodes to control steps, plus the
// hardware timing assumptions (HwSpec) under which the assignment is legal.
//
// Timing contract (used consistently by scheduling, lifetime analysis,
// binding, and the datapath simulator):
//   * an operation scheduled at step s with delay d occupies steps s..s+d-1
//     and its result is latched at the end of step s+d-1, readable from step
//     s+d ("ready step");
//   * a consumer scheduled at step r reads its operands at the start of r;
//   * inputs, constants and states are ready at step 0;
//   * an Output node scheduled at step r samples its value during step r;
//   * loop-carried state: all reads of the current content must happen at or
//     before the step in which the next content is latched, i.e.
//     last_read(state) < ready(state_next)  (anti-dependence).
#pragma once

#include <vector>

#include "cdfg/cdfg.h"

namespace salsa {

/// Operator timing assumptions (the paper's Section 5 defaults: adders one
/// control step, multipliers two, pipelined multipliers with a data
/// introduction interval of one step).
struct HwSpec {
  int add_delay = 1;  ///< delay of Add/Sub/Nop ops
  int mul_delay = 2;  ///< delay of Mul ops
  bool pipelined_mul = false;

  /// Result latency of a node kind in control steps (0 for non-operations).
  int delay(OpKind k) const {
    switch (k) {
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kNop:
        return add_delay;
      case OpKind::kMul:
        return mul_delay;
      default:
        return 0;
    }
  }

  /// Number of steps the executing FU is busy (1 for pipelined multipliers).
  int occupancy(OpKind k) const {
    if (k == OpKind::kMul && pipelined_mul) return 1;
    return delay(k);
  }
};

/// A complete schedule of a CDFG: every node has a start step; the schedule
/// has a fixed length (number of control steps, the loop period for cyclic
/// designs).
class Schedule {
 public:
  Schedule(const Cdfg& cdfg, HwSpec hw, int length);

  const Cdfg& cdfg() const { return *cdfg_; }
  const HwSpec& hw() const { return hw_; }
  int length() const { return length_; }

  int start(NodeId n) const { return start_[static_cast<size_t>(n)]; }
  void set_start(NodeId n, int step) { start_[static_cast<size_t>(n)] = step; }

  /// Last step the node occupies its FU / executes (start for delay 0).
  int finish(NodeId n) const;
  /// First step the node's result value can be read.
  int ready(NodeId n) const;

  /// First step value v can be read (0 for inputs/consts/states).
  int value_ready(ValueId v) const;
  /// Last step at which v is read within the iteration; -1 if never read.
  /// Output samples count as reads.
  int value_last_read(ValueId v) const;

  /// Checks all precedence, boundary and state anti-dependence constraints;
  /// throws salsa::Error with a description on violation.
  void validate() const;

  /// Number of operations whose FU occupancy includes `step`, per kind
  /// bucket. Used by tests and the FU search.
  int ops_active(OpKind k, int step) const;

 private:
  const Cdfg* cdfg_;
  HwSpec hw_;
  int length_;
  std::vector<int> start_;
};

}  // namespace salsa
