// Resource-constrained list scheduling: given a schedule length and a budget
// of ALU-class and multiplier-class functional units, produce a legal
// schedule or report infeasibility. Priorities are ALAP urgency.
#pragma once

#include <optional>

#include "sched/schedule.h"
#include "util/rng.h"

namespace salsa {

/// FU class buckets used during scheduling. The binding layer later deals in
/// concrete FU instances; for scheduling only the class capacity matters.
enum class FuClass : uint8_t { kAlu, kMul };

/// Class executing a given operation kind.
FuClass fu_class_of(OpKind k);

struct FuBudget {
  int alu = 0;
  int mul = 0;
  int of(FuClass c) const { return c == FuClass::kAlu ? alu : mul; }
};

/// Schedules the CDFG into `length` steps using at most `budget` FUs of each
/// class (pipelined multipliers per hw.pipelined_mul). Returns std::nullopt
/// if the scheduler cannot fit the graph (which does not prove
/// infeasibility, list scheduling being a heuristic). When `jitter` is
/// given, candidate priorities receive random noise — used to generate
/// distinct schedule variants with the same resource envelope.
std::optional<Schedule> list_schedule(const Cdfg& cdfg, const HwSpec& hw,
                                      int length, const FuBudget& budget,
                                      Rng* jitter = nullptr);

}  // namespace salsa
