// Minimum-functional-unit search for a latency budget: force-directed
// scheduling provides a good starting envelope, then a small lattice search
// with the list scheduler tightens it. The paper's experiments fix FU and
// register counts by scheduling (Section 1); this module regenerates those
// envelopes.
#pragma once

#include "sched/list_scheduler.h"
#include "util/thread_pool.h"

namespace salsa {

struct FuSearchResult {
  Schedule schedule;
  FuBudget fus;  ///< peak concurrent FU demand of `schedule`
};

/// Peak per-class FU demand of a schedule.
FuBudget peak_fu_demand(const Schedule& sched);

/// Finds a schedule of `length` steps minimising alu_cost*#ALU +
/// mul_cost*#MUL. Throws if `length` is infeasible. The candidate FU
/// lattice is probed with the list scheduler under `par`; the probe set and
/// the in-order reduction are independent of the thread count, so the
/// result is identical for any parallelism.
FuSearchResult schedule_min_fu(const Cdfg& cdfg, const HwSpec& hw, int length,
                               double alu_cost = 1.0, double mul_cost = 4.0,
                               const Parallelism& par = {});

}  // namespace salsa
