#include "sched/schedule.h"

#include <algorithm>

namespace salsa {

Schedule::Schedule(const Cdfg& cdfg, HwSpec hw, int length)
    : cdfg_(&cdfg), hw_(hw), length_(length) {
  SALSA_CHECK_MSG(length > 0, "schedule length must be positive");
  start_.assign(static_cast<size_t>(cdfg.num_nodes()), 0);
}

int Schedule::finish(NodeId n) const {
  const int d = hw_.delay(cdfg_->node(n).kind);
  return start(n) + std::max(0, d - 1);
}

int Schedule::ready(NodeId n) const {
  return start(n) + hw_.delay(cdfg_->node(n).kind);
}

int Schedule::value_ready(ValueId v) const {
  return ready(cdfg_->producer(v));
}

int Schedule::value_last_read(ValueId v) const {
  int last = -1;
  for (NodeId c : cdfg_->value(v).consumers) last = std::max(last, start(c));
  return last;
}

void Schedule::validate() const {
  const Cdfg& g = *cdfg_;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (start(id) < 0 || start(id) >= length_)
      fail("node '" + n.name + "' scheduled outside [0, length)");
    if (!is_operation(n.kind) && n.kind != OpKind::kOutput && start(id) != 0)
      fail("node '" + n.name + "' (non-operation) must start at step 0");
    for (ValueId in : n.ins) {
      if (g.is_const_value(in)) continue;
      if (start(id) < value_ready(in))
        fail("node '" + n.name + "' reads value '" + g.value(in).name +
             "' before it is ready");
    }
    if (is_operation(n.kind)) {
      // A result must be usable: ready by length-1 if read or output within
      // the iteration, ready by length if it only feeds a state.
      const int rdy = ready(id);
      const bool read_in_iter = value_last_read(n.out) >= 0;
      if (rdy > length_) fail("node '" + n.name + "' finishes after the schedule end");
      if (read_in_iter && rdy > length_ - 1)
        fail("node '" + n.name + "' result is read but not ready before the end");
    }
  }
  // State anti-dependence: old content must outlive all its reads.
  for (NodeId sn : g.state_nodes()) {
    const Node& s = g.node(sn);
    const int last = value_last_read(s.out);
    const int next_ready = value_ready(s.state_next);
    if (last >= next_ready)
      fail("state '" + s.name + "': next content ready at step " +
           std::to_string(next_ready) + " but old content still read at step " +
           std::to_string(last));
  }
}

int Schedule::ops_active(OpKind k, int step) const {
  int n = 0;
  for (NodeId id = 0; id < cdfg_->num_nodes(); ++id) {
    const Node& nd = cdfg_->node(id);
    if (nd.kind != k || !is_operation(nd.kind)) continue;
    const int occ = hw_.occupancy(nd.kind);
    if (step >= start(id) && step < start(id) + occ) ++n;
  }
  return n;
}

}  // namespace salsa
