// Time-constrained force-directed scheduling (Paulin-style): balances the
// per-step operator distribution so the number of functional units needed for
// a given latency is minimised. Used to regenerate the schedule envelopes the
// paper's SALSA scheduler [16] provides (minimum FUs per latency budget).
#pragma once

#include "sched/schedule.h"

namespace salsa {

/// Schedules the CDFG into `length` steps, minimising the peak per-class FU
/// demand via distribution-graph force minimisation. Throws salsa::Error if
/// `length` is below the critical path.
Schedule force_directed_schedule(const Cdfg& cdfg, const HwSpec& hw,
                                 int length);

}  // namespace salsa
