#include "sched/force_directed.h"

#include <algorithm>
#include <limits>

#include "sched/asap_alap.h"
#include "sched/list_scheduler.h"

namespace salsa {

namespace {

struct Frames {
  std::vector<int> lo;  // earliest start per node
  std::vector<int> hi;  // latest start per node
};

// Recomputes mobility frames with some nodes pinned to fixed steps.
// pins[i] >= 0 pins node i. Returns false if the pin set is infeasible.
bool frames_with_pins(const Cdfg& g, const HwSpec& hw, int length,
                      const std::vector<int>& pins, Frames& out) {
  // Start from the unpinned analysis, then clamp and re-relax.
  const auto asap = asap_starts(g, hw);
  const auto alap = alap_starts(g, hw, length);
  if (!alap) return false;
  out.lo = asap;
  out.hi = *alap;
  for (size_t i = 0; i < pins.size(); ++i) {
    if (pins[i] < 0) continue;
    if (pins[i] < out.lo[i] || pins[i] > out.hi[i]) return false;
    out.lo[i] = out.hi[i] = pins[i];
  }
  // Re-relax both bounds against all difference constraints.
  struct Edge {
    NodeId from, to;
    int w;
  };
  std::vector<Edge> edges;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    for (ValueId in : g.node(id).ins) {
      if (g.is_const_value(in)) continue;
      const NodeId p = g.producer(in);
      edges.push_back({p, id, hw.delay(g.node(p).kind)});
    }
  }
  for (NodeId sn : g.state_nodes()) {
    const Node& s = g.node(sn);
    const NodeId pn = g.producer(s.state_next);
    const int d = hw.delay(g.node(pn).kind);
    for (NodeId c : g.value(s.out).consumers) edges.push_back({c, pn, 1 - d});
  }
  for (int pass = 0; pass <= g.num_nodes(); ++pass) {
    bool changed = false;
    for (const auto& e : edges) {
      const size_t f = static_cast<size_t>(e.from), t = static_cast<size_t>(e.to);
      if (out.lo[f] + e.w > out.lo[t]) {
        out.lo[t] = out.lo[f] + e.w;
        changed = true;
      }
      if (out.hi[t] - e.w < out.hi[f]) {
        out.hi[f] = out.hi[t] - e.w;
        changed = true;
      }
    }
    if (!changed) break;
    if (pass == g.num_nodes()) return false;
  }
  for (size_t i = 0; i < out.lo.size(); ++i)
    if (out.lo[i] > out.hi[i]) return false;
  return true;
}

}  // namespace

Schedule force_directed_schedule(const Cdfg& g, const HwSpec& hw, int length) {
  std::vector<int> pins(static_cast<size_t>(g.num_nodes()), -1);
  // Non-operations are pinned: sources at 0; outputs handled at the end.
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (!is_operation(n.kind) && n.kind != OpKind::kOutput)
      pins[static_cast<size_t>(id)] = 0;
  }
  Frames fr;
  if (!frames_with_pins(g, hw, length, pins, fr))
    fail("force_directed_schedule: length " + std::to_string(length) +
         " is infeasible for '" + g.name() + "'");

  const auto ops = g.operations();
  // Distribution graphs, one per FU class.
  std::vector<std::vector<double>> dg(
      2, std::vector<double>(static_cast<size_t>(length), 0.0));
  auto add_distribution = [&](NodeId id, double sign) {
    const Node& n = g.node(id);
    const auto cls = static_cast<size_t>(fu_class_of(n.kind));
    const int occ = hw.occupancy(n.kind);
    const size_t i = static_cast<size_t>(id);
    const double p = sign / (fr.hi[i] - fr.lo[i] + 1);
    for (int s = fr.lo[i]; s <= fr.hi[i]; ++s)
      for (int t = s; t < s + occ && t < length; ++t)
        dg[cls][static_cast<size_t>(t)] += p;
  };
  for (NodeId id : ops) add_distribution(id, +1.0);

  // Greedy global-force minimisation: repeatedly pin the (op, step) whose
  // tentative placement minimises the sum of squared distribution heights.
  int unpinned = 0;
  for (NodeId id : ops)
    if (pins[static_cast<size_t>(id)] < 0) ++unpinned;
  while (unpinned > 0) {
    double best_metric = std::numeric_limits<double>::infinity();
    NodeId best_op = kInvalidId;
    int best_step = -1;
    for (NodeId id : ops) {
      const size_t i = static_cast<size_t>(id);
      if (pins[i] >= 0) continue;
      const Node& n = g.node(id);
      const auto cls = static_cast<size_t>(fu_class_of(n.kind));
      const int occ = hw.occupancy(n.kind);
      const double p = 1.0 / (fr.hi[i] - fr.lo[i] + 1);
      for (int s = fr.lo[i]; s <= fr.hi[i]; ++s) {
        // Metric delta of replacing the spread distribution by a point mass
        // at s, evaluated on this op's class DG only (others unchanged).
        double metric = 0;
        for (int t = 0; t < length; ++t) {
          double h = dg[cls][static_cast<size_t>(t)];
          // remove the op's current contribution at t
          const int lo_touch = std::max(fr.lo[i], t - occ + 1);
          const int hi_touch = std::min(fr.hi[i], t);
          if (lo_touch <= hi_touch) h -= p * (hi_touch - lo_touch + 1);
          if (t >= s && t < s + occ) h += 1.0;
          metric += h * h;
        }
        if (metric < best_metric) {
          best_metric = metric;
          best_op = id;
          best_step = s;
        }
      }
    }
    SALSA_CHECK(best_op != kInvalidId);
    // Pin and recompute frames + distributions.
    pins[static_cast<size_t>(best_op)] = best_step;
    Frames nf;
    const bool ok = frames_with_pins(g, hw, length, pins, nf);
    SALSA_CHECK_MSG(ok, "force-directed pin produced infeasible frames");
    for (NodeId id : ops) add_distribution(id, -1.0);
    fr = nf;
    for (NodeId id : ops) add_distribution(id, +1.0);
    --unpinned;
  }

  Schedule sched(g, hw, length);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (is_operation(n.kind)) {
      sched.set_start(id, pins[static_cast<size_t>(id)]);
    } else if (n.kind == OpKind::kOutput) {
      sched.set_start(id, 0);  // fixed below once producers are pinned
    }
  }
  // Outputs sample as early as possible (shortest lifetimes).
  for (NodeId id : g.output_nodes())
    sched.set_start(id, sched.value_ready(g.node(id).ins[0]));
  sched.validate();
  return sched;
}

}  // namespace salsa
