#include "sched/fu_search.h"

#include <algorithm>

#include "sched/force_directed.h"

namespace salsa {

FuBudget peak_fu_demand(const Schedule& sched) {
  FuBudget peak;
  for (int t = 0; t < sched.length(); ++t) {
    int alu = sched.ops_active(OpKind::kAdd, t) +
              sched.ops_active(OpKind::kSub, t) +
              sched.ops_active(OpKind::kNop, t);
    int mul = sched.ops_active(OpKind::kMul, t);
    peak.alu = std::max(peak.alu, alu);
    peak.mul = std::max(peak.mul, mul);
  }
  return peak;
}

FuSearchResult schedule_min_fu(const Cdfg& g, const HwSpec& hw, int length,
                               double alu_cost, double mul_cost) {
  Schedule fds = force_directed_schedule(g, hw, length);
  FuBudget best_fus = peak_fu_demand(fds);
  Schedule best = fds;
  double best_cost = alu_cost * best_fus.alu + mul_cost * best_fus.mul;

  // Occupancy lower bounds: total busy-steps / length, rounded up.
  int alu_occ = 0, mul_occ = 0;
  for (NodeId id : g.operations()) {
    const OpKind k = g.node(id).kind;
    (fu_class_of(k) == FuClass::kAlu ? alu_occ : mul_occ) += hw.occupancy(k);
  }
  const int alu_lb = std::max(g.count(OpKind::kAdd) + g.count(OpKind::kSub) +
                                      g.count(OpKind::kNop) > 0 ? 1 : 0,
                              (alu_occ + length - 1) / length);
  const int mul_lb = std::max(g.count(OpKind::kMul) > 0 ? 1 : 0,
                              (mul_occ + length - 1) / length);

  for (int alu = alu_lb; alu <= std::max(best_fus.alu, alu_lb); ++alu) {
    for (int mul = mul_lb; mul <= std::max(best_fus.mul, mul_lb); ++mul) {
      const double cost = alu_cost * alu + mul_cost * mul;
      if (cost >= best_cost) continue;
      auto s = list_schedule(g, hw, length, FuBudget{alu, mul});
      if (!s) continue;
      const FuBudget demand = peak_fu_demand(*s);
      const double real_cost = alu_cost * demand.alu + mul_cost * demand.mul;
      if (real_cost < best_cost) {
        best_cost = real_cost;
        best = *s;
        best_fus = demand;
      }
    }
  }
  return FuSearchResult{best, best_fus};
}

}  // namespace salsa
