#include "sched/fu_search.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "sched/force_directed.h"

namespace salsa {

FuBudget peak_fu_demand(const Schedule& sched) {
  FuBudget peak;
  for (int t = 0; t < sched.length(); ++t) {
    int alu = sched.ops_active(OpKind::kAdd, t) +
              sched.ops_active(OpKind::kSub, t) +
              sched.ops_active(OpKind::kNop, t);
    int mul = sched.ops_active(OpKind::kMul, t);
    peak.alu = std::max(peak.alu, alu);
    peak.mul = std::max(peak.mul, mul);
  }
  return peak;
}

FuSearchResult schedule_min_fu(const Cdfg& g, const HwSpec& hw, int length,
                               double alu_cost, double mul_cost,
                               const Parallelism& par) {
  Schedule fds = force_directed_schedule(g, hw, length);
  FuBudget best_fus = peak_fu_demand(fds);
  Schedule best = fds;
  double best_cost = alu_cost * best_fus.alu + mul_cost * best_fus.mul;

  // Occupancy lower bounds: total busy-steps / length, rounded up.
  int alu_occ = 0, mul_occ = 0;
  for (NodeId id : g.operations()) {
    const OpKind k = g.node(id).kind;
    (fu_class_of(k) == FuClass::kAlu ? alu_occ : mul_occ) += hw.occupancy(k);
  }
  const int alu_lb = std::max(g.count(OpKind::kAdd) + g.count(OpKind::kSub) +
                                      g.count(OpKind::kNop) > 0 ? 1 : 0,
                              (alu_occ + length - 1) / length);
  const int mul_lb = std::max(g.count(OpKind::kMul) > 0 ? 1 : 0,
                              (mul_occ + length - 1) / length);

  // The lattice walk prunes against a *running* best (both the cost gate
  // and the loop's upper bounds shrink as better envelopes are found), so
  // the visited set depends on probe outcomes. To parallelise without
  // changing a single answer, probe speculatively: list-schedule every
  // point the walk could possibly visit — the static rectangle up to the
  // force-directed envelope, gated by the force-directed cost — in
  // parallel, then replay the exact sequential walk against the
  // precomputed outcomes. A few points are probed that the walk then never
  // consults (bounded by the rectangle, ~a dozen points); the returned
  // schedule is byte-identical to the sequential algorithm's at any thread
  // count.
  const int alu_ub = std::max(best_fus.alu, alu_lb);
  const int mul_ub = std::max(best_fus.mul, mul_lb);
  const int mul_span = mul_ub - mul_lb + 1;
  std::vector<FuBudget> probes;
  for (int alu = alu_lb; alu <= alu_ub; ++alu)
    for (int mul = mul_lb; mul <= mul_ub; ++mul)
      if (alu_cost * alu + mul_cost * mul < best_cost)
        probes.push_back(FuBudget{alu, mul});
  const auto probed = parallel_map(
      par, static_cast<int>(probes.size()), [&](int i) {
        return list_schedule(g, hw, length, probes[static_cast<size_t>(i)]);
      });
  // Probe outcomes addressed by lattice point (nullopt also for never-
  // probed points — the walk only consults points under the FDS cost gate,
  // which is exactly the probed set).
  std::vector<std::optional<Schedule>> at(
      static_cast<size_t>((alu_ub - alu_lb + 1) * mul_span));
  for (size_t i = 0; i < probes.size(); ++i)
    at[static_cast<size_t>((probes[i].alu - alu_lb) * mul_span +
                           (probes[i].mul - mul_lb))] = probed[i];

  for (int alu = alu_lb; alu <= std::max(best_fus.alu, alu_lb); ++alu) {
    for (int mul = mul_lb; mul <= std::max(best_fus.mul, mul_lb); ++mul) {
      const double cost = alu_cost * alu + mul_cost * mul;
      if (cost >= best_cost) continue;
      const auto& s =
          at[static_cast<size_t>((alu - alu_lb) * mul_span + (mul - mul_lb))];
      if (!s) continue;
      const FuBudget demand = peak_fu_demand(*s);
      const double real_cost = alu_cost * demand.alu + mul_cost * demand.mul;
      if (real_cost < best_cost) {
        best_cost = real_cost;
        best = *s;
        best_fus = demand;
      }
    }
  }
  return FuSearchResult{best, best_fus};
}

}  // namespace salsa
