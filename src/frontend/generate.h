// Parameterized CDFG generator for the large-design scaling corpus: the
// 1992 benchmarks (EWF, 34 ops; DCT, ~48 ops) cannot expose super-linear
// move-loop costs, so this module manufactures deterministic, seedable
// design families from ~1k to ~100k operators:
//
//   * kFilterCascade — parallel channels of chained direct-form-II biquad
//     sections (higher-order elliptic/FIR cascades): serial critical paths,
//     long schedules, loop-carried state per section. 10 ops per section
//     (5 mul / 4 add-sub / 1 pass-through).
//   * kGemmPipeline — a T x T output tile of K-deep multiply-accumulate
//     chains (tiled GEMM): wide, input-heavy, register-pressure-bound.
//     2K-1 ops per output element, no states.
//   * kLayeredDag — layers x width random DAG with a bounded operand
//     window; loop-carried states are read only at layer 0 and rewritten
//     from final-layer values, so anti-dependences are satisfiable by
//     construction (no reachability search, unlike
//     bench_suite/random_cdfg.cpp — that is what lets this family scale).
//   * kMemoryTraffic — parallel address-generator/data-compute stream
//     pairs: each stream walks an affine address (state * stride + base,
//     stepped per iteration) beside a MAC chain over its input, and emits
//     the (addr, data) outputs in adjacent pairs. The sampled output
//     streams feed the event-driven memory subsystem
//     (datapath/memory.h, mem_ops_from_outputs) as LSU programs — the
//     design family whose datapath drives loads and stores.
//
// Determinism contract: generation draws only integer Rng variates (no
// float thresholds), the list-scheduler path runs without jitter, and
// design_digest() pins the full structure (graph + schedule + resources) so
// tests can assert cross-platform byte-identical corpora per (family,
// target_ops, seed).
#pragma once

#include <memory>
#include <string>

#include "cdfg/cdfg.h"
#include "core/resources.h"
#include "sched/list_scheduler.h"

namespace salsa {

enum class GenFamily {
  kFilterCascade,
  kGemmPipeline,
  kLayeredDag,
  kMemoryTraffic,
};

/// Short family mnemonic ("cascade", "gemm", "dag", "mem") for bench/audit
/// labels.
const char* gen_family_name(GenFamily f);

struct GenParams {
  GenFamily family = GenFamily::kLayeredDag;
  /// Approximate operator (Add/Sub/Mul/Nop) count; the family's natural
  /// granularity (section, tile element, layer) rounds it up.
  int target_ops = 1000;
  uint64_t seed = 1;

  // --- family shape knobs --------------------------------------------------
  int cascade_sections = 16;  ///< biquads per channel; channels = target/10C
  int gemm_depth = 8;         ///< K: MAC-chain depth per tile element
  int dag_width = 64;         ///< ops per layer; layers = target/width
  int dag_window = 3;         ///< operand window in layers
  int dag_mul_pct = 35;       ///< % of DAG ops that are multiplies
  int dag_sub_pct = 20;       ///< % of DAG ops that are subtractions
  int mem_chain = 4;          ///< MAC stages per memory-traffic data chain

  // --- scheduling / resources ----------------------------------------------
  /// Schedule length margin over the critical path, in eighths (2 = +25%).
  int slack_eighths = 2;
  int extra_regs = 2;  ///< registers beyond the lifetime minimum
};

/// A generated allocation problem. Owns the graph and schedule the
/// AllocProblem refers into (same shape as benchharness::ProblemBundle,
/// which cannot be reused here: bench_suite depends on higher layers).
struct GeneratedDesign {
  std::unique_ptr<Cdfg> graph;
  std::unique_ptr<Schedule> schedule;
  std::unique_ptr<AllocProblem> problem;
  FuBudget fus;
  int min_regs = 0;
  int num_ops = 0;  ///< actual operator count (>= target_ops, rounded up)
};

/// Builds the family's validated CDFG alone (no schedule).
Cdfg generate_cdfg(const GenParams& p);

/// generate_cdfg + deterministic list-scheduler path: derives the schedule
/// length from the critical path plus slack and the FU budget from per-class
/// occupancy, growing both on list-scheduler infeasibility (bounded retries,
/// no randomness), then wraps everything in an AllocProblem with
/// min_registers + extra_regs registers. Throws if no legal schedule is
/// found within the retry budget.
GeneratedDesign generate_design(const GenParams& p);

/// FNV-1a digest over the complete generated design — every node (kind,
/// operands, constant payload, state rewiring), every schedule start, the
/// FU budget and the register count. Platform-stable (fixed little-endian
/// field order); tests pin these per (family, target_ops, seed).
uint64_t design_digest(const GeneratedDesign& d);

}  // namespace salsa
