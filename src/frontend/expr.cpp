#include "frontend/expr.h"

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace salsa {

namespace {

// ---------------------------------------------------------------------------
// Lexer

enum class Tok : uint8_t {
  kIdent,
  kNumber,
  kPlus,
  kMinus,
  kStar,
  kLParen,
  kRParen,
  kEnd,  // end of line
};

struct Token {
  Tok kind;
  std::string text;
  int64_t number = 0;
};

class Lexer {
 public:
  Lexer(const std::string& line, int line_no)
      : line_(line), line_no_(line_no) {
    advance();
  }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void error(const std::string& msg) const {
    fail("expr error at line " + std::to_string(line_no_) + ": " + msg);
  }

 private:
  void advance() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
    if (pos_ >= line_.size() || line_[pos_] == '#') {
      current_ = Token{Tok::kEnd, ""};
      return;
    }
    const char c = line_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[end])) ||
              line_[end] == '_'))
        ++end;
      current_ = Token{Tok::kIdent, line_.substr(pos_, end - pos_)};
      pos_ = end;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = pos_;
      int64_t value = 0;
      while (end < line_.size() &&
             std::isdigit(static_cast<unsigned char>(line_[end]))) {
        value = value * 10 + (line_[end] - '0');
        ++end;
      }
      current_ = Token{Tok::kNumber, line_.substr(pos_, end - pos_), value};
      pos_ = end;
      return;
    }
    ++pos_;
    switch (c) {
      case '+': current_ = Token{Tok::kPlus, "+"}; return;
      case '-': current_ = Token{Tok::kMinus, "-"}; return;
      case '*': current_ = Token{Tok::kStar, "*"}; return;
      case '(': current_ = Token{Tok::kLParen, "("}; return;
      case ')': current_ = Token{Tok::kRParen, ")"}; return;
      default:
        error(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& line_;
  int line_no_;
  size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// Compiler

class Compiler {
 public:
  Compiler() : g_("expr") {}

  Cdfg take() && {
    finish();
    return std::move(g_);
  }

  void feed(const std::string& raw_line, int line_no) {
    line_no_ = line_no;
    // Split off the statement head before lexing the expression side.
    std::istringstream head(raw_line);
    std::string first;
    if (!(head >> first) || first[0] == '#') return;

    if (first == "design") {
      std::string name;
      if (!(head >> name)) err("'design' expects a name");
      g_ = Cdfg(name);
      names_.clear();
      consts_.clear();
      states_.clear();
      used_next_.clear();
      outputs_.clear();
      return;
    }
    if (first == "input") {
      std::string name;
      if (!(head >> name)) err("'input' expects a name");
      define(name, g_.add_input(name));
      return;
    }
    if (first == "state") {
      std::string name;
      if (!(head >> name)) err("'state' expects a name");
      define(name, g_.add_state(name));
      states_.emplace(name, StateInfo{});
      return;
    }
    if (first == "out" || first == "output") {
      std::string name;
      if (!(head >> name)) err("'out' expects a name");
      outputs_.push_back({name, line_no_});
      return;
    }

    // Assignment: `name = expr` or `name := expr`.
    std::string op;
    if (!(head >> op) || (op != "=" && op != ":=")) {
      err("expected '<name> = <expr>', '<name> := <expr>', or a directive, "
          "got '" + first + "'");
    }
    std::string rest;
    std::getline(head, rest);
    Lexer lex(rest, line_no_);
    const ValueId value = parse_expr(lex);
    if (lex.peek().kind != Tok::kEnd) lex.error("trailing tokens");
    if (op == "=") {
      // Fresh single-assignment name.
      define(first, named_value(value, first));
    } else {
      const auto it = states_.find(first);
      if (it == states_.end()) err("':=' target '" + first + "' is not a state");
      if (it->second.updated) err("state '" + first + "' updated twice");
      it->second.updated = true;
      // A state's next content must be a computed value; wrap moves of
      // inputs/states in an explicit Nop (a register-to-register move).
      // Likewise a value feeding two states gets a private copy for the
      // second (merged-state storages cannot carry two initial contents).
      ValueId next = value;
      if (!is_operation(g_.node(g_.producer(next)).kind) ||
          used_next_.count(next))
        next = g_.add_nop(next, first + "_mv");
      used_next_.insert(next);
      g_.set_state_next(lookup(first), next);
    }
  }

 private:
  struct StateInfo {
    bool updated = false;
  };

  [[noreturn]] void err(const std::string& msg) const {
    fail("expr error at line " + std::to_string(line_no_) + ": " + msg);
  }

  void define(const std::string& name, ValueId v) {
    if (!names_.emplace(name, v).second)
      err("name '" + name + "' defined twice");
  }

  ValueId lookup(const std::string& name) const {
    const auto it = names_.find(name);
    if (it == names_.end()) err("unknown name '" + name + "'");
    return it->second;
  }

  ValueId constant(int64_t v) {
    const auto it = consts_.find(v);
    if (it != consts_.end()) return it->second;
    const ValueId c = g_.add_const(v);
    consts_.emplace(v, c);
    return c;
  }

  // Gives the final op of an assignment the assigned name, when it is an op
  // created by this compiler (ops get synthetic names during parsing).
  ValueId named_value(ValueId v, const std::string& name) {
    // Renaming nodes post-hoc is not supported by the IR; instead wrap
    // non-operation values so every assigned name exists as a node.
    if (!is_operation(g_.node(g_.producer(v)).kind))
      return g_.add_nop(v, name);
    return v;
  }

  // expr   := term (('+'|'-') term)*
  // term   := factor ('*' factor)*
  // factor := IDENT | NUMBER | '-' factor | '(' expr ')'
  ValueId parse_expr(Lexer& lex) {
    ValueId acc = parse_term(lex);
    while (lex.peek().kind == Tok::kPlus || lex.peek().kind == Tok::kMinus) {
      const Tok op = lex.take().kind;
      const ValueId rhs = parse_term(lex);
      acc = g_.add_op(op == Tok::kPlus ? OpKind::kAdd : OpKind::kSub, acc,
                      rhs);
    }
    return acc;
  }

  ValueId parse_term(Lexer& lex) {
    ValueId acc = parse_factor(lex);
    while (lex.peek().kind == Tok::kStar) {
      lex.take();
      const ValueId rhs = parse_factor(lex);
      acc = g_.add_op(OpKind::kMul, acc, rhs);
    }
    return acc;
  }

  ValueId parse_factor(Lexer& lex) {
    const Token t = lex.take();
    switch (t.kind) {
      case Tok::kIdent:
        return lookup(t.text);
      case Tok::kNumber:
        return constant(t.number);
      case Tok::kMinus: {
        // Fold a literal; otherwise lower to (0 - x).
        if (lex.peek().kind == Tok::kNumber)
          return constant(-lex.take().number);
        const ValueId x = parse_factor(lex);
        return g_.add_op(OpKind::kSub, constant(0), x);
      }
      case Tok::kLParen: {
        const ValueId v = parse_expr(lex);
        if (lex.take().kind != Tok::kRParen) lex.error("expected ')'");
        return v;
      }
      default:
        lex.error("expected an operand, got '" + t.text + "'");
    }
  }

  void finish() {
    for (const auto& [name, info] : states_)
      if (!info.updated)
        fail("expr error: state '" + name + "' is never updated (':=')");
    for (const auto& [name, line] : outputs_) {
      line_no_ = line;
      g_.add_output(lookup(name), name + "_out");
    }
    g_.validate();
  }

  Cdfg g_;
  int line_no_ = 0;
  std::map<std::string, ValueId> names_;
  std::map<int64_t, ValueId> consts_;
  std::map<std::string, StateInfo> states_;
  std::set<ValueId> used_next_;
  std::vector<std::pair<std::string, int>> outputs_;
};

}  // namespace

Cdfg compile_expressions(std::istream& in) {
  Compiler c;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) c.feed(line, ++line_no);
  return std::move(c).take();
}

Cdfg compile_expr_string(const std::string& text) {
  std::istringstream is(text);
  return compile_expressions(is);
}

}  // namespace salsa
