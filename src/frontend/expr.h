// A small behavioural front end: compiles arithmetic assignment programs
// into CDFGs, so designs can be written as formulas instead of explicit
// operator lists (the role a behavioural-HDL front end plays ahead of the
// scheduler in a full high-level synthesis flow).
//
//   design biquad
//   input x
//   state s1
//   state s2
//   w  = x + 3*s1 + 5*s2        # +, -, * with usual precedence, parentheses
//   y  = 7*w + 11*s1 + 13*s2
//   s1 := w                     # state update (next-iteration content)
//   s2 := s1                    # a plain move becomes an explicit Nop
//   out y                       # mark an assigned name as a design output
//
// Integer literals become shared constant nodes; unary minus folds into
// literals or lowers to (0 - x). Every assignment defines a fresh name;
// names are single-assignment.
#pragma once

#include <iosfwd>
#include <string>

#include "cdfg/cdfg.h"

namespace salsa {

/// Compiles a program in the expression language to a validated CDFG.
/// Throws salsa::Error with a line-numbered message on any lexical, syntax
/// or semantic error (unknown name, reassignment, update of a non-state,
/// missing state update, ...).
Cdfg compile_expressions(std::istream& in);
Cdfg compile_expr_string(const std::string& text);

}  // namespace salsa
