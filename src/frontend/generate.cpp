#include "frontend/generate.h"

#include <string>
#include <vector>

#include "analysis/digest.h"
#include "core/lifetime.h"
#include "sched/asap_alap.h"
#include "util/rng.h"
#include "util/strings.h"

namespace salsa {

const char* gen_family_name(GenFamily f) {
  switch (f) {
    case GenFamily::kFilterCascade:
      return "cascade";
    case GenFamily::kGemmPipeline:
      return "gemm";
    case GenFamily::kLayeredDag:
      return "dag";
    case GenFamily::kMemoryTraffic:
      return "mem";
  }
  return "?";
}

namespace {

// Shared coefficient pool: a handful of nonzero constants reused by every
// section keeps the value table lean (per-section constants would add 5
// nodes per biquad for values that never occupy a register anyway).
std::vector<ValueId> coefficient_pool(Cdfg& g, Rng& rng, int n) {
  std::vector<ValueId> coeffs;
  coeffs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int v = rng.range(-9, 9);
    if (v == 0) v = 1;
    coeffs.push_back(g.add_const(v, numbered("k", i)));
  }
  return coeffs;
}

// Parallel channels of chained direct-form-II biquads. Each section is the
// classic recurrence
//   w  = in + a1*s1 + a2*s2        (2 mul, 2 add)
//   y  = b0*w + b1*s1 + b2*s2      (3 mul, 2 add/sub)
//   s1' = w,  s2' = pass(s1)       (1 nop)
// so a channel of C sections is 10*C ops with a serial critical path, and
// the op count scales through the channel count, not the path length —
// a single 100k-op chain would drag the schedule length (and every
// steps-indexed table) along with it.
Cdfg make_cascade(const GenParams& p, Rng& rng) {
  Cdfg g(std::string("gen_cascade_") + std::to_string(p.seed));
  const int sections = p.cascade_sections < 1 ? 1 : p.cascade_sections;
  const int per_channel = 10 * sections;
  const int channels = (p.target_ops + per_channel - 1) / per_channel;
  const std::vector<ValueId> coeffs = coefficient_pool(g, rng, 8);
  auto coeff = [&]() {
    return coeffs[static_cast<size_t>(
        rng.uniform(static_cast<int>(coeffs.size())))];
  };

  for (int ch = 0; ch < channels; ++ch) {
    ValueId in = g.add_input(numbered("x", ch));
    for (int s = 0; s < sections; ++s) {
      const ValueId s1 = g.add_state(numbered("s1_", ch * sections + s));
      const ValueId s2 = g.add_state(numbered("s2_", ch * sections + s));
      const ValueId t1 = g.add_op(OpKind::kMul, coeff(), s1);
      const ValueId t2 = g.add_op(OpKind::kMul, coeff(), s2);
      const ValueId t3 = g.add_op(OpKind::kAdd, t1, t2);
      const ValueId w = g.add_op(OpKind::kAdd, in, t3);
      const ValueId u0 = g.add_op(OpKind::kMul, coeff(), w);
      const ValueId u1 = g.add_op(OpKind::kMul, coeff(), s1);
      const ValueId u2 = g.add_op(OpKind::kMul, coeff(), s2);
      const ValueId u3 =
          g.add_op(s % 2 ? OpKind::kSub : OpKind::kAdd, u1, u2);
      const ValueId y = g.add_op(OpKind::kAdd, u0, u3);
      const ValueId s2n = g.add_nop(s1);
      g.set_state_next(s1, w);
      g.set_state_next(s2, s2n);
      in = y;  // next section's input
    }
    g.add_output(in, numbered("y", ch));
  }
  g.validate();
  return g;
}

// T x T output tile of K-deep MAC chains: out[i][j] = sum_k a[i][k]*b[k][j],
// accumulated serially. 2K-1 ops per element, no loop-carried state, every
// a-row / b-column input fanned out across T chains — the wide,
// register-pressure-bound end of the corpus.
Cdfg make_gemm(const GenParams& p, Rng& /*rng*/) {
  Cdfg g(std::string("gen_gemm_") + std::to_string(p.seed));
  const int k_depth = p.gemm_depth < 1 ? 1 : p.gemm_depth;
  const int per_elem = 2 * k_depth - 1;
  int tile = 1;
  while ((tile + 1) * (tile + 1) * per_elem <= p.target_ops) ++tile;
  if (tile * tile * per_elem < p.target_ops) ++tile;

  std::vector<ValueId> a(static_cast<size_t>(tile * k_depth));
  std::vector<ValueId> b(static_cast<size_t>(k_depth * tile));
  for (int i = 0; i < tile; ++i)
    for (int k = 0; k < k_depth; ++k)
      a[static_cast<size_t>(i * k_depth + k)] =
          g.add_input(numbered("a", i) + numbered("_", k));
  for (int k = 0; k < k_depth; ++k)
    for (int j = 0; j < tile; ++j)
      b[static_cast<size_t>(k * tile + j)] =
          g.add_input(numbered("b", k) + numbered("_", j));

  for (int i = 0; i < tile; ++i)
    for (int j = 0; j < tile; ++j) {
      ValueId acc = g.add_op(OpKind::kMul, a[static_cast<size_t>(i * k_depth)],
                             b[static_cast<size_t>(j)]);
      for (int k = 1; k < k_depth; ++k) {
        const ValueId m =
            g.add_op(OpKind::kMul, a[static_cast<size_t>(i * k_depth + k)],
                     b[static_cast<size_t>(k * tile + j)]);
        acc = g.add_op(OpKind::kAdd, acc, m);
      }
      g.add_output(acc, numbered("o", i) + numbered("_", j));
    }
  g.validate();
  return g;
}

// Layers x width random DAG with a bounded operand window. States are read
// only by layer-0 ops and rewritten from final-layer values; final-layer
// values have no operation consumers (the window never reaches forward), so
// the state anti-dependence is satisfiable by construction and no
// reachability search is needed — the property that lets this family scale
// where bench_suite/random_cdfg.cpp's reaches_any() walk cannot.
Cdfg make_layered_dag(const GenParams& p, Rng& rng) {
  Cdfg g(std::string("gen_dag_") + std::to_string(p.seed));
  const int width = p.dag_width < 2 ? 2 : p.dag_width;
  const int layers = (p.target_ops + width - 1) / width < 2
                         ? 2
                         : (p.target_ops + width - 1) / width;
  const int window = p.dag_window < 1 ? 1 : p.dag_window;
  const int num_inputs = width / 2 + 1;
  const int num_states = width / 4 < 1 ? 1 : (width / 4 > 8 ? 8 : width / 4);

  std::vector<ValueId> pool;  // layer-0 operand candidates
  std::vector<ValueId> states;
  for (int i = 0; i < num_inputs; ++i)
    pool.push_back(g.add_input(numbered("in", i)));
  const std::vector<ValueId> coeffs = coefficient_pool(g, rng, 4);
  pool.insert(pool.end(), coeffs.begin(), coeffs.end());
  for (int i = 0; i < num_states; ++i) {
    const ValueId s = g.add_state(numbered("st", i));
    states.push_back(s);
    pool.push_back(s);
  }

  auto pick_kind = [&]() {
    const int roll = rng.uniform(100);
    if (roll < p.dag_mul_pct) return OpKind::kMul;
    if (roll < p.dag_mul_pct + p.dag_sub_pct) return OpKind::kSub;
    return OpKind::kAdd;
  };

  std::vector<std::vector<ValueId>> layer_vals(
      static_cast<size_t>(layers));
  std::vector<ValueId> window_vals;
  for (int l = 0; l < layers; ++l) {
    // Operand window: the previous `window` layers' values (layer 0 draws
    // from the input/const/state pool instead).
    window_vals.clear();
    for (int back = 1; back <= window && l - back >= 0; ++back) {
      const auto& prev = layer_vals[static_cast<size_t>(l - back)];
      window_vals.insert(window_vals.end(), prev.begin(), prev.end());
    }
    const std::vector<ValueId>& src = l == 0 ? pool : window_vals;
    auto pick = [&]() {
      return src[static_cast<size_t>(
          rng.uniform(static_cast<int>(src.size())))];
    };
    for (int i = 0; i < width; ++i) {
      // The first layer-0 ops consume the states so every state is read.
      const ValueId va = (l == 0 && i < num_states)
                             ? states[static_cast<size_t>(i)]
                             : pick();
      layer_vals[static_cast<size_t>(l)].push_back(
          g.add_op(pick_kind(), va, pick()));
    }
  }

  // Rewire each state to a distinct final-layer value (a value may feed only
  // one state: merged-state storages cannot carry two initial contents).
  const std::vector<ValueId>& last = layer_vals[static_cast<size_t>(layers - 1)];
  for (int i = 0; i < num_states; ++i)
    g.set_state_next(states[static_cast<size_t>(i)],
                     last[static_cast<size_t>(i) % last.size()]);

  // Every unconsumed computed value becomes an output (state rewrites count
  // as consumption, mirroring random_cdfg).
  int outs = 0;
  for (const auto& layer : layer_vals)
    for (ValueId v : layer) {
      if (!g.value(v).consumers.empty()) continue;
      bool is_state_next = false;
      for (NodeId sn : g.state_nodes())
        if (g.node(sn).state_next == v) is_state_next = true;
      if (!is_state_next) g.add_output(v, numbered("out", outs++));
    }
  if (outs == 0) g.add_output(last.back(), "out0");
  g.validate();
  return g;
}

// Parallel (address, data) stream pairs for the memory subsystem. Per
// stream: an affine address walker addr = a*stride + base with a' = a + step
// (3 ops), and a MAC chain of `mem_chain` stages folding the stream input
// into a running data state (2 ops per stage). Outputs are emitted in
// (addr, data) adjacent pairs — the layout mem_ops_from_outputs() expects —
// so the sampled datapath outputs convert directly into LSU programs.
Cdfg make_memory_traffic(const GenParams& p, Rng& rng) {
  Cdfg g(std::string("gen_mem_") + std::to_string(p.seed));
  // chain >= 2 keeps the data chain's final op (the state-next producer)
  // from reading the data state directly — same anti-dependence rule.
  const int chain = p.mem_chain < 2 ? 2 : p.mem_chain;
  const int per_stream = 5 + 2 * chain;  // 4 addr ops, 2/stage, 1 output nop
  const int streams = (p.target_ops + per_stream - 1) / per_stream;
  const std::vector<ValueId> coeffs = coefficient_pool(g, rng, 8);
  auto coeff = [&]() {
    return coeffs[static_cast<size_t>(
        rng.uniform(static_cast<int>(coeffs.size())))];
  };

  for (int j = 0; j < streams; ++j) {
    const ValueId in = g.add_input(numbered("m", j));
    // Affine address walker. The state's next-content producer must not
    // read the state itself (the list scheduler's anti-dependence rule
    // blocks direct self-accumulation), so the step add reads a same-
    // iteration pass-through copy instead: a' = nop(a) + step.
    const ValueId a = g.add_state(numbered("a", j));
    const ValueId stride = g.add_const(rng.range(1, 7), numbered("str", j));
    const ValueId step = g.add_const(rng.range(1, 9), numbered("stp", j));
    const ValueId addr = g.add_op(OpKind::kAdd,
                                  g.add_op(OpKind::kMul, a, stride), coeff());
    g.set_state_next(a, g.add_op(OpKind::kAdd, g.add_nop(a), step));

    const ValueId d = g.add_state(numbered("d", j));
    ValueId data = d;
    for (int s = 0; s < chain; ++s)
      data = g.add_op(s % 2 ? OpKind::kSub : OpKind::kAdd,
                      g.add_op(OpKind::kMul, in, coeff()), data);
    g.set_state_next(d, data);

    g.add_output(addr, numbered("addr", j));
    // The data output taps the chain through a pass-through: a state-next
    // value's storage wraps the iteration boundary, which output sampling
    // cannot read (the other families avoid state-next outputs the same way).
    g.add_output(g.add_nop(data), numbered("data", j));
  }
  g.validate();
  return g;
}

}  // namespace

Cdfg generate_cdfg(const GenParams& p) {
  SALSA_CHECK_MSG(p.target_ops >= 1, "generate_cdfg needs target_ops >= 1");
  Rng rng(derive_seed(p.seed, static_cast<uint64_t>(p.family)));
  switch (p.family) {
    case GenFamily::kFilterCascade:
      return make_cascade(p, rng);
    case GenFamily::kGemmPipeline:
      return make_gemm(p, rng);
    case GenFamily::kLayeredDag:
      return make_layered_dag(p, rng);
    case GenFamily::kMemoryTraffic:
      return make_memory_traffic(p, rng);
  }
  fail("unknown GenFamily");
}

GeneratedDesign generate_design(const GenParams& p) {
  GeneratedDesign d;
  d.graph = std::make_unique<Cdfg>(generate_cdfg(p));
  const Cdfg& g = *d.graph;

  HwSpec hw;
  int alu_ops = 0, mul_ops = 0;
  for (NodeId n : g.operations())
    (fu_class_of(g.node(n).kind) == FuClass::kMul ? mul_ops : alu_ops)++;
  d.num_ops = alu_ops + mul_ops;

  // Length: critical path plus a slack margin. Budget: per-class occupancy
  // (multiplies hold their unit for mul_delay steps when not pipelined)
  // spread over the length, plus 1/8 headroom — list scheduling is a
  // heuristic, so infeasibility grows the budget (and, every other retry,
  // the length) deterministically until a schedule fits.
  const int minlen = min_schedule_length(g, hw);
  int length = minlen + (minlen * p.slack_eighths) / 8 + 2;
  const long mul_occ = static_cast<long>(mul_ops) *
                       (hw.pipelined_mul ? 1 : hw.mul_delay);
  FuBudget budget;
  auto for_length = [&](long occ) {
    const long base = (occ + length - 1) / length;
    return static_cast<int>(base + base / 8 + 1);
  };
  budget.alu = for_length(alu_ops);
  budget.mul = mul_ops == 0 ? 0 : for_length(mul_occ);

  for (int attempt = 0;; ++attempt) {
    std::optional<Schedule> sched = list_schedule(g, hw, length, budget);
    if (sched) {
      d.schedule = std::make_unique<Schedule>(std::move(*sched));
      break;
    }
    SALSA_CHECK_MSG(attempt < 10,
                    "generate_design: no legal schedule within the retry "
                    "budget for target_ops=" +
                        std::to_string(p.target_ops));
    budget.alu += budget.alu / 4 + 1;
    if (budget.mul > 0) budget.mul += budget.mul / 4 + 1;
    if (attempt % 2 == 1) length += minlen / 8 + 1;
  }

  d.fus = budget;
  d.min_regs = Lifetimes(*d.schedule).min_registers();
  d.problem = std::make_unique<AllocProblem>(
      *d.schedule, FuPool::standard(budget), d.min_regs + p.extra_regs);
  return d;
}

uint64_t design_digest(const GeneratedDesign& d) {
  Fnv1a h;
  const Cdfg& g = *d.graph;
  h.i32(g.num_nodes());
  h.i32(g.num_values());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const Node& node = g.node(n);
    h.byte(static_cast<uint8_t>(node.kind));
    h.i32(static_cast<int32_t>(node.ins.size()));
    for (ValueId v : node.ins) h.i32(v);
    h.i32(node.out);
    h.u64(static_cast<uint64_t>(node.cvalue));
    h.i32(node.state_next);
  }
  h.i32(d.schedule->length());
  for (NodeId n = 0; n < g.num_nodes(); ++n) h.i32(d.schedule->start(n));
  h.i32(d.fus.alu);
  h.i32(d.fus.mul);
  h.i32(d.problem->num_regs());
  return h.value();
}

}  // namespace salsa
