// Behavioural evaluation of a CDFG on concrete integer data. This is the
// golden reference the datapath simulator is checked against: an allocation
// is correct iff the generated datapath produces the same output streams as
// this evaluator for the same input streams and initial state.
#pragma once

#include <span>
#include <vector>

#include "cdfg/cdfg.h"

namespace salsa {

/// Iteration-by-iteration interpreter for a (possibly loop-carrying) CDFG.
/// Arithmetic is wrapping two's-complement on int64_t, matching the datapath
/// simulator.
class Evaluator {
 public:
  /// `initial_states[i]` seeds the i-th state node (order of
  /// cdfg.state_nodes()); pass an empty span to seed all states with zero.
  Evaluator(const Cdfg& cdfg, std::span<const int64_t> initial_states = {});

  /// Runs one iteration. `inputs[i]` feeds the i-th input node (order of
  /// cdfg.input_nodes()). Returns one value per output node (order of
  /// cdfg.output_nodes()).
  std::vector<int64_t> step(std::span<const int64_t> inputs);

  /// Current state-node contents (order of cdfg.state_nodes()).
  const std::vector<int64_t>& states() const { return states_; }

 private:
  const Cdfg& cdfg_;
  std::vector<NodeId> order_;
  std::vector<NodeId> state_nodes_;
  std::vector<NodeId> input_nodes_;
  std::vector<NodeId> output_nodes_;
  std::vector<int64_t> states_;
};

/// Wrapping binary op application shared with the datapath simulator.
int64_t apply_op(OpKind k, int64_t a, int64_t b);

}  // namespace salsa
