#include "cdfg/cdfg.h"

#include <algorithm>

#include "util/strings.h"

namespace salsa {

bool is_binary(OpKind k) {
  return k == OpKind::kAdd || k == OpKind::kSub || k == OpKind::kMul;
}

bool is_operation(OpKind k) {
  return k == OpKind::kAdd || k == OpKind::kSub || k == OpKind::kMul ||
         k == OpKind::kNop;
}

bool is_commutative(OpKind k) { return k == OpKind::kAdd || k == OpKind::kMul; }

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kInput: return "input";
    case OpKind::kConst: return "const";
    case OpKind::kState: return "state";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kNop: return "nop";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

NodeId Cdfg::new_node(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

ValueId Cdfg::new_value(std::string name, NodeId producer) {
  Value v;
  v.name = std::move(name);
  v.producer = producer;
  values_.push_back(std::move(v));
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId Cdfg::add_input(std::string name) {
  Node n;
  n.kind = OpKind::kInput;
  n.name = name;
  NodeId id = new_node(std::move(n));
  ValueId v = new_value(std::move(name), id);
  nodes_[static_cast<size_t>(id)].out = v;
  return v;
}

ValueId Cdfg::add_const(int64_t value, std::string name) {
  if (name.empty()) name = numbered("c", value);
  Node n;
  n.kind = OpKind::kConst;
  n.name = name;
  n.cvalue = value;
  NodeId id = new_node(std::move(n));
  ValueId v = new_value(std::move(name), id);
  nodes_[static_cast<size_t>(id)].out = v;
  return v;
}

ValueId Cdfg::add_state(std::string name) {
  Node n;
  n.kind = OpKind::kState;
  n.name = name;
  NodeId id = new_node(std::move(n));
  ValueId v = new_value(std::move(name), id);
  nodes_[static_cast<size_t>(id)].out = v;
  return v;
}

ValueId Cdfg::add_op(OpKind kind, ValueId a, ValueId b, std::string name) {
  SALSA_CHECK_MSG(is_binary(kind), "add_op expects a binary OpKind");
  SALSA_CHECK(a >= 0 && a < num_values() && b >= 0 && b < num_values());
  Node n;
  n.kind = kind;
  n.ins = {a, b};
  if (name.empty())
    name = std::string(op_name(kind)) + std::to_string(num_nodes());
  n.name = name;
  NodeId id = new_node(std::move(n));
  values_[static_cast<size_t>(a)].consumers.push_back(id);
  values_[static_cast<size_t>(b)].consumers.push_back(id);
  ValueId v = new_value(std::move(name), id);
  nodes_[static_cast<size_t>(id)].out = v;
  return v;
}

ValueId Cdfg::add_nop(ValueId a, std::string name) {
  SALSA_CHECK(a >= 0 && a < num_values());
  Node n;
  n.kind = OpKind::kNop;
  n.ins = {a};
  if (name.empty()) name = "nop" + std::to_string(num_nodes());
  n.name = name;
  NodeId id = new_node(std::move(n));
  values_[static_cast<size_t>(a)].consumers.push_back(id);
  ValueId v = new_value(std::move(name), id);
  nodes_[static_cast<size_t>(id)].out = v;
  return v;
}

NodeId Cdfg::add_output(ValueId v, std::string name) {
  SALSA_CHECK(v >= 0 && v < num_values());
  Node n;
  n.kind = OpKind::kOutput;
  n.ins = {v};
  if (name.empty()) name = "out" + std::to_string(num_nodes());
  n.name = std::move(name);
  NodeId id = new_node(std::move(n));
  values_[static_cast<size_t>(v)].consumers.push_back(id);
  return id;
}

void Cdfg::set_state_next(ValueId state, ValueId next) {
  SALSA_CHECK(state >= 0 && state < num_values());
  SALSA_CHECK(next >= 0 && next < num_values());
  Node& sn = nodes_[static_cast<size_t>(producer(state))];
  SALSA_CHECK_MSG(sn.kind == OpKind::kState,
                  "set_state_next target is not a State value");
  SALSA_CHECK_MSG(sn.state_next == kInvalidId,
                  "set_state_next called twice for the same state");
  SALSA_CHECK_MSG(!is_const_value(next), "state cannot be fed by a constant");
  sn.state_next = next;
}

void Cdfg::validate() const {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Node& n = node(id);
    const size_t want_ins = is_binary(n.kind)                        ? 2
                            : (n.kind == OpKind::kNop ||
                               n.kind == OpKind::kOutput)            ? 1
                                                                     : 0;
    if (n.ins.size() != want_ins)
      fail("node '" + n.name + "' has wrong operand count");
    if (n.kind == OpKind::kOutput) {
      if (n.out != kInvalidId) fail("output node produces a value");
    } else {
      if (n.out == kInvalidId || value(n.out).producer != id)
        fail("node '" + n.name + "' has inconsistent output wiring");
    }
    if (n.kind == OpKind::kState && n.state_next == kInvalidId)
      fail("state '" + n.name + "' has no next-iteration value");
    if (n.kind != OpKind::kState && n.state_next != kInvalidId)
      fail("non-state node '" + n.name + "' has state_next set");
  }
  for (ValueId v = 0; v < num_values(); ++v) {
    const Value& val = value(v);
    if (val.producer == kInvalidId) fail("value '" + val.name + "' has no producer");
    for (NodeId c : val.consumers) {
      const Node& cn = node(c);
      if (std::count(cn.ins.begin(), cn.ins.end(), v) <
          std::count(val.consumers.begin(), val.consumers.end(), c))
        fail("consumer list of value '" + val.name + "' is inconsistent");
    }
  }
  // The intra-iteration dependence graph must be acyclic.
  (void)topo_order();
}

std::vector<NodeId> Cdfg::topo_order() const {
  std::vector<int> pending(static_cast<size_t>(num_nodes()), 0);
  for (NodeId id = 0; id < num_nodes(); ++id)
    pending[static_cast<size_t>(id)] = static_cast<int>(node(id).ins.size());
  std::vector<NodeId> ready, order;
  order.reserve(static_cast<size_t>(num_nodes()));
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (pending[static_cast<size_t>(id)] == 0) ready.push_back(id);
  while (!ready.empty()) {
    NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    if (node(id).out == kInvalidId) continue;
    for (NodeId c : value(node(id).out).consumers)
      if (--pending[static_cast<size_t>(c)] == 0) ready.push_back(c);
  }
  if (static_cast<int>(order.size()) != num_nodes())
    fail("CDFG '" + name_ + "' has an intra-iteration dependence cycle");
  return order;
}

int Cdfg::count(OpKind k) const {
  int n = 0;
  for (const Node& nd : nodes_)
    if (nd.kind == k) ++n;
  return n;
}

std::vector<NodeId> Cdfg::operations() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (is_operation(node(id).kind)) out.push_back(id);
  return out;
}

std::vector<NodeId> Cdfg::state_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (node(id).kind == OpKind::kState) out.push_back(id);
  return out;
}

std::vector<NodeId> Cdfg::input_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (node(id).kind == OpKind::kInput) out.push_back(id);
  return out;
}

std::vector<NodeId> Cdfg::output_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (node(id).kind == OpKind::kOutput) out.push_back(id);
  return out;
}

bool Cdfg::is_const_value(ValueId v) const {
  return node(producer(v)).kind == OpKind::kConst;
}

}  // namespace salsa
