#include "cdfg/dot.h"

#include <sstream>

namespace salsa {

namespace {

const char* shape_of(OpKind k) {
  switch (k) {
    case OpKind::kInput:
    case OpKind::kState:
      return "invtriangle";
    case OpKind::kConst:
      return "plaintext";
    case OpKind::kOutput:
      return "triangle";
    default:
      return "circle";
  }
}

void emit_nodes_and_edges(const Cdfg& g, std::ostringstream& os) {
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    os << "  n" << id << " [label=\"" << n.name << "\\n" << op_name(n.kind)
       << "\", shape=" << shape_of(n.kind) << "];\n";
  }
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    for (ValueId in : n.ins)
      os << "  n" << g.producer(in) << " -> n" << id << " [label=\""
         << g.value(in).name << "\"];\n";
    if (n.kind == OpKind::kState)
      os << "  n" << g.producer(n.state_next) << " -> n" << id
         << " [style=dashed, label=\"next\"];\n";
  }
}

}  // namespace

std::string to_dot(const Cdfg& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n";
  emit_nodes_and_edges(g, os);
  os << "}\n";
  return os.str();
}

std::string to_dot(const Cdfg& g, const std::vector<int>& starts, int length) {
  SALSA_CHECK(static_cast<int>(starts.size()) == g.num_nodes());
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n";
  for (int t = 0; t < length; ++t) {
    os << "  { rank=same; step" << t << " [label=\"step " << t
       << "\", shape=plaintext];";
    for (NodeId id = 0; id < g.num_nodes(); ++id)
      if (is_operation(g.node(id).kind) &&
          starts[static_cast<size_t>(id)] == t)
        os << " n" << id << ";";
    os << " }\n";
  }
  for (int t = 0; t + 1 < length; ++t)
    os << "  step" << t << " -> step" << t + 1 << " [style=invis];\n";
  emit_nodes_and_edges(g, os);
  os << "}\n";
  return os.str();
}

}  // namespace salsa
