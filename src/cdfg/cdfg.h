// Control/data-flow graph (CDFG) intermediate representation.
//
// A Cdfg holds operator nodes (inputs, constants, loop-carried states,
// arithmetic ops, outputs) and the data values flowing between them. Loop
// benchmarks (e.g. the elliptic wave filter) are modelled with State nodes:
// a State node produces the value read by the current iteration, and is told
// (via set_state_next) which computed value becomes its content for the next
// iteration. Scheduling and allocation treat the pair as one cyclic storage
// entity whose lifetime wraps around the iteration boundary.
//
// The "slack nodes" of the paper (Section 2) are not materialised as extra
// graph nodes: a slack node per control step of a value's lifetime is exactly
// a value *segment*, and segments are enumerated by core/lifetime.* from the
// schedule. This keeps the graph purely behavioural while the binding layer
// owns the segment/cell structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/diagnostics.h"

namespace salsa {

using NodeId = int32_t;
using ValueId = int32_t;
inline constexpr int32_t kInvalidId = -1;

/// Kinds of CDFG nodes. Add/Sub/Mul are the binary operators the benchmark
/// suite needs; Nop exists so tests can build explicit pass-through chains.
enum class OpKind : uint8_t {
  kInput,   ///< Primary input; value readable from control step 0.
  kConst,   ///< Compile-time constant; free (no register, no mux cost).
  kState,   ///< Loop-carried state; readable from step 0, rewritten each
            ///< iteration by the value named via set_state_next().
  kAdd,
  kSub,
  kMul,
  kNop,     ///< Unary identity (explicit pass-through in didactic examples).
  kOutput,  ///< Sink; consumes one value at its scheduled step.
};

/// True for nodes that take two value operands.
bool is_binary(OpKind k);
/// True for nodes executed on a functional unit (Add/Sub/Mul/Nop).
bool is_operation(OpKind k);
/// True for Add and Mul (operand order does not matter).
bool is_commutative(OpKind k);
/// Short mnemonic ("add", "mul", ...) for display.
const char* op_name(OpKind k);

struct Node {
  OpKind kind = OpKind::kInput;
  std::string name;
  /// Operand values: two for binary ops, one for Output/Nop, none otherwise.
  std::vector<ValueId> ins;
  /// Produced value; kInvalidId for Output nodes.
  ValueId out = kInvalidId;
  /// Constant payload (kConst only).
  int64_t cvalue = 0;
  /// For kState: the value that becomes this state's content next iteration.
  ValueId state_next = kInvalidId;
};

struct Value {
  std::string name;
  NodeId producer = kInvalidId;
  /// Consumer nodes; a node appears once per operand slot it uses this value
  /// in (so a node reading v twice appears twice).
  std::vector<NodeId> consumers;
};

/// A behavioural CDFG. Build with the add_* methods, then seal with
/// validate(). All ids are dense indices, stable across the object lifetime.
class Cdfg {
 public:
  explicit Cdfg(std::string name = "cdfg") : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------
  ValueId add_input(std::string name);
  ValueId add_const(int64_t value, std::string name = "");
  ValueId add_state(std::string name);
  /// Adds a binary operation (Add/Sub/Mul) and returns its result value.
  ValueId add_op(OpKind kind, ValueId a, ValueId b, std::string name = "");
  /// Adds a unary Nop and returns its result value.
  ValueId add_nop(ValueId a, std::string name = "");
  NodeId add_output(ValueId v, std::string name = "");
  /// Declares that `next` becomes the content of state value `state` at the
  /// next iteration. Must be called exactly once per State node.
  void set_state_next(ValueId state, ValueId next);

  /// Checks structural sanity (operand arity, state wiring, no dangling
  /// values). Throws salsa::Error on violation. Idempotent.
  void validate() const;

  // ---- access -------------------------------------------------------------
  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_values() const { return static_cast<int>(values_.size()); }
  const Node& node(NodeId n) const { return nodes_[static_cast<size_t>(n)]; }
  const Value& value(ValueId v) const { return values_[static_cast<size_t>(v)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Value>& values() const { return values_; }

  /// Producer node of a value (always valid after validate()).
  NodeId producer(ValueId v) const { return value(v).producer; }

  /// Nodes in a topological order of intra-iteration data dependences
  /// (state/input/const first; state-next edges are loop-carried and do not
  /// constrain the order).
  std::vector<NodeId> topo_order() const;

  /// Number of operation nodes of the given kind.
  int count(OpKind k) const;
  /// All operation nodes (is_operation(kind)).
  std::vector<NodeId> operations() const;
  /// All State node ids.
  std::vector<NodeId> state_nodes() const;
  /// All Input node ids.
  std::vector<NodeId> input_nodes() const;
  /// All Output node ids.
  std::vector<NodeId> output_nodes() const;

  /// True if the value is produced by a Const node (free in the cost model).
  bool is_const_value(ValueId v) const;

 private:
  NodeId new_node(Node n);
  ValueId new_value(std::string name, NodeId producer);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Value> values_;
};

}  // namespace salsa
