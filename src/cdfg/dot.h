// Graphviz DOT export of CDFGs, optionally annotated with start steps
// (operators ranked by control step, as in the paper's Figures 1, 2 and 5).
#pragma once

#include <string>
#include <vector>

#include "cdfg/cdfg.h"

namespace salsa {

/// Renders the CDFG as a DOT digraph.
std::string to_dot(const Cdfg& cdfg);

/// Renders the CDFG with operators grouped into ranks by control step.
/// `starts[node]` is the node's start step; `length` the schedule length.
std::string to_dot(const Cdfg& cdfg, const std::vector<int>& starts,
                   int length);

}  // namespace salsa
