#include "cdfg/eval.h"

namespace salsa {

int64_t apply_op(OpKind k, int64_t a, int64_t b) {
  const uint64_t ua = static_cast<uint64_t>(a);
  const uint64_t ub = static_cast<uint64_t>(b);
  switch (k) {
    case OpKind::kAdd: return static_cast<int64_t>(ua + ub);
    case OpKind::kSub: return static_cast<int64_t>(ua - ub);
    case OpKind::kMul: return static_cast<int64_t>(ua * ub);
    case OpKind::kNop: return a;
    default: break;
  }
  fail("apply_op: not an executable operation");
}

Evaluator::Evaluator(const Cdfg& cdfg, std::span<const int64_t> initial_states)
    : cdfg_(cdfg),
      order_(cdfg.topo_order()),
      state_nodes_(cdfg.state_nodes()),
      input_nodes_(cdfg.input_nodes()),
      output_nodes_(cdfg.output_nodes()) {
  if (initial_states.empty()) {
    states_.assign(state_nodes_.size(), 0);
  } else {
    SALSA_CHECK_MSG(initial_states.size() == state_nodes_.size(),
                    "initial_states size mismatch");
    states_.assign(initial_states.begin(), initial_states.end());
  }
}

std::vector<int64_t> Evaluator::step(std::span<const int64_t> inputs) {
  SALSA_CHECK_MSG(inputs.size() == input_nodes_.size(),
                  "evaluator input arity mismatch");
  std::vector<int64_t> val(static_cast<size_t>(cdfg_.num_values()), 0);
  for (size_t i = 0; i < input_nodes_.size(); ++i)
    val[static_cast<size_t>(cdfg_.node(input_nodes_[i]).out)] =
        inputs[i];
  for (size_t i = 0; i < state_nodes_.size(); ++i)
    val[static_cast<size_t>(cdfg_.node(state_nodes_[i]).out)] = states_[i];

  for (NodeId id : order_) {
    const Node& n = cdfg_.node(id);
    switch (n.kind) {
      case OpKind::kConst:
        val[static_cast<size_t>(n.out)] = n.cvalue;
        break;
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kMul:
        val[static_cast<size_t>(n.out)] =
            apply_op(n.kind, val[static_cast<size_t>(n.ins[0])],
                     val[static_cast<size_t>(n.ins[1])]);
        break;
      case OpKind::kNop:
        val[static_cast<size_t>(n.out)] = val[static_cast<size_t>(n.ins[0])];
        break;
      default:
        break;  // inputs/states already seeded; outputs read below
    }
  }

  for (size_t i = 0; i < state_nodes_.size(); ++i)
    states_[i] = val[static_cast<size_t>(
        cdfg_.node(state_nodes_[i]).state_next)];

  std::vector<int64_t> outs;
  outs.reserve(output_nodes_.size());
  for (NodeId o : output_nodes_)
    outs.push_back(val[static_cast<size_t>(cdfg_.node(o).ins[0])]);
  return outs;
}

}  // namespace salsa
