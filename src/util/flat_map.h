// FlatMap: the cache-friendly open-addressing table behind the search
// engine's connection index (core/search_engine.h) and the move-footprint
// row accumulators (core/footprint.h).
//
// It is deliberately NOT a general-purpose hash map. The two shapes it
// serves — packed (sink, source) pair keys `uint64_t -> int` and packed
// sink keys `uint32_t -> int` — are refcount tables: every stored value is
// a nonzero signed count, entries are created by the first increment and
// die the moment their count returns to zero. That contract buys the whole
// layout:
//
//   * one flat power-of-two slot array of {key, count} pairs (8 bytes per
//     slot for uint32_t keys, 16 for uint64_t) — no nodes, no buckets, no
//     per-entry allocation;
//   * count == 0 *is* the empty marker, so probing needs no separate
//     control bytes and a lookup touches exactly one contiguous cache line
//     run;
//   * linear probing with backward-shift deletion — erasing compacts the
//     probe chain in place, so there are no tombstones and the load factor
//     never degrades over a long search no matter how many transient pairs
//     a trajectory churns through.
//
// Iteration-order contract: for_each() walks the slot array in index
// order. Slot placement depends on insertion/deletion history, so two
// tables with equal contents may iterate in different orders — therefore
// NOTHING in the engine derives search state, digests or trajectories from
// iteration order, and equality (operator==, the auditor's
// index_matches_rebuild cross-check) is content-based: equal sizes and
// key-by-key equal counts, regardless of layout. Binding digests
// (analysis/digest.h) never touch the index at all, which is why swapping
// std::unordered_map for FlatMap left every trajectory byte-identical
// (tests/test_speculation.cpp, tests/test_reproduction.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/diagnostics.h"

namespace salsa {

/// Test-only fault injection for the backward-shift deletion path. When
/// `break_backward_shift_after` is N > 0, the Nth *compacting* erase — one
/// whose walk would displace at least one key; erases with an empty
/// successor are harmless without compaction and don't count — abandons the
/// walk, leaving a hole that orphans every displaced key behind it: exactly
/// the corruption a buggy deletion would cause, guaranteed to make some
/// stored key unreachable by probing. `erase_count` counts compacting
/// erases while the hook is armed (process-wide). The salsa_audit --index
/// rebuild cross-check (or FlatMap's own missing-key CHECK) must catch the
/// drift; the mutation tests in tests/test_flat_map.cpp and the
/// --break-flat-erase CI run prove it does. One-shot: the hook disarms
/// after firing. Only tables opted in via mark_mutation_target() are
/// eligible — the engine marks its audited index tables, keeping the
/// sabotage away from transient accumulators (the transaction-delta
/// netting table) whose orphaned entries would still drain correctly and
/// prove nothing. Never set outside single-threaded tests.
namespace flat_map_hooks {
inline long break_backward_shift_after = 0;
inline long erase_count = 0;
}  // namespace flat_map_hooks

/// Open-addressing refcount table (see file header). Key must be an
/// unsigned integral packed-id type (uint32_t or uint64_t in practice);
/// counts are signed ints, stored only while nonzero.
template <typename Key>
class FlatMap {
  static_assert(sizeof(Key) == 4 || sizeof(Key) == 8,
                "FlatMap serves the packed 32/64-bit id shapes");

 public:
  struct Slot {
    Key key;
    int count;  ///< 0 = empty slot; stored entries are always nonzero
  };

  FlatMap() = default;

  /// Makes this table eligible for the flat_map_hooks backward-shift
  /// mutation (see above). Test/audit plumbing only; no effect while the
  /// hook is unarmed.
  void mark_mutation_target() { mutation_target_ = true; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of slot-array reallocations this table has performed (including
  /// the ones reserve() triggers up front). The engine pre-reserves its
  /// tables from problem dimensions, and tests pin that this counter stays
  /// put over a steady-state move loop — a growth here means a mis-sized
  /// reserve silently reintroduced rehash stalls into the hot path.
  size_t rehashes() const { return rehashes_; }

  /// Drops every entry but keeps the slot array (capacity) allocated.
  void clear() {
    for (Slot& s : slots_) s.count = 0;
    size_ = 0;
  }

  /// Pre-sizes the slot array for `n` entries without rehashing later.
  void reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * kLoadNum < n * kLoadDen) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Hints the cache that `key`'s probe chain is about to be walked. The
  /// transaction netting knows every key it will probe before the first
  /// probe, so issuing the loads up front overlaps the misses — on large
  /// designs the slot array spans megabytes and each cold probe is
  /// otherwise a serialized memory stall.
  void prefetch(Key key) const {
    if (!slots_.empty())
      __builtin_prefetch(&slots_[ideal(key, slots_.size() - 1)]);
  }

  /// Count stored for `key`, or nullptr when absent.
  const int* find(Key key) const {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = ideal(key, mask);; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.count == 0) return nullptr;
      if (s.key == key) return &s.count;
    }
  }

  /// ++count, creating the entry at 1. Returns the new count.
  int increment(Key key) { return add(key, 1); }

  /// --count, erasing the entry when it reaches zero (backward-shift
  /// compaction, no tombstone). The key must be present with a positive
  /// count — a miss means the index and the binding have diverged, which is
  /// a hard error even in release builds (SALSA_CHECK, not DCHECK: dying
  /// loudly beats silently corrupting the cost).
  int decrement(Key key) {
    SALSA_CHECK_MSG(!slots_.empty(), "FlatMap::decrement on an empty table");
    const size_t mask = slots_.size() - 1;
    size_t i = ideal(key, mask);
    for (;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      SALSA_CHECK_MSG(s.count != 0,
                      "FlatMap::decrement: key absent from the index");
      if (s.key == key) break;
    }
    SALSA_CHECK_MSG(slots_[i].count > 0,
                    "FlatMap::decrement on a non-positive count");
    const int now = --slots_[i].count;
    if (now == 0) erase_at(i, mask);
    return now;
  }

  /// Adds a signed delta to `key`'s count: creates the entry when absent,
  /// erases it when the sum returns to zero. The general form behind
  /// increment()/decrement(), and the accumulator the footprint netting
  /// uses (deltas there run negative transiently). Returns the new count.
  int add(Key key, int delta) {
    if (delta == 0) return value_or_zero(key);
    grow_if_needed();
    const size_t mask = slots_.size() - 1;
    for (size_t i = ideal(key, mask);; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.count == 0) {
        s.key = key;
        s.count = delta;
        ++size_;
        return delta;
      }
      if (s.key == key) {
        s.count += delta;
        const int now = s.count;
        if (now == 0) erase_at(i, mask);
        return now;
      }
    }
  }

  /// Applies fn(key, count) to every entry, in slot order (see the
  /// iteration-order contract in the file header).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.count != 0) fn(s.key, s.count);
  }

  /// for_each + clear in one pass over the slot array: applies fn(key,
  /// count) to every entry and empties the table, keeping capacity. The
  /// transaction-delta accumulator drains itself this way once per
  /// proposal, so the single walk matters.
  template <typename Fn>
  void drain(Fn&& fn) {
    if (size_ != 0) {
      size_t remaining = size_;
      for (Slot& s : slots_) {
        if (s.count == 0) continue;
        fn(s.key, s.count);
        s.count = 0;
        if (--remaining == 0) break;  // tail already empty, skip the scan
      }
      size_ = 0;
    }
  }

  /// Content equality: equal entry sets, independent of slot layout.
  /// Deliberately symmetric — each side's entries are probed in the other —
  /// although equal sizes would make one direction sufficient for two
  /// well-formed tables: a table corrupted by a botched deletion still
  /// *stores* its orphaned entries (slot scans see them) but can no longer
  /// *reach* them by probing, so only the probe into the corrupted side
  /// exposes the damage. The audit wall's rebuild cross-check
  /// (SearchEngine::index_matches_rebuild) relies on this direction.
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size_ != b.size_) return false;
    for (const Slot& s : a.slots_) {
      if (s.count == 0) continue;
      const int* other = b.find(s.key);
      if (other == nullptr || *other != s.count) return false;
    }
    for (const Slot& s : b.slots_) {
      if (s.count == 0) continue;
      const int* other = a.find(s.key);
      if (other == nullptr || *other != s.count) return false;
    }
    return true;
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  // Grow past 7/8 full: linear probing stays short and the table is still
  // dense enough that a whole probe run fits in one or two cache lines.
  static constexpr size_t kLoadNum = 7;
  static constexpr size_t kLoadDen = 8;

  /// Fibonacci hashing: one multiply by 2^64/phi, then take *high* bits
  /// (where the multiply has mixed the whole key) down to the mask range.
  /// Weaker than a full-avalanche finalizer but a fraction of the latency,
  /// and plenty for the packed id keys — the dense low id bits land in the
  /// multiplier's best-mixed output. Layout (hence iteration order) is all
  /// this decides; nothing observable depends on it (see file header).
  static size_t ideal(Key key, size_t mask) {
    if constexpr (sizeof(Key) == 8) {
      return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) & mask;
    } else {
      return static_cast<size_t>((key * 0x9e3779b9u) >> 16) & mask;
    }
  }

  int value_or_zero(Key key) const {
    const int* p = find(key);
    return p ? *p : 0;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
      return;
    }
    if ((size_ + 1) * kLoadDen > slots_.size() * kLoadNum)
      rehash(slots_.size() * 2);
  }

  void rehash(size_t cap) {
    ++rehashes_;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{Key{}, 0});
    const size_t mask = cap - 1;
    for (const Slot& s : old) {
      if (s.count == 0) continue;
      size_t i = ideal(s.key, mask);
      while (slots_[i].count != 0) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  /// Backward-shift deletion: slot `i` was just emptied; walk the probe
  /// chain forward until a gap. Every entry whose probe path crosses the
  /// hole is shifted back into it (an entry already cyclically at-or-past
  /// its ideal slot without passing the hole stays put); the hole follows
  /// the shifted entry. Terminates at the first empty slot — one always
  /// exists because the load factor is capped below 1. Leaves no
  /// tombstone, so probe chains never grow stale.
  void erase_at(size_t i, size_t mask) {
    --size_;
    bool shifted = false;
    for (size_t j = (i + 1) & mask;; j = (j + 1) & mask) {
      const Slot& next = slots_[j];
      if (next.count == 0) {
        slots_[i].count = 0;
        return;
      }
      // Shift iff the hole lies on next's probe path: cyclic distance from
      // its ideal slot to j is at least the distance from the hole to j.
      if (((j - ideal(next.key, mask)) & mask) >= ((j - i) & mask)) {
        if (!shifted && mutation_target_ &&
            flat_map_hooks::break_backward_shift_after > 0 &&
            ++flat_map_hooks::erase_count ==
                flat_map_hooks::break_backward_shift_after) {
          // Test-only mutation (see flat_map_hooks): this erase would have
          // compacted displaced keys over the hole; leave the hole in
          // place instead, orphaning them. One-shot.
          flat_map_hooks::break_backward_shift_after = 0;
          slots_[i].count = 0;
          return;
        }
        shifted = true;
        slots_[i] = next;
        i = j;
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t rehashes_ = 0;           ///< slot-array reallocations (see rehashes())
  bool mutation_target_ = false;  ///< eligible for flat_map_hooks sabotage
};

}  // namespace salsa
