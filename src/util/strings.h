#pragma once

#include <string>

namespace salsa {

// Builds "<prefix><n>". Equivalent to `prefix + std::to_string(n)`, but the
// append form sidesteps GCC 12's spurious -Wrestrict on the
// operator+(const char*, std::string&&) overload when it gets inlined at -O2
// (GCC PR 105329), which would otherwise break the -Werror build.
inline std::string numbered(const char* prefix, long long n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

}  // namespace salsa
