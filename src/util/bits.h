// Word-level bit primitives behind the packed bitplane kernels
// (util/bitplane.h): population count and count-trailing-zeros over
// uint64_t words, routed through one header so every caller picks up the
// same portability story.
//
// Three implementations, chosen at compile time:
//   * GCC/Clang: __builtin_popcountll / __builtin_ctzll (lower to POPCNT /
//     TZCNT where the target has them, and to good library sequences where
//     it does not — no -march flags required for correctness);
//   * MSVC: the <intrin.h> equivalents;
//   * portable: branch-free software fallbacks, also selected by
//     SALSA_BITPLANE_SCALAR so the scalar-reference CI build exercises the
//     fallback path end to end (see the scalar-fallback job in ci.yml).
#pragma once

#include <cstdint>

#if !defined(SALSA_BITPLANE_SCALAR) && defined(_MSC_VER)
#include <intrin.h>
#endif

namespace salsa {

#if defined(SALSA_BITPLANE_SCALAR)

/// Software popcount (Hamming weight by parallel summing). The reference
/// path: exact, branch-free, no intrinsics.
inline int popcount64(uint64_t w) {
  w = w - ((w >> 1) & 0x5555555555555555ull);
  w = (w & 0x3333333333333333ull) + ((w >> 2) & 0x3333333333333333ull);
  w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<int>((w * 0x0101010101010101ull) >> 56);
}

/// Software count-trailing-zeros. Undefined for w == 0 (as the intrinsics
/// are); callers guard on a nonzero word first.
inline int ctz64(uint64_t w) {
  int n = 0;
  if ((w & 0xffffffffull) == 0) { n += 32; w >>= 32; }
  if ((w & 0xffffull) == 0) { n += 16; w >>= 16; }
  if ((w & 0xffull) == 0) { n += 8; w >>= 8; }
  if ((w & 0xfull) == 0) { n += 4; w >>= 4; }
  if ((w & 0x3ull) == 0) { n += 2; w >>= 2; }
  return n + (static_cast<int>(w & 1ull) ^ 1);
}

#elif defined(_MSC_VER)

inline int popcount64(uint64_t w) {
  return static_cast<int>(__popcnt64(w));
}

inline int ctz64(uint64_t w) {
  unsigned long idx;
  _BitScanForward64(&idx, w);
  return static_cast<int>(idx);
}

#else

inline int popcount64(uint64_t w) { return __builtin_popcountll(w); }

inline int ctz64(uint64_t w) { return __builtin_ctzll(w); }

#endif

/// Sum of popcount64 over `n` words — the reduction half of the batched
/// register-mask kernels (see words_or_accumulate in util/bitplane.h). Four
/// independent accumulators keep the per-word popcounts pipelined on the
/// packed path; the scalar-reference build routes through the software
/// popcount64 above and produces the identical sum.
inline int popcount_words(const uint64_t* w, int n) {
  int a = 0, b = 0, c = 0, d = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    a += popcount64(w[i]);
    b += popcount64(w[i + 1]);
    c += popcount64(w[i + 2]);
    d += popcount64(w[i + 3]);
  }
  for (; i < n; ++i) a += popcount64(w[i]);
  return a + b + c + d;
}

}  // namespace salsa
