// Parallel search runtime: a small shared thread pool plus
// parallel_for/parallel_map helpers with a deterministic contract.
//
// The unit of parallel work everywhere in this codebase is an *independent
// index*: restart r of allocate(), variant v of explore_schedules(), lattice
// point p of schedule_min_fu(), seed s of a benchmark sweep. Each index owns
// its state (a private SearchEngine, a SplitMix64-derived seed stream — see
// util/rng.h:derive_seed) and returns a value; the reduction over results
// always runs on the calling thread in index order. Consequently results are
// byte-identical for every thread count, including 1 — the scheduler decides
// only *when* an index runs, never what it computes or how the results are
// combined.
//
// Execution model: a parallel_for posts a batch (an atomic index cursor over
// [0, n)) to the process-wide pool. The calling thread immediately starts
// stealing indices from its own batch; sleeping workers wake and steal from
// the oldest batch that still has unclaimed indices and a free participant
// slot. Nested parallelism needs no special casing: an index that itself
// calls parallel_for posts an inner batch and drains it the same way, so
// forward progress never depends on a worker being available — a pool with
// zero free workers degrades to sequential execution on the caller.
//
// Exceptions thrown by fn(i) are captured per index; after the batch
// completes, the exception with the lowest index is rethrown on the calling
// thread (again independent of thread count). Remaining indices still run —
// an index is never skipped because a sibling failed.
//
// Locking discipline (SalsaLint): the pool's shared state lives behind a
// capability-annotated salsa::Mutex (util/mutex.h) with every guarded
// member SALSA_GUARDED_BY-declared in thread_pool.cpp, so the Clang
// -Wthread-safety leg of CI proves lock/member discipline at compile time
// rather than trusting TSan to hit the interleaving.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace salsa {

/// Thread-count knob threaded through option structs (AllocatorOptions,
/// ScheduleExploreParams, ...).
struct Parallelism {
  /// Maximum concurrent participants for one parallel_for (the calling
  /// thread counts as one). 0 = auto: the SALSA_THREADS environment
  /// variable if set, otherwise std::thread::hardware_concurrency().
  int threads = 0;

  /// Resolved participant count (always >= 1).
  int resolve() const;
  /// Sequential execution (resolve() == 1)?
  bool sequential() const { return resolve() <= 1; }

  static Parallelism sequential_only() { return Parallelism{1}; }
};

/// SALSA_THREADS if set (clamped to >= 1), else hardware concurrency.
int default_thread_count();

/// Runs fn(0), ..., fn(n-1) with at most `par.resolve()` concurrent
/// participants, blocking until every index has finished. The calling
/// thread participates. Deterministic contract: see file header.
void parallel_for(const Parallelism& par, int n,
                  const std::function<void(int)>& fn);

/// parallel_for that collects fn's return values in index order. T need not
/// be default-constructible (results are staged through std::optional).
template <typename Fn>
auto parallel_map(const Parallelism& par, int n, Fn&& fn)
    -> std::vector<decltype(fn(0))> {
  using T = decltype(fn(0));
  std::vector<std::optional<T>> staged(static_cast<size_t>(n));
  parallel_for(par, n,
               [&](int i) { staged[static_cast<size_t>(i)].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(static_cast<size_t>(n));
  for (auto& s : staged) out.push_back(std::move(*s));
  return out;
}

}  // namespace salsa
