#include "util/rng.h"

namespace salsa {

namespace {

constexpr uint64_t kGolden = 0x9E3779B97f4A7C15u;

uint64_t splitmix64_mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9u;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBu;
  return z ^ (z >> 31);
}

uint64_t splitmix64(uint64_t& x) {
  x += kGolden;
  return splitmix64_mix(x);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t derive_seed(uint64_t base, uint64_t stream) {
  return splitmix64_mix(base + (stream + 1) * kGolden);
}

void Rng::reseed(uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

int Rng::uniform(int n) {
  SALSA_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t bound = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return static_cast<int>(r % bound);
}

int Rng::range(int lo, int hi) {
  SALSA_DCHECK(lo <= hi);
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int Rng::weighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    SALSA_DCHECK(w >= 0);
    total += w;
  }
  SALSA_CHECK_MSG(total > 0, "weighted() needs a positive total weight");
  double r = uniform01() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace salsa
