// Clang thread-safety annotations — the compile-time half of the SalsaLint
// wall (DESIGN.md "SalsaLint static-analysis wall").
//
// The parallel runtime's locking discipline (which mutex guards which
// member, which functions must / must not hold it) used to live only in
// comments; these macros state it in a form `clang -Wthread-safety` proves
// on every build of the lint-static CI flavor. Under GCC/MSVC every macro
// expands to nothing, so the annotations cost non-Clang builds exactly
// zero — same contract as the no-op fallback in Abseil's
// thread_annotations.h, which this header follows.
//
// Usage map (the two annotated subsystems):
//   * util/thread_pool.cpp — the process-wide Pool: batches_/workers_/
//     stop_ are SALSA_GUARDED_BY(mutex_); the *_locked helpers are
//     SALSA_REQUIRES(mutex_).
//   * core/speculate.h — the ProposalPipeline's worker pool:
//     free_workers_ is SALSA_GUARDED_BY(workers_mu_); acquire/release
//     take the lock themselves and are SALSA_EXCLUDES(workers_mu_).
//
// Adding a mutex-protected member anywhere else? Annotate it here-style or
// the Clang leg of CI will not prove anything about it — the analysis is
// opt-in per member.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define SALSA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SALSA_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on non-Clang
#endif

/// Marks a type as a capability (lockable). std::mutex already carries the
/// attribute in libc++ and is special-cased by the analysis everywhere
/// else, so this is only needed for hand-rolled lock types.
#define SALSA_CAPABILITY(x) \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares that a data member may only be read or written while holding
/// the given capability (e.g. SALSA_GUARDED_BY(mutex_)).
#define SALSA_GUARDED_BY(x) SALSA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Like SALSA_GUARDED_BY, for the data a pointer member points to (the
/// pointer itself stays unguarded).
#define SALSA_PT_GUARDED_BY(x) \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares that callers must hold the capability when calling the
/// annotated function (which itself neither acquires nor releases it).
#define SALSA_REQUIRES(...) \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the capability — the function
/// acquires it itself, so calling with it held would self-deadlock.
#define SALSA_EXCLUDES(...) \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the capability and returns with it held.
#define SALSA_ACQUIRE(...) \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The annotated function releases the capability before returning.
#define SALSA_RELEASE(...) \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Scoped lock types (lock in ctor, unlock in dtor).
#define SALSA_SCOPED_CAPABILITY \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Escape hatch: the function's locking is intentionally outside what the
/// analysis can model (e.g. lock handoff across threads). Use sparingly and
/// say why at the call site.
#define SALSA_NO_THREAD_SAFETY_ANALYSIS \
  SALSA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
