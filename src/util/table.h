// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables (Table 2 / Table 3 rows) in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace salsa {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal separator.
  void separator();

  /// Renders the table with column alignment and `|` separators.
  std::string render() const;

 private:
  struct Line {
    bool is_separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Line> lines_;
  bool has_header_ = false;
};

/// Convenience: formats a double with the given precision.
std::string fmt(double v, int precision = 2);

}  // namespace salsa
