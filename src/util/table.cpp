#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace salsa {

void TextTable::header(std::vector<std::string> cells) {
  lines_.insert(lines_.begin(), Line{false, std::move(cells)});
  lines_.insert(lines_.begin() + 1, Line{true, {}});
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  lines_.push_back(Line{false, std::move(cells)});
}

void TextTable::separator() { lines_.push_back(Line{true, {}}); }

std::string TextTable::render() const {
  std::vector<size_t> width;
  for (const auto& line : lines_) {
    for (size_t i = 0; i < line.cells.size(); ++i) {
      if (width.size() <= i) width.resize(i + 1, 0);
      width[i] = std::max(width[i], line.cells[i].size());
    }
  }
  std::ostringstream os;
  for (const auto& line : lines_) {
    if (line.is_separator) {
      os << '+';
      for (size_t w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
      continue;
    }
    os << '|';
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < line.cells.size() ? line.cells[i] : std::string();
      os << ' ' << c << std::string(width[i] - c.size(), ' ') << " |";
    }
    os << '\n';
  }
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace salsa
