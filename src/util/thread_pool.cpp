#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/diagnostics.h"

namespace salsa {

namespace {

// One parallel_for invocation: an atomic cursor over [0, n) plus completion
// bookkeeping. Participants (the caller and any stolen-in workers) claim
// indices with fetch_add until the cursor passes n.
struct Batch {
  int n = 0;
  const std::function<void(int)>* fn = nullptr;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  /// Worker slots still available (the caller is not counted here).
  int worker_slots = 0;
  std::vector<std::exception_ptr> errors;  // one slot per index
  std::mutex done_mutex;
  std::condition_variable done_cv;

  bool claimable() const { return next.load(std::memory_order_relaxed) < n; }
};

// Executes indices from `b` until the cursor is exhausted. Returns after
// contributing; does not wait for other participants.
void drain(Batch& b) {
  for (;;) {
    const int i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.n) break;
    try {
      (*b.fn)(i);
    } catch (...) {
      b.errors[static_cast<size_t>(i)] = std::current_exception();
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.n) {
      // Last index: wake the batch owner. Taking the lock orders the notify
      // after the owner's predicate check, so the wakeup cannot be missed.
      std::lock_guard<std::mutex> lock(b.done_mutex);
      b.done_cv.notify_all();
    }
  }
}

// Process-wide worker pool. Workers are spawned lazily up to the largest
// participant count any parallel_for has requested, and sleep whenever no
// batch has both unclaimed indices and a free worker slot.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void run(int participants, int n, const std::function<void(int)>& fn) {
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    batch->errors.resize(static_cast<size_t>(n));
    batch->worker_slots = participants - 1;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers_locked(participants - 1);
      batches_.push_back(batch);
    }
    work_cv_.notify_all();

    drain(*batch);
    {
      std::unique_lock<std::mutex> lock(batch->done_mutex);
      batch->done_cv.wait(lock, [&] {
        return batch->done.load(std::memory_order_acquire) == batch->n;
      });
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::erase(batches_, batch);
    }
    for (const std::exception_ptr& e : batch->errors)
      if (e) std::rethrow_exception(e);
  }

 private:
  Pool() = default;

  void ensure_workers_locked(int wanted) {
    while (static_cast<int>(workers_.size()) < wanted)
      workers_.emplace_back([this] { worker_loop(); });
  }

  // Oldest batch with unclaimed indices and a free worker slot; takes the
  // slot. Called under mutex_.
  std::shared_ptr<Batch> take_batch_locked() {
    for (const auto& b : batches_) {
      if (b->claimable() && b->worker_slots > 0) {
        --b->worker_slots;
        return b;
      }
    }
    return nullptr;
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop_ || (batch = take_batch_locked()) != nullptr;
        });
        if (stop_) return;
      }
      drain(*batch);
      // The slot is not returned: a drained participant leaving means the
      // cursor is exhausted (or will be momentarily), so re-joining the
      // same batch buys nothing.
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  bool stop_ = false;
  std::deque<std::shared_ptr<Batch>> batches_;
  std::vector<std::thread> workers_;  // joined by ~Pool at process exit
};

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("SALSA_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int Parallelism::resolve() const {
  return threads > 0 ? threads : default_thread_count();
}

void parallel_for(const Parallelism& par, int n,
                  const std::function<void(int)>& fn) {
  SALSA_CHECK_MSG(n >= 0, "parallel_for needs a non-negative index count");
  if (n == 0) return;
  const int participants = std::min(par.resolve(), n);
  if (participants <= 1 || n == 1) {
    // Sequential reference path. Runs the indices in order; exceptions are
    // still deferred to the end (lowest index wins) so failure behaviour
    // matches the parallel path exactly.
    std::vector<std::exception_ptr> errors(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<size_t>(i)] = std::current_exception();
      }
    }
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
    return;
  }
  Pool::instance().run(participants, n, fn);
}

}  // namespace salsa
