#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

#include "util/annotations.h"
#include "util/diagnostics.h"
#include "util/mutex.h"

namespace salsa {

namespace {

// One parallel_for invocation: an atomic cursor over [0, n) plus completion
// bookkeeping. Participants (the caller and any stolen-in workers) claim
// indices with fetch_add until the cursor passes n.
struct Batch {
  int n = 0;
  const std::function<void(int)>* fn = nullptr;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  /// Worker slots still available (the caller is not counted here). Guarded
  /// by the owning Pool's mutex_ — Batch is declared before Pool, so the
  /// guard is stated here rather than via SALSA_GUARDED_BY; the only
  /// touches are Pool::run and Pool::take_batch_locked, both under it.
  int worker_slots = 0;
  std::vector<std::exception_ptr> errors;  // one slot per index
  // Wakeup plumbing for the batch owner; `done` itself is atomic, the
  // mutex only orders the final notify against the owner's predicate check.
  Mutex done_mutex;
  CondVar done_cv;

  bool claimable() const { return next.load(std::memory_order_relaxed) < n; }
};

// Executes indices from `b` until the cursor is exhausted. Returns after
// contributing; does not wait for other participants.
void drain(Batch& b) {
  for (;;) {
    const int i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.n) break;
    try {
      (*b.fn)(i);
    } catch (...) {
      b.errors[static_cast<size_t>(i)] = std::current_exception();
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.n) {
      // Last index: wake the batch owner. Taking the lock orders the notify
      // after the owner's predicate check, so the wakeup cannot be missed.
      MutexLock lock(b.done_mutex);
      b.done_cv.notify_all();
    }
  }
}

// Process-wide worker pool. Workers are spawned lazily up to the largest
// participant count any parallel_for has requested, and sleep whenever no
// batch has both unclaimed indices and a free worker slot.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() {
    // Swap the worker handles out under the lock, join them outside it —
    // joining while holding mutex_ would deadlock against workers that
    // need it to observe stop_ (and the annotated guard on workers_ would
    // reject the unlocked join loop anyway).
    std::vector<std::thread> to_join;
    {
      MutexLock lock(mutex_);
      stop_ = true;
      to_join.swap(workers_);
    }
    work_cv_.notify_all();
    for (std::thread& w : to_join) w.join();
  }

  void run(int participants, int n, const std::function<void(int)>& fn) {
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    batch->errors.resize(static_cast<size_t>(n));
    batch->worker_slots = participants - 1;
    {
      MutexLock lock(mutex_);
      ensure_workers_locked(participants - 1);
      batches_.push_back(batch);
    }
    work_cv_.notify_all();

    drain(*batch);
    {
      MutexLock lock(batch->done_mutex);
      while (batch->done.load(std::memory_order_acquire) != batch->n)
        batch->done_cv.wait(batch->done_mutex);
    }
    {
      MutexLock lock(mutex_);
      std::erase(batches_, batch);
    }
    for (const std::exception_ptr& e : batch->errors)
      if (e) std::rethrow_exception(e);
  }

 private:
  Pool() = default;

  void ensure_workers_locked(int wanted) SALSA_REQUIRES(mutex_) {
    while (static_cast<int>(workers_.size()) < wanted)
      workers_.emplace_back([this] { worker_loop(); });
  }

  // Oldest batch with unclaimed indices and a free worker slot; takes the
  // slot.
  std::shared_ptr<Batch> take_batch_locked() SALSA_REQUIRES(mutex_) {
    for (const auto& b : batches_) {
      if (b->claimable() && b->worker_slots > 0) {
        --b->worker_slots;
        return b;
      }
    }
    return nullptr;
  }

  // The explicit lock()/unlock() structure (instead of a cv.wait(lock,
  // pred) lambda) keeps every guarded access lexically inside a held
  // region, which is the shape the thread-safety analysis can prove.
  void worker_loop() SALSA_EXCLUDES(mutex_) {
    mutex_.lock();
    for (;;) {
      if (stop_) {
        mutex_.unlock();
        return;
      }
      std::shared_ptr<Batch> batch = take_batch_locked();
      if (batch != nullptr) {
        mutex_.unlock();
        drain(*batch);
        // The slot is not returned: a drained participant leaving means
        // the cursor is exhausted (or will be momentarily), so re-joining
        // the same batch buys nothing.
        mutex_.lock();
        continue;
      }
      work_cv_.wait(mutex_);
    }
  }

  Mutex mutex_;
  CondVar work_cv_;
  bool stop_ SALSA_GUARDED_BY(mutex_) = false;
  std::deque<std::shared_ptr<Batch>> batches_ SALSA_GUARDED_BY(mutex_);
  /// Joined by ~Pool at process exit.
  std::vector<std::thread> workers_ SALSA_GUARDED_BY(mutex_);
};

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("SALSA_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int Parallelism::resolve() const {
  return threads > 0 ? threads : default_thread_count();
}

void parallel_for(const Parallelism& par, int n,
                  const std::function<void(int)>& fn) {
  SALSA_CHECK_MSG(n >= 0, "parallel_for needs a non-negative index count");
  if (n == 0) return;
  const int participants = std::min(par.resolve(), n);
  if (participants <= 1 || n == 1) {
    // Sequential reference path. Runs the indices in order; exceptions are
    // still deferred to the end (lowest index wins) so failure behaviour
    // matches the parallel path exactly.
    std::vector<std::exception_ptr> errors(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<size_t>(i)] = std::current_exception();
      }
    }
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
    return;
  }
  Pool::instance().run(participants, n, fn);
}

}  // namespace salsa
