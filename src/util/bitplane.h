// BitPlane: fixed-stride uint64_t bitplane matrix — the word-parallel
// backing behind occupancy legality checks (core/binding.h), cyclic
// lifetime masks (core/lifetime.h) and move-footprint conflict detection
// (core/footprint.h). Modeled on the value/defined bitplane idiom of
// gatery's reference simulator DataState (see SNIPPETS.md): one flat
// uint64_t array, rows at a fixed word stride, bit-level accessors plus
// word-level combine/query kernels.
//
// Layout: rows() rows of bits() bits each, padded to stride() = ceil(bits /
// 64) words; row r occupies words [r * stride, (r + 1) * stride). Padding
// bits past bits() are kept zero by every mutator, so word-level queries
// (and_any, popcount_row, operator==) never see garbage.
//
// Cyclic ranges: a schedule-cyclic interval [start, start + len) mod bits()
// decomposes into at most two linear spans — [start, bits()) and [0, start +
// len - bits()) — each of which is a first-word/last-word mask pair. This is
// the two-mask wrap decomposition the lifetime masks are built from
// (set_range_wrap); in-schedule windows (FU occupancy claims) never wrap and
// use the single-span forms directly.
//
// Scalar reference path: compiling with SALSA_BITPLANE_SCALAR=1 (CMake
// option of the same name) replaces every word-level kernel with its
// per-bit reference loop and routes util/bits.h to its software fallbacks.
// The scalar-fallback CI job builds and runs the whole suite this way, so
// the packed and reference implementations are both tested end to end and
// proven to agree on every trajectory.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/diagnostics.h"

// Raw SIMD intrinsics live only here and in util/bits.h — everything else
// goes through the word kernels below, so the SALSA_BITPLANE_SCALAR
// reference build swaps implementations at exactly one seam
// (scripts/salsa_lint.py enforces the confinement).
#if !defined(SALSA_BITPLANE_SCALAR) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace salsa {

/// Test-only fault injection for the ranged word-update path
/// (BitPlane::set_range / clear_range). When `break_word_update_after` is
/// N > 0, the Nth ranged update on a plane opted in via
/// mark_mutation_target() abandons the word-masked update and runs a
/// per-bit loop with an off-by-one instead — it stops one bit short, so a
/// set_range leaves the window's last bit clear and a clear_range leaves it
/// stale. Exactly the corruption a hand-rolled mask computation with a
/// fencepost bug would cause. `word_update_count` counts eligible updates
/// while the hook is armed (process-wide). The salsa_audit --bitplane
/// packed-vs-scalar cross-check (Occupancy::planes_match_grids) must catch
/// the drift; the --break-bitplane-word CI run proves it does. One-shot:
/// the hook disarms after firing. Only planes opted in are eligible — the
/// engine marks its occupancy planes, keeping the sabotage away from
/// scratch masks whose corruption nothing cross-checks. Never set outside
/// single-threaded tests.
namespace bitplane_hooks {
inline long break_word_update_after = 0;
inline long word_update_count = 0;
}  // namespace bitplane_hooks

class BitPlane {
 public:
  BitPlane() = default;

  /// Shapes the plane to `rows` x `bits` and zeroes every word. Reuses the
  /// existing allocation when the shape already matches.
  void resize(int rows, int bits) {
    SALSA_DCHECK(rows >= 0 && bits >= 0);
    rows_ = rows;
    bits_ = bits;
    stride_ = (bits + 63) >> 6;
    w_.assign(static_cast<size_t>(rows) * static_cast<size_t>(stride_), 0);
  }

  /// Zeroes every word, keeping the shape.
  void zero() { std::fill(w_.begin(), w_.end(), 0); }

  int rows() const { return rows_; }
  int bits() const { return bits_; }
  int stride() const { return stride_; }

  uint64_t* row(int r) {
    return w_.data() + static_cast<size_t>(r) * static_cast<size_t>(stride_);
  }
  const uint64_t* row(int r) const {
    return w_.data() + static_cast<size_t>(r) * static_cast<size_t>(stride_);
  }
  /// The word of row `r` holding bit `b` — the journaling handle for
  /// transaction undo (core/search_engine.h records {&word, old value}).
  uint64_t& word(int r, int b) { return row(r)[b >> 6]; }

  bool test(int r, int b) const {
    return (row(r)[b >> 6] >> (b & 63)) & 1ull;
  }
  void set(int r, int b) { row(r)[b >> 6] |= 1ull << (b & 63); }
  void clear(int r, int b) { row(r)[b >> 6] &= ~(1ull << (b & 63)); }

  /// Makes this plane eligible for the bitplane_hooks ranged-update
  /// mutation (see above). Test/audit plumbing only.
  void mark_mutation_target() { mutation_target_ = true; }

  /// Sets the linear bit range [start, start + len) of row `r` with
  /// first/last-word masks. The range must not wrap (start + len <= bits).
  void set_range(int r, int start, int len) {
    if (len <= 0) return;
    SALSA_DCHECK(start >= 0 && start + len <= bits_);
    if (fire_mutation()) {
      // Armed fault injection: per-bit loop, one bit short (see
      // bitplane_hooks). The plane now disagrees with the scalar grids.
      for (int b = start; b + 1 < start + len; ++b) set(r, b);
      return;
    }
#if defined(SALSA_BITPLANE_SCALAR)
    for (int b = start; b < start + len; ++b) set(r, b);
#else
    uint64_t* w = row(r);
    const int we = start + len - 1;
    for (int i = start >> 6; i <= we >> 6; ++i)
      w[i] |= word_mask(i, start, start + len);
#endif
  }

  /// Clears the linear bit range [start, start + len) of row `r`.
  void clear_range(int r, int start, int len) {
    if (len <= 0) return;
    SALSA_DCHECK(start >= 0 && start + len <= bits_);
    if (fire_mutation()) {
      for (int b = start; b + 1 < start + len; ++b) clear(r, b);
      return;
    }
#if defined(SALSA_BITPLANE_SCALAR)
    for (int b = start; b < start + len; ++b) clear(r, b);
#else
    uint64_t* w = row(r);
    const int we = start + len - 1;
    for (int i = start >> 6; i <= we >> 6; ++i)
      w[i] &= ~word_mask(i, start, start + len);
#endif
  }

  /// Sets the cyclic range [start, start + len) mod bits() of row `r` via
  /// the two-span wrap decomposition. len may equal bits() (full period).
  void set_range_wrap(int r, int start, int len) {
    SALSA_DCHECK(len >= 0 && len <= bits_ && start >= 0 && start < bits_);
    if (start + len <= bits_) {
      set_range(r, start, len);
    } else {
      set_range(r, start, bits_ - start);
      set_range(r, 0, start + len - bits_);
    }
  }

  int popcount_row(int r) const {
#if defined(SALSA_BITPLANE_SCALAR)
    int n = 0;
    for (int b = 0; b < bits_; ++b) n += test(r, b);
    return n;
#else
    const uint64_t* w = row(r);
    int n = 0;
    for (int i = 0; i < stride_; ++i) n += popcount64(w[i]);
    return n;
#endif
  }

  /// True iff row `r` and the stride()-word `mask` share a set bit.
  bool and_any(int r, const uint64_t* mask) const {
#if defined(SALSA_BITPLANE_SCALAR)
    for (int b = 0; b < bits_; ++b)
      if (test(r, b) && ((mask[b >> 6] >> (b & 63)) & 1ull)) return true;
    return false;
#else
    const uint64_t* w = row(r);
    for (int i = 0; i < stride_; ++i)
      if (w[i] & mask[i]) return true;
    return false;
#endif
  }

  /// row(r) |= mask, over stride() words.
  void or_assign(int r, const uint64_t* mask) {
    uint64_t* w = row(r);
#if defined(SALSA_BITPLANE_SCALAR)
    for (int b = 0; b < bits_; ++b)
      if ((mask[b >> 6] >> (b & 63)) & 1ull) set(r, b);
    (void)w;
#else
    for (int i = 0; i < stride_; ++i) w[i] |= mask[i];
#endif
  }

  /// True iff any bit of the linear range [start, start + len) of row `r`
  /// is set — the windowed legality probe of the FU occupancy plane.
  bool any_in_range(int r, int start, int len) const {
    if (len <= 0) return false;
    SALSA_DCHECK(start >= 0 && start + len <= bits_);
#if defined(SALSA_BITPLANE_SCALAR)
    for (int b = start; b < start + len; ++b)
      if (test(r, b)) return true;
    return false;
#else
    const uint64_t* w = row(r);
    const int we = start + len - 1;
    for (int i = start >> 6; i <= we >> 6; ++i)
      if (w[i] & word_mask(i, start, start + len)) return true;
    return false;
#endif
  }

  /// Word-for-word content equality (same shape and bits).
  friend bool operator==(const BitPlane& a, const BitPlane& b) {
    return a.rows_ == b.rows_ && a.bits_ == b.bits_ && a.w_ == b.w_;
  }

 private:
  /// Bits of word `i` covered by the linear range [start, end).
  static uint64_t word_mask(int i, int start, int end) {
    const int lo = start > (i << 6) ? start - (i << 6) : 0;
    const int hi = end < ((i + 1) << 6) ? end - (i << 6) : 64;
    // hi > lo by construction (the caller iterates covered words only);
    // hi - lo == 64 must not shift by 64.
    return (~0ull >> (64 - (hi - lo))) << lo;
  }

  bool fire_mutation() {
    if (mutation_target_ && bitplane_hooks::break_word_update_after > 0 &&
        ++bitplane_hooks::word_update_count ==
            bitplane_hooks::break_word_update_after) {
      bitplane_hooks::break_word_update_after = 0;
      return true;
    }
    return false;
  }

  int rows_ = 0;
  int bits_ = 0;
  int stride_ = 0;
  std::vector<uint64_t> w_;
  bool mutation_target_ = false;  ///< eligible for bitplane_hooks sabotage
};

// ---------------------------------------------------------------------------
// Free word-span kernels over raw rows (all spans `n` words long). The move
// proposers combine an occupancy row with one or two lifetime masks through
// these; the scalar build runs the same per-bit logic bit by bit.

/// (a & b) != 0 over n words.
inline bool words_and_any(const uint64_t* a, const uint64_t* b, int n) {
#if defined(SALSA_BITPLANE_SCALAR)
  for (int i = 0; i < n; ++i)
    for (int bit = 0; bit < 64; ++bit)
      if (((a[i] >> bit) & 1ull) && ((b[i] >> bit) & 1ull)) return true;
  return false;
#else
  for (int i = 0; i < n; ++i)
    if (a[i] & b[i]) return true;
  return false;
#endif
}

/// acc |= row over n words — the accumulate half of the batched
/// register-mask scoring kernel: proposers OR the transposed busy rows of a
/// storage's live steps into one mask, then reduce it with popcount_words /
/// nth_clear_bit (util/bits.h). The speculation pipeline points `acc` into
/// a contiguous per-candidate scratch arena so batch scoring across k
/// candidates streams through one cache-resident block. On AVX2 targets the
/// packed path runs four words per vector op; the scalar-reference build
/// runs the per-bit loop and produces identical words.
inline void words_or_accumulate(uint64_t* acc, const uint64_t* row, int n) {
#if defined(SALSA_BITPLANE_SCALAR)
  for (int i = 0; i < n; ++i)
    for (int bit = 0; bit < 64; ++bit)
      if ((row[i] >> bit) & 1ull) acc[i] |= 1ull << bit;
#elif defined(__AVX2__)
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) acc[i] |= row[i];
#else
  for (int i = 0; i < n; ++i) acc[i] |= row[i];
#endif
}

/// (a & b & ~c) != 0 over n words.
inline bool words_and_andnot_any(const uint64_t* a, const uint64_t* b,
                                 const uint64_t* c, int n) {
#if defined(SALSA_BITPLANE_SCALAR)
  for (int i = 0; i < n; ++i)
    for (int bit = 0; bit < 64; ++bit)
      if (((a[i] >> bit) & 1ull) && ((b[i] >> bit) & 1ull) &&
          !((c[i] >> bit) & 1ull))
        return true;
  return false;
#else
  for (int i = 0; i < n; ++i)
    if (a[i] & b[i] & ~c[i]) return true;
  return false;
#endif
}

/// The k-th (0-based) CLEAR bit among the first `bits` bits of the word
/// span `w` — the select half of the move proposers' free-register pick:
/// count free via popcount of the complement, then descend to the k-th.
/// Padding bits past `bits` may hold anything; they are masked out. The
/// caller guarantees k < (number of clear bits), which the counting draw
/// established.
inline int nth_clear_bit(const uint64_t* w, int bits, int k) {
  for (int i = 0; (i << 6) < bits; ++i) {
    const int span = bits - (i << 6) >= 64 ? 64 : bits - (i << 6);
    const uint64_t tail = span == 64 ? ~0ull : (1ull << span) - 1;
    const uint64_t free_bits = ~w[i] & tail;
    const int n = popcount64(free_bits);
    if (k < n) {
      uint64_t v = free_bits;
      for (int b = 0;; ++b) {
        if (v & 1ull) {
          if (k == 0) return (i << 6) + b;
          --k;
        }
        v >>= 1;
      }
    }
    k -= n;
  }
  SALSA_DCHECK(false);  // k exceeded the clear-bit count
  return -1;
}

/// The k-th (0-based) SET bit among the first `bits` bits of the word span
/// `w` — the select half of candidate-mask picks (e.g. the pass binder's
/// free pass-FU mask): count candidates via popcount_words, then descend
/// to the k-th. The caller guarantees k < (number of set bits).
inline int nth_set_bit(const uint64_t* w, int bits, int k) {
  for (int i = 0; (i << 6) < bits; ++i) {
    const int span = bits - (i << 6) >= 64 ? 64 : bits - (i << 6);
    const uint64_t tail = span == 64 ? ~0ull : (1ull << span) - 1;
    const uint64_t set_bits = w[i] & tail;
    const int n = popcount64(set_bits);
    if (k < n) {
      uint64_t v = set_bits;
      for (int b = 0;; ++b) {
        if (v & 1ull) {
          if (k == 0) return (i << 6) + b;
          --k;
        }
        v >>= 1;
      }
    }
    k -= n;
  }
  SALSA_DCHECK(false);  // k exceeded the set-bit count
  return -1;
}

/// BitWords: a growable flat bitset — the word-wise representation of a
/// move footprint's sink-key and refcount-row sets (core/footprint.h).
/// Unlike BitPlane it has no fixed shape: set() grows the word array to
/// cover the bit, clear_all() keeps the capacity, and intersection is an
/// AND-any over the common word prefix (absent words are zero). Two sets
/// built from the same id universe therefore intersect exactly like their
/// sorted-vector counterparts did.
class BitWords {
 public:
  void clear_all() { std::fill(w_.begin(), w_.end(), 0); }

  void set(int bit) {
    const size_t i = static_cast<size_t>(bit) >> 6;
    if (i >= w_.size()) w_.resize(i + 1, 0);
    w_[i] |= 1ull << (bit & 63);
  }

  bool test(int bit) const {
    const size_t i = static_cast<size_t>(bit) >> 6;
    return i < w_.size() && ((w_[i] >> (bit & 63)) & 1ull);
  }

  bool any() const {
    for (uint64_t w : w_)
      if (w != 0) return true;
    return false;
  }

  size_t words() const { return w_.size(); }
  const uint64_t* data() const { return w_.data(); }

  friend bool bitwords_intersect(const BitWords& a, const BitWords& b) {
    const size_t n = a.w_.size() < b.w_.size() ? a.w_.size() : b.w_.size();
    return words_and_any(a.w_.data(), b.w_.data(), static_cast<int>(n));
  }

 private:
  std::vector<uint64_t> w_;
};

}  // namespace salsa
