// Fenwick (binary indexed) tree over non-negative int counts — the
// prefix-sum index behind the search engine's O(log n) weighted candidate
// selection (core/search_engine.h). The move proposers draw a uniform
// variate over a total candidate count and map it to the owning item
// (storage, live-list position) without walking every item; the counts are
// maintained incrementally as per-item deltas.
//
// Mutations take a journal callback invoked with each tree node *before*
// it is overwritten, so the engine's transaction undo (journal_int) can
// restore the tree by replaying scalar writes — the same discipline every
// other derived count in the engine follows. Callers outside a transaction
// pass a no-op journal.
#pragma once

#include <vector>

#include "util/diagnostics.h"

namespace salsa {

class Fenwick {
 public:
  /// Shapes the tree to `n` items, all counts zero.
  void reset(int n) {
    SALSA_DCHECK(n >= 0);
    n_ = n;
    top_ = 1;
    while (top_ * 2 <= n_) top_ *= 2;
    t_.assign(static_cast<size_t>(n) + 1, 0);
    total_ = 0;
  }

  int size() const { return n_; }
  /// Sum of all counts. O(1) — maintained alongside the nodes.
  int total() const { return total_; }

  /// counts[i] += delta. `journal` receives each node (and the cached
  /// total) before it changes, enabling transactional undo by replay.
  template <typename J>
  void add(int i, int delta, J&& journal) {
    SALSA_DCHECK(i >= 0 && i < n_);
    if (delta == 0) return;
    journal(total_);
    total_ += delta;
    for (int k = i + 1; k <= n_; k += k & -k) {
      int& node = t_[static_cast<size_t>(k)];
      journal(node);
      node += delta;
    }
  }

  /// Sum of counts[0, i).
  int prefix(int i) const {
    SALSA_DCHECK(i >= 0 && i <= n_);
    int s = 0;
    for (int k = i; k > 0; k -= k & -k) s += t_[static_cast<size_t>(k)];
    return s;
  }

  /// The item whose cumulative range contains rank `k` (0 <= k < total()):
  /// the largest i with prefix(i) <= k. Stores k - prefix(i) — the rank
  /// within that item's count — into `rem`. O(log n) bit descend.
  int select(int k, int* rem) const {
    SALSA_DCHECK(k >= 0 && k < total_);
    int pos = 0;
    for (int pw = top_; pw > 0; pw >>= 1) {
      const int nxt = pos + pw;
      if (nxt <= n_ && t_[static_cast<size_t>(nxt)] <= k) {
        pos = nxt;
        k -= t_[static_cast<size_t>(pos)];
      }
    }
    *rem = k;
    return pos;  // prefix(pos) <= original k < prefix(pos + 1)
  }

  /// Node-for-node equality (same shape and counts) — the rebuild
  /// cross-check compares incrementally maintained trees against
  /// from-scratch ones.
  friend bool operator==(const Fenwick& a, const Fenwick& b) {
    return a.n_ == b.n_ && a.total_ == b.total_ && a.t_ == b.t_;
  }

 private:
  std::vector<int> t_;  ///< 1-based Fenwick nodes
  int n_ = 0;
  int top_ = 1;    ///< highest power of two <= n_
  int total_ = 0;  ///< cached sum of all counts
};

}  // namespace salsa
