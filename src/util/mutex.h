// Capability-annotated locking primitives for the SalsaLint wall.
//
// Clang's -Wthread-safety analysis only reasons about lock types that carry
// the capability attribute. libc++ annotates std::mutex behind an opt-in
// macro; libstdc++ (what CI's Linux images link) annotates nothing — so a
// SALSA_GUARDED_BY(std_mutex_member) would be rejected as "argument is not
// a capability" and the analysis would prove nothing. The fix is the one
// Abseil and Chromium use: thin annotated wrappers around the std
// primitives, zero overhead beyond the inline forwarding call.
//
//   Mutex      — std::mutex with SALSA_ACQUIRE/SALSA_RELEASE lock()/unlock()
//   MutexLock  — scoped lock_guard equivalent (SALSA_SCOPED_CAPABILITY)
//   CondVar    — condition variable waiting on a Mutex the caller holds
//                (SALSA_REQUIRES enforces the "hold it before you wait"
//                contract at compile time)
//
// Every mutex-protected member in the repo is expected to be declared as a
// salsa::Mutex + SALSA_GUARDED_BY pair; util/thread_pool.cpp and
// core/speculate.h are the reference users.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace salsa {

class SALSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SALSA_ACQUIRE() { mu_.lock(); }
  void unlock() SALSA_RELEASE() { mu_.unlock(); }
  bool try_lock() SALSA_THREAD_ANNOTATION_ATTRIBUTE__(
      try_acquire_capability(true)) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
class SALSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SALSA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SALSA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over a Mutex. wait() demands the caller already hold
/// the mutex (the analysis rejects a lock-free wait at compile time) and
/// returns with it re-held, exactly like std::condition_variable — the
/// adopt/release pair below just moves the ownership through the
/// std::unique_lock that libstdc++'s wait() insists on.
class CondVar {
 public:
  void wait(Mutex& mu) SALSA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // still locked: ownership goes back to the caller
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace salsa
