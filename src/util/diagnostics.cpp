#include "util/diagnostics.h"

#include <sstream>

namespace salsa {

namespace detail {

void check_failed(const char* expr, const std::string& msg,
                  std::source_location loc) {
  std::ostringstream os;
  os << "SALSA_CHECK failed: (" << expr << ") at " << loc.file_name() << ":"
     << loc.line();
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

void fail(const std::string& msg) { throw Error(msg); }

}  // namespace salsa
