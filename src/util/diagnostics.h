// Diagnostics: checked assertions and error reporting used across the
// library. SALSA_CHECK is always on (allocation legality bugs must never be
// silently ignored, even in release builds); SALSA_DCHECK compiles out in
// NDEBUG builds and guards hot-path invariants.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace salsa {

/// Thrown when a SALSA_CHECK fails or when a user-facing precondition is
/// violated (malformed CDFG, infeasible schedule request, illegal binding).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const std::string& msg,
                               std::source_location loc);
}  // namespace detail

#define SALSA_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::salsa::detail::check_failed(#expr, "",                              \
                                    std::source_location::current());       \
    }                                                                       \
  } while (false)

#define SALSA_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::salsa::detail::check_failed(#expr, (msg),                           \
                                    std::source_location::current());       \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define SALSA_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define SALSA_DCHECK(expr) SALSA_CHECK(expr)
#endif

/// Throws salsa::Error with the given message. Used for user-facing
/// precondition failures where a stack of source locations is not helpful.
[[noreturn]] void fail(const std::string& msg);

}  // namespace salsa
