// Deterministic pseudo-random number generation for the iterative
// improvement search. A thin wrapper over SplitMix64/xoshiro256** so results
// are reproducible across standard libraries (std::mt19937 distributions are
// not portable across implementations).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/diagnostics.h"

namespace salsa {

/// Derives an independent seed for stream `stream` of a seed family rooted
/// at `base` (SplitMix64: golden-gamma increment + finalizer). Used wherever
/// one user-facing seed fans out into per-restart / per-variant / per-probe
/// streams. Unlike the additive schemes it replaced (`seed + r*7919`),
/// nearby bases cannot collide across streams — two derivations coincide
/// only if the bases differ by an exact multiple of the 64-bit golden ratio
/// constant — and the finalizer decorrelates consecutive stream indices.
/// Stream 0 is already mixed: derive_seed(s, 0) != s in general.
uint64_t derive_seed(uint64_t base, uint64_t stream);

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5A15A0CAFEu) { reseed(seed); }

  void reseed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, n). Requires n > 0.
  int uniform(int n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int range(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  int weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(uniform(i + 1))]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace salsa
