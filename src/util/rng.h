// Deterministic pseudo-random number generation for the iterative
// improvement search. A thin wrapper over SplitMix64/xoshiro256** so results
// are reproducible across standard libraries (std::mt19937 distributions are
// not portable across implementations).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/diagnostics.h"

namespace salsa {

namespace rng_detail {
constexpr uint64_t kGolden = 0x9E3779B97f4A7C15u;

inline uint64_t splitmix64_mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9u;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBu;
  return z ^ (z >> 31);
}
}  // namespace rng_detail

/// Derives an independent seed for stream `stream` of a seed family rooted
/// at `base` (SplitMix64: golden-gamma increment + finalizer). Used wherever
/// one user-facing seed fans out into per-restart / per-variant / per-probe
/// streams. Unlike the additive schemes it replaced (`seed + r*7919`),
/// nearby bases cannot collide across streams — two derivations coincide
/// only if the bases differ by an exact multiple of the 64-bit golden ratio
/// constant — and the finalizer decorrelates consecutive stream indices.
/// Stream 0 is already mixed: derive_seed(s, 0) != s in general.
/// Inline (with reseed below): the sequential proposal loop derives and
/// reseeds a fresh stream per move.
inline uint64_t derive_seed(uint64_t base, uint64_t stream) {
  return rng_detail::splitmix64_mix(base + (stream + 1) * rng_detail::kGolden);
}

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5A15A0CAFEu) { reseed(seed); }

  void reseed(uint64_t seed) {
    for (auto& s : s_) {
      seed += rng_detail::kGolden;
      s = rng_detail::splitmix64_mix(seed);
    }
    // Avoid the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  // next()/uniform()/uniform01() are defined here so the move hot path
  // (every proposal draws several times) inlines them; the generator
  // algorithm is part of the reproducibility contract and must not change.

  /// Uniform 64-bit value.
  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  int uniform(int n) {
    SALSA_DCHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t bound = static_cast<uint64_t>(n);
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t r;
    do {
      r = next();
    } while (r >= limit);
    return static_cast<int>(r % bound);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int range(int lo, int hi) {
    SALSA_DCHECK(lo <= hi);
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight. The
  /// left-to-right total and subtraction scan are part of the
  /// reproducibility contract (floating-point order decides ties).
  int weighted(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) {
      SALSA_DCHECK(w >= 0);
      total += w;
    }
    return weighted(weights, total);
  }

  /// weighted() with the left-to-right total already in hand — for hot
  /// callers drawing repeatedly from a fixed weight vector. Passing any
  /// value other than that exact sum changes the draw distribution.
  int weighted(std::span<const double> weights, double total) {
    SALSA_CHECK_MSG(total > 0, "weighted() needs a positive total weight");
    double r = uniform01() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(uniform(i + 1))]);
    }
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace salsa
