// Register-file binding: groups the allocated registers into multi-register
// files with bounded read/write ports — the step that turns a flat register
// set into the register files a real datapath layout uses. Port pressure is
// derived from the binding's data movements: a register read by any number
// of sinks in one step costs one read port (broadcast), every register load
// costs one write port.
//
// Binding-model relevance: value segments concentrate traffic differently
// than whole-value bindings, so the two models can need different file
// counts for the same port discipline (bench_regfile measures this).
#pragma once

#include <string>
#include <vector>

#include "core/binding.h"

namespace salsa {

struct RegFileSpec {
  int max_regs_per_file = 4;
  int read_ports = 2;   ///< simultaneous register reads per file per step
  int write_ports = 1;  ///< simultaneous register writes per file per step
};

struct RegFileAssignment {
  /// file_of[r] — file index of register r (-1 for never-used registers).
  std::vector<int> file_of;
  int num_files = 0;
};

/// Per-register, per-step activity derived from the binding.
struct RegActivity {
  /// reads[r][t] — register r drives at least one sink during step t.
  std::vector<std::vector<bool>> reads;
  /// writes[r][t] — register r latches at the end of step t.
  std::vector<std::vector<bool>> writes;
};

RegActivity register_activity(const Binding& b);

/// Greedily packs registers into files respecting the port discipline.
/// Registers with the heaviest traffic are placed first.
RegFileAssignment bind_register_files(const Binding& b,
                                      const RegFileSpec& spec);

/// Checks an assignment against the spec; returns violations (empty == ok).
std::vector<std::string> verify_register_files(const Binding& b,
                                               const RegFileSpec& spec,
                                               const RegFileAssignment& asg);

/// Lower bound on the number of files: peak simultaneous reads (writes)
/// divided by the per-file port count, and used-register count divided by
/// the file capacity.
int register_file_lower_bound(const Binding& b, const RegFileSpec& spec);

}  // namespace salsa
