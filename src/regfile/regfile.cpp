#include "regfile/regfile.h"

#include <algorithm>

#include "core/cost.h"

namespace salsa {

RegActivity register_activity(const Binding& b) {
  const AllocProblem& prob = b.prob();
  const int L = prob.sched().length();
  const int nreg = prob.num_regs();
  RegActivity act;
  act.reads.assign(static_cast<size_t>(nreg),
                   std::vector<bool>(static_cast<size_t>(L), false));
  act.writes.assign(static_cast<size_t>(nreg),
                    std::vector<bool>(static_cast<size_t>(L), false));
  for (const ConnUse& u : connection_uses(b)) {
    if (u.src.kind == Endpoint::Kind::kRegOut)
      act.reads[static_cast<size_t>(u.src.id)][static_cast<size_t>(u.step)] =
          true;
    if (u.sink.kind == Pin::Kind::kRegIn)
      act.writes[static_cast<size_t>(u.sink.id)][static_cast<size_t>(u.step)] =
          true;
  }
  return act;
}

namespace {

long traffic_of(const RegActivity& act, RegId r) {
  long n = 0;
  for (bool v : act.reads[static_cast<size_t>(r)]) n += v;
  for (bool v : act.writes[static_cast<size_t>(r)]) n += v;
  return n;
}

}  // namespace

RegFileAssignment bind_register_files(const Binding& b,
                                      const RegFileSpec& spec) {
  SALSA_CHECK_MSG(spec.max_regs_per_file >= 1 && spec.read_ports >= 1 &&
                      spec.write_ports >= 1,
                  "degenerate register-file spec");
  const AllocProblem& prob = b.prob();
  const int L = prob.sched().length();
  const int nreg = prob.num_regs();
  const RegActivity act = register_activity(b);

  // Heaviest-traffic registers first; never-used registers get no file.
  std::vector<RegId> order;
  for (RegId r = 0; r < nreg; ++r)
    if (traffic_of(act, r) > 0) order.push_back(r);
  std::sort(order.begin(), order.end(), [&](RegId a, RegId c) {
    const long ta = traffic_of(act, a), tc = traffic_of(act, c);
    return ta != tc ? ta > tc : a < c;
  });

  struct FileState {
    int regs = 0;
    std::vector<int> reads, writes;  // per-step port usage
  };
  std::vector<FileState> files;
  RegFileAssignment asg;
  asg.file_of.assign(static_cast<size_t>(nreg), -1);

  auto fits = [&](const FileState& fs, RegId r) {
    if (fs.regs >= spec.max_regs_per_file) return false;
    for (int t = 0; t < L; ++t) {
      if (act.reads[static_cast<size_t>(r)][static_cast<size_t>(t)] &&
          fs.reads[static_cast<size_t>(t)] + 1 > spec.read_ports)
        return false;
      if (act.writes[static_cast<size_t>(r)][static_cast<size_t>(t)] &&
          fs.writes[static_cast<size_t>(t)] + 1 > spec.write_ports)
        return false;
    }
    return true;
  };

  for (RegId r : order) {
    int chosen = -1;
    for (size_t fi = 0; fi < files.size(); ++fi) {
      if (fits(files[fi], r)) {
        chosen = static_cast<int>(fi);
        break;
      }
    }
    if (chosen < 0) {
      files.emplace_back();
      files.back().reads.assign(static_cast<size_t>(L), 0);
      files.back().writes.assign(static_cast<size_t>(L), 0);
      chosen = static_cast<int>(files.size()) - 1;
    }
    FileState& fs = files[static_cast<size_t>(chosen)];
    ++fs.regs;
    for (int t = 0; t < L; ++t) {
      fs.reads[static_cast<size_t>(t)] +=
          act.reads[static_cast<size_t>(r)][static_cast<size_t>(t)];
      fs.writes[static_cast<size_t>(t)] +=
          act.writes[static_cast<size_t>(r)][static_cast<size_t>(t)];
    }
    asg.file_of[static_cast<size_t>(r)] = chosen;
  }
  asg.num_files = static_cast<int>(files.size());
  return asg;
}

std::vector<std::string> verify_register_files(const Binding& b,
                                               const RegFileSpec& spec,
                                               const RegFileAssignment& asg) {
  std::vector<std::string> bad;
  const AllocProblem& prob = b.prob();
  const int L = prob.sched().length();
  const int nreg = prob.num_regs();
  if (static_cast<int>(asg.file_of.size()) != nreg) {
    bad.push_back("assignment size mismatch");
    return bad;
  }
  const RegActivity act = register_activity(b);
  for (RegId r = 0; r < nreg; ++r) {
    const bool used = traffic_of(act, r) > 0;
    const int f = asg.file_of[static_cast<size_t>(r)];
    if (used && (f < 0 || f >= asg.num_files))
      bad.push_back("used register R" + std::to_string(r) + " has no file");
  }
  for (int f = 0; f < asg.num_files; ++f) {
    int regs = 0;
    std::vector<int> reads(static_cast<size_t>(L), 0);
    std::vector<int> writes(static_cast<size_t>(L), 0);
    for (RegId r = 0; r < nreg; ++r) {
      if (asg.file_of[static_cast<size_t>(r)] != f) continue;
      ++regs;
      for (int t = 0; t < L; ++t) {
        reads[static_cast<size_t>(t)] +=
            act.reads[static_cast<size_t>(r)][static_cast<size_t>(t)];
        writes[static_cast<size_t>(t)] +=
            act.writes[static_cast<size_t>(r)][static_cast<size_t>(t)];
      }
    }
    if (regs > spec.max_regs_per_file)
      bad.push_back("file " + std::to_string(f) + " holds " +
                    std::to_string(regs) + " registers");
    for (int t = 0; t < L; ++t) {
      if (reads[static_cast<size_t>(t)] > spec.read_ports)
        bad.push_back("file " + std::to_string(f) + " needs " +
                      std::to_string(reads[static_cast<size_t>(t)]) +
                      " read ports at step " + std::to_string(t));
      if (writes[static_cast<size_t>(t)] > spec.write_ports)
        bad.push_back("file " + std::to_string(f) + " needs " +
                      std::to_string(writes[static_cast<size_t>(t)]) +
                      " write ports at step " + std::to_string(t));
    }
  }
  return bad;
}

int register_file_lower_bound(const Binding& b, const RegFileSpec& spec) {
  const AllocProblem& prob = b.prob();
  const int L = prob.sched().length();
  const RegActivity act = register_activity(b);
  int used = 0;
  int peak_reads = 0, peak_writes = 0;
  for (int t = 0; t < L; ++t) {
    int reads = 0, writes = 0;
    for (RegId r = 0; r < prob.num_regs(); ++r) {
      reads += act.reads[static_cast<size_t>(r)][static_cast<size_t>(t)];
      writes += act.writes[static_cast<size_t>(r)][static_cast<size_t>(t)];
    }
    peak_reads = std::max(peak_reads, reads);
    peak_writes = std::max(peak_writes, writes);
  }
  for (RegId r = 0; r < prob.num_regs(); ++r) used += traffic_of(act, r) > 0;
  const int by_capacity =
      (used + spec.max_regs_per_file - 1) / spec.max_regs_per_file;
  const int by_reads = (peak_reads + spec.read_ports - 1) / spec.read_ports;
  const int by_writes =
      (peak_writes + spec.write_ports - 1) / spec.write_ports;
  return std::max({by_capacity, by_reads, by_writes});
}

}  // namespace salsa
