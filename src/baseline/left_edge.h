// Classic left-edge register allocation (constructive baseline). Lifetimes
// are sorted by birth and packed register by register; storages whose arcs
// wrap the iteration boundary are pre-assigned one register each (the
// standard cut for cyclic lifetimes). Produces a traditional-model binding
// with the minimum register count for linear lifetimes.
#pragma once

#include "core/binding.h"

namespace salsa {

/// Contiguous register assignment per storage (left-edge with a boundary
/// cut). Throws if the budget is insufficient.
std::vector<RegId> left_edge_assign(const AllocProblem& prob);

/// Full constructive allocation: first-available FU binding + left-edge
/// registers. A fast, deterministic traditional-model starting point.
Binding left_edge_allocation(const AllocProblem& prob);

}  // namespace salsa
