#include "baseline/traditional.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "core/verify.h"
#include "util/rng.h"

namespace salsa {

namespace {

// Exact contiguous placement by backtracking: circular-arc colouring with
// the register budget as the colour count. Storages ordered by decreasing
// lifetime length (long arcs are the most constrained).
std::optional<std::vector<RegId>> backtrack_place(const AllocProblem& prob) {
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();
  const int n = lt.num_storages();
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return lt.storage(a).len > lt.storage(b).len;
  });
  std::vector<RegId> assign(static_cast<size_t>(n), kInvalidId);
  std::vector<std::vector<int>> reg_sto(
      static_cast<size_t>(prob.num_regs()),
      std::vector<int>(static_cast<size_t>(L), -1));
  long budget = 2'000'000;  // node-visit cap; placement problems here are tiny

  auto fits = [&](int sid, RegId r) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      if (reg_sto[static_cast<size_t>(r)]
                 [static_cast<size_t>(s.step_at(seg, L))] != -1)
        return false;
    return true;
  };
  auto mark = [&](int sid, RegId r, int val) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      reg_sto[static_cast<size_t>(r)][static_cast<size_t>(s.step_at(seg, L))] =
          val;
  };

  std::function<bool(int)> place = [&](int k) -> bool {
    if (k == n) return true;
    if (--budget < 0) return false;
    const int sid = order[static_cast<size_t>(k)];
    for (RegId r = 0; r < prob.num_regs(); ++r) {
      if (!fits(sid, r)) continue;
      assign[static_cast<size_t>(sid)] = r;
      mark(sid, r, sid);
      if (place(k + 1)) return true;
      mark(sid, r, -1);
      assign[static_cast<size_t>(sid)] = kInvalidId;
    }
    return false;
  };
  if (!place(0)) return std::nullopt;
  return assign;
}

}  // namespace

Binding traditional_initial(const AllocProblem& prob, uint64_t seed,
                            int retries) {
  for (int attempt = 0; attempt < retries; ++attempt) {
    try {
      InitialOptions opts;
      opts.allow_splits = false;
      opts.seed = seed + static_cast<uint64_t>(attempt) * 31337;
      Binding b = initial_allocation(prob, opts);
      check_legal(b);
      SALSA_CHECK(b.is_traditional());
      return b;
    } catch (const Error&) {
      // greedy order failed; retry with another shuffle
    }
  }
  // Exact placement, then first-available FU binding via the constructive
  // allocator's FU pass (reuse initial_allocation with splits, then rewrite
  // the register side from the exact assignment).
  const auto assign = backtrack_place(prob);
  if (!assign)
    fail("traditional binding model: no contiguous register placement exists "
         "within the budget of " +
         std::to_string(prob.num_regs()) + " registers");
  InitialOptions opts;
  opts.seed = seed;
  Binding b = initial_allocation(prob, opts);
  const Lifetimes& lt = prob.lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    StorageBinding& sb = b.sto(sid);
    const RegId r = (*assign)[static_cast<size_t>(sid)];
    for (size_t seg = 0; seg < sb.cells.size(); ++seg)
      sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    std::fill(sb.read_cell.begin(), sb.read_cell.end(), 0);
  }
  check_legal(b);
  SALSA_CHECK(b.is_traditional());
  return b;
}

AllocationResult allocate_traditional(const AllocProblem& prob,
                                      const TraditionalOptions& opts) {
  std::optional<ImproveResult> best;
  ImproveStats total;
  for (int r = 0; r < opts.restarts; ++r) {
    ImproveParams params = opts.improve;
    params.moves = MoveConfig::traditional();
    params.seed = opts.improve.seed + static_cast<uint64_t>(r) * 104729;
    Binding start = traditional_initial(
        prob, params.seed, opts.placement_retries);
    ImproveResult res = improve(start, params);
    SALSA_CHECK_MSG(res.best.is_traditional(),
                    "restricted move set left the traditional model");
    total += res.stats;
    if (!best || res.cost.total < best->cost.total) best = std::move(res);
  }
  AllocationResult out{std::move(best->best), best->cost, {}, total};
  out.merging = merge_muxes(out.binding);
  return out;
}

}  // namespace salsa
