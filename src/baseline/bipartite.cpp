#include "baseline/bipartite.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/cost.h"
#include "core/initial.h"
#include "core/verify.h"

namespace salsa {

std::vector<int> min_cost_assignment(
    const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) return {};
  const int m = static_cast<int>(cost[0].size());
  SALSA_CHECK_MSG(n <= m, "min_cost_assignment requires rows <= cols");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Potentials-based Hungarian algorithm (1-indexed internals).
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(m) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(m) + 1, 0);  // col -> row
  std::vector<int> way(static_cast<size_t>(m) + 1, 0);
  for (int i = 1; i <= n; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<size_t>(m) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(m) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost[static_cast<size_t>(i0) - 1]
                               [static_cast<size_t>(j) - 1] -
                           u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      if (j1 < 0 || delta == kInf) return {};  // no augmenting path
      for (int j = 0; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> row_to_col(static_cast<size_t>(n), -1);
  for (int j = 1; j <= m; ++j)
    if (match[static_cast<size_t>(j)] > 0)
      row_to_col[static_cast<size_t>(match[static_cast<size_t>(j)]) - 1] =
          j - 1;
  // Reject incomplete assignments and ones that used a forbidden edge.
  for (int i = 0; i < n; ++i) {
    const int c = row_to_col[static_cast<size_t>(i)];
    if (c < 0 ||
        cost[static_cast<size_t>(i)][static_cast<size_t>(c)] >=
            kUnassignable / 2)
      return {};
  }
  return row_to_col;
}

Binding bipartite_allocation(const AllocProblem& prob) {
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();

  // FU side from the constructive allocator; register side rebuilt below.
  Binding b = initial_allocation(prob, InitialOptions{.seed = 1});

  std::vector<std::vector<bool>> busy(
      static_cast<size_t>(prob.num_regs()),
      std::vector<bool>(static_cast<size_t>(L), false));
  std::set<std::pair<uint64_t, uint64_t>> conns;

  auto fits = [&](int sid, RegId r) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      if (busy[static_cast<size_t>(r)][static_cast<size_t>(s.step_at(seg, L))])
        return false;
    return true;
  };
  auto placement_conns = [&](int sid, RegId reg) {
    const Storage& s = lt.storage(sid);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    const Endpoint src =
        s.producer == kInvalidId
            ? Endpoint{Endpoint::Kind::kInPort, g.producer(s.members[0])}
            : Endpoint{Endpoint::Kind::kFuOut, b.op(s.producer).fu};
    out.emplace_back(key_of(Pin{Pin::Kind::kRegIn, reg}), key_of(src));
    for (const StorageRead& r : s.reads) {
      const Node& cn = g.node(r.consumer);
      Pin sink = cn.kind == OpKind::kOutput
                     ? Pin{Pin::Kind::kOutPort, r.consumer}
                     : Pin{r.operand == 0 ? Pin::Kind::kFuIn0
                                          : Pin::Kind::kFuIn1,
                           b.op(r.consumer).fu};
      out.emplace_back(key_of(sink),
                       key_of(Endpoint{Endpoint::Kind::kRegOut, reg}));
    }
    return out;
  };
  auto commit = [&](int sid, RegId r) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      busy[static_cast<size_t>(r)][static_cast<size_t>(s.step_at(seg, L))] =
          true;
    for (const auto& c : placement_conns(sid, r)) conns.insert(c);
    StorageBinding& sb = b.sto(sid);
    for (size_t seg = 0; seg < sb.cells.size(); ++seg)
      sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
    std::fill(sb.read_cell.begin(), sb.read_cell.end(), 0);
  };

  // Steps in order; at step 0, boundary-crossing storages come first (they
  // are the most constrained — this is the usual cut for cyclic lifetimes).
  std::vector<bool> placed(static_cast<size_t>(lt.num_storages()), false);
  for (int t = 0; t < L; ++t) {
    std::vector<int> group;
    for (int sid = 0; sid < lt.num_storages(); ++sid) {
      if (placed[static_cast<size_t>(sid)]) continue;
      const Storage& s = lt.storage(sid);
      const bool due = t == 0 ? lt.seg_at_step(sid, 0) >= 0 : s.birth == t;
      if (due) group.push_back(sid);
    }
    if (group.empty()) continue;
    SALSA_CHECK_MSG(static_cast<int>(group.size()) <= prob.num_regs(),
                    "register demand exceeds the budget");
    std::vector<std::vector<double>> cost(
        group.size(), std::vector<double>(
                          static_cast<size_t>(prob.num_regs()), kUnassignable));
    for (size_t i = 0; i < group.size(); ++i) {
      for (RegId r = 0; r < prob.num_regs(); ++r) {
        if (!fits(group[i], r)) continue;
        int fresh = 0;
        for (const auto& c : placement_conns(group[i], r))
          if (!conns.count(c)) ++fresh;
        cost[i][static_cast<size_t>(r)] = fresh;
      }
    }
    const auto match = min_cost_assignment(cost);
    SALSA_CHECK_MSG(!match.empty(),
                    "bipartite register matching found no assignment at step " +
                        std::to_string(t));
    for (size_t i = 0; i < group.size(); ++i) {
      commit(group[i], match[i]);
      placed[static_cast<size_t>(group[i])] = true;
    }
  }
  check_legal(b);
  return b;
}

}  // namespace salsa
