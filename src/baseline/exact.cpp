#include "baseline/exact.h"

#include <algorithm>

#include "core/verify.h"

namespace salsa {

namespace {

struct Searcher {
  const AllocProblem& prob;
  const ExactOptions& opts;
  const Cdfg& g;
  const Schedule& sched;
  const Lifetimes& lt;

  std::vector<NodeId> ops;
  std::vector<int> storages;

  Binding work;
  std::optional<Binding> best;
  double best_cost = 0;
  long nodes = 0;
  bool aborted = false;

  std::vector<std::vector<bool>> fu_busy;
  std::vector<std::vector<bool>> reg_busy;

  explicit Searcher(const AllocProblem& p, const ExactOptions& o)
      : prob(p),
        opts(o),
        g(p.cdfg()),
        sched(p.sched()),
        lt(p.lifetimes()),
        work(p) {
    ops = g.operations();
    for (int sid = 0; sid < lt.num_storages(); ++sid) storages.push_back(sid);
    fu_busy.assign(static_cast<size_t>(p.fus().size()),
                   std::vector<bool>(static_cast<size_t>(sched.length()), false));
    reg_busy.assign(static_cast<size_t>(p.num_regs()),
                    std::vector<bool>(static_cast<size_t>(sched.length()), false));
  }

  bool fu_fits(NodeId n, FuId f) {
    const int occ = sched.hw().occupancy(g.node(n).kind);
    for (int t = sched.start(n); t < sched.start(n) + occ; ++t)
      if (fu_busy[static_cast<size_t>(f)][static_cast<size_t>(t)]) return false;
    return true;
  }
  void fu_mark(NodeId n, FuId f, bool v) {
    const int occ = sched.hw().occupancy(g.node(n).kind);
    for (int t = sched.start(n); t < sched.start(n) + occ; ++t)
      fu_busy[static_cast<size_t>(f)][static_cast<size_t>(t)] = v;
  }
  bool reg_fits(int sid, RegId r) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      if (reg_busy[static_cast<size_t>(r)]
                  [static_cast<size_t>(s.step_at(seg, sched.length()))])
        return false;
    return true;
  }
  void reg_mark(int sid, RegId r, bool v) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      reg_busy[static_cast<size_t>(r)]
              [static_cast<size_t>(s.step_at(seg, sched.length()))] = v;
  }

  void assign_storage(int sid, RegId r) {
    StorageBinding& sb = work.sto(sid);
    for (size_t seg = 0; seg < sb.cells.size(); ++seg)
      sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
  }

  void leaf() {
    const double cost = evaluate_cost(work).total;
    if (!best || cost < best_cost) {
      best = work;
      best_cost = cost;
    }
  }

  // Registers, canonical first-use order: a storage may use any previously
  // used register or the single next fresh one.
  void place_storage(size_t i, RegId max_used) {
    if (aborted) return;
    if (++nodes > opts.node_limit) {
      aborted = true;
      return;
    }
    if (i == storages.size()) {
      leaf();
      return;
    }
    const int sid = storages[i];
    const RegId limit = std::min<RegId>(prob.num_regs() - 1, max_used + 1);
    for (RegId r = 0; r <= limit; ++r) {
      if (!reg_fits(sid, r)) continue;
      reg_mark(sid, r, true);
      assign_storage(sid, r);
      place_storage(i + 1, std::max(max_used, r));
      reg_mark(sid, r, false);
    }
  }

  // Swap enumeration over commutative ops bound so far happens inline: the
  // swap flag branches right after the op's FU choice.
  void place_op(size_t i, FuId max_alu, FuId max_mul) {
    if (aborted) return;
    if (++nodes > opts.node_limit) {
      aborted = true;
      return;
    }
    if (i == ops.size()) {
      place_storage(0, -1);
      return;
    }
    const NodeId n = ops[i];
    const FuClass cls = fu_class_of(g.node(n).kind);
    const auto pool = prob.fus().of_class(cls);
    const FuId used = cls == FuClass::kAlu ? max_alu : max_mul;
    const int limit =
        std::min(static_cast<int>(pool.size()) - 1, static_cast<int>(used) + 1);
    for (int pi = 0; pi <= limit; ++pi) {
      const FuId f = pool[static_cast<size_t>(pi)];
      if (!fu_fits(n, f)) continue;
      fu_mark(n, f, true);
      work.op(n).fu = f;
      const FuId na = cls == FuClass::kAlu ? std::max<FuId>(max_alu, pi) : max_alu;
      const FuId nm = cls == FuClass::kMul ? std::max<FuId>(max_mul, pi) : max_mul;
      const bool can_swap =
          opts.enumerate_swaps && is_commutative(g.node(n).kind);
      for (int swap = 0; swap <= (can_swap ? 1 : 0); ++swap) {
        work.op(n).swap = swap != 0;
        place_op(i + 1, na, nm);
      }
      work.op(n).swap = false;
      fu_mark(n, f, false);
    }
  }
};

}  // namespace

std::optional<ExactResult> exact_traditional(const AllocProblem& prob,
                                             const ExactOptions& opts) {
  Searcher s(prob, opts);
  // Long storages first: tighter propagation.
  std::sort(s.storages.begin(), s.storages.end(), [&](int a, int b) {
    return prob.lifetimes().storage(a).len > prob.lifetimes().storage(b).len;
  });
  s.place_op(0, -1, -1);
  if (s.aborted || !s.best) return std::nullopt;
  check_legal(*s.best);
  CostBreakdown cost = evaluate_cost(*s.best);
  return ExactResult{std::move(*s.best), cost, s.nodes};
}

}  // namespace salsa
