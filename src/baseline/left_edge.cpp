#include "baseline/left_edge.h"

#include <algorithm>

#include "core/initial.h"
#include "core/verify.h"

namespace salsa {

std::vector<RegId> left_edge_assign(const AllocProblem& prob) {
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();
  const int n = lt.num_storages();
  std::vector<RegId> assign(static_cast<size_t>(n), kInvalidId);
  std::vector<std::vector<bool>> busy(
      static_cast<size_t>(prob.num_regs()),
      std::vector<bool>(static_cast<size_t>(L), false));

  auto fits = [&](int sid, RegId r) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      if (busy[static_cast<size_t>(r)][static_cast<size_t>(s.step_at(seg, L))])
        return false;
    return true;
  };
  auto take = [&](int sid, RegId r) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg)
      busy[static_cast<size_t>(r)][static_cast<size_t>(s.step_at(seg, L))] =
          true;
    assign[static_cast<size_t>(sid)] = r;
  };

  // Cut: wrapping storages (and storages alive at step 0) first, one
  // register each, longest first.
  std::vector<int> wrapping, linear;
  for (int sid = 0; sid < n; ++sid) {
    const Storage& s = lt.storage(sid);
    (s.wraps || lt.seg_at_step(sid, 0) >= 0 ? wrapping : linear).push_back(sid);
  }
  std::sort(wrapping.begin(), wrapping.end(), [&](int a, int b) {
    return lt.storage(a).len > lt.storage(b).len;
  });
  for (int sid : wrapping) {
    RegId r = 0;
    while (r < prob.num_regs() && !fits(sid, r)) ++r;
    if (r == prob.num_regs())
      fail("left-edge: register budget too small for boundary-crossing "
           "lifetimes");
    take(sid, r);
  }

  // Left-edge over the rest: sort by birth, pack registers greedily.
  std::sort(linear.begin(), linear.end(), [&](int a, int b) {
    const Storage& sa = lt.storage(a);
    const Storage& sb = lt.storage(b);
    return sa.birth != sb.birth ? sa.birth < sb.birth : sa.len > sb.len;
  });
  for (RegId r = 0; r < prob.num_regs(); ++r) {
    for (int sid : linear) {
      if (assign[static_cast<size_t>(sid)] != kInvalidId) continue;
      if (fits(sid, r)) take(sid, r);
    }
  }
  for (int sid : linear)
    if (assign[static_cast<size_t>(sid)] == kInvalidId)
      fail("left-edge: register budget too small");
  return assign;
}

Binding left_edge_allocation(const AllocProblem& prob) {
  // FU side: reuse the constructive allocator, then rewrite the register
  // side with the left-edge assignment.
  Binding b = initial_allocation(prob, InitialOptions{.seed = 1});
  const auto assign = left_edge_assign(prob);
  const Lifetimes& lt = prob.lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    StorageBinding& sb = b.sto(sid);
    for (size_t seg = 0; seg < sb.cells.size(); ++seg)
      sb.cells[seg].assign(
          1, Cell{assign[static_cast<size_t>(sid)],
                  seg == 0 ? -1 : 0, kInvalidId});
    std::fill(sb.read_cell.begin(), sb.read_cell.end(), 0);
  }
  check_legal(b);
  return b;
}

}  // namespace salsa
