// Traditional-binding-model allocator (the Section 1 model every prior
// approach in the paper uses): each value stays in a single register for its
// whole lifetime, no copies, no pass-throughs. Implemented on the same
// binding representation and improvement engine with the move set restricted
// to F1/F2/F3/R3/R4, so SALSA-vs-traditional comparisons isolate the binding
// model itself.
#pragma once

#include "core/allocator.h"

namespace salsa {

struct TraditionalOptions {
  ImproveParams improve = [] {
    ImproveParams p;
    p.moves = MoveConfig::traditional();
    return p;
  }();
  int restarts = 1;
  /// Randomised placement retries before falling back to the exact
  /// backtracking placement.
  int placement_retries = 32;
};

/// Places every storage contiguously in one register (greedy with retries,
/// then exact backtracking — cyclic lifetimes can make contiguous placement
/// a genuine circular-arc colouring problem). Throws if no contiguous
/// placement exists within the register budget.
Binding traditional_initial(const AllocProblem& prob, uint64_t seed = 1,
                            int retries = 32);

/// Full traditional allocation: contiguous initial placement + restricted
/// iterative improvement.
AllocationResult allocate_traditional(const AllocProblem& prob,
                                      const TraditionalOptions& opts = {});

}  // namespace salsa
