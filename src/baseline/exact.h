// Exact traditional-model allocation by exhaustive branch-and-bound, for
// tiny problems only. Serves as an optimality oracle in the test suite: on
// graphs small enough to enumerate, the iterative-improvement allocator must
// reach the same cost the exact search proves optimal (within the same
// binding subspace).
//
// Search space: operator-to-FU assignment (occupancy-respecting, with
// first-use canonical ordering of interchangeable FU instances) × contiguous
// storage-to-register assignment (conflict-free, with first-use canonical
// ordering of registers). Operand swaps are enumerated when requested.
#pragma once

#include <optional>

#include "core/binding.h"
#include "core/cost.h"

namespace salsa {

struct ExactOptions {
  long node_limit = 5'000'000;  ///< abandon the search beyond this
  bool enumerate_swaps = false; ///< also branch on commutative operand order
};

struct ExactResult {
  Binding best;
  CostBreakdown cost;
  long nodes_visited = 0;
};

/// Finds a minimum-cost traditional binding, or std::nullopt if the node
/// limit was hit or no feasible contiguous placement exists.
std::optional<ExactResult> exact_traditional(const AllocProblem& prob,
                                             const ExactOptions& opts = {});

}  // namespace salsa
