// Register binding by weighted bipartite matching (the Huang et al., DAC'90
// style the paper cites as an exact approach for the traditional model):
// control steps are processed in order; the values born at each step are
// matched to compatible registers with edge weights equal to the
// interconnect the pairing would add, solved exactly with the Hungarian
// algorithm. Produces a traditional-model binding.
#pragma once

#include <vector>

#include "core/binding.h"

namespace salsa {

/// Exact min-cost assignment (Hungarian algorithm, O(n^2 m)). `cost[r][c]`
/// may be kUnassignable to forbid a pairing; requires rows <= cols. Returns
/// the matched column per row, or an empty vector when no full assignment of
/// all rows exists.
inline constexpr double kUnassignable = 1e18;
std::vector<int> min_cost_assignment(
    const std::vector<std::vector<double>>& cost);

/// Constructive allocation: first-available FU binding + per-step bipartite
/// register matching with interconnect weights.
Binding bipartite_allocation(const AllocProblem& prob);

}  // namespace salsa
