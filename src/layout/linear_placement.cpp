#include "layout/linear_placement.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace salsa {

namespace {

// Module index of an endpoint/pin; -1 for ports and constants.
int module_of(const Binding& b, const Endpoint& e) {
  switch (e.kind) {
    case Endpoint::Kind::kFuOut:
      return e.id;
    case Endpoint::Kind::kRegOut:
      return b.prob().fus().size() + e.id;
    default:
      return -1;
  }
}

int module_of(const Binding& b, const Pin& p) {
  switch (p.kind) {
    case Pin::Kind::kFuIn0:
    case Pin::Kind::kFuIn1:
      return p.id;
    case Pin::Kind::kRegIn:
      return b.prob().fus().size() + p.id;
    default:
      return -1;
  }
}

}  // namespace

std::vector<std::vector<double>> module_affinity(const Binding& b) {
  const int n = b.prob().fus().size() + b.prob().num_regs();
  std::vector<std::vector<double>> w(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0));
  // Distinct connections only: a wire is laid out once however often used.
  std::vector<std::pair<uint64_t, uint64_t>> seen;
  for (const ConnUse& u : connection_uses(b)) {
    if (u.src.kind == Endpoint::Kind::kConstPort) continue;
    const auto key = std::make_pair(key_of(u.src), key_of(u.sink));
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    const int a = module_of(b, u.src);
    const int c = module_of(b, u.sink);
    if (a < 0 || c < 0 || a == c) continue;
    w[static_cast<size_t>(a)][static_cast<size_t>(c)] += 1;
    w[static_cast<size_t>(c)][static_cast<size_t>(a)] += 1;
  }
  return w;
}

double placement_wirelength(const Binding& b, const LinearPlacement& p) {
  const auto w = module_affinity(b);
  const int n = static_cast<int>(w.size());
  double total = 0;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (w[static_cast<size_t>(i)][static_cast<size_t>(j)] > 0)
        total += w[static_cast<size_t>(i)][static_cast<size_t>(j)] *
                 std::abs(p.slot_of[static_cast<size_t>(i)] -
                          p.slot_of[static_cast<size_t>(j)]);
  return total;
}

LinearPlacement place_linear(const Binding& b, uint64_t seed, int passes) {
  const auto w = module_affinity(b);
  const int n = static_cast<int>(w.size());
  LinearPlacement p;
  p.num_fus = b.prob().fus().size();
  p.num_regs = b.prob().num_regs();
  p.slot_of.resize(static_cast<size_t>(n));
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  Rng rng(seed);
  rng.shuffle(order);
  for (int s = 0; s < n; ++s) p.slot_of[static_cast<size_t>(order[static_cast<size_t>(s)])] = s;

  // Evaluate against the cached affinity matrix (placement_wirelength
  // recomputes it and is too slow for the inner loop).
  auto cost = [&] {
    double total = 0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (w[static_cast<size_t>(i)][static_cast<size_t>(j)] > 0)
          total += w[static_cast<size_t>(i)][static_cast<size_t>(j)] *
                   std::abs(p.slot_of[static_cast<size_t>(i)] -
                            p.slot_of[static_cast<size_t>(j)]);
    return total;
  };
  double best = cost();
  for (int pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        std::swap(p.slot_of[static_cast<size_t>(i)],
                  p.slot_of[static_cast<size_t>(j)]);
        const double c = cost();
        if (c < best - 1e-12) {
          best = c;
          improved = true;
        } else {
          std::swap(p.slot_of[static_cast<size_t>(i)],
                    p.slot_of[static_cast<size_t>(j)]);
        }
      }
    }
    if (!improved) break;
  }
  p.wirelength = best;
  return p;
}

}  // namespace salsa
