// Linear (one-dimensional) module placement and wirelength estimation — the
// paper's third "future work" item ("extensions to the binding model should
// be considered which more accurately model the actual layout"). Datapaths
// of this era were laid out as bit-sliced module rows, so a 1-D arrangement
// of FUs and registers with connection-weighted wirelength is the natural
// first-order layout model. The estimator lets the harnesses compare how
// allocation decisions (mux counts vs. connection locality) translate into
// wiring.
#pragma once

#include <vector>

#include "core/cost.h"

namespace salsa {

/// A placed module row. Modules are FUs (ids [0, num_fus)) followed by
/// registers (ids [num_fus, num_fus + num_regs)).
struct LinearPlacement {
  std::vector<int> slot_of;  ///< module -> slot index in the row
  double wirelength = 0;     ///< sum over connections of |slot(a) - slot(b)|
  int num_fus = 0;
  int num_regs = 0;
};

/// Connection weights between modules of a binding (distinct non-constant
/// point-to-point connections; port endpoints are ignored). Symmetric,
/// indexed [module][module].
std::vector<std::vector<double>> module_affinity(const Binding& b);

/// Wirelength of a placement under the binding's connections.
double placement_wirelength(const Binding& b, const LinearPlacement& p);

/// Places modules on a row by pairwise-swap descent from a seeded random
/// order. Deterministic for a given seed.
LinearPlacement place_linear(const Binding& b, uint64_t seed = 1,
                             int passes = 20);

}  // namespace salsa
