// Point-to-point interconnect derivation and the weighted cost function
// (Section 4). Interconnect is derived directly from the FU and register
// binding: every distinct (source → module-input-pin) pair is a connection,
// and an input pin fed by k distinct non-constant sources costs k-1
// equivalent 2-1 multiplexers — the metric reported in Tables 2 and 3.
// Constant operands are free (Section 5).
//
// The same connection enumeration drives the datapath netlist builder and
// the mux-merging post-pass, which additionally need the control step at
// which each connection carries data.
#pragma once

#include <cstdint>
#include <vector>

#include "core/binding.h"

namespace salsa {

/// A data source in the datapath.
struct Endpoint {
  enum class Kind : uint8_t { kFuOut, kRegOut, kInPort, kConstPort };
  Kind kind;
  int id;  ///< FuId, RegId, input-node NodeId, or const-node NodeId

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// A data sink (module input pin) in the datapath.
struct Pin {
  enum class Kind : uint8_t { kFuIn0, kFuIn1, kRegIn, kOutPort };
  Kind kind;
  int id;  ///< FuId, RegId, or output-node NodeId

  friend bool operator==(const Pin&, const Pin&) = default;
};

/// One use of a connection: data flows from src to sink during `step`
/// (for kRegIn sinks the register latches at the end of that step).
struct ConnUse {
  Endpoint src;
  Pin sink;
  int step;
};

/// Dense orderable keys, used to group and deduplicate connections.
uint64_t key_of(const Endpoint& e);
uint64_t key_of(const Pin& p);

/// Enumerates every routed data flow of the binding with the control step it
/// occurs at: operand reads, output samples, producer result latches,
/// environment input loads, and inter-register transfers (direct or via
/// pass-through FUs). The binding must be structurally complete.
std::vector<ConnUse> connection_uses(const Binding& b);

struct CostBreakdown {
  int fus_used = 0;
  int regs_used = 0;
  int connections = 0;  ///< distinct non-constant (src, sink) pairs
  int muxes = 0;        ///< equivalent 2-1 multiplexers before merging
  double total = 0;     ///< weighted sum per the problem's CostWeights
};

/// Evaluates the allocation cost function on a binding.
CostBreakdown evaluate_cost(const Binding& b);

/// Mux count alone (the Tables 2/3 metric), for convenience.
int count_muxes(const Binding& b);

}  // namespace salsa
