// The allocation move set (paper Table 1).
//
//   F1 FU Exchange      — exchange the FU bindings of two operations
//   F2 FU Move          — reassign an operation to another idle FU
//   F3 Operand Reverse  — switch the FU inputs of a commutative operation
//   F4 Bind Pass-Through   — route an inter-register transfer through an
//                            idle pass-capable FU
//   F5 Unbind Pass-Through — revert F4
//   R1 Segment Exchange — exchange the registers of two cells in one step
//   R2 Segment Move     — move one cell to a register idle at its step
//   R3 Value Exchange   — exchange the registers of two whole values
//   R4 Value Move       — put all segments of a value into one idle register
//   R5 Value Split      — create a copy of a value segment (possibly
//                         re-pointing reads at that segment to the copy)
//   R6 Value Merge      — remove a copy cell (reverting splits)
//   R7 Read Retarget    — re-point one read to another existing copy.
//                         (Implementation addition: the paper exploits
//                         copies implicitly; an explicit retarget move lets
//                         the search do so incrementally.)
//
// Each move proposer runs against a SearchEngine transaction: it inspects
// the engine's binding and incrementally maintained occupancy, and — only
// once a feasible instance is certain — mutates the binding through
// touch_op/touch_sto so the engine can undo the move and update its cost
// index by the move's footprint alone. Proposers return false when no
// feasible instance exists (leaving no transaction state behind). All
// moves preserve binding legality: a legal binding stays legal.
#pragma once

#include <array>

#include "core/binding.h"
#include "util/rng.h"

namespace salsa {

class SearchEngine;  // core/search_engine.h

enum class MoveKind : uint8_t {
  kFuExchange,      // F1
  kFuMove,          // F2
  kOperandReverse,  // F3
  kBindPass,        // F4
  kUnbindPass,      // F5
  kSegExchange,     // R1
  kSegMove,         // R2
  kValExchange,     // R3
  kValMove,         // R4
  kValSplit,        // R5
  kValMerge,        // R6
  kReadRetarget,    // R7
};
inline constexpr int kNumMoveKinds = 12;

const char* move_name(MoveKind k);

/// Relative selection weights per move kind; 0 disables a move. The paper
/// weights complex value-level moves lower "to control execution times".
struct MoveConfig {
  std::array<double, kNumMoveKinds> weight{};

  /// Full extended-model move set with the default weighting.
  static MoveConfig salsa_default();
  /// Traditional binding model: values stay whole and contiguous in a single
  /// register — only F1, F2, F3, R3 and R4 are available.
  static MoveConfig traditional();
  /// Extended model without pass-throughs (ablation).
  static MoveConfig no_pass_through();
  /// Extended model without value copies (ablation).
  static MoveConfig no_split();

  MoveKind pick(Rng& rng) const;
  bool enabled(MoveKind k) const {
    return weight[static_cast<size_t>(k)] > 0;
  }

  /// Left-to-right weight total, cached by the first pick() (the identical
  /// summation order keeps every draw bit-identical to the uncached scan).
  /// Weights must not change once picking has started; configs are set up
  /// front and copied into the search drivers, so nothing does.
  mutable double total_weight_ = -1.0;
};

/// Per-move-kind search observability counters (accumulated by the
/// SearchEngine, surfaced through ImproveStats and io/report.cpp).
struct MoveKindStats {
  long attempted = 0;  ///< feasible proposals
  long accepted = 0;   ///< committed proposals
  double delta_sum = 0;           ///< sum of proposed cost deltas
  double accepted_delta_sum = 0;  ///< sum of committed cost deltas
  double mean_delta() const {
    return attempted ? delta_sum / static_cast<double>(attempted) : 0.0;
  }

  MoveKindStats& operator+=(const MoveKindStats& o) {
    attempted += o.attempted;
    accepted += o.accepted;
    delta_sum += o.delta_sum;
    accepted_delta_sum += o.accepted_delta_sum;
    return *this;
  }

  /// Exact comparison (doubles included): used by the parallel runtime
  /// tests to assert bit-identical stats for every thread count.
  friend bool operator==(const MoveKindStats&, const MoveKindStats&) = default;
};

/// Attempts one random move of the given kind on `b`. Returns true if a
/// feasible instance was found and applied. The binding must be legal on
/// entry and remains legal on success or failure (failed attempts leave it
/// untouched).
///
/// Compatibility shim over SearchEngine for one-off callers (tests,
/// demos): it rebuilds engine state per call, so it is O(design) per move.
/// Searches should drive a SearchEngine directly.
bool apply_random_move(Binding& b, MoveKind kind, Rng& rng);

namespace detail {
/// Dispatches one move proposal inside an open SearchEngine transaction.
/// Called by SearchEngine::propose; not for direct use.
bool dispatch_move(SearchEngine& eng, MoveKind kind, Rng& rng);
}  // namespace detail

}  // namespace salsa
