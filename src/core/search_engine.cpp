#include "core/search_engine.h"

#include <algorithm>
#include <ostream>

#include "core/footprint.h"

namespace salsa {

namespace {

// Compact 32-bit endpoint/pin keys for the connection index (the 64-bit
// key_of keys would not fit two to a word). Ids are node/FU/register
// indices — far below 2^28.
uint32_t pack(const Endpoint& e) {
  SALSA_DCHECK(e.id >= 0 && e.id < (1 << 28));
  return (static_cast<uint32_t>(e.kind) << 28) | static_cast<uint32_t>(e.id);
}

uint32_t pack(const Pin& p) {
  SALSA_DCHECK(p.id >= 0 && p.id < (1 << 28));
  return (static_cast<uint32_t>(p.kind) << 28) | static_cast<uint32_t>(p.id);
}

}  // namespace

SearchEngine::SearchEngine(const Binding& start) : b_(start) {
  build_static();
  init_from_statics();
  rebuild();
}

SearchEngine::SearchEngine(const Binding& start, const SearchEngine& other)
    : b_(start), statics_(other.statics_) {
  SALSA_CHECK_MSG(&start.prob() == &other.b_.prob(),
                  "sharing engine statics needs bindings of the same problem");
  init_from_statics();
  rebuild();
}

void SearchEngine::build_static() {
  const AllocProblem& prob = b_.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int S = lt.num_storages();
  EngineStatics st;
  st.charge_consts = prob.weights().constants_cost;
  st.const_gen_base = 2 * S;

  st.op_info.assign(static_cast<size_t>(g.num_nodes()), OpInfo{});
  // Which storages each operation reads (its operand-fetch sinks live in
  // the storages' read generators) and which storage it produces.
  std::vector<int> produced(static_cast<size_t>(g.num_nodes()), -1);
  for (int sid = 0; sid < S; ++sid) {
    const Storage& s = lt.storage(sid);
    if (s.producer != kInvalidId) {
      SALSA_CHECK(produced[static_cast<size_t>(s.producer)] == -1);
      produced[static_cast<size_t>(s.producer)] = sid;
    }
    for (const StorageRead& r : s.reads) {
      if (g.node(r.consumer).kind == OpKind::kOutput) continue;
      auto& gens = st.op_info[static_cast<size_t>(r.consumer)].gens;
      if (gens.empty() || gens.back() != gen_reads(sid))
        gens.push_back(gen_reads(sid));
    }
  }
  for (NodeId n : g.operations()) {
    OpInfo& info = st.op_info[static_cast<size_t>(n)];
    // Dedup read generators (an op may read two operands of one storage,
    // interleaved with other storages in the scan above).
    std::sort(info.gens.begin(), info.gens.end());
    info.gens.erase(std::unique(info.gens.begin(), info.gens.end()),
                    info.gens.end());
    if (produced[static_cast<size_t>(n)] >= 0)
      info.gens.push_back(gen_writes(produced[static_cast<size_t>(n)]));
    for (ValueId v : g.node(n).ins)
      if (g.is_const_value(v)) info.has_const_ins = true;
    if (info.has_const_ins) info.gens.push_back(st.const_gen_base + n);
  }
  st.num_gens = st.const_gen_base + g.num_nodes();
  st.ops = g.operations();
  for (size_t c = 0; c < st.fus_by_class.size(); ++c)
    st.fus_by_class[c] = prob.fus().of_class(static_cast<FuClass>(c));
  st.pass_fus = prob.fus().pass_capable();
  const Schedule& sched = prob.sched();
  st.finishing_at.assign(static_cast<size_t>(sched.length()), {});
  for (NodeId n : st.ops) {
    const int fin = sched.start(n) + sched.hw().delay(g.node(n).kind) - 1;
    st.finishing_at[static_cast<size_t>(fin % sched.length())].push_back(n);
  }
  st.op_class.assign(static_cast<size_t>(g.num_nodes()), FuClass::kAlu);
  st.op_occ.assign(static_cast<size_t>(g.num_nodes()), 0);
  st.node_is_output.assign(static_cast<size_t>(g.num_nodes()), 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    st.node_is_output[static_cast<size_t>(n)] =
        g.node(n).kind == OpKind::kOutput ? 1 : 0;
  for (NodeId n : st.ops) {
    const OpKind kind = g.node(n).kind;
    const FuClass c = fu_class_of(kind);
    st.op_class[static_cast<size_t>(n)] = c;
    st.op_occ[static_cast<size_t>(n)] = sched.hw().occupancy(kind);
    st.ops_by_class[static_cast<size_t>(c)].push_back(n);
    if (is_commutative(kind)) st.commutative_ops.push_back(n);
  }
  for (FuId f : st.pass_fus) {
    // Only single-cycle FU classes can forward combinationally.
    const OpKind probe =
        prob.fus().fu(f).cls == FuClass::kAlu ? OpKind::kAdd : OpKind::kMul;
    if (sched.hw().delay(probe) == 1) st.pass_fus_1cyc.push_back(f);
  }
  st.pass_fus_1cyc_mask.assign(
      (prob.fus().size() + 63) / 64, 0);
  for (FuId f : st.pass_fus_1cyc)
    st.pass_fus_1cyc_mask[static_cast<size_t>(f) >> 6] |=
        uint64_t{1} << (f & 63);
  // Ranks within the class lists, for the per-FU op index.
  st.pos_in_class.assign(static_cast<size_t>(g.num_nodes()), -1);
  for (const auto& class_list : st.ops_by_class)
    for (size_t p = 0; p < class_list.size(); ++p)
      st.pos_in_class[static_cast<size_t>(class_list[p])] =
          static_cast<int>(p);
  // Per-step live lists, built by one pass over each storage's segment
  // steps instead of an O(L x S) seg_at_step probe grid. A storage is live
  // at a step in at most one segment and the outer loop ascends sid, so
  // each step's list comes out in the same sid-ascending order the probe
  // scan produced. The flat (sid, seg) -> position-in-step table is
  // recorded as the lists grow; the per-step cell-count Fenwicks key on it.
  st.sto_seg_off.assign(static_cast<size_t>(S) + 1, 0);
  for (int sid = 0; sid < S; ++sid)
    st.sto_seg_off[static_cast<size_t>(sid) + 1] =
        st.sto_seg_off[static_cast<size_t>(sid)] + lt.storage(sid).len;
  st.pos_in_step.assign(static_cast<size_t>(st.sto_seg_off[static_cast<size_t>(S)]),
                        0);
  st.live_at.assign(static_cast<size_t>(sched.length()), {});
  for (int sid = 0; sid < S; ++sid) {
    const std::vector<int>& steps = lt.steps_of(sid);
    const int off = st.sto_seg_off[static_cast<size_t>(sid)];
    for (size_t seg = 0; seg < steps.size(); ++seg) {
      auto& at = st.live_at[static_cast<size_t>(steps[seg])];
      st.pos_in_step[static_cast<size_t>(off) + seg] =
          static_cast<int>(at.size());
      at.push_back({sid, static_cast<int>(seg)});
    }
  }
  for (int sid = 0; sid < S; ++sid)
    st.total_reads += static_cast<long>(lt.storage(sid).reads.size());
  statics_ = std::make_shared<const EngineStatics>(std::move(st));
}

void SearchEngine::init_from_statics() {
  const Cdfg& g = b_.prob().cdfg();
  const int S = b_.prob().lifetimes().num_storages();
  gen_epoch_.assign(static_cast<size_t>(statics_->num_gens), 0);
  gen_keys_.assign(static_cast<size_t>(statics_->num_gens), {});
  op_epoch_.assign(static_cast<size_t>(g.num_nodes()), 0);
  sto_epoch_.assign(static_cast<size_t>(S), 0);
  sto_save_.assign(static_cast<size_t>(S), StorageBinding{});
  sto_wlo_.assign(static_cast<size_t>(S), 0);
  sto_whi_.assign(static_cast<size_t>(S), -1);
  sto_whi_add_.assign(static_cast<size_t>(S), -1);
  write_seg_keys_.assign(
      static_cast<size_t>(statics_->sto_seg_off[static_cast<size_t>(S)]), 0);
  epoch_ = 0;
  // The audited index tables are the targets of the backward-shift
  // mutation hook (flat_map_hooks; no effect unless a test arms it).
  pair_refs_.mark_mutation_target();
  sink_sources_.mark_mutation_target();
  // Transaction scratch. The journals and touch lists are pre-sized so the
  // steady-state move loop never grows them mid-proposal; the netting
  // tables (txn_delta_ / sink_delta_) are deliberately NOT pre-reserved —
  // drain() walks the whole slot array, so their per-proposal cost is
  // proportional to *capacity*, and a blanket reserve sized for the
  // largest whole-storage touch would make every small transaction scan
  // kilobytes of empty slots (measured ~300ns per proposal at EWF scale).
  // Demand growth converges to the largest transaction footprint within
  // the warmup moves and never rehashes again — the steady-state pin in
  // tests/test_audit_scaling.cpp snapshots index_rehashes() after warmup.
  undo_ints_.reserve(1024);
  undo_words_.reserve(512);
  pending_uses_.reserve(512);
  sink_scratch_.reserve(256);
  touched_ops_.reserve(16);
  touched_sids_.reserve(16);
  removed_gens_.reserve(64);
}

void SearchEngine::rebuild() {
  const AllocProblem& prob = b_.prob();
  occ_ = b_.occupancy();  // also validates legality
  // Re-arm the busy planes as mutation targets (bitplane_hooks): the
  // assignment above copied from a temporary that was never marked.
  occ_.fu_busy.mark_mutation_target();
  occ_.reg_busy.mark_mutation_target();
  pair_refs_.clear();
  sink_sources_.clear();
  fu_refs_.assign(static_cast<size_t>(prob.fus().size()), 0);
  reg_refs_.assign(static_cast<size_t>(prob.num_regs()), 0);
  fu_stage_.assign(fu_refs_.size(), 0);
  reg_stage_.assign(reg_refs_.size(), 0);
  fu_staged_.clear();
  reg_staged_.clear();
  claims_pending_ = false;
  cost_ = CostBreakdown{};

  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int S = lt.num_storages();
  sto_cells_.assign(static_cast<size_t>(S), 0);
  sto_vias_.assign(static_cast<size_t>(S), 0);
  sto_xfers_.assign(static_cast<size_t>(S), 0);
  sto_leaves_.assign(static_cast<size_t>(S), 0);
  sto_fat_reads_.assign(static_cast<size_t>(S), 0);
  total_cells_ = 0;
  fw_cells_.reset(S);
  fw_vias_.reset(S);
  fw_xfers_.reset(S);
  fw_leaves_.reset(S);
  fw_fat_reads_.reset(S);
  seg_size_.assign(
      static_cast<size_t>(statics_->sto_seg_off[static_cast<size_t>(S)]), 0);
  step_cells_.resize(statics_->live_at.size());
  for (size_t t = 0; t < step_cells_.size(); ++t)
    step_cells_[t].reset(static_cast<int>(statics_->live_at[t].size()));
  for (int sid = 0; sid < S; ++sid) refresh_sto_stats(sid);
  // Per-FU op lists: the class lists ascend pos_in_class rank, so each
  // per-FU list comes out sorted without a post-pass.
  fu_ops_.assign(static_cast<size_t>(prob.fus().size()), {});
  for (const auto& class_list : statics_->ops_by_class)
    for (NodeId n : class_list)
      fu_ops_[static_cast<size_t>(b_.op(n).fu)].push_back(
          statics_->pos_in_class[static_cast<size_t>(n)]);
  // Size the connection index once from the design dimensions — at most
  // one pair entry per routed use (a via cell charges two, a hold none, a
  // read one) and one sink entry per pin — so the steady-state move loop
  // never rehashes (index_rehashes() pins this). reserve() is a no-op when
  // the tables already have the capacity (every rebuild after the first).
  pair_refs_.reserve(static_cast<size_t>(
      2 * static_cast<long>(total_cells_) + statics_->total_reads +
      static_cast<long>(statics_->ops.size())));
  sink_sources_.reserve(static_cast<size_t>(2 * prob.fus().size() +
                                            prob.num_regs()) +
                        statics_->ops.size());
  for (NodeId n : g.operations()) {
    const FuId f = b_.op(n).fu;
    if (++fu_refs_[static_cast<size_t>(f)] == 1) ++cost_.fus_used;
  }
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    for (const auto& seg : b_.sto(sid).cells) {
      for (const Cell& c : seg) {
        if (++reg_refs_[static_cast<size_t>(c.reg)] == 1) ++cost_.regs_used;
        if (c.via != kInvalidId &&
            ++fu_refs_[static_cast<size_t>(c.via)] == 1)
          ++cost_.fus_used;
      }
    }
    add_gen(gen_reads(sid),
            gen_keys_[static_cast<size_t>(gen_reads(sid))]);
    add_gen(gen_writes(sid),
            gen_keys_[static_cast<size_t>(gen_writes(sid))]);
  }
  for (NodeId n : g.operations())
    if (statics_->op_info[static_cast<size_t>(n)].has_const_ins)
      add_gen(gen_const(n), gen_keys_[static_cast<size_t>(gen_const(n))]);
  recompute_total();
#ifndef NDEBUG
  // Segment-windowed transactions rely on the binding being normalized
  // whenever no transaction is open (no hold cell carries a via): every
  // transaction normalizes its touched window before the re-adds, and a
  // window covers every segment whose parent regs or vias can change, so
  // the invariant holds inductively from a normalized start.
  for (int sid = 0; sid < S; ++sid) {
    const StorageBinding& sb = b_.sto(sid);
    for (size_t seg = 1; seg < sb.cells.size(); ++seg)
      for (const Cell& c : sb.cells[seg])
        SALSA_DCHECK(c.parent < 0 ||
                     sb.cells[seg - 1][static_cast<size_t>(c.parent)].reg !=
                         c.reg ||
                     c.via == kInvalidId);
  }
#endif
  SALSA_DCHECK(matches_full_eval());
}

void SearchEngine::recompute_total() {
  // Same expression as evaluate_cost, term for term, so totals compare
  // bit-identically.
  const CostWeights& w = b_.prob().weights();
  cost_.total = w.fu * cost_.fus_used + w.reg * cost_.regs_used +
                w.mux * cost_.muxes + w.conn * cost_.connections;
}

void SearchEngine::reset_to(const Binding& nb) {
  SALSA_DCHECK(!in_txn_);
  SALSA_CHECK_MSG(&nb.prob() == &b_.prob(),
                  "SearchEngine::reset_to needs a binding of the same problem");
  b_ = nb;
  rebuild();
}

// ---------------------------------------------------------------------------
// Use enumeration — one generator at a time, mirroring connection_uses().

template <typename Fn>
void SearchEngine::enum_gen_uses(int gen, Fn&& fn) const {
  const AllocProblem& prob = b_.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();

  if (gen >= statics_->const_gen_base) {  // constant operands of one operation
    const NodeId n = gen - statics_->const_gen_base;
    const Node& nd = g.node(n);
    const OpBind& ob = b_.op(n);
    for (size_t k = 0; k < nd.ins.size(); ++k) {
      if (!g.is_const_value(nd.ins[k])) continue;
      const int slot = ob.swap ? 1 - static_cast<int>(k) : static_cast<int>(k);
      fn(Endpoint{Endpoint::Kind::kConstPort, g.producer(nd.ins[k])},
         Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
    }
    return;
  }

  const int sid = gen / 2;
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  if (gen == gen_reads(sid)) {  // operand fetches and output samples
    for (size_t ri = 0; ri < s.reads.size(); ++ri) {
      const StorageRead& r = s.reads[ri];
      // Binding::read_reg(sid, ri), with the storage rows already in hand.
      const RegId rreg =
          sb.cells[static_cast<size_t>(r.seg)]
                  [static_cast<size_t>(sb.read_cell[ri])].reg;
      const Endpoint src{Endpoint::Kind::kRegOut, rreg};
      if (statics_->node_is_output[static_cast<size_t>(r.consumer)]) {
        fn(src, Pin{Pin::Kind::kOutPort, r.consumer});
      } else {
        const OpBind& ob = b_.op(r.consumer);
        const int slot = ob.swap ? 1 - r.operand : r.operand;
        fn(src,
           Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
      }
    }
    return;
  }

  // Cell writes: producer latches, environment loads, transfers.
  for (int seg = 0; seg < s.len; ++seg)
    enum_write_seg_uses(sid, s, sb, seg, fn);
  (void)L;
}

template <typename Fn>
void SearchEngine::enum_write_seg_uses(int sid, const Storage& s,
                                       const StorageBinding& sb, int seg,
                                       Fn&& fn) const {
  const Cdfg& g = b_.prob().cdfg();
  (void)sid;
  for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
    const Pin sink{Pin::Kind::kRegIn, c.reg};
    if (seg == 0) {
      if (s.producer == kInvalidId) {
        fn(Endpoint{Endpoint::Kind::kInPort, g.producer(s.members[0])}, sink);
      } else {
        fn(Endpoint{Endpoint::Kind::kFuOut, b_.op(s.producer).fu}, sink);
      }
      continue;
    }
    const Cell& parent =
        sb.cells[static_cast<size_t>(seg) - 1][static_cast<size_t>(c.parent)];
    if (parent.reg == c.reg) continue;  // hold: no interconnect
    if (c.via == kInvalidId) {
      fn(Endpoint{Endpoint::Kind::kRegOut, parent.reg}, sink);
    } else {
      fn(Endpoint{Endpoint::Kind::kRegOut, parent.reg},
         Pin{Pin::Kind::kFuIn0, c.via});
      fn(Endpoint{Endpoint::Kind::kFuOut, c.via}, sink);
    }
  }
}

void SearchEngine::add_key(uint64_t key) {
  if (pair_refs_.increment(key) == 1) {
    ++cost_.connections;
    if (sink_sources_.increment(static_cast<uint32_t>(key >> 32)) > 1)
      ++cost_.muxes;
  }
}

void SearchEngine::remove_key(uint64_t key) {
  if (pair_refs_.decrement(key) == 0) {
    --cost_.connections;
    if (sink_sources_.decrement(static_cast<uint32_t>(key >> 32)) != 0)
      --cost_.muxes;
  }
}

void SearchEngine::apply_pending_uses() {
  for (const PendingUse& u : pending_uses_) {
    // One add() per key applies the whole net; the count crosses zero at
    // most once, exactly when the pair goes live (created) or dead
    // (erased), and only those transitions move the sink's source count.
    // cost_ is NOT touched here — finish_mutation already advanced it
    // from the same transitions, read-only.
    const int after = pair_refs_.add(u.key, u.net);
    SALSA_DCHECK(u.net > 0 || after != u.net);  // retired pairs existed
    if (after == u.net) {
      sink_sources_.increment(static_cast<uint32_t>(u.key >> 32));
    } else if (after == 0) {
      sink_sources_.decrement(static_cast<uint32_t>(u.key >> 32));
    }
  }
  pending_uses_.clear();
}

void SearchEngine::add_gen(int gen, std::vector<uint64_t>& keys) {
  // Enumerate from the binding into `keys`. Outside a transaction the
  // target is the generator's cache itself (rebuild); inside one it is the
  // removal's stash slot, so the cache keeps the pre-move list — it is the
  // netting's "old" side and rollback's ground truth — and commit installs
  // the fresh list with one capacity-stable copy (see gen_keys_ in the
  // header).
  keys.clear();
  auto emit = [this, &keys](const Endpoint& src, const Pin& sink) {
    if (!statics_->charge_consts && src.kind == Endpoint::Kind::kConstPort)
      return;
    const uint32_t sk = pack(sink);
    if (fp_) fp_->add_sink(sk);
    const uint64_t key = (static_cast<uint64_t>(sk) << 32) | pack(src);
    keys.push_back(key);
    if (!in_txn_) {
      add_key(key);
    } else if (fp_) {
      // Footprint capture records every enumerated use; the sequential
      // path instead nets old-vs-new key lists in finish_mutation, so
      // unchanged uses never reach the scratch table at all.
      txn_delta_.add(key, +1);
    }
  };
  if (is_write_gen(gen)) {
    // Write generators enumerate per segment so the cache's per-segment
    // key counts stay current — the spliced windowed refresh needs them to
    // locate a window inside the flat key list. Count writes are journaled
    // (rollback keeps the old key list — the cache was never overwritten —
    // and the journal replay restores the matching counts).
    const int sid = gen / 2;
    const Storage& s = b_.prob().lifetimes().storage(sid);
    const StorageBinding& sb = b_.sto(sid);
    const int off = statics_->sto_seg_off[static_cast<size_t>(sid)];
    for (int seg = 0; seg < s.len; ++seg) {
      const size_t before = keys.size();
      enum_write_seg_uses(sid, s, sb, seg, emit);
      int& slot = write_seg_keys_[static_cast<size_t>(off + seg)];
      const int now = static_cast<int>(keys.size() - before);
      if (slot != now) {
        journal_int(slot);
        slot = now;
      }
    }
    return;
  }
  enum_gen_uses(gen, emit);
}

void SearchEngine::add_write_gen_spliced(int sid, size_t stash_idx, int wlo,
                                         int whi, int whi_add) {
  // Sequential path only (no footprint, no index side effects): refresh
  // the write generator's cache by copying the pre-move key list's
  // unchanged prefix and suffix around a fresh enumeration of the touched
  // window. Segments outside the window kept their exact binding bytes, so
  // the spliced list equals what a full re-enumeration would produce and
  // the generic netting in finish_mutation sees identical inputs.
  const int gen = gen_writes(sid);
  // The cache still holds the pre-move list (retirement is bookkeeping
  // only); the spliced replacement builds in this removal's stash slot,
  // whose buffer is pooled across transactions — no steady-state
  // allocation.
  const std::vector<uint64_t>& olds = gen_keys_[static_cast<size_t>(gen)];
  std::vector<uint64_t>& keys = gen_stash_[stash_idx];
  keys.clear();
  const Storage& s = b_.prob().lifetimes().storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  const int off = statics_->sto_seg_off[static_cast<size_t>(sid)];
  size_t pre = 0;
  for (int seg = 0; seg < wlo; ++seg)
    pre += static_cast<size_t>(write_seg_keys_[static_cast<size_t>(off + seg)]);
  size_t old_win = 0;
  for (int seg = wlo; seg <= whi; ++seg)
    old_win +=
        static_cast<size_t>(write_seg_keys_[static_cast<size_t>(off + seg)]);
  keys.reserve(olds.size() + 4);
  keys.insert(keys.end(), olds.begin(),
              olds.begin() + static_cast<ptrdiff_t>(pre));
  for (int seg = wlo; seg <= whi_add; ++seg) {
    const size_t before = keys.size();
    enum_write_seg_uses(sid, s, sb, seg,
                        [&keys](const Endpoint& src, const Pin& sink) {
                          keys.push_back(
                              (static_cast<uint64_t>(pack(sink)) << 32) |
                              pack(src));
                        });
    int& slot = write_seg_keys_[static_cast<size_t>(off + seg)];
    const int now = static_cast<int>(keys.size() - before);
    if (slot != now) {
      journal_int(slot);
      slot = now;
    }
  }
  keys.insert(keys.end(),
              olds.begin() + static_cast<ptrdiff_t>(pre + old_win),
              olds.end());
}

bool SearchEngine::add_read_gen_spliced(int sid, size_t stash_idx) {
  // Sequential path only. Read keys depend on exactly three things: the
  // register of the cell the read fetches from (changes only when that
  // cell's segment is inside the mutation window), which cell the read
  // fetches from (read_cell, saved on every touch), and the consumer's
  // operand routing (ob.swap/ob.fu, changes only when the op was touched
  // this epoch). Everything else copies from the cached pre-move list —
  // for the common case of a storage with many reads outside a one-segment
  // window, that's a memcpy-speed pass instead of re-deriving every key.
  const Storage& s = b_.prob().lifetimes().storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  const std::vector<uint64_t>& olds =
      gen_keys_[static_cast<size_t>(gen_reads(sid))];
  if (olds.size() != s.reads.size()) return false;
  // The generator may have been retired through touch_op alone (a consumer
  // changed FU or swap) with the storage itself untouched — then its cells
  // and read_cell are unchanged, the window is empty, and the save buffer
  // may never have been filled for this storage at all.
  const bool sto_touched = sto_epoch_[static_cast<size_t>(sid)] == epoch_;
  const StorageBinding& save = sto_save_[static_cast<size_t>(sid)];
  const int wlo = sto_touched ? sto_wlo_[static_cast<size_t>(sid)] : 0;
  const int whi = sto_touched ? sto_whi_[static_cast<size_t>(sid)] : -1;
  std::vector<uint64_t>& keys = gen_stash_[stash_idx];
  keys.clear();
  keys.reserve(olds.size());
  for (size_t ri = 0; ri < s.reads.size(); ++ri) {
    const StorageRead& r = s.reads[ri];
    if ((r.seg < wlo || r.seg > whi) &&
        (!sto_touched || sb.read_cell[ri] == save.read_cell[ri]) &&
        op_epoch_[static_cast<size_t>(r.consumer)] != epoch_) {
      keys.push_back(olds[ri]);
      continue;
    }
    const RegId rreg = sb.cells[static_cast<size_t>(r.seg)]
                               [static_cast<size_t>(sb.read_cell[ri])].reg;
    const uint32_t src = pack(Endpoint{Endpoint::Kind::kRegOut, rreg});
    uint32_t sk;
    if (statics_->node_is_output[static_cast<size_t>(r.consumer)]) {
      sk = pack(Pin{Pin::Kind::kOutPort, r.consumer});
    } else {
      const OpBind& ob = b_.op(r.consumer);
      const int slot = ob.swap ? 1 - r.operand : r.operand;
      sk = pack(Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
    }
    keys.push_back((static_cast<uint64_t>(sk) << 32) | src);
  }
  return true;
}

void SearchEngine::install_fresh_gen_caches() {
  // Commit-side half of the retire/re-add protocol: each removed
  // generator's fresh enumeration (built in its stash slot) becomes the
  // cache. assign() reuses both buffers' capacity, so steady-state commits
  // never allocate; a rollback skips this and the caches — never
  // overwritten mid-transaction — still hold the pre-move lists.
  for (size_t i = 0; i < removed_gens_.size(); ++i)
    gen_keys_[static_cast<size_t>(removed_gens_[i])].assign(
        gen_stash_[i].begin(), gen_stash_[i].end());
}

void SearchEngine::remove_gen_once(int gen) {
  if (gen_epoch_[static_cast<size_t>(gen)] == epoch_) return;
  gen_epoch_[static_cast<size_t>(gen)] = epoch_;
  // The cached key list is walked by finish_mutation's splice and netting;
  // start its (scattered, per-generator) data line towards the cache now so
  // the refresh doesn't stall on it. The header itself was hinted by the
  // proposer's prefetch_sto_txn where a storage pick preceded the touch.
  {
    const std::vector<uint64_t>& cached = gen_keys_[static_cast<size_t>(gen)];
    if (!cached.empty()) __builtin_prefetch(cached.data());
  }
  const size_t stash = removed_gens_.size();
  removed_gens_.push_back(gen);
  if (stash >= gen_stash_.size()) gen_stash_.emplace_back();
  // Retirement is bookkeeping only: the cache keeps the pre-move key list
  // in place (finish_mutation nets it against the fresh enumeration built
  // in the stash slot, commit installs the replacement, rollback has
  // nothing to undo). Swapping buffers here looked free but alternated
  // each slot's capacity between unrelated generators, so the refill
  // reallocated nearly every transaction.
  if (fp_) {
    // Footprint capture retires the cached keys into the scratch table
    // eagerly; the sequential path nets old-vs-new in finish_mutation.
    for (const uint64_t key : gen_keys_[static_cast<size_t>(gen)]) {
      fp_->add_sink(static_cast<uint32_t>(key >> 32));
      txn_delta_.add(key, -1);
    }
  }
}

// ---------------------------------------------------------------------------
// Resource claims (occupancy slots + fus_used/regs_used refcounts). Every
// scalar write inside a transaction is journaled first, so rollback can
// restore the grid and the refcount rows without re-enumerating the claims.

void SearchEngine::add_op_claims(NodeId n) {
  const Schedule& sched = b_.prob().sched();
  const FuId f = b_.op(n).fu;
  const int oc = statics_->op_occ[static_cast<size_t>(n)];
  const int start = sched.start(n);
  for (int t = start; t < start + oc; ++t) {
    SALSA_DCHECK(occ_.fu_slot(f, t) == Occupancy::kFree);
    journal_int(occ_.fu_slot(f, t));
    journal_word(occ_.fu_busy_t.word(t, f));
  }
  journal_range_words(occ_.fu_busy, f, start, oc);
  occ_.claim_fu_range(f, start, oc, n);
  if (fp_) fp_->fu_events.push_back({f, +1});
  int& refs = fu_refs_[static_cast<size_t>(f)];
  journal_int(refs);
  if (++refs == 1) ++cost_.fus_used;
}

void SearchEngine::remove_op_claims(NodeId n) {
  const Schedule& sched = b_.prob().sched();
  const FuId f = b_.op(n).fu;
  const int oc = statics_->op_occ[static_cast<size_t>(n)];
  const int start = sched.start(n);
#ifndef NDEBUG
  for (int t = start; t < start + oc; ++t)
    SALSA_DCHECK(occ_.fu_slot(f, t) == n);
#endif
  // The sequential (no-footprint) path skips the journal: rollback
  // restores the saved units and re-claims from them (see rollback), so
  // the removal writes need no per-entry record.
  if (fp_) {
    for (int t = start; t < start + oc; ++t) {
      journal_int(occ_.fu_slot(f, t));
      journal_word(occ_.fu_busy_t.word(t, f));
    }
    journal_range_words(occ_.fu_busy, f, start, oc);
    fp_->fu_events.push_back({f, -1});
    journal_int(fu_refs_[static_cast<size_t>(f)]);
  }
  occ_.release_fu_range(f, start, oc);
  if (--fu_refs_[static_cast<size_t>(f)] == 0) --cost_.fus_used;
}

void SearchEngine::add_sto_claims(int sid, int lo, int hi) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const std::vector<int>& steps = lt.steps_of(sid);
  const StorageBinding& sb = b_.sto(sid);
  for (int seg = lo; seg <= hi; ++seg) {
    const int step = steps[static_cast<size_t>(seg)];
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      SALSA_DCHECK(occ_.reg_slot(c.reg, step) == -1 ||
                   occ_.reg_slot(c.reg, step) == sid);
      journal_int(occ_.reg_slot(c.reg, step));
      journal_word(occ_.reg_busy.word(c.reg, step));
      journal_word(occ_.reg_busy_t.word(step, c.reg));
      occ_.claim_reg(c.reg, step, sid);
      if (fp_) fp_->reg_events.push_back({c.reg, +1});
      int& rrefs = reg_refs_[static_cast<size_t>(c.reg)];
      journal_int(rrefs);
      if (++rrefs == 1) ++cost_.regs_used;
      if (seg > 0 && c.via != kInvalidId) {
        const int tstep = steps[static_cast<size_t>(seg - 1)];
        SALSA_DCHECK(occ_.fu_slot(c.via, tstep) == Occupancy::kFree);
        journal_int(occ_.fu_slot(c.via, tstep));
        journal_word(occ_.fu_busy.word(c.via, tstep));
        journal_word(occ_.fu_busy_t.word(tstep, c.via));
        occ_.claim_fu(c.via, tstep, Occupancy::kPassThrough);
        if (fp_) fp_->fu_events.push_back({c.via, +1});
        int& frefs = fu_refs_[static_cast<size_t>(c.via)];
        journal_int(frefs);
        if (++frefs == 1) ++cost_.fus_used;
      }
    }
  }
}

void SearchEngine::remove_sto_claims(int sid, int lo, int hi) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const std::vector<int>& steps = lt.steps_of(sid);
  const StorageBinding& sb = b_.sto(sid);
  for (int seg = lo; seg <= hi; ++seg) {
    const int step = steps[static_cast<size_t>(seg)];
    // Several cells of one segment may share the step slot only across
    // distinct registers (legality), so each clears its own slot.
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      SALSA_DCHECK(occ_.reg_slot(c.reg, step) == sid);
      if (fp_) {
        // Sequential removals go unjournaled — rollback re-claims from
        // the restored units instead (see remove_op_claims).
        journal_int(occ_.reg_slot(c.reg, step));
        journal_word(occ_.reg_busy.word(c.reg, step));
        journal_word(occ_.reg_busy_t.word(step, c.reg));
        fp_->reg_events.push_back({c.reg, -1});
        journal_int(reg_refs_[static_cast<size_t>(c.reg)]);
      }
      occ_.release_reg(c.reg, step);
      if (--reg_refs_[static_cast<size_t>(c.reg)] == 0) --cost_.regs_used;
      if (seg > 0 && c.via != kInvalidId) {
        const int tstep = steps[static_cast<size_t>(seg - 1)];
        SALSA_DCHECK(occ_.fu_slot(c.via, tstep) == Occupancy::kPassThrough);
        if (fp_) {
          journal_int(occ_.fu_slot(c.via, tstep));
          journal_word(occ_.fu_busy.word(c.via, tstep));
          journal_word(occ_.fu_busy_t.word(tstep, c.via));
          fp_->fu_events.push_back({c.via, -1});
          journal_int(fu_refs_[static_cast<size_t>(c.via)]);
        }
        occ_.release_fu(c.via, tstep);
        if (--fu_refs_[static_cast<size_t>(c.via)] == 0) --cost_.fus_used;
      }
    }
  }
}

void SearchEngine::stage_op_claims(NodeId n) {
  const FuId f = b_.op(n).fu;
#ifndef NDEBUG
  const Schedule& sched = b_.prob().sched();
  const int oc = statics_->op_occ[static_cast<size_t>(n)];
  const int start = sched.start(n);
  for (int t = start; t < start + oc; ++t)
    SALSA_DCHECK(occ_.fu_slot(f, t) == Occupancy::kFree);
#endif
  if (fu_stage_[static_cast<size_t>(f)]++ == 0)
    fu_staged_.push_back(static_cast<int>(f));
}

void SearchEngine::normalize_and_stage_sto(int sid, int lo, int hi) {
  // One fused walk per touched storage: Binding::normalize_storage's
  // hold-via clearing and the claim staging visit exactly the same cells,
  // and fusing them halves the pointer-chasing over the per-segment cell
  // vectors. Per cell, normalisation runs first (staging must see the
  // final via), and it only reads the parent's reg — a field staging
  // never writes — so the fusion is order-equivalent to the two passes.
  // Windowed calls pass the touched interval; its first segment's parent
  // row sits outside the window but is unmutated, so reading it from the
  // live binding is exact.
  const Lifetimes& lt = b_.prob().lifetimes();
  [[maybe_unused]] const std::vector<int>& steps = lt.steps_of(sid);
  StorageBinding& sb = b_.sto(sid);
  for (int seg = lo; seg <= hi; ++seg) {
    for (Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      if (seg > 0 && c.parent >= 0 &&
          sb.cells[static_cast<size_t>(seg - 1)][static_cast<size_t>(c.parent)]
                  .reg == c.reg)
        c.via = kInvalidId;
      SALSA_DCHECK(occ_.reg_slot(c.reg, steps[static_cast<size_t>(seg)]) ==
                       -1 ||
                   occ_.reg_slot(c.reg, steps[static_cast<size_t>(seg)]) ==
                       sid);
      if (reg_stage_[static_cast<size_t>(c.reg)]++ == 0)
        reg_staged_.push_back(c.reg);
      if (seg > 0 && c.via != kInvalidId) {
        SALSA_DCHECK(occ_.fu_slot(c.via,
                                  steps[static_cast<size_t>(seg - 1)]) ==
                     Occupancy::kFree);
        if (fu_stage_[static_cast<size_t>(c.via)]++ == 0)
          fu_staged_.push_back(static_cast<int>(c.via));
      }
    }
  }
}

void SearchEngine::settle_staged_claims() {
  // The refcount rows still sit at their post-removal values, so a row is
  // newly used exactly when it is at zero with staged adds pending. This
  // reproduces the eager path's ++refs == 1 accounting: however many adds
  // a row collects, only the zero -> positive transition charges.
  for (const int f : fu_staged_) {
    if (fu_refs_[static_cast<size_t>(f)] == 0) ++cost_.fus_used;
    fu_stage_[static_cast<size_t>(f)] = 0;
  }
  for (const int r : reg_staged_) {
    if (reg_refs_[static_cast<size_t>(r)] == 0) ++cost_.regs_used;
    reg_stage_[static_cast<size_t>(r)] = 0;
  }
  fu_staged_.clear();
  reg_staged_.clear();
}

void SearchEngine::apply_claims_walk() {
  const Schedule& sched = b_.prob().sched();
  const Lifetimes& lt = b_.prob().lifetimes();
  for (const TouchedOp& t : touched_ops_) {
    const FuId f = b_.op(t.n).fu;
    const int oc = statics_->op_occ[static_cast<size_t>(t.n)];
    const int start = sched.start(t.n);
#ifndef NDEBUG
    for (int s = start; s < start + oc; ++s)
      SALSA_DCHECK(occ_.fu_slot(f, s) == Occupancy::kFree);
#endif
    occ_.claim_fu_range(f, start, oc, t.n);
    ++fu_refs_[static_cast<size_t>(f)];
  }
  for (const int sid : touched_sids_) {
    const std::vector<int>& steps = lt.steps_of(sid);
    const StorageBinding& sb = b_.sto(sid);
    // Windowed transactions only released the window's claims, so only the
    // window re-claims (sto_whi_add_ == sto_whi_ unless the
    // --break-segment-window mutation hook shortened the re-add side).
    const int lo = sto_wlo_[static_cast<size_t>(sid)];
    const int hi = sto_whi_add_[static_cast<size_t>(sid)];
    for (int seg = lo; seg <= hi; ++seg) {
      const int step = steps[static_cast<size_t>(seg)];
      for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
        occ_.claim_reg(c.reg, step, sid);
        ++reg_refs_[static_cast<size_t>(c.reg)];
        if (seg > 0 && c.via != kInvalidId) {
          const int tstep = steps[static_cast<size_t>(seg - 1)];
          occ_.claim_fu(c.via, tstep, Occupancy::kPassThrough);
          ++fu_refs_[static_cast<size_t>(c.via)];
        }
      }
    }
  }
}

void SearchEngine::apply_pending_claims() {
  if (!claims_pending_) return;
  claims_pending_ = false;
  apply_claims_walk();
  for (const int sid : touched_sids_) {
    const int wlo = sto_wlo_[static_cast<size_t>(sid)];
    const int whi = sto_whi_[static_cast<size_t>(sid)];
    const int len =
        static_cast<int>(b_.sto(sid).cells.size());
    if (whi < wlo) continue;  // read-only touch: no stat reads read_cell
    if (wlo == 0 && whi == len - 1) {
      refresh_sto_stats(sid);
    } else {
      refresh_sto_stats_window(sid, wlo, whi);
    }
  }
}

void SearchEngine::refresh_sto_stats(int sid) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const StorageBinding& sb = b_.sto(sid);
  int cells = 0, vias = 0, xfers = 0, leaves = 0, fat = 0;
  // Parent-occupancy scratch for the leaf count; sized to the widest
  // segment touched, reused across calls.
  static thread_local std::vector<char> mark;
  for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
    const auto& cs = sb.cells[seg];
    cells += static_cast<int>(cs.size());
    for (const Cell& c : cs) {
      if (c.via != kInvalidId) {
        ++vias;
      } else if (seg > 0 &&
                 sb.cells[seg - 1][static_cast<size_t>(c.parent)].reg !=
                     c.reg) {
        ++xfers;
      }
    }
    // Merge candidates: leaf cells (no child in the next segment) of
    // multi-cell segments — the same predicate, and per-segment order, the
    // merge proposer's scan applies.
    if (cs.size() >= 2) {
      if (seg + 1 < sb.cells.size()) {
        mark.assign(cs.size(), 0);
        for (const Cell& child : sb.cells[seg + 1])
          mark[static_cast<size_t>(child.parent)] = 1;
        for (const char m : mark) leaves += !m;
      } else {
        leaves += static_cast<int>(cs.size());
      }
    }
  }
  // Retarget candidates: reads whose segment offers >= 2 cells.
  const Storage& s = lt.storage(sid);
  for (const StorageRead& r : s.reads)
    fat += sb.cells[static_cast<size_t>(r.seg)].size() >= 2;
  // Fold the recount into the selection Fenwicks as diffs, journaling every
  // touched node (footprint-path transactions refresh mid-transaction and
  // roll back by journal replay; the sequential path refreshes at commit
  // with in_txn_ already false, where journaling is a no-op).
  auto J = [this](int& slot) { journal_int(slot); };
  auto upd = [&](std::vector<int>& row, Fenwick& fw, int now) {
    int& slot = row[static_cast<size_t>(sid)];
    if (slot == now) return;
    journal_int(slot);
    fw.add(sid, now - slot, J);
    slot = now;
  };
  if (sto_cells_[static_cast<size_t>(sid)] != cells) {
    journal_int(total_cells_);
    total_cells_ += cells - sto_cells_[static_cast<size_t>(sid)];
  }
  upd(sto_cells_, fw_cells_, cells);
  upd(sto_vias_, fw_vias_, vias);
  upd(sto_xfers_, fw_xfers_, xfers);
  upd(sto_leaves_, fw_leaves_, leaves);
  upd(sto_fat_reads_, fw_fat_reads_, fat);
  // Per-segment cell counts feed the per-step Fenwicks (segment-exchange
  // selection). Most moves leave every segment's size unchanged, so the
  // common case is a pure read pass.
  const int off = statics_->sto_seg_off[static_cast<size_t>(sid)];
  const std::vector<int>& steps = lt.steps_of(sid);
  for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
    int& slot = seg_size_[static_cast<size_t>(off) + seg];
    const int sz = static_cast<int>(sb.cells[seg].size());
    if (slot != sz) {
      journal_int(slot);
      step_cells_[static_cast<size_t>(steps[seg])].add(
          statics_->pos_in_step[static_cast<size_t>(off) + seg], sz - slot, J);
      slot = sz;
    }
  }
}

void SearchEngine::refresh_sto_stats_window(int sid, int wlo, int whi) {
  // Sequential commit only (in_txn_ already false, journaling a no-op):
  // diff the saved pre-move window against the current binding and fold
  // the difference into the counters. Every predicate is evaluated the
  // exact way the full recount evaluates it, on both sides, so
  // old + (new_window - old_window) equals a from-scratch recount — the
  // out-of-window rows are byte-identical in both states.
  const Lifetimes& lt = b_.prob().lifetimes();
  const StorageBinding& sb = b_.sto(sid);
  const StorageBinding& sv = sto_save_[static_cast<size_t>(sid)];
  const int len = static_cast<int>(sb.cells.size());
  auto old_row = [&](int s) -> const std::vector<Cell>& {
    return (s >= wlo && s <= whi) ? sv.cells[static_cast<size_t>(s)]
                                  : sb.cells[static_cast<size_t>(s)];
  };
  auto new_row = [&](int s) -> const std::vector<Cell>& {
    return sb.cells[static_cast<size_t>(s)];
  };
  // Via/transfer contribution of one segment (parent row from the same
  // binding state).
  auto via_xfer = [](int s, const std::vector<Cell>& row,
                     const std::vector<Cell>* parents, int* vias, int* xfers) {
    for (const Cell& c : row) {
      if (c.via != kInvalidId) {
        ++*vias;
      } else if (s > 0 &&
                 (*parents)[static_cast<size_t>(c.parent)].reg != c.reg) {
        ++*xfers;
      }
    }
  };
  // Merge-candidate (leaf) contribution of one segment: leaf cells of
  // multi-cell segments, children marked from the next segment.
  static thread_local std::vector<char> mark;
  auto leaf_count = [&](const std::vector<Cell>& row,
                        const std::vector<Cell>* children) {
    if (row.size() < 2) return 0;
    if (!children) return static_cast<int>(row.size());
    mark.assign(row.size(), 0);
    for (const Cell& child : *children)
      mark[static_cast<size_t>(child.parent)] = 1;
    int leaves = 0;
    for (const char m : mark) leaves += !m;
    return leaves;
  };
  int d_cells = 0, d_vias = 0, d_xfers = 0, d_leaves = 0, d_fat = 0;
  for (int s = wlo; s <= whi; ++s) {
    d_cells += static_cast<int>(new_row(s).size()) -
               static_cast<int>(old_row(s).size());
    int nv = 0, nx = 0, ov = 0, ox = 0;
    via_xfer(s, new_row(s), s > 0 ? &new_row(s - 1) : nullptr, &nv, &nx);
    via_xfer(s, old_row(s), s > 0 ? &old_row(s - 1) : nullptr, &ov, &ox);
    d_vias += nv - ov;
    d_xfers += nx - ox;
  }
  // A window's first segment changes the child marks of the segment before
  // it, so the leaf diff extends one segment left.
  for (int s = wlo > 0 ? wlo - 1 : 0; s <= whi; ++s) {
    d_leaves +=
        leaf_count(new_row(s), s + 1 < len ? &new_row(s + 1) : nullptr) -
        leaf_count(old_row(s), s + 1 < len ? &old_row(s + 1) : nullptr);
  }
  const Storage& s = lt.storage(sid);
  for (const StorageRead& r : s.reads) {
    if (r.seg < wlo || r.seg > whi) continue;
    d_fat += (new_row(r.seg).size() >= 2) - (old_row(r.seg).size() >= 2);
  }
  auto J = [this](int& slot) { journal_int(slot); };
  auto upd = [&](std::vector<int>& row, Fenwick& fw, int d) {
    if (d == 0) return;
    int& slot = row[static_cast<size_t>(sid)];
    journal_int(slot);
    fw.add(sid, d, J);
    slot += d;
  };
  if (d_cells != 0) {
    journal_int(total_cells_);
    total_cells_ += d_cells;
  }
  upd(sto_cells_, fw_cells_, d_cells);
  upd(sto_vias_, fw_vias_, d_vias);
  upd(sto_xfers_, fw_xfers_, d_xfers);
  upd(sto_leaves_, fw_leaves_, d_leaves);
  upd(sto_fat_reads_, fw_fat_reads_, d_fat);
  const int off = statics_->sto_seg_off[static_cast<size_t>(sid)];
  const std::vector<int>& steps = lt.steps_of(sid);
  for (int seg = wlo; seg <= whi; ++seg) {
    int& slot = seg_size_[static_cast<size_t>(off + seg)];
    const int sz = static_cast<int>(sb.cells[static_cast<size_t>(seg)].size());
    if (slot != sz) {
      journal_int(slot);
      step_cells_[static_cast<size_t>(steps[static_cast<size_t>(seg)])].add(
          statics_->pos_in_step[static_cast<size_t>(off + seg)], sz - slot, J);
      slot = sz;
    }
  }
}

// ---------------------------------------------------------------------------
// Transactions.

OpBind& SearchEngine::touch_op(NodeId n) {
  SALSA_DCHECK(in_txn_);
  if (op_epoch_[static_cast<size_t>(n)] != epoch_) {
    op_epoch_[static_cast<size_t>(n)] = epoch_;
    touched_ops_.push_back({n, b_.op(n)});
    remove_op_claims(n);
    for (int gen : statics_->op_info[static_cast<size_t>(n)].gens)
      remove_gen_once(gen);
  }
  return b_.op(n);
}

StorageBinding& SearchEngine::touch_sto(int sid) {
  return touch_sto(sid, 0,
                   static_cast<int>(b_.sto(sid).cells.size()) - 1);
}

StorageBinding& SearchEngine::touch_sto(int sid, int mlo, int mhi) {
  SALSA_DCHECK(in_txn_);
  StorageBinding& sb = b_.sto(sid);
  const int len = static_cast<int>(sb.cells.size());
  // The claim/normalize/recount window extends one segment past the
  // mutation: a reg change at mhi retargets the transfers into mhi+1 and
  // can clear hold-vias there. Everything further right keeps its exact
  // bytes (no insert/erase outside [mlo, mhi] means stable parent indices
  // and regs), so the windowed walks are exact. Footprint capture and
  // windows-off mode force the whole storage.
  int lo = mlo;
  int hi = mhi + 1 < len ? mhi + 1 : len - 1;
  if (fp_ || !seg_windows_) {
    lo = 0;
    hi = len - 1;
  }
  SALSA_DCHECK(lo >= 0 && lo <= hi && hi < len);
  StorageBinding& save = sto_save_[static_cast<size_t>(sid)];
  if (sto_epoch_[static_cast<size_t>(sid)] != epoch_) {
    sto_epoch_[static_cast<size_t>(sid)] = epoch_;
    touched_sids_.push_back(sid);
    // The per-sid save buffer has this storage's exact segment shape after
    // the first touch ever, so the per-segment copy-assignments refill the
    // existing cell vectors in place — no reallocation on the steady-state
    // path.
    if (save.cells.size() != sb.cells.size()) save.cells.resize(sb.cells.size());
    save.read_cell = sb.read_cell;
    for (int seg = lo; seg <= hi; ++seg)
      save.cells[static_cast<size_t>(seg)] = sb.cells[static_cast<size_t>(seg)];
    remove_sto_claims(sid, lo, hi);
    sto_wlo_[static_cast<size_t>(sid)] = lo;
    sto_whi_[static_cast<size_t>(sid)] = hi;
    sto_whi_add_[static_cast<size_t>(sid)] = hi;
    remove_gen_once(gen_reads(sid));
    remove_gen_once(gen_writes(sid));
    return sb;
  }
  // Re-touch: extend the stored window to the convex hull, saving and
  // releasing only the newly covered segments (a prior read-only touch has
  // the empty window, so everything in [lo, hi] is new).
  int& wlo = sto_wlo_[static_cast<size_t>(sid)];
  int& whi = sto_whi_[static_cast<size_t>(sid)];
  if (whi < wlo) {
    for (int seg = lo; seg <= hi; ++seg)
      save.cells[static_cast<size_t>(seg)] = sb.cells[static_cast<size_t>(seg)];
    remove_sto_claims(sid, lo, hi);
    wlo = lo;
    whi = hi;
  } else {
    if (lo < wlo) {
      for (int seg = lo; seg < wlo; ++seg)
        save.cells[static_cast<size_t>(seg)] =
            sb.cells[static_cast<size_t>(seg)];
      remove_sto_claims(sid, lo, wlo - 1);
      wlo = lo;
    }
    if (hi > whi) {
      for (int seg = whi + 1; seg <= hi; ++seg)
        save.cells[static_cast<size_t>(seg)] =
            sb.cells[static_cast<size_t>(seg)];
      remove_sto_claims(sid, whi + 1, hi);
      whi = hi;
    }
  }
  sto_whi_add_[static_cast<size_t>(sid)] = whi;
  // A read-only first touch left the write generator live; the protocol
  // needs it retired before any cell mutates (dedup makes this a no-op
  // when the first touch already removed it).
  remove_gen_once(gen_writes(sid));
  return sb;
}

StorageBinding& SearchEngine::touch_sto_reads(int sid) {
  SALSA_DCHECK(in_txn_);
  if (fp_ || !seg_windows_) return touch_sto(sid);
  StorageBinding& sb = b_.sto(sid);
  // Any prior touch of this storage already saved read_cell and retired
  // the read generator.
  if (sto_epoch_[static_cast<size_t>(sid)] == epoch_) return sb;
  sto_epoch_[static_cast<size_t>(sid)] = epoch_;
  touched_sids_.push_back(sid);
  StorageBinding& save = sto_save_[static_cast<size_t>(sid)];
  if (save.cells.size() != sb.cells.size()) save.cells.resize(sb.cells.size());
  save.read_cell = sb.read_cell;
  // Empty cell window: no claims move, the write generator's cache stays
  // live (cells are untouched) and the per-storage statistics are
  // read_cell-independent.
  sto_wlo_[static_cast<size_t>(sid)] = 0;
  sto_whi_[static_cast<size_t>(sid)] = -1;
  sto_whi_add_[static_cast<size_t>(sid)] = -1;
  remove_gen_once(gen_reads(sid));
  return sb;
}

void SearchEngine::finish_mutation() {
  if (fp_) {
    // Normalisation may clear `via` fields, so it must precede the re-adds.
    // Footprint capture needs the fu/reg occupancy events pushed as the
    // claims land, so the speculative path re-adds eagerly as before.
    for (int sid : touched_sids_) b_.normalize_storage(sid);
    for (const TouchedOp& t : touched_ops_) add_op_claims(t.n);
    for (int sid : touched_sids_) {
      // Footprint-path touches always cover the whole storage (touch_sto
      // forces the full window under capture).
      add_sto_claims(sid, 0, static_cast<int>(b_.sto(sid).cells.size()) - 1);
      refresh_sto_stats(sid);
    }
  } else {
    // Sequential path: evaluate the re-adds read-only and defer the table
    // writes to commit — a rejected move never touches the occupancy
    // grids, planes or refcount rows on the add side.
    // The per-storage stats (sto_cells_/sto_vias_/sto_xfers_/total_cells_)
    // only feed candidate enumeration in *later* proposals, never the
    // pending delta, so their recount rides along to commit too.
    claims_pending_ = true;
    for (const TouchedOp& t : touched_ops_) stage_op_claims(t.n);
    for (int sid : touched_sids_) {
      const int wlo = sto_wlo_[static_cast<size_t>(sid)];
      const int whi = sto_whi_[static_cast<size_t>(sid)];
      if (whi < wlo) continue;  // read-only touch: no cells changed
      const int len = static_cast<int>(b_.sto(sid).cells.size());
      if (!(wlo == 0 && whi == len - 1)) {
        // Mutation hook (--break-segment-window): the Nth windowed re-add
        // drops its last segment on the add side only. The removals kept
        // the full window, so the occupancy grid, refcounts and key cache
        // drift from the binding — the audit wall must catch it.
        ++seg_window_hooks::windowed_txns;
        if (seg_window_hooks::break_claim_window_after > 0 &&
            seg_window_hooks::windowed_txns >=
                seg_window_hooks::break_claim_window_after) {
          seg_window_hooks::break_claim_window_after = 0;  // one-shot
          sto_whi_add_[static_cast<size_t>(sid)] = whi - 1;
        }
      }
      const int hi = sto_whi_add_[static_cast<size_t>(sid)];
      if (hi >= wlo) normalize_and_stage_sto(sid, wlo, hi);
    }
    settle_staged_claims();
  }
  for (size_t i = 0; i < removed_gens_.size(); ++i) {
    const int gen = removed_gens_[i];
    // Sequential windowed refresh for write generators: splice the cached
    // key list instead of re-enumerating the whole storage. A write
    // generator retired through touch_op (producer FU change) with no
    // storage touch only changes segment 0's keys, so it splices over the
    // [0, 0] window.
    bool spliced = false;
    if (!fp_ && seg_windows_ && is_write_gen(gen)) {
      const int sid = gen / 2;
      const int len = static_cast<int>(b_.sto(sid).cells.size());
      int wlo = len, whi = -1, whi_add = -1;
      if (sto_epoch_[static_cast<size_t>(sid)] == epoch_ &&
          sto_whi_[static_cast<size_t>(sid)] >=
              sto_wlo_[static_cast<size_t>(sid)]) {
        wlo = sto_wlo_[static_cast<size_t>(sid)];
        whi = sto_whi_[static_cast<size_t>(sid)];
        whi_add = sto_whi_add_[static_cast<size_t>(sid)];
      }
      const NodeId prod = b_.prob().lifetimes().storage(sid).producer;
      if (prod != kInvalidId && op_epoch_[static_cast<size_t>(prod)] == epoch_ &&
          wlo > 0) {
        wlo = 0;
        if (whi < 0) {
          whi = 0;
          whi_add = 0;
        }
      }
      if (whi >= wlo && !(wlo == 0 && whi >= len - 1)) {
        add_write_gen_spliced(sid, i, wlo, whi, whi_add);
        spliced = true;
      }
    } else if (!fp_ && seg_windows_ && is_read_gen(gen)) {
      spliced = add_read_gen_spliced(gen / 2, i);
    }
    if (!spliced) add_gen(gen, gen_stash_[i]);
    if (fp_) continue;  // footprint capture already pushed both sides
    // Net the retired key list (still in the cache) against the fresh one
    // (in the stash slot). A touched generator usually re-enumerates
    // almost the same uses in the same deterministic order, so skipping
    // the common prefix and suffix keeps the unchanged bulk out of the
    // scratch table; whatever the middle still shares nets to zero inside
    // it. Per-key refcount arithmetic commutes, so the final nets are what
    // full push-both-sides would give.
    const std::vector<uint64_t>& olds = gen_keys_[static_cast<size_t>(gen)];
    const std::vector<uint64_t>& news = gen_stash_[i];
    size_t lo = 0, oe = olds.size(), ne = news.size();
    const size_t common = oe < ne ? oe : ne;
    while (lo < common && olds[lo] == news[lo]) ++lo;
    while (oe > lo && ne > lo && olds[oe - 1] == news[ne - 1]) {
      --oe;
      --ne;
    }
    for (size_t k = lo; k < oe; ++k) txn_delta_.add(olds[k], -1);
    for (size_t k = lo; k < ne; ++k) txn_delta_.add(news[k], +1);
  }
  // Evaluate the netted use deltas against the shared index READ-ONLY:
  // most retire/re-charge pairs cancelled inside txn_delta_, and the
  // survivors are probed (never written) to advance cost_.connections and
  // accumulate per-sink source-count deltas. The shared tables stay at
  // their pre-transaction contents until commit applies the stashed nets
  // (apply_pending_uses) — so a rejected move costs two table probes per
  // changed pair instead of an apply-then-undo write pair, and rollback
  // has nothing to replay against the index at all. Per-key refcount
  // arithmetic commutes, so the scratch tables' layout-dependent drain
  // order yields the exact counts sequential application would.
  // Each drain runs as two passes: collect the netted entries (issuing a
  // prefetch for the index slot each will probe), then probe. The probe
  // loop's loads then overlap instead of serializing — on large designs
  // pair_refs_ spans megabytes and a cold probe per changed key was the
  // single largest per-transaction memory stall. Entry order, probe
  // results and all count arithmetic are unchanged.
  SALSA_DCHECK(pending_uses_.empty());  // the probe loop assumes it owns all
  // salsa-lint: allow(no-unordered-iteration) per-key refcount arithmetic commutes; any drain order yields the same counts
  txn_delta_.drain([this](uint64_t key, int net) {
    pending_uses_.push_back({key, net});
    pair_refs_.prefetch(key);
  });
  for (const PendingUse& u : pending_uses_) {
    const int* p = pair_refs_.find(u.key);
    const int before = p ? *p : 0;
    const int after = before + u.net;
    if (before == 0) {
      ++cost_.connections;
      sink_delta_.add(static_cast<uint32_t>(u.key >> 32), +1);
    } else if (after == 0) {
      --cost_.connections;
      sink_delta_.add(static_cast<uint32_t>(u.key >> 32), -1);
    }
  }
  sink_scratch_.clear();
  // salsa-lint: allow(no-unordered-iteration) per-sink max(0, n-1) mux folds are independent across sinks; order cannot matter
  sink_delta_.drain([this](uint32_t sink, int d) {
    sink_scratch_.push_back({sink, d});
    sink_sources_.prefetch(sink);
  });
  for (const auto& [sink, d] : sink_scratch_) {
    const int* p = sink_sources_.find(sink);
    const int before = p ? *p : 0;
    const int after = before + d;
    // muxes = sum over sinks of max(0, sources - 1).
    cost_.muxes += (after > 1 ? after - 1 : 0) - (before > 1 ? before - 1 : 0);
  }
  // cost_.total is deliberately left stale here: the decision reads only
  // the component-diff delta computed in propose(), rollback restores the
  // whole struct, and commit recomputes the total once the move is kept —
  // so rejected proposals never pay for the weighted sum.
}

std::optional<double> SearchEngine::propose(MoveKind kind, Rng& rng,
                                            MoveFootprint* fp) {
  SALSA_DCHECK(!in_txn_);
  if (observer_) observer_->on_txn_begin(*this);
  in_txn_ = true;
  ++epoch_;
  cost_before_ = cost_;
  if (fp) {
    fp->clear();
    fp->read_mask = MoveFootprint::read_mask_of(kind);
  }
  fp_ = fp;
  if (!detail::dispatch_move(*this, kind, rng)) {
    SALSA_DCHECK(touched_ops_.empty() && touched_sids_.empty());
    fp_ = nullptr;
    in_txn_ = false;
    if (observer_) observer_->on_txn_abort(*this);
    return std::nullopt;
  }
  finish_mutation();
  if (fp) {
    // Write categories from the touched set. FuOcc is written when an op
    // changed FU or when any touched storage carries a pass-through `via`
    // in its saved or current cells (via claims occupy FU slots; the
    // conservative both-sides check covers moves that add or drop a via).
    if (!touched_ops_.empty()) fp->write_mask |= MoveFootprint::kOps;
    if (!touched_sids_.empty())
      fp->write_mask |= MoveFootprint::kStoCells | MoveFootprint::kRegOcc;
    for (const TouchedOp& t : touched_ops_)
      if (b_.op(t.n).fu != t.saved.fu) fp->write_mask |= MoveFootprint::kFuOcc;
    auto has_via = [](const StorageBinding& sb) {
      for (const auto& seg : sb.cells)
        for (const Cell& c : seg)
          if (c.via != kInvalidId) return true;
      return false;
    };
    for (int sid : touched_sids_) {
      if (has_via(sto_save_[static_cast<size_t>(sid)]) ||
          has_via(b_.sto(sid)))
        fp->write_mask |= MoveFootprint::kFuOcc;
    }
    fp->finalize();
  }
  fp_ = nullptr;
  pending_kind_ = kind;
  // The delta is the weighted sum of the *integer component diffs*, not
  // total_after - total_before: that way it depends only on what the move
  // changed, never on the absolute counts it changed them from, so a
  // speculation scored against a snapshot reproduces the live delta
  // bit-for-bit even under fractional cost weights (the replay cross-check
  // in core/speculate.cpp relies on this).
  {
    const CostWeights& w = b_.prob().weights();
    pending_delta_ = w.fu * (cost_.fus_used - cost_before_.fus_used) +
                     w.reg * (cost_.regs_used - cost_before_.regs_used) +
                     w.mux * (cost_.muxes - cost_before_.muxes) +
                     w.conn * (cost_.connections - cost_before_.connections);
  }
  ++steps_;
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(kind)];
  ++ks.attempted;
  ks.delta_sum += pending_delta_;
  return pending_delta_;
}

void SearchEngine::commit() {
  SALSA_DCHECK(in_txn_);
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(pending_kind_)];
  ++ks.accepted;
  ks.accepted_delta_sum += pending_delta_;
  trace_decision(true);
  const double delta = pending_delta_;
  // The transaction is over either way from here; dropping the flag early
  // keeps the commit-time stats refresh from pushing journal entries that
  // end_txn would only discard.
  in_txn_ = false;
  recompute_total();  // finish_mutation leaves the weighted total stale
  apply_pending_claims();
  apply_pending_uses();
  install_fresh_gen_caches();
  // Re-file committed FU changes in the per-FU op index. Only commit (and
  // the broken-undo test path below) mutate fu_ops_ — proposals read it,
  // and a rolled-back move restores the saved FU, so the index stays
  // consistent with the binding between transactions.
  for (const TouchedOp& t : touched_ops_)
    update_fu_ops(t.n, t.saved.fu, b_.op(t.n).fu);
  end_txn();
#ifndef NDEBUG
  SALSA_CHECK(matches_full_eval());
#endif
  if (observer_) observer_->on_commit(*this, delta);
}

void SearchEngine::rollback() {
  SALSA_DCHECK(in_txn_);
  trace_decision(false);
  if (break_next_undo_) {
    // Test-only fault injection (inject_broken_undo_for_test): keep the
    // mutated binding instead of restoring the saved units. The pending
    // index deltas are applied so every derived structure stays
    // self-consistent with the (wrong) binding — only the auditor's digest
    // comparison can tell that the undo lied.
    break_next_undo_ = false;
    recompute_total();
    apply_pending_claims();
    apply_pending_uses();
    install_fresh_gen_caches();
    for (const TouchedOp& t : touched_ops_)
      update_fu_ops(t.n, t.saved.fu, b_.op(t.n).fu);
    end_txn();
    if (observer_) observer_->on_rollback(*this);
    return;
  }
  // Restore the saved units, then replay the undo journal in reverse: the
  // connection index takes back each charged/retired pair, and every
  // occupancy slot and refcount row returns to its recorded value — no
  // re-enumeration of the touched units' uses or claims.
  for (const TouchedOp& t : touched_ops_) b_.op(t.n) = t.saved;
  // The retired generators' caches still hold the pre-move key lists (the
  // fresh enumerations built in the stash slots and are simply dropped),
  // so they already match the binding being restored.
  for (int sid : touched_sids_) {
    // Swap, not copy: the saved pre-move cells move back wholesale, the
    // save buffer inherits the discarded post-move vectors, and the next
    // touch's copy-assign reuses their (same-shaped) capacity. Only the
    // touch window was saved, so only it swaps (read_cell always rides
    // along — every touch saves it).
    StorageBinding& sb = b_.sto(sid);
    StorageBinding& save = sto_save_[static_cast<size_t>(sid)];
    const int lo = sto_wlo_[static_cast<size_t>(sid)];
    const int hi = sto_whi_[static_cast<size_t>(sid)];
    for (int seg = lo; seg <= hi; ++seg)
      std::swap(sb.cells[static_cast<size_t>(seg)],
                save.cells[static_cast<size_t>(seg)]);
    std::swap(sb.read_cell, save.read_cell);
  }
  // The shared index was never written (the netted deltas are still
  // pending); dropping them in end_txn is the whole index rollback.
  for (size_t i = undo_ints_.size(); i-- > 0;) *undo_ints_[i].p = undo_ints_[i].old;
  // Busy-plane words, same reverse discipline (journaled per word, possibly
  // more than once; the first-journaled pre-transaction value lands last).
  for (size_t i = undo_words_.size(); i-- > 0;)
    *undo_words_[i].p = undo_words_[i].old;
  // Sequential transactions journal nothing (the loops above are empty):
  // the touch-time removals are undone by re-claiming straight from the
  // units just restored — identical writes to what the removals released,
  // and the per-claim ++ brings every refcount row back exactly.
  if (claims_pending_) {
    claims_pending_ = false;
    apply_claims_walk();
  }
  cost_ = cost_before_;
  end_txn();
  if (observer_) observer_->on_rollback(*this);
}

void SearchEngine::end_txn() {
  touched_ops_.clear();
  touched_sids_.clear();
  removed_gens_.clear();
  undo_ints_.clear();
  undo_words_.clear();
  pending_uses_.clear();
  claims_pending_ = false;
  in_txn_ = false;
}

void SearchEngine::trace_decision(bool accepted) {
  if (!trace_) return;
  *trace_ << "{\"step\":" << steps_ << ",\"move\":\""
          << move_name(pending_kind_) << "\",\"delta\":" << pending_delta_
          << ",\"accepted\":" << (accepted ? "true" : "false");
  if (aux_name_) *trace_ << ",\"" << aux_name_ << "\":" << aux_;
  *trace_ << "}\n";
}

void SearchEngine::update_fu_ops(NodeId n, FuId from, FuId to) {
  if (from == to) return;
  const int rank = statics_->pos_in_class[static_cast<size_t>(n)];
  std::vector<int>& src = fu_ops_[static_cast<size_t>(from)];
  src.erase(std::lower_bound(src.begin(), src.end(), rank));
  std::vector<int>& dst = fu_ops_[static_cast<size_t>(to)];
  dst.insert(std::upper_bound(dst.begin(), dst.end(), rank), rank);
}

NodeId SearchEngine::class_op_excluding_fu(FuClass c, FuId f, int idx) const {
  const std::vector<NodeId>& list =
      statics_->ops_by_class[static_cast<size_t>(c)];
  const std::vector<int>& ex = fu_ops_[static_cast<size_t>(f)];
  // Smallest class rank p with (p + 1) - |ex <= p| == idx + 1. The count
  // of non-excluded ranks in [0, p] is monotone and steps by one exactly
  // at non-excluded positions, so the binary-search answer is itself not
  // excluded — it is the op a filtering scan would have listed at `idx`.
  int lo = idx, hi = idx + static_cast<int>(ex.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const int excluded = static_cast<int>(
        std::upper_bound(ex.begin(), ex.end(), mid) - ex.begin());
    if (mid + 1 - excluded >= idx + 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return list[static_cast<size_t>(lo)];
}

bool SearchEngine::matches_full_eval() const {
  const CostBreakdown full = evaluate_cost(b_);
  // Mid-transaction the weighted total is deliberately stale (finish_mutation
  // skips it; commit/rollback restore it), so only the integer components are
  // comparable there. Outside a transaction the total check also covers the
  // commit-time recompute.
  return full.fus_used == cost_.fus_used &&
         full.regs_used == cost_.regs_used &&
         full.connections == cost_.connections && full.muxes == cost_.muxes &&
         (in_txn_ || full.total == cost_.total);
}

bool SearchEngine::index_matches_rebuild(std::string* why) const {
  SALSA_DCHECK(!in_txn_);
  const SearchEngine fresh(b_, *this);
  auto diverged = [&](const std::string& what) {
    if (why) {
      if (!why->empty()) *why += "; ";
      *why += what;
    }
    return false;
  };
  bool ok = true;
  if (!(pair_refs_ == fresh.pair_refs_))
    ok = diverged("connection pair refcounts differ from a rebuild");
  if (!(sink_sources_ == fresh.sink_sources_))
    ok = diverged("per-sink distinct-source counts differ from a rebuild");
  if (fu_refs_ != fresh.fu_refs_)
    ok = diverged("FU use refcounts differ from a rebuild");
  if (reg_refs_ != fresh.reg_refs_)
    ok = diverged("register use refcounts differ from a rebuild");
  if (occ_.fu_user != fresh.occ_.fu_user || occ_.reg_sto != fresh.occ_.reg_sto)
    ok = diverged("occupancy grid differs from a rebuild");
  if (!(occ_.fu_busy == fresh.occ_.fu_busy) ||
      !(occ_.reg_busy == fresh.occ_.reg_busy) ||
      !(occ_.reg_busy_t == fresh.occ_.reg_busy_t) ||
      !(occ_.fu_busy_t == fresh.occ_.fu_busy_t))
    ok = diverged("occupancy bitplanes differ from a rebuild");
  if (sto_cells_ != fresh.sto_cells_ || sto_vias_ != fresh.sto_vias_ ||
      sto_xfers_ != fresh.sto_xfers_ || sto_leaves_ != fresh.sto_leaves_ ||
      sto_fat_reads_ != fresh.sto_fat_reads_ ||
      total_cells_ != fresh.total_cells_)
    ok = diverged("per-storage candidate statistics differ from a rebuild");
  if (!(fw_cells_ == fresh.fw_cells_) || !(fw_vias_ == fresh.fw_vias_) ||
      !(fw_xfers_ == fresh.fw_xfers_) || !(fw_leaves_ == fresh.fw_leaves_) ||
      !(fw_fat_reads_ == fresh.fw_fat_reads_))
    ok = diverged("candidate selection Fenwicks differ from a rebuild");
  if (seg_size_ != fresh.seg_size_ || step_cells_ != fresh.step_cells_)
    ok = diverged("per-step cell-count index differs from a rebuild");
  if (fu_ops_ != fresh.fu_ops_)
    ok = diverged("per-FU op lists differ from a rebuild");
  std::string plane_why;
  if (!occ_.planes_match_grids(&plane_why))
    ok = diverged("occupancy bitplanes diverged from the scalar grids: " +
                  plane_why);
  if (cost_.fus_used != fresh.cost_.fus_used ||
      cost_.regs_used != fresh.cost_.regs_used ||
      cost_.connections != fresh.cost_.connections ||
      cost_.muxes != fresh.cost_.muxes || cost_.total != fresh.cost_.total)
    ok = diverged("cost breakdown differs from a rebuild");
  return ok;
}

}  // namespace salsa
