#include "core/search_engine.h"

#include <algorithm>
#include <ostream>

#include "core/footprint.h"

namespace salsa {

namespace {

// Compact 32-bit endpoint/pin keys for the connection index (the 64-bit
// key_of keys would not fit two to a word). Ids are node/FU/register
// indices — far below 2^28.
uint32_t pack(const Endpoint& e) {
  SALSA_DCHECK(e.id >= 0 && e.id < (1 << 28));
  return (static_cast<uint32_t>(e.kind) << 28) | static_cast<uint32_t>(e.id);
}

uint32_t pack(const Pin& p) {
  SALSA_DCHECK(p.id >= 0 && p.id < (1 << 28));
  return (static_cast<uint32_t>(p.kind) << 28) | static_cast<uint32_t>(p.id);
}

}  // namespace

SearchEngine::SearchEngine(const Binding& start) : b_(start) {
  build_static();
  rebuild();
}

void SearchEngine::build_static() {
  const AllocProblem& prob = b_.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int S = lt.num_storages();
  charge_consts_ = prob.weights().constants_cost;
  const_gen_base_ = 2 * S;

  op_info_.assign(static_cast<size_t>(g.num_nodes()), OpInfo{});
  // Which storages each operation reads (its operand-fetch sinks live in
  // the storages' read generators) and which storage it produces.
  std::vector<int> produced(static_cast<size_t>(g.num_nodes()), -1);
  for (int sid = 0; sid < S; ++sid) {
    const Storage& s = lt.storage(sid);
    if (s.producer != kInvalidId) {
      SALSA_CHECK(produced[static_cast<size_t>(s.producer)] == -1);
      produced[static_cast<size_t>(s.producer)] = sid;
    }
    for (const StorageRead& r : s.reads) {
      if (g.node(r.consumer).kind == OpKind::kOutput) continue;
      auto& gens = op_info_[static_cast<size_t>(r.consumer)].gens;
      if (gens.empty() || gens.back() != gen_reads(sid))
        gens.push_back(gen_reads(sid));
    }
  }
  for (NodeId n : g.operations()) {
    OpInfo& info = op_info_[static_cast<size_t>(n)];
    // Dedup read generators (an op may read two operands of one storage,
    // interleaved with other storages in the scan above).
    std::sort(info.gens.begin(), info.gens.end());
    info.gens.erase(std::unique(info.gens.begin(), info.gens.end()),
                    info.gens.end());
    if (produced[static_cast<size_t>(n)] >= 0)
      info.gens.push_back(gen_writes(produced[static_cast<size_t>(n)]));
    for (ValueId v : g.node(n).ins)
      if (g.is_const_value(v)) info.has_const_ins = true;
    if (info.has_const_ins) info.gens.push_back(gen_const(n));
  }

  gen_epoch_.assign(static_cast<size_t>(const_gen_base_ + g.num_nodes()), 0);
  op_epoch_.assign(static_cast<size_t>(g.num_nodes()), 0);
  sto_epoch_.assign(static_cast<size_t>(S), 0);
  epoch_ = 0;
}

void SearchEngine::rebuild() {
  const AllocProblem& prob = b_.prob();
  occ_ = b_.occupancy();  // also validates legality
  pair_refs_.clear();
  sink_sources_.clear();
  fu_refs_.assign(static_cast<size_t>(prob.fus().size()), 0);
  reg_refs_.assign(static_cast<size_t>(prob.num_regs()), 0);
  cost_ = CostBreakdown{};

  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  for (NodeId n : g.operations()) {
    const FuId f = b_.op(n).fu;
    if (++fu_refs_[static_cast<size_t>(f)] == 1) ++cost_.fus_used;
  }
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    for (const auto& seg : b_.sto(sid).cells) {
      for (const Cell& c : seg) {
        if (++reg_refs_[static_cast<size_t>(c.reg)] == 1) ++cost_.regs_used;
        if (c.via != kInvalidId &&
            ++fu_refs_[static_cast<size_t>(c.via)] == 1)
          ++cost_.fus_used;
      }
    }
    add_gen(gen_reads(sid));
    add_gen(gen_writes(sid));
  }
  for (NodeId n : g.operations())
    if (op_info_[static_cast<size_t>(n)].has_const_ins) add_gen(gen_const(n));
  recompute_total();
  SALSA_DCHECK(matches_full_eval());
}

void SearchEngine::recompute_total() {
  // Same expression as evaluate_cost, term for term, so totals compare
  // bit-identically.
  const CostWeights& w = b_.prob().weights();
  cost_.total = w.fu * cost_.fus_used + w.reg * cost_.regs_used +
                w.mux * cost_.muxes + w.conn * cost_.connections;
}

void SearchEngine::reset_to(const Binding& nb) {
  SALSA_DCHECK(!in_txn_);
  SALSA_CHECK_MSG(&nb.prob() == &b_.prob(),
                  "SearchEngine::reset_to needs a binding of the same problem");
  b_ = nb;
  rebuild();
}

// ---------------------------------------------------------------------------
// Use enumeration — one generator at a time, mirroring connection_uses().

template <typename Fn>
void SearchEngine::enum_gen_uses(int gen, Fn&& fn) const {
  const AllocProblem& prob = b_.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();

  if (gen >= const_gen_base_) {  // constant operands of one operation
    const NodeId n = gen - const_gen_base_;
    const Node& nd = g.node(n);
    const OpBind& ob = b_.op(n);
    for (size_t k = 0; k < nd.ins.size(); ++k) {
      if (!g.is_const_value(nd.ins[k])) continue;
      const int slot = ob.swap ? 1 - static_cast<int>(k) : static_cast<int>(k);
      fn(Endpoint{Endpoint::Kind::kConstPort, g.producer(nd.ins[k])},
         Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
    }
    return;
  }

  const int sid = gen / 2;
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  if (gen == gen_reads(sid)) {  // operand fetches and output samples
    for (size_t ri = 0; ri < s.reads.size(); ++ri) {
      const StorageRead& r = s.reads[ri];
      const Endpoint src{Endpoint::Kind::kRegOut,
                         b_.read_reg(sid, static_cast<int>(ri))};
      const Node& cn = g.node(r.consumer);
      if (cn.kind == OpKind::kOutput) {
        fn(src, Pin{Pin::Kind::kOutPort, r.consumer});
      } else {
        const OpBind& ob = b_.op(r.consumer);
        const int slot = ob.swap ? 1 - r.operand : r.operand;
        fn(src,
           Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
      }
    }
    return;
  }

  // Cell writes: producer latches, environment loads, transfers.
  for (int seg = 0; seg < s.len; ++seg) {
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      const Pin sink{Pin::Kind::kRegIn, c.reg};
      if (seg == 0) {
        if (s.producer == kInvalidId) {
          fn(Endpoint{Endpoint::Kind::kInPort, g.producer(s.members[0])},
             sink);
        } else {
          fn(Endpoint{Endpoint::Kind::kFuOut, b_.op(s.producer).fu}, sink);
        }
        continue;
      }
      const Cell& parent =
          sb.cells[static_cast<size_t>(seg) - 1][static_cast<size_t>(c.parent)];
      if (parent.reg == c.reg) continue;  // hold: no interconnect
      if (c.via == kInvalidId) {
        fn(Endpoint{Endpoint::Kind::kRegOut, parent.reg}, sink);
      } else {
        fn(Endpoint{Endpoint::Kind::kRegOut, parent.reg},
           Pin{Pin::Kind::kFuIn0, c.via});
        fn(Endpoint{Endpoint::Kind::kFuOut, c.via}, sink);
      }
    }
  }
  (void)L;
}

void SearchEngine::add_use(const Endpoint& src, const Pin& sink) {
  if (!charge_consts_ && src.kind == Endpoint::Kind::kConstPort) return;
  const uint32_t sk = pack(sink);
  if (fp_) fp_->sinks.push_back(sk);
  const uint64_t key = (static_cast<uint64_t>(sk) << 32) | pack(src);
  if (++pair_refs_[key] == 1) {
    ++cost_.connections;
    if (++sink_sources_[sk] > 1) ++cost_.muxes;
  }
}

void SearchEngine::remove_use(const Endpoint& src, const Pin& sink) {
  if (!charge_consts_ && src.kind == Endpoint::Kind::kConstPort) return;
  const uint32_t sk = pack(sink);
  if (fp_) fp_->sinks.push_back(sk);
  const uint64_t key = (static_cast<uint64_t>(sk) << 32) | pack(src);
  auto it = pair_refs_.find(key);
  SALSA_DCHECK(it != pair_refs_.end() && it->second > 0);
  if (--it->second == 0) {
    pair_refs_.erase(it);
    --cost_.connections;
    auto st = sink_sources_.find(sk);
    SALSA_DCHECK(st != sink_sources_.end() && st->second > 0);
    if (--st->second == 0)
      sink_sources_.erase(st);
    else
      --cost_.muxes;
  }
}

void SearchEngine::add_gen(int gen) {
  enum_gen_uses(gen,
                [this](const Endpoint& s, const Pin& p) { add_use(s, p); });
}

void SearchEngine::remove_gen(int gen) {
  enum_gen_uses(gen,
                [this](const Endpoint& s, const Pin& p) { remove_use(s, p); });
}

void SearchEngine::remove_gen_once(int gen) {
  if (gen_epoch_[static_cast<size_t>(gen)] == epoch_) return;
  gen_epoch_[static_cast<size_t>(gen)] = epoch_;
  removed_gens_.push_back(gen);
  remove_gen(gen);
}

// ---------------------------------------------------------------------------
// Resource claims (occupancy slots + fus_used/regs_used refcounts).

void SearchEngine::add_op_claims(NodeId n) {
  const AllocProblem& prob = b_.prob();
  const Schedule& sched = prob.sched();
  const FuId f = b_.op(n).fu;
  const int oc = sched.hw().occupancy(prob.cdfg().node(n).kind);
  for (int t = sched.start(n); t < sched.start(n) + oc; ++t) {
    int& slot = occ_.fu_user[static_cast<size_t>(f)][static_cast<size_t>(t)];
    SALSA_DCHECK(slot == Occupancy::kFree);
    slot = n;
  }
  if (fp_) fp_->fu_events.push_back({f, +1});
  if (++fu_refs_[static_cast<size_t>(f)] == 1) ++cost_.fus_used;
}

void SearchEngine::remove_op_claims(NodeId n) {
  const AllocProblem& prob = b_.prob();
  const Schedule& sched = prob.sched();
  const FuId f = b_.op(n).fu;
  const int oc = sched.hw().occupancy(prob.cdfg().node(n).kind);
  for (int t = sched.start(n); t < sched.start(n) + oc; ++t) {
    int& slot = occ_.fu_user[static_cast<size_t>(f)][static_cast<size_t>(t)];
    SALSA_DCHECK(slot == n);
    slot = Occupancy::kFree;
  }
  if (fp_) fp_->fu_events.push_back({f, -1});
  if (--fu_refs_[static_cast<size_t>(f)] == 0) --cost_.fus_used;
}

void SearchEngine::add_sto_claims(int sid) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const int L = b_.prob().sched().length();
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  for (int seg = 0; seg < s.len; ++seg) {
    const int step = s.step_at(seg, L);
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      int& slot =
          occ_.reg_sto[static_cast<size_t>(c.reg)][static_cast<size_t>(step)];
      SALSA_DCHECK(slot == -1 || slot == sid);
      slot = sid;
      if (fp_) fp_->reg_events.push_back({c.reg, +1});
      if (++reg_refs_[static_cast<size_t>(c.reg)] == 1) ++cost_.regs_used;
      if (seg > 0 && c.via != kInvalidId) {
        const int tstep = s.step_at(seg - 1, L);
        int& fslot = occ_.fu_user[static_cast<size_t>(c.via)]
                                 [static_cast<size_t>(tstep)];
        SALSA_DCHECK(fslot == Occupancy::kFree);
        fslot = Occupancy::kPassThrough;
        if (fp_) fp_->fu_events.push_back({c.via, +1});
        if (++fu_refs_[static_cast<size_t>(c.via)] == 1) ++cost_.fus_used;
      }
    }
  }
}

void SearchEngine::remove_sto_claims(int sid) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const int L = b_.prob().sched().length();
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  for (int seg = 0; seg < s.len; ++seg) {
    const int step = s.step_at(seg, L);
    // Several cells of one segment may share the step slot only across
    // distinct registers (legality), so each clears its own slot.
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      int& slot =
          occ_.reg_sto[static_cast<size_t>(c.reg)][static_cast<size_t>(step)];
      SALSA_DCHECK(slot == sid);
      slot = -1;
      if (fp_) fp_->reg_events.push_back({c.reg, -1});
      if (--reg_refs_[static_cast<size_t>(c.reg)] == 0) --cost_.regs_used;
      if (seg > 0 && c.via != kInvalidId) {
        const int tstep = s.step_at(seg - 1, L);
        int& fslot = occ_.fu_user[static_cast<size_t>(c.via)]
                                 [static_cast<size_t>(tstep)];
        SALSA_DCHECK(fslot == Occupancy::kPassThrough);
        fslot = Occupancy::kFree;
        if (fp_) fp_->fu_events.push_back({c.via, -1});
        if (--fu_refs_[static_cast<size_t>(c.via)] == 0) --cost_.fus_used;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Transactions.

OpBind& SearchEngine::touch_op(NodeId n) {
  SALSA_DCHECK(in_txn_);
  if (op_epoch_[static_cast<size_t>(n)] != epoch_) {
    op_epoch_[static_cast<size_t>(n)] = epoch_;
    touched_ops_.push_back({n, b_.op(n)});
    remove_op_claims(n);
    for (int gen : op_info_[static_cast<size_t>(n)].gens)
      remove_gen_once(gen);
  }
  return b_.op(n);
}

StorageBinding& SearchEngine::touch_sto(int sid) {
  SALSA_DCHECK(in_txn_);
  if (sto_epoch_[static_cast<size_t>(sid)] != epoch_) {
    sto_epoch_[static_cast<size_t>(sid)] = epoch_;
    touched_stos_.push_back({sid, b_.sto(sid)});
    remove_sto_claims(sid);
    remove_gen_once(gen_reads(sid));
    remove_gen_once(gen_writes(sid));
  }
  return b_.sto(sid);
}

void SearchEngine::finish_mutation() {
  // Normalisation may clear `via` fields, so it must precede the re-adds.
  for (const TouchedSto& t : touched_stos_) b_.normalize_storage(t.sid);
  for (const TouchedOp& t : touched_ops_) add_op_claims(t.n);
  for (const TouchedSto& t : touched_stos_) add_sto_claims(t.sid);
  for (int gen : removed_gens_) add_gen(gen);
  recompute_total();
}

std::optional<double> SearchEngine::propose(MoveKind kind, Rng& rng,
                                            MoveFootprint* fp) {
  SALSA_DCHECK(!in_txn_);
  if (observer_) observer_->on_txn_begin(*this);
  in_txn_ = true;
  ++epoch_;
  cost_before_ = cost_;
  if (fp) {
    fp->clear();
    fp->read_mask = MoveFootprint::read_mask_of(kind);
  }
  fp_ = fp;
  if (!detail::dispatch_move(*this, kind, rng)) {
    SALSA_DCHECK(touched_ops_.empty() && touched_stos_.empty());
    fp_ = nullptr;
    in_txn_ = false;
    if (observer_) observer_->on_txn_abort(*this);
    return std::nullopt;
  }
  finish_mutation();
  if (fp) {
    // Write categories from the touched set. FuOcc is written when an op
    // changed FU or when any touched storage carries a pass-through `via`
    // in its saved or current cells (via claims occupy FU slots; the
    // conservative both-sides check covers moves that add or drop a via).
    if (!touched_ops_.empty()) fp->write_mask |= MoveFootprint::kOps;
    if (!touched_stos_.empty())
      fp->write_mask |= MoveFootprint::kStoCells | MoveFootprint::kRegOcc;
    for (const TouchedOp& t : touched_ops_)
      if (b_.op(t.n).fu != t.saved.fu) fp->write_mask |= MoveFootprint::kFuOcc;
    auto has_via = [](const StorageBinding& sb) {
      for (const auto& seg : sb.cells)
        for (const Cell& c : seg)
          if (c.via != kInvalidId) return true;
      return false;
    };
    for (const TouchedSto& t : touched_stos_)
      if (has_via(t.saved) || has_via(b_.sto(t.sid)))
        fp->write_mask |= MoveFootprint::kFuOcc;
    fp->finalize();
  }
  fp_ = nullptr;
  pending_kind_ = kind;
  // The delta is the weighted sum of the *integer component diffs*, not
  // total_after - total_before: that way it depends only on what the move
  // changed, never on the absolute counts it changed them from, so a
  // speculation scored against a snapshot reproduces the live delta
  // bit-for-bit even under fractional cost weights (the replay cross-check
  // in core/speculate.cpp relies on this).
  {
    const CostWeights& w = b_.prob().weights();
    pending_delta_ = w.fu * (cost_.fus_used - cost_before_.fus_used) +
                     w.reg * (cost_.regs_used - cost_before_.regs_used) +
                     w.mux * (cost_.muxes - cost_before_.muxes) +
                     w.conn * (cost_.connections - cost_before_.connections);
  }
  ++steps_;
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(kind)];
  ++ks.attempted;
  ks.delta_sum += pending_delta_;
  return pending_delta_;
}

void SearchEngine::commit() {
  SALSA_DCHECK(in_txn_);
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(pending_kind_)];
  ++ks.accepted;
  ks.accepted_delta_sum += pending_delta_;
  trace_decision(true);
  const double delta = pending_delta_;
  end_txn();
#ifndef NDEBUG
  SALSA_CHECK(matches_full_eval());
#endif
  if (observer_) observer_->on_commit(*this, delta);
}

void SearchEngine::rollback() {
  SALSA_DCHECK(in_txn_);
  trace_decision(false);
  if (break_next_undo_) {
    // Test-only fault injection (inject_broken_undo_for_test): keep the
    // mutated binding instead of restoring the saved units, then re-derive
    // the index from it. Every derived structure stays self-consistent with
    // the (wrong) binding, so only the auditor's digest comparison can tell
    // that the undo lied.
    break_next_undo_ = false;
    end_txn();
    if (observer_) observer_->on_rollback(*this);
    return;
  }
  // Retire the move's state, restore the saved units, re-derive.
  for (const TouchedOp& t : touched_ops_) remove_op_claims(t.n);
  for (const TouchedSto& t : touched_stos_) remove_sto_claims(t.sid);
  for (int gen : removed_gens_) remove_gen(gen);
  for (TouchedOp& t : touched_ops_) b_.op(t.n) = t.saved;
  for (TouchedSto& t : touched_stos_) b_.sto(t.sid) = std::move(t.saved);
  for (const TouchedOp& t : touched_ops_) add_op_claims(t.n);
  for (const TouchedSto& t : touched_stos_) add_sto_claims(t.sid);
  for (int gen : removed_gens_) add_gen(gen);
  recompute_total();
  SALSA_DCHECK(cost_.total == cost_before_.total);
  end_txn();
  if (observer_) observer_->on_rollback(*this);
}

void SearchEngine::end_txn() {
  touched_ops_.clear();
  touched_stos_.clear();
  removed_gens_.clear();
  in_txn_ = false;
}

void SearchEngine::trace_decision(bool accepted) {
  if (!trace_) return;
  *trace_ << "{\"step\":" << steps_ << ",\"move\":\""
          << move_name(pending_kind_) << "\",\"delta\":" << pending_delta_
          << ",\"accepted\":" << (accepted ? "true" : "false");
  if (aux_name_) *trace_ << ",\"" << aux_name_ << "\":" << aux_;
  *trace_ << "}\n";
}

bool SearchEngine::matches_full_eval() const {
  const CostBreakdown full = evaluate_cost(b_);
  return full.fus_used == cost_.fus_used &&
         full.regs_used == cost_.regs_used &&
         full.connections == cost_.connections && full.muxes == cost_.muxes &&
         full.total == cost_.total;
}

bool SearchEngine::index_matches_rebuild(std::string* why) const {
  SALSA_DCHECK(!in_txn_);
  const SearchEngine fresh(b_);
  auto diverged = [&](const std::string& what) {
    if (why) {
      if (!why->empty()) *why += "; ";
      *why += what;
    }
    return false;
  };
  bool ok = true;
  if (pair_refs_ != fresh.pair_refs_)
    ok = diverged("connection pair refcounts differ from a rebuild");
  if (sink_sources_ != fresh.sink_sources_)
    ok = diverged("per-sink distinct-source counts differ from a rebuild");
  if (fu_refs_ != fresh.fu_refs_)
    ok = diverged("FU use refcounts differ from a rebuild");
  if (reg_refs_ != fresh.reg_refs_)
    ok = diverged("register use refcounts differ from a rebuild");
  if (occ_.fu_user != fresh.occ_.fu_user || occ_.reg_sto != fresh.occ_.reg_sto)
    ok = diverged("occupancy grid differs from a rebuild");
  if (cost_.fus_used != fresh.cost_.fus_used ||
      cost_.regs_used != fresh.cost_.regs_used ||
      cost_.connections != fresh.cost_.connections ||
      cost_.muxes != fresh.cost_.muxes || cost_.total != fresh.cost_.total)
    ok = diverged("cost breakdown differs from a rebuild");
  return ok;
}

}  // namespace salsa
