#include "core/search_engine.h"

#include <algorithm>
#include <ostream>

#include "core/footprint.h"

namespace salsa {

namespace {

// Compact 32-bit endpoint/pin keys for the connection index (the 64-bit
// key_of keys would not fit two to a word). Ids are node/FU/register
// indices — far below 2^28.
uint32_t pack(const Endpoint& e) {
  SALSA_DCHECK(e.id >= 0 && e.id < (1 << 28));
  return (static_cast<uint32_t>(e.kind) << 28) | static_cast<uint32_t>(e.id);
}

uint32_t pack(const Pin& p) {
  SALSA_DCHECK(p.id >= 0 && p.id < (1 << 28));
  return (static_cast<uint32_t>(p.kind) << 28) | static_cast<uint32_t>(p.id);
}

}  // namespace

SearchEngine::SearchEngine(const Binding& start) : b_(start) {
  build_static();
  init_from_statics();
  rebuild();
}

SearchEngine::SearchEngine(const Binding& start, const SearchEngine& other)
    : b_(start), statics_(other.statics_) {
  SALSA_CHECK_MSG(&start.prob() == &other.b_.prob(),
                  "sharing engine statics needs bindings of the same problem");
  init_from_statics();
  rebuild();
}

void SearchEngine::build_static() {
  const AllocProblem& prob = b_.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int S = lt.num_storages();
  EngineStatics st;
  st.charge_consts = prob.weights().constants_cost;
  st.const_gen_base = 2 * S;

  st.op_info.assign(static_cast<size_t>(g.num_nodes()), OpInfo{});
  // Which storages each operation reads (its operand-fetch sinks live in
  // the storages' read generators) and which storage it produces.
  std::vector<int> produced(static_cast<size_t>(g.num_nodes()), -1);
  for (int sid = 0; sid < S; ++sid) {
    const Storage& s = lt.storage(sid);
    if (s.producer != kInvalidId) {
      SALSA_CHECK(produced[static_cast<size_t>(s.producer)] == -1);
      produced[static_cast<size_t>(s.producer)] = sid;
    }
    for (const StorageRead& r : s.reads) {
      if (g.node(r.consumer).kind == OpKind::kOutput) continue;
      auto& gens = st.op_info[static_cast<size_t>(r.consumer)].gens;
      if (gens.empty() || gens.back() != gen_reads(sid))
        gens.push_back(gen_reads(sid));
    }
  }
  for (NodeId n : g.operations()) {
    OpInfo& info = st.op_info[static_cast<size_t>(n)];
    // Dedup read generators (an op may read two operands of one storage,
    // interleaved with other storages in the scan above).
    std::sort(info.gens.begin(), info.gens.end());
    info.gens.erase(std::unique(info.gens.begin(), info.gens.end()),
                    info.gens.end());
    if (produced[static_cast<size_t>(n)] >= 0)
      info.gens.push_back(gen_writes(produced[static_cast<size_t>(n)]));
    for (ValueId v : g.node(n).ins)
      if (g.is_const_value(v)) info.has_const_ins = true;
    if (info.has_const_ins) info.gens.push_back(st.const_gen_base + n);
  }
  st.num_gens = st.const_gen_base + g.num_nodes();
  st.ops = g.operations();
  for (size_t c = 0; c < st.fus_by_class.size(); ++c)
    st.fus_by_class[c] = prob.fus().of_class(static_cast<FuClass>(c));
  st.pass_fus = prob.fus().pass_capable();
  const Schedule& sched = prob.sched();
  st.finishing_at.assign(static_cast<size_t>(sched.length()), {});
  for (NodeId n : st.ops) {
    const int fin = sched.start(n) + sched.hw().delay(g.node(n).kind) - 1;
    st.finishing_at[static_cast<size_t>(fin % sched.length())].push_back(n);
  }
  st.op_class.assign(static_cast<size_t>(g.num_nodes()), FuClass::kAlu);
  st.op_occ.assign(static_cast<size_t>(g.num_nodes()), 0);
  for (NodeId n : st.ops) {
    const OpKind kind = g.node(n).kind;
    const FuClass c = fu_class_of(kind);
    st.op_class[static_cast<size_t>(n)] = c;
    st.op_occ[static_cast<size_t>(n)] = sched.hw().occupancy(kind);
    st.ops_by_class[static_cast<size_t>(c)].push_back(n);
    if (is_commutative(kind)) st.commutative_ops.push_back(n);
  }
  for (FuId f : st.pass_fus) {
    // Only single-cycle FU classes can forward combinationally.
    const OpKind probe =
        prob.fus().fu(f).cls == FuClass::kAlu ? OpKind::kAdd : OpKind::kMul;
    if (sched.hw().delay(probe) == 1) st.pass_fus_1cyc.push_back(f);
  }
  st.live_at.assign(static_cast<size_t>(sched.length()), {});
  for (int t = 0; t < sched.length(); ++t)
    for (int sid = 0; sid < S; ++sid) {
      const int seg = lt.seg_at_step(sid, t);
      if (seg >= 0) st.live_at[static_cast<size_t>(t)].push_back({sid, seg});
    }
  statics_ = std::make_shared<const EngineStatics>(std::move(st));
}

void SearchEngine::init_from_statics() {
  const Cdfg& g = b_.prob().cdfg();
  const int S = b_.prob().lifetimes().num_storages();
  gen_epoch_.assign(static_cast<size_t>(statics_->num_gens), 0);
  gen_keys_.assign(static_cast<size_t>(statics_->num_gens), {});
  op_epoch_.assign(static_cast<size_t>(g.num_nodes()), 0);
  sto_epoch_.assign(static_cast<size_t>(S), 0);
  sto_save_.assign(static_cast<size_t>(S), StorageBinding{});
  epoch_ = 0;
  // The audited index tables are the targets of the backward-shift
  // mutation hook (flat_map_hooks; no effect unless a test arms it).
  pair_refs_.mark_mutation_target();
  sink_sources_.mark_mutation_target();
}

void SearchEngine::rebuild() {
  const AllocProblem& prob = b_.prob();
  occ_ = b_.occupancy();  // also validates legality
  pair_refs_.clear();
  sink_sources_.clear();
  fu_refs_.assign(static_cast<size_t>(prob.fus().size()), 0);
  reg_refs_.assign(static_cast<size_t>(prob.num_regs()), 0);
  cost_ = CostBreakdown{};

  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  sto_cells_.assign(static_cast<size_t>(lt.num_storages()), 0);
  sto_vias_.assign(static_cast<size_t>(lt.num_storages()), 0);
  sto_xfers_.assign(static_cast<size_t>(lt.num_storages()), 0);
  total_cells_ = 0;
  for (int sid = 0; sid < lt.num_storages(); ++sid) refresh_sto_stats(sid);
  for (NodeId n : g.operations()) {
    const FuId f = b_.op(n).fu;
    if (++fu_refs_[static_cast<size_t>(f)] == 1) ++cost_.fus_used;
  }
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    for (const auto& seg : b_.sto(sid).cells) {
      for (const Cell& c : seg) {
        if (++reg_refs_[static_cast<size_t>(c.reg)] == 1) ++cost_.regs_used;
        if (c.via != kInvalidId &&
            ++fu_refs_[static_cast<size_t>(c.via)] == 1)
          ++cost_.fus_used;
      }
    }
    add_gen(gen_reads(sid));
    add_gen(gen_writes(sid));
  }
  for (NodeId n : g.operations())
    if (statics_->op_info[static_cast<size_t>(n)].has_const_ins)
      add_gen(gen_const(n));
  recompute_total();
  SALSA_DCHECK(matches_full_eval());
}

void SearchEngine::recompute_total() {
  // Same expression as evaluate_cost, term for term, so totals compare
  // bit-identically.
  const CostWeights& w = b_.prob().weights();
  cost_.total = w.fu * cost_.fus_used + w.reg * cost_.regs_used +
                w.mux * cost_.muxes + w.conn * cost_.connections;
}

void SearchEngine::reset_to(const Binding& nb) {
  SALSA_DCHECK(!in_txn_);
  SALSA_CHECK_MSG(&nb.prob() == &b_.prob(),
                  "SearchEngine::reset_to needs a binding of the same problem");
  b_ = nb;
  rebuild();
}

// ---------------------------------------------------------------------------
// Use enumeration — one generator at a time, mirroring connection_uses().

template <typename Fn>
void SearchEngine::enum_gen_uses(int gen, Fn&& fn) const {
  const AllocProblem& prob = b_.prob();
  const Cdfg& g = prob.cdfg();
  const Lifetimes& lt = prob.lifetimes();
  const int L = prob.sched().length();

  if (gen >= statics_->const_gen_base) {  // constant operands of one operation
    const NodeId n = gen - statics_->const_gen_base;
    const Node& nd = g.node(n);
    const OpBind& ob = b_.op(n);
    for (size_t k = 0; k < nd.ins.size(); ++k) {
      if (!g.is_const_value(nd.ins[k])) continue;
      const int slot = ob.swap ? 1 - static_cast<int>(k) : static_cast<int>(k);
      fn(Endpoint{Endpoint::Kind::kConstPort, g.producer(nd.ins[k])},
         Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
    }
    return;
  }

  const int sid = gen / 2;
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  if (gen == gen_reads(sid)) {  // operand fetches and output samples
    for (size_t ri = 0; ri < s.reads.size(); ++ri) {
      const StorageRead& r = s.reads[ri];
      // Binding::read_reg(sid, ri), with the storage rows already in hand.
      const RegId rreg =
          sb.cells[static_cast<size_t>(r.seg)]
                  [static_cast<size_t>(sb.read_cell[ri])].reg;
      const Endpoint src{Endpoint::Kind::kRegOut, rreg};
      const Node& cn = g.node(r.consumer);
      if (cn.kind == OpKind::kOutput) {
        fn(src, Pin{Pin::Kind::kOutPort, r.consumer});
      } else {
        const OpBind& ob = b_.op(r.consumer);
        const int slot = ob.swap ? 1 - r.operand : r.operand;
        fn(src,
           Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu});
      }
    }
    return;
  }

  // Cell writes: producer latches, environment loads, transfers.
  for (int seg = 0; seg < s.len; ++seg) {
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      const Pin sink{Pin::Kind::kRegIn, c.reg};
      if (seg == 0) {
        if (s.producer == kInvalidId) {
          fn(Endpoint{Endpoint::Kind::kInPort, g.producer(s.members[0])},
             sink);
        } else {
          fn(Endpoint{Endpoint::Kind::kFuOut, b_.op(s.producer).fu}, sink);
        }
        continue;
      }
      const Cell& parent =
          sb.cells[static_cast<size_t>(seg) - 1][static_cast<size_t>(c.parent)];
      if (parent.reg == c.reg) continue;  // hold: no interconnect
      if (c.via == kInvalidId) {
        fn(Endpoint{Endpoint::Kind::kRegOut, parent.reg}, sink);
      } else {
        fn(Endpoint{Endpoint::Kind::kRegOut, parent.reg},
           Pin{Pin::Kind::kFuIn0, c.via});
        fn(Endpoint{Endpoint::Kind::kFuOut, c.via}, sink);
      }
    }
  }
  (void)L;
}

void SearchEngine::add_key(uint64_t key) {
  if (pair_refs_.increment(key) == 1) {
    ++cost_.connections;
    if (sink_sources_.increment(static_cast<uint32_t>(key >> 32)) > 1)
      ++cost_.muxes;
  }
}

void SearchEngine::remove_key(uint64_t key) {
  if (pair_refs_.decrement(key) == 0) {
    --cost_.connections;
    if (sink_sources_.decrement(static_cast<uint32_t>(key >> 32)) != 0)
      --cost_.muxes;
  }
}

void SearchEngine::add_gen(int gen) {
  // Enumerate from the binding and refresh the generator's key cache in
  // the same pass (see gen_keys_ in the header): the cache stays current
  // for as long as the generator's enumeration inputs do, which the
  // touch-before-mutate protocol guarantees.
  std::vector<uint64_t>& keys = gen_keys_[static_cast<size_t>(gen)];
  keys.clear();
  enum_gen_uses(gen, [this, &keys](const Endpoint& src, const Pin& sink) {
    if (!statics_->charge_consts && src.kind == Endpoint::Kind::kConstPort)
      return;
    const uint32_t sk = pack(sink);
    if (fp_) fp_->sinks.push_back(sk);
    const uint64_t key = (static_cast<uint64_t>(sk) << 32) | pack(src);
    keys.push_back(key);
    if (in_txn_)
      txn_delta_.add(key, +1);
    else
      add_key(key);
  });
}

void SearchEngine::remove_gen_once(int gen) {
  if (gen_epoch_[static_cast<size_t>(gen)] == epoch_) return;
  gen_epoch_[static_cast<size_t>(gen)] = epoch_;
  const size_t stash = removed_gens_.size();
  removed_gens_.push_back(gen);
  if (stash >= gen_stash_.size()) gen_stash_.emplace_back();
  // Stash the still-fresh cache (rollback swaps it back) and retire the
  // generator's uses by replaying it — no binding re-enumeration. The
  // cache slot left behind is refilled by finish_mutation's add_gen.
  std::vector<uint64_t>& keys = gen_stash_[stash];
  keys.swap(gen_keys_[static_cast<size_t>(gen)]);
  for (const uint64_t key : keys) {
    if (fp_) fp_->sinks.push_back(static_cast<uint32_t>(key >> 32));
    txn_delta_.add(key, -1);
  }
}

// ---------------------------------------------------------------------------
// Resource claims (occupancy slots + fus_used/regs_used refcounts). Every
// scalar write inside a transaction is journaled first, so rollback can
// restore the grid and the refcount rows without re-enumerating the claims.

void SearchEngine::add_op_claims(NodeId n) {
  const Schedule& sched = b_.prob().sched();
  const FuId f = b_.op(n).fu;
  const int oc = statics_->op_occ[static_cast<size_t>(n)];
  for (int t = sched.start(n); t < sched.start(n) + oc; ++t) {
    int& slot = occ_.fu_user[static_cast<size_t>(f)][static_cast<size_t>(t)];
    SALSA_DCHECK(slot == Occupancy::kFree);
    journal_int(slot);
    slot = n;
  }
  if (fp_) fp_->fu_events.push_back({f, +1});
  int& refs = fu_refs_[static_cast<size_t>(f)];
  journal_int(refs);
  if (++refs == 1) ++cost_.fus_used;
}

void SearchEngine::remove_op_claims(NodeId n) {
  const Schedule& sched = b_.prob().sched();
  const FuId f = b_.op(n).fu;
  const int oc = statics_->op_occ[static_cast<size_t>(n)];
  for (int t = sched.start(n); t < sched.start(n) + oc; ++t) {
    int& slot = occ_.fu_user[static_cast<size_t>(f)][static_cast<size_t>(t)];
    SALSA_DCHECK(slot == n);
    journal_int(slot);
    slot = Occupancy::kFree;
  }
  if (fp_) fp_->fu_events.push_back({f, -1});
  int& refs = fu_refs_[static_cast<size_t>(f)];
  journal_int(refs);
  if (--refs == 0) --cost_.fus_used;
}

void SearchEngine::add_sto_claims(int sid) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const int L = b_.prob().sched().length();
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  for (int seg = 0; seg < s.len; ++seg) {
    const int step = s.step_at(seg, L);
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      int& slot =
          occ_.reg_sto[static_cast<size_t>(c.reg)][static_cast<size_t>(step)];
      SALSA_DCHECK(slot == -1 || slot == sid);
      journal_int(slot);
      slot = sid;
      if (fp_) fp_->reg_events.push_back({c.reg, +1});
      int& rrefs = reg_refs_[static_cast<size_t>(c.reg)];
      journal_int(rrefs);
      if (++rrefs == 1) ++cost_.regs_used;
      if (seg > 0 && c.via != kInvalidId) {
        const int tstep = s.step_at(seg - 1, L);
        int& fslot = occ_.fu_user[static_cast<size_t>(c.via)]
                                 [static_cast<size_t>(tstep)];
        SALSA_DCHECK(fslot == Occupancy::kFree);
        journal_int(fslot);
        fslot = Occupancy::kPassThrough;
        if (fp_) fp_->fu_events.push_back({c.via, +1});
        int& frefs = fu_refs_[static_cast<size_t>(c.via)];
        journal_int(frefs);
        if (++frefs == 1) ++cost_.fus_used;
      }
    }
  }
}

void SearchEngine::remove_sto_claims(int sid) {
  const Lifetimes& lt = b_.prob().lifetimes();
  const int L = b_.prob().sched().length();
  const Storage& s = lt.storage(sid);
  const StorageBinding& sb = b_.sto(sid);
  for (int seg = 0; seg < s.len; ++seg) {
    const int step = s.step_at(seg, L);
    // Several cells of one segment may share the step slot only across
    // distinct registers (legality), so each clears its own slot.
    for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
      int& slot =
          occ_.reg_sto[static_cast<size_t>(c.reg)][static_cast<size_t>(step)];
      SALSA_DCHECK(slot == sid);
      journal_int(slot);
      slot = -1;
      if (fp_) fp_->reg_events.push_back({c.reg, -1});
      int& rrefs = reg_refs_[static_cast<size_t>(c.reg)];
      journal_int(rrefs);
      if (--rrefs == 0) --cost_.regs_used;
      if (seg > 0 && c.via != kInvalidId) {
        const int tstep = s.step_at(seg - 1, L);
        int& fslot = occ_.fu_user[static_cast<size_t>(c.via)]
                                 [static_cast<size_t>(tstep)];
        SALSA_DCHECK(fslot == Occupancy::kPassThrough);
        journal_int(fslot);
        fslot = Occupancy::kFree;
        if (fp_) fp_->fu_events.push_back({c.via, -1});
        int& frefs = fu_refs_[static_cast<size_t>(c.via)];
        journal_int(frefs);
        if (--frefs == 0) --cost_.fus_used;
      }
    }
  }
}

void SearchEngine::refresh_sto_stats(int sid) {
  const StorageBinding& sb = b_.sto(sid);
  int cells = 0, vias = 0, xfers = 0;
  for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
    cells += static_cast<int>(sb.cells[seg].size());
    for (const Cell& c : sb.cells[seg]) {
      if (c.via != kInvalidId) {
        ++vias;
      } else if (seg > 0 &&
                 sb.cells[seg - 1][static_cast<size_t>(c.parent)].reg !=
                     c.reg) {
        ++xfers;
      }
    }
  }
  int& cc = sto_cells_[static_cast<size_t>(sid)];
  int& vv = sto_vias_[static_cast<size_t>(sid)];
  int& xx = sto_xfers_[static_cast<size_t>(sid)];
  journal_int(cc);
  journal_int(vv);
  journal_int(xx);
  journal_int(total_cells_);
  total_cells_ += cells - cc;
  cc = cells;
  vv = vias;
  xx = xfers;
}

// ---------------------------------------------------------------------------
// Transactions.

OpBind& SearchEngine::touch_op(NodeId n) {
  SALSA_DCHECK(in_txn_);
  if (op_epoch_[static_cast<size_t>(n)] != epoch_) {
    op_epoch_[static_cast<size_t>(n)] = epoch_;
    touched_ops_.push_back({n, b_.op(n)});
    remove_op_claims(n);
    for (int gen : statics_->op_info[static_cast<size_t>(n)].gens)
      remove_gen_once(gen);
  }
  return b_.op(n);
}

StorageBinding& SearchEngine::touch_sto(int sid) {
  SALSA_DCHECK(in_txn_);
  if (sto_epoch_[static_cast<size_t>(sid)] != epoch_) {
    sto_epoch_[static_cast<size_t>(sid)] = epoch_;
    // The per-sid save buffer has this storage's exact segment shape after
    // the first touch ever, so the copy-assignment refills the existing
    // cell vectors in place — no reallocation on the steady-state path.
    touched_sids_.push_back(sid);
    sto_save_[static_cast<size_t>(sid)] = b_.sto(sid);
    remove_sto_claims(sid);
    remove_gen_once(gen_reads(sid));
    remove_gen_once(gen_writes(sid));
  }
  return b_.sto(sid);
}

void SearchEngine::finish_mutation() {
  // Normalisation may clear `via` fields, so it must precede the re-adds.
  for (int sid : touched_sids_) b_.normalize_storage(sid);
  for (const TouchedOp& t : touched_ops_) add_op_claims(t.n);
  for (int sid : touched_sids_) {
    add_sto_claims(sid);
    refresh_sto_stats(sid);
  }
  for (int gen : removed_gens_) add_gen(gen);
  // Flush the netted use deltas to the shared index: most retire/re-charge
  // pairs cancelled inside txn_delta_; only the moves' real changes reach
  // pair_refs_/sink_sources_ (and the undo journal). Per-key refcount
  // arithmetic commutes, so the scratch table's layout-dependent apply
  // order yields the exact counts sequential application would.
  txn_delta_.drain([this](uint64_t key, int net) {
    for (; net > 0; --net) {
      undo_uses_.push_back({key, true});
      add_key(key);
    }
    for (; net < 0; ++net) {
      undo_uses_.push_back({key, false});
      remove_key(key);
    }
  });
  recompute_total();
}

std::optional<double> SearchEngine::propose(MoveKind kind, Rng& rng,
                                            MoveFootprint* fp) {
  SALSA_DCHECK(!in_txn_);
  if (observer_) observer_->on_txn_begin(*this);
  in_txn_ = true;
  ++epoch_;
  cost_before_ = cost_;
  if (fp) {
    fp->clear();
    fp->read_mask = MoveFootprint::read_mask_of(kind);
  }
  fp_ = fp;
  if (!detail::dispatch_move(*this, kind, rng)) {
    SALSA_DCHECK(touched_ops_.empty() && touched_sids_.empty());
    fp_ = nullptr;
    in_txn_ = false;
    if (observer_) observer_->on_txn_abort(*this);
    return std::nullopt;
  }
  finish_mutation();
  if (fp) {
    // Write categories from the touched set. FuOcc is written when an op
    // changed FU or when any touched storage carries a pass-through `via`
    // in its saved or current cells (via claims occupy FU slots; the
    // conservative both-sides check covers moves that add or drop a via).
    if (!touched_ops_.empty()) fp->write_mask |= MoveFootprint::kOps;
    if (!touched_sids_.empty())
      fp->write_mask |= MoveFootprint::kStoCells | MoveFootprint::kRegOcc;
    for (const TouchedOp& t : touched_ops_)
      if (b_.op(t.n).fu != t.saved.fu) fp->write_mask |= MoveFootprint::kFuOcc;
    auto has_via = [](const StorageBinding& sb) {
      for (const auto& seg : sb.cells)
        for (const Cell& c : seg)
          if (c.via != kInvalidId) return true;
      return false;
    };
    for (int sid : touched_sids_) {
      if (has_via(sto_save_[static_cast<size_t>(sid)]) ||
          has_via(b_.sto(sid)))
        fp->write_mask |= MoveFootprint::kFuOcc;
    }
    fp->finalize();
  }
  fp_ = nullptr;
  pending_kind_ = kind;
  // The delta is the weighted sum of the *integer component diffs*, not
  // total_after - total_before: that way it depends only on what the move
  // changed, never on the absolute counts it changed them from, so a
  // speculation scored against a snapshot reproduces the live delta
  // bit-for-bit even under fractional cost weights (the replay cross-check
  // in core/speculate.cpp relies on this).
  {
    const CostWeights& w = b_.prob().weights();
    pending_delta_ = w.fu * (cost_.fus_used - cost_before_.fus_used) +
                     w.reg * (cost_.regs_used - cost_before_.regs_used) +
                     w.mux * (cost_.muxes - cost_before_.muxes) +
                     w.conn * (cost_.connections - cost_before_.connections);
  }
  ++steps_;
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(kind)];
  ++ks.attempted;
  ks.delta_sum += pending_delta_;
  return pending_delta_;
}

void SearchEngine::commit() {
  SALSA_DCHECK(in_txn_);
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(pending_kind_)];
  ++ks.accepted;
  ks.accepted_delta_sum += pending_delta_;
  trace_decision(true);
  const double delta = pending_delta_;
  end_txn();
#ifndef NDEBUG
  SALSA_CHECK(matches_full_eval());
#endif
  if (observer_) observer_->on_commit(*this, delta);
}

void SearchEngine::rollback() {
  SALSA_DCHECK(in_txn_);
  trace_decision(false);
  if (break_next_undo_) {
    // Test-only fault injection (inject_broken_undo_for_test): keep the
    // mutated binding instead of restoring the saved units. Every derived
    // structure stays self-consistent with the (wrong) binding, so only
    // the auditor's digest comparison can tell that the undo lied.
    break_next_undo_ = false;
    end_txn();
    if (observer_) observer_->on_rollback(*this);
    return;
  }
  // Restore the saved units, then replay the undo journal in reverse: the
  // connection index takes back each charged/retired pair, and every
  // occupancy slot and refcount row returns to its recorded value — no
  // re-enumeration of the touched units' uses or claims.
  for (const TouchedOp& t : touched_ops_) b_.op(t.n) = t.saved;
  // The retired generators' caches were refreshed from the post-move
  // binding; swap the stashed pre-move key lists back so they match the
  // binding being restored.
  for (size_t i = removed_gens_.size(); i-- > 0;)
    gen_keys_[static_cast<size_t>(removed_gens_[i])].swap(gen_stash_[i]);
  for (int sid : touched_sids_) {
    // Copy (not move): the per-sid save buffer keeps its shape for reuse,
    // and the binding's own cell vectors are refilled in place.
    b_.sto(sid) = sto_save_[static_cast<size_t>(sid)];
  }
  for (size_t i = undo_uses_.size(); i-- > 0;) {
    const UseUndo& u = undo_uses_[i];
    if (u.add)
      remove_key(u.key);
    else
      add_key(u.key);
  }
  for (size_t i = undo_ints_.size(); i-- > 0;) *undo_ints_[i].p = undo_ints_[i].old;
  cost_ = cost_before_;
  end_txn();
  if (observer_) observer_->on_rollback(*this);
}

void SearchEngine::end_txn() {
  touched_ops_.clear();
  touched_sids_.clear();
  removed_gens_.clear();
  undo_ints_.clear();
  undo_uses_.clear();
  in_txn_ = false;
}

void SearchEngine::trace_decision(bool accepted) {
  if (!trace_) return;
  *trace_ << "{\"step\":" << steps_ << ",\"move\":\""
          << move_name(pending_kind_) << "\",\"delta\":" << pending_delta_
          << ",\"accepted\":" << (accepted ? "true" : "false");
  if (aux_name_) *trace_ << ",\"" << aux_name_ << "\":" << aux_;
  *trace_ << "}\n";
}

bool SearchEngine::matches_full_eval() const {
  const CostBreakdown full = evaluate_cost(b_);
  return full.fus_used == cost_.fus_used &&
         full.regs_used == cost_.regs_used &&
         full.connections == cost_.connections && full.muxes == cost_.muxes &&
         full.total == cost_.total;
}

bool SearchEngine::index_matches_rebuild(std::string* why) const {
  SALSA_DCHECK(!in_txn_);
  const SearchEngine fresh(b_, *this);
  auto diverged = [&](const std::string& what) {
    if (why) {
      if (!why->empty()) *why += "; ";
      *why += what;
    }
    return false;
  };
  bool ok = true;
  if (!(pair_refs_ == fresh.pair_refs_))
    ok = diverged("connection pair refcounts differ from a rebuild");
  if (!(sink_sources_ == fresh.sink_sources_))
    ok = diverged("per-sink distinct-source counts differ from a rebuild");
  if (fu_refs_ != fresh.fu_refs_)
    ok = diverged("FU use refcounts differ from a rebuild");
  if (reg_refs_ != fresh.reg_refs_)
    ok = diverged("register use refcounts differ from a rebuild");
  if (occ_.fu_user != fresh.occ_.fu_user || occ_.reg_sto != fresh.occ_.reg_sto)
    ok = diverged("occupancy grid differs from a rebuild");
  if (cost_.fus_used != fresh.cost_.fus_used ||
      cost_.regs_used != fresh.cost_.regs_used ||
      cost_.connections != fresh.cost_.connections ||
      cost_.muxes != fresh.cost_.muxes || cost_.total != fresh.cost_.total)
    ok = diverged("cost breakdown differs from a rebuild");
  return ok;
}

}  // namespace salsa
