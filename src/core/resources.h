// Datapath resources available to an allocation: functional-unit instances
// and a register budget, plus the cost weights of the paper's weighted-sum
// objective. An AllocProblem bundles a schedule with the resources it must
// be implemented on; every binding refers back to its problem.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/list_scheduler.h"
#include "sched/schedule.h"

namespace salsa {

using FuId = int32_t;
using RegId = int32_t;

/// One functional-unit instance.
struct FuInst {
  std::string name;
  FuClass cls = FuClass::kAlu;
  /// Whether this unit can implement the No-Op pass-through (the paper uses
  /// the adder units for pass-throughs; multipliers normally cannot).
  bool can_pass = false;
};

/// The set of FU instances available to an allocation.
class FuPool {
 public:
  FuPool() = default;
  /// Builds the standard pool: `budget.alu` pass-through-capable ALUs and
  /// `budget.mul` multipliers (pass-through per `mul_can_pass`).
  static FuPool standard(const FuBudget& budget, bool alu_can_pass = true,
                         bool mul_can_pass = false);

  FuId add(FuInst fu);
  int size() const { return static_cast<int>(fus_.size()); }
  const FuInst& fu(FuId f) const { return fus_[static_cast<size_t>(f)]; }
  const std::vector<FuInst>& fus() const { return fus_; }

  /// Ids of all units of a class.
  std::vector<FuId> of_class(FuClass c) const;
  /// Ids of all pass-through-capable units.
  std::vector<FuId> pass_capable() const;

 private:
  std::vector<FuInst> fus_;
};

/// Weights of the allocation cost function (Section 4: a weighted sum of
/// functional unit, register and interconnect costs; interconnect is
/// evaluated on the point-to-point model). FU and register *budgets* are
/// inputs of each experiment, so the defaults emphasise interconnect.
struct CostWeights {
  double fu = 0.0;    ///< per functional unit actually used
  double reg = 5.0;   ///< per register actually used
  double mux = 10.0;  ///< per equivalent 2-1 multiplexer
  double conn = 1.0;  ///< per point-to-point connection (wire)
  /// The paper's experiments exclude constant (coefficient) inputs from the
  /// cost ("constants for multiplication were not considered to contribute",
  /// Section 5). Set to true to charge them like any other source.
  bool constants_cost = false;
};

class Lifetimes;  // core/lifetime.h

/// A complete allocation problem: a validated schedule plus the resources
/// the datapath may use. Owns the lifetime (segment) analysis.
class AllocProblem {
 public:
  AllocProblem(const Schedule& sched, FuPool fus, int num_regs,
               CostWeights weights = {});
  ~AllocProblem();
  AllocProblem(const AllocProblem&) = delete;
  AllocProblem& operator=(const AllocProblem&) = delete;

  const Schedule& sched() const { return *sched_; }
  const Cdfg& cdfg() const { return sched_->cdfg(); }
  const FuPool& fus() const { return fus_; }
  int num_regs() const { return num_regs_; }
  const CostWeights& weights() const { return weights_; }
  const Lifetimes& lifetimes() const { return *lifetimes_; }

 private:
  const Schedule* sched_;
  FuPool fus_;
  int num_regs_;
  CostWeights weights_;
  std::unique_ptr<Lifetimes> lifetimes_;
};

}  // namespace salsa
