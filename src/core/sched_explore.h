// Schedule-variant exploration. The paper initially included moves that
// alter operator scheduling in the improvement move set and dropped them
// ("in our experience these moves did not lead to better allocations",
// Section 3). Rescheduling invalidates the segment structure, so rather
// than in-search moves this module explores schedule variants in an outer
// loop: several randomised list schedules with identical FU budgets are
// each allocated, and the best datapath wins. bench_ablation_resched
// quantifies how much (or little) this buys — reproducing the remark.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/allocator.h"
#include "sched/list_scheduler.h"

namespace salsa {

struct ScheduleExploreParams {
  int variants = 6;  ///< randomised schedules to try (plus the baseline)
  AllocatorOptions alloc;
  int extra_regs = 1;  ///< register budget above each variant's minimum
  uint64_t seed = 1;
  /// Variant-level parallelism. Each variant owns its Schedule/AllocProblem
  /// and draws schedule jitter and allocation seeds from SplitMix64 streams
  /// of `seed`, so the winner, variant_costs and variant_stats are
  /// byte-identical for every thread count (reduction in variant order,
  /// ties keep the earliest variant). Composes with alloc.parallelism —
  /// nested parallel_for calls share one process-wide pool.
  Parallelism parallelism;
};

struct ScheduleExploreResult {
  /// Owning handles: the winning allocation's binding refers to `problem`,
  /// which refers to `schedule`.
  std::unique_ptr<Schedule> schedule;
  std::unique_ptr<AllocProblem> problem;
  std::optional<AllocationResult> allocation;
  /// Final cost of every variant tried (baseline first).
  std::vector<double> variant_costs;
  /// Search statistics of every variant tried, parallel to variant_costs.
  std::vector<ImproveStats> variant_stats;
};

/// Schedules `cdfg` into `length` steps under `budget` FUs several times
/// with randomised priorities, allocates each variant, and returns the best.
ScheduleExploreResult explore_schedules(const Cdfg& cdfg, const HwSpec& hw,
                                        int length, const FuBudget& budget,
                                        const ScheduleExploreParams& params);

}  // namespace salsa
