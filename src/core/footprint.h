// Move footprints: what one move transaction read and wrote, at the
// granularity the speculative proposal pipeline (core/speculate.h) needs to
// decide whether a speculation scored against a stale snapshot is still
// exact after a later move committed.
//
// The capture is split between a static and a dynamic part:
//
//   * The read side is a per-move-kind category mask (read_mask_of). Move
//     proposers enumerate candidates with *global* scans — F2 walks every
//     operation and every FU's occupancy column, the R-moves collect cells
//     across all storages — so per-instance read tracking would be as
//     expensive as the proposal itself. The coarse mask is sound because it
//     covers everything a proposer of that kind can possibly inspect.
//   * The dynamic part is captured by the SearchEngine during the
//     transaction: every connection-index sink key the move retired or
//     charged (`sinks`), and every FU/register whose use refcount changed
//     net (`fu_rows`/`reg_rows`). These cover the *delta* computation: the
//     incremental cost of a move depends only on the pair/source sets at
//     its own sink pins and on whether its refcount rows cross the 0/1
//     boundary.
//   * The write side (`write_mask`) is derived from the transaction's
//     touched set: which categories of mutable state the committed move
//     actually changed.
//
// The dynamic sets are packed bitsets (util/bitplane.h BitWords) rather
// than sorted id vectors: a sink pin or resource row becomes one bit, so
// finalize() needs no sorting and footprints_conflict() is a handful of
// word-wise AND-any sweeps instead of merge-walks.
//
// A speculation S scored against snapshot state is still exact after move C
// committed iff !footprints_conflict(S, C): C wrote no category S's
// proposer reads, and the two transactions share no sink key and no
// refcount row. DESIGN.md ("Speculative move proposals") carries the full
// soundness argument; tests/test_speculation.cpp enforces it by comparing
// speculative trajectories byte-for-byte against sequential ones.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/moves.h"
#include "util/bitplane.h"

namespace salsa {

struct MoveFootprint {
  /// State categories, used in both read_mask and write_mask. `Ops` is the
  /// per-operation binding (fu, operand swap); `StoCells` the storage cell
  /// trees including read targets; `FuOcc`/`RegOcc` the occupancy grids.
  enum Category : uint32_t {
    kOps = 1u << 0,
    kStoCells = 1u << 1,
    kFuOcc = 1u << 2,
    kRegOcc = 1u << 3,
  };

  uint32_t read_mask = 0;   ///< categories the proposer may have read
  uint32_t write_mask = 0;  ///< categories the transaction changed

  /// Sink pins the transaction retired or charged connection pairs at, one
  /// bit per pin: bit (pin_id << 2) | pin_kind — Pin::Kind has four values,
  /// so the engine's (kind << 28) | id packing folds into a dense index.
  BitWords sinks;

  /// FUs / registers whose use refcount changed net over the transaction
  /// (the 0/1 crossings of these rows are the fus_used/regs_used terms of
  /// the delta), one bit per resource id.
  BitWords fu_rows;
  BitWords reg_rows;

  /// Raw refcount events ((id, +1/-1)) recorded during the transaction;
  /// finalize() nets them into the row bitsets and clears them.
  std::vector<std::pair<int, int>> fu_events;
  std::vector<std::pair<int, int>> reg_events;

  /// Records one sink pin in the engine's (kind << 28) | id packing.
  void add_sink(uint32_t packed_pin) {
    sinks.set(static_cast<int>(((packed_pin & 0x0FFFFFFFu) << 2) |
                               (packed_pin >> 28)));
  }

  void clear();
  /// Nets the refcount events into the row bitsets; duplicate sink bits
  /// need no deduplication.
  void finalize();

  /// The static read mask of one move kind (see file header).
  static uint32_t read_mask_of(MoveKind kind);
};

/// True iff a speculation with footprint `spec`, scored before the move
/// with footprint `committed` was applied, can no longer be trusted: the
/// committed move wrote a category the speculation's proposer reads, or
/// the two share a connection-index sink key or a refcounted resource row.
/// Both footprints must be finalize()d.
bool footprints_conflict(const MoveFootprint& spec,
                         const MoveFootprint& committed);

}  // namespace salsa
