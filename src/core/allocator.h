// Top-level allocation API: constructive initial allocation followed by
// iterative improvement (with optional outer restarts — the paper notes
// multiple runs are sometimes needed due to the randomised search), then the
// mux-merging post-pass. This is the facade examples and benchmarks use.
#pragma once

#include <cstdint>
#include <vector>

#include "core/improver.h"
#include "core/initial.h"
#include "core/mux_merge.h"
#include "util/thread_pool.h"

namespace salsa {

/// How much self-checking allocate() performs (the knob the SalsaCheck
/// subsystem hangs off — see src/analysis/auditor.h):
///   kOff   — no checks at all: the caller owns result validation (release
///            hot paths that would otherwise pay an O(design) check_legal()
///            per call they never look at);
///   kFinal — check_legal() on the winning binding only. The default, and
///            exactly the unconditional check previous versions hardwired;
///   kAudit — move transactions of every restart run under the invariant
///            auditor (binding verification, connection-index rebuild
///            cross-check, from-scratch cost comparison, undo digests),
///            plus the final check. On designs above the auditor's size
///            threshold (AuditorOptions::sample_threshold_ops) the
///            O(design) battery is sampled — every ops/64-th transaction —
///            so audited searches stay usable at 10k+ ops; small designs
///            still audit every transaction. Orders of magnitude slower
///            than unchecked either way; meant for tests, CI and bug
///            hunts, not production runs;
///   kAuditFull — kAudit with sampling disabled: every transaction of any
///            design pays the full battery. O(design) per move — minutes
///            per thousand moves at 10k ops — but exact, for pinning down
///            which transaction first corrupts state.
enum class CheckMode : uint8_t { kOff, kFinal, kAudit, kAuditFull };

/// Default check mode: the SALSA_CHECK environment variable when set
/// ("0"/"off" → kOff, "final" → kFinal, "1"/"on"/"audit" → kAudit,
/// "full" → kAuditFull), otherwise kFinal. `SALSA_CHECK=1 ctest` therefore
/// replays every allocation in the test suite under the (size-sampled)
/// auditor without a rebuild; SALSA_CHECK=full forces the exact
/// every-transaction audit regardless of design size.
CheckMode default_check_mode();

/// Default restart patience: the SALSA_RESTART_PATIENCE environment
/// variable when set ("0"/"off" → no early stop, a positive count → stop
/// after that many consecutive non-improving restarts), otherwise 0.
int default_restart_patience();

struct AllocatorOptions {
  ImproveParams improve;
  InitialOptions initial;
  /// Independent restarts (fresh initial allocation + search seed); the best
  /// result wins. Seed streams are SplitMix64-derived per restart
  /// (util/rng.h:derive_seed), so restart r's trajectory is a function of
  /// (user seeds, r) only — never of which thread ran it.
  int restarts = 1;
  /// Early restart stopping: stop launching restarts once `patience`
  /// consecutive restarts (in restart-index order) failed to improve the
  /// best cost; at least patience + 1 restarts always run. 0 = auto: the
  /// SALSA_RESTART_PATIENCE environment variable, else no early stop;
  /// negative = never stop early regardless of the environment. The stop
  /// index is a function of the restart outcomes in restart order alone —
  /// restarts are computed in thread-sized waves, and every outcome past
  /// the stop index is discarded before the best-of reduction — so results
  /// stay byte-identical for any thread count.
  int restart_patience = 0;
  /// Restart-level parallelism. Results are byte-identical for every thread
  /// count: each restart owns its seed streams and SearchEngine, and the
  /// best-of reduction (lowest cost, then lowest restart index) plus the
  /// stats accumulation run in restart order on the calling thread. Traced
  /// runs (improve.trace != nullptr) are forced sequential so the JSONL
  /// stream stays well-formed.
  Parallelism parallelism;
  /// When the constructive start is contiguous, first converge within the
  /// traditional move set, then let the extended moves strip interconnect
  /// from that allocation. Disable for the pure-extended-search ablation.
  bool warm_start_traditional = true;
  /// Speculative proposal batching *inside* each restart's engine
  /// (core/speculate.h): per sweep, k candidate moves are scored in
  /// parallel against a frozen snapshot and committed in proposal order.
  /// Byte-identical results for any width/thread count; defaults to the
  /// SALSA_SPECULATION environment variable, else off. This is copied into
  /// every restart's ImproveParams (overriding improve.speculation).
  SpeculationConfig speculation;
  /// Self-checking level (see CheckMode above). Defaults to the SALSA_CHECK
  /// environment variable, else kFinal.
  CheckMode checked = default_check_mode();
  /// Audit throttle under kAudit: fully audit every Nth transaction
  /// (AuditorOptions::every). 1 = every transaction.
  long audit_every = 1;
  /// When non-null, filled with one FNV-1a digest per restart (of that
  /// restart's improved binding), in restart order — the per-restart digest
  /// stream src/analysis/determinism.h compares across thread counts.
  std::vector<uint64_t>* restart_digests = nullptr;
};

struct AllocationResult {
  Binding binding;
  CostBreakdown cost;      ///< point-to-point cost before mux merging
  MuxMergeResult merging;  ///< greedy mux-merge outcome
  /// Accumulated over restarts: each restart's warm-start and main-phase
  /// stats are merged first, then the per-restart totals are summed in
  /// restart order (deterministic under any parallelism).
  ImproveStats stats;
};

/// Allocates the problem with the extended (SALSA) binding model.
AllocationResult allocate(const AllocProblem& prob,
                          const AllocatorOptions& opts = {});

}  // namespace salsa
