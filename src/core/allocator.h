// Top-level allocation API: constructive initial allocation followed by
// iterative improvement (with optional outer restarts — the paper notes
// multiple runs are sometimes needed due to the randomised search), then the
// mux-merging post-pass. This is the facade examples and benchmarks use.
#pragma once

#include "core/improver.h"
#include "core/initial.h"
#include "core/mux_merge.h"
#include "util/thread_pool.h"

namespace salsa {

struct AllocatorOptions {
  ImproveParams improve;
  InitialOptions initial;
  /// Independent restarts (fresh initial allocation + search seed); the best
  /// result wins. Seed streams are SplitMix64-derived per restart
  /// (util/rng.h:derive_seed), so restart r's trajectory is a function of
  /// (user seeds, r) only — never of which thread ran it.
  int restarts = 1;
  /// Restart-level parallelism. Results are byte-identical for every thread
  /// count: each restart owns its seed streams and SearchEngine, and the
  /// best-of reduction (lowest cost, then lowest restart index) plus the
  /// stats accumulation run in restart order on the calling thread. Traced
  /// runs (improve.trace != nullptr) are forced sequential so the JSONL
  /// stream stays well-formed.
  Parallelism parallelism;
  /// When the constructive start is contiguous, first converge within the
  /// traditional move set, then let the extended moves strip interconnect
  /// from that allocation. Disable for the pure-extended-search ablation.
  bool warm_start_traditional = true;
};

struct AllocationResult {
  Binding binding;
  CostBreakdown cost;      ///< point-to-point cost before mux merging
  MuxMergeResult merging;  ///< greedy mux-merge outcome
  /// Accumulated over restarts: each restart's warm-start and main-phase
  /// stats are merged first, then the per-restart totals are summed in
  /// restart order (deterministic under any parallelism).
  ImproveStats stats;
};

/// Allocates the problem with the extended (SALSA) binding model.
AllocationResult allocate(const AllocProblem& prob,
                          const AllocatorOptions& opts = {});

}  // namespace salsa
