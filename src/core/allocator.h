// Top-level allocation API: constructive initial allocation followed by
// iterative improvement (with optional outer restarts — the paper notes
// multiple runs are sometimes needed due to the randomised search), then the
// mux-merging post-pass. This is the facade examples and benchmarks use.
#pragma once

#include "core/improver.h"
#include "core/initial.h"
#include "core/mux_merge.h"

namespace salsa {

struct AllocatorOptions {
  ImproveParams improve;
  InitialOptions initial;
  /// Independent restarts (fresh initial allocation + search seed); the best
  /// result wins.
  int restarts = 1;
  /// When the constructive start is contiguous, first converge within the
  /// traditional move set, then let the extended moves strip interconnect
  /// from that allocation. Disable for the pure-extended-search ablation.
  bool warm_start_traditional = true;
};

struct AllocationResult {
  Binding binding;
  CostBreakdown cost;      ///< point-to-point cost before mux merging
  MuxMergeResult merging;  ///< greedy mux-merge outcome
  ImproveStats stats;      ///< accumulated over restarts
};

/// Allocates the problem with the extended (SALSA) binding model.
AllocationResult allocate(const AllocProblem& prob,
                          const AllocatorOptions& opts = {});

}  // namespace salsa
