#include "core/moves.h"

#include <algorithm>

#include "core/search_engine.h"
#include "util/bitplane.h"

namespace salsa {

const char* move_name(MoveKind k) {
  switch (k) {
    case MoveKind::kFuExchange: return "F1:fu-exchange";
    case MoveKind::kFuMove: return "F2:fu-move";
    case MoveKind::kOperandReverse: return "F3:operand-reverse";
    case MoveKind::kBindPass: return "F4:bind-pass-through";
    case MoveKind::kUnbindPass: return "F5:unbind-pass-through";
    case MoveKind::kSegExchange: return "R1:segment-exchange";
    case MoveKind::kSegMove: return "R2:segment-move";
    case MoveKind::kValExchange: return "R3:value-exchange";
    case MoveKind::kValMove: return "R4:value-move";
    case MoveKind::kValSplit: return "R5:value-split";
    case MoveKind::kValMerge: return "R6:value-merge";
    case MoveKind::kReadRetarget: return "R7:read-retarget";
  }
  return "?";
}

MoveConfig MoveConfig::salsa_default() {
  MoveConfig c;
  auto set = [&](MoveKind k, double w) { c.weight[static_cast<size_t>(k)] = w; };
  set(MoveKind::kFuExchange, 1.0);
  set(MoveKind::kFuMove, 1.0);
  set(MoveKind::kOperandReverse, 1.0);
  set(MoveKind::kBindPass, 0.8);
  set(MoveKind::kUnbindPass, 0.5);
  set(MoveKind::kSegExchange, 1.0);
  set(MoveKind::kSegMove, 1.0);
  set(MoveKind::kValExchange, 0.3);  // complex moves picked less often (§4)
  set(MoveKind::kValMove, 0.3);
  set(MoveKind::kValSplit, 0.5);
  set(MoveKind::kValMerge, 0.5);
  set(MoveKind::kReadRetarget, 0.7);
  return c;
}

MoveConfig MoveConfig::traditional() {
  MoveConfig c;
  auto set = [&](MoveKind k, double w) { c.weight[static_cast<size_t>(k)] = w; };
  set(MoveKind::kFuExchange, 1.0);
  set(MoveKind::kFuMove, 1.0);
  set(MoveKind::kOperandReverse, 1.0);
  set(MoveKind::kValExchange, 1.0);
  set(MoveKind::kValMove, 1.0);
  return c;
}

MoveConfig MoveConfig::no_pass_through() {
  MoveConfig c = salsa_default();
  c.weight[static_cast<size_t>(MoveKind::kBindPass)] = 0;
  c.weight[static_cast<size_t>(MoveKind::kUnbindPass)] = 0;
  return c;
}

MoveConfig MoveConfig::no_split() {
  MoveConfig c = salsa_default();
  c.weight[static_cast<size_t>(MoveKind::kValSplit)] = 0;
  c.weight[static_cast<size_t>(MoveKind::kValMerge)] = 0;
  c.weight[static_cast<size_t>(MoveKind::kReadRetarget)] = 0;
  return c;
}

MoveKind MoveConfig::pick(Rng& rng) const {
  if (total_weight_ < 0) {
    double t = 0;
    for (const double w : weight) t += w;
    total_weight_ = t;
  }
  return static_cast<MoveKind>(rng.weighted(weight, total_weight_));
}

namespace {

struct CellRef {
  int sid, seg, pos;
};

// Candidate lists are collected into thread_local scratch buffers:
// proposals run thousands of times per second on pool threads, and reusing
// the buffers keeps the hot path allocation-free. Contents are fully
// rewritten on every call, and each proposer holds at most one collected
// list at a time. Cell scans run in (sid, seg, pos)-lexicographic order —
// the candidate-order contract the engine's per-storage statistics
// (num_cells/num_vias/num_bare_transfers) prune against.

const Cell& cell_at(const Binding& b, const CellRef& cr) {
  return b.sto(cr.sid).cells[static_cast<size_t>(cr.seg)]
                            [static_cast<size_t>(cr.pos)];
}

Cell& mut_cell(StorageBinding& sb, const CellRef& cr) {
  return sb.cells[static_cast<size_t>(cr.seg)][static_cast<size_t>(cr.pos)];
}

// Register a storage's cells currently share if it is in contiguous
// single-register form; kInvalidId otherwise.
RegId single_reg_of(const StorageBinding& sb) {
  RegId reg = kInvalidId;
  for (const auto& seg : sb.cells) {
    if (seg.size() != 1) return kInvalidId;
    if (reg == kInvalidId) reg = seg[0].reg;
    if (seg[0].reg != reg) return kInvalidId;
  }
  return reg;
}

// Every proposer below reads the engine's binding and live occupancy for
// candidate selection and feasibility, and only touches (and then mutates)
// the footprint once success is certain — occupancy reads never follow a
// touch within one proposal.

bool move_fu_exchange(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Schedule& sched = b.prob().sched();
  const std::vector<NodeId>& ops = eng.operations();
  if (ops.size() < 2) return false;
  const Occupancy& occ = eng.occupancy();
  const NodeId a = ops[static_cast<size_t>(rng.uniform(static_cast<int>(ops.size())))];
  const FuId fa0 = b.op(a).fu;
  // Partners are the same-class ops on any other FU. Everything on fa0 —
  // `a` included — is excluded, so the count falls out of the engine's
  // per-FU op index, and the rank select returns the op a filtering scan
  // of the class list would have listed at that index: same candidate
  // set, same order, same single draw, no O(class) walk.
  const FuClass cls = eng.op_class(a);
  const int ncands =
      static_cast<int>(eng.ops_of_class(cls).size()) - eng.ops_on_fu(fa0);
  if (ncands == 0) return false;
  const NodeId c = eng.class_op_excluding_fu(cls, fa0, rng.uniform(ncands));
  const FuId fa = b.op(a).fu, fc = b.op(c).fu;
  auto window_ok = [&](NodeId n, FuId target, NodeId other) {
    const int oc = eng.op_occupancy(n);
    const int start = sched.start(n);
    // Word fast path: an all-free window needs no per-slot identity check;
    // the scalar loop only runs to see whether the busy slots are `other`'s.
    if (!occ.fu_busy.any_in_range(target, start, oc)) return true;
    for (int t = start; t < start + oc; ++t) {
      const int user =
          occ.fu_user[static_cast<size_t>(target)][static_cast<size_t>(t)];
      if (user != Occupancy::kFree && user != other) return false;
    }
    return true;
  };
  if (!window_ok(a, fc, c) || !window_ok(c, fa, a)) return false;
  eng.touch_op(a).fu = fc;
  eng.touch_op(c).fu = fa;
  return true;
}

bool move_fu_move(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Schedule& sched = b.prob().sched();
  const std::vector<NodeId>& ops = eng.operations();
  if (ops.empty()) return false;
  const Occupancy& occ = eng.occupancy();
  const NodeId a = ops[static_cast<size_t>(rng.uniform(static_cast<int>(ops.size())))];
  const FuId cur = b.op(a).fu;
  const int start = sched.start(a);
  const int oc = eng.op_occupancy(a);
  static thread_local std::vector<FuId> cands;
  cands.clear();
  // Whole-window feasibility is one masked word test per candidate FU.
  for (FuId f : eng.fus_of_class(eng.op_class(a))) {
    if (f == cur) continue;
    if (!occ.fu_busy.any_in_range(f, start, oc)) cands.push_back(f);
  }
  if (cands.empty()) return false;
  eng.touch_op(a).fu =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  return true;
}

bool move_operand_reverse(SearchEngine& eng, Rng& rng) {
  // Commutativity is CDFG-static; the engine's pre-filtered list is the
  // full scan's candidate list (same order), with no per-proposal walk.
  const std::vector<NodeId>& cands = eng.commutative_ops();
  if (cands.empty()) return false;
  const NodeId a =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  OpBind& ob = eng.touch_op(a);
  ob.swap = !ob.swap;
  return true;
}

bool move_bind_pass(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  // Bindable candidates are the direct inter-register transfers. The
  // engine's Fenwick over the per-storage transfer counts maps a uniform
  // draw to the owning storage; only that storage is walked for the
  // rank-within, in the same (seg, pos) order the global scan used — the
  // candidate ranking (and the single draw) is unchanged.
  const int total = eng.total_bare_transfers();
  if (total == 0) return false;
  int rem = 0;
  const int sid = eng.xfer_storage_at(rng.uniform(total), &rem);
  eng.prefetch_sto_txn(sid);
  const StorageBinding& sb = b.sto(sid);
  CellRef cr{sid, -1, -1};
  for (int seg = 1; cr.seg < 0 && seg < static_cast<int>(sb.cells.size());
       ++seg) {
    const auto& cells = sb.cells[static_cast<size_t>(seg)];
    for (int pos = 0; pos < static_cast<int>(cells.size()); ++pos) {
      const Cell& c = cells[static_cast<size_t>(pos)];
      if (c.via != kInvalidId) continue;
      const Cell& parent = sb.cells[static_cast<size_t>(seg) - 1]
                                   [static_cast<size_t>(c.parent)];
      if (parent.reg == c.reg) continue;
      if (rem-- == 0) {
        cr.seg = seg;
        cr.pos = pos;
        break;
      }
    }
  }
  SALSA_DCHECK(cr.seg > 0);
  const int tstep = lt.steps_of(cr.sid)[static_cast<size_t>(cr.seg - 1)];
  const Occupancy& occ = eng.occupancy();
  // Candidates = single-cycle pass-capable FUs (only those forward
  // combinationally) that are idle at tstep and whose output carries no
  // landing result there (relevant for pipelined units whose occupancy
  // ends before their delay). The static candidate mask ANDed against the
  // transposed busy row answers "idle candidates" in ceil(F/64) word ops
  // instead of one fu_busy row probe per candidate; both ascend in FU id,
  // so the k-th set bit of the mask is exactly the k-th entry the probe
  // loop pushed and the uniform pick lands on the same FU.
  const std::vector<uint64_t>& pmask = eng.single_cycle_pass_fu_mask();
  const int words = static_cast<int>(pmask.size());
  // salsa-lint: allow(thread-local-scratch-discipline) fully overwritten from pmask before any read
  static thread_local std::vector<uint64_t> free_fus;
  free_fus.resize(static_cast<size_t>(words));
  const uint64_t* busy = occ.fu_busy_t.row(tstep);
  for (int w = 0; w < words; ++w) free_fus[static_cast<size_t>(w)] =
      pmask[static_cast<size_t>(w)] & ~busy[w];
  for (NodeId n : eng.ops_finishing_at(tstep)) {
    const FuId f = b.op(n).fu;
    free_fus[static_cast<size_t>(f) >> 6] &= ~(uint64_t{1} << (f & 63));
  }
  const int nfree = popcount_words(free_fus.data(), words);
  if (nfree == 0) return false;
  mut_cell(eng.touch_sto(cr.sid, cr.seg, cr.seg), cr).via = nth_set_bit(
      free_fus.data(), static_cast<int>(b.prob().fus().size()),
      rng.uniform(nfree));
  return true;
}

bool move_unbind_pass(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  // Candidates are the via-routed cells; the via-count Fenwick selects the
  // owning storage and only it is walked, in the global scan's (seg, pos)
  // order.
  const int total = eng.total_vias();
  if (total == 0) return false;
  int rem = 0;
  const int sid = eng.via_storage_at(rng.uniform(total), &rem);
  eng.prefetch_sto_txn(sid);
  const StorageBinding& sb = b.sto(sid);
  for (int seg = 0; seg < static_cast<int>(sb.cells.size()); ++seg) {
    const auto& cells = sb.cells[static_cast<size_t>(seg)];
    for (int pos = 0; pos < static_cast<int>(cells.size()); ++pos)
      if (cells[static_cast<size_t>(pos)].via != kInvalidId && rem-- == 0) {
        mut_cell(eng.touch_sto(sid, seg, seg), {sid, seg, pos}).via =
            kInvalidId;
        return true;
      }
  }
  SALSA_DCHECK(false);  // the count said the rank exists
  return false;
}

bool move_seg_exchange(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const int L = b.prob().sched().length();
  const int step = rng.uniform(L);
  // The step's cell count (and the rank select below) comes from the
  // engine's per-step Fenwick over the schedule-static live list — the
  // same enumeration (live_at_step order, then position in the segment)
  // the materialized list gave, without building it.
  const int total = eng.live_cells_at(step);
  if (total < 2) return false;
  const int i = rng.uniform(total);
  int j = rng.uniform(total - 1);
  if (j >= i) ++j;
  auto cr_of = [&](int idx) {
    const auto [p, pos] = eng.live_cell_at(step, idx);
    const auto& [sid, seg] = eng.live_at_step(step)[static_cast<size_t>(p)];
    return CellRef{sid, seg, pos};
  };
  const CellRef ri = cr_of(i);
  const CellRef rj = cr_of(j);
  eng.prefetch_sto_txn(ri.sid);
  eng.prefetch_sto_txn(rj.sid);
  const RegId r1 = cell_at(b, ri).reg;
  const RegId r2 = cell_at(b, rj).reg;
  if (r1 == r2) return false;
  // Avoid duplicate cells within either storage's segment after the swap.
  auto dup = [&](const CellRef& cr, RegId incoming) {
    const auto& cells = b.sto(cr.sid).cells[static_cast<size_t>(cr.seg)];
    for (int pos = 0; pos < static_cast<int>(cells.size()); ++pos)
      if (pos != cr.pos && cells[static_cast<size_t>(pos)].reg == incoming)
        return true;
    return false;
  };
  if (dup(ri, r2) || dup(rj, r1)) return false;
  mut_cell(eng.touch_sto(ri.sid, ri.seg, ri.seg), ri).reg = r2;
  mut_cell(eng.touch_sto(rj.sid, rj.seg, rj.seg), rj).reg = r1;
  return true;
}

bool move_seg_move(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  // Every cell is a candidate, so map a uniform draw through the engine's
  // per-storage cell counts to the cell at that index of the
  // (sid, seg, pos)-lexicographic enumeration — the same pick a
  // materialized list would give, without walking every storage.
  const int total = eng.total_cells();
  if (total == 0) return false;
  int idx = 0;
  const int sid = eng.cell_storage_at(rng.uniform(total), &idx);
  eng.prefetch_sto_txn(sid);
  const int seg = eng.seg_of_cell_rank(sid, &idx);
  const CellRef cr{sid, seg, idx};
  const int step = lt.steps_of(cr.sid)[static_cast<size_t>(cr.seg)];
  const Occupancy& occ = eng.occupancy();
  // Free registers at the step, straight off the transposed busy plane:
  // the count is one popcount over the step's row and the pick is the
  // rank-th clear bit — ascending register order, exactly the list the
  // per-register probe loop built.
  const int nregs = b.prob().num_regs();
  const int nfree = nregs - occ.reg_busy_t.popcount_row(step);
  if (nfree == 0) return false;
  mut_cell(eng.touch_sto(cr.sid, cr.seg, cr.seg), cr).reg =
      nth_clear_bit(occ.reg_busy_t.row(step), nregs, rng.uniform(nfree));
  return true;
}

bool move_val_exchange(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int n = lt.num_storages();
  if (n < 2) return false;
  const int s1 = rng.uniform(n);
  int s2 = rng.uniform(n - 1);
  if (s2 >= s1) ++s2;
  const RegId r1 = single_reg_of(b.sto(s1));
  const RegId r2 = single_reg_of(b.sto(s2));
  if (r1 == kInvalidId || r2 == kInvalidId || r1 == r2) return false;
  const Occupancy& occ = eng.occupancy();
  const int stride = lt.live_masks().stride();
  // Both storages are in contiguous single-register form, so the target
  // register's slots over `sid`'s live arc are held by `other` exactly on
  // `other`'s live mask: "free or held by the other" collapses to one
  // three-way word test — busy(target) ∧ live(sid) ∧ ¬live(other) empty.
  auto fits = [&](int sid, RegId target, int other) {
    return !words_and_andnot_any(occ.reg_busy.row(target), lt.live_row(sid),
                                 lt.live_row(other), stride);
  };
  if (!fits(s1, r2, s2) || !fits(s2, r1, s1)) return false;
  for (auto& seg : eng.touch_sto(s1).cells) seg[0].reg = r2;
  for (auto& seg : eng.touch_sto(s2).cells) seg[0].reg = r1;
  return true;
}

bool move_val_move(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int n = lt.num_storages();
  if (n == 0) return false;
  const int sid = rng.uniform(n);
  eng.prefetch_sto_txn(sid);
  const Occupancy& occ = eng.occupancy();
  const RegId cur = single_reg_of(b.sto(sid));
  const uint64_t* live = lt.live_row(sid);
  const int stride = lt.live_masks().stride();
  RegId r = kInvalidId;
  if (cur != kInvalidId) {
    // Contiguous single-register form: a candidate must be free at every
    // live step, so OR the transposed busy rows of the storage's live
    // steps into one register mask — O(len x R/64) words instead of an
    // AND-any probe per register — and draw a clear bit. `cur` is busy on
    // its own arc, so it falls out of the mask automatically: same
    // candidate set, same ascending order as the per-register loop. The
    // mask lives in the engine's bound batch scratch when one is present
    // (the speculation pipeline's contiguous per-candidate arena), with
    // thread-local scratch as the sequential fallback; accumulation and
    // reduction run through the word kernels of util/bitplane.h.
    const std::vector<int>& steps = lt.steps_of(sid);
    const BitPlane& bt = occ.reg_busy_t;
    const int words = bt.stride();
    static thread_local std::vector<uint64_t> busy_union_tl;
    uint64_t* busy_union = eng.batch_scratch(words);
    if (busy_union != nullptr) {
      std::fill_n(busy_union, static_cast<size_t>(words), 0);
    } else {
      busy_union_tl.assign(static_cast<size_t>(words), 0);
      busy_union = busy_union_tl.data();
    }
    for (const int t : steps) words_or_accumulate(busy_union, bt.row(t), words);
    const int busy = popcount_words(busy_union, words);
    const int nregs = b.prob().num_regs();
    const int nfree = nregs - busy;
    if (nfree == 0) return false;
    r = nth_clear_bit(busy_union, nregs, rng.uniform(nfree));
  } else if (lt.storage(sid).len <= b.prob().sched().length()) {
    // General (split/multi-register) form, transposed: eligibility is
    // busy(r) ∧ live(sid) ∧ ¬own(r) empty, so OR per-step (busy ∧ ¬own)
    // register words into one mask — O(len x R/64) like the contiguous
    // form instead of a row test per register. Own bits are cleared per
    // step before accumulating (each live step is distinct when
    // len <= L, so the per-step own set equals the per-(reg, step) own
    // plane the row tests consulted): same candidate set, same ascending
    // order, same single draw.
    const std::vector<int>& steps = lt.steps_of(sid);
    const StorageBinding& sb = b.sto(sid);
    const BitPlane& bt = occ.reg_busy_t;
    const int words = bt.stride();
    static thread_local std::vector<uint64_t> busy_union_tl;
    uint64_t* busy_union = eng.batch_scratch(words);
    if (busy_union != nullptr) {
      std::fill_n(busy_union, static_cast<size_t>(words), 0);
    } else {
      busy_union_tl.assign(static_cast<size_t>(words), 0);
      busy_union = busy_union_tl.data();
    }
    // salsa-lint: allow(thread-local-scratch-discipline) every word is copy_n-overwritten from the busy row before any read
    static thread_local std::vector<uint64_t> step_tmp;
    step_tmp.resize(static_cast<size_t>(words));
    for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
      const uint64_t* row = bt.row(steps[seg]);
      std::copy_n(row, static_cast<size_t>(words), step_tmp.data());
      for (const Cell& c : sb.cells[seg])
        step_tmp[static_cast<size_t>(c.reg) >> 6] &=
            ~(uint64_t{1} << (static_cast<unsigned>(c.reg) & 63u));
      words_or_accumulate(busy_union, step_tmp.data(), words);
    }
    const int nregs = b.prob().num_regs();
    const int nfree = nregs - popcount_words(busy_union, words);
    if (nfree == 0) return false;
    r = nth_clear_bit(busy_union, nregs, rng.uniform(nfree));
  } else {
    // Wrapped lifetime (len > L): several segments can share a control
    // step, and the own mask must union across them before any step's
    // test — keep the per-register row walk for this rare shape.
    static thread_local BitPlane own;
    own.resize(b.prob().num_regs(), b.prob().sched().length());
    const std::vector<int>& steps = lt.steps_of(sid);
    const StorageBinding& sb = b.sto(sid);
    for (size_t seg = 0; seg < sb.cells.size(); ++seg)
      for (const Cell& c : sb.cells[seg]) own.set(c.reg, steps[seg]);
    static thread_local std::vector<RegId> regs;
    regs.clear();
    for (RegId cand = 0; cand < b.prob().num_regs(); ++cand)
      if (!words_and_andnot_any(occ.reg_busy.row(cand), live, own.row(cand),
                                stride))
        regs.push_back(cand);
    if (regs.empty()) return false;
    r = regs[static_cast<size_t>(rng.uniform(static_cast<int>(regs.size())))];
  }
  StorageBinding& sb = eng.touch_sto(sid);
  for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
    sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
  }
  std::fill(sb.read_cell.begin(), sb.read_cell.end(), 0);
  return true;
}

bool move_val_split(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int n = lt.num_storages();
  if (n == 0) return false;
  const int sid = rng.uniform(n);
  eng.prefetch_sto_txn(sid);
  const Storage& s = lt.storage(sid);
  const int seg = rng.uniform(s.len);
  const int step = lt.steps_of(sid)[static_cast<size_t>(seg)];
  const Occupancy& occ = eng.occupancy();
  // Free registers at the step off the transposed busy plane (see
  // move_seg_move) — same count, same ascending order, one popcount.
  const int nregs = b.prob().num_regs();
  const int nfree = nregs - occ.reg_busy_t.popcount_row(step);
  if (nfree == 0) return false;
  const RegId r =
      nth_clear_bit(occ.reg_busy_t.row(step), nregs, rng.uniform(nfree));
  Cell c;
  c.reg = r;
  c.parent =
      seg == 0 ? -1
               : rng.uniform(static_cast<int>(
                     b.sto(sid).cells[static_cast<size_t>(seg) - 1].size()));
  StorageBinding& sb = eng.touch_sto(sid, seg, seg);
  sb.cells[static_cast<size_t>(seg)].push_back(c);
  const int new_pos =
      static_cast<int>(sb.cells[static_cast<size_t>(seg)].size()) - 1;
  // Give reads at this segment a chance to use the copy right away.
  for (size_t ri = 0; ri < s.reads.size(); ++ri)
    if (s.reads[ri].seg == seg && rng.chance(0.5)) sb.read_cell[ri] = new_pos;
  return true;
}

bool move_val_merge(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  // Candidates are leaf cells of multi-cell segments (no child in the next
  // segment). The engine maintains the per-storage leaf counts with its
  // other candidate statistics, so the Fenwick select lands on the owning
  // storage and only it is walked — the same (seg, pos)-ordered predicate
  // scan the global loop applied, at O(storage) instead of O(design).
  const int total = eng.total_leaves();
  if (total == 0) return false;
  int rem = 0;
  const int msid = eng.leaf_storage_at(rng.uniform(total), &rem);
  eng.prefetch_sto_txn(msid);
  const StorageBinding& msb = b.sto(msid);
  CellRef cr{msid, -1, -1};
  for (int seg = 0; cr.seg < 0 && seg < static_cast<int>(msb.cells.size());
       ++seg) {
    const auto& cells = msb.cells[static_cast<size_t>(seg)];
    if (cells.size() < 2) continue;
    for (int pos = 0; pos < static_cast<int>(cells.size()); ++pos) {
      bool leaf = true;
      if (seg + 1 < static_cast<int>(msb.cells.size())) {
        for (const Cell& child : msb.cells[static_cast<size_t>(seg) + 1])
          if (child.parent == pos) {
            leaf = false;
            break;
          }
      }
      if (leaf && rem-- == 0) {
        cr.seg = seg;
        cr.pos = pos;
        break;
      }
    }
  }
  SALSA_DCHECK(cr.seg >= 0);
  StorageBinding& sb = eng.touch_sto(cr.sid, cr.seg, cr.seg + 1);
  auto& cells = sb.cells[static_cast<size_t>(cr.seg)];
  cells.erase(cells.begin() + cr.pos);
  // Fix children parent indices and read targets shifted by the erase.
  if (cr.seg + 1 < static_cast<int>(sb.cells.size()))
    for (Cell& child : sb.cells[static_cast<size_t>(cr.seg) + 1])
      if (child.parent > cr.pos) --child.parent;
  const Storage& s = lt.storage(cr.sid);
  for (size_t ri = 0; ri < s.reads.size(); ++ri) {
    if (s.reads[ri].seg != cr.seg) continue;
    if (sb.read_cell[ri] == cr.pos)
      sb.read_cell[ri] = rng.uniform(static_cast<int>(cells.size()));
    else if (sb.read_cell[ri] > cr.pos)
      --sb.read_cell[ri];
  }
  return true;
}

bool move_read_retarget(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  // Candidates are the reads whose segment offers >= 2 cells ("fat"
  // reads); the engine's per-storage fat-read counts select the owning
  // storage and only its read list is scanned for the rank-within — the
  // same (sid, read)-ordered enumeration as the global scan.
  const int total = eng.total_fat_reads();
  if (total == 0) return false;
  int rem = 0;
  const int sid = eng.fat_read_storage_at(rng.uniform(total), &rem);
  eng.prefetch_sto_txn(sid);
  const Storage& s = lt.storage(sid);
  const StorageBinding& sbr = b.sto(sid);
  int ri = -1;
  for (size_t k = 0; k < s.reads.size(); ++k)
    if (sbr.cells[static_cast<size_t>(s.reads[k].seg)].size() >= 2 &&
        rem-- == 0) {
      ri = static_cast<int>(k);
      break;
    }
  SALSA_DCHECK(ri >= 0);
  const int ncells = static_cast<int>(
      b.sto(sid).cells[static_cast<size_t>(s.reads[static_cast<size_t>(ri)].seg)]
          .size());
  int pos = rng.uniform(ncells - 1);
  if (pos >= b.sto(sid).read_cell[static_cast<size_t>(ri)]) ++pos;
  eng.touch_sto_reads(sid).read_cell[static_cast<size_t>(ri)] = pos;
  return true;
}

}  // namespace

namespace detail {

bool dispatch_move(SearchEngine& eng, MoveKind kind, Rng& rng) {
  switch (kind) {
    case MoveKind::kFuExchange: return move_fu_exchange(eng, rng);
    case MoveKind::kFuMove: return move_fu_move(eng, rng);
    case MoveKind::kOperandReverse: return move_operand_reverse(eng, rng);
    case MoveKind::kBindPass: return move_bind_pass(eng, rng);
    case MoveKind::kUnbindPass: return move_unbind_pass(eng, rng);
    case MoveKind::kSegExchange: return move_seg_exchange(eng, rng);
    case MoveKind::kSegMove: return move_seg_move(eng, rng);
    case MoveKind::kValExchange: return move_val_exchange(eng, rng);
    case MoveKind::kValMove: return move_val_move(eng, rng);
    case MoveKind::kValSplit: return move_val_split(eng, rng);
    case MoveKind::kValMerge: return move_val_merge(eng, rng);
    case MoveKind::kReadRetarget: return move_read_retarget(eng, rng);
  }
  return false;
}

}  // namespace detail

bool apply_random_move(Binding& b, MoveKind kind, Rng& rng) {
  SearchEngine eng(b);
  if (!eng.propose(kind, rng)) return false;
  eng.commit();
  b = eng.binding();
  return true;
}

}  // namespace salsa
