#include "core/moves.h"

#include <algorithm>

#include "core/search_engine.h"

namespace salsa {

const char* move_name(MoveKind k) {
  switch (k) {
    case MoveKind::kFuExchange: return "F1:fu-exchange";
    case MoveKind::kFuMove: return "F2:fu-move";
    case MoveKind::kOperandReverse: return "F3:operand-reverse";
    case MoveKind::kBindPass: return "F4:bind-pass-through";
    case MoveKind::kUnbindPass: return "F5:unbind-pass-through";
    case MoveKind::kSegExchange: return "R1:segment-exchange";
    case MoveKind::kSegMove: return "R2:segment-move";
    case MoveKind::kValExchange: return "R3:value-exchange";
    case MoveKind::kValMove: return "R4:value-move";
    case MoveKind::kValSplit: return "R5:value-split";
    case MoveKind::kValMerge: return "R6:value-merge";
    case MoveKind::kReadRetarget: return "R7:read-retarget";
  }
  return "?";
}

MoveConfig MoveConfig::salsa_default() {
  MoveConfig c;
  auto set = [&](MoveKind k, double w) { c.weight[static_cast<size_t>(k)] = w; };
  set(MoveKind::kFuExchange, 1.0);
  set(MoveKind::kFuMove, 1.0);
  set(MoveKind::kOperandReverse, 1.0);
  set(MoveKind::kBindPass, 0.8);
  set(MoveKind::kUnbindPass, 0.5);
  set(MoveKind::kSegExchange, 1.0);
  set(MoveKind::kSegMove, 1.0);
  set(MoveKind::kValExchange, 0.3);  // complex moves picked less often (§4)
  set(MoveKind::kValMove, 0.3);
  set(MoveKind::kValSplit, 0.5);
  set(MoveKind::kValMerge, 0.5);
  set(MoveKind::kReadRetarget, 0.7);
  return c;
}

MoveConfig MoveConfig::traditional() {
  MoveConfig c;
  auto set = [&](MoveKind k, double w) { c.weight[static_cast<size_t>(k)] = w; };
  set(MoveKind::kFuExchange, 1.0);
  set(MoveKind::kFuMove, 1.0);
  set(MoveKind::kOperandReverse, 1.0);
  set(MoveKind::kValExchange, 1.0);
  set(MoveKind::kValMove, 1.0);
  return c;
}

MoveConfig MoveConfig::no_pass_through() {
  MoveConfig c = salsa_default();
  c.weight[static_cast<size_t>(MoveKind::kBindPass)] = 0;
  c.weight[static_cast<size_t>(MoveKind::kUnbindPass)] = 0;
  return c;
}

MoveConfig MoveConfig::no_split() {
  MoveConfig c = salsa_default();
  c.weight[static_cast<size_t>(MoveKind::kValSplit)] = 0;
  c.weight[static_cast<size_t>(MoveKind::kValMerge)] = 0;
  c.weight[static_cast<size_t>(MoveKind::kReadRetarget)] = 0;
  return c;
}

MoveKind MoveConfig::pick(Rng& rng) const {
  return static_cast<MoveKind>(rng.weighted(weight));
}

namespace {

struct CellRef {
  int sid, seg, pos;
};

template <typename Pred>
std::vector<CellRef> collect_cells(const Binding& b, Pred pred) {
  std::vector<CellRef> out;
  const Lifetimes& lt = b.prob().lifetimes();
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const StorageBinding& sb = b.sto(sid);
    for (int seg = 0; seg < static_cast<int>(sb.cells.size()); ++seg)
      for (int pos = 0;
           pos < static_cast<int>(sb.cells[static_cast<size_t>(seg)].size());
           ++pos)
        if (pred(sid, seg, sb.cells[static_cast<size_t>(seg)]
                               [static_cast<size_t>(pos)]))
          out.push_back({sid, seg, pos});
  }
  return out;
}

const Cell& cell_at(const Binding& b, const CellRef& cr) {
  return b.sto(cr.sid).cells[static_cast<size_t>(cr.seg)]
                            [static_cast<size_t>(cr.pos)];
}

Cell& mut_cell(StorageBinding& sb, const CellRef& cr) {
  return sb.cells[static_cast<size_t>(cr.seg)][static_cast<size_t>(cr.pos)];
}

// Register a storage's cells currently share if it is in contiguous
// single-register form; kInvalidId otherwise.
RegId single_reg_of(const StorageBinding& sb) {
  RegId reg = kInvalidId;
  for (const auto& seg : sb.cells) {
    if (seg.size() != 1) return kInvalidId;
    if (reg == kInvalidId) reg = seg[0].reg;
    if (seg[0].reg != reg) return kInvalidId;
  }
  return reg;
}

// Every proposer below reads the engine's binding and live occupancy for
// candidate selection and feasibility, and only touches (and then mutates)
// the footprint once success is certain — occupancy reads never follow a
// touch within one proposal.

bool move_fu_exchange(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Cdfg& g = b.prob().cdfg();
  const Schedule& sched = b.prob().sched();
  const auto ops = g.operations();
  if (ops.size() < 2) return false;
  const Occupancy& occ = eng.occupancy();
  const NodeId a = ops[static_cast<size_t>(rng.uniform(static_cast<int>(ops.size())))];
  std::vector<NodeId> cands;
  for (NodeId o : ops)
    if (o != a && fu_class_of(g.node(o).kind) == fu_class_of(g.node(a).kind) &&
        b.op(o).fu != b.op(a).fu)
      cands.push_back(o);
  if (cands.empty()) return false;
  const NodeId c =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  const FuId fa = b.op(a).fu, fc = b.op(c).fu;
  auto window_ok = [&](NodeId n, FuId target, NodeId other) {
    const int oc = sched.hw().occupancy(g.node(n).kind);
    for (int t = sched.start(n); t < sched.start(n) + oc; ++t) {
      const int user =
          occ.fu_user[static_cast<size_t>(target)][static_cast<size_t>(t)];
      if (user != Occupancy::kFree && user != other) return false;
    }
    return true;
  };
  if (!window_ok(a, fc, c) || !window_ok(c, fa, a)) return false;
  eng.touch_op(a).fu = fc;
  eng.touch_op(c).fu = fa;
  return true;
}

bool move_fu_move(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Cdfg& g = b.prob().cdfg();
  const Schedule& sched = b.prob().sched();
  const auto ops = g.operations();
  if (ops.empty()) return false;
  const Occupancy& occ = eng.occupancy();
  const NodeId a = ops[static_cast<size_t>(rng.uniform(static_cast<int>(ops.size())))];
  std::vector<FuId> cands;
  for (FuId f : b.prob().fus().of_class(fu_class_of(g.node(a).kind))) {
    if (f == b.op(a).fu) continue;
    bool free = true;
    const int oc = sched.hw().occupancy(g.node(a).kind);
    for (int t = sched.start(a); t < sched.start(a) + oc; ++t)
      if (!occ.fu_free(f, t)) {
        free = false;
        break;
      }
    if (free) cands.push_back(f);
  }
  if (cands.empty()) return false;
  eng.touch_op(a).fu =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  return true;
}

bool move_operand_reverse(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Cdfg& g = b.prob().cdfg();
  std::vector<NodeId> cands;
  for (NodeId n : g.operations())
    if (is_commutative(g.node(n).kind)) cands.push_back(n);
  if (cands.empty()) return false;
  const NodeId a =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  OpBind& ob = eng.touch_op(a);
  ob.swap = !ob.swap;
  return true;
}

bool move_bind_pass(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int L = b.prob().sched().length();
  auto cands = collect_cells(b, [&](int sid, int seg, const Cell& c) {
    if (seg == 0 || c.via != kInvalidId) return false;
    const Cell& parent = b.sto(sid).cells[static_cast<size_t>(seg) - 1]
                                         [static_cast<size_t>(c.parent)];
    return parent.reg != c.reg;
  });
  if (cands.empty()) return false;
  const CellRef cr =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  const int tstep = (lt.storage(cr.sid).birth + cr.seg - 1) % L;
  const Occupancy& occ = eng.occupancy();
  // An FU whose output carries a landing result at tstep cannot pass
  // (relevant for pipelined units whose occupancy ends before their delay).
  const Cdfg& g = b.prob().cdfg();
  const Schedule& sched = b.prob().sched();
  std::vector<bool> out_busy(static_cast<size_t>(b.prob().fus().size()), false);
  for (NodeId n : g.operations()) {
    const int fin = sched.start(n) + sched.hw().delay(g.node(n).kind) - 1;
    if (fin % L == tstep) out_busy[static_cast<size_t>(b.op(n).fu)] = true;
  }
  std::vector<FuId> fus;
  for (FuId f : b.prob().fus().pass_capable()) {
    // Only single-cycle FU classes can forward combinationally.
    const OpKind probe = b.prob().fus().fu(f).cls == FuClass::kAlu
                             ? OpKind::kAdd
                             : OpKind::kMul;
    if (sched.hw().delay(probe) != 1) continue;
    if (occ.fu_free(f, tstep) && !out_busy[static_cast<size_t>(f)])
      fus.push_back(f);
  }
  if (fus.empty()) return false;
  mut_cell(eng.touch_sto(cr.sid), cr).via =
      fus[static_cast<size_t>(rng.uniform(static_cast<int>(fus.size())))];
  return true;
}

bool move_unbind_pass(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  auto cands = collect_cells(
      b, [](int, int, const Cell& c) { return c.via != kInvalidId; });
  if (cands.empty()) return false;
  const CellRef cr =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  mut_cell(eng.touch_sto(cr.sid), cr).via = kInvalidId;
  return true;
}

bool move_seg_exchange(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int L = b.prob().sched().length();
  const int step = rng.uniform(L);
  std::vector<CellRef> here;
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const int seg = lt.seg_at_step(sid, step);
    if (seg < 0) continue;
    const auto& cells = b.sto(sid).cells[static_cast<size_t>(seg)];
    for (int pos = 0; pos < static_cast<int>(cells.size()); ++pos)
      here.push_back({sid, seg, pos});
  }
  if (here.size() < 2) return false;
  const int i = rng.uniform(static_cast<int>(here.size()));
  int j = rng.uniform(static_cast<int>(here.size()) - 1);
  if (j >= i) ++j;
  const CellRef& ri = here[static_cast<size_t>(i)];
  const CellRef& rj = here[static_cast<size_t>(j)];
  const RegId r1 = cell_at(b, ri).reg;
  const RegId r2 = cell_at(b, rj).reg;
  if (r1 == r2) return false;
  // Avoid duplicate cells within either storage's segment after the swap.
  auto dup = [&](const CellRef& cr, RegId incoming) {
    const auto& cells = b.sto(cr.sid).cells[static_cast<size_t>(cr.seg)];
    for (int pos = 0; pos < static_cast<int>(cells.size()); ++pos)
      if (pos != cr.pos && cells[static_cast<size_t>(pos)].reg == incoming)
        return true;
    return false;
  };
  if (dup(ri, r2) || dup(rj, r1)) return false;
  mut_cell(eng.touch_sto(ri.sid), ri).reg = r2;
  mut_cell(eng.touch_sto(rj.sid), rj).reg = r1;
  return true;
}

bool move_seg_move(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int L = b.prob().sched().length();
  auto cands = collect_cells(b, [](int, int, const Cell&) { return true; });
  if (cands.empty()) return false;
  const CellRef cr =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  const int step = (lt.storage(cr.sid).birth + cr.seg) % L;
  const Occupancy& occ = eng.occupancy();
  std::vector<RegId> regs;
  for (RegId r = 0; r < b.prob().num_regs(); ++r)
    if (occ.reg_free(r, step)) regs.push_back(r);
  if (regs.empty()) return false;
  mut_cell(eng.touch_sto(cr.sid), cr).reg =
      regs[static_cast<size_t>(rng.uniform(static_cast<int>(regs.size())))];
  return true;
}

bool move_val_exchange(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int L = b.prob().sched().length();
  const int n = lt.num_storages();
  if (n < 2) return false;
  const int s1 = rng.uniform(n);
  int s2 = rng.uniform(n - 1);
  if (s2 >= s1) ++s2;
  const RegId r1 = single_reg_of(b.sto(s1));
  const RegId r2 = single_reg_of(b.sto(s2));
  if (r1 == kInvalidId || r2 == kInvalidId || r1 == r2) return false;
  const Occupancy& occ = eng.occupancy();
  auto fits = [&](int sid, RegId target, int other) {
    const Storage& s = lt.storage(sid);
    for (int seg = 0; seg < s.len; ++seg) {
      const int user = occ.reg_sto[static_cast<size_t>(target)]
                                  [static_cast<size_t>(s.step_at(seg, L))];
      if (user != -1 && user != other) return false;
    }
    return true;
  };
  if (!fits(s1, r2, s2) || !fits(s2, r1, s1)) return false;
  for (auto& seg : eng.touch_sto(s1).cells) seg[0].reg = r2;
  for (auto& seg : eng.touch_sto(s2).cells) seg[0].reg = r1;
  return true;
}

bool move_val_move(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int L = b.prob().sched().length();
  const int n = lt.num_storages();
  if (n == 0) return false;
  const int sid = rng.uniform(n);
  const Storage& s = lt.storage(sid);
  const Occupancy& occ = eng.occupancy();
  std::vector<RegId> regs;
  for (RegId r = 0; r < b.prob().num_regs(); ++r) {
    bool ok = true;
    for (int seg = 0; seg < s.len && ok; ++seg) {
      const int user = occ.reg_sto[static_cast<size_t>(r)]
                                  [static_cast<size_t>(s.step_at(seg, L))];
      ok = user == -1 || user == sid;
    }
    if (ok && single_reg_of(b.sto(sid)) != r) regs.push_back(r);
  }
  if (regs.empty()) return false;
  const RegId r =
      regs[static_cast<size_t>(rng.uniform(static_cast<int>(regs.size())))];
  StorageBinding& sb = eng.touch_sto(sid);
  for (size_t seg = 0; seg < sb.cells.size(); ++seg) {
    sb.cells[seg].assign(1, Cell{r, seg == 0 ? -1 : 0, kInvalidId});
  }
  std::fill(sb.read_cell.begin(), sb.read_cell.end(), 0);
  return true;
}

bool move_val_split(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  const int L = b.prob().sched().length();
  const int n = lt.num_storages();
  if (n == 0) return false;
  const int sid = rng.uniform(n);
  const Storage& s = lt.storage(sid);
  const int seg = rng.uniform(s.len);
  const int step = s.step_at(seg, L);
  const Occupancy& occ = eng.occupancy();
  std::vector<RegId> regs;
  for (RegId r = 0; r < b.prob().num_regs(); ++r)
    if (occ.reg_free(r, step)) regs.push_back(r);
  if (regs.empty()) return false;
  const RegId r =
      regs[static_cast<size_t>(rng.uniform(static_cast<int>(regs.size())))];
  Cell c;
  c.reg = r;
  c.parent =
      seg == 0 ? -1
               : rng.uniform(static_cast<int>(
                     b.sto(sid).cells[static_cast<size_t>(seg) - 1].size()));
  StorageBinding& sb = eng.touch_sto(sid);
  sb.cells[static_cast<size_t>(seg)].push_back(c);
  const int new_pos =
      static_cast<int>(sb.cells[static_cast<size_t>(seg)].size()) - 1;
  // Give reads at this segment a chance to use the copy right away.
  for (size_t ri = 0; ri < s.reads.size(); ++ri)
    if (s.reads[ri].seg == seg && rng.chance(0.5)) sb.read_cell[ri] = new_pos;
  return true;
}

bool move_val_merge(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  auto removable = collect_cells(b, [&](int sid, int seg, const Cell&) {
    const StorageBinding& sb = b.sto(sid);
    if (sb.cells[static_cast<size_t>(seg)].size() < 2) return false;
    return true;
  });
  // Filter to leaf cells (no child in the next segment).
  std::vector<CellRef> leaves;
  for (const CellRef& cr : removable) {
    const StorageBinding& sb = b.sto(cr.sid);
    bool leaf = true;
    if (cr.seg + 1 < static_cast<int>(sb.cells.size())) {
      for (const Cell& child : sb.cells[static_cast<size_t>(cr.seg) + 1])
        if (child.parent == cr.pos) {
          leaf = false;
          break;
        }
    }
    if (leaf) leaves.push_back(cr);
  }
  if (leaves.empty()) return false;
  const CellRef cr =
      leaves[static_cast<size_t>(rng.uniform(static_cast<int>(leaves.size())))];
  StorageBinding& sb = eng.touch_sto(cr.sid);
  auto& cells = sb.cells[static_cast<size_t>(cr.seg)];
  cells.erase(cells.begin() + cr.pos);
  // Fix children parent indices and read targets shifted by the erase.
  if (cr.seg + 1 < static_cast<int>(sb.cells.size()))
    for (Cell& child : sb.cells[static_cast<size_t>(cr.seg) + 1])
      if (child.parent > cr.pos) --child.parent;
  const Storage& s = b.prob().lifetimes().storage(cr.sid);
  for (size_t ri = 0; ri < s.reads.size(); ++ri) {
    if (s.reads[ri].seg != cr.seg) continue;
    if (sb.read_cell[ri] == cr.pos)
      sb.read_cell[ri] = rng.uniform(static_cast<int>(cells.size()));
    else if (sb.read_cell[ri] > cr.pos)
      --sb.read_cell[ri];
  }
  return true;
}

bool move_read_retarget(SearchEngine& eng, Rng& rng) {
  const Binding& b = eng.binding();
  const Lifetimes& lt = b.prob().lifetimes();
  std::vector<std::pair<int, int>> cands;  // (sid, read index)
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    const StorageBinding& sb = b.sto(sid);
    for (size_t ri = 0; ri < s.reads.size(); ++ri)
      if (sb.cells[static_cast<size_t>(s.reads[ri].seg)].size() >= 2)
        cands.emplace_back(sid, static_cast<int>(ri));
  }
  if (cands.empty()) return false;
  const auto [sid, ri] =
      cands[static_cast<size_t>(rng.uniform(static_cast<int>(cands.size())))];
  const Storage& s = lt.storage(sid);
  const int ncells = static_cast<int>(
      b.sto(sid).cells[static_cast<size_t>(s.reads[static_cast<size_t>(ri)].seg)]
          .size());
  int pos = rng.uniform(ncells - 1);
  if (pos >= b.sto(sid).read_cell[static_cast<size_t>(ri)]) ++pos;
  eng.touch_sto(sid).read_cell[static_cast<size_t>(ri)] = pos;
  return true;
}

}  // namespace

namespace detail {

bool dispatch_move(SearchEngine& eng, MoveKind kind, Rng& rng) {
  switch (kind) {
    case MoveKind::kFuExchange: return move_fu_exchange(eng, rng);
    case MoveKind::kFuMove: return move_fu_move(eng, rng);
    case MoveKind::kOperandReverse: return move_operand_reverse(eng, rng);
    case MoveKind::kBindPass: return move_bind_pass(eng, rng);
    case MoveKind::kUnbindPass: return move_unbind_pass(eng, rng);
    case MoveKind::kSegExchange: return move_seg_exchange(eng, rng);
    case MoveKind::kSegMove: return move_seg_move(eng, rng);
    case MoveKind::kValExchange: return move_val_exchange(eng, rng);
    case MoveKind::kValMove: return move_val_move(eng, rng);
    case MoveKind::kValSplit: return move_val_split(eng, rng);
    case MoveKind::kValMerge: return move_val_merge(eng, rng);
    case MoveKind::kReadRetarget: return move_read_retarget(eng, rng);
  }
  return false;
}

}  // namespace detail

bool apply_random_move(Binding& b, MoveKind kind, Rng& rng) {
  SearchEngine eng(b);
  if (!eng.propose(kind, rng)) return false;
  eng.commit();
  b = eng.binding();
  return true;
}

}  // namespace salsa
