// The paper's iterative improvement scheme (Section 4): a sequence of
// trials, each admitting a fixed number of uphill moves at its beginning
// (to escape the current neighbourhood) and accepting only downhill moves
// afterwards. The best allocation seen is recorded; the search stops after
// a number of improvement-free trials or a trial cap.
//
// Like the annealer and the iterated local search, this is a thin
// acceptance policy over core/search_engine.h: moves are proposed,
// committed or rolled back in place, with the cost delta computed
// incrementally — no per-candidate Binding copies, no full cost
// evaluations inside the move loop.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "core/binding.h"
#include "core/cost.h"
#include "core/moves.h"
#include "core/speculate.h"

namespace salsa {

class SearchObserver;  // core/search_engine.h

struct ImproveParams {
  MoveConfig moves = MoveConfig::salsa_default();
  int max_trials = 40;
  int moves_per_trial = 3000;
  int uphill_per_trial = 8;    ///< uphill acceptances admitted per trial
  /// Largest cost increase an uphill move may carry. Unbounded uphill jumps
  /// routinely undo more structure than the rest of the trial can rebuild
  /// (bench_ablation_search quantifies this); one-multiplexer-sized steps
  /// keep the perturbation local.
  double max_uphill_delta = 6.0;
  int stop_after_stale = 3;    ///< improvement-free trials before stopping
  uint64_t seed = 1;
  /// When set, the search streams one JSONL record per decided proposal
  /// (step, move kind, delta, accepted, plus the policy's control variable —
  /// remaining uphill budget / temperature / kick phase).
  std::ostream* trace = nullptr;
  /// Installed on the SearchEngine for the run — the checked mode's
  /// invariant auditor (src/analysis/auditor.h) hooks in here. Not owned;
  /// nullptr (the default) costs one null check per transaction.
  SearchObserver* observer = nullptr;
  /// Speculative proposal batching (core/speculate.h): width k and thread
  /// budget. Defaults to the SALSA_SPECULATION environment variable, else
  /// off. Trajectories are byte-identical for every setting.
  SpeculationConfig speculation;
};

struct ImproveStats {
  int trials = 0;
  long attempted = 0;  ///< proposed moves (feasible instance found)
  long accepted = 0;   ///< applied and kept
  long uphill = 0;     ///< kept despite a cost increase
  long kicks = 0;      ///< cost-blind perturbation moves (ILS only)
  /// Per-move-kind attempted/accepted/delta breakdown (see
  /// io/report.h:search_stats_report for a rendering). Counts the served
  /// trajectory only: candidates from discarded speculations are excluded
  /// (they were never part of the search), so this is identical for every
  /// speculation width and thread count.
  std::array<MoveKindStats, kNumMoveKinds> by_kind{};
  /// Speculation hit/discard counters (all zero when speculation is off).
  /// Deterministic for a fixed k, but *dependent* on k — callers comparing
  /// stats across speculation settings compare everything but this field.
  SpecStats spec;

  ImproveStats& operator+=(const ImproveStats& o) {
    trials += o.trials;
    attempted += o.attempted;
    accepted += o.accepted;
    uphill += o.uphill;
    kicks += o.kicks;
    for (int k = 0; k < kNumMoveKinds; ++k)
      by_kind[static_cast<size_t>(k)] += o.by_kind[static_cast<size_t>(k)];
    spec += o.spec;
    return *this;
  }

  /// Exact comparison (the double delta sums included): stats must be
  /// bit-identical for every thread count, which is why the allocator sums
  /// per-restart stats in restart order rather than in completion order.
  friend bool operator==(const ImproveStats&, const ImproveStats&) = default;
};

struct ImproveResult {
  Binding best;
  CostBreakdown cost;
  ImproveStats stats;
};

/// Runs iterative improvement from `start` (which must be legal).
ImproveResult improve(const Binding& start, const ImproveParams& params);

}  // namespace salsa
