#include "core/footprint.h"

namespace salsa {

void MoveFootprint::clear() {
  read_mask = 0;
  write_mask = 0;
  sinks.clear_all();
  fu_rows.clear_all();
  reg_rows.clear_all();
  fu_events.clear();
  reg_events.clear();
}

namespace {

void net_events(std::vector<std::pair<int, int>>& events, BitWords& rows) {
  if (events.empty()) return;
  // Net the +-1 events through a dense counter array — O(events) with no
  // hashing. Both scratch buffers are thread_local (batch-scoring workers
  // finalize concurrently) and keep their capacity, so finalize() is
  // allocation-free after warm-up; the drain loop zeroes every counter it
  // touched, leaving the array all-zero for the next call. An id may enter
  // `touched` twice (count returning through zero) — the drain handles
  // duplicates because only the first visit sees a nonzero count.
  // salsa-lint: allow(thread-local-scratch-discipline) drained-to-zero invariant: the loop below re-zeroes every counter it touched, so all-zero is the steady state between calls
  thread_local std::vector<int> counts;
  // salsa-lint: allow(thread-local-scratch-discipline) emptied by the drain loop every call; push_back onto the empty vector is the intended first use
  thread_local std::vector<int> touched;
  for (const auto& [id, delta] : events) {
    if (static_cast<size_t>(id) >= counts.size())
      counts.resize(static_cast<size_t>(id) + 1, 0);
    if (counts[static_cast<size_t>(id)] == 0) touched.push_back(id);
    counts[static_cast<size_t>(id)] += delta;
  }
  for (const int id : touched) {
    if (counts[static_cast<size_t>(id)] != 0) rows.set(id);
    counts[static_cast<size_t>(id)] = 0;
  }
  touched.clear();
  events.clear();
}

}  // namespace

void MoveFootprint::finalize() {
  net_events(fu_events, fu_rows);
  net_events(reg_events, reg_rows);
}

uint32_t MoveFootprint::read_mask_of(MoveKind kind) {
  using C = MoveFootprint;
  switch (kind) {
    // F1/F2 scan every operation's FU binding and probe FU occupancy
    // columns for free windows.
    case MoveKind::kFuExchange:
    case MoveKind::kFuMove:
      return C::kOps | C::kFuOcc;
    // F3 picks among commutative operations — a static property of the
    // CDFG — and flips the chosen op's swap bit. Its only mutable-state
    // dependencies are the connection pairs at its own pins (sink keys).
    case MoveKind::kOperandReverse:
      return 0;
    // F4 collects transfer cells across all storages, reads every
    // operation's FU (pipelined-output busy map) and FU occupancy.
    case MoveKind::kBindPass:
      return C::kOps | C::kStoCells | C::kFuOcc;
    // F5 collects via cells across all storages.
    case MoveKind::kUnbindPass:
      return C::kStoCells;
    // R1 reads cells only (duplicate check is within the cell trees).
    case MoveKind::kSegExchange:
      return C::kStoCells;
    // R2/R3/R4/R5 additionally probe register occupancy for free slots.
    case MoveKind::kSegMove:
    case MoveKind::kValExchange:
    case MoveKind::kValMove:
    case MoveKind::kValSplit:
      return C::kStoCells | C::kRegOcc;
    // R6/R7 operate on the cell trees and read targets alone.
    case MoveKind::kValMerge:
    case MoveKind::kReadRetarget:
      return C::kStoCells;
  }
  return C::kOps | C::kStoCells | C::kFuOcc | C::kRegOcc;
}

bool footprints_conflict(const MoveFootprint& spec,
                         const MoveFootprint& committed) {
  if ((spec.read_mask & committed.write_mask) != 0) return true;
  if (bitwords_intersect(spec.sinks, committed.sinks)) return true;
  if (bitwords_intersect(spec.fu_rows, committed.fu_rows)) return true;
  if (bitwords_intersect(spec.reg_rows, committed.reg_rows)) return true;
  return false;
}

}  // namespace salsa
