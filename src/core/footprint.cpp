#include "core/footprint.h"

#include <algorithm>

#include "util/flat_map.h"

namespace salsa {

void MoveFootprint::clear() {
  read_mask = 0;
  write_mask = 0;
  sinks.clear();
  fu_rows.clear();
  reg_rows.clear();
  fu_events.clear();
  reg_events.clear();
}

namespace {

void net_events(std::vector<std::pair<int, int>>& events,
                std::vector<int>& rows) {
  if (events.empty()) return;
  // Net the +-1 events through a FlatMap refcount accumulator — O(events)
  // instead of sort-and-scan — keeping only rows with a nonzero net. The
  // table is thread_local (batch-scoring workers finalize concurrently) and
  // keeps its capacity, so finalize() is allocation-free after warm-up.
  // Drain order is slot order, not id order; finalize() sorts rows after.
  thread_local FlatMap<uint32_t> net;
  for (const auto& [id, delta] : events) net.add(static_cast<uint32_t>(id), delta);
  net.drain([&rows](uint32_t id, int) { rows.push_back(static_cast<int>(id)); });
  events.clear();
}

template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

template <typename T>
bool sorted_intersect(const std::vector<T>& a, const std::vector<T>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else
      return true;
  }
  return false;
}

}  // namespace

void MoveFootprint::finalize() {
  net_events(fu_events, fu_rows);
  net_events(reg_events, reg_rows);
  sort_unique(sinks);
  sort_unique(fu_rows);
  sort_unique(reg_rows);
}

uint32_t MoveFootprint::read_mask_of(MoveKind kind) {
  using C = MoveFootprint;
  switch (kind) {
    // F1/F2 scan every operation's FU binding and probe FU occupancy
    // columns for free windows.
    case MoveKind::kFuExchange:
    case MoveKind::kFuMove:
      return C::kOps | C::kFuOcc;
    // F3 picks among commutative operations — a static property of the
    // CDFG — and flips the chosen op's swap bit. Its only mutable-state
    // dependencies are the connection pairs at its own pins (sink keys).
    case MoveKind::kOperandReverse:
      return 0;
    // F4 collects transfer cells across all storages, reads every
    // operation's FU (pipelined-output busy map) and FU occupancy.
    case MoveKind::kBindPass:
      return C::kOps | C::kStoCells | C::kFuOcc;
    // F5 collects via cells across all storages.
    case MoveKind::kUnbindPass:
      return C::kStoCells;
    // R1 reads cells only (duplicate check is within the cell trees).
    case MoveKind::kSegExchange:
      return C::kStoCells;
    // R2/R3/R4/R5 additionally probe register occupancy for free slots.
    case MoveKind::kSegMove:
    case MoveKind::kValExchange:
    case MoveKind::kValMove:
    case MoveKind::kValSplit:
      return C::kStoCells | C::kRegOcc;
    // R6/R7 operate on the cell trees and read targets alone.
    case MoveKind::kValMerge:
    case MoveKind::kReadRetarget:
      return C::kStoCells;
  }
  return C::kOps | C::kStoCells | C::kFuOcc | C::kRegOcc;
}

bool footprints_conflict(const MoveFootprint& spec,
                         const MoveFootprint& committed) {
  if ((spec.read_mask & committed.write_mask) != 0) return true;
  if (sorted_intersect(spec.sinks, committed.sinks)) return true;
  if (sorted_intersect(spec.fu_rows, committed.fu_rows)) return true;
  if (sorted_intersect(spec.reg_rows, committed.reg_rows)) return true;
  return false;
}

}  // namespace salsa
