#include "core/allocator.h"

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/auditor.h"
#include "analysis/digest.h"
#include "core/verify.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace salsa {

CheckMode default_check_mode() {
  static const CheckMode mode = [] {
    const char* env = std::getenv("SALSA_CHECK");
    if (env == nullptr) return CheckMode::kFinal;
    const std::string v(env);
    if (v == "0" || v == "off") return CheckMode::kOff;
    if (v == "final") return CheckMode::kFinal;
    if (v == "1" || v == "on" || v == "audit") return CheckMode::kAudit;
    if (v == "full") return CheckMode::kAuditFull;
    fail("SALSA_CHECK must be 0/off, final, or 1/on/audit/full; got '" + v +
         "'");
  }();
  return mode;
}

int default_restart_patience() {
  static const int patience = [] {
    const char* env = std::getenv("SALSA_RESTART_PATIENCE");
    if (env == nullptr) return 0;
    const std::string v(env);
    if (v == "0" || v == "off") return 0;
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end != v.c_str() && *end == '\0' && n >= 1 && n <= 1000000)
      return static_cast<int>(n);
    fail("SALSA_RESTART_PATIENCE must be 0/off or a positive restart count; "
         "got '" + v + "'");
  }();
  return patience;
}

namespace {

// One independent restart: constructive start (plus the optional
// traditional-model warm start), then the extended-model improvement. The
// warm-start and main-phase stats are merged here, per restart, so the
// caller can sum per-restart totals in restart order — the same value
// whichever thread ran the restart, and whichever restart finished first.
struct RestartOutcome {
  ImproveResult result;
  ImproveStats stats;  ///< warm start + main phase, this restart only
};

RestartOutcome run_restart(const AllocProblem& prob,
                           const AllocatorOptions& opts, int r) {
  // Each restart draws its seeds from SplitMix64 streams rooted at the user
  // seeds (even streams: placement, odd streams: search), replacing the old
  // additive scheme whose streams collided for nearby user seeds.
  const uint64_t rr = static_cast<uint64_t>(r);
  InitialOptions init = opts.initial;
  init.seed = derive_seed(opts.initial.seed, 2 * rr);
  ImproveParams params = opts.improve;
  params.seed = derive_seed(opts.improve.seed, 2 * rr + 1);
  params.speculation = opts.speculation;

  // Checked mode: this restart's engines run under their own invariant
  // auditor (restarts may run on different threads; the auditor is
  // engine-local state, so each restart owns one).
  std::optional<InvariantAuditor> auditor;
  if (opts.checked == CheckMode::kAudit ||
      opts.checked == CheckMode::kAuditFull) {
    AuditorOptions aopts{.every = opts.audit_every};
    // kAuditFull: exact mode — defeat the large-design sampling so every
    // transaction pays the full battery regardless of size.
    if (opts.checked == CheckMode::kAuditFull) aopts.sample_threshold_ops = 0;
    auditor.emplace(aopts);
    params.observer = &*auditor;
  }

  // The constructive start (contiguous-first, splitting only when forced).
  // For the warm start, actively look for a fully contiguous placement
  // across a few orders before settling for a split one.
  Binding start = initial_allocation(prob, init);
  if (opts.warm_start_traditional && !start.is_traditional()) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      try {
        InitialOptions strict = init;
        strict.allow_splits = false;
        strict.seed = derive_seed(init.seed, 1 + static_cast<uint64_t>(attempt));
        start = initial_allocation(prob, strict);
        break;
      } catch (const Error&) {
        // no contiguous placement under this order; keep trying
      }
    }
  }
  ImproveStats stats;
  if (opts.warm_start_traditional && start.is_traditional()) {
    // Converge within the traditional model first — the extended moves
    // then only have to *remove* interconnect from a good contiguous
    // allocation (value segments, copies and pass-throughs strictly add
    // freedom, so this warm start never hurts the final result).
    ImproveParams warm = params;
    warm.moves = MoveConfig::traditional();
    warm.seed = params.seed ^ 0x5A15Au;
    ImproveResult wr = improve(start, warm);
    stats += wr.stats;
    start = std::move(wr.best);
  }
  ImproveResult res = improve(start, params);
  stats += res.stats;
  return RestartOutcome{std::move(res), stats};
}

}  // namespace

AllocationResult allocate(const AllocProblem& prob,
                          const AllocatorOptions& opts) {
  SALSA_CHECK_MSG(opts.restarts >= 1, "allocate needs at least one restart");
  Parallelism par = opts.parallelism;
  // A traced search streams JSONL records; interleaving restarts would
  // corrupt the stream, so tracing pins the run to the calling thread.
  if (opts.improve.trace != nullptr) par = Parallelism::sequential_only();

  const int patience = opts.restart_patience > 0 ? opts.restart_patience
                       : opts.restart_patience == 0 ? default_restart_patience()
                                                    : 0;

  std::vector<RestartOutcome> outcomes;
  if (patience <= 0 || opts.restarts <= patience) {
    outcomes = parallel_map(par, opts.restarts,
                            [&](int r) { return run_restart(prob, opts, r); });
  } else {
    // Early stopping, deterministically: restarts are computed in
    // thread-sized waves, but the stop rule — cut after the first index r
    // whose distance from the earliest best index reaches `patience` — is
    // evaluated over outcomes in restart-index order and every outcome past
    // the cut is dropped. The retained prefix (hence the winner and the
    // stats) is therefore a function of the restart outcomes alone, never
    // of the wave width or which thread ran what; only the amount of
    // discarded surplus work varies with the thread count.
    const int wave = par.resolve();
    size_t best = 0;
    bool stop = false;
    while (!stop && static_cast<int>(outcomes.size()) < opts.restarts) {
      const int base = static_cast<int>(outcomes.size());
      const int count = std::min(wave, opts.restarts - base);
      std::vector<RestartOutcome> batch = parallel_map(
          par, count, [&](int i) { return run_restart(prob, opts, base + i); });
      for (RestartOutcome& o : batch) {
        outcomes.push_back(std::move(o));
        const size_t r = outcomes.size() - 1;
        if (outcomes[r].result.cost.total < outcomes[best].result.cost.total)
          best = r;
        if (r - best >= static_cast<size_t>(patience)) {
          stop = true;
          break;
        }
      }
    }
  }

  // Deterministic reduction in restart order: stats sum index by index; the
  // winner is the lowest cost, ties broken by the lowest restart index
  // (strict < keeps the earliest of equals).
  ImproveStats total;
  size_t best = 0;
  if (opts.restart_digests) {
    opts.restart_digests->clear();
    opts.restart_digests->reserve(outcomes.size());
  }
  for (size_t r = 0; r < outcomes.size(); ++r) {
    total += outcomes[r].stats;
    if (opts.restart_digests)
      opts.restart_digests->push_back(digest_binding(outcomes[r].result.best));
    if (outcomes[r].result.cost.total < outcomes[best].result.cost.total)
      best = r;
  }
  ImproveResult& win = outcomes[best].result;
  // Routed through the checked-mode knob: release callers that validate
  // results elsewhere can opt out (checked = CheckMode::kOff) of the
  // previously unconditional O(design) legality check.
  if (opts.checked != CheckMode::kOff) check_legal(win.best);
  AllocationResult out{std::move(win.best), win.cost, {}, total};
  out.merging = merge_muxes(out.binding);
  return out;
}

}  // namespace salsa
