#include "core/allocator.h"

#include <optional>

#include "core/verify.h"

namespace salsa {

AllocationResult allocate(const AllocProblem& prob,
                          const AllocatorOptions& opts) {
  SALSA_CHECK_MSG(opts.restarts >= 1, "allocate needs at least one restart");
  std::optional<ImproveResult> best;
  ImproveStats total;
  for (int r = 0; r < opts.restarts; ++r) {
    InitialOptions init = opts.initial;
    init.seed = opts.initial.seed + static_cast<uint64_t>(r) * 7919;
    ImproveParams params = opts.improve;
    params.seed = opts.improve.seed + static_cast<uint64_t>(r) * 104729;

    // The constructive start (contiguous-first, splitting only when forced).
    // For the warm start, actively look for a fully contiguous placement
    // across a few orders before settling for a split one.
    Binding start = initial_allocation(prob, init);
    if (opts.warm_start_traditional && !start.is_traditional()) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        try {
          InitialOptions strict = init;
          strict.allow_splits = false;
          strict.seed = init.seed + 101 + static_cast<uint64_t>(attempt);
          start = initial_allocation(prob, strict);
          break;
        } catch (const Error&) {
          // no contiguous placement under this order; keep trying
        }
      }
    }
    if (opts.warm_start_traditional && start.is_traditional()) {
      // Converge within the traditional model first — the extended moves
      // then only have to *remove* interconnect from a good contiguous
      // allocation (value segments, copies and pass-throughs strictly add
      // freedom, so this warm start never hurts the final result).
      ImproveParams warm = params;
      warm.moves = MoveConfig::traditional();
      warm.seed = params.seed ^ 0x5A15Au;
      ImproveResult wr = improve(start, warm);
      total += wr.stats;
      start = std::move(wr.best);
    }
    ImproveResult res = improve(start, params);
    total += res.stats;
    if (!best || res.cost.total < best->cost.total) best = std::move(res);
  }
  check_legal(best->best);
  AllocationResult out{std::move(best->best), best->cost, {}, total};
  out.merging = merge_muxes(out.binding);
  return out;
}

}  // namespace salsa
