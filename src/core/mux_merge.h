// Multiplexer merging post-pass (Section 4): after allocation improvement,
// compatible multiplexers are combined with a simple greedy heuristic — an
// arbitrary mux is selected and merged with as many compatible muxes as
// possible, then the next unmerged mux is processed, until all have been
// tried. Two muxes are compatible when no control step requires them to
// route different sources simultaneously; merged muxes share one selector
// and their source sets union.
#pragma once

#include <vector>

#include "core/cost.h"

namespace salsa {

/// One multiplexer after merging: the input pins it feeds and the sources it
/// selects among.
struct MergedMux {
  std::vector<Pin> sinks;
  std::vector<Endpoint> sources;
  /// Equivalent 2-1 multiplexers: sources.size() - 1.
  int width() const { return static_cast<int>(sources.size()) - 1; }
};

struct MuxMergeResult {
  std::vector<MergedMux> muxes;
  int muxes_before = 0;  ///< equivalent 2-1 muxes without merging
  int muxes_after = 0;   ///< equivalent 2-1 muxes after merging
};

/// Runs the greedy merge on a legal binding's point-to-point interconnect.
/// Constant sources are excluded (they are free in the cost model).
MuxMergeResult merge_muxes(const Binding& b);

}  // namespace salsa
