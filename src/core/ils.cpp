#include "core/ils.h"

#include "core/search_engine.h"
#include "core/verify.h"

namespace salsa {

namespace {

// Greedy descent: accept downhill/equal moves only.
void descend(SearchEngine& eng, ProposalPipeline& pipe, int budget,
             ImproveStats& stats) {
  eng.set_trace_aux("kick", 0);
  for (int m = 0; m < budget; ++m) {
    const auto c = pipe.next();
    if (!c.feasible) continue;
    ++stats.attempted;
    const bool accept = c.delta <= 0;
    pipe.decide(accept);
    if (accept) ++stats.accepted;
  }
}

}  // namespace

ImproveResult iterated_local_search(const Binding& start,
                                    const IlsParams& params) {
  check_legal(start);
  ImproveStats stats;

  SearchEngine eng(start);
  eng.set_trace(params.trace);
  eng.set_observer(params.observer);
  ProposalPipeline pipe(eng, params.moves, params.speculation, params.seed,
                        params.trace != nullptr);
  descend(eng, pipe, params.descent_moves, stats);
  Binding best = eng.binding();
  double best_cost = eng.total();

  for (int round = 0; round < params.iterations; ++round) {
    ++stats.trials;
    pipe.reset_to(best);
    // Kick: force a few random feasible moves, cost-blind. These are
    // perturbations of the incumbent, not acceptances of the descent
    // policy — they get their own counter.
    eng.set_trace_aux("kick", 1);
    int kicked = 0;
    for (int k = 0; k < params.kick_moves * 4 && kicked < params.kick_moves;
         ++k) {
      const auto c = pipe.next();
      if (!c.feasible) continue;
      pipe.decide(true);
      ++kicked;
      ++stats.kicks;
    }
    descend(eng, pipe, params.descent_moves, stats);
    if (eng.total() < best_cost - 1e-9) {
      best = eng.binding();
      best_cost = eng.total();
    }
  }
  stats.by_kind = pipe.kind_stats();
  stats.spec = pipe.spec_stats();
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
