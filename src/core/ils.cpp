#include "core/ils.h"

#include "core/search_engine.h"
#include "core/verify.h"

namespace salsa {

namespace {

// Greedy descent: accept downhill/equal moves only.
void descend(SearchEngine& eng, int budget, const MoveConfig& moves, Rng& rng,
             ImproveStats& stats) {
  eng.set_trace_aux("kick", 0);
  for (int m = 0; m < budget; ++m) {
    const auto delta = eng.propose(moves.pick(rng), rng);
    if (!delta) continue;
    ++stats.attempted;
    if (*delta <= 0) {
      eng.commit();
      ++stats.accepted;
    } else {
      eng.rollback();
    }
  }
}

}  // namespace

ImproveResult iterated_local_search(const Binding& start,
                                    const IlsParams& params) {
  check_legal(start);
  Rng rng(params.seed);
  ImproveStats stats;

  SearchEngine eng(start);
  eng.set_trace(params.trace);
  eng.set_observer(params.observer);
  descend(eng, params.descent_moves, params.moves, rng, stats);
  Binding best = eng.binding();
  double best_cost = eng.total();

  for (int round = 0; round < params.iterations; ++round) {
    ++stats.trials;
    eng.reset_to(best);
    // Kick: force a few random feasible moves, cost-blind. These are
    // perturbations of the incumbent, not acceptances of the descent
    // policy — they get their own counter.
    eng.set_trace_aux("kick", 1);
    int kicked = 0;
    for (int k = 0; k < params.kick_moves * 4 && kicked < params.kick_moves;
         ++k) {
      if (eng.propose(params.moves.pick(rng), rng)) {
        eng.commit();
        ++kicked;
        ++stats.kicks;
      }
    }
    descend(eng, params.descent_moves, params.moves, rng, stats);
    if (eng.total() < best_cost - 1e-9) {
      best = eng.binding();
      best_cost = eng.total();
    }
  }
  stats.by_kind = eng.kind_stats();
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
