#include "core/ils.h"

#include "core/verify.h"

namespace salsa {

namespace {

// Greedy descent: accept downhill/equal moves only.
double descend(Binding& current, double current_cost, int budget,
               const MoveConfig& moves, Rng& rng, ImproveStats& stats) {
  for (int m = 0; m < budget; ++m) {
    Binding candidate = current;
    if (!apply_random_move(candidate, moves.pick(rng), rng)) continue;
    ++stats.attempted;
    const double cost = evaluate_cost(candidate).total;
    if (cost <= current_cost) {
      ++stats.accepted;
      current = std::move(candidate);
      current_cost = cost;
    }
  }
  return current_cost;
}

}  // namespace

ImproveResult iterated_local_search(const Binding& start,
                                    const IlsParams& params) {
  check_legal(start);
  Rng rng(params.seed);
  ImproveStats stats;

  Binding best = start;
  double best_cost = descend(best, evaluate_cost(best).total,
                             params.descent_moves, params.moves, rng, stats);

  for (int round = 0; round < params.iterations; ++round) {
    ++stats.trials;
    Binding current = best;
    // Kick: force a few random feasible moves, cost-blind.
    int kicked = 0;
    for (int k = 0; k < params.kick_moves * 4 && kicked < params.kick_moves;
         ++k) {
      if (apply_random_move(current, params.moves.pick(rng), rng)) {
        ++kicked;
        ++stats.attempted;
        ++stats.accepted;
        ++stats.uphill;
      }
    }
    double cost = descend(current, evaluate_cost(current).total,
                          params.descent_moves, params.moves, rng, stats);
    if (cost < best_cost - 1e-9) {
      best = std::move(current);
      best_cost = cost;
    }
  }
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
