// The extended (SALSA) binding model — the paper's core contribution.
//
// A Binding assigns:
//   * every operation node to a functional-unit instance (with an optional
//     operand swap for commutative operations — move F3);
//   * every storage segment to one or more register *cells*. A cell is one
//     (segment, register) pair. cells[seg] is the set of simultaneous copies
//     of the storage during that segment's control step. Each cell at
//     seg > 0 names its parent cell in the previous segment; a cell whose
//     register differs from its parent's register is an inter-register
//     transfer and may be routed through an idle pass-through FU (moves
//     F4/F5). Cells at seg 0 are written by the producer FU (or by the
//     environment for primary inputs).
//   * every read of a storage to the cell it reads from (so consumers can
//     exploit copies created by value splitting, moves R5/R6).
//
// The *traditional* binding model of Section 1 is the restriction: exactly
// one cell per segment, all cells in the same register, no pass-throughs.
// baseline/traditional.* builds and maintains bindings in that restricted
// form using this same representation.
#pragma once

#include <string>

#include "core/lifetime.h"
#include "core/resources.h"
#include "util/bitplane.h"

namespace salsa {

/// Functional-unit assignment of one operation.
struct OpBind {
  FuId fu = kInvalidId;
  /// Commutative operand reversal (move F3): operand slot k feeds FU input
  /// 1-k when set.
  bool swap = false;

  friend bool operator==(const OpBind&, const OpBind&) = default;
};

/// One register copy of a storage during one segment.
struct Cell {
  RegId reg = kInvalidId;
  /// Position of the parent cell within cells[seg-1]; -1 at seg 0 (written
  /// by the producer FU or by the environment).
  int parent = -1;
  /// Pass-through FU routing the transfer from the parent's register; only
  /// meaningful when the parent lives in a different register. kInvalidId
  /// means a direct register-to-register connection.
  FuId via = kInvalidId;

  friend bool operator==(const Cell&, const Cell&) = default;
};

/// Register-side binding of one storage.
struct StorageBinding {
  /// cells[seg] — at least one cell per segment of the storage.
  std::vector<std::vector<Cell>> cells;
  /// Per read (index into Storage::reads): position of the cell read within
  /// cells[read.seg].
  std::vector<int> read_cell;

  friend bool operator==(const StorageBinding&, const StorageBinding&) =
      default;
};

/// What occupies each FU and register at each control step. Derived from a
/// Binding on demand; moves use it for feasibility checks.
///
/// Two representations, maintained in lockstep by the claim/release methods
/// below (the single source of truth for occupancy bookkeeping — both the
/// Binding::occupancy() builder and the SearchEngine's incremental claim
/// paths go through them):
///   * the scalar identity grids fu_user/reg_sto, which answer *who* holds
///     a slot (the reference representation — verify.cpp and the reports
///     read these);
///   * the packed busy bitplanes fu_busy/reg_busy (util/bitplane.h), one
///     bit per (resource, step), which answer *whether* a slot is held in
///     word-parallel form — the representation the move proposers' legality
///     masks run on.
/// planes_match_grids() is the packed-vs-scalar differential check the
/// invariant auditor and salsa_audit --bitplane run per commit.
struct Occupancy {
  /// fu_user[fu][step]: node id of the executing op, kPassThrough for a
  /// transfer routed through the unit, or kFree.
  static constexpr int kFree = -1;
  static constexpr int kPassThrough = -2;
  std::vector<std::vector<int>> fu_user;
  /// reg_sto[reg][step]: storage id held, or -1.
  std::vector<std::vector<int>> reg_sto;
  /// Busy bitplanes: fu_busy.test(f, t) iff fu_user[f][t] != kFree, and
  /// reg_busy.test(r, t) iff reg_sto[r][t] != -1.
  BitPlane fu_busy;
  BitPlane reg_busy;
  /// Transpose of reg_busy: rows = control steps, bits = registers, so
  /// "which registers are free at step t" is one popcount/select over
  /// ceil(R/64) words instead of an O(R) per-register probe loop — the
  /// register budget grows with design size (R is a few thousand at 10k+
  /// ops), so the per-step orientation is what keeps the free-register
  /// moves flat. Maintained in lockstep with reg_busy by claim_reg /
  /// release_reg below.
  BitPlane reg_busy_t;
  /// Transpose of fu_busy: rows = control steps, bits = FUs. The
  /// pass-through binder's "which pass-capable FUs are free at step t"
  /// scan masks this row against a static candidate mask instead of
  /// probing one fu_busy row per candidate FU. Maintained in lockstep by
  /// the claim/release methods below.
  BitPlane fu_busy_t;

  /// Shapes both representations to all-free.
  void init(int num_fus, int num_regs, int steps) {
    fu_user.assign(static_cast<size_t>(num_fus),
                   std::vector<int>(static_cast<size_t>(steps), kFree));
    reg_sto.assign(static_cast<size_t>(num_regs),
                   std::vector<int>(static_cast<size_t>(steps), -1));
    fu_busy.resize(num_fus, steps);
    reg_busy.resize(num_regs, steps);
    reg_busy_t.resize(steps, num_regs);
    fu_busy_t.resize(steps, num_fus);
  }

  bool fu_free(FuId f, int step) const { return !fu_busy.test(f, step); }
  bool reg_free(RegId r, int step) const { return !reg_busy.test(r, step); }

  /// Raw slot references — the SearchEngine's undo journal records the old
  /// scalar before a claim/release overwrites it.
  int& fu_slot(FuId f, int step) {
    return fu_user[static_cast<size_t>(f)][static_cast<size_t>(step)];
  }
  int& reg_slot(RegId r, int step) {
    return reg_sto[static_cast<size_t>(r)][static_cast<size_t>(step)];
  }

  // Claim/release keep grid and plane in lockstep. Single-step forms flip
  // one bit; the ranged FU forms (operation occupancy windows — never
  // wrapping) update the plane with one word-masked range op.
  void claim_fu(FuId f, int step, int user) {
    fu_slot(f, step) = user;
    fu_busy.set(f, step);
    fu_busy_t.set(step, f);
  }
  void release_fu(FuId f, int step) {
    fu_slot(f, step) = kFree;
    fu_busy.clear(f, step);
    fu_busy_t.clear(step, f);
  }
  void claim_fu_range(FuId f, int start, int len, int user) {
    for (int t = start; t < start + len; ++t) {
      fu_slot(f, t) = user;
      fu_busy_t.set(t, f);
    }
    fu_busy.set_range(f, start, len);
  }
  void release_fu_range(FuId f, int start, int len) {
    for (int t = start; t < start + len; ++t) {
      fu_slot(f, t) = kFree;
      fu_busy_t.clear(t, f);
    }
    fu_busy.clear_range(f, start, len);
  }
  void claim_reg(RegId r, int step, int sid) {
    reg_slot(r, step) = sid;
    reg_busy.set(r, step);
    reg_busy_t.set(step, r);
  }
  void release_reg(RegId r, int step) {
    reg_slot(r, step) = -1;
    reg_busy.clear(r, step);
    reg_busy_t.clear(step, r);
  }

  /// True iff the packed busy planes agree bit-for-bit with the scalar
  /// grids. On mismatch appends the first divergence to `why` if non-null.
  bool planes_match_grids(std::string* why = nullptr) const;
};

/// A complete allocation in the extended binding model. Value-semantic and
/// cheap to copy (the improver copies, mutates and either keeps or drops).
class Binding {
 public:
  explicit Binding(const AllocProblem& prob);

  const AllocProblem& prob() const { return *prob_; }

  OpBind& op(NodeId n) { return ops_[static_cast<size_t>(n)]; }
  const OpBind& op(NodeId n) const { return ops_[static_cast<size_t>(n)]; }

  StorageBinding& sto(int sid) { return stos_[static_cast<size_t>(sid)]; }
  const StorageBinding& sto(int sid) const {
    return stos_[static_cast<size_t>(sid)];
  }

  /// Recomputes FU and register occupancy. Throws on double occupancy (an
  /// illegal binding); use verify() for a non-throwing report.
  Occupancy occupancy() const;

  /// The register a given read is served from.
  RegId read_reg(int sid, int read_idx) const;

  /// Registers with at least one cell / FUs with at least one op or
  /// pass-through.
  int regs_used() const;
  int fus_used() const;

  /// True if every segment has exactly one cell, all of a storage's cells
  /// share one register, and no pass-throughs are used (the traditional
  /// model of Section 1).
  bool is_traditional() const;

  /// Normalises `via` fields: clears pass-throughs on cells whose parent is
  /// in the same register (holds need no route). Call after editing regs.
  void normalize();
  /// Same, restricted to one storage (the SearchEngine normalises only a
  /// move's footprint).
  void normalize_storage(int sid);

  /// Same problem instance and identical op/storage bindings.
  friend bool operator==(const Binding&, const Binding&) = default;

 private:
  const AllocProblem* prob_;
  std::vector<OpBind> ops_;           // indexed by NodeId (ops only used)
  std::vector<StorageBinding> stos_;  // indexed by storage id
};

}  // namespace salsa
