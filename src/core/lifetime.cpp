#include "core/lifetime.h"

#include <algorithm>

namespace salsa {

namespace {

// Union-find over value ids, used to merge states with their next contents.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
  }
  int find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Lifetimes::Lifetimes(const Schedule& sched) : sched_(&sched) {
  const Cdfg& g = sched.cdfg();
  const int L = sched.length();
  sched.validate();

  UnionFind uf(g.num_values());
  for (NodeId sn : g.state_nodes()) {
    const Node& s = g.node(sn);
    uf.unite(s.out, s.state_next);
  }

  // Group values by union-find class, skipping constants.
  sto_of_.assign(static_cast<size_t>(g.num_values()), -1);
  std::vector<int> class_to_sto(static_cast<size_t>(g.num_values()), -1);
  for (ValueId v = 0; v < g.num_values(); ++v) {
    if (g.is_const_value(v)) continue;
    const int root = uf.find(v);
    int& sid = class_to_sto[static_cast<size_t>(root)];
    if (sid < 0) {
      sid = static_cast<int>(storages_.size());
      storages_.emplace_back();
    }
    sto_of_[static_cast<size_t>(v)] = sid;
    storages_[static_cast<size_t>(sid)].members.push_back(v);
  }

  for (size_t si = 0; si < storages_.size(); ++si) {
    Storage& s = storages_[si];
    // Identify the (unique) writer: the producer of a non-State member.
    // A merged state class has exactly one computed member (the next
    // content); a plain value class has its own producer; a class with only
    // Input/State members is written by the environment or is malformed.
    NodeId writer = kInvalidId;
    bool has_state = false, has_input = false;
    for (ValueId v : s.members) {
      const Node& p = g.node(g.producer(v));
      if (p.kind == OpKind::kState) {
        has_state = true;
      } else if (p.kind == OpKind::kInput) {
        has_input = true;
      } else {
        SALSA_CHECK_MSG(writer == kInvalidId,
                        "storage has two computing producers");
        writer = g.producer(v);
      }
    }
    SALSA_CHECK_MSG(!(has_input && (has_state || writer != kInvalidId)),
                    "input value aliases a computed value");

    // Collect reads (steps are within [0, L)).
    for (ValueId v : s.members) {
      for (size_t ci = 0; ci < g.value(v).consumers.size(); ++ci) {
        const NodeId c = g.value(v).consumers[ci];
        const Node& cn = g.node(c);
        // Recover the operand slot; a consumer reading v in both slots
        // yields two read records (slots resolved in order).
        int slot = -1, seen = 0;
        const int want = static_cast<int>(
            std::count(g.value(v).consumers.begin(),
                       g.value(v).consumers.begin() + static_cast<long>(ci) + 1,
                       c));
        for (size_t k = 0; k < cn.ins.size(); ++k) {
          if (cn.ins[k] == v && ++seen == want) {
            slot = static_cast<int>(k);
            break;
          }
        }
        SALSA_CHECK(slot >= 0);
        s.reads.push_back(StorageRead{c, slot, sched.start(c), 0});
      }
    }

    // Live arc.
    if (has_input) {
      s.producer = kInvalidId;
      s.birth = 0;
      s.wraps = false;
      int last = 0;
      for (const auto& r : s.reads) last = std::max(last, r.step);
      s.len = s.reads.empty() ? 1 : last + 1;
    } else {
      SALSA_CHECK_MSG(writer != kInvalidId, "state is never written");
      s.producer = writer;
      const int ready = sched.ready(writer);  // may equal L (wraps)
      s.birth = ready % L;
      if (has_state) {
        // Tail of this iteration plus head of the next one, wrapping.
        int last_head = -1;  // reads with step < ready are next-iteration
        int last_tail = -1;  // in-iteration reads of the next content
        for (const auto& r : s.reads) {
          if (r.step >= ready) {
            last_tail = std::max(last_tail, r.step);
          } else {
            last_head = std::max(last_head, r.step);
          }
        }
        SALSA_CHECK_MSG(last_head >= 0 || last_tail >= 0,
                        "state '" + g.node(g.producer(s.members[0])).name +
                            "' is never read");
        // Live from birth to the last head read of the following iteration;
        // if the state is only read before being rewritten (always true per
        // the anti-dependence), the arc is birth..L-1,0..last_head.
        if (last_head >= 0) {
          s.wraps = s.birth != 0;
          s.len = (last_head - s.birth + L) % L + 1;
        } else {
          s.wraps = false;
          s.len = last_tail - s.birth + 1;
        }
      } else {
        s.wraps = false;
        int last = -1;
        for (const auto& r : s.reads) last = std::max(last, r.step);
        if (last < 0) {
          // Dead value: producer result is never read. It still needs one
          // landing register (the FU result must be latched somewhere) —
          // unless it is ready exactly at the boundary, where we still keep
          // one segment for uniformity.
          s.len = 1;
          if (s.birth == ready && ready == L) s.birth = 0;
        } else {
          s.len = last - s.birth + 1;
        }
      }
    }
    SALSA_CHECK(s.len >= 1 && s.len <= L);

    // Segment index per read.
    for (auto& r : s.reads) {
      r.seg = (r.step - s.birth + L) % L;
      SALSA_CHECK_MSG(r.seg < s.len, "read outside the storage's live arc");
    }
    s.name = g.value(s.members[0]).name;
  }

  demand_.assign(static_cast<size_t>(L), 0);
  for (int sid = 0; sid < num_storages(); ++sid) {
    const Storage& s = storage(sid);
    for (int i = 0; i < s.len; ++i)
      ++demand_[static_cast<size_t>(s.step_at(i, L))];
  }

  // Packed live masks and per-segment step tables (see lifetime.h). Both
  // are schedule-static, so the move hot path reads them without ever
  // recomputing a cyclic step.
  live_.resize(num_storages(), L);
  steps_.resize(static_cast<size_t>(num_storages()));
  for (int sid = 0; sid < num_storages(); ++sid) {
    const Storage& s = storage(sid);
    live_.set_range_wrap(sid, s.birth, s.len);
    std::vector<int>& steps = steps_[static_cast<size_t>(sid)];
    steps.resize(static_cast<size_t>(s.len));
    for (int i = 0; i < s.len; ++i)
      steps[static_cast<size_t>(i)] = s.step_at(i, L);
  }
}

int Lifetimes::seg_at_step(int sid, int step) const {
  const Storage& s = storage(sid);
  const int L = sched_->length();
  const int i = (step - s.birth + L) % L;
  return i < s.len ? i : -1;
}

int Lifetimes::min_registers() const {
  int peak = 0;
  for (int d : demand_) peak = std::max(peak, d);
  return peak;
}

}  // namespace salsa
