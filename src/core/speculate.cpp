#include "core/speculate.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "util/diagnostics.h"

namespace salsa {

int default_speculation_k() {
  static const int k = [] {
    const char* env = std::getenv("SALSA_SPECULATION");
    if (env == nullptr) return 1;
    const std::string v(env);
    if (v == "0" || v == "off") return 1;
    if (v == "on" || v == "auto") return 8;
    char* end = nullptr;
    const long n = std::strtol(v.c_str(), &end, 10);
    if (end != v.c_str() && *end == '\0' && n >= 1 && n <= 4096)
      return static_cast<int>(n);
    fail("SALSA_SPECULATION must be 0/off, on/auto, or a width >= 1; got '" +
         v + "'");
  }();
  return k;
}

ProposalPipeline::ProposalPipeline(SearchEngine& eng, const MoveConfig& moves,
                                   const SpeculationConfig& cfg, uint64_t seed,
                                   bool force_sequential)
    : eng_(eng), moves_(moves), cfg_(cfg), seed_(seed) {
  k_ = force_sequential ? 1 : cfg_.resolve_k();
  SALSA_CHECK_MSG(k_ >= 1, "speculation width must be >= 1");
  if (k_ > 1 && !cfg_.pin_width) {
    // Speculation only pays when batch scoring can overlap: with one
    // effective participant (one-core host, or an explicit thread budget of
    // 1) every snapshot score runs serially on the caller and the worker
    // machinery is pure per-candidate overhead over next_sequential() —
    // measured as a ~3x throughput inversion on a one-core container
    // (EXPERIMENTS.md "Move throughput"). Trajectories are k-invariant by
    // contract, so degrading to sequential proposing changes no result.
    const unsigned hw = std::thread::hardware_concurrency();
    const int eff = std::min(cfg_.parallelism.resolve(),
                             hw > 0 ? static_cast<int>(hw) : k_);
    if (eff <= 1) k_ = 1;
  }
}

ProposalPipeline::~ProposalPipeline() {
  if (live_txn_) eng_.rollback();
}

// ---------------------------------------------------------------------------
// Candidate generation. Candidate i of the run always draws from the RNG
// stream derive_seed(seed_, i) — never from a shared stream — so what a
// candidate proposes is a function of (seed, i) and the engine state it is
// scored against, independent of scoring order and thread count.

ProposalPipeline::Candidate ProposalPipeline::next_sequential() {
  cur_step_ = step_;
  Rng r(derive_seed(seed_, static_cast<uint64_t>(step_)));
  const MoveKind kind = moves_.pick(r);
  cur_kind_ = kind;
  const auto d = eng_.propose(kind, r);
  if (!d) {
    advance();
    return Candidate{cur_step_, kind, false, 0.0, r};
  }
  cur_delta_ = *d;
  live_txn_ = true;
  pending_ = true;
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(kind)];
  ++ks.attempted;
  ks.delta_sum += *d;
  return Candidate{cur_step_, kind, true, *d, r};
}

ProposalPipeline::Candidate ProposalPipeline::next() {
  SALSA_DCHECK(!pending_);
  if (k_ <= 1) return next_sequential();
  if (batch_pos_ >= batch_.size()) fill_batch();
  Entry& e = batch_[batch_pos_];
  cur_step_ = e.step;
  if (e.valid) {
    ++stats_.served;
    cur_kind_ = e.kind;
    cur_delta_ = e.delta;
    if (!e.feasible) {
      advance();
      return Candidate{e.step, e.kind, false, 0.0, e.rng_after};
    }
    MoveKindStats& ks = kind_stats_[static_cast<size_t>(e.kind)];
    ++ks.attempted;
    ks.delta_sum += e.delta;
    pending_ = true;
    return Candidate{e.step, e.kind, true, e.delta, e.rng_after};
  }
  // The speculation was invalidated by an earlier commit: re-score live on
  // the main engine — by construction the engine is now in exactly the
  // state the sequential search would have at this step.
  ++stats_.rescored;
  Rng r(derive_seed(seed_, static_cast<uint64_t>(e.step)));
  const MoveKind kind = moves_.pick(r);
  cur_kind_ = kind;
  const auto d = eng_.propose(kind, r, &live_fp_);
  if (!d) {
    advance();
    return Candidate{e.step, kind, false, 0.0, r};
  }
  cur_delta_ = *d;
  live_txn_ = true;
  pending_ = true;
  MoveKindStats& ks = kind_stats_[static_cast<size_t>(kind)];
  ++ks.attempted;
  ks.delta_sum += *d;
  return Candidate{e.step, kind, true, *d, r};
}

void ProposalPipeline::decide(bool accept) {
  SALSA_DCHECK(pending_);
  pending_ = false;
  if (accept) {
    MoveKindStats& ks = kind_stats_[static_cast<size_t>(cur_kind_)];
    ++ks.accepted;
    ks.accepted_delta_sum += cur_delta_;
  }
  if (live_txn_) {
    live_txn_ = false;
    if (accept) {
      eng_.commit();
      if (k_ > 1) on_committed(live_fp_, cur_step_);
    } else {
      eng_.rollback();
    }
  } else if (accept) {
    // Snapshot-scored candidate accepted: replay the proposal on the main
    // engine from the candidate's own RNG stream. Because no conflicting
    // move committed since the snapshot, the replay takes the identical
    // instance and its live delta must reproduce the speculative score
    // bit-for-bit — checked always, not just in debug builds.
    Rng r(derive_seed(seed_, static_cast<uint64_t>(cur_step_)));
    const MoveKind kind = moves_.pick(r);
    SALSA_CHECK_MSG(kind == cur_kind_,
                    "speculative replay drew a different move kind");
    MoveFootprint fp;
    const auto d = eng_.propose(kind, r, &fp);
    SALSA_CHECK_MSG(d.has_value(),
                    "speculative replay found the move infeasible");
    SALSA_CHECK_MSG(*d == cur_delta_,
                    "speculative delta diverged from the live replay");
    eng_.commit();
    on_committed(fp, cur_step_);
  }
  // Rejecting a snapshot-scored candidate leaves the engine untouched, so
  // every remaining speculation in the batch stays exact.
  advance();
}

void ProposalPipeline::advance() {
  step_ = cur_step_ + 1;
  if (k_ > 1) ++batch_pos_;
}

void ProposalPipeline::on_committed(const MoveFootprint& fp, long step) {
  commit_log_.push_back(step);
  for (size_t i = batch_pos_ + 1; i < batch_.size(); ++i) {
    Entry& o = batch_[i];
    if (!o.valid) continue;
    if (!footprints_conflict(o.fp, fp)) continue;
    if (skip_conflict_nth_ != 0 && ++conflict_hits_ == skip_conflict_nth_)
      continue;  // test-only mutation: pretend the footprints are disjoint
    o.valid = false;
    ++stats_.discarded;
    if (SearchObserver* obs = eng_.observer()) obs->on_discard(eng_);
  }
}

void ProposalPipeline::reset_to(const Binding& b) {
  SALSA_DCHECK(!pending_ && !live_txn_);
  eng_.reset_to(b);
  // Unserved speculations die with the snapshot; their step numbers are
  // re-proposed against the new state by the next fill — exactly what the
  // sequential search would propose at those steps.
  batch_.clear();
  batch_pos_ = 0;
  commit_log_.clear();
  ++generation_;
}

// ---------------------------------------------------------------------------
// Batch scoring. During a fill nothing mutates the main engine: every
// parallel_for participant (the calling thread included) scores on a
// private worker engine, and eng_ is only read (binding copies for fresh
// workers). Worker engines are pooled across fills and caught up to the
// main engine by replaying the commit log — the same derived-RNG recipe
// the main engine executed, so worker state is bit-identical to eng_'s.

ProposalPipeline::Worker ProposalPipeline::acquire_worker() {
  {
    MutexLock lk(workers_mu_);
    if (!free_workers_.empty()) {
      Worker w = std::move(free_workers_.back());
      free_workers_.pop_back();
      return w;
    }
  }
  Worker w;
  // Workers share the main engine's immutable static tables (per-op
  // generator lists, candidate caches) instead of re-deriving them from the
  // problem — stamping out a worker is O(binding), not O(design analysis).
  w.eng = std::make_unique<SearchEngine>(eng_.binding(), eng_);
  w.applied = commit_log_.size();
  w.generation = generation_;
  return w;
}

void ProposalPipeline::release_worker(Worker w) {
  MutexLock lk(workers_mu_);
  free_workers_.push_back(std::move(w));
}

void ProposalPipeline::replay_commit(SearchEngine& e, long step) {
  Rng r(derive_seed(seed_, static_cast<uint64_t>(step)));
  const MoveKind kind = moves_.pick(r);
  const auto d = e.propose(kind, r);
  SALSA_CHECK_MSG(d.has_value(), "speculation catch-up replay infeasible");
  e.commit();
}

void ProposalPipeline::catch_up(Worker& w) {
  if (w.generation != generation_) {
    w.eng->reset_to(eng_.binding());
    w.applied = commit_log_.size();
    w.generation = generation_;
    return;
  }
  while (w.applied < commit_log_.size())
    replay_commit(*w.eng, commit_log_[w.applied++]);
}

void ProposalPipeline::score_entry(SearchEngine& worker, int i, long base) {
  Entry& e = batch_[static_cast<size_t>(i)];
  e.step = base + i;
  Rng r(derive_seed(seed_, static_cast<uint64_t>(e.step)));
  e.kind = moves_.pick(r);
  const auto d = worker.propose(e.kind, r, &e.fp);
  e.feasible = d.has_value();
  e.valid = true;
  // Written unconditionally: entries are reused, and the sequential path
  // also reports the post-proposal RNG state for infeasible candidates.
  e.rng_after = r;
  if (d) {
    e.delta = *d;
    if (SearchObserver* obs = eng_.observer()) {
      // Serialized: observers (the invariant auditor) are not
      // thread-safe. The worker's transaction is still open so the
      // observer can cross-check the speculative delta in place.
      MutexLock lk(observer_mu_);
      obs->on_speculate(worker, *d);
    }
    worker.rollback();
  }
}

void ProposalPipeline::fill_batch() {
  ++stats_.batches;
  stats_.speculated += k_;
  // Entries (and their footprint buffers) are reused across batches: every
  // field is rewritten by score_entry, and propose() clears the footprint
  // before capturing into it.
  if (batch_.size() != static_cast<size_t>(k_))
    batch_.resize(static_cast<size_t>(k_));
  const long base = step_;
  // Chunked scoring: one contiguous candidate slice per participant, so a
  // batch costs P worker acquisitions and catch-ups instead of k. What a
  // candidate computes is chunking-invariant — every worker is caught up to
  // the same snapshot before scoring and rolls each proposal back — so the
  // split only moves per-candidate pool overhead off the hot path.
  const int chunks = std::min(k_, cfg_.parallelism.resolve());
  if (scratch_words_ == 0)
    scratch_words_ = (eng_.binding().prob().num_regs() + 63) >> 6;
  scratch_.resize(static_cast<size_t>(chunks) *
                  static_cast<size_t>(scratch_words_));
  parallel_for(cfg_.parallelism, chunks, [&](int c) {
    Worker w = acquire_worker();
    catch_up(w);
    w.eng->bind_batch_scratch(
        scratch_.data() +
            static_cast<size_t>(c) * static_cast<size_t>(scratch_words_),
        scratch_words_);
    const int lo = static_cast<int>((static_cast<long>(k_) * c) / chunks);
    const int hi = static_cast<int>((static_cast<long>(k_) * (c + 1)) / chunks);
    for (int i = lo; i < hi; ++i) score_entry(*w.eng, i, base);
    w.eng->bind_batch_scratch(nullptr, 0);
    release_worker(std::move(w));
  });
  batch_pos_ = 0;
}

}  // namespace salsa
