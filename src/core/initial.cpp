#include "core/initial.h"

#include <algorithm>
#include <set>

#include "core/cost.h"
#include "util/rng.h"

namespace salsa {

namespace {

// Connection keys a placement would add, against the set accumulated so far.
class ConnTracker {
 public:
  int would_add(const std::vector<std::pair<uint64_t, uint64_t>>& conns) const {
    int fresh = 0;
    for (const auto& c : conns)
      if (!seen_.count(c)) ++fresh;
    return fresh;
  }
  void add(const std::vector<std::pair<uint64_t, uint64_t>>& conns) {
    for (const auto& c : conns) seen_.insert(c);
  }

 private:
  std::set<std::pair<uint64_t, uint64_t>> seen_;
};

}  // namespace

Binding initial_allocation(const AllocProblem& prob,
                           const InitialOptions& opts) {
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();
  const Lifetimes& lt = prob.lifetimes();
  const int L = sched.length();
  Rng rng(opts.seed);
  Binding b(prob);

  // ---- operators to FUs, first-available per control step -----------------
  std::vector<std::vector<bool>> fu_busy(
      static_cast<size_t>(prob.fus().size()),
      std::vector<bool>(static_cast<size_t>(L), false));
  std::vector<NodeId> ops = g.operations();
  std::sort(ops.begin(), ops.end(), [&](NodeId a, NodeId c) {
    return sched.start(a) != sched.start(c) ? sched.start(a) < sched.start(c)
                                            : a < c;
  });
  for (NodeId n : ops) {
    const OpKind k = g.node(n).kind;
    const int occ = sched.hw().occupancy(k);
    FuId chosen = kInvalidId;
    for (FuId f : prob.fus().of_class(fu_class_of(k))) {
      bool free = true;
      for (int t = sched.start(n); t < sched.start(n) + occ; ++t)
        if (fu_busy[static_cast<size_t>(f)][static_cast<size_t>(t)]) {
          free = false;
          break;
        }
      if (free) {
        chosen = f;
        break;
      }
    }
    SALSA_CHECK_MSG(chosen != kInvalidId,
                    "initial allocation: FU pool too small for op '" +
                        g.node(n).name + "'");
    for (int t = sched.start(n); t < sched.start(n) + occ; ++t)
      fu_busy[static_cast<size_t>(chosen)][static_cast<size_t>(t)] = true;
    b.op(n).fu = chosen;
  }

  // ---- storages to registers ----------------------------------------------
  const int min_regs = lt.min_registers();
  auto touches_peak = [&](const Storage& s) {
    for (int seg = 0; seg < s.len; ++seg)
      if (lt.demand()[static_cast<size_t>(s.step_at(seg, L))] == min_regs)
        return true;
    return false;
  };
  std::vector<int> order(static_cast<size_t>(lt.num_storages()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.shuffle(order);  // tie-breaking varies with the seed
  std::stable_sort(order.begin(), order.end(), [&](int a, int c) {
    const Storage& sa = lt.storage(a);
    const Storage& sc = lt.storage(c);
    auto rank = [&](const Storage& s) {
      for (ValueId v : s.members)
        if (g.node(g.producer(v)).kind == OpKind::kState) return 0;  // loop I/O
      return touches_peak(s) ? 1 : 2;
    };
    const int ra = rank(sa), rc = rank(sc);
    if (ra != rc) return ra < rc;
    return sa.len > sc.len;  // long lifetimes early
  });

  std::vector<std::vector<int>> reg_sto(
      static_cast<size_t>(prob.num_regs()),
      std::vector<int>(static_cast<size_t>(L), -1));
  ConnTracker tracker;

  // Connections created by serving this storage's reads from `reg` and (for
  // seg 0) writing it from its producer. Approximate: operand swaps are all
  // still false at this point.
  auto placement_conns = [&](int sid, int seg, RegId reg) {
    const Storage& s = lt.storage(sid);
    std::vector<std::pair<uint64_t, uint64_t>> conns;
    if (seg == 0) {
      const Endpoint src =
          s.producer == kInvalidId
              ? Endpoint{Endpoint::Kind::kInPort, g.producer(s.members[0])}
              : Endpoint{Endpoint::Kind::kFuOut, b.op(s.producer).fu};
      conns.emplace_back(key_of(Pin{Pin::Kind::kRegIn, reg}), key_of(src));
    }
    for (const StorageRead& r : s.reads) {
      if (r.seg != seg) continue;
      const Node& cn = g.node(r.consumer);
      Pin sink = cn.kind == OpKind::kOutput
                     ? Pin{Pin::Kind::kOutPort, r.consumer}
                     : Pin{r.operand == 0 ? Pin::Kind::kFuIn0
                                          : Pin::Kind::kFuIn1,
                           b.op(r.consumer).fu};
      conns.emplace_back(key_of(sink),
                         key_of(Endpoint{Endpoint::Kind::kRegOut, reg}));
    }
    return conns;
  };

  for (int sid : order) {
    const Storage& s = lt.storage(sid);
    // Contiguous candidates.
    RegId best_reg = kInvalidId;
    int best_score = 0;
    for (RegId r = 0; r < prob.num_regs(); ++r) {
      bool free = true;
      for (int seg = 0; seg < s.len && free; ++seg)
        free = reg_sto[static_cast<size_t>(r)]
                      [static_cast<size_t>(s.step_at(seg, L))] == -1;
      if (!free) continue;
      std::vector<std::pair<uint64_t, uint64_t>> conns;
      for (int seg = 0; seg < s.len; ++seg) {
        auto c = placement_conns(sid, seg, r);
        conns.insert(conns.end(), c.begin(), c.end());
      }
      const int score = tracker.would_add(conns);
      if (best_reg == kInvalidId || score < best_score) {
        best_reg = r;
        best_score = score;
      }
    }
    StorageBinding& sb = b.sto(sid);
    if (best_reg != kInvalidId) {
      for (int seg = 0; seg < s.len; ++seg) {
        sb.cells[static_cast<size_t>(seg)].assign(
            1, Cell{best_reg, seg == 0 ? -1 : 0, kInvalidId});
        tracker.add(placement_conns(sid, seg, best_reg));
      }
      for (int seg = 0; seg < s.len; ++seg)
        reg_sto[static_cast<size_t>(best_reg)]
               [static_cast<size_t>(s.step_at(seg, L))] = sid;
      continue;
    }
    // No contiguous space: split into per-step placements, staying in the
    // current register as long as it is free.
    if (!opts.allow_splits)
      fail("initial allocation: no contiguous register for storage '" +
           s.name + "'");
    RegId cur = kInvalidId;
    for (int seg = 0; seg < s.len; ++seg) {
      const int step = s.step_at(seg, L);
      auto is_free = [&](RegId r) {
        return reg_sto[static_cast<size_t>(r)][static_cast<size_t>(step)] == -1;
      };
      if (cur == kInvalidId || !is_free(cur)) {
        RegId pick = kInvalidId;
        int pick_score = 0;
        for (RegId r = 0; r < prob.num_regs(); ++r) {
          if (!is_free(r)) continue;
          const int score = tracker.would_add(placement_conns(sid, seg, r));
          if (pick == kInvalidId || score < pick_score) {
            pick = r;
            pick_score = score;
          }
        }
        SALSA_CHECK_MSG(pick != kInvalidId,
                        "initial allocation: register demand exceeded");
        cur = pick;
      }
      sb.cells[static_cast<size_t>(seg)].assign(
          1, Cell{cur, seg == 0 ? -1 : 0, kInvalidId});
      tracker.add(placement_conns(sid, seg, cur));
      reg_sto[static_cast<size_t>(cur)][static_cast<size_t>(step)] = sid;
    }
  }
  return b;
}

}  // namespace salsa
