// Lifetime (segment) analysis: turns a validated schedule into storage
// entities and their one-control-step segments — the paper's slack-node view
// of values (Section 2).
//
// A *storage* is the unit that occupies registers. Ordinary values map to
// one storage each; a loop-carried state and the value that becomes its next
// content merge into a single storage whose live range wraps around the
// iteration boundary (this realises the paper's loop-consistency rule: the
// register chain is cyclic, so whatever register holds the last segment of
// iteration i holds the first segment of iteration i+1).
//
// The live range of a storage is a cyclic arc of control steps:
//   step_at(0) = birth, step_at(i) = (birth + i) mod L, for i in [0, len).
// Each live step is one *segment*; the binding layer may place each segment
// in a different register and may keep several simultaneous copies per
// segment (cells).
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "util/bitplane.h"

namespace salsa {

/// One read of a storage by a consumer node.
struct StorageRead {
  NodeId consumer = kInvalidId;  ///< op or Output node
  int operand = 0;               ///< operand slot of the consumer (0 or 1)
  int step = 0;                  ///< control step of the read
  int seg = 0;                   ///< segment index: step == step_at(seg)
};

/// A register-occupying entity: a value, or a state merged with its
/// next-iteration content.
struct Storage {
  std::vector<ValueId> members;  ///< CDFG values sharing this storage
  /// Node whose FU output writes the storage (kInvalidId for primary
  /// inputs, which are written by the environment at the iteration edge).
  NodeId producer = kInvalidId;
  bool wraps = false;  ///< live range crosses the iteration boundary
  int birth = 0;       ///< first live step (mod schedule length)
  int len = 0;         ///< number of live steps (segments), >= 1
  std::vector<StorageRead> reads;
  std::string name;

  int step_at(int seg, int sched_len) const {
    return (birth + seg) % sched_len;
  }
};

/// Segment analysis of one schedule. Constructed by AllocProblem.
class Lifetimes {
 public:
  explicit Lifetimes(const Schedule& sched);

  const Schedule& sched() const { return *sched_; }
  int num_storages() const { return static_cast<int>(storages_.size()); }
  const Storage& storage(int sid) const {
    return storages_[static_cast<size_t>(sid)];
  }
  const std::vector<Storage>& storages() const { return storages_; }

  /// Storage holding a value; -1 for constants and dead (never-stored)
  /// values.
  int storage_of(ValueId v) const { return sto_of_[static_cast<size_t>(v)]; }

  /// Control step of a storage's segment.
  int step_of_seg(int sid, int seg) const {
    return storage(sid).step_at(seg, sched_->length());
  }
  /// Segment index live at `step`, or -1 if the storage is not live then.
  int seg_at_step(int sid, int step) const;

  /// Number of storages live at each control step.
  const std::vector<int>& demand() const { return demand_; }
  /// Minimum register count: the peak of demand().
  int min_registers() const;

  /// Packed live masks (util/bitplane.h): row `sid` has bit `t` set iff the
  /// storage is live at control step t. Built once per schedule via the
  /// cyclic two-span wrap decomposition of [birth, birth + len) mod L, so a
  /// wrapping arc contributes its tail span [birth, L) and head span
  /// [0, birth + len - L) — split/merge feasibility and overlap questions
  /// become word AND-any against these rows.
  const BitPlane& live_masks() const { return live_; }
  const uint64_t* live_row(int sid) const { return live_.row(sid); }

  /// Control step of every segment of `sid`: steps_of(sid)[seg] ==
  /// step_at(seg, L), precomputed so per-segment claim and scan loops skip
  /// the modulo.
  const std::vector<int>& steps_of(int sid) const {
    return steps_[static_cast<size_t>(sid)];
  }

  /// True iff the two storages' live arcs share a control step.
  bool overlaps(int a, int b) const {
    return words_and_any(live_.row(a), live_.row(b), live_.stride());
  }

 private:
  const Schedule* sched_;
  std::vector<Storage> storages_;
  std::vector<int> sto_of_;
  std::vector<int> demand_;
  BitPlane live_;                        ///< rows = storages, bits = steps
  std::vector<std::vector<int>> steps_;  ///< per-storage segment steps
};

}  // namespace salsa
