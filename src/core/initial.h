// Constructive initial allocation (Section 4): operators to functional units
// on a first-available basis; loop-carried storages placed first (their
// cross-iteration consistency is automatic here, because a state and its
// next content form one cyclic storage); then storages covering the
// maximum-demand steps; remaining storages placed where they add the fewest
// new connections. Every storage is kept contiguous in a single register
// unless no register has contiguous space, in which case it is split into
// segments that fit ("value split" forced by capacity, as in the paper).
#pragma once

#include "core/binding.h"

namespace salsa {

struct InitialOptions {
  /// Permit forced splits when no contiguous register exists. When false,
  /// initial_allocation throws instead (the traditional-model baseline
  /// retries with a different placement order).
  bool allow_splits = true;
  /// Seed for placement tie-breaking.
  uint64_t seed = 1;
};

/// Builds a legal starting allocation. Throws salsa::Error when placement is
/// impossible under the options.
Binding initial_allocation(const AllocProblem& prob,
                           const InitialOptions& opts = {});

}  // namespace salsa
