// Simulated-annealing driver over the same move set, for the Section 4
// ablation: the authors report that annealing "produced poor results and
// seldom converged on a good solution" for this problem, which motivated
// the trial-based iterative improvement scheme. bench_ablation_search
// reproduces that comparison.
#pragma once

#include "core/improver.h"

namespace salsa {

struct AnnealParams {
  MoveConfig moves = MoveConfig::salsa_default();
  double initial_temp = 30.0;
  double cooling = 0.95;       ///< geometric factor per temperature level
  int moves_per_temp = 3000;
  int num_temps = 40;
  uint64_t seed = 1;
  /// Optional JSONL search trace (see ImproveParams::trace); records carry
  /// the current temperature as "temp".
  std::ostream* trace = nullptr;
  /// Optional transaction observer (see ImproveParams::observer).
  SearchObserver* observer = nullptr;
  /// Speculative proposal batching (see ImproveParams::speculation).
  SpeculationConfig speculation;
};

/// Runs simulated annealing from `start` (Metropolis acceptance). Returns
/// the best binding seen, its cost, and acceptance statistics.
ImproveResult anneal(const Binding& start, const AnnealParams& params);

}  // namespace salsa
