#include "core/resources.h"

#include "core/lifetime.h"
#include "sched/fu_search.h"

namespace salsa {

FuPool FuPool::standard(const FuBudget& budget, bool alu_can_pass,
                        bool mul_can_pass) {
  FuPool pool;
  for (int i = 0; i < budget.alu; ++i)
    pool.add(FuInst{"ALU" + std::to_string(i), FuClass::kAlu, alu_can_pass});
  for (int i = 0; i < budget.mul; ++i)
    pool.add(FuInst{"MUL" + std::to_string(i), FuClass::kMul, mul_can_pass});
  return pool;
}

FuId FuPool::add(FuInst fu) {
  fus_.push_back(std::move(fu));
  return static_cast<FuId>(fus_.size() - 1);
}

std::vector<FuId> FuPool::of_class(FuClass c) const {
  std::vector<FuId> out;
  for (FuId f = 0; f < size(); ++f)
    if (fu(f).cls == c) out.push_back(f);
  return out;
}

std::vector<FuId> FuPool::pass_capable() const {
  std::vector<FuId> out;
  for (FuId f = 0; f < size(); ++f)
    if (fu(f).can_pass) out.push_back(f);
  return out;
}

AllocProblem::AllocProblem(const Schedule& sched, FuPool fus, int num_regs,
                           CostWeights weights)
    : sched_(&sched),
      fus_(std::move(fus)),
      num_regs_(num_regs),
      weights_(weights),
      lifetimes_(std::make_unique<Lifetimes>(sched)) {
  SALSA_CHECK_MSG(num_regs_ >= lifetimes_->min_registers(),
                  "register budget below the schedule's minimum demand (" +
                      std::to_string(lifetimes_->min_registers()) + ")");
  const FuBudget need = peak_fu_demand(sched);
  SALSA_CHECK_MSG(static_cast<int>(fus_.of_class(FuClass::kAlu).size()) >=
                      need.alu,
                  "FU pool has fewer ALUs than the schedule's peak demand");
  SALSA_CHECK_MSG(static_cast<int>(fus_.of_class(FuClass::kMul).size()) >=
                      need.mul,
                  "FU pool has fewer multipliers than the schedule's peak demand");
}

AllocProblem::~AllocProblem() = default;

}  // namespace salsa
