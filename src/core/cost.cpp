#include "core/cost.h"

#include <algorithm>

namespace salsa {

uint64_t key_of(const Endpoint& e) {
  return (static_cast<uint64_t>(e.kind) << 32) |
         static_cast<uint32_t>(e.id);
}

uint64_t key_of(const Pin& p) {
  return (static_cast<uint64_t>(p.kind) << 32) | static_cast<uint32_t>(p.id);
}

std::vector<ConnUse> connection_uses(const Binding& b) {
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();
  const Lifetimes& lt = prob.lifetimes();
  const int L = sched.length();

  std::vector<ConnUse> uses;
  uses.reserve(256);

  // Helper: the endpoint producing a value read by an operation. Constants
  // come from the constant port of their node; everything else is read from
  // the register cell the read record names.
  auto operand_source = [&](int sid, int read_idx) -> Endpoint {
    return Endpoint{Endpoint::Kind::kRegOut, b.read_reg(sid, read_idx)};
  };

  // Reads: operand fetches and output samples.
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    for (size_t ri = 0; ri < s.reads.size(); ++ri) {
      const StorageRead& r = s.reads[ri];
      const Node& cn = g.node(r.consumer);
      const Endpoint src = operand_source(sid, static_cast<int>(ri));
      if (cn.kind == OpKind::kOutput) {
        uses.push_back({src, Pin{Pin::Kind::kOutPort, r.consumer}, r.step});
      } else {
        const OpBind& ob = b.op(r.consumer);
        const int slot = ob.swap ? 1 - r.operand : r.operand;
        uses.push_back(
            {src,
             Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1, ob.fu},
             r.step});
      }
    }
  }

  // Constant operands (free in the cost function but needed by the netlist).
  for (NodeId n : g.operations()) {
    const Node& nd = g.node(n);
    for (size_t k = 0; k < nd.ins.size(); ++k) {
      if (!g.is_const_value(nd.ins[k])) continue;
      const OpBind& ob = b.op(n);
      const int slot = ob.swap ? 1 - static_cast<int>(k) : static_cast<int>(k);
      uses.push_back({Endpoint{Endpoint::Kind::kConstPort,
                               g.producer(nd.ins[k])},
                      Pin{slot == 0 ? Pin::Kind::kFuIn0 : Pin::Kind::kFuIn1,
                          ob.fu},
                      sched.start(n)});
    }
  }

  // Cell writes: producer latches, environment input loads, transfers.
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    const StorageBinding& sb = b.sto(sid);
    for (int seg = 0; seg < s.len; ++seg) {
      const int wstep = (s.step_at(seg, L) - 1 + L) % L;  // write happens here
      for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
        const Pin sink{Pin::Kind::kRegIn, c.reg};
        if (seg == 0) {
          if (s.producer == kInvalidId) {
            // Primary input: loaded from the input port at the iteration
            // boundary (the step before birth, i.e. L-1).
            const NodeId in_node = g.producer(s.members[0]);
            uses.push_back(
                {Endpoint{Endpoint::Kind::kInPort, in_node}, sink, wstep});
          } else {
            uses.push_back({Endpoint{Endpoint::Kind::kFuOut,
                                     b.op(s.producer).fu},
                            sink, wstep});
          }
          continue;
        }
        const Cell& parent =
            sb.cells[static_cast<size_t>(seg) - 1][static_cast<size_t>(c.parent)];
        if (parent.reg == c.reg) continue;  // hold: no interconnect
        if (c.via == kInvalidId) {
          uses.push_back(
              {Endpoint{Endpoint::Kind::kRegOut, parent.reg}, sink, wstep});
        } else {
          // Pass-through: parent register -> FU input 0 -> FU output -> reg.
          uses.push_back({Endpoint{Endpoint::Kind::kRegOut, parent.reg},
                          Pin{Pin::Kind::kFuIn0, c.via}, wstep});
          uses.push_back(
              {Endpoint{Endpoint::Kind::kFuOut, c.via}, sink, wstep});
        }
      }
    }
  }
  return uses;
}

CostBreakdown evaluate_cost(const Binding& b) {
  CostBreakdown out;
  out.fus_used = b.fus_used();
  out.regs_used = b.regs_used();

  auto uses = connection_uses(b);
  // Distinct (sink, src) pairs; constants excluded per the paper's rule
  // unless the problem's weights charge them.
  const bool charge_consts = b.prob().weights().constants_cost;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(uses.size());
  for (const ConnUse& u : uses) {
    if (!charge_consts && u.src.kind == Endpoint::Kind::kConstPort) continue;
    pairs.emplace_back(key_of(u.sink), key_of(u.src));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  out.connections = static_cast<int>(pairs.size());
  // Equivalent 2-1 muxes: per sink pin, (#sources - 1).
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    out.muxes += static_cast<int>(j - i) - 1;
    i = j;
  }

  const CostWeights& w = b.prob().weights();
  out.total = w.fu * out.fus_used + w.reg * out.regs_used +
              w.mux * out.muxes + w.conn * out.connections;
  return out;
}

int count_muxes(const Binding& b) { return evaluate_cost(b).muxes; }

}  // namespace salsa
