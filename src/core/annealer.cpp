#include "core/annealer.h"

#include <cmath>

#include "core/search_engine.h"
#include "core/verify.h"

namespace salsa {

ImproveResult anneal(const Binding& start, const AnnealParams& params) {
  check_legal(start);

  SearchEngine eng(start);
  eng.set_trace(params.trace);
  eng.set_observer(params.observer);
  ProposalPipeline pipe(eng, params.moves, params.speculation, params.seed,
                        params.trace != nullptr);
  Binding best = start;
  double best_cost = eng.total();

  ImproveStats stats;
  double temp = params.initial_temp;
  for (int level = 0; level < params.num_temps; ++level, temp *= params.cooling) {
    ++stats.trials;
    eng.set_trace_aux("temp", temp);
    for (int m = 0; m < params.moves_per_temp; ++m) {
      const auto c = pipe.next();
      if (!c.feasible) continue;
      ++stats.attempted;
      bool accept = c.delta <= 0;
      if (!accept && temp > 1e-9) {
        // The Metropolis draw comes from the candidate's own RNG stream
        // (continued past the proposal draws), so acceptance randomness is
        // a function of the candidate alone — identical whether the
        // candidate was scored speculatively or proposed live.
        Rng r = c.rng_after;
        accept = r.uniform01() < std::exp(-c.delta / temp);
      }
      pipe.decide(accept);
      if (!accept) continue;
      ++stats.accepted;
      if (c.delta > 0) ++stats.uphill;
      if (eng.total() < best_cost - 1e-9) {
        best = eng.binding();
        best_cost = eng.total();
      }
    }
  }
  stats.by_kind = pipe.kind_stats();
  stats.spec = pipe.spec_stats();
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
