#include "core/annealer.h"

#include <cmath>

#include "core/search_engine.h"
#include "core/verify.h"

namespace salsa {

ImproveResult anneal(const Binding& start, const AnnealParams& params) {
  check_legal(start);
  Rng rng(params.seed);

  SearchEngine eng(start);
  eng.set_trace(params.trace);
  eng.set_observer(params.observer);
  Binding best = start;
  double best_cost = eng.total();

  ImproveStats stats;
  double temp = params.initial_temp;
  for (int level = 0; level < params.num_temps; ++level, temp *= params.cooling) {
    ++stats.trials;
    eng.set_trace_aux("temp", temp);
    for (int m = 0; m < params.moves_per_temp; ++m) {
      const MoveKind kind = params.moves.pick(rng);
      const auto delta = eng.propose(kind, rng);
      if (!delta) continue;
      ++stats.attempted;
      bool accept = *delta <= 0;
      if (!accept && temp > 1e-9)
        accept = rng.uniform01() < std::exp(-*delta / temp);
      if (!accept) {
        eng.rollback();
        continue;
      }
      eng.commit();
      ++stats.accepted;
      if (*delta > 0) ++stats.uphill;
      if (eng.total() < best_cost - 1e-9) {
        best = eng.binding();
        best_cost = eng.total();
      }
    }
  }
  stats.by_kind = eng.kind_stats();
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
