#include "core/annealer.h"

#include <cmath>

#include "core/verify.h"

namespace salsa {

ImproveResult anneal(const Binding& start, const AnnealParams& params) {
  check_legal(start);
  Rng rng(params.seed);

  Binding current = start;
  double current_cost = evaluate_cost(current).total;
  Binding best = current;
  double best_cost = current_cost;

  ImproveStats stats;
  double temp = params.initial_temp;
  for (int level = 0; level < params.num_temps; ++level, temp *= params.cooling) {
    ++stats.trials;
    for (int m = 0; m < params.moves_per_temp; ++m) {
      const MoveKind kind = params.moves.pick(rng);
      Binding candidate = current;
      if (!apply_random_move(candidate, kind, rng)) continue;
      ++stats.attempted;
      const double cost = evaluate_cost(candidate).total;
      const double delta = cost - current_cost;
      bool accept = delta <= 0;
      if (!accept && temp > 1e-9)
        accept = rng.uniform01() < std::exp(-delta / temp);
      if (!accept) continue;
      ++stats.accepted;
      if (delta > 0) ++stats.uphill;
      current = std::move(candidate);
      current_cost = cost;
      if (current_cost < best_cost - 1e-9) {
        best = current;
        best_cost = current_cost;
      }
    }
  }
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
