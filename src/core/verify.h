// Static legality verification of a binding: every rule of the extended
// binding model, reported as a list of human-readable violations (empty ==
// legal). Tests and the allocator's public API run this on every result;
// the datapath simulator provides the complementary dynamic check.
#pragma once

#include <string>
#include <vector>

#include "core/binding.h"

namespace salsa {

/// Returns all rule violations of `b` (empty if the binding is legal):
///   * every operation bound to an FU of its class;
///   * no two occupants of an FU at a step (ops and pass-throughs);
///   * no two storages in a register at a step, no duplicate cells;
///   * cell chains well-formed (seg-0 cells producer-written, others with a
///     valid parent; via only on actual transfers, on idle pass-capable FUs);
///   * every read served by an existing cell;
///   * at most one driving source per module input pin per step.
std::vector<std::string> verify(const Binding& b);

/// Convenience: throws salsa::Error with all violations if any.
void check_legal(const Binding& b);

}  // namespace salsa
