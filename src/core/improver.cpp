#include "core/improver.h"

#include "core/search_engine.h"
#include "core/verify.h"

namespace salsa {

ImproveResult improve(const Binding& start, const ImproveParams& params) {
  check_legal(start);
  Rng rng(params.seed);

  SearchEngine eng(start);
  eng.set_trace(params.trace);
  eng.set_observer(params.observer);
  Binding best = start;
  double best_cost = eng.total();

  ImproveStats stats;
  int stale = 0;
  for (int trial = 0; trial < params.max_trials; ++trial) {
    ++stats.trials;
    int uphill_left = params.uphill_per_trial;
    bool improved = false;
    for (int m = 0; m < params.moves_per_trial; ++m) {
      const MoveKind kind = params.moves.pick(rng);
      eng.set_trace_aux("uphill_left", uphill_left);
      const auto delta = eng.propose(kind, rng);
      if (!delta) continue;
      ++stats.attempted;
      bool accept = *delta <= 0;
      if (!accept && uphill_left > 0 && *delta <= params.max_uphill_delta) {
        accept = true;
        --uphill_left;
        ++stats.uphill;
      }
      if (!accept) {
        eng.rollback();
        continue;
      }
      eng.commit();
      ++stats.accepted;
      if (eng.total() < best_cost - 1e-9) {
        best = eng.binding();
        best_cost = eng.total();
        improved = true;
      }
    }
    if (improved) {
      stale = 0;
    } else {
      // Return to the best known allocation before exploring again.
      eng.reset_to(best);
      if (++stale >= params.stop_after_stale) break;
    }
  }
  stats.by_kind = eng.kind_stats();
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
