#include "core/improver.h"

#include "core/verify.h"

namespace salsa {

ImproveResult improve(const Binding& start, const ImproveParams& params) {
  check_legal(start);
  Rng rng(params.seed);

  Binding current = start;
  double current_cost = evaluate_cost(current).total;
  Binding best = current;
  double best_cost = current_cost;

  ImproveStats stats;
  int stale = 0;
  for (int trial = 0; trial < params.max_trials; ++trial) {
    ++stats.trials;
    int uphill_left = params.uphill_per_trial;
    bool improved = false;
    for (int m = 0; m < params.moves_per_trial; ++m) {
      const MoveKind kind = params.moves.pick(rng);
      Binding candidate = current;
      if (!apply_random_move(candidate, kind, rng)) continue;
      ++stats.attempted;
      const double cost = evaluate_cost(candidate).total;
      const double delta = cost - current_cost;
      bool accept = delta <= 0;
      if (!accept && uphill_left > 0 && delta <= params.max_uphill_delta) {
        accept = true;
        --uphill_left;
        ++stats.uphill;
      }
      if (!accept) continue;
      ++stats.accepted;
      current = std::move(candidate);
      current_cost = cost;
      if (current_cost < best_cost - 1e-9) {
        best = current;
        best_cost = current_cost;
        improved = true;
      }
    }
    if (improved) {
      stale = 0;
    } else {
      // Return to the best known allocation before exploring again.
      current = best;
      current_cost = best_cost;
      if (++stale >= params.stop_after_stale) break;
    }
  }
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
