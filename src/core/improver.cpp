#include "core/improver.h"

#include "core/search_engine.h"
#include "core/verify.h"

namespace salsa {

ImproveResult improve(const Binding& start, const ImproveParams& params) {
  check_legal(start);

  SearchEngine eng(start);
  eng.set_trace(params.trace);
  eng.set_observer(params.observer);
  // All proposals flow through the speculation pipeline: candidate i draws
  // from its own derived RNG stream and is either scored speculatively
  // against a snapshot or proposed live — the served trajectory is the
  // same either way. Traced runs are forced sequential so the JSONL stream
  // interleaves with engine state exactly as written.
  ProposalPipeline pipe(eng, params.moves, params.speculation, params.seed,
                        params.trace != nullptr);
  Binding best = start;
  double best_cost = eng.total();

  ImproveStats stats;
  int stale = 0;
  for (int trial = 0; trial < params.max_trials; ++trial) {
    ++stats.trials;
    int uphill_left = params.uphill_per_trial;
    bool improved = false;
    for (int m = 0; m < params.moves_per_trial; ++m) {
      eng.set_trace_aux("uphill_left", uphill_left);
      const auto c = pipe.next();
      if (!c.feasible) continue;
      ++stats.attempted;
      bool accept = c.delta <= 0;
      if (!accept && uphill_left > 0 && c.delta <= params.max_uphill_delta) {
        accept = true;
        --uphill_left;
        ++stats.uphill;
      }
      pipe.decide(accept);
      if (!accept) continue;
      ++stats.accepted;
      if (eng.total() < best_cost - 1e-9) {
        best = eng.binding();
        best_cost = eng.total();
        improved = true;
      }
    }
    if (improved) {
      stale = 0;
    } else {
      // Return to the best known allocation before exploring again.
      pipe.reset_to(best);
      if (++stale >= params.stop_after_stale) break;
    }
  }
  stats.by_kind = pipe.kind_stats();
  stats.spec = pipe.spec_stats();
  check_legal(best);
  CostBreakdown final_cost = evaluate_cost(best);
  return ImproveResult{std::move(best), final_cost, stats};
}

}  // namespace salsa
