// Speculative parallel move proposals: the per-engine parallelism level of
// the search runtime (ROADMAP: "speculative proposal evaluation inside a
// single SearchEngine"), one level below PR 2's restart fan-out.
//
// A ProposalPipeline sits between an acceptance policy (improver, annealer,
// ILS) and its SearchEngine. Per batch it proposes k candidate moves
// against a *frozen snapshot* of the binding, scores their cost deltas in
// parallel on the shared thread pool — each speculation runs on a private
// worker engine caught up to the snapshot and captures a MoveFootprint
// (core/footprint.h) — then serves the candidates to the policy in strict
// proposal order:
//
//   * The policy accepts a candidate → the move is replayed on the main
//     engine (same derived RNG stream, so the same instance), its delta is
//     cross-checked against the speculative score (SALSA_CHECK), and every
//     later speculation in the batch whose footprint intersects the
//     committed move's write-set is discarded.
//   * The policy rejects a candidate → the engine state is unchanged, so
//     every later speculation remains exact. Nothing to do.
//   * A discarded speculation that reaches the front is re-scored live on
//     the main engine, exactly as in sequential mode.
//
// Determinism: candidate i of the run is always proposed from the RNG
// stream derive_seed(seed, i) — a function of (seed, i) alone — and scored
// either against engine state identical to what the sequential search had
// at step i (snapshot + no intervening conflicting commit) or live on that
// very state. Trajectories, accepted-move streams and the pipeline's move
// statistics are therefore byte-identical to sequential execution for any
// thread count and any k. tests/test_speculation.cpp enforces this;
// DESIGN.md ("Speculative move proposals") carries the full argument.
//
// With k == 1 the pipeline degenerates to plain sequential proposing on the
// policy's engine (no snapshots, no workers, no replay) — speculation off.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/footprint.h"
#include "core/moves.h"
#include "core/search_engine.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace salsa {

/// Speculation width from the SALSA_SPECULATION environment variable:
/// unset, "0" or "off" → 1 (speculation disabled); "on" or "auto" → 8; a
/// number n >= 1 → n. Anything else fails.
int default_speculation_k();

/// Knob threaded through AllocatorOptions / ImproveParams / AnnealParams /
/// IlsParams down to the ProposalPipeline.
struct SpeculationConfig {
  /// Proposals scored per speculative batch. 1 disables speculation
  /// (candidates are proposed one at a time on the policy's engine);
  /// 0 = auto: the SALSA_SPECULATION environment variable, else 1.
  int k = 0;
  /// Thread budget for scoring one batch (the caller participates).
  Parallelism parallelism;
  /// Keep the configured width even where the pipeline would auto-degrade
  /// it to 1 (effective parallelism <= 1, where snapshot scoring cannot
  /// overlap anything and is pure per-candidate overhead — see
  /// EXPERIMENTS.md "Move throughput"). Trajectories are width-invariant by
  /// contract, so degrading never changes results, only SpecStats; tests
  /// that assert on those counters pin the width.
  bool pin_width = false;

  /// Resolved batch width (always >= 1).
  int resolve_k() const { return k > 0 ? k : default_speculation_k(); }
};

/// Speculation effectiveness counters (surfaced through
/// ImproveStats::spec and bench_runtime's BM_SpeculativeMoves). All five
/// are deterministic for a fixed (seed, k) — independent of thread count.
struct SpecStats {
  long batches = 0;     ///< speculative batches filled
  long speculated = 0;  ///< proposals scored against a snapshot
  long served = 0;      ///< snapshot scores still valid when served
  long discarded = 0;   ///< invalidated by an earlier commit's footprint
  long rescored = 0;    ///< re-proposed live after invalidation

  SpecStats& operator+=(const SpecStats& o) {
    batches += o.batches;
    speculated += o.speculated;
    served += o.served;
    discarded += o.discarded;
    rescored += o.rescored;
    return *this;
  }
  friend bool operator==(const SpecStats&, const SpecStats&) = default;
};

class ProposalPipeline {
 public:
  /// One candidate move, served in proposal order. `rng_after` is the RNG
  /// state after the proposal's draws — policies that need acceptance
  /// randomness (the annealer's Metropolis draw) take it from here so the
  /// draw is a function of the candidate, not of scoring order.
  struct Candidate {
    long step = 0;
    MoveKind kind{};
    bool feasible = false;
    double delta = 0;
    Rng rng_after{0};
  };

  /// The pipeline drives `eng` (not owned; must outlive the pipeline).
  /// `seed` roots the per-candidate RNG streams. `force_sequential`
  /// overrides the config to k = 1 — used by traced runs, whose JSONL
  /// stream must interleave with engine state exactly as written.
  ProposalPipeline(SearchEngine& eng, const MoveConfig& moves,
                   const SpeculationConfig& cfg, uint64_t seed,
                   bool force_sequential = false);
  ~ProposalPipeline();

  ProposalPipeline(const ProposalPipeline&) = delete;
  ProposalPipeline& operator=(const ProposalPipeline&) = delete;

  /// Serves the next candidate. For a feasible candidate the caller must
  /// call decide() before the next next(); infeasible candidates need no
  /// decision. In sequential mode (and on the live re-score path) a
  /// feasible candidate leaves an open transaction on the engine until
  /// decide().
  Candidate next();

  /// Accepts (commits) or rejects the candidate returned by the last
  /// next(). On acceptance of a snapshot-scored candidate the move is
  /// replayed on the main engine and the speculative delta is cross-checked
  /// exactly.
  void decide(bool accept);

  /// Restores the engine to `b` and drops every pending speculation (their
  /// step numbers are re-proposed against the new state). Mirrors
  /// SearchEngine::reset_to for pipeline users.
  void reset_to(const Binding& b);

  /// Resolved batch width (1 = sequential).
  int k() const { return k_; }

  /// Per-move-kind counters of the *trajectory*: every candidate served to
  /// the policy, and only those. Discarded speculations are excluded by
  /// construction, so these are byte-identical across modes, thread counts
  /// and k — unlike SearchEngine::kind_stats(), which also counts worker
  /// catch-up replays and accept-path replays.
  const std::array<MoveKindStats, kNumMoveKinds>& kind_stats() const {
    return kind_stats_;
  }
  const SpecStats& spec_stats() const { return stats_; }

  /// Test-only mutation hook: the `nth` footprint-conflict hit (1-based,
  /// over the pipeline's lifetime) does NOT invalidate its speculation —
  /// simulating a missed dependency. The stale candidate must then be
  /// caught by the replay delta cross-check or by the trajectory digest
  /// audit (the mutation test in tests/test_fuzz_moves.cpp proves it is);
  /// never set outside tests.
  void inject_skip_footprint_check_for_test(long nth) {
    skip_conflict_nth_ = nth;
  }

 private:
  struct Entry {
    long step = 0;
    MoveKind kind{};
    bool feasible = false;
    bool valid = false;  ///< snapshot score still exact?
    double delta = 0;
    Rng rng_after{0};
    MoveFootprint fp;
  };
  /// A pool-side scoring engine plus how far along the commit log it is.
  struct Worker {
    std::unique_ptr<SearchEngine> eng;
    size_t applied = 0;      ///< commit_log_ entries already replayed
    uint64_t generation = 0; ///< reset_to() epoch the engine belongs to
  };

  Candidate next_sequential();
  void fill_batch();
  void score_entry(SearchEngine& worker, int i, long base);
  Worker acquire_worker() SALSA_EXCLUDES(workers_mu_);
  void release_worker(Worker w) SALSA_EXCLUDES(workers_mu_);
  void catch_up(Worker& w);
  void replay_commit(SearchEngine& e, long step);
  void on_committed(const MoveFootprint& fp, long step);
  void advance();

  SearchEngine& eng_;
  MoveConfig moves_;
  SpeculationConfig cfg_;
  uint64_t seed_;
  int k_ = 1;

  long step_ = 0;  ///< next step (candidate index) to serve
  std::vector<Entry> batch_;
  size_t batch_pos_ = 0;

  // Candidate currently awaiting decide().
  bool pending_ = false;
  bool live_txn_ = false;  ///< the pending candidate holds an open txn
  long cur_step_ = 0;
  MoveKind cur_kind_{};
  double cur_delta_ = 0;
  MoveFootprint live_fp_;

  // Steps of committed moves since the last reset (maintained only when
  // k > 1): the recipe workers replay to catch their engines up to the
  // main engine before scoring a batch.
  std::vector<long> commit_log_;
  uint64_t generation_ = 0;
  // Worker-engine pool, shared by every parallel_for participant of a
  // fill_batch. The observer mutex guards no member — it serializes
  // on_speculate callbacks into the (single-threaded) auditor, so its
  // contract is the MutexLock around the call, not a SALSA_GUARDED_BY.
  Mutex workers_mu_;
  std::vector<Worker> free_workers_ SALSA_GUARDED_BY(workers_mu_);
  Mutex observer_mu_;

  // Contiguous per-chunk register-mask scratch (chunks x stride words):
  // every scoring chunk binds its own row to its worker engine, so the
  // proposers' mask accumulations run on one cache-resident arena through
  // the word kernels of util/bitplane.h instead of per-thread heap scratch.
  std::vector<uint64_t> scratch_;
  int scratch_words_ = 0;

  std::array<MoveKindStats, kNumMoveKinds> kind_stats_{};
  SpecStats stats_;
  long skip_conflict_nth_ = 0;
  long conflict_hits_ = 0;
};

}  // namespace salsa
