// Iterated local search — the paper's second "future work" item ("the
// iterative improvement scheme could be replaced by a more powerful
// approach"). Alternates full greedy descents with small random kicks from
// the incumbent optimum, which bench_ablation_search shows is a stronger
// use of uphill motion than either per-trial uphill quotas or annealing on
// this landscape.
#pragma once

#include "core/improver.h"

namespace salsa {

struct IlsParams {
  MoveConfig moves = MoveConfig::salsa_default();
  int iterations = 30;       ///< kick + descent rounds
  int kick_moves = 6;        ///< forced random moves per kick
  int descent_moves = 4000;  ///< proposals per descent
  uint64_t seed = 1;
  /// Optional JSONL search trace (see ImproveParams::trace); records carry
  /// 1 during kick phases and 0 during descents as "kick".
  std::ostream* trace = nullptr;
  /// Optional transaction observer (see ImproveParams::observer).
  SearchObserver* observer = nullptr;
  /// Speculative proposal batching (see ImproveParams::speculation).
  SpeculationConfig speculation;
};

/// Runs iterated local search from `start` (must be legal). Returns the
/// best binding found, with stats accumulated over all rounds. Kick moves
/// are reported in their own counter (stats.kicks) — they are cost-blind
/// perturbations, not uphill acceptances of the descent policy.
ImproveResult iterated_local_search(const Binding& start,
                                    const IlsParams& params);

}  // namespace salsa
