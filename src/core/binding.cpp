#include "core/binding.h"

namespace salsa {

Binding::Binding(const AllocProblem& prob) : prob_(&prob) {
  const Cdfg& g = prob.cdfg();
  ops_.assign(static_cast<size_t>(g.num_nodes()), OpBind{});
  const Lifetimes& lt = prob.lifetimes();
  stos_.resize(static_cast<size_t>(lt.num_storages()));
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    stos_[static_cast<size_t>(sid)].cells.resize(
        static_cast<size_t>(lt.storage(sid).len));
    stos_[static_cast<size_t>(sid)].read_cell.assign(
        lt.storage(sid).reads.size(), 0);
  }
}

Occupancy Binding::occupancy() const {
  const Cdfg& g = prob_->cdfg();
  const Schedule& sched = prob_->sched();
  const Lifetimes& lt = prob_->lifetimes();
  const int L = sched.length();
  Occupancy occ;
  occ.init(prob_->fus().size(), prob_->num_regs(), L);

  auto claim_fu = [&](FuId f, int step, int user) {
    SALSA_CHECK(f >= 0 && f < prob_->fus().size());
    SALSA_CHECK_MSG(occ.fu_slot(f, step) == Occupancy::kFree,
                    "FU double-booked at step " + std::to_string(step));
    occ.claim_fu(f, step, user);
  };

  for (NodeId n : g.operations()) {
    const OpBind& ob = op(n);
    SALSA_CHECK_MSG(ob.fu != kInvalidId,
                    "operation '" + g.node(n).name + "' is unbound");
    const int occ_steps = sched.hw().occupancy(g.node(n).kind);
    for (int t = sched.start(n); t < sched.start(n) + occ_steps; ++t)
      claim_fu(ob.fu, t, n);
  }

  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    const StorageBinding& sb = sto(sid);
    SALSA_CHECK(static_cast<int>(sb.cells.size()) == s.len);
    for (int seg = 0; seg < s.len; ++seg) {
      const int step = s.step_at(seg, L);
      SALSA_CHECK_MSG(!sb.cells[static_cast<size_t>(seg)].empty(),
                      "storage '" + s.name + "' has an unbound segment");
      for (const Cell& c : sb.cells[static_cast<size_t>(seg)]) {
        SALSA_CHECK_MSG(c.reg >= 0 && c.reg < prob_->num_regs(),
                        "cell register out of range");
        SALSA_CHECK_MSG(occ.reg_slot(c.reg, step) == -1,
                        "register holds two values at step " +
                            std::to_string(step));
        occ.claim_reg(c.reg, step, sid);
        if (seg > 0 && c.via != kInvalidId) {
          // Pass-through occupies the FU during the transfer step (the step
          // of the parent segment).
          const int tstep = s.step_at(seg - 1, L);
          claim_fu(c.via, tstep, Occupancy::kPassThrough);
        }
      }
    }
  }
  return occ;
}

bool Occupancy::planes_match_grids(std::string* why) const {
  auto mismatch = [&](const char* plane, int row, int step, bool bit,
                      int slot) {
    if (why) {
      *why = std::string(plane) + " plane bit (" + std::to_string(row) + ", " +
             std::to_string(step) + ") is " + (bit ? "set" : "clear") +
             " but the grid slot holds " + std::to_string(slot);
    }
    return false;
  };
  for (size_t f = 0; f < fu_user.size(); ++f)
    for (size_t t = 0; t < fu_user[f].size(); ++t) {
      const bool bit = fu_busy.test(static_cast<int>(f), static_cast<int>(t));
      if (bit != (fu_user[f][t] != kFree))
        return mismatch("fu_busy", static_cast<int>(f), static_cast<int>(t),
                        bit, fu_user[f][t]);
      const bool tbit =
          fu_busy_t.test(static_cast<int>(t), static_cast<int>(f));
      if (tbit != (fu_user[f][t] != kFree))
        return mismatch("fu_busy_t", static_cast<int>(f), static_cast<int>(t),
                        tbit, fu_user[f][t]);
    }
  for (size_t r = 0; r < reg_sto.size(); ++r)
    for (size_t t = 0; t < reg_sto[r].size(); ++t) {
      const bool bit = reg_busy.test(static_cast<int>(r), static_cast<int>(t));
      if (bit != (reg_sto[r][t] != -1))
        return mismatch("reg_busy", static_cast<int>(r), static_cast<int>(t),
                        bit, reg_sto[r][t]);
      const bool tbit =
          reg_busy_t.test(static_cast<int>(t), static_cast<int>(r));
      if (tbit != (reg_sto[r][t] != -1))
        return mismatch("reg_busy_t", static_cast<int>(r),
                        static_cast<int>(t), tbit, reg_sto[r][t]);
    }
  return true;
}

RegId Binding::read_reg(int sid, int read_idx) const {
  const Storage& s = prob_->lifetimes().storage(sid);
  const StorageBinding& sb = sto(sid);
  const int seg = s.reads[static_cast<size_t>(read_idx)].seg;
  const int pos = sb.read_cell[static_cast<size_t>(read_idx)];
  return sb.cells[static_cast<size_t>(seg)][static_cast<size_t>(pos)].reg;
}

int Binding::regs_used() const {
  std::vector<bool> used(static_cast<size_t>(prob_->num_regs()), false);
  for (const StorageBinding& sb : stos_)
    for (const auto& seg : sb.cells)
      for (const Cell& c : seg)
        if (c.reg >= 0) used[static_cast<size_t>(c.reg)] = true;
  int n = 0;
  for (bool u : used) n += u;
  return n;
}

int Binding::fus_used() const {
  std::vector<bool> used(static_cast<size_t>(prob_->fus().size()), false);
  for (NodeId n : prob_->cdfg().operations())
    if (op(n).fu != kInvalidId) used[static_cast<size_t>(op(n).fu)] = true;
  for (const StorageBinding& sb : stos_)
    for (const auto& seg : sb.cells)
      for (const Cell& c : seg)
        if (c.via != kInvalidId) used[static_cast<size_t>(c.via)] = true;
  int n = 0;
  for (bool u : used) n += u;
  return n;
}

bool Binding::is_traditional() const {
  for (const StorageBinding& sb : stos_) {
    RegId reg = kInvalidId;
    for (const auto& seg : sb.cells) {
      if (seg.size() != 1) return false;
      if (seg[0].via != kInvalidId) return false;
      if (reg == kInvalidId) reg = seg[0].reg;
      if (seg[0].reg != reg) return false;
    }
  }
  return true;
}

void Binding::normalize() {
  for (int sid = 0; sid < static_cast<int>(stos_.size()); ++sid)
    normalize_storage(sid);
}

void Binding::normalize_storage(int sid) {
  StorageBinding& sb = stos_[static_cast<size_t>(sid)];
  for (size_t seg = 1; seg < sb.cells.size(); ++seg) {
    for (Cell& c : sb.cells[seg]) {
      if (c.parent < 0) continue;
      const Cell& parent = sb.cells[seg - 1][static_cast<size_t>(c.parent)];
      if (parent.reg == c.reg) c.via = kInvalidId;
    }
  }
}

}  // namespace salsa
