#include "core/sched_explore.h"

#include "util/rng.h"

namespace salsa {

ScheduleExploreResult explore_schedules(const Cdfg& cdfg, const HwSpec& hw,
                                        int length, const FuBudget& budget,
                                        const ScheduleExploreParams& params) {
  Rng rng(params.seed);
  ScheduleExploreResult out;

  auto try_variant = [&](const Schedule& sched, uint64_t alloc_seed) {
    const Lifetimes lt(sched);
    auto schedule = std::make_unique<Schedule>(sched);
    auto problem = std::make_unique<AllocProblem>(
        *schedule, FuPool::standard(budget),
        lt.min_registers() + params.extra_regs);
    AllocatorOptions opts = params.alloc;
    opts.improve.seed = alloc_seed;
    AllocationResult res = allocate(*problem, opts);
    out.variant_costs.push_back(res.cost.total);
    out.variant_stats.push_back(res.stats);
    if (!out.allocation || res.cost.total < out.allocation->cost.total) {
      out.schedule = std::move(schedule);
      out.problem = std::move(problem);
      out.allocation.emplace(std::move(res));
    }
  };

  // Baseline: deterministic list schedule.
  const auto base = list_schedule(cdfg, hw, length, budget);
  SALSA_CHECK_MSG(base.has_value(),
                  "explore_schedules: infeasible length/budget combination");
  try_variant(*base, params.seed * 31 + 1);

  for (int v = 0; v < params.variants; ++v) {
    const auto variant = list_schedule(cdfg, hw, length, budget, &rng);
    if (!variant) continue;
    // Variants whose peak demand exceeds the budget cannot happen (the
    // scheduler enforces it); allocate and compare.
    try_variant(*variant, params.seed * 31 + 2 + static_cast<uint64_t>(v));
  }
  return out;
}

}  // namespace salsa
