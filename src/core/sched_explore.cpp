#include "core/sched_explore.h"

#include <optional>
#include <utility>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace salsa {

namespace {

/// One schedule variant, fully owned: the allocation's binding refers to
/// `problem`, which refers to `schedule` — nothing shared across variants.
struct VariantOutcome {
  std::unique_ptr<Schedule> schedule;
  std::unique_ptr<AllocProblem> problem;
  AllocationResult allocation;
};

}  // namespace

ScheduleExploreResult explore_schedules(const Cdfg& cdfg, const HwSpec& hw,
                                        int length, const FuBudget& budget,
                                        const ScheduleExploreParams& params) {
  // Variant 0 is the deterministic baseline list schedule; variants 1..N
  // jitter the scheduler's priorities with a per-variant SplitMix64 stream
  // (even streams: jitter, odd streams: allocation seed). Every variant is
  // an independent task; infeasible jittered variants drop out without
  // shifting the other variants' seeds.
  auto run_variant = [&](int v) -> std::optional<VariantOutcome> {
    const uint64_t vv = static_cast<uint64_t>(v);
    std::optional<Schedule> sched;
    if (v == 0) {
      sched = list_schedule(cdfg, hw, length, budget);
      SALSA_CHECK_MSG(sched.has_value(),
                      "explore_schedules: infeasible length/budget combination");
    } else {
      Rng jitter(derive_seed(params.seed, 2 * vv));
      sched = list_schedule(cdfg, hw, length, budget, &jitter);
      if (!sched) return std::nullopt;
    }
    auto schedule = std::make_unique<Schedule>(std::move(*sched));
    const Lifetimes lt(*schedule);
    auto problem = std::make_unique<AllocProblem>(
        *schedule, FuPool::standard(budget),
        lt.min_registers() + params.extra_regs);
    AllocatorOptions opts = params.alloc;
    opts.improve.seed = derive_seed(params.seed, 2 * vv + 1);
    AllocationResult res = allocate(*problem, opts);
    return VariantOutcome{std::move(schedule), std::move(problem),
                          std::move(res)};
  };
  auto outcomes = parallel_map(params.parallelism, params.variants + 1,
                               run_variant);

  // Reduction in variant order: baseline first, strict < keeps the earliest
  // of cost ties — identical for every thread count.
  ScheduleExploreResult out;
  for (auto& oc : outcomes) {
    if (!oc) continue;
    out.variant_costs.push_back(oc->allocation.cost.total);
    out.variant_stats.push_back(oc->allocation.stats);
    if (!out.allocation ||
        oc->allocation.cost.total < out.allocation->cost.total) {
      out.schedule = std::move(oc->schedule);
      out.problem = std::move(oc->problem);
      out.allocation.emplace(std::move(oc->allocation));
    }
  }
  return out;
}

}  // namespace salsa
