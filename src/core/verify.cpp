#include "core/verify.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/cost.h"

namespace salsa {

std::vector<std::string> verify(const Binding& b) {
  std::vector<std::string> bad;
  const AllocProblem& prob = b.prob();
  const Cdfg& g = prob.cdfg();
  const Schedule& sched = prob.sched();
  const Lifetimes& lt = prob.lifetimes();
  const int L = sched.length();
  const int nfu = prob.fus().size();
  const int nreg = prob.num_regs();

  auto complain = [&](const std::string& msg) { bad.push_back(msg); };

  // --- operation bindings ---------------------------------------------------
  std::vector<std::vector<int>> fu_user(
      static_cast<size_t>(nfu),
      std::vector<int>(static_cast<size_t>(L), Occupancy::kFree));
  for (NodeId n : g.operations()) {
    const Node& nd = g.node(n);
    const OpBind& ob = b.op(n);
    if (ob.fu < 0 || ob.fu >= nfu) {
      complain("op '" + nd.name + "' has no valid FU");
      continue;
    }
    if (prob.fus().fu(ob.fu).cls != fu_class_of(nd.kind))
      complain("op '" + nd.name + "' bound to FU of the wrong class");
    if (ob.swap && !is_commutative(nd.kind))
      complain("non-commutative op '" + nd.name + "' has swapped operands");
    const int occ = sched.hw().occupancy(nd.kind);
    for (int t = sched.start(n); t < sched.start(n) + occ; ++t) {
      if (t >= L) {
        complain("op '" + nd.name + "' occupies steps past the schedule end");
        break;
      }
      int& slot = fu_user[static_cast<size_t>(ob.fu)][static_cast<size_t>(t)];
      if (slot != Occupancy::kFree)
        complain("FU '" + prob.fus().fu(ob.fu).name + "' double-booked at step " +
                 std::to_string(t) + " by op '" + nd.name + "'");
      slot = n;
    }
  }

  // FU output-port usage: the step at whose end each FU delivers a result.
  // A pass-through may not share an FU output with a landing result.
  std::vector<std::vector<bool>> fu_out_busy(
      static_cast<size_t>(nfu), std::vector<bool>(static_cast<size_t>(L), false));
  for (NodeId n : g.operations()) {
    const OpBind& ob = b.op(n);
    if (ob.fu < 0 || ob.fu >= nfu) continue;
    const int fin = (sched.start(n) + sched.hw().delay(g.node(n).kind) - 1) % L;
    fu_out_busy[static_cast<size_t>(ob.fu)][static_cast<size_t>(fin)] = true;
  }

  // --- register cells ---------------------------------------------------
  std::vector<std::vector<int>> reg_sto(
      static_cast<size_t>(nreg), std::vector<int>(static_cast<size_t>(L), -1));
  for (int sid = 0; sid < lt.num_storages(); ++sid) {
    const Storage& s = lt.storage(sid);
    const StorageBinding& sb = b.sto(sid);
    if (static_cast<int>(sb.cells.size()) != s.len) {
      complain("storage '" + s.name + "' has a malformed cell table");
      continue;
    }
    for (int seg = 0; seg < s.len; ++seg) {
      const auto& cells = sb.cells[static_cast<size_t>(seg)];
      const int step = s.step_at(seg, L);
      if (cells.empty())
        complain("storage '" + s.name + "' segment " + std::to_string(seg) +
                 " has no cell");
      for (size_t ci = 0; ci < cells.size(); ++ci) {
        const Cell& c = cells[ci];
        if (c.reg < 0 || c.reg >= nreg) {
          complain("storage '" + s.name + "' has a cell with an invalid register");
          continue;
        }
        for (size_t cj = 0; cj < ci; ++cj)
          if (cells[cj].reg == c.reg)
            complain("storage '" + s.name + "' has duplicate cells in register " +
                     std::to_string(c.reg) + " at segment " +
                     std::to_string(seg));
        int& slot =
            reg_sto[static_cast<size_t>(c.reg)][static_cast<size_t>(step)];
        if (slot != -1 && slot != sid)
          complain("register " + std::to_string(c.reg) +
                   " holds two storages at step " + std::to_string(step));
        slot = sid;

        if (seg == 0) {
          if (c.parent != -1)
            complain("storage '" + s.name + "' has a seg-0 cell with a parent");
          if (c.via != kInvalidId)
            complain("storage '" + s.name + "' has a seg-0 cell with a pass-through");
          continue;
        }
        const auto& prev = sb.cells[static_cast<size_t>(seg) - 1];
        if (c.parent < 0 || c.parent >= static_cast<int>(prev.size())) {
          complain("storage '" + s.name + "' has a cell with an invalid parent");
          continue;
        }
        const Cell& parent = prev[static_cast<size_t>(c.parent)];
        if (parent.reg == c.reg) {
          if (c.via != kInvalidId)
            complain("storage '" + s.name + "' holds in place but names a pass-through");
        } else if (c.via != kInvalidId) {
          if (c.via < 0 || c.via >= nfu) {
            complain("storage '" + s.name + "' transfer via invalid FU");
          } else {
            if (!prob.fus().fu(c.via).can_pass)
              complain("transfer of '" + s.name +
                       "' routed through a non-pass-capable FU");
            // A pass-through is a one-step combinational forward; an FU
            // class with a multi-step delay cannot provide it.
            if (sched.hw().delay(prob.fus().fu(c.via).cls == FuClass::kAlu
                                     ? OpKind::kAdd
                                     : OpKind::kMul) != 1)
              complain("pass-through on multi-cycle FU class for '" + s.name +
                       "'");
            const int tstep = s.step_at(seg - 1, L);
            if (fu_out_busy[static_cast<size_t>(c.via)]
                           [static_cast<size_t>(tstep)])
              complain("pass-through on FU '" + prob.fus().fu(c.via).name +
                       "' collides with a result landing at step " +
                       std::to_string(tstep));
            int& fslot = fu_user[static_cast<size_t>(c.via)]
                                [static_cast<size_t>(tstep)];
            if (fslot != Occupancy::kFree)
              complain("pass-through on busy FU '" + prob.fus().fu(c.via).name +
                       "' at step " + std::to_string(tstep));
            fslot = Occupancy::kPassThrough;
          }
        }
      }
    }
    // Reads.
    if (sb.read_cell.size() != s.reads.size()) {
      complain("storage '" + s.name + "' has a malformed read table");
      continue;
    }
    for (size_t ri = 0; ri < s.reads.size(); ++ri) {
      const int seg = s.reads[ri].seg;
      const int pos = sb.read_cell[ri];
      if (seg < 0 || seg >= s.len || pos < 0 ||
          pos >= static_cast<int>(sb.cells[static_cast<size_t>(seg)].size()))
        complain("storage '" + s.name + "' read " + std::to_string(ri) +
                 " targets a missing cell");
    }
  }
  if (!bad.empty()) return bad;  // connection pass needs a structurally sound binding

  // --- one driver per pin per step -----------------------------------------
  std::map<std::pair<uint64_t, int>, uint64_t> driver;
  for (const ConnUse& u : connection_uses(b)) {
    const auto pin_step = std::make_pair(key_of(u.sink), u.step);
    const uint64_t src = key_of(u.src);
    auto [it, inserted] = driver.emplace(pin_step, src);
    if (!inserted && it->second != src) {
      std::ostringstream os;
      os << "module input pin driven by two sources at step " << u.step;
      complain(os.str());
    }
  }
  return bad;
}

void check_legal(const Binding& b) {
  const auto bad = verify(b);
  if (bad.empty()) return;
  std::string msg = "illegal binding:";
  for (const auto& m : bad) msg += "\n  - " + m;
  fail(msg);
}

}  // namespace salsa
