// Incremental-cost search engine: the shared mutable state behind all
// move-based searches (improver, annealer, ILS, and the allocator facade).
//
// The engine owns a working Binding together with three derived structures
// kept consistent under move transactions:
//   * the FU/register Occupancy grid (so feasibility checks never rebuild
//     it per proposal);
//   * a refcounted connection index — a hash multiset of charged
//     (sink-pin, source-endpoint) pairs plus per-sink distinct-source
//     counts — from which `connections`, `muxes` and the weighted total
//     update in O(move footprint) instead of re-enumerating every routed
//     data flow of the design (what evaluate_cost does);
//   * per-FU and per-register use refcounts backing `fus_used`/`regs_used`.
//
// Move proposers mutate the binding through a transaction: `touch_op` /
// `touch_sto` record undo state for the touched unit and retire its
// connection uses and resource claims from the index *before* the mutation;
// `propose()` re-derives the touched footprint afterwards and returns the
// exact cost delta. The caller then either `commit()`s (keeps the move) or
// `rollback()`s (restores the saved units and the previous index state).
// Acceptance policies are therefore free of per-candidate Binding copies
// and full cost evaluations.
//
// The connection index lives in two FlatMap tables (util/flat_map.h):
// packed (sink, source) pair -> refcount and packed sink -> distinct-source
// count. Every index mutation a transaction performs — map increments and
// decrements, occupancy-slot writes, FU/register refcount updates — is
// additionally recorded in an undo journal, so rollback() restores the
// derived state by replaying the journal in reverse (O(journal), no
// re-enumeration of the touched units' uses) and restoring the saved
// binding units; the cost breakdown returns wholesale to its
// propose()-entry value. Commit is O(1): the journal is simply dropped.
//
// The problem-side static tables (per-operation generator lists, constant
// layout) are immutable after construction and shared between engines of
// the same problem via shared_ptr — the speculation pipeline's worker
// engines (core/speculate.h) score candidates against the very rows the
// main engine reads, and constructing a worker no longer re-derives them.
//
// Consistency is guarded two ways: in !NDEBUG builds every commit
// cross-checks the incremental breakdown against a fresh evaluate_cost
// (SALSA_CHECK via matches_full_eval), and tests/test_incremental_cost.cpp
// replays thousands of randomized commit/rollback transactions against the
// full evaluator on several benchmarks.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/moves.h"
#include "util/fenwick.h"
#include "util/flat_map.h"

namespace salsa {

class SearchEngine;
struct MoveFootprint;  // core/footprint.h

/// Mutation-testing hooks for the segment-windowed transaction path
/// (salsa_audit --break-segment-window): when armed, the Nth windowed
/// claim re-add deliberately narrows its window by one segment on the
/// add side only — touch-time removals keep the full window — so the
/// occupancy grid, refcounts and connection index drift from the binding
/// and the audit wall must catch it. Process-wide cumulative counters,
/// armed relative to the current count (break_after = windowed_txns + N),
/// one-shot. No effect unless a test arms them.
namespace seg_window_hooks {
inline long break_claim_window_after = 0;  ///< 0 = disarmed
inline long windowed_txns = 0;  ///< cumulative windowed (non-whole) re-adds
}  // namespace seg_window_hooks

/// Transaction observer: the seam the SalsaCheck invariant auditor
/// (src/analysis/auditor.h) hooks into. The engine invokes the callbacks
/// around every move transaction; with no observer installed the cost is a
/// single null check per call site, so the hooks are compiled in always.
///
/// Callback order per proposal:
///   on_txn_begin   — propose() entered, binding still in its pre-move state
///   on_txn_abort   — no feasible instance found; binding must be untouched
///   on_commit      — the move was kept; `delta` is the incremental cost
///                    delta the engine reported for it
///   on_rollback    — the move was reverted; binding must be byte-identical
///                    to its pre-move state
/// Observers may inspect the engine (it is passed const) but must not drive
/// transactions on it from inside a callback.
///
/// The speculative proposal pipeline (core/speculate.h) adds two callbacks
/// of its own. They are invoked by the pipeline, not by an engine:
///   on_speculate — a speculation was scored on a worker engine; called
///                  with that worker engine while its transaction is still
///                  open (so the observer can compare the speculative
///                  incremental cost against a from-scratch evaluation).
///                  May be called from a pool thread, but never
///                  concurrently — the pipeline serializes observer calls.
///   on_discard   — a pending speculation was invalidated because a move
///                  that committed before it wrote state in its footprint;
///                  called with the main engine.
class SearchObserver {
 public:
  virtual ~SearchObserver() = default;
  virtual void on_txn_begin(const SearchEngine&) {}
  virtual void on_txn_abort(const SearchEngine&) {}
  virtual void on_commit(const SearchEngine&, double /*delta*/) {}
  virtual void on_rollback(const SearchEngine&) {}
  virtual void on_speculate(const SearchEngine&, double /*delta*/) {}
  virtual void on_discard(const SearchEngine&) {}
};

class SearchEngine {
 public:
  /// Builds the engine state from a legal, structurally complete binding
  /// (O(design), done once per search).
  explicit SearchEngine(const Binding& start);

  /// Builds an engine over `start` sharing `other`'s immutable problem-side
  /// static tables (per-op generator lists) instead of re-deriving them.
  /// Both bindings must be of the same AllocProblem. This is how the
  /// speculation pipeline stamps out worker engines cheaply.
  SearchEngine(const Binding& start, const SearchEngine& other);

  const Binding& binding() const { return b_; }
  const AllocProblem& prob() const { return b_.prob(); }
  /// Incrementally maintained occupancy — always consistent with binding().
  const Occupancy& occupancy() const { return occ_; }
  /// Incrementally maintained cost breakdown of binding().
  const CostBreakdown& cost() const { return cost_; }
  double total() const { return cost_.total; }

  // --- move transactions ----------------------------------------------
  /// Attempts one random move of `kind`. On a feasible instance the move is
  /// applied tentatively and the exact cost delta is returned; the caller
  /// must then commit() or rollback(). Returns nullopt when no feasible
  /// instance was found (no transaction is left open).
  ///
  /// When `fp` is non-null the transaction's footprint is captured into it
  /// (see core/footprint.h): the per-kind read mask, every connection-index
  /// sink key retired or charged, the net-changed FU/register refcount
  /// rows, and the write categories derived from the touched set. The
  /// footprint is finalize()d before propose returns; rollback is not part
  /// of the capture.
  std::optional<double> propose(MoveKind kind, Rng& rng,
                                MoveFootprint* fp = nullptr);
  /// Keeps the proposed move. In !NDEBUG builds cross-checks the
  /// incremental breakdown against a fresh evaluate_cost.
  void commit();
  /// Reverts the proposed move: binding, occupancy and cost return exactly
  /// to their pre-propose state.
  void rollback();
  bool in_txn() const { return in_txn_; }

  /// Replaces the working binding (same AllocProblem) and rebuilds all
  /// derived state. O(design); used when a policy restarts from its best.
  void reset_to(const Binding& b);

  // --- mutation interface for move proposers ---------------------------
  // Must be called inside propose()'s move dispatch, before mutating the
  // unit, and only once the move is certain to succeed. The first touch of
  // a unit saves its undo state and retires its uses from the index.
  OpBind& touch_op(NodeId n);
  StorageBinding& touch_sto(int sid);
  /// Segment-windowed touch: the proposer promises to mutate only cells of
  /// segments [mlo, mhi] (and read_cell, which every touch covers). The
  /// engine extends the window one segment right — a reg change at mhi can
  /// retarget transfers and clear hold-vias at mhi+1 — and restricts the
  /// save/claim/normalize/recount walks to that interval; everything
  /// outside it is untouched by construction, so the windowed transaction
  /// produces cost integers identical to the whole-storage walk (the
  /// salsa_audit --segment differential proves it). Falls back to the
  /// whole-storage touch during footprint capture (speculation needs
  /// whole-unit sink sets for conflict invalidation) and when segment
  /// windows are disabled. Repeated touches of one storage extend the
  /// window to the convex hull.
  StorageBinding& touch_sto(int sid, int mlo, int mhi);
  /// Read-retarget touch: only read_cell will be mutated — no cell, reg or
  /// via changes. Saves read_cell, retires the read generator and leaves
  /// claims, the write generator and the per-storage statistics alone (none
  /// of them read read_cell).
  StorageBinding& touch_sto_reads(int sid);

  /// Enables/disables the segment-windowed transaction path (default on).
  /// Off forces every touch through the whole-storage walk — the reference
  /// side of the salsa_audit --segment window-vs-whole differential.
  void set_segment_windows(bool on) { seg_windows_ = on; }
  bool segment_windows() const { return seg_windows_; }

  // Cached problem-side candidate tables for move proposers (equal to
  // cdfg().operations(), fus().of_class(c) and fus().pass_capable(), but
  // derived once per problem instead of allocated per proposal).
  const std::vector<NodeId>& operations() const { return statics_->ops; }
  const std::vector<FuId>& fus_of_class(FuClass c) const {
    return statics_->fus_by_class[static_cast<size_t>(c)];
  }
  const std::vector<FuId>& pass_capable_fus() const {
    return statics_->pass_fus;
  }
  const std::vector<NodeId>& ops_finishing_at(int step) const {
    return statics_->finishing_at[static_cast<size_t>(step)];
  }
  FuClass op_class(NodeId n) const {
    return statics_->op_class[static_cast<size_t>(n)];
  }
  int op_occupancy(NodeId n) const {
    return statics_->op_occ[static_cast<size_t>(n)];
  }
  const std::vector<NodeId>& ops_of_class(FuClass c) const {
    return statics_->ops_by_class[static_cast<size_t>(c)];
  }
  const std::vector<NodeId>& commutative_ops() const {
    return statics_->commutative_ops;
  }
  const std::vector<FuId>& single_cycle_pass_fus() const {
    return statics_->pass_fus_1cyc;
  }
  const std::vector<uint64_t>& single_cycle_pass_fu_mask() const {
    return statics_->pass_fus_1cyc_mask;
  }
  const std::vector<std::pair<int, int>>& live_at_step(int step) const {
    return statics_->live_at[static_cast<size_t>(step)];
  }

  // Incrementally maintained per-storage binding statistics (journaled like
  // every other derived scalar, so they are transaction-consistent). Move
  // proposers use them to skip storages that cannot contribute a candidate
  // — e.g. a storage with num_cells == len has no multi-cell segment — and
  // to map a uniform cell draw through prefix sums instead of materializing
  // the full cell list. They only prune provably-empty scans, so candidate
  // sets and RNG draws are unchanged.
  /// Total register cells bound across all segments of storage `sid`.
  int num_cells(int sid) const { return sto_cells_[static_cast<size_t>(sid)]; }
  /// Total cells across all storages.
  int total_cells() const { return total_cells_; }
  /// Cells of `sid` routed through a pass-through FU.
  int num_vias(int sid) const { return sto_vias_[static_cast<size_t>(sid)]; }
  /// Direct (no-via) inter-register transfer cells of `sid` — the bindable
  /// candidates of the pass-through binder.
  int num_bare_transfers(int sid) const {
    return sto_xfers_[static_cast<size_t>(sid)];
  }

  // --- O(log) candidate selection -------------------------------------
  // Fenwick-backed totals and rank selects over the per-storage statistics
  // above (plus leaf-cell and fat-read counts maintained the same way).
  // Each *_storage_at(idx, rem) maps a uniform draw over the total to the
  // storage owning rank `idx` of the (sid-ascending) candidate enumeration
  // and the rank within that storage — the proposer then walks only the
  // selected storage. Totals and per-storage counts equal what the old
  // full scans would have counted, so candidate sets, RNG draw bounds and
  // trajectories are unchanged; only the walk over non-owning storages is
  // gone.
  int total_vias() const { return fw_vias_.total(); }
  int total_bare_transfers() const { return fw_xfers_.total(); }
  /// Leaf cells of multi-cell segments — the value-merge candidates.
  int total_leaves() const { return fw_leaves_.total(); }
  /// Reads whose segment holds >= 2 cells — the read-retarget candidates.
  int total_fat_reads() const { return fw_fat_reads_.total(); }
  int cell_storage_at(int idx, int* rem) const {
    return fw_cells_.select(idx, rem);
  }
  int via_storage_at(int idx, int* rem) const {
    return fw_vias_.select(idx, rem);
  }
  int xfer_storage_at(int idx, int* rem) const {
    return fw_xfers_.select(idx, rem);
  }
  int leaf_storage_at(int idx, int* rem) const {
    return fw_leaves_.select(idx, rem);
  }
  int fat_read_storage_at(int idx, int* rem) const {
    return fw_fat_reads_.select(idx, rem);
  }
  /// Cells bound across all storages live at `step` — the segment-exchange
  /// candidate count at that step.
  int live_cells_at(int step) const {
    return step_cells_[static_cast<size_t>(step)].total();
  }
  /// Rank `idx` of the step's cell enumeration (live_at_step order, then
  /// position within the segment): returns {position in live_at_step(step),
  /// cell position within that segment}.
  std::pair<int, int> live_cell_at(int step, int idx) const {
    int pos = 0;
    const int p = step_cells_[static_cast<size_t>(step)].select(idx, &pos);
    return {p, pos};
  }
  /// Maps rank `*idx` of storage `sid`'s (seg, pos)-lexicographic cell
  /// enumeration to its segment, leaving the position within that segment
  /// in `*idx`. Walks the flat per-segment count mirror — the same counts
  /// the inner cell vectors report, without touching a vector header per
  /// segment.
  int seg_of_cell_rank(int sid, int* idx) const {
    const int off = statics_->sto_seg_off[static_cast<size_t>(sid)];
    int seg = 0;
    while (*idx >= seg_size_[static_cast<size_t>(off + seg)])
      *idx -= seg_size_[static_cast<size_t>(off + seg++)];
    return seg;
  }
  /// Pure cache hints for the per-storage transaction structures a touch
  /// of `sid` will walk (gen caches, save buffer, lifetime row). Proposers
  /// issue them as soon as a candidate storage is known, so the scattered
  /// per-storage lines load in parallel with the remaining legality work
  /// instead of stalling the touch/refresh path serially. Hints only — no
  /// side effects, so candidate sets and trajectories are untouched.
  void prefetch_sto_txn(int sid) const {
    __builtin_prefetch(&gen_keys_[static_cast<size_t>(gen_reads(sid))]);
    __builtin_prefetch(&gen_keys_[static_cast<size_t>(gen_writes(sid))]);
    __builtin_prefetch(&sto_save_[static_cast<size_t>(sid)]);
    __builtin_prefetch(&b_.prob().lifetimes().storage(sid));
  }

  /// Operations currently bound to FU `f` (all of f's class).
  int ops_on_fu(FuId f) const {
    return static_cast<int>(fu_ops_[static_cast<size_t>(f)].size());
  }
  /// The idx-th operation (0-based, ops_of_class order) of class `c` NOT
  /// bound to `f` — the fu-exchange partner a full scan would have listed
  /// at that index. O(log^2) binary search over f's sorted position list.
  NodeId class_op_excluding_fu(FuClass c, FuId f, int idx) const;

  /// Total slot-array reallocations across the engine's index tables and
  /// transaction scratch maps — the no-rehash-in-steady-state pin (the
  /// constructor pre-reserves from problem dimensions).
  size_t index_rehashes() const {
    return pair_refs_.rehashes() + sink_sources_.rehashes() +
           txn_delta_.rehashes() + sink_delta_.rehashes();
  }

  // --- observability ----------------------------------------------------
  /// Per-move-kind attempted/accepted/delta counters over the engine's
  /// lifetime (includes every proposal routed through it, e.g. ILS kicks).
  const std::array<MoveKindStats, kNumMoveKinds>& kind_stats() const {
    return kind_stats_;
  }
  /// Proposals that found a feasible instance (committed or rolled back).
  long steps() const { return steps_; }

  /// Streams one JSONL record per decided proposal:
  ///   {"step":N,"move":"F2:fu-move","delta":-3,"accepted":true,...}
  /// nullptr disables tracing.
  void set_trace(std::ostream* os) { trace_ = os; }
  /// Adds a policy-side field (e.g. temperature or remaining uphill budget)
  /// to subsequent trace records; nullptr name drops the field.
  void set_trace_aux(const char* name, double value) {
    aux_name_ = name;
    aux_ = value;
  }

  /// True iff the incremental breakdown equals a fresh evaluate_cost.
  bool matches_full_eval() const;

  /// True iff every derived structure — the refcounted connection index
  /// (pair refcounts and per-sink distinct-source counts), the FU/register
  /// use refcounts, the occupancy grid and busy bitplanes, and the cost
  /// breakdown — equals that of an engine rebuilt from scratch off the
  /// current binding. O(design); the checked mode's per-transaction
  /// cross-check. On mismatch, appends a description of the first
  /// divergence to `why` when non-null.
  bool index_matches_rebuild(std::string* why = nullptr) const;

  /// Packed-vs-scalar occupancy differential: true iff the incrementally
  /// maintained busy bitplanes agree bit-for-bit with the identity grids
  /// (Occupancy::planes_match_grids). Much cheaper than a full rebuild —
  /// the per-commit check of salsa_audit --bitplane.
  bool occupancy_planes_match(std::string* why = nullptr) const {
    return occ_.planes_match_grids(why);
  }

  /// Installs (or clears, with nullptr) the transaction observer. The
  /// engine does not own it; it must outlive the engine or be cleared.
  void set_observer(SearchObserver* obs) { observer_ = obs; }
  SearchObserver* observer() const { return observer_; }

  /// Binds a caller-owned register-mask scratch row (`n` words; nullptr
  /// clears). Move proposers that accumulate a register mask use it instead
  /// of thread-local heap scratch — the speculation pipeline binds one row
  /// of a contiguous per-chunk arena per worker engine so batch scoring
  /// stays on one cache-resident block (see ProposalPipeline::fill_batch).
  /// The row is dead storage between proposals; contents never survive a
  /// call, so binding or clearing it cannot change any result.
  void bind_batch_scratch(uint64_t* words, int n) {
    scratch_row_ = words;
    scratch_row_words_ = n;
  }
  /// The bound scratch row if it holds at least `n` words, else nullptr
  /// (callers fall back to their own scratch).
  uint64_t* batch_scratch(int n) const {
    return scratch_row_ != nullptr && n <= scratch_row_words_ ? scratch_row_
                                                              : nullptr;
  }

  /// Test-only fault injection: the next rollback() skips restoring the
  /// touched units' saved state — a deliberately broken undo. Exists so the
  /// auditor's digest check can be proven to catch silent state drift (the
  /// mutation test in tests/test_fuzz_moves.cpp, documented in DESIGN.md);
  /// never set outside tests.
  void inject_broken_undo_for_test() { break_next_undo_ = true; }

 private:
  struct TouchedOp {
    NodeId n;
    OpBind saved;
  };
  /// Static (problem-side) description of which use generators an
  /// operation's binding feeds. Generator ids: 2*sid = reads of storage
  /// sid, 2*sid+1 = writes of storage sid, 2*S+n = constant operands of
  /// node n.
  struct OpInfo {
    std::vector<int> gens;
    bool has_const_ins = false;
  };
  /// Immutable problem-side rows, derived once per problem and shared
  /// between the main engine and its speculation workers (see the second
  /// constructor): which generators each operation feeds, the generator id
  /// layout, whether constant operands are charged, and the candidate
  /// tables the move proposers scan every proposal (operation nodes, FUs
  /// by class, pass-capable FUs) — cached here so proposals stop paying an
  /// allocation per Cdfg::operations()/FuPool::of_class() call.
  struct EngineStatics {
    std::vector<OpInfo> op_info;  // indexed by NodeId (ops only populated)
    int const_gen_base = 0;
    int num_gens = 0;
    bool charge_consts = false;
    std::vector<NodeId> ops;
    std::array<std::vector<FuId>, 2> fus_by_class;  // indexed by FuClass
    std::vector<FuId> pass_fus;
    // Ops whose result lands (start + delay - 1, mod schedule length) at
    // each control step — schedule-side, so static per problem. Lets the
    // pass-through binder test "does some op's output occupy FU f at step
    // t" against the couple of ops landing at t instead of scanning all.
    std::vector<std::vector<NodeId>> finishing_at;
    // More pre-resolved problem-side predicates the proposers evaluate per
    // candidate per proposal: op FU class and occupancy length (indexed by
    // NodeId), ops grouped by FU class, commutative ops, pass-capable FUs
    // of single-cycle classes (the only ones the pass binder can use), and
    // the (storage, segment) pairs live at each control step — all fixed by
    // the CDFG/schedule, so deriving them once removes an out-of-line
    // predicate call per scanned candidate from the move hot path. Each
    // list preserves the scan order of the loop it replaces, so candidate
    // sets (hence RNG draws and trajectories) are unchanged.
    std::vector<FuClass> op_class;
    std::vector<int> op_occ;
    // Whether each node is an output port — the one static fact the read
    // generator's use enumeration needs per read, pre-resolved so the hot
    // loop never dereferences the CDFG node table.
    std::vector<uint8_t> node_is_output;
    std::array<std::vector<NodeId>, 2> ops_by_class;  // indexed by FuClass
    std::vector<NodeId> commutative_ops;
    std::vector<FuId> pass_fus_1cyc;
    // Bitmask twin of pass_fus_1cyc (bit f set iff f is a single-cycle
    // pass candidate), sized to ceil(num_fus / 64) words. The pass binder
    // ANDs it against the transposed FU busy row instead of probing one
    // fu_busy row per candidate; pass_fus_1cyc ascends in FU id, so the
    // mask's bit order IS the list's candidate order and the k-th set bit
    // of the free mask is the k-th free candidate the probe loop found.
    std::vector<uint64_t> pass_fus_1cyc_mask;
    std::vector<std::vector<std::pair<int, int>>> live_at;  // [step]->(sid,seg)
    // Index of each operation within its ops_by_class list — the rank the
    // per-FU op lists (fu_ops_) store, so fu-exchange selection stays in
    // scan order without holding node ids twice.
    std::vector<int> pos_in_class;  // indexed by NodeId (-1 for non-ops)
    // Flat (sid, seg) addressing: segment seg of storage sid lives at flat
    // index sto_seg_off[sid] + seg. pos_in_step[flat] is that segment's
    // position within live_at[its step] — where the per-step cell-count
    // Fenwick keeps its count.
    std::vector<int> sto_seg_off;  // size S + 1 (prefix offsets)
    std::vector<int> pos_in_step;  // indexed by flat (sid, seg)
    // Total reads across all storages — sizes the connection-index reserve.
    long total_reads = 0;
  };

  /// One reversed scalar write: *p held `old` before the transaction's
  /// mutation (occupancy slots and fu_refs_/reg_refs_ rows; the pointees
  /// are stable for the life of a transaction).
  struct IntUndo {
    int* p;
    int old;
  };
  /// One reversed bitplane word write: the occupancy busy-plane word at *p
  /// held `old` before the transaction's claims touched it. Replayed in
  /// reverse like IntUndo, so the first-journaled (pre-transaction) value
  /// is restored last.
  struct WordUndo {
    uint64_t* p;
    uint64_t old;
  };
  /// One netted connection-index delta awaiting commit: the packed
  /// (sink, source) pair key and its net use-count change this transaction.
  /// finish_mutation computes the cost delta from these read-only (probing
  /// the shared tables without mutating them); commit applies them for
  /// real, and rollback simply discards them — a rejected move never
  /// touches pair_refs_/sink_sources_ at all.
  struct PendingUse {
    uint64_t key;
    int net;
  };

  void build_static();
  void init_from_statics();
  void rebuild();
  void recompute_total();

  int gen_reads(int sid) const { return 2 * sid; }
  int gen_writes(int sid) const { return 2 * sid + 1; }
  int gen_const(NodeId n) const { return statics_->const_gen_base + n; }

  template <typename Fn>
  void enum_gen_uses(int gen, Fn&& fn) const;
  /// Enumerates the write uses of one segment of storage `sid` (the
  /// per-segment body of enum_gen_uses' write branch): producer latch /
  /// environment load for segment 0, nothing for a hold, one transfer key
  /// or a via key pair otherwise.
  template <typename Fn>
  void enum_write_seg_uses(int sid, const Storage& s, const StorageBinding& sb,
                           int seg, Fn&& fn) const;
  /// Enumerates generator `gen`'s uses from the binding into `keys`:
  /// the cache itself outside a transaction (rebuild), the removal's stash
  /// slot inside one (commit installs it via install_fresh_gen_caches).
  void add_gen(int gen, std::vector<uint64_t>& keys);
  /// Copies each removed generator's fresh enumeration (stash slot) into
  /// its cache — the commit-side half of retire/re-add. Capacity-stable on
  /// both sides, so steady-state commits never allocate.
  void install_fresh_gen_caches();
  /// Windowed write-generator refresh (sequential path): builds the
  /// generator's replacement key list in the stash slot by splicing the
  /// cached pre-move list's unchanged prefix and suffix around a fresh
  /// enumeration of just the touched window — the per-segment key counts
  /// (write_seg_keys_) locate the window inside the flat cached list.
  /// Produces the exact key list a full re-enumeration would
  /// (out-of-window segments are byte-identical), so the generic
  /// old-vs-new netting downstream is unchanged. `whi` is the window the
  /// cached list's suffix starts after; `whi_add` the last segment
  /// re-enumerated (differs only under the --break-segment-window
  /// mutation hook).
  void add_write_gen_spliced(int sid, size_t stash_idx, int wlo, int whi,
                             int whi_add);
  /// Windowed read-generator refresh (sequential path): a read generator
  /// emits exactly one key per StorageRead, and read ri's key can change
  /// only if its segment lies inside the cell-mutation window, its
  /// read_cell retargeted, or its consumer op was touched this epoch.
  /// Every other entry is copied from the cached pre-move list verbatim;
  /// the changed ones are recomputed in place with the same logic as
  /// enum_gen_uses' read branch. Returns false (caller falls back to the
  /// full enumeration) if the cache doesn't hold the expected
  /// one-key-per-read shape.
  bool add_read_gen_spliced(int sid, size_t stash_idx);
  bool is_write_gen(int gen) const {
    return gen < statics_->const_gen_base && (gen & 1) != 0;
  }
  bool is_read_gen(int gen) const {
    return gen < statics_->const_gen_base && (gen & 1) == 0;
  }
  void remove_gen_once(int gen);
  /// The packed-key halves of a use charge/retire: maintain the two index
  /// tables and the connections/muxes counts for one charged pair key.
  /// Non-transactional path only (rebuild); transactions go through the
  /// pending-use netting instead.
  void add_key(uint64_t key);
  void remove_key(uint64_t key);
  /// Applies the transaction's netted use deltas to the shared index
  /// tables (cost_ was already advanced read-only by finish_mutation).
  void apply_pending_uses();
  /// Records a scalar about to be overwritten into the undo journal.
  void journal_int(int& slot) {
    if (in_txn_) undo_ints_.push_back({&slot, slot});
  }
  /// Records a busy-plane word about to be overwritten. Journaled per word
  /// (not per bit): a claim window or scattered cell steps may touch the
  /// same word repeatedly, but reverse replay restores the first-journaled
  /// pre-transaction value last, so duplicates are harmless.
  void journal_word(uint64_t& w) {
    if (in_txn_) undo_words_.push_back({&w, w});
  }
  /// Journals every word of plane row `r` covered by the linear bit range
  /// [start, start + len) — the companion of a ranged claim/release.
  void journal_range_words(BitPlane& plane, int r, int start, int len) {
    uint64_t* row = plane.row(r);
    for (int i = start >> 6; i <= (start + len - 1) >> 6; ++i)
      journal_word(row[i]);
  }

  void add_op_claims(NodeId n);
  void remove_op_claims(NodeId n);
  /// Storage claim walks, restricted to segments [lo, hi] (a whole-storage
  /// walk passes [0, len - 1]). A segment's claims are self-contained: the
  /// cell's register at its own step plus, for a via, the pass-through FU
  /// at the previous step — so a ranged walk releases/claims exactly the
  /// window's slots.
  void add_sto_claims(int sid, int lo, int hi);
  void remove_sto_claims(int sid, int lo, int hi);
  /// Read-only twins of add_op_claims/add_sto_claims for the sequential
  /// (no-footprint) path: they only accumulate which fu/reg refcount rows
  /// are about to gain claims (fu_stage_/reg_stage_ scratch), writing
  /// nothing — no occupancy slots, no plane words, no journal entries.
  /// settle_staged_claims then advances cost_.fus_used/regs_used from the
  /// scratch against the still-at-removal refcounts, and the actual table
  /// writes wait until commit (apply_pending_claims). A rejected move
  /// never re-adds its claims at all, and rollback's journal replay only
  /// carries the touch-time removals.
  void stage_op_claims(NodeId n);
  /// Fuses Binding::normalize_storage with the storage claim staging into
  /// a single walk over the storage's cells (sequential path only; the
  /// footprint path normalises and re-adds separately). Ranged like the
  /// claim walks above.
  void normalize_and_stage_sto(int sid, int lo, int hi);
  void settle_staged_claims();
  /// Claims every touched unit's occupancy from its *current* binding
  /// state, without journaling or cost accounting. Serves two symmetric
  /// callers: commit (binding holds the accepted mutation) and sequential
  /// rollback (binding just restored to the saved units — re-claiming
  /// them is the exact inverse of the unjournaled touch-time removals).
  void apply_claims_walk();
  /// Commit-side apply of the staged claims: replays the touched sets
  /// through the real claim writes (occupancy + refcounts), skipping the
  /// journal (the transaction is ending) and the cost accounting
  /// (settle_staged_claims already charged it). No-op unless
  /// finish_mutation ran in staged mode (claims_pending_).
  void apply_pending_claims();
  /// Recounts sto_cells_/sto_vias_/sto_xfers_ (and total_cells_) for one
  /// storage from its current binding, journaling the overwritten values.
  void refresh_sto_stats(int sid);
  /// Windowed stats refresh (sequential commit only): folds the difference
  /// between the saved pre-move window (sto_save_) and the current binding
  /// window into the counters instead of recounting the whole storage.
  /// Out-of-window cells are byte-identical on both sides, so the diffed
  /// counts equal a full recount exactly (integer arithmetic, no
  /// approximation). Leaf counting extends one segment left (a window's
  /// first segment changes the child marks of the segment before it).
  void refresh_sto_stats_window(int sid, int wlo, int whi);

  void finish_mutation();
  void end_txn();
  void trace_decision(bool accepted);
  /// Re-files a committed FU change in the fu_ops_ index (no-op when the
  /// op's unit did not change).
  void update_fu_ops(NodeId n, FuId from, FuId to);

  Binding b_;
  Occupancy occ_;
  CostBreakdown cost_;

  // Connection index: packed (sink, src) pair -> number of routed uses;
  // packed sink -> number of distinct charged sources. Flat open-addressing
  // tables — see util/flat_map.h for the layout and the iteration-order
  // contract that keeps rebuild comparisons content-based.
  FlatMap<uint64_t> pair_refs_;
  FlatMap<uint32_t> sink_sources_;
  // Net per-pair index delta accumulated over the open transaction.
  // Touching a unit retires *all* its uses and finish_mutation re-charges
  // the mostly-unchanged set, so use mutations are first netted here (a
  // small, cache-hot scratch table) and only nonzero nets survive the
  // drain — the final counts, and hence the delta, are identical because
  // per-key refcount arithmetic commutes. Cleared on drain.
  FlatMap<uint64_t> txn_delta_;
  // Per-sink source-count delta scratch for the read-only cost evaluation:
  // the drain above accumulates, per sink, how many of its distinct pairs
  // go live or dead this transaction, and the mux delta falls out of
  // max(0, sources - 1) before/after. Cleared on drain.
  FlatMap<uint32_t> sink_delta_;

  std::vector<int> fu_refs_;
  std::vector<int> reg_refs_;

  // Staged-claims scratch (sequential path only): per-fu/per-reg pending
  // add-claim counts plus the dedup lists of rows touched this
  // transaction. Nonzero only between stage_*_claims and
  // settle_staged_claims inside one finish_mutation call.
  std::vector<int> fu_stage_;
  std::vector<int> reg_stage_;
  std::vector<int> fu_staged_;
  std::vector<int> reg_staged_;
  // True while a finished transaction's claim re-adds are staged but not
  // yet written: commit (or the broken-undo test path) must call
  // apply_pending_claims before end_txn; rollback just drops the flag.
  bool claims_pending_ = false;

  // Per-storage candidate statistics (see the accessors above).
  std::vector<int> sto_cells_;
  std::vector<int> sto_vias_;
  std::vector<int> sto_xfers_;
  int total_cells_ = 0;
  // Leaf cells of multi-cell segments / reads with >= 2 cells to pick from
  // — the merge and retarget candidate counts, refreshed with the stats
  // above.
  std::vector<int> sto_leaves_;
  std::vector<int> sto_fat_reads_;
  // Fenwick selection indexes over the five per-storage statistics (see
  // the public accessors): refresh_sto_stats feeds them the per-storage
  // deltas, journaling every touched node so footprint-path transactions
  // roll them back like any other derived scalar.
  Fenwick fw_cells_;
  Fenwick fw_vias_;
  Fenwick fw_xfers_;
  Fenwick fw_leaves_;
  Fenwick fw_fat_reads_;
  // Per-control-step cell-count Fenwicks over live_at[step] positions
  // (segment-exchange selection), plus the per-(sid, seg) cell-count
  // mirror (flat sto_seg_off addressing) that turns a stats refresh into
  // per-segment deltas.
  std::vector<Fenwick> step_cells_;
  std::vector<int> seg_size_;
  // Sorted pos_in_class ranks of the operations bound to each FU — the
  // fu-exchange order-statistics index. Updated at commit (and on the
  // broken-undo test path) by diffing touched ops' saved vs current FU;
  // proposals only read it, so rejected moves never touch it.
  std::vector<std::vector<int>> fu_ops_;

  std::shared_ptr<const EngineStatics> statics_;

  // Per-generator cache of the charged packed pair keys the generator's
  // enumeration last produced. The transaction protocol guarantees a
  // generator is removed (remove_gen_once) before any binding state its
  // enumeration reads can change — touch_op/touch_sto retire all
  // dependent generators up front — so a live cache is always current and
  // retiring a generator replays the cached keys instead of re-walking
  // the binding. Mid-transaction the cache keeps the pre-move list
  // (netting's "old" side and rollback's ground truth); the fresh
  // enumeration builds in the stash slot indexed parallel to
  // removed_gens_ (buffers pooled across transactions — each gen's cache
  // and each slot hold a stable capacity, so neither side of the
  // steady-state protocol allocates) and commit installs it
  // (install_fresh_gen_caches) while rollback simply drops it.
  std::vector<std::vector<uint64_t>> gen_keys_;
  std::vector<std::vector<uint64_t>> gen_stash_;

  // Transaction state. Epoch stamps give O(1) already-touched /
  // already-removed checks without clearing arrays between proposals.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> gen_epoch_;
  std::vector<uint32_t> op_epoch_;
  std::vector<uint32_t> sto_epoch_;
  std::vector<TouchedOp> touched_ops_;
  // Touched-storage undo state: the sids touched this transaction, and one
  // save buffer *per storage* (indexed by sid). A dedicated buffer always
  // has exactly the segment shape of the storage it saves, so the
  // copy-assignment in touch_sto refills the existing cell vectors in
  // place — a shared slot pool would reshape (destroy/reallocate) its
  // inner vectors whenever consecutive transactions touch storages of
  // different lengths.
  std::vector<int> touched_sids_;
  std::vector<StorageBinding> sto_save_;
  // Segment window of each touched storage (valid for sids in
  // touched_sids_ this epoch): the save/claim/normalize walks cover
  // segments [sto_wlo_, sto_whi_]; a read-only touch is the empty window
  // (whi < wlo). sto_whi_add_ is the re-add side's upper bound — equal to
  // sto_whi_ except when the --break-segment-window mutation hook narrows
  // it to prove the audit wall catches a short re-add.
  std::vector<int> sto_wlo_;
  std::vector<int> sto_whi_;
  std::vector<int> sto_whi_add_;
  // Keys the write generator's cache holds per segment, flat-indexed by
  // sto_seg_off[sid] + seg (a hold emits 0, a via 2, a transfer or a
  // segment-0 latch 1). Locates a window inside the flat cached key list
  // for the spliced refresh; journaled like every other derived scalar.
  std::vector<int> write_seg_keys_;
  // Segment-windowed transactions enabled (see set_segment_windows).
  bool seg_windows_ = true;
  std::vector<int> removed_gens_;
  // Undo journal (see the class comment): replayed in reverse by rollback.
  std::vector<IntUndo> undo_ints_;
  std::vector<WordUndo> undo_words_;
  // Netted index deltas awaiting commit (see PendingUse): applied by
  // commit, discarded by rollback.
  std::vector<PendingUse> pending_uses_;
  // Per-transaction sink-delta staging for the prefetch-then-probe pass in
  // finish_mutation (collected from sink_delta_'s drain, probed against
  // sink_sources_ after the prefetches land).
  std::vector<std::pair<uint32_t, int>> sink_scratch_;
  bool in_txn_ = false;
  CostBreakdown cost_before_;  ///< breakdown at propose() entry
  MoveKind pending_kind_{};
  double pending_delta_ = 0;

  MoveFootprint* fp_ = nullptr;  ///< capture target during propose(), else null

  std::array<MoveKindStats, kNumMoveKinds> kind_stats_{};
  long steps_ = 0;
  std::ostream* trace_ = nullptr;
  const char* aux_name_ = nullptr;
  double aux_ = 0;
  SearchObserver* observer_ = nullptr;
  uint64_t* scratch_row_ = nullptr;  ///< see bind_batch_scratch
  int scratch_row_words_ = 0;
  bool break_next_undo_ = false;
};

}  // namespace salsa
