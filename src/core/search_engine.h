// Incremental-cost search engine: the shared mutable state behind all
// move-based searches (improver, annealer, ILS, and the allocator facade).
//
// The engine owns a working Binding together with three derived structures
// kept consistent under move transactions:
//   * the FU/register Occupancy grid (so feasibility checks never rebuild
//     it per proposal);
//   * a refcounted connection index — a hash multiset of charged
//     (sink-pin, source-endpoint) pairs plus per-sink distinct-source
//     counts — from which `connections`, `muxes` and the weighted total
//     update in O(move footprint) instead of re-enumerating every routed
//     data flow of the design (what evaluate_cost does);
//   * per-FU and per-register use refcounts backing `fus_used`/`regs_used`.
//
// Move proposers mutate the binding through a transaction: `touch_op` /
// `touch_sto` record undo state for the touched unit and retire its
// connection uses and resource claims from the index *before* the mutation;
// `propose()` re-derives the touched footprint afterwards and returns the
// exact cost delta. The caller then either `commit()`s (keeps the move) or
// `rollback()`s (restores the saved units and the previous index state).
// Acceptance policies are therefore free of per-candidate Binding copies
// and full cost evaluations.
//
// Consistency is guarded two ways: in !NDEBUG builds every commit
// cross-checks the incremental breakdown against a fresh evaluate_cost
// (SALSA_CHECK via matches_full_eval), and tests/test_incremental_cost.cpp
// replays thousands of randomized commit/rollback transactions against the
// full evaluator on several benchmarks.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cost.h"
#include "core/moves.h"

namespace salsa {

class SearchEngine;
struct MoveFootprint;  // core/footprint.h

/// Transaction observer: the seam the SalsaCheck invariant auditor
/// (src/analysis/auditor.h) hooks into. The engine invokes the callbacks
/// around every move transaction; with no observer installed the cost is a
/// single null check per call site, so the hooks are compiled in always.
///
/// Callback order per proposal:
///   on_txn_begin   — propose() entered, binding still in its pre-move state
///   on_txn_abort   — no feasible instance found; binding must be untouched
///   on_commit      — the move was kept; `delta` is the incremental cost
///                    delta the engine reported for it
///   on_rollback    — the move was reverted; binding must be byte-identical
///                    to its pre-move state
/// Observers may inspect the engine (it is passed const) but must not drive
/// transactions on it from inside a callback.
///
/// The speculative proposal pipeline (core/speculate.h) adds two callbacks
/// of its own. They are invoked by the pipeline, not by an engine:
///   on_speculate — a speculation was scored on a worker engine; called
///                  with that worker engine while its transaction is still
///                  open (so the observer can compare the speculative
///                  incremental cost against a from-scratch evaluation).
///                  May be called from a pool thread, but never
///                  concurrently — the pipeline serializes observer calls.
///   on_discard   — a pending speculation was invalidated because a move
///                  that committed before it wrote state in its footprint;
///                  called with the main engine.
class SearchObserver {
 public:
  virtual ~SearchObserver() = default;
  virtual void on_txn_begin(const SearchEngine&) {}
  virtual void on_txn_abort(const SearchEngine&) {}
  virtual void on_commit(const SearchEngine&, double /*delta*/) {}
  virtual void on_rollback(const SearchEngine&) {}
  virtual void on_speculate(const SearchEngine&, double /*delta*/) {}
  virtual void on_discard(const SearchEngine&) {}
};

class SearchEngine {
 public:
  /// Builds the engine state from a legal, structurally complete binding
  /// (O(design), done once per search).
  explicit SearchEngine(const Binding& start);

  const Binding& binding() const { return b_; }
  const AllocProblem& prob() const { return b_.prob(); }
  /// Incrementally maintained occupancy — always consistent with binding().
  const Occupancy& occupancy() const { return occ_; }
  /// Incrementally maintained cost breakdown of binding().
  const CostBreakdown& cost() const { return cost_; }
  double total() const { return cost_.total; }

  // --- move transactions ----------------------------------------------
  /// Attempts one random move of `kind`. On a feasible instance the move is
  /// applied tentatively and the exact cost delta is returned; the caller
  /// must then commit() or rollback(). Returns nullopt when no feasible
  /// instance was found (no transaction is left open).
  ///
  /// When `fp` is non-null the transaction's footprint is captured into it
  /// (see core/footprint.h): the per-kind read mask, every connection-index
  /// sink key retired or charged, the net-changed FU/register refcount
  /// rows, and the write categories derived from the touched set. The
  /// footprint is finalize()d before propose returns; rollback is not part
  /// of the capture.
  std::optional<double> propose(MoveKind kind, Rng& rng,
                                MoveFootprint* fp = nullptr);
  /// Keeps the proposed move. In !NDEBUG builds cross-checks the
  /// incremental breakdown against a fresh evaluate_cost.
  void commit();
  /// Reverts the proposed move: binding, occupancy and cost return exactly
  /// to their pre-propose state.
  void rollback();
  bool in_txn() const { return in_txn_; }

  /// Replaces the working binding (same AllocProblem) and rebuilds all
  /// derived state. O(design); used when a policy restarts from its best.
  void reset_to(const Binding& b);

  // --- mutation interface for move proposers ---------------------------
  // Must be called inside propose()'s move dispatch, before mutating the
  // unit, and only once the move is certain to succeed. The first touch of
  // a unit saves its undo state and retires its uses from the index.
  OpBind& touch_op(NodeId n);
  StorageBinding& touch_sto(int sid);

  // --- observability ----------------------------------------------------
  /// Per-move-kind attempted/accepted/delta counters over the engine's
  /// lifetime (includes every proposal routed through it, e.g. ILS kicks).
  const std::array<MoveKindStats, kNumMoveKinds>& kind_stats() const {
    return kind_stats_;
  }
  /// Proposals that found a feasible instance (committed or rolled back).
  long steps() const { return steps_; }

  /// Streams one JSONL record per decided proposal:
  ///   {"step":N,"move":"F2:fu-move","delta":-3,"accepted":true,...}
  /// nullptr disables tracing.
  void set_trace(std::ostream* os) { trace_ = os; }
  /// Adds a policy-side field (e.g. temperature or remaining uphill budget)
  /// to subsequent trace records; nullptr name drops the field.
  void set_trace_aux(const char* name, double value) {
    aux_name_ = name;
    aux_ = value;
  }

  /// True iff the incremental breakdown equals a fresh evaluate_cost.
  bool matches_full_eval() const;

  /// True iff every derived structure — the refcounted connection index
  /// (pair refcounts and per-sink distinct-source counts), the FU/register
  /// use refcounts, the occupancy grid and the cost breakdown — equals that
  /// of an engine rebuilt from scratch off the current binding. O(design);
  /// the checked mode's per-transaction cross-check. On mismatch, appends a
  /// description of the first divergence to `why` when non-null.
  bool index_matches_rebuild(std::string* why = nullptr) const;

  /// Installs (or clears, with nullptr) the transaction observer. The
  /// engine does not own it; it must outlive the engine or be cleared.
  void set_observer(SearchObserver* obs) { observer_ = obs; }
  SearchObserver* observer() const { return observer_; }

  /// Test-only fault injection: the next rollback() skips restoring the
  /// touched units' saved state — a deliberately broken undo. Exists so the
  /// auditor's digest check can be proven to catch silent state drift (the
  /// mutation test in tests/test_fuzz_moves.cpp, documented in DESIGN.md);
  /// never set outside tests.
  void inject_broken_undo_for_test() { break_next_undo_ = true; }

 private:
  struct TouchedOp {
    NodeId n;
    OpBind saved;
  };
  struct TouchedSto {
    int sid;
    StorageBinding saved;
  };
  /// Static (problem-side) description of which use generators an
  /// operation's binding feeds. Generator ids: 2*sid = reads of storage
  /// sid, 2*sid+1 = writes of storage sid, 2*S+n = constant operands of
  /// node n.
  struct OpInfo {
    std::vector<int> gens;
    bool has_const_ins = false;
  };

  void build_static();
  void rebuild();
  void recompute_total();

  int gen_reads(int sid) const { return 2 * sid; }
  int gen_writes(int sid) const { return 2 * sid + 1; }
  int gen_const(NodeId n) const { return const_gen_base_ + n; }

  template <typename Fn>
  void enum_gen_uses(int gen, Fn&& fn) const;
  void add_gen(int gen);
  void remove_gen(int gen);
  void remove_gen_once(int gen);
  void add_use(const Endpoint& src, const Pin& sink);
  void remove_use(const Endpoint& src, const Pin& sink);

  void add_op_claims(NodeId n);
  void remove_op_claims(NodeId n);
  void add_sto_claims(int sid);
  void remove_sto_claims(int sid);

  void finish_mutation();
  void end_txn();
  void trace_decision(bool accepted);

  Binding b_;
  Occupancy occ_;
  CostBreakdown cost_;

  // Connection index: packed (sink, src) pair -> number of routed uses;
  // packed sink -> number of distinct charged sources.
  std::unordered_map<uint64_t, int> pair_refs_;
  std::unordered_map<uint32_t, int> sink_sources_;
  bool charge_consts_ = false;

  std::vector<int> fu_refs_;
  std::vector<int> reg_refs_;

  std::vector<OpInfo> op_info_;  // indexed by NodeId (ops only populated)
  int const_gen_base_ = 0;

  // Transaction state. Epoch stamps give O(1) already-touched /
  // already-removed checks without clearing arrays between proposals.
  uint32_t epoch_ = 0;
  std::vector<uint32_t> gen_epoch_;
  std::vector<uint32_t> op_epoch_;
  std::vector<uint32_t> sto_epoch_;
  std::vector<TouchedOp> touched_ops_;
  std::vector<TouchedSto> touched_stos_;
  std::vector<int> removed_gens_;
  bool in_txn_ = false;
  CostBreakdown cost_before_;  ///< breakdown at propose() entry
  MoveKind pending_kind_{};
  double pending_delta_ = 0;

  MoveFootprint* fp_ = nullptr;  ///< capture target during propose(), else null

  std::array<MoveKindStats, kNumMoveKinds> kind_stats_{};
  long steps_ = 0;
  std::ostream* trace_ = nullptr;
  const char* aux_name_ = nullptr;
  double aux_ = 0;
  SearchObserver* observer_ = nullptr;
  bool break_next_undo_ = false;
};

}  // namespace salsa
